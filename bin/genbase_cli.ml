(* Command-line front end for the GenBase benchmark: generate data sets,
   run a single (engine, query, size) cell, or list what's available. *)

open Cmdliner
module Spec = Gb_datagen.Spec

let size_conv =
  let parse = function
    | "small" -> Ok Spec.Small
    | "medium" -> Ok Spec.Medium
    | "large" -> Ok Spec.Large
    | "xlarge" -> Ok Spec.XLarge
    | s -> Error (`Msg (Printf.sprintf "unknown size %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | Spec.Small -> "small"
      | Spec.Medium -> "medium"
      | Spec.Large -> "large"
      | Spec.XLarge -> "xlarge")
  in
  Arg.conv (parse, print)

let engine_table nodes =
  [
    ("r", Genbase.Engine_r.engine);
    ("postgres-r", Genbase.Engine_sql.postgres_r);
    ("madlib", Genbase.Engine_madlib.engine);
    ("colstore-r", Genbase.Engine_sql.colstore_r);
    ("colstore-udf", Genbase.Engine_sql.colstore_udf);
    ("scidb", Genbase.Engine_scidb.engine);
    ("scidb-phi", Genbase.Engine_phi.engine);
    ("hadoop", Genbase.Engine_hadoop.engine);
    ("pbdr", Genbase.Engine_pbdr.engine ~nodes);
    ("scidb-mn", Genbase.Engine_scidb_mn.engine ~nodes);
    ("scidb-phi-mn", Genbase.Engine_scidb_mn.engine_phi ~nodes);
    ("colstore-pbdr", Genbase.Engine_colstore_mn.pbdr ~nodes);
    ("colstore-udf-mn", Genbase.Engine_colstore_mn.udf ~nodes);
    ("hadoop-mn", Genbase.Engine_hadoop.engine_multinode ~nodes);
  ]

let seed_arg =
  Arg.(
    value
    & opt int64 0x6E0BA5EL
    & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let size_arg =
  Arg.(
    value
    & opt size_conv Spec.Small
    & info [ "size" ] ~docv:"SIZE"
        ~doc:"Data set size: small, medium, large or xlarge.")

(* Domain-pool sizing. The conv rejects 0, negatives and non-numeric
   input with a usage error; attaching the GENBASE_DOMAINS env var to
   the flag means env values get the same validation for free. *)
let jobs_conv =
  let parse s =
    match Gb_par.Pool.parse_jobs s with
    | Ok n -> Ok n
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~env:
          (Cmd.Env.info Gb_par.Pool.env_var
             ~doc:"Default for $(b,--jobs); same validation applies.")
        ~doc:
          "Size of the shared Domain pool the wall-clock engines run \
           their kernels on. 1 (the default) is fully sequential and \
           bitwise-reproduces the single-threaded kernels.")

(* Evaluated before each command body: turns the validated count into
   the process-wide pool size. *)
let jobs_term = Term.(const Gb_par.Pool.set_jobs $ jobs_arg)

(* --- generate --- *)

let generate_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory for the CSV files.")
  in
  let run size seed dir =
    let spec = Spec.of_size size in
    Printf.printf "generating %s...\n%!" (Format.asprintf "%a" Spec.pp spec);
    let ds = Gb_datagen.Generate.generate ~seed spec in
    Gb_datagen.Io.write ~dir ds;
    Printf.printf "wrote microarray.csv, patients.csv, genes.csv, go.csv to %s\n"
      dir
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark data set as CSV files.")
    Term.(const run $ size_arg $ seed_arg $ dir)

(* --- run --- *)

let describe_payload = function
  | Genbase.Engine.Regression r ->
    Printf.printf "regression: intercept=%.4f, %d coefficients, R^2=%.4f\n"
      r.intercept
      (Array.length r.coefficients)
      r.r2
  | Genbase.Engine.Cov_pairs p ->
    Printf.printf "covariance: %d genes, %d pairs above threshold\n" p.n_genes
      (List.length p.top_pairs);
    List.iteri
      (fun i (a, b, v) ->
        if i < 5 then Printf.printf "  gene %d ~ gene %d: %.4f\n" a b v)
      p.top_pairs
  | Genbase.Engine.Biclusters b ->
    Printf.printf "biclustering: %d clusters\n" (List.length b.clusters);
    List.iter
      (fun (rows, cols, msr) ->
        Printf.printf "  %dx%d, MSR=%.5f\n" (Array.length rows)
          (Array.length cols) msr)
      b.clusters
  | Genbase.Engine.Singular_values s ->
    Printf.printf "svd: %d singular values, top:" (Array.length s);
    Array.iteri (fun i v -> if i < 5 then Printf.printf " %.3f" v) s;
    print_newline ()
  | Genbase.Engine.Enrichment terms ->
    Printf.printf "statistics: %d enriched GO terms\n" (List.length terms);
    List.iteri
      (fun i (t, p) -> if i < 5 then Printf.printf "  GO %d: p=%.2e\n" t p)
      terms
  | Genbase.Engine.Overlaps o ->
    Printf.printf "overlap: %d pairs over %d variants x %d genes\n"
      (List.length o.pairs) o.n_variants o.n_genes;
    List.iteri
      (fun i (v, g, len) ->
        if i < 5 then Printf.printf "  variant %d ~ gene %d: %d bp\n" v g len)
      o.pairs

let run_cmd =
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query" ] ~docv:"QUERY"
          ~doc:
            "One of regression, covariance, biclustering, svd, statistics, \
             overlap.")
  in
  let engine =
    Arg.(
      value
      & opt string "scidb"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:"Engine name; see $(b,genbase list).")
  in
  let nodes =
    Arg.(
      value
      & opt int 1
      & info [ "nodes" ] ~docv:"N" ~doc:"Node count for multi-node engines.")
  in
  let timeout =
    Arg.(
      value
      & opt float 120.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Benchmark cut-off window.")
  in
  let run () size seed query engine nodes timeout =
    match Genbase.Query.of_name query with
    | None ->
      Printf.eprintf "unknown query %s\n" query;
      exit 2
    | Some q -> (
      match List.assoc_opt engine (engine_table nodes) with
      | None ->
        Printf.eprintf "unknown engine %s (try `genbase list`)\n" engine;
        exit 2
      | Some e ->
        let ds = Gb_datagen.Generate.generate ~seed (Spec.of_size size) in
        (match Genbase.Engine.run e ds q ~timeout_s:timeout () with
        | Genbase.Engine.Completed (t, payload) ->
          Printf.printf "%s / %s / %s: dm=%.3fs analytics=%.3fs total=%.3fs\n"
            e.Genbase.Engine.name (Genbase.Query.name q) (Spec.label size)
            t.Genbase.Engine.dm t.Genbase.Engine.analytics
            (Genbase.Engine.total t);
          describe_payload payload
        | o ->
          Printf.printf "%s / %s / %s: %s\n" e.Genbase.Engine.name
            (Genbase.Query.name q) (Spec.label size)
            (Format.asprintf "%a" Genbase.Engine.pp_outcome o)))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one benchmark query on one engine.")
    Term.(
      const run $ jobs_term $ size_arg $ seed_arg $ query $ engine $ nodes
      $ timeout)

(* --- explain --- *)

let explain_cmd =
  let run () size seed =
    let ds = Gb_datagen.Generate.generate ~seed (Spec.of_size size) in
    let db = Genbase.Dataset.load_col_stores ds in
    let open Gb_relational in
    let table = function
      | "microarray" -> db.Genbase.Dataset.microarray_c
      | "patients" -> db.Genbase.Dataset.patients_c
      | "genes" -> db.Genbase.Dataset.genes_c
      | "go" -> db.Genbase.Dataset.go_c
      | "variants" -> db.Genbase.Dataset.variants_c
      | t -> invalid_arg t
    in
    let cat =
      {
        Plan.scan =
          (fun t cols ->
            Ops.traced ~name:("scan:" ^ t) (Ops.scan_col_store (table t) cols));
        schema_of = (fun t -> Col_store.schema (table t));
        row_count = (fun t -> Col_store.row_count (table t));
      }
    in
    let join left right on = Plan.Join { left; right; on } in
    let plans =
      [
        ( "Q1/Q4 data management (genes by function x microarray)",
          Plan.Project
            ( [ "patient_id"; "gene_id"; "value" ],
              Plan.Filter
                ( Expr.(col "func" <% int 250),
                  join
                    (Plan.Scan ("microarray", []))
                    (Plan.Scan ("genes", []))
                    [ ("gene_id", "gene_id") ] ) ) );
        ( "Q2 data management (patients by disease x microarray)",
          Plan.Project
            ( [ "patient_id"; "gene_id"; "value" ],
              Plan.Filter
                ( Expr.(col "disease_id" =% int 1),
                  join
                    (Plan.Scan ("microarray", []))
                    (Plan.Scan ("patients", []))
                    [ ("patient_id", "patient_id") ] ) ) );
        ( "Q5 data management (sampled patients, mean per gene)",
          Plan.Aggregate
            {
              group_by = [ "gene_id" ];
              aggs = [ ("score", Ops.Avg "value") ];
              input =
                Plan.Filter
                  ( Expr.(col "patient_id" <% int 10),
                    Plan.Scan ("microarray", []) );
            } );
        ( "Q6 overlap join (variants x gene coordinates)",
          Genbase.Relops.q6_plan Genbase.Query.default_params );
      ]
    in
    List.iter
      (fun (title, p) ->
        Printf.printf "=== %s ===\n%s" title (Plan.explain cat p);
        Printf.printf "EXPLAIN ANALYZE:\n%s\n" (Plan.explain_analyze cat p))
      plans
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show optimized query plans for the benchmark's DM phases, then \
          execute each and report estimated vs actual per-operator row \
          counts (EXPLAIN ANALYZE).")
    Term.(const run $ jobs_term $ size_arg $ seed_arg)

(* --- seqgen --- *)

let seqgen_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory for counts.csv.")
  in
  let depth =
    Arg.(
      value
      & opt float 20.
      & info [ "depth" ] ~docv:"READS" ~doc:"Mean per-cell read depth.")
  in
  let run size seed dir depth =
    let ds = Gb_datagen.Generate.generate ~seed (Spec.of_size size) in
    let seq = Gb_datagen.Seqdata.of_expression ~seed ~mean_depth:depth ds in
    Gb_datagen.Seqdata.write_csv ~dir seq;
    let total =
      Array.fold_left ( + ) 0 seq.Gb_datagen.Seqdata.library_sizes
    in
    Printf.printf "wrote counts.csv (%d libraries, %d total reads) to %s\n"
      (Array.length seq.Gb_datagen.Seqdata.library_sizes)
      total dir
  in
  Cmd.v
    (Cmd.info "seqgen"
       ~doc:"Generate RNA-seq-style count data from a benchmark data set.")
    Term.(const run $ size_arg $ seed_arg $ dir $ depth)

(* --- suite --- *)

let suite_cmd =
  let out =
    Arg.(
      value
      & opt string "results.csv"
      & info [ "out" ] ~docv:"FILE" ~doc:"CSV file for the raw cell grid.")
  in
  let timeout =
    Arg.(
      value
      & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Benchmark cut-off window.")
  in
  let sizes =
    Arg.(
      value
      & opt (list size_conv) [ Spec.Small ]
      & info [ "sizes" ] ~docv:"SIZES"
          ~doc:"Comma-separated sizes to run, e.g. small,medium,large.")
  in
  let run () seed out timeout sizes =
    let config =
      {
        Genbase.Harness.timeout_s = timeout;
        sizes;
        seed;
        progress = Some (fun s -> Printf.eprintf "%s\n%!" s);
      }
    in
    let cells = Genbase.Harness.single_node_cells config in
    let oc = open_out out in
    output_string oc (Genbase.Harness.to_csv cells);
    close_out oc;
    Printf.printf "wrote %d cells to %s\n" (List.length cells) out;
    List.iter print_endline (Genbase.Harness.fig1 cells)
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the full single-node grid and dump raw results as CSV.")
    Term.(const run $ jobs_term $ seed_arg $ out $ timeout $ sizes)

(* --- chaos --- *)

let chaos_cmd =
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Optional CSV file for the raw cells.")
  in
  let timeout =
    Arg.(
      value
      & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Benchmark cut-off window.")
  in
  let d = Genbase.Harness.default_chaos in
  let prob name ~doc default =
    Arg.(value & opt float default & info [ name ] ~docv:"P" ~doc)
  in
  let fault_seed =
    Arg.(
      value
      & opt int64 d.Genbase.Harness.fault_seed
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed every fault placement derives from.")
  in
  let crash =
    prob "crash" d.Genbase.Harness.crash_p
      ~doc:"Per (node, superstep) crash probability."
  in
  let straggler =
    prob "straggler" d.Genbase.Harness.straggler_p
      ~doc:"Per (node, superstep) straggler probability."
  in
  let oom =
    prob "oom" d.Genbase.Harness.oom_p
      ~doc:"Per (node, superstep) transient out-of-memory probability."
  in
  let drop =
    prob "drop" d.Genbase.Harness.drop_p
      ~doc:"Per communication-op message-loss probability."
  in
  let task_fail =
    prob "task-fail" d.Genbase.Harness.task_fail_p
      ~doc:"Per MapReduce job transient task-failure probability."
  in
  let run () size seed out timeout fault_seed crash straggler oom drop task_fail
      =
    let chaos =
      {
        Genbase.Harness.default_chaos with
        Genbase.Harness.fault_seed;
        crash_p = crash;
        straggler_p = straggler;
        oom_p = oom;
        drop_p = drop;
        task_fail_p = task_fail;
      }
    in
    let config =
      {
        Genbase.Harness.timeout_s = timeout;
        sizes = [ size ];
        seed;
        progress = Some (fun s -> Printf.eprintf "%s\n%!" s);
      }
    in
    let stream_cells =
      (* The streaming executor joins the table as a single-node row:
         its plan crashes the ingest loop, exercising checkpoint
         restore + replay. 64 batches spans the plan's superstep range. *)
      let ds = Genbase.Dataset.generate ~seed (Spec.of_size size) in
      let fault =
        Genbase.Harness.chaos_plan chaos ~engine:"Streaming IVM" ~nodes:1
      in
      let profile = Gb_stream.Ingest.profile ~batches:64 () in
      let engine = Gb_stream.Exec.engine ~fault ~profile () in
      List.map
        (fun q -> Genbase.Harness.run_cell engine ds q ~timeout_s:timeout)
        Genbase.Query.all
    in
    let cells = Genbase.Harness.chaos_cells ~chaos config @ stream_cells in
    (match out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Genbase.Harness.to_csv cells);
      close_out oc;
      Printf.printf "wrote %d cells to %s\n" (List.length cells) file);
    print_endline (Genbase.Harness.availability cells)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the multi-node grid under deterministic fault injection and \
          report per-engine availability.")
    Term.(
      const run $ jobs_term $ size_arg $ seed_arg $ out $ timeout $ fault_seed
      $ crash $ straggler $ oom $ drop $ task_fail)

(* --- conformance --- *)

let conformance_cmd =
  let module M = Gb_conformance.Matrix in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Preset for CI: small data, 3 seeds, short timeout, fuzzed \
             parameters, 2-node chaos check.")
  in
  let seeds =
    Arg.(
      value
      & opt int 3
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Number of data-set seeds (derived from --seed).")
  in
  let timeout =
    Arg.(
      value
      & opt float 60.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-cell cut-off window.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"CSV file for the raw conformance cells (the CI artifact).")
  in
  let no_fuzz =
    Arg.(
      value & flag
      & info [ "no-fuzz" ]
          ~doc:"Run the paper's default query parameters on every seed.")
  in
  let no_chaos =
    Arg.(
      value & flag
      & info [ "no-chaos" ]
          ~doc:
            "Skip the fault-injection conformance grid (degraded runs \
             checked against fault-free ones).")
  in
  let nodes =
    Arg.(
      value
      & opt (list int) [ 2 ]
      & info [ "nodes" ] ~docv:"NODES"
          ~doc:"Node counts for the chaos conformance grid.")
  in
  let run () size seed quick seeds timeout out no_fuzz no_chaos nodes =
    let timeout = if quick then 30. else timeout in
    let config =
      {
        M.spec = Spec.of_size (if quick then Spec.Small else size);
        seeds = M.seeds_from ~base:seed (max 1 seeds);
        timeout_s = timeout;
        fuzz = not no_fuzz;
        progress = Some (fun s -> Printf.eprintf "%s\n%!" s);
      }
    in
    let cells = M.differential config in
    let chaos_cells =
      if no_chaos then [] else M.chaos_conformance ~node_counts:nodes config
    in
    let all = cells @ chaos_cells in
    print_endline (M.render all);
    print_string (M.summary all);
    (match out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (M.to_csv all);
      close_out oc;
      Printf.printf "wrote %d cells to %s\n" (List.length all) file);
    if not (M.conforming all) then exit 1
  in
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Check every engine's answers against the Vanilla R reference \
          (differential + fault-injected grids); exit 1 on any mismatch.")
    Term.(
      const run $ jobs_term $ size_arg $ seed_arg $ quick $ seeds $ timeout
      $ out $ no_fuzz $ no_chaos $ nodes)

(* --- trace --- *)

let trace_cmd =
  let module Obs = Gb_obs.Obs in
  let module Metric = Gb_obs.Metric in
  let module Tx = Gb_obs.Trace_export in
  let module H = Genbase.Harness in
  let query =
    Arg.(
      value
      & opt string "1"
      & info [ "query" ] ~docv:"QUERY"
          ~doc:"Query: 1-5, or regression, covariance, biclustering, svd, \
                statistics.")
  in
  let engine =
    Arg.(
      value
      & opt string "sql"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Engine name (see $(b,genbase list)); $(b,sql) is an alias for \
             the column store with in-database UDFs.")
  in
  let nodes =
    Arg.(
      value
      & opt int 1
      & info [ "nodes" ] ~docv:"N" ~doc:"Node count for multi-node engines.")
  in
  let timeout =
    Arg.(
      value
      & opt float 120.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Benchmark cut-off window.")
  in
  let out =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Output file for the Chrome trace_event JSON.")
  in
  let overhead_check =
    Arg.(
      value & flag
      & info [ "overhead-check" ]
          ~doc:
            "Instead of exporting a trace, measure the cell with tracing \
             disabled and enabled and exit 1 if the enabled run is more \
             than the budget slower.")
  in
  let overhead_budget =
    Arg.(
      value
      & opt float 5.0
      & info [ "overhead-budget" ] ~docv:"PERCENT"
          ~doc:"Allowed tracing overhead for --overhead-check.")
  in
  let resolve_query s =
    match s with
    | "1" -> Some Genbase.Query.Q1_regression
    | "2" -> Some Genbase.Query.Q2_covariance
    | "3" -> Some Genbase.Query.Q3_biclustering
    | "4" -> Some Genbase.Query.Q4_svd
    | "5" -> Some Genbase.Query.Q5_statistics
    | "6" -> Some Genbase.Query.Q6_overlap
    | s -> Genbase.Query.of_name s
  in
  let resolve_engine nodes name =
    let key = if name = "sql" then "colstore-udf" else name in
    List.assoc_opt key (engine_table nodes)
  in
  (* The check compares two measurements of the same cell taken moments
     apart, so it interleaves the disabled and enabled runs and keeps each
     side's best of several repetitions — otherwise transient machine load
     drowns the few-percent effect it is after (same trick as the
     harness's Phi comparison). One such round is still a single sample of
     a ~10ms cell, so the check takes the median ratio over several
     independent rounds: a round polluted by a scheduler hiccup gets
     voted out instead of failing CI. *)
  let overhead_pct e ds q ~timeout_s =
    let one enabled =
      Obs.set_enabled enabled;
      Obs.reset ();
      Metric.reset ();
      match Genbase.Engine.run e ds q ~timeout_s () with
      | Genbase.Engine.Completed (t, _) | Genbase.Engine.Degraded (t, _, _) ->
        Genbase.Engine.total t
      | o ->
        Printf.eprintf "engine did not complete: %s\n"
          (Format.asprintf "%a" Genbase.Engine.pp_outcome o);
        exit 1
    in
    let round () =
      let off = ref infinity and on_ = ref infinity in
      for _ = 1 to 6 do
        off := Float.min !off (one false);
        on_ := Float.min !on_ (one true)
      done;
      (!off, !on_)
    in
    let rounds = List.init 5 (fun _ -> round ()) in
    Obs.set_enabled false;
    let pcts =
      List.sort compare
        (List.map (fun (off, on) -> 100. *. ((on /. off) -. 1.)) rounds)
    in
    let median = List.nth pcts (List.length pcts / 2) in
    (rounds, median)
  in
  let run () size seed query engine nodes timeout out overhead_check budget =
    match (resolve_query query, resolve_engine nodes engine) with
    | None, _ ->
      Printf.eprintf "unknown query %s\n" query;
      exit 2
    | _, None ->
      Printf.eprintf "unknown engine %s (try `genbase list`)\n" engine;
      exit 2
    | Some q, Some e ->
      let ds = Gb_datagen.Generate.generate ~seed (Spec.of_size size) in
      if overhead_check then begin
        let rounds, median = overhead_pct e ds q ~timeout_s:timeout in
        List.iteri
          (fun i (off, on) ->
            Printf.printf
              "round %d: disabled best %.6fs  enabled best %.6fs  %+.2f%%\n" i
              off on
              (100. *. ((on /. off) -. 1.)))
          rounds;
        Printf.printf "median overhead: %+.2f%% (budget %.2f%%)\n" median
          budget;
        if median > budget then begin
          Printf.eprintf "tracing overhead exceeds budget\n";
          exit 1
        end
      end
      else begin
        Obs.set_enabled true;
        (* Export mode also profiles the GC, so cell spans and counters
           carry allocation deltas; the overhead check above leaves
           profiling off, matching the default-off contract it bounds. *)
        Gb_obs.Profile.set_enabled true;
        Obs.reset ();
        Metric.reset ();
        let cell = H.run_cell e ds q ~timeout_s:timeout in
        Obs.set_enabled false;
        Gb_obs.Profile.set_enabled false;
        let events = Obs.events () in
        let json = Tx.chrome_json events in
        let oc = open_out out in
        output_string oc json;
        close_out oc;
        (match Tx.validate_chrome json with
        | Ok n ->
          Printf.printf
            "wrote %s: %d events, valid Chrome trace JSON (load in \
             chrome://tracing or ui.perfetto.dev)\n"
            out n
        | Error msg ->
          Printf.eprintf "exported trace failed validation: %s\n" msg;
          exit 1);
        print_newline ();
        print_endline (Tx.flame events);
        print_endline (Tx.summary ~exclude_cat:"cell" events);
        (match cell.H.counters with
        | [] -> ()
        | counters ->
          print_endline "counters:";
          List.iter
            (fun (name, v) -> Printf.printf "  %-28s %.6g\n" name v)
            counters);
        let root =
          List.find_map
            (function
              | Obs.Span_ev s when s.Obs.cat = "cell" -> Some s.Obs.dur
              | _ -> None)
            events
        in
        match (root, H.total_seconds cell) with
        | Some dur, Some total when Float.is_finite total ->
          Printf.printf "\nroot span %.6fs vs harness total %.6fs (%+.3f%%)\n"
            dur total
            (if total > 0. then 100. *. ((dur /. total) -. 1.) else 0.)
        | _ ->
          Printf.printf "\ncell outcome: %s\n"
            (Format.asprintf "%a" Genbase.Engine.pp_outcome cell.H.outcome)
      end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one cell with tracing enabled and export a \
          Perfetto-loadable Chrome trace, or check the tracing overhead \
          budget with --overhead-check.")
    Term.(
      const run $ jobs_term $ size_arg $ seed_arg $ query $ engine $ nodes
      $ timeout $ out $ overhead_check $ overhead_budget)

(* --- bench-diff --- *)

let bench_diff_cmd =
  let module B = Gb_obs.Bench_json in
  let base =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASE" ~doc:"Baseline BENCH_<section>.json file.")
  in
  let cand =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate BENCH_<section>.json file.")
  in
  let threshold =
    Arg.(
      value
      & opt float 20.
      & info [ "threshold" ] ~docv:"PERCENT"
          ~env:(Cmd.Env.info "GENBASE_BENCH_THRESHOLD")
          ~doc:
            "Relative median change below which a difference is noise \
             (an absolute per-unit floor also applies).")
  in
  let run base cand threshold =
    match (B.read base, B.read cand) with
    | Error e, _ | _, Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
    | Ok b, Ok c ->
      if b.B.section <> c.B.section then
        Printf.printf "note: comparing section %S against %S\n" b.B.section
          c.B.section;
      Printf.printf "base:      %s (rev %s%s)\n" base b.B.git_rev
        (if b.B.quick then ", quick" else "");
      Printf.printf "candidate: %s (rev %s%s)\n" cand c.B.git_rev
        (if c.B.quick then ", quick" else "");
      let report = B.diff ~threshold_pct:threshold b c in
      print_string (B.render_report report);
      if B.regressions report <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two BENCH_<section>.json files written by the benchmark \
          driver; exit 1 when any benchmark's median worsened past the \
          noise threshold.")
    Term.(const run $ base $ cand $ threshold)

(* --- serve / load --- *)

(* Queue-policy flag: the conv rejects unknown names with a usage error
   and the accepted set is derived from Server.policies, so the flag's
   doc can never drift from the implementation. *)
let policy_conv =
  let parse s =
    match Gb_serve.Server.policy_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print fmt p =
    Format.pp_print_string fmt (Gb_serve.Server.policy_to_string p)
  in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value
    & opt policy_conv Gb_serve.Server.Fifo
    & info [ "queue-policy" ] ~docv:"POLICY"
        ~doc:
          (Printf.sprintf "Admission queue discipline: %s."
             (String.concat " or "
                (List.map
                   (fun (n, _) -> Printf.sprintf "$(b,%s)" n)
                   Gb_serve.Server.policies))))

(* Deadline flag: non-numeric, zero and negative values are usage
   errors, not runtime surprises. *)
let pos_float_conv what =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some f when f > 0. && Float.is_finite f -> Ok f
    | _ -> Error (`Msg (Printf.sprintf "%s must be a positive number, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_float)

let lanes_arg =
  Arg.(
    value
    & opt int 4
    & info [ "lanes" ] ~docv:"N" ~doc:"Concurrent query executions.")

let queue_depth_arg =
  Arg.(
    value
    & opt int 16
    & info [ "queue-depth" ] ~docv:"N" ~doc:"Admission queue bound.")

(* Scenario names and the usage text both come from Loadgen.scenarios,
   the same single-source pattern the bench driver uses for its section
   list. Shared by `load` and `metrics`. *)
let scenario_conv =
  let parse s =
    match Gb_serve.Loadgen.find_scenario s with
    | Ok sc -> Ok sc
    | Error msg -> Error (`Msg msg)
  in
  let print fmt (sc : Gb_serve.Loadgen.scenario) =
    Format.pp_print_string fmt sc.Gb_serve.Loadgen.sc_name
  in
  Arg.conv (parse, print)

let scenario_arg =
  Arg.(
    value
    & opt scenario_conv (List.hd Gb_serve.Loadgen.scenarios)
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Load scenario: %s."
             (String.concat "; "
                (List.map
                   (fun (s : Gb_serve.Loadgen.scenario) ->
                     Printf.sprintf "$(b,%s) (%s)" s.Gb_serve.Loadgen.sc_name
                       s.Gb_serve.Loadgen.descr)
                   Gb_serve.Loadgen.scenarios))))

let duration_arg =
  Arg.(
    value
    & opt (pos_float_conv "DURATION") 60.
    & info [ "duration" ] ~docv:"N"
        ~doc:"Arrival horizon, in units of the mean service time.")

let deadline_factor_arg =
  Arg.(
    value
    & opt (pos_float_conv "DEADLINE-FACTOR") 8.
    & info [ "deadline-factor" ] ~docv:"X"
        ~doc:"Per-query deadline as a multiple of the mean service time.")

(* Build identity as a constant-1 info gauge, so every exposition (and
   thus every archived dump) says which build produced it. *)
let g_build_info =
  Gb_obs.Telemetry.gauge_family
    ~help:"Build identity; constant 1, labels carry revision and toolchain"
    "genbase_build_info"

let set_build_info () =
  Gb_obs.Telemetry.set g_build_info
    [
      ("ocaml", Sys.ocaml_version);
      ("revision", Gb_obs.Bench_json.git_rev ());
    ]
    1.

(* Render the current telemetry snapshot, write it, and round-trip it
   through the strict mini-parser — a dump that does not re-render to
   the same bytes is a bug worth failing the run over. *)
let write_exposition file =
  let text = Gb_obs.Expo.render (Gb_obs.Telemetry.snapshot ()) in
  let oc = open_out file in
  output_string oc text;
  close_out oc;
  match Gb_obs.Expo.validate text with
  | Ok n ->
    Printf.printf "wrote %s: %d metric families, exposition round-trips\n"
      file n
  | Error msg ->
    Printf.eprintf "exposition failed round-trip validation: %s\n" msg;
    exit 1

let print_slo_report ?(oc = stdout) (i : Gb_serve.Loadgen.instrumented) =
  let module Slo = Gb_obs.Slo in
  let summary = i.Gb_serve.Loadgen.i_summary in
  let window = i.Gb_serve.Loadgen.i_window in
  let now = summary.Gb_serve.Loadgen.horizon_s in
  let horizon_s = Gb_obs.Telemetry.Window.horizon_s window in
  let p50, p99, p999 =
    Gb_serve.Loadgen.live_quantiles i ~now ~horizon_s
  in
  let fmt_q = function
    | Some v -> Printf.sprintf "%.6fs" v
    | None -> "-"
  in
  Printf.fprintf oc
    "live window (trailing %.1fs at t=%.3fs): p50 %s  p99 %s  p999 %s\n"
    horizon_s now (fmt_q p50) (fmt_q p99) (fmt_q p999);
  (* Ring churn: recycled slots are normal, dropped observations mean
     the live quantiles above have silent gaps. *)
  Printf.fprintf oc
    "live window churn: %d sub-window slots recycled, %d stale \
     observations dropped%s\n"
    (Gb_obs.Telemetry.Window.advanced window)
    (Gb_obs.Telemetry.Window.dropped window)
    (if Gb_obs.Telemetry.Window.dropped window > 0 then " (GAPS)" else "");
  List.iter
    (fun (name, burn_long, burn_short, events, firing) ->
      Printf.fprintf oc
        "slo %-28s burn_long %6.2f  burn_short %6.2f  events %6d  %s\n" name
        burn_long burn_short events
        (if firing then "FIRING" else "ok"))
    (Slo.summary i.Gb_serve.Loadgen.i_monitor);
  (match Slo.alerts i.Gb_serve.Loadgen.i_monitor with
  | [] -> Printf.fprintf oc "slo alerts: none\n"
  | alerts ->
    Printf.fprintf oc "slo alerts (%d):\n" (List.length alerts);
    List.iter
      (fun (a : Slo.alert) ->
        Printf.fprintf oc
          "  %9.3fs %-8s %-28s burn_long %6.2f burn_short %6.2f\n"
          a.Slo.a_at
          (if a.Slo.a_firing then "fire" else "resolve")
          a.Slo.a_slo a.Slo.a_burn_long a.Slo.a_burn_short)
      alerts);
  flush oc

let serve_cmd =
  let module Serve = Gb_serve in
  let deadline =
    Arg.(
      value
      & opt (pos_float_conv "DEADLINE") 60.
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-query deadline. Overrunning kernels are cancelled at \
             their next cooperative checkpoint and reported as \
             deadline-exceeded.")
  in
  let engines =
    Arg.(
      value
      & opt (list string) [ "r"; "colstore-udf"; "scidb" ]
      & info [ "engines" ] ~docv:"E1,E2,..."
          ~doc:"Engines to serve (keys as in $(b,genbase list).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write the final Prometheus text \
             exposition to FILE (round-trip validated).")
  in
  let run () size seed lanes queue_depth policy deadline engines metrics_out =
    let table = engine_table 1 in
    let resolved =
      List.map
        (fun key ->
          match List.assoc_opt key table with
          | Some e -> e
          | None ->
            Printf.eprintf "unknown engine %s (try `genbase list`)\n" key;
            exit 2)
        engines
    in
    let ds = Gb_datagen.Generate.generate ~seed (Spec.of_size size) in
    if metrics_out <> None then begin
      Gb_obs.Telemetry.set_enabled true;
      Gb_obs.Telemetry.reset ();
      set_build_info ()
    end;
    let config =
      {
        Serve.Live.lanes;
        queue_depth;
        policy;
        breaker = Serve.Breaker.default_config;
        budget = Genbase.Harness.memory_budget ();
      }
    in
    let t = Serve.Live.create ~config () in
    let handles =
      List.concat_map
        (fun e ->
          List.map
            (fun q ->
              ( e.Genbase.Engine.name,
                q,
                Serve.Live.submit t ~engine:e ~ds ~deadline_s:deadline q ))
            Genbase.Query.all)
        resolved
    in
    let responses =
      List.map (fun (en, q, h) -> (en, q, Serve.Live.await h)) handles
    in
    Serve.Live.shutdown t;
    Printf.printf "%-22s %-14s %-18s %10s %10s\n" "engine" "query"
      "disposition" "wait_s" "exec_s";
    List.iter
      (fun (en, q, (r : Serve.Outcome.response)) ->
        Printf.printf "%-22s %-14s %-18s %10.4f %10.4f\n" en
          (Genbase.Query.name q)
          (Serve.Outcome.label r) r.Serve.Outcome.queue_wait_s
          r.Serve.Outcome.exec_s)
      responses;
    let count p = List.length (List.filter (fun (_, _, r) -> p r) responses) in
    Printf.printf
      "\nserved %d (ok %d), shed %d, deadline-exceeded %d of %d submissions\n"
      (count (fun (r : Serve.Outcome.response) ->
           match r.Serve.Outcome.disposition with
           | Serve.Outcome.Served _ -> true
           | _ -> false))
      (count Serve.Outcome.goodput)
      (count (fun (r : Serve.Outcome.response) ->
           match r.Serve.Outcome.disposition with
           | Serve.Outcome.Shed _ -> true
           | _ -> false))
      (count (fun (r : Serve.Outcome.response) ->
           match r.Serve.Outcome.disposition with
           | Serve.Outcome.Deadline_exceeded _ -> true
           | _ -> false))
      (List.length responses);
    match metrics_out with
    | None -> ()
    | Some file ->
      Gb_obs.Telemetry.set_enabled false;
      print_newline ();
      write_exposition file
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the engine fleet behind the overload-safe serving layer: \
          every (engine, query) pair is submitted through admission \
          control with a per-query deadline and the responses are \
          tabulated.")
    Term.(
      const run $ jobs_term $ size_arg $ seed_arg $ lanes_arg
      $ queue_depth_arg $ policy_arg $ deadline $ engines $ metrics_out)

let load_cmd =
  let module Serve = Gb_serve in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the per-response latency table as CSV.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Enable telemetry and write the final Prometheus text \
             exposition to FILE; the run fails if the exposition does \
             not round-trip through the strict parser or the \
             interpolated p99 disagrees with the exact p99 beyond one \
             bucket width.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Enable tracing and write a Chrome trace of the run; every \
             admit/queue/exec/retry span of one logical request shares \
             one trace id.")
  in
  let record_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"DIR"
          ~doc:
            "Run with the always-on flight recorder and write every \
             anomaly-triggered dump (tail-sampled, validated Chrome \
             traces) into DIR, plus the recorder's keep/drop counters.")
  in
  let run scenario size seed duration lanes queue_depth policy
      deadline_factor csv_out metrics_out trace_out record_out =
    let module Tele = Gb_obs.Telemetry in
    let module Obs = Gb_obs.Obs in
    let module Tx = Gb_obs.Trace_export in
    let module Rec = Gb_obs.Recorder in
    let cfg =
      {
        (Serve.Loadgen.default_config scenario) with
        Serve.Loadgen.seed;
        size;
        duration;
        lanes;
        queue_depth;
        policy;
        deadline_factor;
      }
    in
    if metrics_out <> None then begin
      Tele.set_enabled true;
      Tele.reset ();
      set_build_info ()
    end;
    if trace_out <> None then begin
      Obs.set_enabled true;
      Obs.reset ()
    end;
    if record_out <> None then Rec.start ();
    (* Any dump implies the instrumented run: same simulation, same
       PRNG stream, plus the sliding window and the SLO monitor. *)
    let instrumented =
      if metrics_out <> None || trace_out <> None || record_out <> None then
        Some (Serve.Loadgen.run_instrumented cfg)
      else None
    in
    let responses, stats, summary =
      match instrumented with
      | Some i ->
        ( i.Serve.Loadgen.i_responses,
          i.Serve.Loadgen.i_stats,
          i.Serve.Loadgen.i_summary )
      | None -> Serve.Loadgen.run cfg
    in
    Tele.set_enabled false;
    Obs.set_enabled false;
    Rec.stop ();
    Format.printf "%a@." Serve.Loadgen.pp_summary summary;
    (match stats.Serve.Server.breaker_trips with
    | [] -> ()
    | trips ->
      List.iter
        (fun (engine, n) ->
          if n > 0 then Printf.printf "breaker %-24s tripped %d times\n" engine n)
        trips);
    (match instrumented with
    | None -> ()
    | Some i ->
      print_newline ();
      print_slo_report i);
    (match metrics_out with
    | None -> ()
    | Some file ->
      write_exposition file;
      (match Serve.Loadgen.p99_agreement summary with
      | None -> ()
      | Some (interp, exact, tolerance) ->
        Printf.printf
          "p99 agreement: interpolated %.6fs vs exact %.6fs (tolerance \
           %.6fs)\n"
          interp exact tolerance;
        if Float.abs (interp -. exact) > tolerance then begin
          Printf.eprintf
            "interpolated p99 disagrees with the exact p99 beyond one \
             bucket width\n";
          exit 1
        end));
    (match trace_out with
    | None -> ()
    | Some file ->
      let json = Tx.chrome_json (Obs.events ()) in
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      (match Tx.validate_chrome json with
      | Ok n -> Printf.printf "wrote %s: %d events, valid Chrome trace\n" file n
      | Error msg ->
        Printf.eprintf "exported trace failed validation: %s\n" msg;
        exit 1));
    (match record_out with
    | None -> ()
    | Some dir ->
      (try Unix.mkdir dir 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let st = Rec.stats () in
      Printf.printf
        "flight recorder: %d dumps (%d suppressed), traces kept %d tail + \
         %d failed + %d sampled of %d fast, %d ring drops\n"
        st.Rec.s_dumps st.Rec.s_suppressed st.Rec.s_tail_kept
        st.Rec.s_fail_kept st.Rec.s_fast_sampled
        (st.Rec.s_fast_sampled + st.Rec.s_fast_discarded)
        st.Rec.s_ring_dropped;
      List.iter
        (fun (d : Rec.dump) ->
          let json = Rec.chrome_of_dump d in
          (match Tx.validate_chrome json with
          | Ok _ -> ()
          | Error msg ->
            Printf.eprintf "dump %d failed trace validation: %s\n" d.Rec.d_seq
              msg;
            exit 1);
          (* Every dump must also satisfy the analyzer's blame-sum
             identity — a dump we cannot attribute is a bug. *)
          (match Gb_obs.Critpath.of_chrome json with
          | Error msg ->
            Printf.eprintf "dump %d unparseable: %s\n" d.Rec.d_seq msg;
            exit 1
          | Ok reqs -> (
            match Gb_obs.Critpath.check reqs with
            | Ok _ -> ()
            | Error msg ->
              Printf.eprintf "dump %d: %s\n" d.Rec.d_seq msg;
              exit 1));
          let file =
            Filename.concat dir
              (Printf.sprintf "dump-%02d-%s.json" d.Rec.d_seq
                 (Rec.reason_label d.Rec.d_reason))
          in
          let oc = open_out file in
          output_string oc json;
          close_out oc;
          Printf.printf
            "wrote %s: %s at t=%.3fs, %d events, %d kept traces\n" file
            (Rec.reason_label d.Rec.d_reason)
            d.Rec.d_at
            (List.length d.Rec.d_events)
            (List.length d.Rec.d_kept))
        (Rec.dumps ()));
    match csv_out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Serve.Loadgen.csv_of_responses responses);
      close_out oc;
      Printf.printf "wrote %s (%d responses)\n" file (List.length responses)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive the simulated server through a named overload scenario \
          with deterministic synthetic clients and report goodput, tail \
          latencies and shed/timeout counts. With $(b,--metrics) and \
          $(b,--trace), also dump a validated Prometheus exposition and \
          a request-linked Chrome trace, plus the SLO burn-rate report.")
    Term.(
      const run $ scenario_arg $ size_arg $ seed_arg $ duration_arg
      $ lanes_arg $ queue_depth_arg $ policy_arg $ deadline_factor_arg
      $ csv_out $ metrics_out $ trace_out $ record_out)

(* --- analyze / trace-diff --- *)

let read_whole_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let requests_of_trace_file path =
  match Gb_obs.Critpath.of_chrome (read_whole_file path) with
  | Error msg ->
    Printf.eprintf "%s: %s\n" path msg;
    exit 2
  | Ok reqs -> reqs

let analyze_cmd =
  let module Cp = Gb_obs.Critpath in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE.json"
          ~doc:
            "Chrome trace to analyze: a $(b,load --trace) export or a \
             flight-recorder dump from $(b,load --record).")
  in
  let check_only =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Only verify the blame-sum identity (every request's \
             critical-path segments sum exactly to its end-to-end \
             latency) and exit non-zero on any violation.")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N"
          ~doc:"Per-request rows to print (the profile is always full).")
  in
  let run file check_only limit =
    let reqs = requests_of_trace_file file in
    match Cp.check reqs with
    | Error msg ->
      Printf.eprintf "blame-sum identity violated: %s\n" msg;
      exit 1
    | Ok n ->
      if check_only then
        Printf.printf "blame-sum identity holds for all %d requests\n" n
      else begin
        Printf.printf "%d requests reconstructed from %s\n\n" n file;
        print_string (Cp.render_profile (Cp.profile reqs));
        print_newline ();
        print_string (Cp.render_requests ~limit reqs);
        Printf.printf "\nblame-sum identity holds for all %d requests\n" n
      end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct per-request critical paths from a Chrome trace and \
          print the cross-request blame profile (p50/p99 share of latency \
          per segment: queue, memory wait, breaker cooldown, retry \
          backoff, execution phases).")
    Term.(const run $ file $ check_only $ limit)

let trace_diff_cmd =
  let module Cp = Gb_obs.Critpath in
  let base =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASE" ~doc:"Baseline Chrome trace.")
  in
  let cand =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate Chrome trace.")
  in
  let run base cand =
    let b = requests_of_trace_file base in
    let c = requests_of_trace_file cand in
    Printf.printf "base:      %s (%d requests)\n" base (List.length b);
    Printf.printf "candidate: %s (%d requests)\n\n" cand (List.length c);
    print_string (Cp.render_diff (Cp.diff b c))
  in
  Cmd.v
    (Cmd.info "trace-diff"
       ~doc:
         "Compare two Chrome traces request-by-request and localize where \
          latency moved: mean seconds per request for every blame segment \
          in both captures, sorted by movement.")
    Term.(const run $ base $ cand)

(* --- metrics --- *)

let metrics_cmd =
  let module Serve = Gb_serve in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the exposition to FILE; by default it goes to stdout \
             and the SLO/quantile report to stderr.")
  in
  let run scenario size seed duration lanes queue_depth policy
      deadline_factor out =
    let module Tele = Gb_obs.Telemetry in
    let cfg =
      {
        (Serve.Loadgen.default_config scenario) with
        Serve.Loadgen.seed;
        size;
        duration;
        lanes;
        queue_depth;
        policy;
        deadline_factor;
      }
    in
    Tele.set_enabled true;
    Tele.reset ();
    set_build_info ();
    let i = Serve.Loadgen.run_instrumented cfg in
    Tele.set_enabled false;
    let text = Gb_obs.Expo.render (Tele.snapshot ()) in
    (match Gb_obs.Expo.validate text with
    | Ok _ -> ()
    | Error msg ->
      Printf.eprintf "exposition failed round-trip validation: %s\n" msg;
      exit 1);
    match out with
    | Some file ->
      let oc = open_out file in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s\n" file;
      print_slo_report i
    | None ->
      (* Keep stdout scrape-clean: the exposition alone goes there, so
         `genbase metrics > metrics.prom` yields a valid page; the
         human-facing report rides on stderr. *)
      print_string text;
      flush stdout;
      print_slo_report ~oc:stderr i
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run a load scenario with telemetry enabled and print the \
          Prometheus text exposition (round-trip validated by the \
          built-in strict parser), plus live window percentiles and the \
          SLO burn-rate report.")
    Term.(
      const run $ scenario_arg $ size_arg $ seed_arg $ duration_arg
      $ lanes_arg $ queue_depth_arg $ policy_arg $ deadline_factor_arg
      $ out)

(* --- stream --- *)

let stream_cmd =
  let module Ingest = Gb_stream.Ingest in
  let module Exec = Gb_stream.Exec in
  let module Check = Gb_stream.Check in
  let batches_arg =
    Arg.(
      value
      & opt int 8
      & info [ "batches" ] ~docv:"N"
          ~doc:"Ingest batches to draw from the dataset's stream seed.")
  in
  let crash_at_arg =
    Arg.(
      value
      & opt_all int []
      & info [ "crash-at" ] ~docv:"STEP"
          ~doc:
            "Inject a crash when the executor attempts batch $(docv) \
             (repeatable); recovery restores the last checkpoint and \
             replays.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt int 4
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint the live state and maintainers every N batches.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the Prometheus exposition (stream gauges included, \
             round-trip validated) to FILE.")
  in
  let run () size seed batches crash_at checkpoint_every metrics_out =
    let module Tele = Gb_obs.Telemetry in
    Tele.set_enabled true;
    Tele.reset ();
    set_build_info ();
    let spec = Spec.of_size size in
    let ds = Gb_datagen.Generate.generate ~seed spec in
    let log = Ingest.generate ~profile:(Ingest.profile ~batches ()) ds in
    let fault =
      match crash_at with
      | [] -> None
      | ks ->
        Some
          (Gb_fault.Fault.of_events
             (List.map
                (fun k -> Gb_fault.Fault.Node_crash { node = 0; superstep = k })
                ks))
    in
    let exec =
      Exec.create ~checkpoint_every ~queries:Genbase.Query.all ds log
    in
    let refresh_s = Hashtbl.create 8 in
    while Exec.lag exec > 0 do
      Exec.step ?fault exec;
      List.iter
        (fun q ->
          let t0 = Unix.gettimeofday () in
          ignore (Exec.refresh exec q);
          let dt = Unix.gettimeofday () -. t0 in
          Hashtbl.replace refresh_s q
            (dt :: (try Hashtbl.find refresh_s q with Not_found -> [])))
        Genbase.Query.all
    done;
    let c = Exec.counters exec in
    Printf.printf
      "ingested %d batches (%d rows, %d cell updates, %d variants); %d \
       checkpoints, %d crashes, %d batches replayed, %.3fs wasted\n"
      c.Exec.batches_applied c.Exec.rows_appended c.Exec.cells_updated
      c.Exec.variants_appended c.Exec.checkpoints c.Exec.crashes
      c.Exec.replayed_batches c.Exec.wasted_s;
    Printf.printf "watermark %d, lag %d\n\n" (Exec.watermark exec)
      (Exec.lag exec);
    let final = Exec.snapshot exec in
    Printf.printf "%-14s %12s %12s %8s  %s\n" "query" "refresh-p50"
      "recompute" "stale" "conformance (refresh vs one-shot)";
    List.iter
      (fun q ->
        let rs = List.sort compare (Hashtbl.find refresh_s q) in
        let p50 = List.nth rs (List.length rs / 2) in
        let recompute =
          match
            Genbase.Engine.run Gb_conformance.Oracle.reference final q
              ~timeout_s:600.0 ()
          with
          | Genbase.Engine.Completed (t, _) ->
            Printf.sprintf "%10.2fms" (1e3 *. Genbase.Engine.total t)
          | o -> Format.asprintf "%a" Genbase.Engine.pp_outcome o
        in
        (* classify force-refreshes (resetting the staleness counter),
           so read the counter first *)
        let stale = Exec.staleness exec q in
        let cls = Check.classify exec q in
        Printf.printf "%-14s %10.2fms %12s %8d  %s\n" (Genbase.Query.name q)
          (1e3 *. p50) recompute stale
          (Gb_conformance.Oracle.describe cls))
      Genbase.Query.all;
    Tele.set_enabled false;
    Option.iter write_exposition metrics_out
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Replay a deterministic ingest log through the incremental \
          maintainers, optionally crashing mid-stream, then check every \
          refreshed answer against a one-shot recompute and report \
          refresh latencies, staleness and recovery work.")
    Term.(
      const run $ jobs_term $ size_arg $ seed_arg $ batches_arg $ crash_at_arg
      $ checkpoint_arg $ metrics_out)

(* --- list --- *)

let list_cmd =
  let run () =
    print_endline "queries:";
    List.iter
      (fun q -> Printf.printf "  %-14s %s\n" (Genbase.Query.name q) (Genbase.Query.title q))
      Genbase.Query.all;
    print_endline "engines (single node):";
    List.iter
      (fun (key, e) ->
        if e.Genbase.Engine.kind = `Single_node then
          Printf.printf "  %-16s %s\n" key e.Genbase.Engine.name)
      (engine_table 1);
    print_endline "engines (multi-node; pass --nodes):";
    List.iter
      (fun (key, e) ->
        if e.Genbase.Engine.kind <> `Single_node then
          Printf.printf "  %-16s %s\n" key e.Genbase.Engine.name)
      (engine_table 2)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available queries and engines.")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "genbase" ~version:"1.0.0"
      ~doc:"The GenBase complex-analytics genomics benchmark."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; run_cmd; suite_cmd; chaos_cmd; conformance_cmd;
            explain_cmd; seqgen_cmd; trace_cmd; bench_diff_cmd; analyze_cmd;
            trace_diff_cmd; serve_cmd; load_cmd; metrics_cmd; stream_cmd;
            list_cmd;
          ]))
