open Gb_stats

let check_float = Alcotest.(check (float 1e-6))

let test_erf_known () =
  check_float "erf 0" 0. (Distributions.erf 0.);
  Alcotest.(check (float 1e-6)) "erf 1" 0.8427008 (Distributions.erf 1.);
  Alcotest.(check (float 1e-6)) "erf -1" (-0.8427008) (Distributions.erf (-1.));
  Alcotest.(check (float 1e-6)) "erfc 2" 0.0046777 (Distributions.erfc 2.)

let test_normal_cdf () =
  check_float "cdf 0" 0.5 (Distributions.normal_cdf 0.);
  Alcotest.(check (float 1e-5)) "cdf 1.96" 0.975 (Distributions.normal_cdf 1.96);
  Alcotest.(check (float 1e-5)) "sf 1.96" 0.025 (Distributions.normal_sf 1.96);
  Alcotest.(check (float 1e-5)) "two-sided 1.96" 0.05
    (Distributions.normal_two_sided_p 1.96)

let test_cdf_sf_complementary () =
  List.iter
    (fun z ->
      Alcotest.(check (float 1e-6)) "cdf + sf = 1" 1.
        (Distributions.normal_cdf z +. Distributions.normal_sf z))
    [ -3.; -0.5; 0.; 0.7; 2.5 ]

let test_ranks_simple () =
  let r = Ranking.ranks [| 10.; 30.; 20. |] in
  Alcotest.(check (array (float 1e-9))) "ranks" [| 1.; 3.; 2. |] r

let test_ranks_ties () =
  let r = Ranking.ranks [| 5.; 5.; 1.; 5. |] in
  Alcotest.(check (array (float 1e-9))) "mid ranks" [| 3.; 3.; 1.; 3. |] r

let test_ranks_sum_invariant () =
  let g = Gb_util.Prng.create 2L in
  let a = Array.init 100 (fun _ -> float_of_int (Gb_util.Prng.int g 10)) in
  let r = Ranking.ranks a in
  Alcotest.(check (float 1e-6)) "sum = n(n+1)/2" 5050.
    (Array.fold_left ( +. ) 0. r)

let test_tie_groups () =
  let groups = Ranking.tie_groups [| 1.; 2.; 2.; 3.; 3.; 3. |] in
  Alcotest.(check (list int)) "groups" [ 1; 2; 3 ] groups

let test_wilcoxon_separated () =
  let xs = Array.init 20 (fun i -> 100. +. float_of_int i) in
  let ys = Array.init 20 (fun i -> float_of_int i) in
  let r = Wilcoxon.rank_sum_test xs ys in
  Alcotest.(check bool) "tiny p" (r.Wilcoxon.p_value < 1e-6) true;
  Alcotest.(check bool) "positive z" (r.Wilcoxon.z > 0.) true

let test_wilcoxon_identical_distribution () =
  let g = Gb_util.Prng.create 17L in
  let xs = Array.init 50 (fun _ -> Gb_util.Prng.normal g) in
  let ys = Array.init 50 (fun _ -> Gb_util.Prng.normal g) in
  let r = Wilcoxon.rank_sum_test xs ys in
  Alcotest.(check bool) "not significant" (r.Wilcoxon.p_value > 0.01) true

let test_wilcoxon_symmetry () =
  let xs = [| 1.; 5.; 9. |] and ys = [| 2.; 3.; 8.; 10. |] in
  let a = Wilcoxon.rank_sum_test xs ys in
  let b = Wilcoxon.rank_sum_test ys xs in
  Alcotest.(check (float 1e-9)) "p symmetric" a.Wilcoxon.p_value b.Wilcoxon.p_value;
  Alcotest.(check (float 1e-9)) "z antisymmetric" a.Wilcoxon.z (-.b.Wilcoxon.z)

let test_wilcoxon_u_known () =
  (* Classic example: xs = {1,2}, ys = {3,4,5}: U for xs = 0. *)
  let r = Wilcoxon.rank_sum_test [| 1.; 2. |] [| 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "u" 0. r.Wilcoxon.u;
  Alcotest.(check (float 1e-9)) "rank sum" 3. r.Wilcoxon.rank_sum

let test_wilcoxon_from_ranks_matches () =
  let xs = [| 3.1; 0.2; 5.5; 2.2 |] and ys = [| 1.0; 4.4; 0.9; 7.7; 2.0 |] in
  let direct = Wilcoxon.rank_sum_test xs ys in
  let all = Array.append xs ys in
  let ranks = Ranking.ranks all in
  let in_group = Array.init 9 (fun i -> i < 4) in
  let via = Wilcoxon.from_ranks ~ranks ~in_group in
  Alcotest.(check (float 1e-9)) "same z" direct.Wilcoxon.z via.Wilcoxon.z;
  Alcotest.(check (float 1e-9)) "same p" direct.Wilcoxon.p_value via.Wilcoxon.p_value

let test_wilcoxon_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Wilcoxon.rank_sum_test: empty sample") (fun () ->
      ignore (Wilcoxon.rank_sum_test [||] [| 1. |]))

let test_descriptive () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check (float 1e-9)) "mean" 5. (Descriptive.mean a);
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Descriptive.variance a);
  Alcotest.(check (float 1e-9)) "median" 4.5 (Descriptive.median a);
  Alcotest.(check (float 1e-9)) "q0" 2. (Descriptive.quantile a 0.);
  Alcotest.(check (float 1e-9)) "q1" 9. (Descriptive.quantile a 1.)

let test_pearson () =
  let x = [| 1.; 2.; 3.; 4. |] in
  let y = [| 2.; 4.; 6.; 8. |] in
  Alcotest.(check (float 1e-9)) "perfect" 1. (Descriptive.pearson x y);
  let yneg = [| 8.; 6.; 4.; 2. |] in
  Alcotest.(check (float 1e-9)) "anti" (-1.) (Descriptive.pearson x yneg)

let prop_ranks_permutation_invariant =
  QCheck.Test.make ~name:"ranks bounded by n" ~count:100
    QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_range (-5.) 5.))
    (fun a ->
      let n = Array.length a in
      let r = Gb_stats.Ranking.ranks a in
      Array.for_all (fun v -> v >= 1. && v <= float_of_int n) r)

let prop_wilcoxon_p_in_range =
  QCheck.Test.make ~name:"wilcoxon p in [0,1]" ~count:100
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.int_range 1 30) (float_range (-3.) 3.))
        (array_of_size (QCheck.Gen.int_range 1 30) (float_range (-3.) 3.)))
    (fun (xs, ys) ->
      let r = Gb_stats.Wilcoxon.rank_sum_test xs ys in
      r.Gb_stats.Wilcoxon.p_value >= 0. && r.Gb_stats.Wilcoxon.p_value <= 1.)

(* Streaming-maintainer algebra: regressing through a mergeable moment
   sketch must not depend on how the patient rows were batched or
   permuted — merged per-batch sketches over a shuffled row order answer
   within 1e-9 of the one-shot sketch over the original order. *)
let prop_moments_regression_batch_invariant =
  let module Mat = Gb_linalg.Mat in
  let module Moments = Gb_linalg.Moments in
  let module Prng = Gb_util.Prng in
  QCheck.Test.make
    ~name:"batched-moment regression == one-shot (splits + permutations)"
    ~count:80
    (QCheck.make
       ~print:(fun (r, c, s) -> Printf.sprintf "%dx%d seed %Ld" r c s)
       QCheck.Gen.(
         int_range 1 6 >>= fun c ->
         int_range (c + 3) 40 >>= fun r ->
         map Int64.of_int (int_range 1 1_000_000) >|= fun s -> (r, c, s)))
    (fun (rows, preds, seed) ->
      let rng = Prng.create seed in
      let joint = Mat.random rng rows (preds + 1) in
      let oneshot = Moments.regression (Moments.of_matrix joint) in
      (* shuffle the rows, cut them into random batches, sketch each
         batch by rank-1 updates, merge pairwise *)
      let perm = Array.init rows Fun.id in
      Prng.shuffle rng perm;
      let merged = ref (Moments.create (preds + 1)) in
      let batch = ref (Moments.create (preds + 1)) in
      Array.iter
        (fun i ->
          Moments.add_row !batch (Mat.row joint i);
          if Prng.bool rng then begin
            merged := Moments.merge !merged !batch;
            batch := Moments.create (preds + 1)
          end)
        perm;
      let merged = Moments.merge !merged !batch in
      let m = Moments.regression merged in
      let diff =
        Array.fold_left max
          (Float.abs (m.Moments.intercept -. oneshot.Moments.intercept))
          (Array.map2
             (fun a b -> Float.abs (a -. b))
             m.Moments.coefficients oneshot.Moments.coefficients)
      in
      let diff =
        max diff (Float.abs (m.Moments.r_squared -. oneshot.Moments.r_squared))
      in
      if diff < 1e-9 then true
      else QCheck.Test.fail_reportf "max coefficient divergence %g" diff)

let suite =
  [
    ("erf known values", `Quick, test_erf_known);
    ("normal cdf", `Quick, test_normal_cdf);
    ("cdf/sf complementary", `Quick, test_cdf_sf_complementary);
    ("ranks simple", `Quick, test_ranks_simple);
    ("ranks ties", `Quick, test_ranks_ties);
    ("ranks sum invariant", `Quick, test_ranks_sum_invariant);
    ("tie groups", `Quick, test_tie_groups);
    ("wilcoxon separated", `Quick, test_wilcoxon_separated);
    ("wilcoxon identical", `Quick, test_wilcoxon_identical_distribution);
    ("wilcoxon symmetry", `Quick, test_wilcoxon_symmetry);
    ("wilcoxon U known", `Quick, test_wilcoxon_u_known);
    ("wilcoxon from_ranks matches", `Quick, test_wilcoxon_from_ranks_matches);
    ("wilcoxon empty", `Quick, test_wilcoxon_empty);
    ("descriptive", `Quick, test_descriptive);
    ("pearson", `Quick, test_pearson);
    QCheck_alcotest.to_alcotest prop_ranks_permutation_invariant;
    QCheck_alcotest.to_alcotest prop_wilcoxon_p_in_range;
    QCheck_alcotest.to_alcotest prop_moments_regression_batch_invariant;
  ]
