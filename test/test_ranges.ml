(* Unit and property tests for the Q6 interval primitives: the sweep
   kernel must agree exactly with the quadratic oracle, and the bin
   ownership rule must assign every pair to exactly one bin. *)

open Gb_util

let iv id lo hi = Ranges.make ~id ~lo ~hi

let canon pairs =
  List.sort
    (fun (a1, b1, _) (a2, b2, _) ->
      let c = Int.compare a1 a2 in
      if c <> 0 then c else Int.compare b1 b2)
    pairs

(* --- constructors and overlap length --- *)

let test_make_rejects_inverted () =
  Alcotest.check_raises "hi < lo" (Invalid_argument "Ranges.make: hi < lo")
    (fun () -> ignore (Ranges.make ~id:0 ~lo:5 ~hi:4))

let test_overlap_len_cases () =
  let check name expect a b =
    Alcotest.(check int) name expect (Ranges.overlap_len a b);
    Alcotest.(check int) (name ^ " (sym)") expect (Ranges.overlap_len b a)
  in
  check "disjoint" 0 (iv 0 0 10) (iv 1 20 30);
  check "adjacent share nothing" 0 (iv 0 0 10) (iv 1 10 20);
  check "partial" 5 (iv 0 0 10) (iv 1 5 15);
  check "nested" 4 (iv 0 0 100) (iv 1 50 54);
  check "identical" 10 (iv 0 3 13) (iv 1 3 13);
  check "empty interval" 0 (iv 0 5 5) (iv 1 0 10);
  check "point vs cover" 1 (iv 0 7 8) (iv 1 0 100)

let test_overlaps_min_overlap () =
  let a = iv 0 0 10 and b = iv 1 5 15 in
  Alcotest.(check bool) "5bp passes 5" true (Ranges.overlaps ~min_overlap:5 a b);
  Alcotest.(check bool) "5bp fails 6" false
    (Ranges.overlaps ~min_overlap:6 a b);
  (* min_overlap is clamped to >= 1: a zero-base touch never joins. *)
  Alcotest.(check bool) "adjacent fails min_overlap 0" false
    (Ranges.overlaps ~min_overlap:0 (iv 0 0 10) (iv 1 10 20))

(* --- joins on crafted edge cases --- *)

let edge_left =
  [|
    iv 0 0 10;
    (* duplicate coordinates, distinct ids *)
    iv 1 0 10;
    (* empty *)
    iv 2 5 5;
    (* point *)
    iv 3 7 8;
    (* nested inside 0/1 *)
    iv 4 2 4;
  |]

let edge_right =
  [|
    iv 0 0 3;
    (* adjacent to [0,10) *)
    iv 1 10 20;
    (* full cover *)
    iv 2 0 100;
    (* zero-overlap far away *)
    iv 3 1000 2000;
  |]

let test_joins_agree_on_edges () =
  let nl = canon (Ranges.nested_loop_join edge_left edge_right) in
  let sw = Ranges.sweep_join edge_left edge_right in
  Alcotest.(check (list (triple int int int))) "sweep = oracle" nl sw;
  (* empty interval (id 2) and the far interval (right id 3) join nothing;
     adjacency (left 0/1 vs right 1) contributes nothing. *)
  List.iter
    (fun (v, g, len) ->
      Alcotest.(check bool) "no empty left" true (v <> 2);
      Alcotest.(check bool) "no far right" true (g <> 3);
      Alcotest.(check bool) "positive overlap" true (len >= 1))
    sw;
  Alcotest.(check bool) "full cover catches point" true
    (List.mem (3, 2, 1) sw)

let test_join_zero_pairs () =
  let left = [| iv 0 0 5 |] and right = [| iv 0 10 15 |] in
  Alcotest.(check (list (triple int int int))) "no pairs" []
    (Ranges.sweep_join left right);
  Alcotest.(check int) "count" 0
    (Ranges.count_pairs (Ranges.nested_loop_join left right))

let test_join_empty_inputs () =
  Alcotest.(check (list (triple int int int))) "empty left" []
    (Ranges.sweep_join [||] edge_right);
  Alcotest.(check (list (triple int int int))) "empty right" []
    (Ranges.sweep_join edge_left [||])

(* --- bins --- *)

let test_bins () =
  let w = 100 in
  Alcotest.(check int) "bin_of" 1 (Ranges.bin_of ~bin_width:w 150);
  Alcotest.(check int) "bin_of negative floors" (-1)
    (Ranges.bin_of ~bin_width:w (-1));
  Alcotest.(check (list int)) "spanning" [ 0; 1; 2 ]
    (Ranges.bins_of ~bin_width:w (iv 0 50 250));
  Alcotest.(check (list int)) "within one bin" [ 3 ]
    (Ranges.bins_of ~bin_width:w (iv 0 310 320));
  Alcotest.(check (list int)) "empty touches none" []
    (Ranges.bins_of ~bin_width:w (iv 0 70 70))

let test_owns_pair_unique () =
  let w = 100 in
  (* The pair [50,250) x [150,400) overlaps in [150,250): owned only by
     the bin holding max(starts) = 150, i.e. bin 1 — even though the
     intervals jointly touch bins 0-3. *)
  let a = iv 0 50 250 and b = iv 1 150 400 in
  let owners =
    List.filter (fun bin -> Ranges.owns_pair ~bin_width:w ~bin a b) [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "exactly bin 1" [ 1 ] owners;
  Alcotest.(check bool) "owner bin touched by both" true
    (List.mem 1 (Ranges.bins_of ~bin_width:w a)
    && List.mem 1 (Ranges.bins_of ~bin_width:w b))

(* --- properties: sweep = oracle, invariance under permutation --- *)

let gen_ivs =
  QCheck.Gen.(
    let interval =
      pair (int_range 0 500) (int_range 0 60) >|= fun (start, len) ->
      (start, len)
    in
    array_size (int_range 0 40) interval >|= fun raw ->
    Array.mapi
      (fun id (start, len) -> Ranges.of_start_len ~id ~start ~len)
      raw)

let arb_sides =
  QCheck.make
    ~print:(fun (xs, ys) ->
      Printf.sprintf "%d x %d intervals" (Array.length xs) (Array.length ys))
    QCheck.Gen.(pair gen_ivs gen_ivs)

let prop_sweep_equals_nested_loop =
  QCheck.Test.make ~name:"sweep_join = sorted nested_loop_join" ~count:300
    arb_sides (fun (xs, ys) ->
      Ranges.sweep_join xs ys = canon (Ranges.nested_loop_join xs ys))

let prop_count_invariant_under_permutation =
  (* Shuffling the arrays (keeping ids) must not change the pair set:
     the sweep's sort makes the output order canonical regardless. *)
  QCheck.Test.make ~name:"pair set invariant under input permutation"
    ~count:200
    (QCheck.pair arb_sides QCheck.(int_bound 1000))
    (fun ((xs, ys), seed) ->
      let shuffled arr =
        let rng = Gb_util.Prng.create (Int64.of_int (seed + 1)) in
        let a = Array.copy arr in
        Gb_util.Prng.shuffle rng a;
        a
      in
      Ranges.sweep_join (shuffled xs) (shuffled ys) = Ranges.sweep_join xs ys)

let prop_bin_ownership_partitions =
  (* Every overlapping pair is owned by exactly one bin, and that bin is
     among the bins both intervals touch — the correctness of the
     shuffle-by-bin physical plans. *)
  QCheck.Test.make ~name:"each pair owned by exactly one touched bin"
    ~count:200 arb_sides (fun (xs, ys) ->
      let w = 64 in
      List.for_all
        (fun (v, g, _) ->
          let a = xs.(v) and b = ys.(g) in
          let shared =
            List.filter
              (fun bin -> List.mem bin (Ranges.bins_of ~bin_width:w b))
              (Ranges.bins_of ~bin_width:w a)
          in
          List.length
            (List.filter
               (fun bin -> Ranges.owns_pair ~bin_width:w ~bin a b)
               shared)
          = 1)
        (Ranges.sweep_join xs ys))

let suite =
  [
    ("make rejects inverted", `Quick, test_make_rejects_inverted);
    ("overlap_len cases", `Quick, test_overlap_len_cases);
    ("overlaps min_overlap", `Quick, test_overlaps_min_overlap);
    ("joins agree on edge cases", `Quick, test_joins_agree_on_edges);
    ("zero-overlap join", `Quick, test_join_zero_pairs);
    ("empty inputs", `Quick, test_join_empty_inputs);
    ("bins", `Quick, test_bins);
    ("pair ownership unique", `Quick, test_owns_pair_unique);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_sweep_equals_nested_loop;
        prop_count_invariant_under_permutation;
        prop_bin_ownership_partitions;
      ]
