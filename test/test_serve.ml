(* The serving layer: admission control, deadlines, load shedding,
   circuit breakers, the retrying client, the deterministic load
   generator, and the live (wall-clock) path's conformance with direct
   engine runs. Everything except the live tests runs on the sim clock,
   so outcome counts are asserted exactly. *)

open Genbase
module Serve = Gb_serve
module Server = Gb_serve.Server
module Outcome = Gb_serve.Outcome
module Breaker = Gb_serve.Breaker
module Client = Gb_serve.Client
module Loadgen = Gb_serve.Loadgen
module Estimate = Gb_serve.Estimate
module Spec = Gb_datagen.Spec
module Deadline = Gb_util.Deadline

(* --- request plumbing --- *)

let req ?(id = 1) ?(key = 0) ?(engine = "E") ?(query = Query.Q1_regression)
    ?(arrival = 0.) ?(deadline = 1e9) ?(service = 1.) ?(bytes = 1)
    ?(fail = false) ?trace () =
  {
    Server.id;
    key;
    trace = Option.value trace ~default:id;
    attempt = 1;
    engine;
    query;
    arrival_s = arrival;
    deadline_s = deadline;
    service_s = service;
    bytes;
    fail;
  }

let disposition (r : Outcome.response) = r.Outcome.disposition

let count responses p = List.length (List.filter p responses)

(* --- deadlines at the checkpoint boundary --- *)

(* A query finishing exactly at its deadline is served; one nanosecond
   of overrun is cancelled at the deadline instant. Mirrors
   Deadline.expired's strict comparison, which the kernels' cooperative
   checkpoints consult. *)
let test_deadline_boundary () =
  let config = { Server.default_config with lanes = 1; queue_depth = 4 } in
  let exact = req ~id:1 ~deadline:2. ~service:2. () in
  let over = req ~id:2 ~arrival:10. ~deadline:2. ~service:2.0000001 () in
  let responses, _ = Server.run ~config [ exact; over ] in
  match responses with
  | [ a; b ] ->
    Alcotest.(check bool)
      "exactly-at-deadline is served"
      (disposition a = Outcome.Served Outcome.Ok_)
      true;
    Alcotest.(check bool)
      "overrun is cancelled mid-execution"
      (disposition b = Outcome.Deadline_exceeded `Running)
      true;
    Alcotest.(check (float 1e-9))
      "cancelled at the deadline instant" 12. b.Outcome.finished_s;
    Alcotest.(check (float 1e-9)) "no overrun charged" 2. b.Outcome.exec_s
  | _ -> Alcotest.fail "expected two responses"

let test_deadline_in_queue () =
  (* One lane busy until t=10; the queued request's deadline (t=2) dies
     before a lane frees up. *)
  let config = { Server.default_config with lanes = 1; queue_depth = 4 } in
  let hog = req ~id:1 ~service:10. () in
  let starved = req ~id:2 ~arrival:0.5 ~deadline:1.5 ~service:1. () in
  let responses, _ = Server.run ~config [ hog; starved ] in
  let starved_r = List.find (fun r -> r.Outcome.id = 2) responses in
  Alcotest.(check bool)
    "expired while queued"
    (disposition starved_r = Outcome.Deadline_exceeded `Queued)
    true;
  Alcotest.(check (float 1e-9))
    "stamped at its deadline instant" 2. starved_r.Outcome.finished_s;
  Alcotest.(check (float 1e-9))
    "waited from arrival to deadline" 1.5 starved_r.Outcome.queue_wait_s

(* --- queue-full shedding under burst: exact counts --- *)

let test_burst_shedding_exact () =
  (* 2 lanes, depth-3 queue, 20 simultaneous unit-service arrivals with
     deadline 2. By hand: r1,r2 execute at t=0; r3,r4,r5 queue; r6..r20
     shed (15). At t=1, r3 and r4 dispatch and complete exactly at their
     deadline (served). At t=2, r5 dispatches with zero budget left and
     is cancelled on the spot. *)
  let config =
    { Server.default_config with lanes = 2; queue_depth = 3; policy = Server.Fifo }
  in
  let requests =
    List.init 20 (fun i -> req ~id:(i + 1) ~deadline:2. ~service:1. ())
  in
  let responses, stats = Server.run ~config requests in
  Alcotest.(check int) "every request answered" 20 (List.length responses);
  Alcotest.(check int) "served"
    4
    (count responses (fun r -> disposition r = Outcome.Served Outcome.Ok_));
  Alcotest.(check int) "shed on the full queue"
    15
    (count responses (fun r ->
         disposition r = Outcome.Shed Outcome.Queue_full));
  Alcotest.(check int) "cancelled at dispatch with spent budget"
    1
    (count responses (fun r ->
         disposition r = Outcome.Deadline_exceeded `Running));
  Alcotest.(check int) "queue never exceeded its bound" 3
    stats.Server.max_queue_len;
  let shed = List.find (fun r -> disposition r = Outcome.Shed Outcome.Queue_full) responses in
  Alcotest.(check bool)
    "queue-full shed carries a retry-after hint"
    (shed.Outcome.retry_after_s <> None)
    true

let test_sjf_order () =
  (* One lane busy until t=1; three queued jobs dispatch cheapest-first
     under SJF, arrival-first under FIFO. *)
  let mk policy =
    let config =
      { Server.default_config with lanes = 1; queue_depth = 8; policy }
    in
    let requests =
      [
        req ~id:1 ~service:1. ();
        req ~id:2 ~arrival:0.1 ~service:3. ();
        req ~id:3 ~arrival:0.2 ~service:2. ();
        req ~id:4 ~arrival:0.3 ~service:0.5 ();
      ]
    in
    let responses, _ = Server.run ~config requests in
    List.map
      (fun r -> r.Outcome.id)
      (List.sort
         (fun a b -> Float.compare a.Outcome.finished_s b.Outcome.finished_s)
         responses)
  in
  Alcotest.(check (list int)) "FIFO finishes in arrival order" [ 1; 2; 3; 4 ]
    (mk Server.Fifo);
  Alcotest.(check (list int)) "SJF finishes cheapest-first" [ 1; 4; 3; 2 ]
    (mk Server.Sjf)

let test_memory_admission () =
  (* Budget fits one heavy query at a time: the second waits for the
     first's release even though a lane is free; an over-capacity whale
     is shed outright. *)
  let config =
    { Server.default_config with lanes = 2; queue_depth = 8; mem_bytes = 100 }
  in
  let requests =
    [
      req ~id:1 ~service:1. ~bytes:80 ();
      req ~id:2 ~service:1. ~bytes:80 ();
      req ~id:3 ~service:1. ~bytes:101 ();
    ]
  in
  let responses, stats = Server.run ~config requests in
  let r1 = List.find (fun r -> r.Outcome.id = 1) responses in
  let r2 = List.find (fun r -> r.Outcome.id = 2) responses in
  let r3 = List.find (fun r -> r.Outcome.id = 3) responses in
  Alcotest.(check bool) "first served"
    (disposition r1 = Outcome.Served Outcome.Ok_)
    true;
  Alcotest.(check bool) "second serialized behind the budget"
    (disposition r2 = Outcome.Served Outcome.Ok_
    && r2.Outcome.queue_wait_s = 1.)
    true;
  Alcotest.(check bool) "whale shed"
    (disposition r3 = Outcome.Shed Outcome.Memory)
    true;
  Alcotest.(check bool) "reserved memory stayed within the budget"
    (stats.Server.max_mem_used <= 100)
    true

let test_server_deterministic () =
  let config = { Server.default_config with lanes = 2; queue_depth = 3 } in
  let requests =
    List.init 50 (fun i ->
        req ~id:(i + 1)
          ~arrival:(float_of_int (i mod 7) *. 0.3)
          ~deadline:4.
          ~service:(0.5 +. float_of_int (i mod 3))
          ())
  in
  let r1, s1 = Server.run ~config requests in
  let r2, s2 = Server.run ~config requests in
  Alcotest.(check bool) "responses replay bit-for-bit" (r1 = r2) true;
  Alcotest.(check bool) "stats replay bit-for-bit" (s1 = s2) true

(* --- circuit breaker on the sim clock --- *)

let test_breaker_transitions () =
  let t = ref 0. in
  let config =
    {
      Breaker.window = 8;
      min_samples = 4;
      failure_threshold = 0.5;
      cooldown_s = 5.;
      half_open_probes = 2;
    }
  in
  (* Observe the full lifecycle three ways: the callback sequence, the
     labeled state gauge, and the trace instants. *)
  let transitions = ref [] in
  Gb_obs.Obs.reset ();
  Gb_obs.Obs.set_enabled true;
  Gb_obs.Telemetry.set_enabled true;
  let b =
    Breaker.create ~config
      ~on_transition:(fun prev next -> transitions := (prev, next) :: !transitions)
      ~now:(fun () -> !t)
      "E"
  in
  Alcotest.(check bool) "starts closed" (Breaker.state b = Breaker.Closed) true;
  (* Two successes, then failures until the rate trips the window. *)
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Alcotest.(check bool) "50% of 4 samples trips"
    (Breaker.state b = Breaker.Open)
    true;
  Alcotest.(check int) "one trip recorded" 1 (Breaker.trips b);
  (match Breaker.admit b with
  | `Fast_fail retry_after ->
    Alcotest.(check (float 1e-9)) "retry-after spans the cooldown" 5.
      retry_after
  | `Admit -> Alcotest.fail "open breaker admitted");
  (* Cooldown elapses on the sim clock: half-open admits two probes and
     fast-fails the third. *)
  t := 5.;
  Alcotest.(check bool) "half-open after cooldown"
    (Breaker.state b = Breaker.Half_open)
    true;
  Alcotest.(check bool) "first probe admitted" (Breaker.admit b = `Admit) true;
  Alcotest.(check bool) "second probe admitted" (Breaker.admit b = `Admit) true;
  (match Breaker.admit b with
  | `Fast_fail _ -> ()
  | `Admit -> Alcotest.fail "third concurrent probe admitted");
  (* Both probes succeed: closed again, window reset. *)
  Breaker.record b ~ok:true;
  Breaker.record b ~ok:true;
  Alcotest.(check bool) "probe successes close the breaker"
    (Breaker.state b = Breaker.Closed)
    true;
  Alcotest.(check bool) "closed breaker admits" (Breaker.admit b = `Admit) true;
  (* The exact transition sequence, in order. *)
  Alcotest.(check bool)
    "transition sequence closed->open->half_open->closed"
    (List.rev !transitions
    = [
        (Breaker.Closed, Breaker.Open);
        (Breaker.Open, Breaker.Half_open);
        (Breaker.Half_open, Breaker.Closed);
      ])
    true;
  (* The labeled gauge tracks the final state (0 = closed). *)
  Alcotest.(check (float 1e-9))
    "breaker state gauge is closed" 0.
    (Gb_obs.Telemetry.gauge_value
       (Gb_obs.Telemetry.gauge_family "genbase_serve_breaker_state")
       [ ("engine", "E") ]);
  (* And each transition dropped a sim-track instant with from/to. *)
  let instants =
    List.filter
      (function
        | Gb_obs.Obs.Instant_ev { name; _ } -> name = "breaker.transition"
        | Gb_obs.Obs.Span_ev _ -> false)
      (Gb_obs.Obs.events ())
  in
  Alcotest.(check int) "three transition instants" 3 (List.length instants);
  Gb_obs.Obs.set_enabled false;
  Gb_obs.Telemetry.set_enabled false;
  Gb_obs.Obs.reset ()

let test_breaker_reopens_on_probe_failure () =
  let t = ref 0. in
  let config = { Breaker.default_config with min_samples = 2; cooldown_s = 1. } in
  let b = Breaker.create ~config ~now:(fun () -> !t) "E" in
  Breaker.record b ~ok:false;
  Breaker.record b ~ok:false;
  Alcotest.(check bool) "tripped" (Breaker.state b = Breaker.Open) true;
  t := 1.;
  Alcotest.(check bool) "probe admitted" (Breaker.admit b = `Admit) true;
  Breaker.record b ~ok:false;
  Alcotest.(check bool) "probe failure re-opens"
    (Breaker.state b = Breaker.Open)
    true;
  Alcotest.(check int) "second trip" 2 (Breaker.trips b);
  (* An abandoned probe (queued request that expired) releases its slot
     rather than wedging half-open. *)
  t := 2.;
  Alcotest.(check bool) "half-open again" (Breaker.admit b = `Admit) true;
  Breaker.abandon b;
  Alcotest.(check bool) "abandoned slot is reusable" (Breaker.admit b = `Admit)
    true

let test_breaker_sheds_in_server () =
  (* Engine B fails every execution; after its breaker trips, later
     arrivals shed fast with a retry-after instead of queueing. *)
  let breaker =
    { Breaker.default_config with window = 4; min_samples = 4; cooldown_s = 1e6 }
  in
  let config =
    { Server.default_config with lanes = 1; queue_depth = 32; breaker }
  in
  let requests =
    List.init 12 (fun i ->
        req ~id:(i + 1) ~engine:"B"
          ~arrival:(float_of_int i *. 2.)
          ~service:1. ~fail:true ())
  in
  let responses, stats = Server.run ~config requests in
  let failed =
    count responses (fun r -> disposition r = Outcome.Served Outcome.Failed_)
  in
  let shed =
    count responses (fun r -> disposition r = Outcome.Shed Outcome.Breaker_open)
  in
  Alcotest.(check int) "four failures feed the window" 4 failed;
  Alcotest.(check int) "the rest fast-fail" 8 shed;
  Alcotest.(check bool) "trip counted" (stats.Server.breaker_trips = [ ("B", 1) ])
    true

(* --- retrying client --- *)

let shed_response ?(retry_after = None) ~key ~attempt () =
  {
    Outcome.id = 1;
    key;
    trace = 1;
    attempt;
    engine = "E";
    query = Query.Q1_regression;
    submitted_s = 0.;
    finished_s = 0.;
    queue_wait_s = 0.;
    exec_s = 0.;
    disposition = Outcome.Shed Outcome.Queue_full;
    retry_after_s = retry_after;
    engine_outcome = None;
  }

let test_client_next_delay () =
  let policy = Client.default_policy in
  let d1 =
    Client.next_delay policy ~key:7 ~attempt:1 ~retry_after:None
      ~remaining_s:1e9
  in
  Alcotest.(check bool) "first retry scheduled" (d1 <> None) true;
  Alcotest.(check bool) "deterministic for a key"
    (d1
    = Client.next_delay policy ~key:7 ~attempt:1 ~retry_after:None
        ~remaining_s:1e9)
    true;
  (* Retry-after hints raise the delay, never lower it. *)
  (match
     ( d1,
       Client.next_delay policy ~key:7 ~attempt:1 ~retry_after:(Some 100.)
         ~remaining_s:1e9 )
   with
  | Some base, Some hinted ->
    Alcotest.(check (float 1e-9)) "hint dominates" 100. hinted;
    Alcotest.(check bool) "hint >= backoff" (hinted >= base) true
  | _ -> Alcotest.fail "expected delays");
  Alcotest.(check bool) "attempts exhausted"
    (Client.next_delay policy ~key:7
       ~attempt:policy.Client.backoff.Gb_fault.Retry.max_attempts
       ~retry_after:None ~remaining_s:1e9
    = None)
    true;
  Alcotest.(check bool) "budget cutoff"
    (Client.next_delay policy ~key:7 ~attempt:1 ~retry_after:None
       ~remaining_s:0.01
    = None)
    true

let test_client_call () =
  let sleeps = ref [] in
  let submissions = ref 0 in
  let final =
    Client.call ~key:3 ~budget_s:1e9
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      ~submit:(fun ~attempt ->
        incr submissions;
        if attempt < 3 then shed_response ~key:3 ~attempt ()
        else
          {
            (shed_response ~key:3 ~attempt ()) with
            Outcome.disposition = Outcome.Served Outcome.Ok_;
          })
      ()
  in
  Alcotest.(check int) "three submissions" 3 !submissions;
  Alcotest.(check int) "two backoff sleeps" 2 (List.length !sleeps);
  Alcotest.(check bool) "final response served"
    (disposition final = Outcome.Served Outcome.Ok_)
    true;
  Alcotest.(check int) "attempt echoed" 3 final.Outcome.attempt

(* --- cost model --- *)

let test_estimate_sanity () =
  List.iter
    (fun q ->
      let s = Estimate.service_s ~genes:5000 ~patients:5000 q in
      let b = Estimate.bytes ~genes:5000 ~patients:5000 q in
      Alcotest.(check bool) "positive finite service"
        (Float.is_finite s && s > 0.)
        true;
      Alcotest.(check bool) "positive working set" (b > 0) true;
      Alcotest.(check bool) "bigger data costs more"
        (Estimate.service_s ~genes:15000 ~patients:20000 q > s)
        true)
    Query.all;
  Alcotest.(check bool) "engine factors differentiate"
    (Estimate.service_s ~engine:"Hadoop" ~genes:5000 ~patients:5000
       Query.Q1_regression
    > Estimate.service_s ~engine:"SciDB + Xeon Phi" ~genes:5000 ~patients:5000
        Query.Q1_regression)
    true

(* --- load generator --- *)

let quick_cfg name =
  match Loadgen.find_scenario name with
  | Error e -> Alcotest.fail e
  | Ok sc -> { (Loadgen.default_config sc) with Loadgen.duration = 30. }

let test_loadgen_deterministic () =
  let r1, s1, sum1 = Loadgen.run (quick_cfg "chaos") in
  let r2, s2, sum2 = Loadgen.run (quick_cfg "chaos") in
  Alcotest.(check bool) "responses replay" (r1 = r2) true;
  Alcotest.(check bool) "stats replay" (s1 = s2) true;
  Alcotest.(check bool) "summary replays" (sum1 = sum2) true

(* The acceptance criterion: a 4x overload burst keeps the queue and
   memory bounded, resolves every excess query explicitly, and the
   admitted queries' goodput stays within 10% of the fleet's unloaded
   service capacity. *)
let test_overload_bounded_goodput () =
  let cfg = quick_cfg "overload" in
  let responses, stats, summary = Loadgen.run cfg in
  Alcotest.(check bool) "queue bounded"
    (stats.Server.max_queue_len <= cfg.Loadgen.queue_depth)
    true;
  (* Every submission resolved explicitly. *)
  Alcotest.(check int) "no silent drops" summary.Loadgen.attempts
    (List.length responses);
  Alcotest.(check bool) "excess load was shed or expired, not queued"
    (summary.Loadgen.shed_queue > 0)
    true;
  (* Goodput within 10% of the unloaded baseline: the served rate under
     4x overload is at least 90% of the configured service capacity
     (lanes / mean service time), i.e. admission control protects the
     queries it admits instead of collapsing under the burst. *)
  let genes, patients = Spec.paper_dims cfg.Loadgen.size in
  let services =
    List.concat_map
      (fun q ->
        List.map
          (fun engine -> Estimate.service_s ~engine ~genes ~patients q)
          cfg.Loadgen.engines)
      Query.all
  in
  let mean =
    List.fold_left ( +. ) 0. services /. float_of_int (List.length services)
  in
  let capacity_qps = float_of_int cfg.Loadgen.lanes /. mean in
  Alcotest.(check bool)
    (Printf.sprintf "goodput %.3f within 10%% of capacity %.3f"
       summary.Loadgen.goodput_qps capacity_qps)
    (summary.Loadgen.goodput_qps >= 0.9 *. capacity_qps)
    true;
  (* Memory stays bounded by the derived budget. *)
  let max_bytes =
    List.fold_left
      (fun a q ->
        max a (Estimate.bytes ~genes ~patients q))
      1 Query.all
  in
  Alcotest.(check bool) "memory bounded"
    (stats.Server.max_mem_used <= cfg.Loadgen.lanes * max_bytes)
    true

let test_loadgen_steady_clean () =
  let _, _, summary = Loadgen.run (quick_cfg "steady") in
  Alcotest.(check int) "no sheds at 0.6x load" 0
    (summary.Loadgen.shed_queue + summary.Loadgen.shed_mem
   + summary.Loadgen.shed_breaker);
  Alcotest.(check int) "no retries" 0 summary.Loadgen.retries;
  Alcotest.(check bool) "everything served"
    (summary.Loadgen.served_ok = summary.Loadgen.offered)
    true

let test_loadgen_chaos_trips () =
  let _, stats, summary = Loadgen.run (quick_cfg "chaos") in
  Alcotest.(check bool) "fault plan produced failures"
    (summary.Loadgen.served_failed > 0)
    true;
  Alcotest.(check bool) "breakers tripped" (summary.Loadgen.breaker_trips > 0)
    true;
  Alcotest.(check bool) "breaker sheds fast-failed"
    (summary.Loadgen.shed_breaker > 0)
    true;
  Alcotest.(check bool) "per-engine trip accounting"
    (List.exists (fun (_, n) -> n > 0) stats.Server.breaker_trips)
    true

(* --- ambient deadlines (the live path's cancellation mechanism) --- *)

let test_ambient_deadline () =
  Alcotest.(check bool) "unarmed outside" (Deadline.Ambient.armed ()) false;
  Deadline.Ambient.checkpoint ();
  (* no-op when unarmed *)
  let fired =
    try
      Deadline.Ambient.with_deadline
        (Deadline.start ~seconds:0.)
        (fun () ->
          Alcotest.(check bool) "armed inside" (Deadline.Ambient.armed ()) true;
          (* A zero-second deadline has already expired by the first
             checkpoint. *)
          Unix.sleepf 0.002;
          Deadline.Ambient.checkpoint ();
          false)
    with Deadline.Timeout -> true
  in
  Alcotest.(check bool) "checkpoint fires past the deadline" fired true;
  Alcotest.(check bool) "disarmed after" (Deadline.Ambient.armed ()) false

(* --- live path conformance: served results match direct runs --- *)

let tiny = Dataset.generate (Spec.custom ~genes:100 ~patients:120)

let live_engines =
  [ Engine_r.engine; Engine_sql.colstore_udf; Engine_scidb.engine ]

let test_live_matches_direct =
  QCheck.Test.make ~name:"served payloads equal direct engine runs" ~count:12
    QCheck.(pair (int_range 0 (List.length live_engines - 1)) (int_range 0 4))
    (fun (ei, qi) ->
      let engine = List.nth live_engines ei in
      let query = List.nth Query.all qi in
      let direct =
        Engine.run engine tiny query ~timeout_s:300. ()
      in
      let t = Serve.Live.create ~config:{ (Serve.Live.default_config ()) with Serve.Live.lanes = 1 } () in
      let served = Serve.Live.run t ~engine ~ds:tiny ~deadline_s:300. query in
      Serve.Live.shutdown t;
      match (served.Outcome.engine_outcome, direct) with
      | Some (Engine.Completed (_, p1)), Engine.Completed (_, p2) ->
        if p1 = p2 then true
        else QCheck.Test.fail_reportf "payloads differ for %s/%s"
            engine.Engine.name (Query.name query)
      | Some (Engine.Unsupported | Engine.Errored _), (Engine.Unsupported | Engine.Errored _) ->
        true
      | o, d ->
        QCheck.Test.fail_reportf "outcome mismatch for %s/%s: served %s, direct %s"
          engine.Engine.name (Query.name query)
          (match o with
          | None -> "none"
          | Some o -> Format.asprintf "%a" Engine.pp_outcome o)
          (Format.asprintf "%a" Engine.pp_outcome d))

let test_live_sheds_and_serves () =
  (* One lane, depth-1 queue, and an engine gated on a condition
     variable so the test controls exactly when the lane frees up: the
     first query occupies the lane, the second queues, and the rest of
     the burst sheds deterministically. *)
  let m = Mutex.create () in
  let cv = Condition.create () in
  let gate_open = ref false in
  let started = ref 0 in
  let gated_engine =
    {
      Engine.name = "Gated";
      kind = `Single_node;
      supports = (fun _ -> true);
      load =
        (fun _ _ ~params:_ ~timeout_s:_ ->
          Mutex.lock m;
          started := !started + 1;
          Condition.broadcast cv;
          while not !gate_open do
            Condition.wait cv m
          done;
          Mutex.unlock m;
          Engine.completed
            { Engine.dm = 0.; analytics = 0. }
            (Engine.Singular_values [| 1. |]));
    }
  in
  let config =
    {
      Serve.Live.lanes = 1;
      queue_depth = 1;
      policy = Server.Fifo;
      breaker = Breaker.default_config;
      budget = Gb_par.Budget.create ~bytes:max_int;
    }
  in
  let t = Serve.Live.create ~config () in
  let first =
    Serve.Live.submit t ~engine:gated_engine ~ds:tiny ~deadline_s:300.
      Query.Q4_svd
  in
  (* Wait until the lane actually holds the first query, so the rest of
     the burst observes a busy lane and a fillable queue. *)
  Mutex.lock m;
  while !started < 1 do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  let burst =
    List.init 5 (fun _ ->
        Serve.Live.submit t ~engine:gated_engine ~ds:tiny ~deadline_s:300.
          Query.Q4_svd)
  in
  Mutex.lock m;
  gate_open := true;
  Condition.broadcast cv;
  Mutex.unlock m;
  let responses = List.map Serve.Live.await (first :: burst) in
  Serve.Live.shutdown t;
  let served = count responses (fun r -> Outcome.goodput r) in
  let shed =
    count responses (fun r ->
        match disposition r with
        | Outcome.Shed Outcome.Queue_full -> true
        | _ -> false)
  in
  Alcotest.(check int) "every submission resolved" 6 (List.length responses);
  Alcotest.(check int) "lane + queue served" 2 served;
  Alcotest.(check int) "the rest of the burst shed" 4 shed;
  List.iter
    (fun r ->
      match disposition r with
      | Outcome.Shed Outcome.Queue_full ->
        Alcotest.(check bool) "shed carries retry-after"
          (r.Outcome.retry_after_s <> None)
          true
      | _ -> ())
    responses

(* --- request-scoped traces, SLO determinism, p99 agreement --- *)

module Obs = Gb_obs.Obs
module Telemetry = Gb_obs.Telemetry
module Slo = Gb_obs.Slo

(* Every span and instant of one logical request — admission decisions,
   queue wait, execution, retries — carries the same trace id, so a
   Chrome-trace consumer can stitch the request's life back together
   across shed/retry hops. *)
let test_trace_linked_spans () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    (fun () ->
      let _, _, summary = Loadgen.run (quick_cfg "overload") in
      Alcotest.(check bool) "scenario retried" (summary.Loadgen.retries > 0)
        true;
      let events = Obs.events () in
      let trace_of attrs =
        List.find_map
          (function "trace", Obs.Int t -> Some t | _ -> None)
          attrs
      in
      (* Group (name, attrs) by trace id across spans and instants. *)
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun ev ->
          let name, attrs =
            match ev with
            | Obs.Span_ev s -> (s.Obs.name, s.Obs.attrs)
            | Obs.Instant_ev { name; attrs; _ } -> (name, attrs)
          in
          match trace_of attrs with
          | None -> ()
          | Some t ->
            Hashtbl.replace tbl t (name :: Option.value ~default:[] (Hashtbl.find_opt tbl t)))
        events;
      (* At least one request must show the full retried lifecycle
         under one id: two admissions, a retry instant, and the
         queue/exec spans of the attempt that went through. *)
      let linked =
        Hashtbl.fold
          (fun _ names acc ->
            acc
            || List.mem "client.retry" names
               && List.mem "serve.admit" names
               && List.mem "queue" names
               && List.mem "exec" names
               && List.length (List.filter (( = ) "serve.admit") names) >= 2)
          tbl false
      in
      Alcotest.(check bool)
        "admit/queue/exec/retry of one request share a trace id" linked true)

(* The SLO monitor rides the deterministic simulation: same scenario and
   seed, same alert instants — and chaos must actually trip it. *)
let test_slo_chaos_deterministic () =
  let i1 = Loadgen.run_instrumented (quick_cfg "chaos") in
  let i2 = Loadgen.run_instrumented (quick_cfg "chaos") in
  let a1 = Slo.alerts i1.Loadgen.i_monitor in
  let a2 = Slo.alerts i2.Loadgen.i_monitor in
  Alcotest.(check bool) "chaos trips at least one alert"
    (List.exists (fun a -> a.Slo.a_firing) a1)
    true;
  Alcotest.(check bool) "alert instants replay exactly" (a1 = a2) true;
  Alcotest.(check bool) "bench records replay exactly"
    (Loadgen.slo_records i1 = Loadgen.slo_records i2)
    true;
  (* The instrumented run is the same simulation: summaries agree with
     the uninstrumented path bit-for-bit. *)
  let _, _, plain = Loadgen.run (quick_cfg "chaos") in
  Alcotest.(check bool) "instrumentation does not perturb the run"
    (i1.Loadgen.i_summary = plain)
    true

(* Acceptance: the interpolated p99 from the labeled latency histogram
   agrees with the load generator's exact post-hoc p99 within one bucket
   width. *)
let test_p99_agreement_overload () =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.reset ())
    (fun () ->
      let i = Loadgen.run_instrumented (quick_cfg "overload") in
      let summary = i.Loadgen.i_summary in
      match Loadgen.p99_agreement summary with
      | None -> Alcotest.fail "telemetry enabled but latency family empty"
      | Some (interp, exact, tolerance) ->
        Alcotest.(check bool)
          (Printf.sprintf
             "interpolated %.4f vs exact %.4f within tolerance %.4f" interp
             exact tolerance)
          (Float.abs (interp -. exact) <= tolerance)
          true;
        (* And the live window agrees about the order of magnitude at
           the end of the run. *)
        let p50, p99, _ =
          Loadgen.live_quantiles i ~now:summary.Loadgen.horizon_s
            ~horizon_s:(Telemetry.Window.horizon_s i.Loadgen.i_window)
        in
        Alcotest.(check bool) "live window populated"
          (p50 <> None && p99 <> None)
          true)

let suite =
  [
    ("deadline at checkpoint boundary", `Quick, test_deadline_boundary);
    ("deadline expiry in queue", `Quick, test_deadline_in_queue);
    ("burst shedding exact counts", `Quick, test_burst_shedding_exact);
    ("queue policies order work", `Quick, test_sjf_order);
    ("memory admission", `Quick, test_memory_admission);
    ("server deterministic", `Quick, test_server_deterministic);
    ("breaker transitions on sim clock", `Quick, test_breaker_transitions);
    ("breaker reopens on probe failure", `Quick,
     test_breaker_reopens_on_probe_failure);
    ("breaker sheds in server", `Quick, test_breaker_sheds_in_server);
    ("client backoff schedule", `Quick, test_client_next_delay);
    ("client retry loop", `Quick, test_client_call);
    ("cost model sanity", `Quick, test_estimate_sanity);
    ("loadgen deterministic", `Quick, test_loadgen_deterministic);
    ("overload bounded with goodput", `Quick, test_overload_bounded_goodput);
    ("steady scenario is clean", `Quick, test_loadgen_steady_clean);
    ("chaos trips breakers", `Quick, test_loadgen_chaos_trips);
    ("ambient deadline checkpoints", `Quick, test_ambient_deadline);
    ("live path sheds and serves", `Quick, test_live_sheds_and_serves);
    ("trace ids link admit/queue/exec/retry", `Quick, test_trace_linked_spans);
    ("slo alerts deterministic under chaos", `Quick,
     test_slo_chaos_deterministic);
    ("interpolated p99 agrees with exact", `Quick, test_p99_agreement_overload);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ test_live_matches_direct ]
