open Genbase
module Spec = Gb_datagen.Spec

let tiny = Dataset.generate (Spec.custom ~genes:60 ~patients:160)

let run_ok e q =
  match Engine.run e tiny q ~timeout_s:60. () with
  | Engine.Completed (t, p) ->
    Alcotest.(check bool) "dm >= 0" (t.Engine.dm >= 0.) true;
    Alcotest.(check bool) "analytics >= 0" (t.Engine.analytics >= 0.) true;
    p
  | o ->
    Alcotest.failf "%s on %s: %s" e.Engine.name (Query.name q)
      (Format.asprintf "%a" Engine.pp_outcome o)

let all_engines =
  [
    Engine_r.engine;
    Engine_sql.postgres_r;
    Engine_madlib.engine;
    Engine_sql.colstore_r;
    Engine_sql.colstore_udf;
    Engine_scidb.engine;
    Engine_phi.engine;
    Engine_hadoop.engine;
    Engine_pbdr.engine ~nodes:2;
    Engine_scidb_mn.engine ~nodes:2;
    Engine_colstore_mn.pbdr ~nodes:2;
    Engine_colstore_mn.udf ~nodes:2;
  ]

let supporting q =
  List.filter (fun e -> e.Engine.supports q) all_engines

(* --- cross-engine agreement --- *)

let test_q1_agreement () =
  let results =
    List.map (fun e -> (e.Engine.name, run_ok e Query.Q1_regression))
      (supporting Query.Q1_regression)
  in
  let ref_intercept, ref_coefs =
    match List.assoc "Vanilla R" results with
    | Engine.Regression r -> (r.intercept, r.coefficients)
    | _ -> Alcotest.fail "bad payload"
  in
  List.iter
    (fun (name, p) ->
      match p with
      | Engine.Regression r ->
        Alcotest.(check (float 1e-3)) (name ^ " intercept") ref_intercept
          r.intercept;
        Alcotest.(check int)
          (name ^ " coef count")
          (Array.length ref_coefs)
          (Array.length r.coefficients);
        Array.iteri
          (fun i c ->
            Alcotest.(check (float 1e-3)) (name ^ " coef") c r.coefficients.(i))
          ref_coefs
      | _ -> Alcotest.failf "%s: wrong payload kind" name)
    results

let test_q2_agreement () =
  let results =
    List.map (fun e -> (e.Engine.name, run_ok e Query.Q2_covariance))
      (supporting Query.Q2_covariance)
  in
  let ref_pairs =
    match List.assoc "SciDB" results with
    | Engine.Cov_pairs p -> p.top_pairs
    | _ -> Alcotest.fail "bad payload"
  in
  let key (a, b, _) = (a, b) in
  let ref_keys = List.map key ref_pairs in
  List.iter
    (fun (name, p) ->
      match p with
      | Engine.Cov_pairs p ->
        Alcotest.(check int) (name ^ " pair count") (List.length ref_pairs)
          (List.length p.top_pairs);
        (* Same gene pairs survive the threshold (order may vary on ties
           between near-equal covariances, so compare as sets). *)
        let keys = List.map key p.top_pairs in
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (Printf.sprintf "%s has pair (%d,%d)" name (fst k) (snd k))
              true (List.mem k keys))
          ref_keys
      | _ -> Alcotest.failf "%s: wrong payload kind" name)
    results

let test_q3_agreement () =
  let results =
    List.map (fun e -> (e.Engine.name, run_ok e Query.Q3_biclustering))
      (supporting Query.Q3_biclustering)
  in
  let reference =
    match List.assoc "Vanilla R" results with
    | Engine.Biclusters b -> b.clusters
    | _ -> Alcotest.fail "bad payload"
  in
  Alcotest.(check bool) "reference found clusters" (reference <> []) true;
  List.iter
    (fun (name, p) ->
      match p with
      | Engine.Biclusters b ->
        Alcotest.(check int) (name ^ " cluster count") (List.length reference)
          (List.length b.clusters);
        List.iter2
          (fun (r1, c1, _) (r2, c2, _) ->
            Alcotest.(check (array int)) (name ^ " rows") r1 r2;
            Alcotest.(check (array int)) (name ^ " cols") c1 c2)
          reference b.clusters
      | _ -> Alcotest.failf "%s: wrong payload kind" name)
    results

let test_q4_agreement () =
  let results =
    List.map (fun e -> (e.Engine.name, run_ok e Query.Q4_svd))
      (supporting Query.Q4_svd)
  in
  let reference =
    match List.assoc "Vanilla R" results with
    | Engine.Singular_values s -> s
    | _ -> Alcotest.fail "bad payload"
  in
  List.iter
    (fun (name, p) ->
      match p with
      | Engine.Singular_values s ->
        (* Approximate engines (MADlib power iteration) get a loose bound
           on the top value; exact Lanczos engines must agree closely. *)
        let tol = if name = "Postgres + Madlib" then 0.05 else 1e-5 in
        Alcotest.(check bool)
          (name ^ " top singular value")
          (Float.abs (s.(0) -. reference.(0)) < tol *. reference.(0) +. 1e-9)
          true
      | _ -> Alcotest.failf "%s: wrong payload kind" name)
    results

let test_q5_agreement () =
  let results =
    List.map (fun e -> (e.Engine.name, run_ok e Query.Q5_statistics))
      (supporting Query.Q5_statistics)
  in
  let reference =
    match List.assoc "Vanilla R" results with
    | Engine.Enrichment e -> e
    | _ -> Alcotest.fail "bad payload"
  in
  Alcotest.(check bool) "found enriched terms" (reference <> []) true;
  List.iter
    (fun (name, p) ->
      match p with
      | Engine.Enrichment e ->
        Alcotest.(check (list int))
          (name ^ " same terms")
          (List.map fst reference) (List.map fst e)
      | _ -> Alcotest.failf "%s: wrong payload kind" name)
    results

let test_q5_planted_terms_found () =
  match run_ok Engine_scidb.engine Query.Q5_statistics with
  | Engine.Enrichment found ->
    let found_ids = List.map fst found in
    Array.iter
      (fun term ->
        Alcotest.(check bool)
          (Printf.sprintf "planted term %d enriched" term)
          true (List.mem term found_ids))
      tiny.Gb_datagen.Generate.planted.Gb_datagen.Generate.enriched_terms
  | _ -> Alcotest.fail "bad payload"

(* --- support matrix --- *)

let test_support_matrix () =
  Alcotest.(check bool) "madlib no biclustering"
    (not (Engine_madlib.engine.Engine.supports Query.Q3_biclustering))
    true;
  Alcotest.(check bool) "hadoop no statistics"
    (not (Engine_hadoop.engine.Engine.supports Query.Q5_statistics))
    true;
  Alcotest.(check bool) "hadoop no biclustering"
    (not (Engine_hadoop.engine.Engine.supports Query.Q3_biclustering))
    true;
  List.iter
    (fun q ->
      Alcotest.(check bool) "scidb supports all"
        (Engine_scidb.engine.Engine.supports q)
        true)
    Query.all

let test_unsupported_outcome () =
  match
    Engine.run Engine_madlib.engine tiny Query.Q3_biclustering ~timeout_s:5. ()
  with
  | Engine.Unsupported -> ()
  | _ -> Alcotest.fail "expected Unsupported"

(* --- memory-budget behavior --- *)

let test_r_fails_on_large () =
  let large = Dataset.of_size Spec.Large in
  match Engine.run Engine_r.engine large Query.Q1_regression ~timeout_s:60. () with
  | Engine.Out_of_memory -> ()
  | o ->
    Alcotest.failf "expected out-of-memory, got %s"
      (Format.asprintf "%a" Engine.pp_outcome o)

let test_r_ok_on_small () =
  let small = Dataset.of_size Spec.Small in
  match Engine.run Engine_r.engine small Query.Q1_regression ~timeout_s:60. () with
  | Engine.Completed _ -> ()
  | o ->
    Alcotest.failf "expected success, got %s"
      (Format.asprintf "%a" Engine.pp_outcome o)

(* --- timeout behavior --- *)

let test_timeout_reported () =
  match
    Engine.run Engine_hadoop.engine tiny Query.Q4_svd ~timeout_s:0.2 ()
  with
  | Engine.Timed_out -> ()
  | o ->
    Alcotest.failf "expected timeout, got %s"
      (Format.asprintf "%a" Engine.pp_outcome o)

(* --- export boundary shows up in timing --- *)

let test_export_boundary_costs () =
  let medium = Dataset.of_size Spec.Medium in
  let dm_of e =
    match Engine.run e medium Query.Q1_regression ~timeout_s:120. () with
    | Engine.Completed (t, _) -> t.Engine.dm
    | _ -> Alcotest.fail "run failed"
  in
  let with_export = dm_of Engine_sql.colstore_r in
  let without = dm_of Engine_sql.colstore_udf in
  Alcotest.(check bool) "export costs more DM" (with_export > without) true

(* --- harness --- *)

let test_harness_cells_and_figures () =
  let config =
    { Harness.quick_config with timeout_s = 20. }
  in
  let cells = Harness.single_node_cells config in
  Alcotest.(check int) "7 engines x 6 queries" 42 (List.length cells);
  let figs = Harness.fig1 cells in
  Alcotest.(check int) "five charts" 5 (List.length figs);
  List.iter
    (fun f -> Alcotest.(check bool) "chart nonempty" (String.length f > 100) true)
    figs;
  let fig2 = Harness.fig2 cells in
  Alcotest.(check int) "two charts" 2 (List.length fig2);
  (* Figure 2 omits Postgres rows, per the paper. *)
  List.iter
    (fun chart ->
      Alcotest.(check bool) "no Postgres row"
        (not
           (String.split_on_char '\n' chart
           |> List.exists (fun line ->
                  String.length line > 2
                  && String.sub line 0 2 = "| "
                  && String.length line > 10
                  && String.sub line 2 8 = "Postgres")))
        true)
    fig2

let test_harness_total_seconds () =
  let c =
    {
      Harness.engine = "x";
      nodes = 1;
      query = Query.Q1_regression;
      size = Spec.Small;
      outcome = Engine.Timed_out;
      breakdown = [];
      counters = [];
    }
  in
  Alcotest.(check (option (float 0.))) "timeout is infinite" (Some infinity)
    (Harness.total_seconds c);
  let u = { c with outcome = Engine.Unsupported } in
  Alcotest.(check (option (float 0.))) "unsupported is none" None
    (Harness.total_seconds u)

let test_degenerate_selection_reports_error () =
  (* A disease id outside the generated range selects no patients; the
     covariance query cannot run, and the engine must report an error
     outcome rather than crash. *)
  let params = { Query.default_params with Query.disease_id = 9999 } in
  match
    Engine.run Engine_r.engine tiny Query.Q2_covariance ~params ~timeout_s:10.
      ()
  with
  | Engine.Errored _ -> ()
  | o ->
    Alcotest.failf "expected error outcome, got %s"
      (Format.asprintf "%a" Engine.pp_outcome o)

let test_errored_counts_as_infinite () =
  let c =
    {
      Harness.engine = "x";
      nodes = 1;
      query = Query.Q2_covariance;
      size = Spec.Small;
      outcome = Engine.Errored "boom";
      breakdown = [];
      counters = [];
    }
  in
  Alcotest.(check (option (float 0.))) "infinite" (Some infinity)
    (Harness.total_seconds c)

let suite =
  [
    ("q1 cross-engine agreement", `Quick, test_q1_agreement);
    ("q2 cross-engine agreement", `Quick, test_q2_agreement);
    ("q3 cross-engine agreement", `Quick, test_q3_agreement);
    ("q4 cross-engine agreement", `Quick, test_q4_agreement);
    ("q5 cross-engine agreement", `Quick, test_q5_agreement);
    ("q5 planted terms found", `Quick, test_q5_planted_terms_found);
    ("support matrix", `Quick, test_support_matrix);
    ("unsupported outcome", `Quick, test_unsupported_outcome);
    ("vanilla R fails on large", `Quick, test_r_fails_on_large);
    ("vanilla R ok on small", `Quick, test_r_ok_on_small);
    ("timeout reported", `Quick, test_timeout_reported);
    ("export boundary costs", `Quick, test_export_boundary_costs);
    ("harness cells and figures", `Slow, test_harness_cells_and_figures);
    ("harness outcome mapping", `Quick, test_harness_total_seconds);
    ("degenerate selection errors", `Quick, test_degenerate_selection_reports_error);
    ("errored counts as infinite", `Quick, test_errored_counts_as_infinite);
  ]

