(* Property-based checks on the linear-algebra kernels: QR orthogonality,
   SVD reconstruction, and Lanczos against the dense Jacobi eigensolver on
   random symmetric matrices. *)

module Mat = Gb_linalg.Mat
module Blas = Gb_linalg.Blas
module Qr = Gb_linalg.Qr
module Svd = Gb_linalg.Svd
module Lanczos = Gb_linalg.Lanczos
module Eigen = Gb_linalg.Eigen
module Prng = Gb_util.Prng

let seed_gen = QCheck.Gen.(map Int64.of_int (int_range 1 1_000_000))

let arb_tall =
  (* rows >= cols, as Householder QR requires *)
  QCheck.make
    ~print:(fun (r, c, s) -> Printf.sprintf "%dx%d seed %Ld" r c s)
    QCheck.Gen.(
      int_range 1 12 >>= fun c ->
      int_range c 30 >>= fun r ->
      seed_gen >|= fun s -> (r, c, s))

let random_mat rows cols seed = Mat.random (Prng.create seed) rows cols

let prop_qr_orthogonal =
  QCheck.Test.make ~name:"QR: Q has orthonormal columns" ~count:100 arb_tall
    (fun (rows, cols, seed) ->
      let q = Qr.q (Qr.factorize (random_mat rows cols seed)) in
      let qtq = Blas.ata q in
      let d = Mat.max_abs_diff qtq (Mat.identity cols) in
      if d < 1e-10 then true
      else QCheck.Test.fail_reportf "max |QᵀQ - I| = %g" d)

let prop_qr_reproduces =
  QCheck.Test.make ~name:"QR: Q·R reproduces the input" ~count:100 arb_tall
    (fun (rows, cols, seed) ->
      let m = random_mat rows cols seed in
      let f = Qr.factorize m in
      let d = Mat.max_abs_diff (Blas.gemm (Qr.q f) (Qr.r f)) m in
      if d < 1e-10 then true else QCheck.Test.fail_reportf "max |QR - M| = %g" d)

let prop_svd_reconstructs =
  QCheck.Test.make ~name:"SVD: full-rank reconstruction" ~count:60 arb_tall
    (fun (rows, cols, seed) ->
      let m = random_mat rows cols seed in
      let k = min rows cols in
      let svd = Svd.top_k ~rng:(Prng.create 1L) m k in
      let err = Svd.reconstruction_error m svd in
      let budget = 1e-6 *. Float.max 1. (Mat.frobenius m) in
      if err < budget then true
      else QCheck.Test.fail_reportf "‖M - USVᵀ‖ = %g (budget %g)" err budget)

let prop_svd_descending =
  QCheck.Test.make ~name:"SVD: singular values descending, non-negative"
    ~count:100 arb_tall (fun (rows, cols, seed) ->
      let svd = Svd.top_k ~rng:(Prng.create 1L) (random_mat rows cols seed) (min rows cols) in
      let ok = ref (Array.for_all (fun s -> s >= 0.) svd.Svd.s) in
      Array.iteri
        (fun i s -> if i > 0 && s > svd.Svd.s.(i - 1) +. 1e-12 then ok := false)
        svd.Svd.s;
      !ok)

let arb_sym =
  QCheck.make
    ~print:(fun (n, s) -> Printf.sprintf "%dx%d seed %Ld" n n s)
    QCheck.Gen.(pair (int_range 3 15) seed_gen)

(* B·Bᵀ: symmetric positive semi-definite with a generic spectrum. *)
let random_sym n seed = Blas.aat (random_mat n n seed)

let prop_lanczos_matches_dense =
  QCheck.Test.make ~name:"Lanczos matches dense Jacobi eigenvalues" ~count:60
    arb_sym (fun (n, seed) ->
      let a = random_sym n seed in
      let k = min n 5 in
      let lz = Lanczos.top_eigen ~rng:(Prng.create 2L) a k in
      let dense = Eigen.eigenvalues a in
      let scale = Float.max 1. (Float.abs dense.(0)) in
      let ok = ref true in
      for i = 0 to k - 1 do
        if Float.abs (lz.Lanczos.eigenvalues.(i) -. dense.(i)) /. scale > 1e-7
        then ok := false
      done;
      if !ok then true
      else
        QCheck.Test.fail_reportf "lanczos %s vs dense %s"
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "%.9g") lz.Lanczos.eigenvalues)))
          (String.concat " "
             (Array.to_list
                (Array.map (Printf.sprintf "%.9g") (Array.sub dense 0 k)))))

(* --- parallel kernels vs sequential, via the conformance comparators ---

   The Domain-pool kernels partition over output elements, so any domain
   count must reproduce the sequential bits exactly; the conformance
   comparator check (the cross-engine tolerance machinery) is the
   coarser contract the benchmark itself relies on, asserted on top. *)

let with_jobs jobs f =
  Gb_par.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Gb_par.Pool.reset_jobs ()) f

let arb_cov =
  (* Covariance.matrix needs at least two rows. *)
  QCheck.make
    ~print:(fun (r, c, s) -> Printf.sprintf "%dx%d seed %Ld" r c s)
    QCheck.Gen.(
      int_range 2 10 >>= fun c ->
      int_range (max 2 c) 24 >>= fun r ->
      seed_gen >|= fun s -> (r, c, s))

let prop_parallel_gemm_bitwise =
  QCheck.Test.make ~name:"parallel GEMM bitwise-matches sequential" ~count:40
    arb_cov (fun (rows, cols, seed) ->
      let a = random_mat rows cols seed in
      let b = random_mat cols rows (Int64.add seed 1L) in
      (* One multiply per jobs level, fingerprinted bit-exactly. *)
      let product jobs =
        with_jobs jobs (fun () ->
            let c = Blas.gemm a b in
            let flat = Array.init (rows * rows) (fun i ->
                Mat.get c (i / rows) (i mod rows))
            in
            Gb_conformance.Compare.fingerprint
              (Genbase.Engine.Singular_values flat))
      in
      let reference = product 1 in
      if product 1 <> reference then
        QCheck.Test.fail_report "1-domain GEMM not deterministic"
      else
        match List.find_opt (fun j -> product j <> reference) [ 2; 3; 4 ] with
        | Some j ->
          QCheck.Test.fail_reportf "GEMM at %d domains diverges bitwise" j
        | None -> true)

let prop_parallel_covariance_conforms =
  QCheck.Test.make ~name:"parallel covariance conforms to sequential"
    ~count:40 arb_cov (fun (rows, cols, seed) ->
      let m = random_mat rows cols seed in
      let gene_ids = Array.init cols Fun.id in
      let payload jobs =
        with_jobs jobs (fun () ->
            Genbase.Qcommon.covariance_of ~gene_ids ~top_fraction:0.5 m)
      in
      let reference = payload 1 in
      (* 1 domain is bitwise stable run-to-run. *)
      if
        Gb_conformance.Compare.fingerprint (payload 1)
        <> Gb_conformance.Compare.fingerprint reference
      then QCheck.Test.fail_report "1-domain covariance not bit-stable"
      else
        let bad =
          List.filter_map
            (fun jobs ->
              let v =
                Gb_conformance.Compare.compare_payload
                  ~tol:Gb_conformance.Compare.approximate ~reference
                  (payload jobs)
              in
              if Gb_conformance.Compare.equivalent v then None
              else Some (jobs, Gb_conformance.Compare.divergence v))
            [ 2; 3; 4 ]
        in
        match bad with
        | [] -> true
        | (jobs, d) :: _ ->
          QCheck.Test.fail_reportf
            "covariance at %d domains diverges by %g under approximate tol"
            jobs d)

let prop_eigen_trace =
  QCheck.Test.make ~name:"dense eigenvalues sum to the trace" ~count:100
    arb_sym (fun (n, seed) ->
      let a = random_sym n seed in
      let trace = ref 0. in
      for i = 0 to n - 1 do
        trace := !trace +. Mat.get a i i
      done;
      let sum = Array.fold_left ( +. ) 0. (Eigen.eigenvalues a) in
      Float.abs (sum -. !trace) /. Float.max 1. (Float.abs !trace) < 1e-9)

(* Mergeable-moment laws behind the streaming covariance maintainer:
   sketching arbitrary batch splits of an arbitrary row permutation and
   merging must agree with the one-shot sketch to 1e-9, and downdating
   (remove_row) must be the inverse of add_row to the same tolerance. *)
module Moments = Gb_linalg.Moments

let arb_sketch =
  QCheck.make
    ~print:(fun (r, c, s) -> Printf.sprintf "%dx%d seed %Ld" r c s)
    QCheck.Gen.(
      int_range 1 8 >>= fun c ->
      int_range 2 40 >>= fun r ->
      seed_gen >|= fun s -> (r, c, s))

let max_abs a b =
  let d = ref 0. in
  Array.iteri (fun i v -> d := Float.max !d (Float.abs (v -. b.(i)))) a;
  !d

let prop_moments_merge_covariance =
  QCheck.Test.make
    ~name:"merged batched-moment covariance == one-shot (splits + permutations)"
    ~count:100 arb_sketch (fun (rows, cols, seed) ->
      let rng = Prng.create seed in
      let m = Mat.random rng rows cols in
      let oneshot = Moments.of_matrix m in
      let perm = Array.init rows Fun.id in
      Prng.shuffle rng perm;
      let merged = ref (Moments.create cols) in
      let batch = ref (Moments.create cols) in
      Array.iter
        (fun i ->
          Moments.add_row !batch (Mat.row m i);
          if Prng.bool rng then begin
            merged := Moments.merge !merged !batch;
            batch := Moments.create cols
          end)
        perm;
      let merged = Moments.merge !merged !batch in
      let d_mean = max_abs (Moments.means merged) (Moments.means oneshot) in
      let d_cov =
        Mat.max_abs_diff (Moments.covariance merged) (Moments.covariance oneshot)
      in
      if d_mean < 1e-9 && d_cov < 1e-9 then true
      else QCheck.Test.fail_reportf "mean %g cov %g" d_mean d_cov)

let prop_moments_downdate =
  QCheck.Test.make ~name:"remove_row inverts add_row" ~count:100 arb_sketch
    (fun (rows, cols, seed) ->
      let rng = Prng.create seed in
      let m = Mat.random rng (rows + 2) cols in
      (* keep at least 2 rows so covariance stays defined *)
      let removed = Array.init rows (fun _ -> Prng.bool rng) in
      let kept =
        Array.of_list
          (List.filteri (fun i _ -> i >= rows || not removed.(i))
             (List.init (rows + 2) Fun.id))
      in
      let sk = Moments.of_matrix m in
      Array.iteri
        (fun i r -> if r then Moments.remove_row sk (Mat.row m i))
        removed;
      let direct = Moments.of_matrix (Mat.sub_rows m kept) in
      let d = Mat.max_abs_diff (Moments.covariance sk) (Moments.covariance direct) in
      if d < 1e-9 then true else QCheck.Test.fail_reportf "cov diff %g" d)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_qr_orthogonal;
      prop_qr_reproduces;
      prop_svd_reconstructs;
      prop_svd_descending;
      prop_lanczos_matches_dense;
      prop_eigen_trace;
      prop_parallel_gemm_bitwise;
      prop_parallel_covariance_conforms;
      prop_moments_merge_covariance;
      prop_moments_downdate;
    ]
