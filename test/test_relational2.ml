(* B+-tree, secondary indexes, sort-merge join, zone maps, and the logical
   planner. *)

open Gb_relational

let rows_eq =
  Alcotest.testable
    (fun fmt rows ->
      List.iter
        (fun r ->
          Array.iter (fun v -> Format.fprintf fmt "%a," Value.pp v) r;
          Format.fprintf fmt ";")
        rows)
    (fun a b ->
      List.length a = List.length b
      && List.for_all2 (fun x y -> Array.for_all2 Value.equal x y) a b)

let sort_rows rows =
  List.sort
    (fun a b ->
      compare (Array.map Value.to_string a) (Array.map Value.to_string b))
    rows

(* --- B+-tree --- *)

let test_btree_insert_find () =
  let t = Btree.create () in
  for i = 0 to 999 do
    Btree.insert t ((i * 7) mod 1000) i
  done;
  Alcotest.(check int) "size" 1000 (Btree.length t);
  for k = 0 to 999 do
    match Btree.find t k with
    | [ v ] -> Alcotest.(check int) "value" k ((v * 7) mod 1000)
    | other -> Alcotest.failf "key %d: %d values" k (List.length other)
  done;
  Alcotest.(check bool) "mem" (Btree.mem t 500) true;
  Alcotest.(check bool) "not mem" (not (Btree.mem t 1000)) true

let test_btree_duplicates () =
  let t = Btree.create () in
  List.iter (fun v -> Btree.insert t 5 v) [ "a"; "b"; "c" ];
  Btree.insert t 4 "x";
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ]
    (Btree.find t 5)

let test_btree_range () =
  let t = Btree.create () in
  for i = 0 to 99 do
    Btree.insert t (i * 2) i
  done;
  let r = Btree.range t ~lo:10 ~hi:20 in
  Alcotest.(check (list (pair int int))) "inclusive range"
    [ (10, 5); (12, 6); (14, 7); (16, 8); (18, 9); (20, 10) ]
    r;
  Alcotest.(check (list (pair int int))) "empty range" []
    (Btree.range t ~lo:201 ~hi:300)

let test_btree_iter_sorted () =
  let g = Gb_util.Prng.create 77L in
  let t = Btree.create () in
  for _ = 1 to 5000 do
    Btree.insert t (Gb_util.Prng.int g 100000) ()
  done;
  let last = ref min_int and count = ref 0 and ok = ref true in
  Btree.iter t (fun k () ->
      if k < !last then ok := false;
      last := k;
      incr count);
  Alcotest.(check bool) "sorted" !ok true;
  Alcotest.(check int) "all visited" 5000 !count;
  Alcotest.(check bool) "balanced height"
    (Btree.height t <= 4)
    true

let test_btree_min_max () =
  let t = Btree.create () in
  Alcotest.(check (option int)) "empty min" None (Btree.min_key t);
  List.iter (fun k -> Btree.insert t k ()) [ 42; 7; 99; 13 ];
  Alcotest.(check (option int)) "min" (Some 7) (Btree.min_key t);
  Alcotest.(check (option int)) "max" (Some 99) (Btree.max_key t)

let prop_btree_matches_assoc =
  QCheck.Test.make ~name:"btree find = assoc on random inserts" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 0 400) (int_range 0 50))
    (fun keys ->
      let t = Btree.create () in
      List.iteri (fun i k -> Btree.insert t k i) keys;
      List.for_all
        (fun probe ->
          let expected =
            List.filteri (fun _ k -> k = probe) keys
            |> List.mapi (fun _ _ -> ())
            |> List.length
          in
          List.length (Btree.find t probe) = expected)
        [ 0; 10; 25; 50 ])

(* --- Index --- *)

let people_schema =
  Schema.make
    [ ("id", Value.TInt); ("grp", Value.TInt); ("score", Value.TFloat) ]

let people_rows =
  List.init 200 (fun i ->
      [| Value.Int i; Value.Int (i mod 10); Value.Float (float_of_int i) |])

let test_index_lookup () =
  let rs = Row_store.of_rows people_schema people_rows in
  let idx = Index.build_row_store rs ~on:"grp" in
  Alcotest.(check int) "entries" 200 (Index.entry_count idx);
  let hits = Ops.to_list (Index.lookup idx 3) in
  Alcotest.(check int) "20 members of group 3" 20 (List.length hits);
  List.iter
    (fun row -> Alcotest.(check int) "group" 3 (Value.to_int row.(1)))
    hits

let test_index_range () =
  let rs = Row_store.of_rows people_schema people_rows in
  let idx = Index.build_row_store rs ~on:"id" in
  let hits = Ops.to_list (Index.range_scan idx ~lo:10 ~hi:14) in
  Alcotest.(check int) "five rows" 5 (List.length hits)

let test_index_join_matches_hash_join () =
  let rs = Row_store.of_rows people_schema people_rows in
  let idx = Index.build_row_store rs ~on:"grp" in
  let outer_schema = Schema.make [ ("grp", Value.TInt); ("tag", Value.TStr) ] in
  let outer_rows =
    [ [| Value.Int 1; Value.Str "one" |]; [| Value.Int 9; Value.Str "nine" |] ]
  in
  let via_index =
    Ops.to_list
      (Index.index_join (Ops.of_list outer_schema outer_rows) ~key:"grp" idx)
  in
  let via_hash =
    Ops.to_list
      (Ops.hash_join
         ~on:[ ("grp", "grp") ]
         (Ops.of_list outer_schema outer_rows)
         (Ops.scan_row_store rs))
  in
  Alcotest.check rows_eq "same result" (sort_rows via_hash)
    (sort_rows via_index)

let test_index_col_store () =
  let cs = Col_store.of_rows people_schema people_rows in
  let idx = Index.build_col_store cs ~on:"grp" ~cols:[ "grp"; "score" ] in
  let hits = Ops.to_list (Index.lookup idx 0) in
  Alcotest.(check int) "members" 20 (List.length hits);
  Alcotest.(check int) "narrow schema" 2 (Schema.arity (Index.schema idx))

(* --- merge join --- *)

let test_merge_join_matches_hash_join () =
  let g = Gb_util.Prng.create 5L in
  let schema = Schema.make [ ("k", Value.TInt); ("v", Value.TFloat) ] in
  let mk n =
    List.init n (fun i ->
        [| Value.Int (Gb_util.Prng.int g 20); Value.Float (float_of_int i) |])
  in
  let left = mk 150 and right = mk 60 in
  let h =
    Ops.to_list
      (Ops.hash_join ~on:[ ("k", "k") ] (Ops.of_list schema left)
         (Ops.of_list schema right))
  in
  let m =
    Ops.to_list
      (Ops.merge_join ~on:[ ("k", "k") ] (Ops.of_list schema left)
         (Ops.of_list schema right))
  in
  Alcotest.check rows_eq "same multiset" (sort_rows h) (sort_rows m)

let test_merge_join_empty_sides () =
  let schema = Schema.make [ ("k", Value.TInt) ] in
  let some = Ops.of_list schema [ [| Value.Int 1 |] ] in
  let none = Ops.of_list schema [] in
  Alcotest.(check int) "left empty" 0
    (Ops.count (Ops.merge_join ~on:[ ("k", "k") ] none some));
  let some2 = Ops.of_list schema [ [| Value.Int 1 |] ] in
  let none2 = Ops.of_list schema [] in
  Alcotest.(check int) "right empty" 0
    (Ops.count (Ops.merge_join ~on:[ ("k", "k") ] some2 none2))

(* --- zone maps --- *)

let test_zone_map_range_scan () =
  (* Sorted data: most blocks are skippable for a narrow range. *)
  let n = 20_000 in
  let schema = Schema.make [ ("k", Value.TInt); ("v", Value.TFloat) ] in
  let rows =
    List.init n (fun i -> [| Value.Int i; Value.Float (float_of_int (i * 2)) |])
  in
  let cs = Col_store.of_rows schema rows in
  let seq, skipped =
    Col_store.scan_range cs [ "k"; "v" ] ~on:"k" ~lo:100. ~hi:199.
  in
  let hits = List.of_seq seq in
  Alcotest.(check int) "100 rows" 100 (List.length hits);
  Alcotest.(check bool) "blocks skipped" (skipped >= 3) true;
  List.iter
    (fun row ->
      let k = Value.to_int row.(0) in
      Alcotest.(check bool) "in range" (k >= 100 && k <= 199) true)
    hits

let test_zone_map_matches_filter () =
  let g = Gb_util.Prng.create 6L in
  let schema = Schema.make [ ("x", Value.TFloat) ] in
  let rows =
    List.init 5_000 (fun _ -> [| Value.Float (Gb_util.Prng.normal g) |])
  in
  let cs = Col_store.of_rows schema rows in
  let seq, _ = Col_store.scan_range cs [ "x" ] ~on:"x" ~lo:0.5 ~hi:1.0 in
  let via_zones = List.of_seq seq in
  let via_filter =
    Ops.to_list
      (Ops.filter
         Expr.(col "x" >=% float 0.5 &&% (col "x" <=% float 1.0))
         (Ops.scan_col_store cs [ "x" ]))
  in
  Alcotest.check rows_eq "same rows" via_filter via_zones

(* --- planner --- *)

let catalog () =
  let genes =
    Col_store.of_rows
      (Schema.make [ ("gene_id", Value.TInt); ("func", Value.TInt) ])
      (List.init 40 (fun i -> [| Value.Int i; Value.Int (i * 25) |]))
  in
  let micro =
    Col_store.of_rows
      (Schema.make
         [ ("gene_id", Value.TInt); ("patient_id", Value.TInt); ("value", Value.TFloat) ])
      (List.concat_map
         (fun g ->
           List.init 5 (fun p ->
               [| Value.Int g; Value.Int p; Value.Float (float_of_int (g + p)) |]))
         (List.init 40 Fun.id))
  in
  let table = function
    | "genes" -> genes
    | "microarray" -> micro
    | t -> invalid_arg t
  in
  {
    Plan.scan = (fun t cols -> Ops.scan_col_store (table t) cols);
    schema_of = (fun t -> Col_store.schema (table t));
    row_count = (fun t -> Col_store.row_count (table t));
  }

let q () =
  Plan.Filter
    ( Expr.(col "func" <% int 250),
      Plan.Join
        {
          left = Plan.Scan ("microarray", []);
          right = Plan.Scan ("genes", []);
          on = [ ("gene_id", "gene_id") ];
        } )

let test_planner_semantics_preserved () =
  let cat = catalog () in
  let plan = q () in
  let naive = Ops.to_list (Plan.execute ~optimize_first:false cat plan) in
  let optimized = Ops.to_list (Plan.execute cat plan) in
  Alcotest.(check int) "10 genes x 5 patients" 50 (List.length naive);
  Alcotest.(check int) "optimized same count" 50 (List.length optimized)

let test_planner_pushes_predicate () =
  let cat = catalog () in
  let optimized = Plan.optimize cat (q ()) in
  (* The filter must now sit beneath the join, on the genes side. *)
  let rec has_filter_above_join = function
    | Plan.Filter (_, Plan.Join _) -> true
    | Plan.Filter (_, p) | Plan.Project (_, p) | Plan.Sort (_, p)
    | Plan.Limit (_, p) ->
      has_filter_above_join p
    | Plan.Join { left; right; _ } | Plan.Interval_join { left; right; _ } ->
      has_filter_above_join left || has_filter_above_join right
    | Plan.Aggregate { input; _ } -> has_filter_above_join input
    | Plan.Scan _ -> false
  in
  Alcotest.(check bool) "no filter above join"
    (not (has_filter_above_join optimized))
    true

let test_planner_prunes_columns () =
  let cat = catalog () in
  let plan = Plan.Project ([ "value" ], q ()) in
  let optimized = Plan.optimize cat plan in
  let rec scans acc = function
    | Plan.Scan (t, cols) -> (t, cols) :: acc
    | Plan.Filter (_, p) | Plan.Project (_, p) | Plan.Sort (_, p)
    | Plan.Limit (_, p) ->
      scans acc p
    | Plan.Join { left; right; _ } | Plan.Interval_join { left; right; _ } ->
      scans (scans acc left) right
    | Plan.Aggregate { input; _ } -> scans acc input
  in
  let micro_cols = List.assoc "microarray" (scans [] optimized) in
  Alcotest.(check bool) "patient_id pruned from microarray scan"
    (not (List.mem "patient_id" micro_cols))
    true;
  (* And the result is still correct. *)
  let rows = Ops.to_list (Plan.execute cat plan) in
  Alcotest.(check int) "rows" 50 (List.length rows);
  Alcotest.(check int) "single column" 1 (Array.length (List.hd rows))

let test_planner_aggregate () =
  let cat = catalog () in
  let plan =
    Plan.Aggregate
      {
        group_by = [ "patient_id" ];
        aggs = [ ("total", Ops.Sum "value") ];
        input = Plan.Scan ("microarray", []);
      }
  in
  let rows = Ops.to_list (Plan.execute cat plan) in
  Alcotest.(check int) "five patients" 5 (List.length rows)

let test_planner_explain () =
  let cat = catalog () in
  let text = Plan.explain cat (q ()) in
  Alcotest.(check bool) "mentions join"
    (Astring_contains.contains text "HashJoin")
    true;
  Alcotest.(check bool) "mentions scan"
    (Astring_contains.contains text "Scan microarray")
    true;
  Alcotest.(check bool) "has estimates" (Astring_contains.contains text "rows")
    true

let suite =
  [
    ("btree insert/find", `Quick, test_btree_insert_find);
    ("btree duplicates", `Quick, test_btree_duplicates);
    ("btree range", `Quick, test_btree_range);
    ("btree iter sorted + balanced", `Quick, test_btree_iter_sorted);
    ("btree min/max", `Quick, test_btree_min_max);
    QCheck_alcotest.to_alcotest prop_btree_matches_assoc;
    ("index lookup", `Quick, test_index_lookup);
    ("index range", `Quick, test_index_range);
    ("index join = hash join", `Quick, test_index_join_matches_hash_join);
    ("index over col store", `Quick, test_index_col_store);
    ("merge join = hash join", `Quick, test_merge_join_matches_hash_join);
    ("merge join empty sides", `Quick, test_merge_join_empty_sides);
    ("zone map range scan", `Quick, test_zone_map_range_scan);
    ("zone map matches filter", `Quick, test_zone_map_matches_filter);
    ("planner preserves semantics", `Quick, test_planner_semantics_preserved);
    ("planner pushes predicates", `Quick, test_planner_pushes_predicate);
    ("planner prunes columns", `Quick, test_planner_prunes_columns);
    ("planner aggregates", `Quick, test_planner_aggregate);
    ("planner explain", `Quick, test_planner_explain);
  ]
