(* The streaming subsystem: deterministic ingest logs, incremental
   maintainers vs one-shot recompute (the conformance oracle across
   several seeds), the watermark/checkpoint crash-recovery protocol, the
   Q3/Q4 staleness fallback, and the ingest telemetry gauges. *)

module G = Gb_datagen.Generate
module Spec = Gb_datagen.Spec
module Query = Genbase.Query
module Engine = Genbase.Engine
module Fault = Gb_fault.Fault
module Oracle = Gb_conformance.Oracle
module Compare = Gb_conformance.Compare
module Transform = Gb_conformance.Transform
module Live = Gb_stream.Live
module Ingest = Gb_stream.Ingest
module Exec = Gb_stream.Exec
module Check = Gb_stream.Check
module Tele = Gb_obs.Telemetry

let spec = Spec.custom ~genes:60 ~patients:160
let seeds = [ 0x5EEDL; 1L; 0xBEEFL ]
let all_queries = Query.all

let test_log_deterministic () =
  let ds = G.generate ~seed:0x5EEDL spec in
  let l1 = Ingest.generate ds and l2 = Ingest.generate ds in
  Alcotest.(check bool) "same log twice" true (l1 = l2);
  let other = Ingest.generate ~seed:77L ds in
  Alcotest.(check bool) "explicit seed changes the log" false (l1 = other);
  let ds2 = G.generate ~seed:1L spec in
  Alcotest.(check bool)
    "different dataset seed, different stream seed" false
    (Int64.equal ds.G.stream_seed ds2.G.stream_seed)

(* The PR-7 split discipline: the stream seed is the generator root's
   LAST split, so it perturbs nothing — the dataset digest for the
   pinned seed must equal the golden recorded before lib/stream existed
   (the per-query payload pins live in test_conformance). *)
let test_split_leaves_base_unchanged () =
  let ds = G.generate ~seed:0x5EEDL spec in
  Alcotest.(check string)
    "dataset digest matches the pre-stream golden"
    "9a964c724380924915d339638202d796"
    (Transform.dataset_fingerprint ds);
  let before = Transform.dataset_fingerprint ds in
  let _log = Ingest.generate ds in
  Alcotest.(check string) "generating a log mutates nothing" before
    (Transform.dataset_fingerprint ds)

let test_zero_event_snapshot () =
  let ds = G.generate ~seed:2L spec in
  let live = Live.of_dataset ds in
  Alcotest.(check string)
    "snapshot before any event has the base fingerprint"
    (Transform.dataset_fingerprint ds)
    (Transform.dataset_fingerprint (Live.snapshot live))

let test_materialize_shapes () =
  let ds = G.generate ~seed:3L spec in
  let profile = Ingest.profile ~batches:5 ~appends:7 ~updates:3 ~variants:2 () in
  let log = Ingest.generate ~profile ds in
  let final = Ingest.materialize ds log in
  Alcotest.(check int) "patients grew" (160 + (5 * 7))
    (Array.length final.G.patients);
  Alcotest.(check int) "variants grew"
    (Array.length ds.G.variants + (5 * 2))
    (Array.length final.G.variants);
  Alcotest.(check int) "spec tracks the live patient count" (160 + 35)
    final.G.spec.Spec.patients;
  Array.iteri
    (fun i (p : G.patient) ->
      if p.G.patient_id <> i then Alcotest.failf "patient id %d at %d" p.G.patient_id i)
    final.G.patients

(* Executor replay == one-shot materialization, and the executor's final
   snapshot is what the maintainers' answers are checked against. *)
let test_exec_matches_materialize () =
  let ds = G.generate ~seed:4L spec in
  let log = Ingest.generate ds in
  let exec = Exec.create ~queries:[] ds log in
  Exec.run exec;
  Alcotest.(check string) "exec == materialize"
    (Transform.dataset_fingerprint (Ingest.materialize ds log))
    (Transform.dataset_fingerprint (Exec.snapshot exec));
  Alcotest.(check int) "watermark at the tail"
    (Array.length log.Ingest.batches - 1)
    (Exec.watermark exec);
  Alcotest.(check int) "no lag" 0 (Exec.lag exec)

(* The tentpole acceptance check: incremental refresh equals one-shot
   recompute under the conformance oracle, across seeds — exact (zero
   divergence) for Q3/Q4/Q5/Q6, tolerance-profile for the Q1/Q2
   sketches. *)
let test_refresh_equals_recompute () =
  List.iter
    (fun seed ->
      let ds = G.generate ~seed spec in
      let log = Ingest.generate ds in
      let exec = Exec.create ~queries:all_queries ds log in
      Exec.run exec;
      List.iter
        (fun (q, cls) ->
          match cls with
          | Oracle.Match { divergence } -> (
            match q with
            | Query.Q1_regression | Query.Q2_covariance -> ()
            | _ ->
              if divergence <> 0.0 then
                Alcotest.failf "seed %Ld %s: expected exact, divergence %g"
                  seed (Query.name q) divergence)
          | other ->
            Alcotest.failf "seed %Ld %s: %s" seed (Query.name q)
              (Oracle.describe other))
        (Check.check_all exec all_queries))
    seeds

(* Mid-stream crashes: recovery restores the last checkpoint and replays;
   the final state and every exact answer are bit-identical to the clean
   run, and the conformance classification records the degradation. *)
let test_crash_replay_converges () =
  let ds = G.generate ~seed:0x5EEDL spec in
  let log = Ingest.generate ds in
  let fault =
    Fault.of_events
      [
        (* superstep 3 sits mid-interval (checkpoint at watermark 1), so
           recovery must actually replay; superstep 6 lands right on a
           checkpoint and replays nothing. *)
        Fault.Node_crash { node = 0; superstep = 3 };
        Fault.Node_crash { node = 0; superstep = 6 };
      ]
  in
  let clean = Exec.create ~checkpoint_every:2 ~queries:all_queries ds log in
  Exec.run clean;
  let faulty = Exec.create ~checkpoint_every:2 ~queries:all_queries ds log in
  Exec.run ~fault faulty;
  let c = Exec.counters faulty in
  Alcotest.(check int) "both crashes fired" 2 c.Exec.crashes;
  Alcotest.(check bool) "some batches replayed" true (c.Exec.replayed_batches >= 1);
  Alcotest.(check bool) "replay bounded by checkpoint interval" true
    (c.Exec.replayed_batches <= 2 * c.Exec.crashes);
  Alcotest.(check string) "live state converged"
    (Transform.dataset_fingerprint (Exec.snapshot clean))
    (Transform.dataset_fingerprint (Exec.snapshot faulty));
  List.iter
    (fun q ->
      Alcotest.(check string)
        (Printf.sprintf "%s answer bitwise equal after replay" (Query.name q))
        (Compare.fingerprint (Exec.refresh ~force:true clean q))
        (Compare.fingerprint (Exec.refresh ~force:true faulty q)))
    [ Query.Q5_statistics; Query.Q6_overlap ];
  List.iter
    (fun q ->
      match Check.classify faulty q with
      | Oracle.Degraded_match { recovery; _ } ->
        Alcotest.(check bool) "recovery recorded" true
          (recovery.Engine.recovered_nodes = 2 && recovery.Engine.retries >= 1)
      | other ->
        Alcotest.failf "%s after crash: %s" (Query.name q)
          (Oracle.describe other))
    [ Query.Q1_regression; Query.Q6_overlap ]

(* A crash before the first checkpoint must rebuild from the base. *)
let test_crash_before_first_checkpoint () =
  let ds = G.generate ~seed:9L spec in
  let log = Ingest.generate ds in
  let fault = Fault.of_events [ Fault.Node_crash { node = 0; superstep = 1 } ] in
  let exec = Exec.create ~checkpoint_every:100 ~queries:[ Query.Q6_overlap ] ds log in
  Exec.run ~fault exec;
  Alcotest.(check int) "crash fired" 1 (Exec.counters exec).Exec.crashes;
  Alcotest.(check string) "still converges"
    (Transform.dataset_fingerprint (Ingest.materialize ds log))
    (Transform.dataset_fingerprint (Exec.snapshot exec))

let test_staleness_fallback () =
  let ds = G.generate ~seed:5L spec in
  let log = Ingest.generate ds in
  (* Huge staleness bound: the cached Q3/Q4 payloads stay pinned at the
     base state while events accumulate. *)
  let config =
    { Gb_stream.Maintain.params = Query.default_params;
      staleness_limit = 1_000_000 }
  in
  let queries = [ Query.Q3_biclustering; Query.Q4_svd ] in
  let exec = Exec.create ~config ~queries ds log in
  let base_q4 = Exec.refresh exec Query.Q4_svd in
  Exec.run exec;
  Alcotest.(check bool) "rows accumulated staleness" true
    (Exec.staleness exec Query.Q4_svd > 0);
  Alcotest.(check string) "within the bound the cached answer is served"
    (Compare.fingerprint base_q4)
    (Compare.fingerprint (Exec.refresh exec Query.Q4_svd));
  ignore (Exec.refresh ~force:true exec Query.Q4_svd);
  Alcotest.(check int) "forced refresh resets staleness" 0
    (Exec.staleness exec Query.Q4_svd);
  (* Zero bound: any applied row forces recomputation on refresh. *)
  let config0 = { config with Gb_stream.Maintain.staleness_limit = 0 } in
  let exec0 = Exec.create ~config:config0 ~queries ds log in
  Exec.run exec0;
  let p = Exec.refresh exec0 Query.Q3_biclustering in
  Alcotest.(check int) "bound-triggered refresh resets staleness" 0
    (Exec.staleness exec0 Query.Q3_biclustering);
  match Check.classify exec0 Query.Q3_biclustering with
  | Oracle.Match { divergence } ->
    Alcotest.(check (float 0.0)) "recompute-fallback is exact" 0.0 divergence;
    ignore p
  | other -> Alcotest.failf "Q3 fallback: %s" (Oracle.describe other)

let test_telemetry_gauges () =
  Tele.set_enabled true;
  Tele.reset ();
  Fun.protect
    ~finally:(fun () ->
      Tele.reset ();
      Tele.set_enabled false)
    (fun () ->
      let ds = G.generate ~seed:6L spec in
      let log = Ingest.generate ds in
      let exec = Exec.create ~queries:[ Query.Q6_overlap ] ds log in
      Exec.run exec;
      let snap = Tele.snapshot () in
      let gauge name =
        match
          List.find_opt (fun f -> f.Tele.fam = name) snap
        with
        | Some { Tele.rows = [ (_, Tele.Sample v) ]; _ } -> v
        | _ -> Alcotest.failf "gauge family %s missing" name
      in
      Alcotest.(check (float 0.0))
        "stream_watermark at the last batch"
        (float_of_int (Array.length log.Ingest.batches - 1))
        (gauge "stream_watermark");
      Alcotest.(check (float 0.0)) "stream_ingest_lag drained" 0.0
        (gauge "stream_ingest_lag");
      (* Exposition round-trip: render, then strict-parse. *)
      let text = Gb_obs.Expo.render snap in
      (match Gb_obs.Expo.validate text with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "exposition round-trip: %s" e);
      Alcotest.(check bool) "watermark family rendered" true
        (let re = "stream_watermark" in
         let len = String.length re in
         let n = String.length text in
         let rec scan i =
           i + len <= n && (String.sub text i len = re || scan (i + 1))
         in
         scan 0))

(* The stream pseudo-engine plugs into the ordinary harness cell runner
   and classifies against the reference like any other engine. *)
let test_pseudo_engine () =
  let ds = G.generate ~seed:7L spec in
  let eng = Exec.engine () in
  let outcome =
    Engine.run eng ds Query.Q5_statistics ~timeout_s:60.0 ()
  in
  match outcome with
  | Engine.Completed (timing, payload) ->
    Alcotest.(check bool) "timed phases" true
      (timing.Engine.dm >= 0.0 && timing.Engine.analytics >= 0.0);
    let final = Ingest.materialize ds (Ingest.generate ds) in
    let reference =
      Engine.run Oracle.reference final Query.Q5_statistics ~timeout_s:60.0 ()
    in
    (match Engine.payload_of reference with
    | Some ref_payload ->
      Alcotest.(check string) "engine answer == recompute on final data"
        (Compare.fingerprint ref_payload)
        (Compare.fingerprint payload)
    | None -> Alcotest.fail "reference failed")
  | other -> Alcotest.failf "engine outcome: %a" Engine.pp_outcome other

(* The chaos-grid shape: the pseudo-engine armed with a scatter fault
   plan (the availability table's configuration) absorbs its crashes,
   reports Degraded with the recovery work, and still answers exactly
   like the fault-free run. *)
let test_engine_under_chaos_plan () =
  let ds = G.generate ~seed:8L spec in
  let fault =
    (* crash-only plan, hot enough to fire within a 64-batch log *)
    Fault.scatter ~seed:0xC7A05L ~nodes:1 ~supersteps:64 ~crash_p:0.1 ()
  in
  let profile = Ingest.profile ~batches:64 () in
  let q = Query.Q6_overlap in
  let clean =
    Engine.run (Exec.engine ~profile ()) ds q ~timeout_s:120.0 ()
  in
  let faulty =
    Engine.run (Exec.engine ~fault ~profile ()) ds q ~timeout_s:120.0 ()
  in
  match faulty with
  | Engine.Degraded (_, recovery, payload) ->
    Alcotest.(check bool) "recovery work recorded" true
      (recovery.Engine.recovered_nodes >= 1);
    (match Engine.payload_of clean with
    | Some ref_payload ->
      Alcotest.(check string) "degraded answer bitwise equals fault-free"
        (Compare.fingerprint ref_payload)
        (Compare.fingerprint payload)
    | None -> Alcotest.fail "fault-free run failed")
  | other -> Alcotest.failf "chaos-plan outcome: %a" Engine.pp_outcome other

let suite =
  [
    Alcotest.test_case "ingest log deterministic" `Quick test_log_deterministic;
    Alcotest.test_case "PRNG split leaves base tables unchanged" `Quick
      test_split_leaves_base_unchanged;
    Alcotest.test_case "zero-event snapshot fingerprints like the base" `Quick
      test_zero_event_snapshot;
    Alcotest.test_case "materialize grows the observation axes" `Quick
      test_materialize_shapes;
    Alcotest.test_case "executor replay == one-shot materialize" `Quick
      test_exec_matches_materialize;
    Alcotest.test_case "refresh == recompute across seeds (oracle)" `Slow
      test_refresh_equals_recompute;
    Alcotest.test_case "mid-stream crash: replay converges, degraded match"
      `Quick test_crash_replay_converges;
    Alcotest.test_case "crash before first checkpoint rebuilds from base"
      `Quick test_crash_before_first_checkpoint;
    Alcotest.test_case "Q3/Q4 staleness-bounded fallback" `Slow
      test_staleness_fallback;
    Alcotest.test_case "watermark and ingest-lag gauges" `Quick
      test_telemetry_gauges;
    Alcotest.test_case "stream pseudo-engine completes and conforms" `Quick
      test_pseudo_engine;
    Alcotest.test_case "chaos scatter plan: degraded, answer unchanged" `Quick
      test_engine_under_chaos_plan;
  ]
