(* Observability subsystem: span discipline (nesting, exception safety,
   balance), the disabled-mode zero-event contract, simulated-clock span
   determinism, counter snapshots, and the Chrome trace_event export
   round-trip. *)

open Gb_obs
module Cluster = Gb_cluster.Cluster

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* Every test runs with the collector reset and tracing enabled unless
   it says otherwise, and must leave tracing disabled for the rest of
   the suite (the flag is process-global). *)
let with_tracing ?(enabled = true) f =
  Obs.set_enabled enabled;
  Obs.reset ();
  Metric.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let spans events =
  List.filter_map
    (function Obs.Span_ev s -> Some s | Obs.Instant_ev _ -> None)
    events

(* --- span nesting, balance, exception safety --- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner" (fun () -> 42))
      in
      check Alcotest.int "result passes through" 42 r;
      check Alcotest.int "balanced after use" 0 (Obs.open_depth ());
      match spans (Obs.events ()) with
      | [ inner; outer ] ->
        (* Spans are recorded at close, so the inner span lands first. *)
        check Alcotest.string "inner first" "inner" inner.Obs.name;
        check Alcotest.string "outer second" "outer" outer.Obs.name;
        check Alcotest.int "inner's parent is outer" outer.Obs.id
          inner.Obs.parent;
        check Alcotest.int "outer is a root" (-1) outer.Obs.parent;
        checkb "inner contained in outer" true
          (inner.Obs.t0 >= outer.Obs.t0
          && inner.Obs.t0 +. inner.Obs.dur
             <= outer.Obs.t0 +. outer.Obs.dur +. 1e-9)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

exception Boom

let test_span_exception_balance () =
  with_tracing (fun () ->
      (try
         Obs.Span.with_ ~name:"outer" (fun () ->
             Obs.Span.with_ ~name:"failing" (fun () -> raise Boom))
       with Boom -> ());
      check Alcotest.int "stack balanced after raise" 0 (Obs.open_depth ());
      let ss = spans (Obs.events ()) in
      check Alcotest.int "both spans closed" 2 (List.length ss);
      let failing = List.find (fun s -> s.Obs.name = "failing") ss in
      checkb "raising span flagged as error" true
        (List.mem_assoc "error" failing.Obs.attrs);
      (* The collector must still be usable after an exception. *)
      Obs.Span.with_ ~name:"after" (fun () -> ());
      check Alcotest.int "subsequent spans are roots again" (-1)
        (List.find (fun s -> s.Obs.name = "after") (spans (Obs.events ())))
          .Obs.parent)

let test_dur_of_override () =
  with_tracing (fun () ->
      let r =
        Obs.Span.with_ ~name:"fixed" ~dur_of:(fun x -> Some (float_of_int x))
          (fun () -> 3)
      in
      check Alcotest.int "result" 3 r;
      match spans (Obs.events ()) with
      | [ s ] -> check (Alcotest.float 1e-12) "duration overridden" 3. s.Obs.dur
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

(* --- disabled mode records nothing --- *)

let test_disabled_zero_events () =
  with_tracing ~enabled:false (fun () ->
      let c = Metric.counter ~unit_:"op" "test.disabled" in
      Obs.Span.with_ ~name:"invisible" (fun () ->
          Obs.Span.emit ~name:"sim" ~t0:0. ~t1:1. ();
          Obs.Span.instant ~name:"blip" ();
          Metric.add c 7;
          Obs.Log.line ~sink:ignore "progress");
      check Alcotest.int "no events collected" 0 (Obs.event_count ());
      check (Alcotest.float 0.) "counter untouched" 0. (Metric.value c);
      check Alcotest.int "no open frames" 0 (Obs.open_depth ()))

(* --- simulated-clock spans are a pure function of the seed --- *)

let sim_run () =
  Obs.reset ();
  Metric.reset ();
  let c = Cluster.create ~nodes:3 () in
  Cluster.set_task_cost c (Some 0.02);
  Cluster.set_fault_plan c
    (Genbase.Harness.chaos_plan Genbase.Harness.default_chaos
       ~engine:"obs-test" ~nodes:3);
  for _ = 1 to 4 do
    ignore (Cluster.superstep c (fun rank -> rank));
    ignore (Cluster.allreduce_sum c (Array.make 3 [| 1.; 2. |]))
  done;
  Cluster.shuffle c ~total_bytes:(1 lsl 16);
  List.filter
    (fun s -> s.Obs.track = Obs.Sim)
    (spans (Obs.events ()))

let test_sim_spans_deterministic () =
  with_tracing (fun () ->
      let a = sim_run () and b = sim_run () in
      checkb "sim trace non-empty" true (List.length a > 0);
      check Alcotest.int "same span count" (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          check Alcotest.string "same name" x.Obs.name y.Obs.name;
          check Alcotest.int "same node" x.Obs.tid y.Obs.tid;
          check (Alcotest.float 0.) "same start" x.Obs.t0 y.Obs.t0;
          check (Alcotest.float 0.) "same duration" x.Obs.dur y.Obs.dur)
        a b;
      checkb "per-node attribution present" true
        (List.exists (fun s -> s.Obs.tid > 1) a))

(* --- counters --- *)

let test_counter_snapshot_sorted () =
  with_tracing (fun () ->
      let cb = Metric.counter "test.bbb" and ca = Metric.counter "test.aaa" in
      Metric.add cb 2;
      let before = Metric.snapshot () in
      Metric.add ca 1;
      Metric.addf cb 0.5;
      let snap = Metric.snapshot () in
      checkb "snapshot sorted by name" true
        (let names = List.map fst snap in
         names = List.sort compare names);
      check (Alcotest.float 0.) "int and float adds accumulate" 2.5
        (List.assoc "test.bbb" snap);
      let d = Metric.delta before in
      check (Alcotest.float 0.) "delta isolates movement" 1.
        (List.assoc "test.aaa" d);
      check (Alcotest.float 0.) "delta of moved counter" 0.5
        (List.assoc "test.bbb" d))

let test_counters_domain_safe () =
  (* Hammer one counter and one histogram from 4 domains at once; the
     atomic CAS loop and per-histogram lock must lose no updates. *)
  with_tracing (fun () ->
      let c = Metric.counter ~unit_:"op" "test.hammer" in
      let h = Metric.histogram "test.hammer.hist" in
      let per_domain = 25_000 in
      let work () =
        for i = 1 to per_domain do
          Metric.add c 1;
          if i land 255 = 0 then Metric.observe h (float_of_int (i land 31))
        done
      in
      let domains = List.init 4 (fun _ -> Domain.spawn work) in
      List.iter Domain.join domains;
      check (Alcotest.float 0.) "no lost counter increments"
        (float_of_int (4 * per_domain))
        (Metric.value c);
      check Alcotest.int "no lost histogram observations"
        (4 * (per_domain / 256))
        (Metric.stats h).Metric.count;
      (* Spans opened on a spawned domain must not corrupt the caller's
         stack: each domain has its own DLS frame list. *)
      let d =
        Domain.spawn (fun () ->
            Obs.Span.with_ ~name:"other-domain" (fun () -> Obs.open_depth ()))
      in
      check Alcotest.int "span depth is per-domain" 1 (Domain.join d);
      check Alcotest.int "caller stack untouched" 0 (Obs.open_depth ()))

(* --- Chrome trace_event export round-trip --- *)

let test_chrome_roundtrip () =
  with_tracing (fun () ->
      Obs.Span.with_ ~name:"wall \"quoted\"" ~attrs:[ ("k", Obs.Int 3) ]
        (fun () -> Obs.Span.instant ~name:"blip" ());
      Obs.Span.emit ~name:"sim-task" ~tid:2 ~t0:1.5 ~t1:2.25 ();
      let events = Obs.events () in
      let json = Trace_export.chrome_json events in
      (match Trace_export.validate_chrome json with
      | Ok n -> check Alcotest.int "non-metadata event count" 3 n
      | Error e -> Alcotest.failf "invalid chrome trace: %s" e);
      match Trace_export.parse json with
      | Error e -> Alcotest.failf "parse failed: %s" e
      | Ok (Trace_export.Obj fields) -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Trace_export.Arr evs) ->
          let pids =
            List.filter_map
              (function
                | Trace_export.Obj f -> (
                  match
                    (List.assoc_opt "ph" f, List.assoc_opt "pid" f)
                  with
                  | Some (Trace_export.JStr ph), Some (Trace_export.Num pid)
                    when ph <> "M" ->
                    Some (int_of_float pid)
                  | _ -> None)
                | _ -> None)
              evs
          in
          checkb "wall events on pid 1" true (List.mem 1 pids);
          checkb "sim events on pid 2" true (List.mem 2 pids);
          checkb "sim tid preserved" true
            (List.exists
               (function
                 | Trace_export.Obj f ->
                   List.assoc_opt "tid" f = Some (Trace_export.Num 2.)
                   && List.assoc_opt "pid" f = Some (Trace_export.Num 2.)
                 | _ -> false)
               evs)
        | _ -> Alcotest.fail "traceEvents array missing")
      | Ok _ -> Alcotest.fail "top level is not an object")

let test_top_spans () =
  with_tracing (fun () ->
      Obs.Span.emit ~track:Obs.Wall ~cat:"cell" ~name:"root" ~t0:0. ~t1:10. ();
      Obs.Span.emit ~track:Obs.Wall ~name:"big" ~t0:0. ~t1:3. ();
      Obs.Span.emit ~track:Obs.Wall ~name:"small" ~t0:3. ~t1:4. ();
      match Trace_export.top_spans ~k:1 ~exclude_cat:"cell" (Obs.events ()) with
      | [ (name, total) ] ->
        check Alcotest.string "largest non-cell span" "big" name;
        check (Alcotest.float 1e-9) "total" 3. total
      | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

(* --- histogram quantiles --- *)

let test_hist_empty () =
  with_tracing (fun () ->
      let h = Metric.histogram "test.hist.empty" in
      let s = Metric.stats h in
      check Alcotest.int "count" 0 s.Metric.count;
      check (Alcotest.float 0.) "mean" 0. s.Metric.mean;
      check (Alcotest.float 0.) "min" 0. s.Metric.min_v;
      check (Alcotest.float 0.) "max" 0. s.Metric.max_v;
      check (Alcotest.float 0.) "p50" 0. s.Metric.p50;
      check (Alcotest.float 0.) "p99" 0. s.Metric.p99)

let test_hist_single_sample () =
  with_tracing (fun () ->
      let h = Metric.histogram "test.hist.single" in
      Metric.observe h 3.0;
      let s = Metric.stats h in
      check Alcotest.int "count" 1 s.Metric.count;
      (* The sample's bucket upper bound is 4, but quantiles are capped
         at the observed maximum, so a one-sample histogram reports the
         sample itself. *)
      check (Alcotest.float 0.) "p50 is the sample" 3.0 s.Metric.p50;
      check (Alcotest.float 0.) "p99 is the sample" 3.0 s.Metric.p99)

let test_hist_overflow_and_clamping () =
  with_tracing (fun () ->
      (* More samples than buckets: quantiles stay within the
         factor-of-2 bucket guarantee of the true order statistics
         (true median 64.5, true p99 = 127). *)
      let h = Metric.histogram "test.hist.many" in
      for v = 1 to 128 do
        Metric.observe h (float_of_int v)
      done;
      let s = Metric.stats h in
      check Alcotest.int "count" 128 s.Metric.count;
      checkb "p50 within a factor of 2" true
        (s.Metric.p50 >= 64.5 && s.Metric.p50 <= 129.);
      checkb "p99 within a factor of 2" true
        (s.Metric.p99 >= 127. && s.Metric.p99 <= 254.);
      checkb "quantiles ordered" true (s.Metric.p50 <= s.Metric.p99);
      (* Exponents beyond the bucket range clamp to the edge buckets
         instead of indexing out of bounds, and the max_v cap keeps the
         reported quantile finite. *)
      let e = Metric.histogram "test.hist.extreme" in
      Metric.observe e 1e-300;
      Metric.observe e 1e300;
      Metric.observe e 0.;
      let se = Metric.stats e in
      check Alcotest.int "extreme count" 3 se.Metric.count;
      checkb "extreme p99 finite" true (Float.is_finite se.Metric.p99);
      checkb "p99 capped at observed max" true
        (se.Metric.p99 <= se.Metric.max_v))

(* --- GC profiling gates --- *)

let gc_counters_moved before =
  List.exists
    (fun (n, _) -> String.length n >= 3 && String.sub n 0 3 = "gc.")
    (Metric.delta before)

let churn () =
  (* Enough small allocations to guarantee a visible minor-words delta
     whenever profiling is live. *)
  let r = ref [] in
  for i = 1 to 10_000 do
    r := [ i ] :: !r
  done;
  ignore (Sys.opaque_identity !r)

let test_gc_disabled_moves_nothing () =
  with_tracing (fun () ->
      (* Profiling defaults to off: a profiled span degrades to a plain
         span — no gc.* counters, no gc_* attributes, free snapshots. *)
      let before = Metric.snapshot () in
      Profile.with_ ~name:"alloc" churn;
      checkb "no gc.* counters when profiling off" false
        (gc_counters_moved before);
      let s =
        List.find (fun s -> s.Obs.name = "alloc") (spans (Obs.events ()))
      in
      checkb "no gc_* attrs when profiling off" false
        (List.exists
           (fun (k, _) -> String.length k >= 3 && String.sub k 0 3 = "gc_")
           s.Obs.attrs);
      checkb "start is free when off" true (Profile.start () = None);
      checkb "delta_attrs of None is empty" true (Profile.delta_attrs None = []))

let test_gc_double_gate () =
  (* Enabling the profiler without tracing must still record nothing
     (the bit-identical-conformance contract), while enabling both
     moves the counters and attaches attributes. *)
  Fun.protect
    ~finally:(fun () -> Profile.set_enabled false)
    (fun () ->
      with_tracing ~enabled:false (fun () ->
          Profile.set_enabled true;
          let before = Metric.snapshot () in
          Profile.with_ ~name:"dark" churn;
          check Alcotest.int "no events without tracing" 0 (Obs.event_count ());
          checkb "no counters without tracing" false
            (gc_counters_moved before));
      with_tracing (fun () ->
          Profile.set_enabled true;
          let before = Metric.snapshot () in
          Profile.with_ ~name:"lit" churn;
          checkb "counters move when both gates open" true
            (gc_counters_moved before);
          checkb "minor words observed" true
            (List.assoc_opt "gc.minor_words" (Metric.delta before)
             |> Option.fold ~none:false ~some:(fun w -> w > 0.));
          let s =
            List.find (fun s -> s.Obs.name = "lit") (spans (Obs.events ()))
          in
          checkb "gc_minor_words attr attached" true
            (List.mem_assoc "gc_minor_words" s.Obs.attrs)))

(* --- bench JSON round-trip and diff --- *)

let checkf = check (Alcotest.float 1e-9)

let check_record_eq (a : Bench_json.record) (b : Bench_json.record) =
  check Alcotest.string "name" a.Bench_json.name b.Bench_json.name;
  check Alcotest.string "engine" a.Bench_json.engine b.Bench_json.engine;
  check Alcotest.string "query" a.Bench_json.query b.Bench_json.query;
  check Alcotest.string "size" a.Bench_json.size b.Bench_json.size;
  check Alcotest.string "unit" a.Bench_json.unit_ b.Bench_json.unit_;
  checkb "better" true (a.Bench_json.better = b.Bench_json.better);
  check Alcotest.int "iterations" a.Bench_json.iterations
    b.Bench_json.iterations;
  checkf "mean" a.Bench_json.mean b.Bench_json.mean;
  checkf "median" a.Bench_json.median b.Bench_json.median;
  checkf "p95" a.Bench_json.p95 b.Bench_json.p95;
  checkf "min" a.Bench_json.min_v b.Bench_json.min_v;
  checkf "max" a.Bench_json.max_v b.Bench_json.max_v;
  check Alcotest.int "counter count" (List.length a.Bench_json.counters)
    (List.length b.Bench_json.counters);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      check Alcotest.string "counter key" ka kb;
      checkf ("counter " ^ ka) va vb)
    a.Bench_json.counters b.Bench_json.counters

let test_bench_json_roundtrip () =
  (* make drops non-finite samples (failed cells report infinite
     totals) and refuses an all-non-finite batch. *)
  checkb "all-non-finite is None" true
    (Bench_json.make ~name:"dead" [ infinity; nan ] = None);
  let r1 =
    Option.get
      (Bench_json.make ~name:"cell-n1" ~engine:"sql" ~query:"q1" ~size:"small"
         ~counters:[ ("rows", 8400.); ("gc.minor_words", 123456.) ]
         [ 1.5; 2.5; 3.5; infinity ])
  in
  check Alcotest.int "non-finite sample dropped" 3 r1.Bench_json.iterations;
  let r2 =
    Option.get
      (Bench_json.make ~name:"availability" ~engine:"hadoop" ~unit_:"pct"
         ~better:Bench_json.Higher [ 87.5 ])
  in
  let f =
    {
      Bench_json.section = "test";
      git_rev = "deadbeef";
      quick = true;
      records = [ r1; r2 ];
    }
  in
  match Bench_json.of_string (Bench_json.to_string f) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok g ->
    check Alcotest.string "section" "test" g.Bench_json.section;
    check Alcotest.string "git_rev" "deadbeef" g.Bench_json.git_rev;
    checkb "quick flag" true g.Bench_json.quick;
    check Alcotest.int "record count" 2 (List.length g.Bench_json.records);
    List.iter2 check_record_eq f.Bench_json.records g.Bench_json.records

let test_bench_diff () =
  let time_rec v = Option.get (Bench_json.make ~name:"kernel" [ v ]) in
  let avail_rec v =
    Option.get
      (Bench_json.make ~name:"availability" ~unit_:"pct"
         ~better:Bench_json.Higher [ v ])
  in
  let file records =
    { Bench_json.section = "t"; git_rev = "x"; quick = false; records }
  in
  (* Identical runs compare clean. *)
  let same = Bench_json.diff (file [ time_rec 1.0 ]) (file [ time_rec 1.0 ]) in
  checkb "identical: no regressions" true (Bench_json.regressions same = []);
  checkb "identical: no improvements" true (Bench_json.improvements same = []);
  (* A genuine 2x slowdown is flagged. *)
  let rep = Bench_json.diff (file [ time_rec 1.0 ]) (file [ time_rec 2.0 ]) in
  (match Bench_json.regressions rep with
  | [ c ] ->
    checkf "2x slowdown is +100%" 100. c.Bench_json.change_pct;
    checkb "verdict" true (c.Bench_json.verdict = Bench_json.Regression)
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* Higher-is-better flips the direction: dropping availability is a
     regression even though the number went down. *)
  let repa =
    Bench_json.diff (file [ avail_rec 100. ]) (file [ avail_rec 50. ])
  in
  checkb "availability drop is a regression" true
    (Bench_json.regressions repa <> []);
  (* Changes under the unit's absolute floor are noise no matter the
     relative magnitude (1 ms on a seconds-unit record). *)
  let repn =
    Bench_json.diff (file [ time_rec 0.001 ]) (file [ time_rec 0.002 ])
  in
  checkb "sub-floor change is noise" true (Bench_json.regressions repn = []);
  (* Keys present on only one side are reported, not compared. *)
  let repk = Bench_json.diff (file [ time_rec 1.0 ]) (file [ avail_rec 9. ]) in
  check Alcotest.int "only_base" 1 (List.length repk.Bench_json.only_base);
  check Alcotest.int "only_cand" 1 (List.length repk.Bench_json.only_cand)

(* --- Metric: unit clash + interpolated percentiles (satellites) --- *)

let test_metric_unit_clash () =
  let _ = Metric.counter ~unit_:"bytes" "test.unit_clash.counter" in
  (* Same explicit unit and omitted unit both find the registration. *)
  let _ = Metric.counter ~unit_:"bytes" "test.unit_clash.counter" in
  let _ = Metric.counter "test.unit_clash.counter" in
  checkb "differing counter unit raises" true
    (match Metric.counter ~unit_:"s" "test.unit_clash.counter" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let _ = Metric.histogram ~unit_:"s" "test.unit_clash.hist" in
  checkb "differing histogram unit raises" true
    (match Metric.histogram ~unit_:"qps" "test.unit_clash.hist" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metric_interpolated_percentile () =
  with_tracing (fun () ->
      let h = Metric.histogram "test.interp.hist" in
      (* 100 samples uniform over one power-of-two bucket (1, 2]: the
         old bucket-upper percentile would report 2.0 for every
         quantile; interpolation must land inside the bucket and be
         clamped to the observed extremes. *)
      for i = 1 to 100 do
        Metric.observe h (1.0 +. (float_of_int i /. 100.))
      done;
      let s = Metric.stats h in
      checkb "p50 interpolated inside bucket" true (s.Metric.p50 < 1.6);
      checkb "p50 above bucket lower bound" true (s.Metric.p50 > 1.2);
      checkb "p99 below max" true (s.Metric.p99 <= s.Metric.max_v);
      checkb "p50 < p99" true (s.Metric.p50 < s.Metric.p99))

(* --- Telemetry: labeled families --- *)

(* Telemetry has its own flag, independent of Obs. Tests use uniquely
   named families and reset values afterwards; registrations are
   process-global by design (Telemetry.clear would invalidate the
   serving layer's module-level family bindings). *)
let with_telemetry f =
  Telemetry.set_enabled true;
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_enabled false;
      Telemetry.reset ())
    f

let test_telemetry_families () =
  with_telemetry (fun () ->
      let c = Telemetry.counter_family "test_tele_requests_total" in
      (* Find-or-register: same name, same family. *)
      let c' = Telemetry.counter_family "test_tele_requests_total" in
      Telemetry.incr c [ ("engine", "A"); ("query", "svd") ];
      Telemetry.incr c' ~by:2. [ ("query", "svd"); ("engine", "A") ];
      (* Label canonicalization: order doesn't matter. *)
      check Alcotest.(float 1e-9) "one cell, canonical labels" 3.
        (Telemetry.value c [ ("engine", "A"); ("query", "svd") ]);
      checkb "kind clash raises" true
        (match Telemetry.gauge_family "test_tele_requests_total" with
        | exception Invalid_argument _ -> true
        | _ -> false);
      let _ = Telemetry.hist_family ~buckets:[| 1.; 2. |] "test_tele_h" in
      checkb "bucket-grid clash raises" true
        (match Telemetry.hist_family ~buckets:[| 1.; 3. |] "test_tele_h" with
        | exception Invalid_argument _ -> true
        | _ -> false);
      checkb "invalid metric name raises" true
        (match Telemetry.counter_family "0bad name" with
        | exception Invalid_argument _ -> true
        | _ -> false);
      checkb "duplicate label name raises" true
        (match Telemetry.incr c [ ("engine", "A"); ("engine", "B") ] with
        | exception Invalid_argument _ -> true
        | _ -> false);
      checkb "negative increment raises" true
        (match Telemetry.incr c ~by:(-1.) [ ("engine", "A") ] with
        | exception Invalid_argument _ -> true
        | _ -> false);
      (* Disabled: hooks are no-ops, values freeze. *)
      Telemetry.set_enabled false;
      Telemetry.incr c [ ("engine", "A"); ("query", "svd") ];
      Telemetry.set_enabled true;
      check Alcotest.(float 1e-9) "disabled incr is a no-op" 3.
        (Telemetry.value c [ ("engine", "A"); ("query", "svd") ]))

let test_telemetry_quantiles () =
  with_telemetry (fun () ->
      let h =
        Telemetry.hist_family ~buckets:[| 1.; 2.; 4. |] "test_tele_lat"
      in
      checkb "empty cell has no quantile" true
        (Telemetry.quantile h [ ("engine", "A") ] 0.5 = None);
      for _ = 1 to 10 do
        Telemetry.observe h [ ("engine", "A") ] 0.5;
        Telemetry.observe h [ ("engine", "B") ] 1.5
      done;
      let q fam labels p =
        match Telemetry.quantile fam labels p with
        | Some v -> v
        | None -> Alcotest.fail "expected a quantile"
      in
      (* Per-cell: all of A's mass is in (0, 1]. *)
      check Alcotest.(float 1e-9) "cell p50 interpolates" 0.5
        (q h [ ("engine", "A") ] 0.5);
      (* Aggregated across cells: 10 in (0,1] + 10 in (1,2]. *)
      let qa p =
        match Telemetry.quantile_agg h p with
        | Some v -> v
        | None -> Alcotest.fail "expected a quantile"
      in
      check Alcotest.(float 1e-9) "agg p50" 1.0 (qa 0.5);
      check Alcotest.(float 1e-9) "agg p95" 1.9 (qa 0.95);
      (* Overflow bucket reports the largest finite bound. *)
      Telemetry.observe h [ ("engine", "C") ] 100.;
      check Alcotest.(float 1e-9) "overflow clamps to last bound" 4.0
        (q h [ ("engine", "C") ] 0.99);
      check Alcotest.(float 1e-9) "bucket width at 1.5" 1.0
        (Telemetry.bucket_width h 1.5);
      checkb "bucket width past last bound is infinite" true
        (Telemetry.bucket_width h 10. = infinity))

let test_telemetry_window () =
  let module W = Telemetry.Window in
  let w = W.create ~width_s:1.0 ~windows:4 ~buckets:[| 1.; 2.; 4. |] () in
  check Alcotest.(float 1e-9) "horizon" 4.0 (W.horizon_s w);
  W.observe w ~now:0.5 0.5;
  W.observe w ~now:1.5 1.5;
  W.observe w ~now:2.5 1.5;
  check Alcotest.int "all three in horizon" 3 (W.count w ~now:2.5 ~horizon_s:4.);
  check Alcotest.int "trailing second only" 1
    (W.count w ~now:2.5 ~horizon_s:1.);
  (match W.mean w ~now:2.5 ~horizon_s:4. with
  | Some m -> checkb "mean of mixed sub-windows" true (Float.abs (m -. (3.5 /. 3.)) < 1e-9)
  | None -> Alcotest.fail "expected a mean");
  (* Advancing the clock past the ring drops the old sub-windows. *)
  W.observe w ~now:10.0 3.0;
  check Alcotest.int "old sub-windows dropped" 1
    (W.count w ~now:10.0 ~horizon_s:4.);
  (* Observations older than the ring are ignored, not misfiled. *)
  W.observe w ~now:3.0 0.5;
  check Alcotest.int "too-old observation dropped" 1
    (W.count w ~now:10.0 ~horizon_s:4.)

(* --- Expo: exposition round-trip --- *)

let test_expo_roundtrip () =
  with_telemetry (fun () ->
      let c = Telemetry.counter_family ~help:"Total\nover lines \\ "
          "test_expo_total"
      in
      (* Empty label set, plus values exercising every escape. *)
      Telemetry.incr c [];
      Telemetry.incr c [ ("path", "a\\b") ];
      Telemetry.incr c [ ("path", "say \"hi\"\nthen leave") ];
      let g = Telemetry.gauge_family "test_expo_gauge" in
      Telemetry.set g [ ("engine", "A") ] (-2.5);
      let h = Telemetry.hist_family ~buckets:[| 0.5; 1. |] "test_expo_h" in
      Telemetry.observe h [ ("q", "svd") ] 0.25;
      Telemetry.observe h [ ("q", "svd") ] 2.0;
      let text = Expo.render (Telemetry.snapshot ()) in
      (match Expo.validate text with
      | Ok n -> checkb "at least our three families" true (n >= 3)
      | Error e -> Alcotest.fail ("round-trip failed: " ^ e));
      match Expo.parse text with
      | Error e -> Alcotest.fail ("parse failed: " ^ e)
      | Ok snaps ->
        checkb "parse -> render is the fixed point" true
          (String.equal (Expo.render snaps) text);
        (* The escaped label value survives the round trip intact. *)
        let row_labels =
          List.concat_map
            (fun (s : Telemetry.family_snap) ->
              if s.Telemetry.fam = "test_expo_total" then
                List.map fst s.Telemetry.rows
              else [])
            snaps
        in
        checkb "escaped value preserved" true
          (List.mem
             [ ("path", "say \"hi\"\nthen leave") ]
             row_labels))

let test_expo_rejects_corruption () =
  with_telemetry (fun () ->
      let h = Telemetry.hist_family ~buckets:[| 1.; 2. |] "test_expo_bad" in
      Telemetry.observe h [] 0.5;
      let text = Expo.render (Telemetry.snapshot ()) in
      (* A non-cumulative bucket ladder must be rejected, not lapped up:
         bump a mid-ladder count above the +Inf total. *)
      let replace ~sub ~by s =
        let n = String.length s and m = String.length sub in
        let b = Buffer.create n in
        let i = ref 0 in
        while !i < n do
          if !i + m <= n && String.sub s !i m = sub then begin
            Buffer.add_string b by;
            i := !i + m
          end
          else begin
            Buffer.add_char b s.[!i];
            incr i
          end
        done;
        Buffer.contents b
      in
      let broken = replace ~sub:{|le="1"} 1|} ~by:{|le="1"} 2|} text in
      checkb "ladder corruption detected" true
        (match Expo.parse broken with Error _ -> true | Ok _ -> false))

let prop_expo_fixed_point =
  (* Arbitrary label values — including quotes, backslashes and newlines
     — and arbitrary sample values: render -> parse -> render must be
     the identity on the rendered text. *)
  let value_gen =
    QCheck.Gen.(
      string_size ~gen:(oneofl [ 'a'; 'z'; '"'; '\\'; '\n'; ' '; '{'; '}' ])
        (0 -- 8))
  in
  let case_gen =
    QCheck.Gen.(
      pair
        (list_size (0 -- 3) (pair (oneofl [ "engine"; "q"; "path" ]) value_gen))
        (list_size (1 -- 5) (float_bound_exclusive 10.)))
  in
  QCheck.Test.make ~name:"exposition render/parse fixed point" ~count:60
    (QCheck.make case_gen) (fun (labels, values) ->
      Telemetry.set_enabled true;
      Telemetry.reset ();
      Fun.protect
        ~finally:(fun () ->
          Telemetry.set_enabled false;
          Telemetry.reset ())
        (fun () ->
          (* Duplicate label names are rejected by canon; dedup first. *)
          let labels =
            List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels
          in
          let c = Telemetry.counter_family "test_prop_total" in
          let h = Telemetry.hist_family ~buckets:[| 0.1; 1.; 5. |] "test_prop_h" in
          Telemetry.incr c labels;
          List.iter (fun v -> Telemetry.observe h labels v) values;
          let text = Expo.render (Telemetry.snapshot ()) in
          match Expo.parse text with
          | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
          | Ok snaps -> String.equal (Expo.render snaps) text))

(* --- SLO monitor --- *)

let test_slo_burn_rate_alerts () =
  let feed m =
    (* 30 good responses, then a hard outage, then recovery: the alert
       must fire during the outage and resolve once the short window
       drains. Factor 5 on a 99% target fires at 5% bad. *)
    let t = ref 0. in
    let step ok =
      Slo.observe m ~now:!t ~ok ~latency_s:0.1;
      t := !t +. 0.25
    in
    for _ = 1 to 30 do step true done;
    for _ = 1 to 30 do step false done;
    for _ = 1 to 200 do step true done
  in
  let objectives =
    [
      Slo.objective ~factor:5. ~name:"avail" ~kind:Slo.Availability
        ~target:0.99 ~long_s:12. ();
    ]
  in
  let m1 = Slo.create ~objectives () in
  let m2 = Slo.create ~objectives () in
  feed m1;
  feed m2;
  let a1 = Slo.alerts m1 in
  checkb "alert fired" true
    (List.exists (fun a -> a.Slo.a_firing) a1);
  checkb "alert resolved" true
    (List.exists (fun a -> not a.Slo.a_firing) a1);
  checkb "fire precedes resolve" true
    (match a1 with a :: _ -> a.Slo.a_firing | [] -> false);
  checkb "identical feed, identical alert instants" true (a1 = Slo.alerts m2);
  checkb "nothing firing after recovery" true (Slo.firing m1 = []);
  (* min_events gates flapping on thin data: an all-bad trickle below
     the floor must stay silent. *)
  let m3 =
    Slo.create
      ~objectives:
        [
          Slo.objective ~factor:5. ~min_events:50 ~name:"thin"
            ~kind:Slo.Availability ~target:0.99 ~long_s:12. ();
        ]
      ()
  in
  for i = 1 to 20 do
    Slo.observe m3 ~now:(float_of_int i *. 0.1) ~ok:false ~latency_s:0.1
  done;
  checkb "below min_events stays silent" true (Slo.alerts m3 = []);
  (* Latency objectives count slow-but-served responses as bad. *)
  let m4 =
    Slo.create
      ~objectives:
        [
          Slo.objective ~factor:5. ~min_events:10 ~name:"lat"
            ~kind:(Slo.Latency_under 1.0) ~target:0.9 ~long_s:12. ();
        ]
      ()
  in
  for i = 1 to 40 do
    Slo.observe m4 ~now:(float_of_int i *. 0.1) ~ok:true ~latency_s:5.0
  done;
  checkb "slow responses trip a latency objective" true
    (List.exists (fun a -> a.Slo.a_firing) (Slo.alerts m4))

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "exception-safe balance" `Quick
      test_span_exception_balance;
    Alcotest.test_case "dur_of override" `Quick test_dur_of_override;
    Alcotest.test_case "disabled mode records nothing" `Quick
      test_disabled_zero_events;
    Alcotest.test_case "sim spans deterministic" `Quick
      test_sim_spans_deterministic;
    Alcotest.test_case "counter snapshots" `Quick test_counter_snapshot_sorted;
    Alcotest.test_case "counters safe under 4 domains" `Quick
      test_counters_domain_safe;
    Alcotest.test_case "chrome JSON round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "top spans for CSV breakdown" `Quick test_top_spans;
    Alcotest.test_case "histogram: empty" `Quick test_hist_empty;
    Alcotest.test_case "histogram: single sample" `Quick
      test_hist_single_sample;
    Alcotest.test_case "histogram: overflow + clamping" `Quick
      test_hist_overflow_and_clamping;
    Alcotest.test_case "gc profiling off by default" `Quick
      test_gc_disabled_moves_nothing;
    Alcotest.test_case "gc profiling double gate" `Quick test_gc_double_gate;
    Alcotest.test_case "bench JSON round-trip" `Quick
      test_bench_json_roundtrip;
    Alcotest.test_case "bench diff verdicts" `Quick test_bench_diff;
    Alcotest.test_case "metric unit clash" `Quick test_metric_unit_clash;
    Alcotest.test_case "metric interpolated percentiles" `Quick
      test_metric_interpolated_percentile;
    Alcotest.test_case "telemetry labeled families" `Quick
      test_telemetry_families;
    Alcotest.test_case "telemetry interpolated quantiles" `Quick
      test_telemetry_quantiles;
    Alcotest.test_case "telemetry sliding window" `Quick
      test_telemetry_window;
    Alcotest.test_case "exposition round-trip" `Quick test_expo_roundtrip;
    Alcotest.test_case "exposition rejects corruption" `Quick
      test_expo_rejects_corruption;
    QCheck_alcotest.to_alcotest prop_expo_fixed_point;
    Alcotest.test_case "slo burn-rate alerts" `Quick
      test_slo_burn_rate_alerts;
  ]
