(* Observability subsystem: span discipline (nesting, exception safety,
   balance), the disabled-mode zero-event contract, simulated-clock span
   determinism, counter snapshots, and the Chrome trace_event export
   round-trip. *)

open Gb_obs
module Cluster = Gb_cluster.Cluster

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* Every test runs with the collector reset and tracing enabled unless
   it says otherwise, and must leave tracing disabled for the rest of
   the suite (the flag is process-global). *)
let with_tracing ?(enabled = true) f =
  Obs.set_enabled enabled;
  Obs.reset ();
  Metric.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let spans events =
  List.filter_map
    (function Obs.Span_ev s -> Some s | Obs.Instant_ev _ -> None)
    events

(* --- span nesting, balance, exception safety --- *)

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Obs.Span.with_ ~name:"outer" (fun () ->
            Obs.Span.with_ ~name:"inner" (fun () -> 42))
      in
      check Alcotest.int "result passes through" 42 r;
      check Alcotest.int "balanced after use" 0 (Obs.open_depth ());
      match spans (Obs.events ()) with
      | [ inner; outer ] ->
        (* Spans are recorded at close, so the inner span lands first. *)
        check Alcotest.string "inner first" "inner" inner.Obs.name;
        check Alcotest.string "outer second" "outer" outer.Obs.name;
        check Alcotest.int "inner's parent is outer" outer.Obs.id
          inner.Obs.parent;
        check Alcotest.int "outer is a root" (-1) outer.Obs.parent;
        checkb "inner contained in outer" true
          (inner.Obs.t0 >= outer.Obs.t0
          && inner.Obs.t0 +. inner.Obs.dur
             <= outer.Obs.t0 +. outer.Obs.dur +. 1e-9)
      | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

exception Boom

let test_span_exception_balance () =
  with_tracing (fun () ->
      (try
         Obs.Span.with_ ~name:"outer" (fun () ->
             Obs.Span.with_ ~name:"failing" (fun () -> raise Boom))
       with Boom -> ());
      check Alcotest.int "stack balanced after raise" 0 (Obs.open_depth ());
      let ss = spans (Obs.events ()) in
      check Alcotest.int "both spans closed" 2 (List.length ss);
      let failing = List.find (fun s -> s.Obs.name = "failing") ss in
      checkb "raising span flagged as error" true
        (List.mem_assoc "error" failing.Obs.attrs);
      (* The collector must still be usable after an exception. *)
      Obs.Span.with_ ~name:"after" (fun () -> ());
      check Alcotest.int "subsequent spans are roots again" (-1)
        (List.find (fun s -> s.Obs.name = "after") (spans (Obs.events ())))
          .Obs.parent)

let test_dur_of_override () =
  with_tracing (fun () ->
      let r =
        Obs.Span.with_ ~name:"fixed" ~dur_of:(fun x -> Some (float_of_int x))
          (fun () -> 3)
      in
      check Alcotest.int "result" 3 r;
      match spans (Obs.events ()) with
      | [ s ] -> check (Alcotest.float 1e-12) "duration overridden" 3. s.Obs.dur
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

(* --- disabled mode records nothing --- *)

let test_disabled_zero_events () =
  with_tracing ~enabled:false (fun () ->
      let c = Metric.counter ~unit_:"op" "test.disabled" in
      Obs.Span.with_ ~name:"invisible" (fun () ->
          Obs.Span.emit ~name:"sim" ~t0:0. ~t1:1. ();
          Obs.Span.instant ~name:"blip" ();
          Metric.add c 7;
          Obs.Log.line ~sink:ignore "progress");
      check Alcotest.int "no events collected" 0 (Obs.event_count ());
      check (Alcotest.float 0.) "counter untouched" 0. (Metric.value c);
      check Alcotest.int "no open frames" 0 (Obs.open_depth ()))

(* --- simulated-clock spans are a pure function of the seed --- *)

let sim_run () =
  Obs.reset ();
  Metric.reset ();
  let c = Cluster.create ~nodes:3 () in
  Cluster.set_task_cost c (Some 0.02);
  Cluster.set_fault_plan c
    (Genbase.Harness.chaos_plan Genbase.Harness.default_chaos
       ~engine:"obs-test" ~nodes:3);
  for _ = 1 to 4 do
    ignore (Cluster.superstep c (fun rank -> rank));
    ignore (Cluster.allreduce_sum c (Array.make 3 [| 1.; 2. |]))
  done;
  Cluster.shuffle c ~total_bytes:(1 lsl 16);
  List.filter
    (fun s -> s.Obs.track = Obs.Sim)
    (spans (Obs.events ()))

let test_sim_spans_deterministic () =
  with_tracing (fun () ->
      let a = sim_run () and b = sim_run () in
      checkb "sim trace non-empty" true (List.length a > 0);
      check Alcotest.int "same span count" (List.length a) (List.length b);
      List.iter2
        (fun x y ->
          check Alcotest.string "same name" x.Obs.name y.Obs.name;
          check Alcotest.int "same node" x.Obs.tid y.Obs.tid;
          check (Alcotest.float 0.) "same start" x.Obs.t0 y.Obs.t0;
          check (Alcotest.float 0.) "same duration" x.Obs.dur y.Obs.dur)
        a b;
      checkb "per-node attribution present" true
        (List.exists (fun s -> s.Obs.tid > 1) a))

(* --- counters --- *)

let test_counter_snapshot_sorted () =
  with_tracing (fun () ->
      let cb = Metric.counter "test.bbb" and ca = Metric.counter "test.aaa" in
      Metric.add cb 2;
      let before = Metric.snapshot () in
      Metric.add ca 1;
      Metric.addf cb 0.5;
      let snap = Metric.snapshot () in
      checkb "snapshot sorted by name" true
        (let names = List.map fst snap in
         names = List.sort compare names);
      check (Alcotest.float 0.) "int and float adds accumulate" 2.5
        (List.assoc "test.bbb" snap);
      let d = Metric.delta before in
      check (Alcotest.float 0.) "delta isolates movement" 1.
        (List.assoc "test.aaa" d);
      check (Alcotest.float 0.) "delta of moved counter" 0.5
        (List.assoc "test.bbb" d))

(* --- Chrome trace_event export round-trip --- *)

let test_chrome_roundtrip () =
  with_tracing (fun () ->
      Obs.Span.with_ ~name:"wall \"quoted\"" ~attrs:[ ("k", Obs.Int 3) ]
        (fun () -> Obs.Span.instant ~name:"blip" ());
      Obs.Span.emit ~name:"sim-task" ~tid:2 ~t0:1.5 ~t1:2.25 ();
      let events = Obs.events () in
      let json = Trace_export.chrome_json events in
      (match Trace_export.validate_chrome json with
      | Ok n -> check Alcotest.int "non-metadata event count" 3 n
      | Error e -> Alcotest.failf "invalid chrome trace: %s" e);
      match Trace_export.parse json with
      | Error e -> Alcotest.failf "parse failed: %s" e
      | Ok (Trace_export.Obj fields) -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Trace_export.Arr evs) ->
          let pids =
            List.filter_map
              (function
                | Trace_export.Obj f -> (
                  match
                    (List.assoc_opt "ph" f, List.assoc_opt "pid" f)
                  with
                  | Some (Trace_export.JStr ph), Some (Trace_export.Num pid)
                    when ph <> "M" ->
                    Some (int_of_float pid)
                  | _ -> None)
                | _ -> None)
              evs
          in
          checkb "wall events on pid 1" true (List.mem 1 pids);
          checkb "sim events on pid 2" true (List.mem 2 pids);
          checkb "sim tid preserved" true
            (List.exists
               (function
                 | Trace_export.Obj f ->
                   List.assoc_opt "tid" f = Some (Trace_export.Num 2.)
                   && List.assoc_opt "pid" f = Some (Trace_export.Num 2.)
                 | _ -> false)
               evs)
        | _ -> Alcotest.fail "traceEvents array missing")
      | Ok _ -> Alcotest.fail "top level is not an object")

let test_top_spans () =
  with_tracing (fun () ->
      Obs.Span.emit ~track:Obs.Wall ~cat:"cell" ~name:"root" ~t0:0. ~t1:10. ();
      Obs.Span.emit ~track:Obs.Wall ~name:"big" ~t0:0. ~t1:3. ();
      Obs.Span.emit ~track:Obs.Wall ~name:"small" ~t0:3. ~t1:4. ();
      match Trace_export.top_spans ~k:1 ~exclude_cat:"cell" (Obs.events ()) with
      | [ (name, total) ] ->
        check Alcotest.string "largest non-cell span" "big" name;
        check (Alcotest.float 1e-9) "total" 3. total
      | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l))

let suite =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "exception-safe balance" `Quick
      test_span_exception_balance;
    Alcotest.test_case "dur_of override" `Quick test_dur_of_override;
    Alcotest.test_case "disabled mode records nothing" `Quick
      test_disabled_zero_events;
    Alcotest.test_case "sim spans deterministic" `Quick
      test_sim_spans_deterministic;
    Alcotest.test_case "counter snapshots" `Quick test_counter_snapshot_sorted;
    Alcotest.test_case "chrome JSON round-trip" `Quick test_chrome_roundtrip;
    Alcotest.test_case "top spans for CSV breakdown" `Quick test_top_spans;
  ]
