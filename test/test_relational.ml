open Gb_relational
module Mat = Gb_linalg.Mat

let s2 = Schema.make [ ("id", Value.TInt); ("v", Value.TFloat) ]

let rows_eq =
  Alcotest.testable
    (fun fmt rows ->
      List.iter
        (fun r ->
          Array.iter (fun v -> Format.fprintf fmt "%a," Value.pp v) r;
          Format.fprintf fmt ";")
        rows)
    (fun a b ->
      List.length a = List.length b
      && List.for_all2 (fun x y -> Array.for_all2 Value.equal x y) a b)

(* --- Value --- *)

let test_value_compare () =
  Alcotest.(check int) "int" (-1) (Value.compare (Value.Int 1) (Value.Int 2));
  Alcotest.(check bool) "mixed numeric"
    (Value.compare (Value.Int 2) (Value.Float 2.0) = 0)
    true;
  Alcotest.(check bool) "str order"
    (Value.compare (Value.Str "a") (Value.Str "b") < 0)
    true

let test_value_strings () =
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42));
  let v = Value.of_string Value.TFloat "3.25" in
  Alcotest.(check bool) "parse float" (Value.to_float v = 3.25) true

(* --- Schema --- *)

let test_schema_basics () =
  Alcotest.(check int) "arity" 2 (Schema.arity s2);
  Alcotest.(check int) "index" 1 (Schema.index s2 "v");
  Alcotest.(check bool) "mem" (Schema.mem s2 "id") true;
  Alcotest.(check bool) "not mem" (Schema.mem s2 "zz") false

let test_schema_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate column x")
    (fun () -> ignore (Schema.make [ ("x", Value.TInt); ("x", Value.TInt) ]))

let test_schema_concat_renames () =
  let joined = Schema.concat s2 s2 in
  Alcotest.(check int) "arity" 4 (Schema.arity joined);
  Alcotest.(check int) "renamed" 2 (Schema.index joined "id_r")

let test_schema_validate () =
  Alcotest.(check bool) "ok"
    (Schema.validate_row s2 [| Value.Int 1; Value.Float 2. |])
    true;
  Alcotest.(check bool) "bad type"
    (Schema.validate_row s2 [| Value.Float 1.; Value.Float 2. |])
    false

(* --- Codec / Row store --- *)

let people_schema =
  Schema.make
    [ ("id", Value.TInt); ("name", Value.TStr); ("score", Value.TFloat) ]

let test_codec_roundtrip () =
  let row = [| Value.Int 7; Value.Str "alice"; Value.Float 1.5 |] in
  let buf = Bytes.create 256 in
  let n = Codec.encode people_schema row buf 0 in
  Alcotest.(check int) "size" (Codec.encoded_size people_schema row) n;
  let back, consumed = Codec.decode people_schema buf 0 in
  Alcotest.(check int) "consumed" n consumed;
  Alcotest.check rows_eq "row" [ row ] [ back ]

let test_row_store_scan () =
  let rows =
    List.init 100 (fun i ->
        [| Value.Int i; Value.Str (Printf.sprintf "p%d" i); Value.Float (float_of_int i) |])
  in
  let rs = Row_store.of_rows people_schema rows in
  Alcotest.(check int) "count" 100 (Row_store.row_count rs);
  Alcotest.check rows_eq "scan order" rows (List.of_seq (Row_store.to_seq rs))

let test_row_store_spans_pages () =
  let big = String.make 10_000 'x' in
  let rows =
    List.init 50 (fun i -> [| Value.Int i; Value.Str big; Value.Float 0. |])
  in
  let rs = Row_store.of_rows people_schema rows in
  Alcotest.(check bool) "multiple pages" (Row_store.page_count rs > 1) true;
  Alcotest.(check int) "all rows back" 50
    (List.length (List.of_seq (Row_store.to_seq rs)))

(* --- Column compression --- *)

let test_column_rle () =
  let vals = Array.init 1000 (fun i -> Value.Int (i / 100)) in
  let c = Column.compress Value.TInt vals in
  Alcotest.(check string) "rle chosen" "int-rle" (Column.encoding_name c);
  Alcotest.(check bool) "compressed smaller" (Column.byte_size c < 8000) true;
  Array.iteri
    (fun i v -> Alcotest.(check bool) "get" (Value.equal v (Column.get c i)) true)
    vals

let test_column_for () =
  let g = Gb_util.Prng.create 4L in
  let vals = Array.init 500 (fun _ -> Value.Int (1000 + Gb_util.Prng.int g 50)) in
  let c = Column.compress Value.TInt vals in
  Alcotest.(check string) "for chosen" "int-for" (Column.encoding_name c);
  Array.iteri
    (fun i v -> Alcotest.(check bool) "get" (Value.equal v (Column.get c i)) true)
    vals

let test_column_dict () =
  let vals =
    Array.init 100 (fun i -> Value.Str (if i mod 2 = 0 then "aa" else "bb"))
  in
  let c = Column.compress Value.TStr vals in
  Alcotest.(check string) "dict" "str-dict" (Column.encoding_name c);
  Alcotest.(check bool) "roundtrip" (Column.to_values c = vals) true

let test_column_iter_matches_get () =
  let g = Gb_util.Prng.create 8L in
  let vals = Array.init 300 (fun _ -> Value.Float (Gb_util.Prng.normal g)) in
  let c = Column.compress Value.TFloat vals in
  Column.iter
    (fun i v -> Alcotest.(check bool) "same" (Value.equal v (Column.get c i)) true)
    c

(* --- Col store --- *)

let test_col_store_roundtrip () =
  let rows =
    List.init 40 (fun i ->
        [| Value.Int i; Value.Str "s"; Value.Float (float_of_int (i * i)) |])
  in
  let cs = Col_store.of_rows people_schema rows in
  Alcotest.(check int) "rows" 40 (Col_store.row_count cs);
  Alcotest.check rows_eq "full scan" rows
    (List.of_seq (Col_store.to_seq cs [ "id"; "name"; "score" ]))

let test_col_store_late_materialization () =
  let rows =
    List.init 10 (fun i -> [| Value.Int i; Value.Str "x"; Value.Float 0. |])
  in
  let cs = Col_store.of_rows people_schema rows in
  let only_ids = List.of_seq (Col_store.to_seq cs [ "id" ]) in
  Alcotest.(check int) "width 1" 1 (Array.length (List.hd only_ids))

(* --- Expr / Ops --- *)

let sample_rel () =
  Ops.of_list s2
    (List.init 10 (fun i -> [| Value.Int i; Value.Float (float_of_int (i * 2)) |]))

let test_filter () =
  let r = Ops.filter Expr.(col "id" <% int 3) (sample_rel ()) in
  Alcotest.(check int) "three rows" 3 (Ops.count r)

let test_filter_compound () =
  let r =
    Ops.filter
      Expr.(col "id" >=% int 2 &&% (col "v" <% float 10.))
      (sample_rel ())
  in
  Alcotest.(check int) "rows 2..4" 3 (Ops.count r)

let test_project () =
  let r = Ops.project [ "v" ] (sample_rel ()) in
  Alcotest.(check int) "arity" 1 (Schema.arity r.Ops.schema);
  Alcotest.(check int) "count preserved" 10 (Ops.count r)

let test_map_column () =
  let r = Ops.map_column "double" Expr.(Arith (Mul, col "v", float 2.)) (sample_rel ()) in
  let rows = Ops.to_list r in
  Alcotest.(check bool) "computed"
    (Value.to_float (List.nth rows 3).(2) = 12.)
    true

let test_hash_join_vs_nested_loop () =
  let g = Gb_util.Prng.create 31L in
  let left =
    List.init 200 (fun i ->
        [| Value.Int (Gb_util.Prng.int g 30); Value.Float (float_of_int i) |])
  in
  let right =
    List.init 50 (fun i ->
        [| Value.Int (Gb_util.Prng.int g 30); Value.Float (float_of_int (1000 + i)) |])
  in
  let lr = Ops.of_list s2 left and rr = Ops.of_list s2 right in
  let joined = Ops.hash_join ~on:[ ("id", "id") ] lr rr in
  let expected =
    List.concat_map
      (fun l ->
        List.filter_map
          (fun r ->
            if Value.equal l.(0) r.(0) then Some (Array.append l r) else None)
          right)
      left
  in
  let sort rows =
    List.sort
      (fun a b ->
        compare
          (Array.map Value.to_string a)
          (Array.map Value.to_string b))
      rows
  in
  Alcotest.check rows_eq "join equals nested loop" (sort expected)
    (sort (Ops.to_list joined))

let test_aggregate () =
  let r =
    Ops.of_list s2
      [
        [| Value.Int 1; Value.Float 10. |];
        [| Value.Int 1; Value.Float 20. |];
        [| Value.Int 2; Value.Float 5. |];
      ]
  in
  let agg =
    Ops.aggregate ~group_by:[ "id" ]
      ~aggs:
        [
          ("total", Ops.Sum "v");
          ("n", Ops.Count);
          ("avg", Ops.Avg "v");
          ("lo", Ops.Min "v");
          ("hi", Ops.Max "v");
        ]
      r
  in
  let rows =
    Ops.to_list agg
    |> List.sort (fun a b -> Value.compare a.(0) b.(0))
  in
  let first = List.hd rows in
  Alcotest.(check bool) "sum" (Value.to_float first.(1) = 30.) true;
  Alcotest.(check int) "count" 2 (Value.to_int first.(2));
  Alcotest.(check bool) "avg" (Value.to_float first.(3) = 15.) true;
  Alcotest.(check bool) "min" (Value.to_float first.(4) = 10.) true;
  Alcotest.(check bool) "max" (Value.to_float first.(5) = 20.) true

let test_sort_limit () =
  let r = Ops.sort ~by:[ ("v", `Desc) ] (sample_rel ()) in
  let top = Ops.to_list (Ops.limit 2 r) in
  Alcotest.(check int) "limit" 2 (List.length top);
  Alcotest.(check bool) "largest first"
    (Value.to_float (List.hd top).(1) = 18.)
    true

let test_guard_fires () =
  let fired = ref 0 in
  let r = Ops.guard ~interval:3 (fun () -> incr fired) (sample_rel ()) in
  ignore (Ops.count r);
  Alcotest.(check int) "fired thrice" 3 !fired

(* --- Pivot --- *)

let test_pivot_roundtrip () =
  let m = Mat.init 4 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let rel =
    Pivot.to_triples ~row_col:"r" ~col_col:"c" ~value_col:"v"
      { Pivot.matrix = m; row_ids = [| 10; 20; 30; 40 |]; col_ids = [| 1; 2; 3 |] }
  in
  let piv = Pivot.of_triples ~row_col:"r" ~col_col:"c" ~value_col:"v" rel in
  Alcotest.(check bool) "matrix back" (Mat.equal m piv.Pivot.matrix) true;
  Alcotest.(check (array int)) "row ids" [| 10; 20; 30; 40 |] piv.Pivot.row_ids;
  Alcotest.(check (array int)) "col ids" [| 1; 2; 3 |] piv.Pivot.col_ids

(* --- Export --- *)

let test_export_rel_roundtrip () =
  let rel = sample_rel () in
  let back = Export.roundtrip_rel (sample_rel ()) in
  Alcotest.check rows_eq "roundtrip" (Ops.to_list rel) (Ops.to_list back)

let test_export_matrix_roundtrip () =
  let m = Mat.random (Gb_util.Prng.create 3L) 7 5 in
  let back = Export.roundtrip_matrix m in
  Alcotest.(check bool) "close" (Mat.max_abs_diff m back < 1e-9) true

(* --- Sql_linalg --- *)

let test_sql_matmul () =
  let g = Gb_util.Prng.create 21L in
  let a = Mat.random g 6 4 and b = Mat.random g 4 5 in
  let out =
    Sql_linalg.to_matrix ~rows:6 ~cols:5
      (Sql_linalg.matmul (Sql_linalg.of_matrix a) (Sql_linalg.of_matrix b))
  in
  Alcotest.(check bool) "matches gemm"
    (Mat.max_abs_diff out (Gb_linalg.Blas.gemm a b) < 1e-9)
    true

let test_sql_transpose () =
  let m = Mat.random (Gb_util.Prng.create 22L) 3 5 in
  let t =
    Sql_linalg.to_matrix ~rows:5 ~cols:3
      (Sql_linalg.transpose (Sql_linalg.of_matrix m))
  in
  Alcotest.(check bool) "transpose" (Mat.equal t (Mat.transpose m)) true

let test_sql_covariance () =
  let m = Mat.random (Gb_util.Prng.create 23L) 12 6 in
  let sql =
    Sql_linalg.to_matrix ~rows:6 ~cols:6
      (Sql_linalg.covariance ~rows:12 (Sql_linalg.of_matrix m))
  in
  Alcotest.(check bool) "matches native"
    (Mat.max_abs_diff sql (Gb_linalg.Covariance.matrix m) < 1e-9)
    true

let test_sql_power_iteration () =
  let g = Gb_util.Prng.create 24L in
  let m = Mat.random g 20 6 in
  let eigs =
    Sql_linalg.power_iteration_eigs ~rows:20 ~cols:6 ~k:2 ~iters:60
      (Sql_linalg.of_matrix m)
  in
  let exact =
    Gb_linalg.Lanczos.top_eigen ~rng:g (Gb_linalg.Blas.ata m) 2
  in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "within 2%"
        (Float.abs (e -. exact.Gb_linalg.Lanczos.eigenvalues.(i))
        < 0.02 *. exact.Gb_linalg.Lanczos.eigenvalues.(i))
        true)
    eigs

let prop_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 20)
        (triple (int_range (-1000000) 1000000) (float_bound_exclusive 1e6)
           (string_size ~gen:printable (int_range 0 40))))
  in
  QCheck.Test.make ~name:"codec roundtrips random rows" ~count:100
    (QCheck.make gen) (fun rows ->
      let buf = Bytes.create (64 * 1024) in
      List.for_all
        (fun (i, f, s) ->
          let row = [| Value.Int i; Value.Str s; Value.Float f |] in
          let n = Codec.encode people_schema row buf 0 in
          let back, consumed = Codec.decode people_schema buf 0 in
          n = consumed && Array.for_all2 Value.equal row back)
        rows)

let prop_column_compress_roundtrip =
  QCheck.Test.make ~name:"column compression roundtrips" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 300) (int_range (-50) 50))
    (fun ints ->
      let vals = Array.of_list (List.map (fun i -> Value.Int i) ints) in
      let c = Column.compress Value.TInt vals in
      Column.to_values c = vals)

(* --- interval join: operator, planner node, EXPLAIN ANALYZE --- *)

let interval_catalog () =
  let variants =
    Col_store.of_rows
      (Schema.make
         [ ("variant_id", Value.TInt); ("vstart", Value.TInt); ("vlen", Value.TInt) ])
      [
        [| Value.Int 0; Value.Int 0; Value.Int 10 |];
        [| Value.Int 1; Value.Int 5; Value.Int 15 |];
        [| Value.Int 2; Value.Int 30; Value.Int 5 |];
        (* empty interval: joins nothing *)
        [| Value.Int 3; Value.Int 50; Value.Int 0 |];
      ]
  in
  let genes =
    Col_store.of_rows
      (Schema.make
         [ ("gene_id", Value.TInt); ("position", Value.TInt); ("length", Value.TInt) ])
      [
        [| Value.Int 0; Value.Int 0; Value.Int 8 |];
        [| Value.Int 1; Value.Int 15; Value.Int 25 |];
        [| Value.Int 2; Value.Int 100; Value.Int 20 |];
      ]
  in
  let table = function
    | "variants" -> variants
    | "genes" -> genes
    | t -> invalid_arg t
  in
  {
    Plan.scan = (fun t cols -> Ops.scan_col_store (table t) cols);
    schema_of = (fun t -> Col_store.schema (table t));
    row_count = (fun t -> Col_store.row_count (table t));
  }

let interval_plan ?(min_overlap = 1) () =
  Plan.Interval_join
    {
      left = Plan.Scan ("variants", []);
      right = Plan.Scan ("genes", []);
      left_span = ("vstart", "vlen");
      right_span = ("position", "length");
      min_overlap;
    }

let test_interval_join_plan_rows () =
  let cat = interval_catalog () in
  let rel = Plan.execute cat (interval_plan ()) in
  let s = rel.Ops.schema in
  Alcotest.(check int) "overlap_len appended" 7 (Schema.arity s);
  let pick row =
    ( Value.to_int row.(Schema.index s "variant_id"),
      Value.to_int row.(Schema.index s "gene_id"),
      Value.to_int row.(Schema.index s "overlap_len") )
  in
  (* Canonical (variant_id, gene_id) order; hand-checked overlaps. *)
  Alcotest.(check (list (triple int int int)))
    "pairs"
    [ (0, 0, 8); (1, 0, 3); (1, 1, 5); (2, 1, 5) ]
    (List.map pick (Ops.to_list rel));
  (* min_overlap filters the 3-base pair out. *)
  let rel4 = Plan.execute cat (interval_plan ~min_overlap:4 ()) in
  Alcotest.(check int) "min_overlap 4 keeps 3 pairs" 3
    (List.length (Ops.to_list rel4))

let test_interval_join_explain_analyze () =
  let cat = interval_catalog () in
  (* A gene-side predicate above the interval join: pushdown must route
     it below the join, and the footnote must say so. *)
  let plan =
    Plan.Filter (Expr.(col "position" <% int 50), interval_plan ())
  in
  let _, fired = Plan.optimize_steps cat plan in
  Alcotest.(check bool) "pushdown step fired"
    (List.mem "predicate pushdown" fired)
    true;
  let text = Plan.explain_analyze cat plan in
  let has s = Astring_contains.contains text s in
  Alcotest.(check bool) "names the node" (has "IntervalJoin") true;
  Alcotest.(check bool) "spans in description"
    (has "vstart+vlen overlaps position+length")
    true;
  (* est vs actual on the node itself: the estimate is the planner's
     3/2-per-left-row guess (6), the actual the true pair count (4). *)
  Alcotest.(check bool) "est vs actual overlap counts"
    (has "est 6 | actual 4 rows")
    true;
  (* the filter was pushed to the gene side, so only 2 of 3 genes are
     swept against the 4 variants *)
  Alcotest.(check bool) "swept input sizes" (has "swept 4 x 2 intervals") true;
  Alcotest.(check bool) "optimizer footnote"
    (has "-- optimizer:" && has "predicate pushdown")
    true

let suite =
  [
    ("value compare", `Quick, test_value_compare);
    ("value strings", `Quick, test_value_strings);
    ("schema basics", `Quick, test_schema_basics);
    ("schema duplicate", `Quick, test_schema_duplicate);
    ("schema concat renames", `Quick, test_schema_concat_renames);
    ("schema validate", `Quick, test_schema_validate);
    ("codec roundtrip", `Quick, test_codec_roundtrip);
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_column_compress_roundtrip;
    ("row store scan", `Quick, test_row_store_scan);
    ("row store spans pages", `Quick, test_row_store_spans_pages);
    ("column rle", `Quick, test_column_rle);
    ("column frame-of-reference", `Quick, test_column_for);
    ("column dictionary", `Quick, test_column_dict);
    ("column iter matches get", `Quick, test_column_iter_matches_get);
    ("col store roundtrip", `Quick, test_col_store_roundtrip);
    ("col store late materialization", `Quick, test_col_store_late_materialization);
    ("filter", `Quick, test_filter);
    ("filter compound", `Quick, test_filter_compound);
    ("project", `Quick, test_project);
    ("map column", `Quick, test_map_column);
    ("hash join vs nested loop", `Quick, test_hash_join_vs_nested_loop);
    ("aggregate", `Quick, test_aggregate);
    ("sort + limit", `Quick, test_sort_limit);
    ("guard fires", `Quick, test_guard_fires);
    ("pivot roundtrip", `Quick, test_pivot_roundtrip);
    ("export rel roundtrip", `Quick, test_export_rel_roundtrip);
    ("export matrix roundtrip", `Quick, test_export_matrix_roundtrip);
    ("sql matmul", `Quick, test_sql_matmul);
    ("sql transpose", `Quick, test_sql_transpose);
    ("sql covariance", `Quick, test_sql_covariance);
    ("sql power iteration", `Quick, test_sql_power_iteration);
    ("interval join plan rows", `Quick, test_interval_join_plan_rows);
    ("interval join explain analyze", `Quick, test_interval_join_explain_analyze);
  ]

