(* The conformance subsystem's own tests: comparator unit tests (including
   deliberately broken payloads, proving mismatches are detected),
   differential and chaos grids on tiny data, metamorphic qcheck
   properties that need no oracle, and the seed-stability regression. *)

open Gb_conformance
module Engine = Genbase.Engine
module Query = Genbase.Query
module Dataset = Genbase.Dataset
module Harness = Genbase.Harness
module Spec = Gb_datagen.Spec
module Fault = Gb_fault.Fault

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let t0 = { Engine.dm = 0.; analytics = 0. }
let done_ p = Engine.Completed (t0, p)
let dflt = Query.default_params

let equivalentb ?(tol = Compare.strict) ?p_threshold a b =
  Compare.equivalent (Compare.compare_payload ~tol ?p_threshold ~reference:a b)

let regression = Engine.Regression { intercept = 1.5; coefficients = [| 0.25; -3.0; 7.5e-3 |]; r2 = 0.87 }
let cov = Engine.Cov_pairs { n_genes = 5; top_pairs = [ (0, 1, 2.0); (2, 3, -1.5); (1, 4, 0.5) ] }
let spectrum = Engine.Singular_values [| 10.0; 4.0; 1.0 |]
let biclusters =
  Engine.Biclusters
    { clusters = [ ([| 1; 2; 3 |], [| 0; 4 |], 0.1); ([| 5; 6 |], [| 2; 3 |], 0.2) ] }
let enrichment = Engine.Enrichment [ (3, 0.001); (7, 0.04) ]
let overlaps =
  Engine.Overlaps
    { n_variants = 8; n_genes = 4; pairs = [ (0, 1, 12); (2, 0, 3); (5, 3, 200) ] }
let all_payloads = [ regression; cov; spectrum; biclusters; enrichment; overlaps ]

(* --- comparator unit tests --- *)

let contains s affix =
  let n = String.length affix in
  let rec go i = i + n <= String.length s && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_identical_equivalent () =
  List.iter
    (fun p ->
      match Compare.compare_payload ~reference:p p with
      | Compare.Equivalent d -> check (Alcotest.float 0.) "zero divergence" 0. d
      | _ -> Alcotest.failf "not equivalent to itself: %s" (Engine.payload_kind p))
    all_payloads

(* Acceptance criterion: a deliberately broken answer must be detected. *)
let test_broken_payloads_detected () =
  let broken =
    [
      ( "intercept off",
        regression,
        Engine.Regression { intercept = 1.5001; coefficients = [| 0.25; -3.0; 7.5e-3 |]; r2 = 0.87 } );
      ( "coefficient off",
        regression,
        Engine.Regression { intercept = 1.5; coefficients = [| 0.25; -3.1; 7.5e-3 |]; r2 = 0.87 } );
      ( "coefficient count",
        regression,
        Engine.Regression { intercept = 1.5; coefficients = [| 0.25 |]; r2 = 0.87 } );
      ( "cov score off",
        cov,
        Engine.Cov_pairs { n_genes = 5; top_pairs = [ (0, 1, 2.01); (2, 3, -1.5); (1, 4, 0.5) ] } );
      ( "cov pair swapped far from cutoff",
        cov,
        Engine.Cov_pairs { n_genes = 5; top_pairs = [ (0, 2, 2.0); (2, 3, -1.5); (1, 4, 0.5) ] } );
      ( "cov universe",
        cov,
        Engine.Cov_pairs { n_genes = 6; top_pairs = [ (0, 1, 2.0); (2, 3, -1.5); (1, 4, 0.5) ] } );
      ("spectrum value off", spectrum, Engine.Singular_values [| 10.0; 4.1; 1.0 |]);
      ("spectrum length", spectrum, Engine.Singular_values [| 10.0; 4.0 |]);
      ( "bicluster membership",
        biclusters,
        Engine.Biclusters
          { clusters = [ ([| 1; 2; 9 |], [| 0; 4 |], 0.1); ([| 5; 6 |], [| 2; 3 |], 0.2) ] } );
      ( "bicluster count",
        biclusters,
        Engine.Biclusters { clusters = [ ([| 1; 2; 3 |], [| 0; 4 |], 0.1) ] } );
      ("enrichment extra term", enrichment, Engine.Enrichment [ (3, 0.001); (7, 0.04); (9, 0.02) ]);
      ("enrichment p off", enrichment, Engine.Enrichment [ (3, 0.002); (7, 0.04) ]);
      ( "overlap pair missing",
        overlaps,
        Engine.Overlaps { n_variants = 8; n_genes = 4; pairs = [ (0, 1, 12); (2, 0, 3) ] } );
      ( "overlap length off by one base",
        overlaps,
        Engine.Overlaps
          { n_variants = 8; n_genes = 4; pairs = [ (0, 1, 12); (2, 0, 4); (5, 3, 200) ] } );
      ( "overlap universe",
        overlaps,
        Engine.Overlaps
          { n_variants = 9; n_genes = 4; pairs = [ (0, 1, 12); (2, 0, 3); (5, 3, 200) ] } );
    ]
  in
  List.iter
    (fun (name, reference, bad) ->
      match Compare.compare_payload ~reference bad with
      | Compare.Divergent _ -> ()
      | Compare.Equivalent d -> Alcotest.failf "%s: passed with divergence %g" name d
      | Compare.Incomparable s -> Alcotest.failf "%s: incomparable (%s)" name s)
    broken

let test_kind_mismatch_incomparable () =
  match Compare.compare_payload ~reference:regression spectrum with
  | Compare.Incomparable _ -> ()
  | v -> Alcotest.failf "expected Incomparable, got divergence %g" (Compare.divergence v)

let test_cov_near_tie_forgiven () =
  (* The lowest-scoring pair flips identity across the top-fraction
     boundary but both sides' cutoffs agree: forgiven under [numeric],
     still flagged under [strict]. *)
  let a = Engine.Cov_pairs { n_genes = 5; top_pairs = [ (0, 1, 2.0); (0, 2, 0.5) ] } in
  let b = Engine.Cov_pairs { n_genes = 5; top_pairs = [ (0, 1, 2.0); (1, 2, 0.500000001) ] } in
  checkb "near-tie forgiven" true (equivalentb ~tol:Compare.numeric a b);
  let far = Engine.Cov_pairs { n_genes = 5; top_pairs = [ (0, 1, 2.0); (1, 2, 0.9) ] } in
  checkb "far-from-cutoff flagged" false (equivalentb ~tol:Compare.numeric a far)

let test_spectral_top_truncates () =
  let approx = Engine.Singular_values [| 10.2; 9.0 |] in
  checkb "approximate: 2%% on leading value, tail ignored" true
    (equivalentb ~tol:Compare.approximate spectrum approx);
  checkb "numeric profile still flags it" false (equivalentb ~tol:Compare.numeric spectrum approx)

let test_bicluster_order_insensitive () =
  let reordered =
    Engine.Biclusters
      { clusters = [ ([| 5; 6 |], [| 2; 3 |], 0.2); ([| 1; 2; 3 |], [| 0; 4 |], 0.1) ] }
  in
  checkb "reordered clusters equivalent" true (equivalentb biclusters reordered)

let test_enrichment_threshold_forgiveness () =
  let near = Engine.Enrichment [ (3, 0.001); (7, 0.04); (9, 0.0499999) ] in
  checkb "near-threshold orphan forgiven when cutoff known" true
    (equivalentb ~tol:Compare.numeric ~p_threshold:0.05 enrichment near);
  checkb "same orphan flagged without the cutoff" false
    (equivalentb ~tol:Compare.numeric enrichment near)

let test_nan_r2_skipped () =
  let nan_r2 = Engine.Regression { intercept = 1.5; coefficients = [| 0.25; -3.0; 7.5e-3 |]; r2 = Float.nan } in
  checkb "NaN R² skipped (Mahout)" true (equivalentb regression nan_r2);
  checkb "symmetric" true (equivalentb nan_r2 regression)

let test_fingerprint () =
  List.iter
    (fun p -> check Alcotest.string "self-equal" (Compare.fingerprint p) (Compare.fingerprint p))
    all_payloads;
  let tweaked = Engine.Regression { intercept = 1.5 +. epsilon_float; coefficients = [| 0.25; -3.0; 7.5e-3 |]; r2 = 0.87 } in
  checkb "one-ulp change changes the digest" true
    (Compare.fingerprint regression <> Compare.fingerprint tweaked)

(* --- classification --- *)

let test_classification_of_failures () =
  let name = function
    | Oracle.Match _ -> "match"
    | Oracle.Degraded_match _ -> "degraded"
    | Oracle.Mismatch _ -> "mismatch"
    | Oracle.Unsupported_cell -> "unsupported"
    | Oracle.Engine_failed _ -> "engine-failed"
    | Oracle.Reference_failed _ -> "reference-failed"
    | Oracle.Both_failed _ -> "both-failed"
  in
  let cls reference outcome = name (Oracle.classify ~reference outcome) in
  let ok = done_ regression in
  check Alcotest.string "match" "match" (cls ok (done_ regression));
  check Alcotest.string "errored is engine-failed" "engine-failed" (cls ok (Engine.Errored "boom"));
  check Alcotest.string "timeout is engine-failed" "engine-failed" (cls ok Engine.Timed_out);
  check Alcotest.string "oom is engine-failed" "engine-failed" (cls ok Engine.Out_of_memory);
  check Alcotest.string "unsupported cell" "unsupported" (cls ok Engine.Unsupported);
  check Alcotest.string "reference failed" "reference-failed" (cls Engine.Timed_out (done_ regression));
  check Alcotest.string "both failed" "both-failed" (cls (Engine.Errored "a") Engine.Timed_out);
  check Alcotest.string "kind mismatch is a mismatch" "mismatch" (cls ok (done_ spectrum));
  let degraded =
    Engine.Degraded (t0, { Engine.no_recovery with Engine.recovered_nodes = 1 }, regression)
  in
  check Alcotest.string "degraded-but-equal" "degraded" (cls ok degraded)

let test_unsupported_whitelist () =
  let whitelisted =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun q ->
            if Oracle.whitelisted_unsupported ~engine:e.Engine.name q then
              Some (e.Engine.name, Query.name q)
            else None)
          Query.all)
      Harness.single_node_engines
  in
  Alcotest.(check (list (pair string string)))
    "exactly the paper's support-matrix holes"
    [
      ("Postgres + Madlib", "biclustering");
      ("Hadoop", "biclustering");
      ("Hadoop", "statistics");
    ]
    whitelisted

(* --- tiny grids --- *)

let tiny_config =
  {
    Matrix.spec = Spec.custom ~genes:40 ~patients:110;
    seeds = Matrix.seeds_from ~base:0xC0FFEEL 2;
    timeout_s = 60.;
    fuzz = true;
    progress = None;
  }

let test_differential_tiny () =
  let cells = Matrix.differential tiny_config in
  checkb "grid is non-trivial" true (List.length cells >= 60);
  (match Matrix.mismatches cells with
  | [] -> ()
  | cs -> Alcotest.failf "mismatches:\n%s" (Matrix.summary cs));
  (* every single-node engine (minus the reference) must appear *)
  List.iter
    (fun e ->
      if e.Engine.name <> Oracle.reference.Engine.name then
        checkb (e.Engine.name ^ " present") true
          (List.exists (fun c -> c.Matrix.engine = e.Engine.name) cells))
    Harness.single_node_engines;
  (* and something must have actually matched *)
  checkb "matches exist" true
    (List.exists (fun c -> match c.Matrix.classification with Oracle.Match _ -> true | _ -> false) cells)

let test_chaos_conformance_tiny () =
  let config = { tiny_config with Matrix.seeds = [ 0xC0FFEEL ]; fuzz = false } in
  let cells = Matrix.chaos_conformance ~node_counts:[ 2 ] config in
  check Alcotest.int "5 engines x 6 queries" 30 (List.length cells);
  match Matrix.mismatches cells with
  | [] -> ()
  | cs -> Alcotest.failf "chaos mismatches:\n%s" (Matrix.summary cs)

let test_targeted_crash_degraded_match () =
  let ds = Dataset.generate ~seed:7L (Spec.custom ~genes:40 ~patients:110) in
  let clean = Genbase.Engine_pbdr.engine ~nodes:2 in
  let fault = Fault.of_events [ Fault.Node_crash { node = 0; superstep = 0 } ] in
  let armed = Genbase.Engine_pbdr.faulty ~fault ~nodes:2 in
  let reference = Engine.run clean ds Query.Q1_regression ~timeout_s:60. () in
  let outcome = Engine.run armed ds Query.Q1_regression ~timeout_s:60. () in
  match Oracle.classify ~tol:Compare.numeric ~reference outcome with
  | Oracle.Degraded_match { divergence; recovery } ->
    check (Alcotest.float 0.) "recovery is bit-identical" 0. divergence;
    checkb "a node was recovered" true (recovery.Engine.recovered_nodes >= 1)
  | c -> Alcotest.failf "expected Degraded_match, got %s" (Oracle.describe c)

(* --- Q6 differential: every engine against the Vanilla-R nested-loop
   oracle. The overlap join is integer-exact, so beyond Oracle.Match we
   demand the payload *fingerprints* agree bitwise — the acceptance
   criterion for the query family. *)

let test_q6_differential_three_seeds () =
  let sizes =
    [
      ("q6-small", Spec.custom ~genes:60 ~patients:160);
      ("q6-medium", Spec.custom ~genes:200 ~patients:500);
    ]
  in
  let seeds = [ 0xC0FFEEL; 0xBEEFL; 42L ] in
  List.iter
    (fun (label, spec) ->
      List.iter
        (fun seed ->
          let ds = Dataset.generate ~seed spec in
          let reference =
            Engine.run Oracle.reference ds Query.Q6_overlap ~timeout_s:60. ()
          in
          let ref_digest =
            match Engine.payload_of reference with
            | Some p -> Compare.fingerprint p
            | None -> Alcotest.fail "oracle failed on Q6"
          in
          List.iter
            (fun e ->
              if e.Engine.name <> Oracle.reference.Engine.name then begin
                let cell =
                  Printf.sprintf "%s/%s/%Ld" e.Engine.name label seed
                in
                let outcome =
                  Engine.run e ds Query.Q6_overlap ~timeout_s:60. ()
                in
                (match Oracle.classify ~reference outcome with
                | Oracle.Match { divergence } ->
                  check (Alcotest.float 0.) (cell ^ " zero divergence") 0.
                    divergence
                | c -> Alcotest.failf "%s: %s" cell (Oracle.describe c));
                match Engine.payload_of outcome with
                | Some p ->
                  check Alcotest.string (cell ^ " digest bitwise") ref_digest
                    (Compare.fingerprint p)
                | None -> Alcotest.failf "%s: no payload" cell
              end)
            Harness.single_node_engines)
        seeds)
    sizes

let test_q6_crash_degraded_match () =
  (* The Q6 chaos requirement: a node crash on the shuffle-by-bin plan
     must recover to the *bit-identical* pair list. *)
  let ds = Dataset.generate ~seed:7L (Spec.custom ~genes:40 ~patients:110) in
  let clean = Genbase.Engine_pbdr.engine ~nodes:2 in
  let fault = Fault.of_events [ Fault.Node_crash { node = 0; superstep = 0 } ] in
  let armed = Genbase.Engine_pbdr.faulty ~fault ~nodes:2 in
  let reference = Engine.run clean ds Query.Q6_overlap ~timeout_s:60. () in
  let outcome = Engine.run armed ds Query.Q6_overlap ~timeout_s:60. () in
  match Oracle.classify ~reference outcome with
  | Oracle.Degraded_match { divergence; recovery } ->
    check (Alcotest.float 0.) "recovery is bit-identical" 0. divergence;
    checkb "a node was recovered" true (recovery.Engine.recovered_nodes >= 1)
  | c -> Alcotest.failf "expected Degraded_match, got %s" (Oracle.describe c)

let test_render_and_csv () =
  let cell classification =
    { Matrix.engine = "Fake engine"; nodes = 1; query = Query.Q1_regression;
      seed = 1L; fuzzed = false; payload = ""; classification }
  in
  let ok = cell (Oracle.Match { divergence = 1e-12 }) in
  let bad = cell (Oracle.Mismatch { divergence = 0.5; detail = "with, comma" }) in
  let rendered = Matrix.render [ ok; bad ] in
  checkb "render names the engine" true
    (contains rendered "Fake engine");
  let csv = Matrix.to_csv [ ok; bad ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check Alcotest.int "header + one line per cell" 3 (List.length lines);
  check Alcotest.string "header"
    "engine,nodes,query,seed,fuzzed,payload,status,divergence,detail"
    (List.hd lines);
  checkb "detail commas escaped" true
    (List.for_all (fun l -> List.length (String.split_on_char ',' l) = 9) lines);
  checkb "mismatch breaks conformance" false (Matrix.conforming [ ok; bad ]);
  checkb "summary flags it" true (contains (Matrix.summary [ ok; bad ]) "MISMATCH");
  checkb "clean grid conforms" true (Matrix.conforming [ ok ])

(* --- seed stability ---

   Two in-process generations must be bit-identical, and the digests must
   also match golden values recorded from an earlier build — catching
   nondeterminism *across* process runs (hash-order dependence,
   environment leakage) that a single-process comparison cannot see. *)

(* Updated when Q6 added the variants table: the dataset fingerprint now
   covers it (new PRNG stream split after all pre-existing ones, so the
   Q1-Q5 payload digests below are unchanged). *)
let golden_dataset_digest = "9a964c724380924915d339638202d796"

let golden_payload_digests =
  [
    (Query.Q1_regression, "af15a8c482aed53b89938ecd08b9c8a4");
    (Query.Q2_covariance, "92ca555aa6e4243bb6f2a30c7badf16b");
    (Query.Q3_biclustering, "e96073f0ddb3d6042a3d70c87dd9fa64");
    (Query.Q4_svd, "e6879df03cae5024eecc5e88a5b6e0bb");
    (Query.Q5_statistics, "a62957e4354b78aa016c0d7eb991d53d");
    (Query.Q6_overlap, "348b591b6137ad3af3473e36bd0c6d4b");
  ]

let test_seed_stability () =
  let spec = Spec.custom ~genes:60 ~patients:160 in
  let ds1 = Dataset.generate ~seed:0x5EEDL spec in
  let ds2 = Dataset.generate ~seed:0x5EEDL spec in
  check Alcotest.string "dataset bit-identical across generations"
    (Transform.dataset_fingerprint ds1) (Transform.dataset_fingerprint ds2);
  check Alcotest.string "dataset digest matches golden" golden_dataset_digest
    (Transform.dataset_fingerprint ds1);
  List.iter
    (fun (q, golden) ->
      let payload ds =
        match Engine.payload_of (Engine.run Oracle.reference ds q ~timeout_s:60. ()) with
        | Some p -> Compare.fingerprint p
        | None -> Alcotest.failf "reference failed on %s" (Query.name q)
      in
      let p1 = payload ds1 in
      check Alcotest.string (Query.name q ^ " bit-identical across runs") p1 (payload ds2);
      check Alcotest.string (Query.name q ^ " digest matches golden") golden p1)
    golden_payload_digests

(* --- metamorphic properties (no oracle needed) --- *)

let payload_exn e ds q params =
  match Engine.payload_of (Engine.run e ds q ~params ~timeout_s:60. ()) with
  | Some p -> p
  | None -> QCheck.Test.fail_reportf "%s did not complete %s" e.Engine.name (Query.name q)

let reference = Oracle.reference

let gen_case = QCheck.Gen.(triple Genqc.seed_gen Genqc.seed_gen Genqc.spec_gen)

let arb_case =
  QCheck.make
    ~print:(fun (dseed, pseed, spec) ->
      Printf.sprintf "data seed %Ld, perm seed %Ld, %dx%d" dseed pseed
        spec.Spec.genes spec.Spec.patients)
    gen_case

let invariance_prop name query ~params ?p_threshold ?fixed_prefix_of count =
  QCheck.Test.make ~name ~count arb_case (fun (dseed, pseed, spec) ->
      let ds = Dataset.generate ~seed:dseed spec in
      (* A tiny random dataset can be degenerate for the query (e.g. the
         disease filter leaving < 2 patients for covariance); if even
         the reference cannot complete on the unpermuted data there is
         no answer whose invariance could be checked — discard. *)
      QCheck.assume
        (Engine.payload_of (Engine.run reference ds query ~params ~timeout_s:60. ())
        <> None);
      let fixed_prefix =
        match fixed_prefix_of with None -> 0 | Some f -> f ds
      in
      let ds' = Transform.shuffle_patients ~fixed_prefix ~seed:pseed ds in
      let p = payload_exn reference ds query params in
      let p' = payload_exn reference ds' query params in
      match Compare.compare_payload ~tol:Compare.numeric ?p_threshold ~reference:p p' with
      | Compare.Equivalent _ -> true
      | v ->
        QCheck.Test.fail_reportf "%s moved under patient permutation: %s"
          (Query.name query)
          (match v with
          | Compare.Divergent { detail; _ } -> detail
          | Compare.Incomparable s -> s
          | Compare.Equivalent _ -> assert false))

let prop_q1_invariant =
  invariance_prop "Q1 invariant under patient permutation" Query.Q1_regression
    ~params:dflt 15

let prop_q2_invariant =
  invariance_prop "Q2 invariant under patient permutation" Query.Q2_covariance
    ~params:dflt 15

let prop_q4_invariant =
  invariance_prop "Q4 singular values invariant under row shuffle" Query.Q4_svd
    ~params:dflt 15

let prop_q5_full_sample_invariant =
  let params = { dflt with Query.sample_fraction = 1.0 } in
  invariance_prop "Q5 invariant under permutation (full sample)"
    Query.Q5_statistics ~params ~p_threshold:params.Query.p_threshold 10

let prop_q5_prefix_invariant =
  (* Default sampling takes the first-k patient ids; a prefix-preserving
     shuffle keeps the sampled *set* intact, so the answer must not move. *)
  let params = dflt in
  invariance_prop "Q5 invariant under sample-preserving shuffle"
    Query.Q5_statistics ~params ~p_threshold:params.Query.p_threshold
    ~fixed_prefix_of:(fun ds ->
      Array.length (Genbase.Qcommon.sampled_patients ds params.Query.sample_fraction))
    10

let prop_q5_threshold_monotone =
  QCheck.Test.make ~name:"Q5 hit set monotone in p_threshold" ~count:15
    QCheck.(
      make
        ~print:(fun (s, spec, (a, b)) ->
          Printf.sprintf "seed %Ld, %dx%d, thresholds %g/%g" s spec.Spec.genes
            spec.Spec.patients a b)
        Gen.(
          triple Genqc.seed_gen Genqc.spec_gen
            (pair (float_range 0.005 0.1) (float_range 0.005 0.1))))
    (fun (dseed, spec, (a, b)) ->
      let lo = Float.min a b and hi = Float.max a b in
      let ds = Dataset.generate ~seed:dseed spec in
      let run thr =
        match payload_exn reference ds Query.Q5_statistics { dflt with Query.p_threshold = thr } with
        | Engine.Enrichment terms -> terms
        | _ -> QCheck.Test.fail_report "Q5 returned a non-enrichment payload"
      in
      let terms_lo = run lo and terms_hi = run hi in
      List.length terms_lo <= List.length terms_hi
      && List.for_all
           (fun (go, p) ->
             match List.assoc_opt go terms_hi with
             | Some p' -> p = p'
             | None ->
               QCheck.Test.fail_reportf
                 "GO %d (p=%g) significant at %g but not at looser %g" go p lo hi)
           terms_lo)

(* --- comparator / generator properties --- *)

let payload_gen =
  let open QCheck.Gen in
  let score = float_range (-5.) 5. in
  oneof
    [
      ( float_range (-2.) 2. >>= fun intercept ->
        array_size (int_range 1 8) score >>= fun coefficients ->
        float_range 0. 1. >|= fun r2 -> Engine.Regression { intercept; coefficients; r2 } );
      ( int_range 2 30 >>= fun n_genes ->
        list_size (int_range 0 12)
          (triple (int_range 0 29) (int_range 0 29) score)
        >|= fun top_pairs -> Engine.Cov_pairs { n_genes; top_pairs } );
      ( array_size (int_range 1 10) (float_range 0.1 10.) >|= fun s ->
        Array.sort (fun a b -> compare b a) s;
        Engine.Singular_values s );
      ( list_size (int_range 0 4)
          (triple
             (array_size (int_range 1 6) (int_range 0 40))
             (array_size (int_range 1 6) (int_range 0 40))
             (float_range 0. 2.))
        >|= fun clusters -> Engine.Biclusters { clusters } );
      ( list_size (int_range 0 8) (pair (int_range 0 50) (float_range 1e-6 0.04))
        >|= fun e -> Engine.Enrichment e );
      ( int_range 1 40 >>= fun n_variants ->
        int_range 1 20 >>= fun n_genes ->
        list_size (int_range 0 12)
          (triple (int_range 0 39) (int_range 0 19) (int_range 1 500))
        >|= fun pairs ->
        (* Canonicalize so the reflexivity property sees a well-formed
           payload (engines always emit the canonical order). *)
        List.sort_uniq compare pairs |> fun pairs ->
        Engine.Overlaps { n_variants; n_genes; pairs } );
    ]

let arb_payload = QCheck.make ~print:Engine.payload_kind payload_gen

let prop_comparator_reflexive =
  QCheck.Test.make ~name:"comparator is reflexive" ~count:100 arb_payload
    (fun p ->
      match Compare.compare_payload ~reference:p p with
      | Compare.Equivalent d -> d = 0.
      | _ -> false)

(* A perturbation large enough to matter, per payload kind. *)
let perturb = function
  | Engine.Regression r -> Engine.Regression { r with intercept = r.intercept +. 1. }
  | Engine.Cov_pairs c -> Engine.Cov_pairs { c with n_genes = c.n_genes + 1 }
  | Engine.Singular_values s ->
    if Array.length s = 0 then Engine.Singular_values [| 1. |]
    else begin
      let s' = Array.copy s in
      s'.(0) <- (s'.(0) *. 1.5) +. 1.;
      Engine.Singular_values s'
    end
  | Engine.Biclusters b ->
    Engine.Biclusters { clusters = ([| 0 |], [| 0 |], 0.) :: b.clusters }
  | Engine.Enrichment e -> Engine.Enrichment ((999, 0.2) :: e)
  | Engine.Overlaps o ->
    Engine.Overlaps { o with pairs = (0, 0, 1) :: o.pairs }

let prop_perturbation_detected =
  QCheck.Test.make ~name:"gross perturbation always detected" ~count:100
    arb_payload (fun p ->
      not
        (Compare.equivalent (Compare.compare_payload ~reference:p (perturb p))))

let prop_generators_well_posed =
  QCheck.Test.make ~name:"generated specs and params stay in range" ~count:200
    QCheck.(pair Genqc.arb_spec Genqc.arb_params)
    (fun (spec, p) ->
      spec.Spec.patients >= 2 * spec.Spec.genes
      && p.Query.func_threshold >= 150
      && p.Query.func_threshold <= 400
      && p.Query.cov_top_fraction >= 0.05
      && p.Query.cov_top_fraction <= 0.20
      && p.Query.svd_k >= 5 && p.Query.svd_k <= 40
      && p.Query.sample_fraction >= 0.05
      && p.Query.sample_fraction <= 0.25
      && p.Query.p_threshold >= 0.01
      && p.Query.p_threshold <= 0.10
      && p.Query.gender = dflt.Query.gender)

let prop_params_of_seed_deterministic =
  QCheck.Test.make ~name:"params_of_seed is a pure function" ~count:50
    Genqc.arb_seed (fun seed ->
      Genqc.params_of_seed seed = Genqc.params_of_seed seed)

let prop_differential_fuzzed =
  (* One-cell differential checks on fuzzed parameters: SciDB shares the
     reference kernels through an array store, so every query must match
     under its per-query tolerance. *)
  QCheck.Test.make ~name:"SciDB matches the reference on fuzzed cells" ~count:8
    QCheck.(
      make
        ~print:(fun (s, spec, p) ->
          Printf.sprintf "seed %Ld, %dx%d, %s" s spec.Spec.genes
            spec.Spec.patients (Genqc.print_params p))
        Gen.(triple Genqc.seed_gen Genqc.spec_gen Genqc.params_gen))
    (fun (dseed, spec, params) ->
      let ds = Dataset.generate ~seed:dseed spec in
      let e = Genbase.Engine_scidb.engine in
      List.for_all
        (fun q ->
          let reference = Engine.run Oracle.reference ds q ~params ~timeout_s:60. () in
          let outcome = Engine.run e ds q ~params ~timeout_s:60. () in
          let tol = Oracle.tolerance_for ~engine:e.Engine.name q in
          match
            Oracle.classify ~tol ~p_threshold:params.Query.p_threshold ~reference outcome
          with
          | Oracle.Match _ -> true
          (* A fuzzed parameter set can select a degenerate cohort (e.g.
             under two patients for covariance); when BOTH sides refuse
             identically the cell is vacuous, as in Matrix.mismatches. *)
          | Oracle.Both_failed _ -> true
          | c ->
            QCheck.Test.fail_reportf "%s / %s: %s" (Query.name q)
              (Genqc.print_params params) (Oracle.describe c))
        Query.all)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_q1_invariant;
      prop_q2_invariant;
      prop_q4_invariant;
      prop_q5_full_sample_invariant;
      prop_q5_prefix_invariant;
      prop_q5_threshold_monotone;
      prop_comparator_reflexive;
      prop_perturbation_detected;
      prop_generators_well_posed;
      prop_params_of_seed_deterministic;
      prop_differential_fuzzed;
    ]

let suite =
  [
    Alcotest.test_case "identical payloads equivalent" `Quick test_identical_equivalent;
    Alcotest.test_case "broken payloads detected" `Quick test_broken_payloads_detected;
    Alcotest.test_case "kind mismatch incomparable" `Quick test_kind_mismatch_incomparable;
    Alcotest.test_case "covariance near-tie forgiven" `Quick test_cov_near_tie_forgiven;
    Alcotest.test_case "spectral_top truncates comparison" `Quick test_spectral_top_truncates;
    Alcotest.test_case "bicluster order-insensitive" `Quick test_bicluster_order_insensitive;
    Alcotest.test_case "enrichment threshold forgiveness" `Quick test_enrichment_threshold_forgiveness;
    Alcotest.test_case "NaN R² skipped" `Quick test_nan_r2_skipped;
    Alcotest.test_case "fingerprint bit-exactness" `Quick test_fingerprint;
    Alcotest.test_case "failure classification" `Quick test_classification_of_failures;
    Alcotest.test_case "unsupported whitelist" `Quick test_unsupported_whitelist;
    Alcotest.test_case "differential grid (tiny)" `Slow test_differential_tiny;
    Alcotest.test_case "chaos conformance (tiny)" `Slow test_chaos_conformance_tiny;
    Alcotest.test_case "targeted crash degrades but matches" `Quick test_targeted_crash_degraded_match;
    Alcotest.test_case "Q6 differential (3 seeds, 2 sizes)" `Slow test_q6_differential_three_seeds;
    Alcotest.test_case "Q6 crash degrades but matches bitwise" `Quick test_q6_crash_degraded_match;
    Alcotest.test_case "render and CSV" `Quick test_render_and_csv;
    Alcotest.test_case "seed stability" `Slow test_seed_stability;
  ]
  @ props
