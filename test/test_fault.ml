open Genbase
module Fault = Gb_fault.Fault
module Retry = Gb_fault.Retry
module Cluster = Gb_cluster.Cluster
module Mr = Gb_mapreduce.Mr
module Spec = Gb_datagen.Spec

let tiny = Dataset.generate (Spec.custom ~genes:60 ~patients:160)

(* --- fault plans --- *)

let dense_scatter seed =
  Fault.scatter ~seed ~nodes:4 ~supersteps:16 ~crash_p:0.1 ~straggler_p:0.1
    ~oom_p:0.1 ~comm_ops:32 ~drop_p:0.1 ~delay_p:0.1 ~jobs:8 ~task_fail_p:0.3
    ()

let test_scatter_deterministic () =
  Alcotest.(check bool) "same seed, same plan"
    (dense_scatter 7L = dense_scatter 7L)
    true;
  Alcotest.(check bool) "different seed, different plan"
    (dense_scatter 7L = dense_scatter 8L)
    false

(* Enabling the message-fault classes must not reshuffle where the compute
   faults land: each grid cell consumes exactly one uniform draw. *)
let test_scatter_independent () =
  let base = Fault.scatter ~seed:7L ~nodes:4 ~supersteps:16 ~crash_p:0.08 () in
  let noisy =
    Fault.scatter ~seed:7L ~nodes:4 ~supersteps:16 ~crash_p:0.08 ~comm_ops:64
      ~drop_p:0.3 ~delay_p:0.3 ~jobs:16 ~task_fail_p:0.5 ()
  in
  for superstep = 0 to 15 do
    for node = 0 to 3 do
      Alcotest.(check bool) "crash placement unchanged"
        (Fault.crash_at base ~node ~superstep)
        (Fault.crash_at noisy ~node ~superstep)
    done
  done

let test_plan_accessors () =
  let p =
    Fault.of_events ~seed:1L
      [
        Fault.Node_crash { node = 1; superstep = 2 };
        Fault.Straggler { node = 0; superstep = 0; factor = 3. };
        Fault.Straggler { node = 0; superstep = 0; factor = 2. };
        Fault.Transient_oom { node = 2; superstep = 1; failures = 2 };
        Fault.Message_drop { op = 4 };
        Fault.Message_delay { op = 5; seconds = 0.25 };
        Fault.Task_fail { job = 3; failures = 1 };
      ]
  in
  Alcotest.(check bool) "crash" true (Fault.crash_at p ~node:1 ~superstep:2);
  Alcotest.(check bool) "no crash" false (Fault.crash_at p ~node:1 ~superstep:3);
  Alcotest.(check (float 0.)) "slowdowns multiply" 6.
    (Fault.slowdown p ~node:0 ~superstep:0);
  Alcotest.(check (float 0.)) "no slowdown" 1.
    (Fault.slowdown p ~node:1 ~superstep:0);
  Alcotest.(check int) "oom failures" 2 (Fault.oom_failures p ~node:2 ~superstep:1);
  Alcotest.(check bool) "dropped" true (Fault.dropped p ~op:4);
  Alcotest.(check (float 0.)) "delay" 0.25 (Fault.delay p ~op:5);
  Alcotest.(check (float 0.)) "no delay" 0. (Fault.delay p ~op:4);
  Alcotest.(check int) "task failures" 1 (Fault.task_failures p ~job:3);
  Alcotest.(check bool) "empty" true (Fault.is_empty Fault.empty)

(* --- retry --- *)

let test_backoff_bounds () =
  let rng = Gb_util.Prng.create 11L in
  let p = Retry.default in
  for attempt = 1 to 8 do
    let d =
      Float.min p.Retry.max_delay_s
        (p.Retry.base_delay_s
        *. (p.Retry.multiplier ** float_of_int (attempt - 1)))
    in
    let delay = Retry.delay_for p ~rng ~attempt in
    Alcotest.(check bool) "at least the deterministic part" true (delay >= d);
    Alcotest.(check bool) "at most jittered" true
      (delay <= d *. (1. +. p.Retry.jitter) +. 1e-12)
  done

let test_retry_succeeds_and_charges () =
  let rng = Gb_util.Prng.create 12L in
  let charged = ref 0. in
  let out =
    Retry.run ~rng
      ~charge:(fun s -> charged := !charged +. s)
      (fun ~attempt -> if attempt < 3 then failwith "transient" else 42)
  in
  Alcotest.(check int) "value" 42 out.Retry.value;
  Alcotest.(check int) "attempts" 3 out.Retry.attempts;
  Alcotest.(check (float 1e-12)) "charged = backoff" out.Retry.backoff_s !charged;
  Alcotest.(check bool) "two delays charged" true (!charged > 0.)

let test_retry_gives_up () =
  let rng = Gb_util.Prng.create 13L in
  let calls = ref 0 in
  Alcotest.check_raises "re-raises after budget" (Failure "always") (fun () ->
      ignore
        (Retry.run ~rng
           ~charge:(fun _ -> ())
           (fun ~attempt:_ ->
             incr calls;
             failwith "always")));
  Alcotest.(check int) "max attempts" Retry.default.Retry.max_attempts !calls

let test_retry_never_retries_timeout () =
  let rng = Gb_util.Prng.create 14L in
  let calls = ref 0 in
  Alcotest.check_raises "timeout propagates" Gb_util.Deadline.Timeout
    (fun () ->
      ignore
        (Retry.run ~rng
           ~charge:(fun _ -> ())
           (fun ~attempt:_ ->
             incr calls;
             raise Gb_util.Deadline.Timeout)));
  Alcotest.(check int) "single attempt" 1 !calls

(* Stateless jitter: a pure function of (key, attempt), so one client's
   retry schedule replays identically no matter what other traffic
   interleaved — the property the serving layer's deterministic load
   tests rest on. *)
let test_det_jitter () =
  let p = Retry.default in
  for attempt = 1 to 8 do
    let d =
      Float.min p.Retry.max_delay_s
        (p.Retry.base_delay_s
        *. (p.Retry.multiplier ** float_of_int (attempt - 1)))
    in
    List.iter
      (fun key ->
        let delay = Retry.delay_for_det p ~key ~attempt in
        Alcotest.(check (float 0.)) "pure function of (key, attempt)" delay
          (Retry.delay_for_det p ~key ~attempt);
        Alcotest.(check bool) "at least the deterministic part" true
          (delay >= d);
        Alcotest.(check bool) "at most jittered" true
          (delay <= d *. (1. +. p.Retry.jitter) +. 1e-12))
      [ 0; 1; 17; 123456 ]
  done;
  Alcotest.(check bool) "different keys draw different jitter" true
    (Retry.delay_for_det p ~key:1 ~attempt:1
    <> Retry.delay_for_det p ~key:2 ~attempt:1)

(* Total-deadline cutoff: when the next backoff cannot fit in what is
   left of the deadline, the failure surfaces immediately instead of
   charging a sleep that could only end in a timeout. *)
let test_retry_remaining_cutoff () =
  let rng = Gb_util.Prng.create 15L in
  let charged = ref 0. in
  let calls = ref 0 in
  Alcotest.check_raises "fails fast once the budget cannot fit a backoff"
    (Failure "transient") (fun () ->
      ignore
        (Retry.run ~rng
           ~charge:(fun s -> charged := !charged +. s)
           ~remaining:(fun () -> Retry.default.Retry.base_delay_s /. 2.)
           (fun ~attempt:_ ->
             incr calls;
             failwith "transient")));
  Alcotest.(check int) "no second attempt" 1 !calls;
  Alcotest.(check (float 0.)) "no backoff charged" 0. !charged;
  (* With room for the backoff, the retry proceeds as usual. *)
  let out =
    Retry.run ~rng
      ~charge:(fun s -> charged := !charged +. s)
      ~remaining:(fun () -> 1e9)
      (fun ~attempt -> if attempt < 2 then failwith "transient" else "ok")
  in
  Alcotest.(check string) "recovered under a loose budget" "ok" out.Retry.value

(* --- cluster fault tolerance --- *)

(* Virtual task costs make the simulated clock a pure function of the
   plan: two identical runs must agree bit-for-bit. *)
let crash_run () =
  let c = Cluster.create ~nodes:4 () in
  Cluster.set_task_cost c (Some 0.01);
  Cluster.set_checkpoint c ~every:2 ~bytes_per_node:4096;
  (* Checkpoints land after supersteps 1, 3, 5; a crash at superstep 3 has
     exactly one un-checkpointed superstep of work to redo. *)
  Cluster.set_fault_plan c
    (Fault.of_events ~seed:3L [ Fault.Node_crash { node = 1; superstep = 3 } ]);
  let last = ref [||] in
  for _ = 0 to 5 do
    last := Cluster.superstep c (fun node -> node * 10)
  done;
  (c, !last)

let test_crash_recovery_deterministic () =
  let c1, r1 = crash_run () in
  let c2, r2 = crash_run () in
  Alcotest.(check (array int)) "dead node's task re-executed on a survivor"
    [| 0; 10; 20; 30 |] r1;
  Alcotest.(check (array int)) "replay results" r1 r2;
  Alcotest.(check (float 0.)) "bit-identical simulated seconds"
    (Cluster.elapsed c1) (Cluster.elapsed c2);
  Alcotest.(check bool) "same stats" (Cluster.stats c1 = Cluster.stats c2) true;
  Alcotest.(check int) "one crash recovered" 1
    (Cluster.stats c1).Cluster.crashes_recovered;
  Alcotest.(check int) "three survivors" 3 (Cluster.live_nodes c1);
  Alcotest.(check bool) "degraded" true (Cluster.degraded c1);
  Alcotest.(check bool) "redone work accounted" true
    ((Cluster.stats c1).Cluster.wasted_seconds > 0.)

let test_last_survivor_never_dies () =
  let c = Cluster.create ~nodes:1 () in
  Cluster.set_task_cost c (Some 0.01);
  Cluster.set_fault_plan c
    (Fault.of_events [ Fault.Node_crash { node = 0; superstep = 0 } ]);
  let r = Cluster.superstep c (fun node -> node + 1) in
  Alcotest.(check (array int)) "still runs" [| 1 |] r;
  Alcotest.(check int) "no recovery possible" 0
    (Cluster.stats c).Cluster.crashes_recovered;
  Alcotest.(check int) "alive" 1 (Cluster.live_nodes c)

let test_straggler_speculation () =
  let c = Cluster.create ~nodes:2 () in
  Cluster.set_task_cost c (Some 0.05);
  Cluster.set_fault_plan c
    (Fault.of_events
       [ Fault.Straggler { node = 0; superstep = 0; factor = 1000. } ]);
  ignore (Cluster.superstep c (fun node -> node));
  Alcotest.(check bool) "backup beats waiting 50 s" true
    (Cluster.elapsed c < 1.);
  Alcotest.(check int) "speculative restart" 1
    (Cluster.stats c).Cluster.speculative_restarts;
  (* With no healthy peer the slowdown must be paid in full. *)
  let c1 = Cluster.create ~nodes:1 () in
  Cluster.set_task_cost c1 (Some 0.05);
  Cluster.set_fault_plan c1
    (Fault.of_events
       [ Fault.Straggler { node = 0; superstep = 0; factor = 1000. } ]);
  ignore (Cluster.superstep c1 (fun node -> node));
  Alcotest.(check bool) "no backup, full stall" true (Cluster.elapsed c1 >= 50.);
  Alcotest.(check int) "no speculation" 0
    (Cluster.stats c1).Cluster.speculative_restarts

let test_oom_retry_and_escalation () =
  let c = Cluster.create ~nodes:2 () in
  Cluster.set_task_cost c (Some 0.01);
  Cluster.set_fault_plan c
    (Fault.of_events
       [ Fault.Transient_oom { node = 0; superstep = 0; failures = 2 } ]);
  ignore (Cluster.superstep c (fun node -> node));
  Alcotest.(check int) "two retries" 2 (Cluster.stats c).Cluster.oom_retries;
  Alcotest.(check bool) "failed attempts and backoff charged" true
    (Cluster.elapsed c > 0.02);
  let c2 = Cluster.create ~nodes:2 () in
  Cluster.set_task_cost c2 (Some 0.01);
  Cluster.set_fault_plan c2
    (Fault.of_events
       [ Fault.Transient_oom { node = 0; superstep = 0; failures = 99 } ]);
  Alcotest.(check bool) "past the retry budget escalates" true
    (try
       ignore (Cluster.superstep c2 (fun node -> node));
       false
     with Fault.Injected_oom _ -> true)

let test_message_faults () =
  let base = Cluster.create ~nodes:2 () in
  Cluster.broadcast base ~bytes:1000;
  Cluster.broadcast base ~bytes:1000;
  let c = Cluster.create ~nodes:2 () in
  Cluster.set_fault_plan c
    (Fault.of_events
       [ Fault.Message_drop { op = 0 }; Fault.Message_delay { op = 1; seconds = 0.5 } ]);
  Cluster.broadcast c ~bytes:1000;
  Cluster.broadcast c ~bytes:1000;
  Alcotest.(check int) "drop counted" 1
    (Cluster.stats c).Cluster.messages_dropped;
  Alcotest.(check int) "delay counted" 1
    (Cluster.stats c).Cluster.messages_delayed;
  Alcotest.(check bool) "retransmit + stall charged" true
    (Cluster.elapsed c > Cluster.elapsed base +. 0.5)

let wasted_with ~every =
  let c = Cluster.create ~nodes:2 () in
  Cluster.set_task_cost c (Some 0.02);
  Cluster.set_checkpoint c ~every ~bytes_per_node:4096;
  Cluster.set_fault_plan c
    (Fault.of_events [ Fault.Node_crash { node = 1; superstep = 5 } ]);
  for _ = 0 to 7 do
    ignore (Cluster.superstep c (fun node -> node))
  done;
  (Cluster.stats c).Cluster.wasted_seconds

let test_checkpoint_limits_redo () =
  let none = wasted_with ~every:0 in
  let frequent = wasted_with ~every:2 in
  Alcotest.(check bool) "checkpointing bounds lost work" true
    (frequent < none);
  Alcotest.(check (float 1e-9)) "only work since last checkpoint redone"
    0.02 frequent

let test_sim_deadline_mid_superstep () =
  let c = Cluster.create ~nodes:1 () in
  Cluster.set_task_cost c (Some 0.2);
  Cluster.set_deadline c 0.1;
  Alcotest.check_raises "fires when the step lands past the deadline"
    Gb_util.Deadline.Timeout (fun () ->
      ignore (Cluster.superstep c (fun node -> node)))

(* --- engine hardening --- *)

let bad_engine exn =
  {
    Engine.name = "bad";
    kind = `Single_node;
    supports = (fun _ -> true);
    load = (fun _ _ ~params:_ ~timeout_s:_ -> raise exn);
  }

let test_engine_run_catch_all () =
  (match
     Engine.run (bad_engine Division_by_zero) tiny Query.Q1_regression
       ~timeout_s:1. ()
   with
  | Engine.Errored msg ->
    Alcotest.(check string) "message" "Division_by_zero" msg
  | o -> Alcotest.failf "expected Errored, got %a" Engine.pp_outcome o);
  (match
     Engine.run
       (bad_engine (Fault.Injected_oom "node 0"))
       tiny Query.Q1_regression ~timeout_s:1. ()
   with
  | Engine.Out_of_memory -> ()
  | o -> Alcotest.failf "expected Out_of_memory, got %a" Engine.pp_outcome o);
  match
    Engine.run
      (bad_engine (Mr.Job_failed "job 0"))
      tiny Query.Q1_regression ~timeout_s:1. ()
  with
  | Engine.Errored _ -> ()
  | o -> Alcotest.failf "expected Errored, got %a" Engine.pp_outcome o

(* --- MapReduce task retry --- *)

let test_mr_task_retry () =
  let mr = Mr.create ~nodes:2 () in
  Mr.set_fault_plan mr
    (Fault.of_events [ Fault.Task_fail { job = 0; failures = 2 } ]);
  let out = Mr.map_only mr ~name:"echo" ~mapper:(fun l -> [ l ]) [ "a"; "b" ] in
  Alcotest.(check (list string)) "output intact" [ "a"; "b" ] out;
  Alcotest.(check int) "two re-attempts" 2 (Mr.task_retries mr);
  Alcotest.(check bool) "re-attempts charged" true (Mr.wasted_seconds mr > 0.)

let test_mr_job_failed () =
  let mr = Mr.create ~nodes:2 () in
  Mr.set_fault_plan mr
    (Fault.of_events [ Fault.Task_fail { job = 0; failures = 99 } ]);
  Alcotest.(check bool) "JobTracker gives up" true
    (try
       ignore (Mr.map_only mr ~name:"echo" ~mapper:(fun l -> [ l ]) [ "a" ]);
       false
     with Mr.Job_failed _ -> true)

(* --- harness under faults --- *)

let status c =
  match c.Harness.outcome with
  | Engine.Completed _ -> "ok"
  | Engine.Degraded _ -> "degraded"
  | Engine.Timed_out -> "timeout"
  | Engine.Out_of_memory -> "oom"
  | Engine.Errored _ -> "error"
  | Engine.Unsupported -> "unsupported"

let regression_of c =
  match Engine.payload_of c.Harness.outcome with
  | Some (Engine.Regression r) -> (r.intercept, r.r2)
  | _ -> Alcotest.fail "expected a regression payload"

let test_grid_mixed_outcomes () =
  let crashy =
    Fault.of_events ~seed:5L [ Fault.Node_crash { node = 0; superstep = 0 } ]
  in
  let doomed = Fault.of_events [ Fault.Task_fail { job = 0; failures = 99 } ] in
  let cells =
    List.map
      (fun e -> Harness.run_cell e tiny Query.Q1_regression ~timeout_s:60.)
      [
        Engine_pbdr.engine ~nodes:2;
        Engine_pbdr.faulty ~fault:crashy ~nodes:2;
        Engine_hadoop.multinode_faulty ~fault:doomed ~nodes:2;
      ]
  in
  Alcotest.(check (list string))
    "empty plan completes, crash degrades, exhausted retries error"
    [ "ok"; "degraded"; "error" ] (List.map status cells);
  (* Recovery must not change the answer: the degraded run's payload
     matches the fault-free one. *)
  let clean_intercept, clean_r2 = regression_of (List.nth cells 0) in
  let degraded_intercept, degraded_r2 = regression_of (List.nth cells 1) in
  Alcotest.(check (float 1e-9)) "same intercept" clean_intercept
    degraded_intercept;
  Alcotest.(check (float 1e-9)) "same r2" clean_r2 degraded_r2;
  let csv = Harness.to_csv cells in
  List.iter
    (fun line ->
      Alcotest.(check int) "csv has recovery columns" 14
        (List.length (String.split_on_char ',' line)))
    (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv));
  let table = Harness.availability cells in
  Alcotest.(check bool) "availability mentions every engine" true
    (Astring_contains.contains table "pbdR"
    && Astring_contains.contains table "Hadoop")

let test_chaos_plan_deterministic () =
  let d = Harness.default_chaos in
  let p1 = Harness.chaos_plan d ~engine:"pbdR" ~nodes:2 in
  let p2 = Harness.chaos_plan d ~engine:"pbdR" ~nodes:2 in
  let other = Harness.chaos_plan d ~engine:"SciDB" ~nodes:2 in
  Alcotest.(check bool) "pure function of config" (p1 = p2) true;
  Alcotest.(check bool) "engines get distinct placements" (p1 = other) false

let suite =
  [
    ("scatter deterministic", `Quick, test_scatter_deterministic);
    ("scatter classes independent", `Quick, test_scatter_independent);
    ("plan accessors", `Quick, test_plan_accessors);
    ("backoff bounds", `Quick, test_backoff_bounds);
    ("retry succeeds and charges", `Quick, test_retry_succeeds_and_charges);
    ("retry gives up", `Quick, test_retry_gives_up);
    ("retry never retries timeout", `Quick, test_retry_never_retries_timeout);
    ("deterministic jitter", `Quick, test_det_jitter);
    ("retry total-deadline cutoff", `Quick, test_retry_remaining_cutoff);
    ("crash recovery deterministic", `Quick, test_crash_recovery_deterministic);
    ("last survivor never dies", `Quick, test_last_survivor_never_dies);
    ("straggler speculation", `Quick, test_straggler_speculation);
    ("oom retry and escalation", `Quick, test_oom_retry_and_escalation);
    ("message faults", `Quick, test_message_faults);
    ("checkpoint limits redo", `Quick, test_checkpoint_limits_redo);
    ("sim deadline mid-superstep", `Quick, test_sim_deadline_mid_superstep);
    ("engine run catch-all", `Quick, test_engine_run_catch_all);
    ("mr task retry", `Quick, test_mr_task_retry);
    ("mr job failed", `Quick, test_mr_job_failed);
    ("grid mixed outcomes", `Quick, test_grid_mixed_outcomes);
    ("chaos plan deterministic", `Quick, test_chaos_plan_deterministic);
  ]
