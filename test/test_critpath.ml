(* Flight recorder and critical-path analyzer: ring bounds and drop
   accounting, tail-based sampling (sticky upgrades, deterministic
   fast-trace picks), trigger cooldown/cap/manual-bypass semantics, the
   shed-spike window, dump validity (Chrome round-trip + blame check),
   bit-identical recorder decisions across two simulated runs, the
   blame-sum identity on synthetic and load-generated traces, the strict
   Chrome JSON -> events parser, and the Window churn counters. *)

open Gb_obs
module Rec = Recorder
module Cp = Critpath
module Tx = Trace_export
module Loadgen = Gb_serve.Loadgen

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.0))

(* Recorder state is process-global: arm it, run, and always disarm so
   the rest of the suite sees the stopped recorder. *)
let with_recorder ?config f =
  Rec.start ?config ();
  Fun.protect ~finally:(fun () -> Rec.stop ()) f

let cfg ?(capacity = 1024) ?(sample_every = 10) ?(tail_latency_s = 1.0)
    ?(shed_spike = 10) ?(shed_window_s = 1.0) ?(cooldown_s = 5.0)
    ?(max_dumps = 8) () =
  {
    Rec.capacity;
    sample_every;
    tail_latency_s;
    shed_spike;
    shed_window_s;
    cooldown_s;
    max_dumps;
  }

let sim_instant ?(attrs = []) ~name ~ts () =
  Obs.Span.instant ~track:Obs.Sim ~ts ~attrs ~name ()

(* --- ring buffer --- *)

let test_ring_drop_oldest () =
  with_recorder ~config:(cfg ~capacity:4 ()) (fun () ->
      for i = 1 to 10 do
        sim_instant ~name:(Printf.sprintf "ev%d" i) ~ts:(float_of_int i) ()
      done;
      let st = Rec.stats () in
      checki "all offered events counted" 10 st.Rec.s_seen;
      checki "overflow counted as drops" 6 st.Rec.s_ring_dropped;
      Rec.trigger ~now:11. ();
      match Rec.dumps () with
      | [ d ] ->
        (* capacity survivors + the trailing recorder.dump marker *)
        checki "dump holds newest capacity events" 5
          (List.length d.Rec.d_events);
        let names =
          List.filter_map
            (function
              | Obs.Instant_ev { name; _ } -> Some name | _ -> None)
            d.Rec.d_events
        in
        check
          Alcotest.(list string)
          "oldest dropped, newest kept, marker last"
          [ "ev7"; "ev8"; "ev9"; "ev10"; "recorder.dump" ]
          names;
        checki "drop count stamped on the dump" 6 d.Rec.d_ring_dropped
      | l -> Alcotest.failf "expected 1 dump, got %d" (List.length l))

(* --- tail-based sampling --- *)

let test_tail_sampling_sticky () =
  with_recorder ~config:(cfg ~sample_every:3 ~tail_latency_s:1.0 ())
    (fun () ->
      for t = 1 to 6 do
        sim_instant ~name:"work"
          ~attrs:[ ("trace", Obs.Int t) ]
          ~ts:(float_of_int t) ()
      done;
      (* Six fast ok responses: the deterministic 1-in-3 pick keeps
         traces 1 and 4. *)
      for t = 1 to 6 do
        Rec.observe_response ~trace:t ~latency_s:0.1 ~ok:true
          ~now:(float_of_int t)
      done;
      (* Trace 2 was discarded as fast; a later slow attempt upgrades it
         (sticky keep) and fires the tail-latency trigger. *)
      Rec.observe_response ~trace:2 ~latency_s:2.0 ~ok:true ~now:7.;
      let st = Rec.stats () in
      checki "responses" 7 st.Rec.s_responses;
      checki "fast sampled" 2 st.Rec.s_fast_sampled;
      checki "fast discarded" 4 st.Rec.s_fast_discarded;
      checki "tail kept" 1 st.Rec.s_tail_kept;
      checki "nothing failed" 0 st.Rec.s_fail_kept;
      match Rec.dumps () with
      | [ d ] ->
        checkb "tail-latency reason" true (d.Rec.d_reason = Rec.Tail_latency);
        check Alcotest.(list int) "kept = sampled + upgraded" [ 1; 2; 4 ]
          d.Rec.d_kept;
        check Alcotest.(list int) "sampled picks" [ 1; 4 ] d.Rec.d_sampled;
        let kept_traces =
          List.filter_map
            (function
              | Obs.Instant_ev { name = "work"; attrs; _ } -> (
                match List.assoc_opt "trace" attrs with
                | Some (Obs.Int t) -> Some t
                | _ -> None)
              | _ -> None)
            d.Rec.d_events
        in
        check
          Alcotest.(list int)
          "discarded traces filtered out of the dump" [ 1; 2; 4 ] kept_traces
      | l -> Alcotest.failf "expected 1 dump, got %d" (List.length l))

let test_trigger_cooldown_cap_manual () =
  with_recorder ~config:(cfg ~cooldown_s:5.0 ~max_dumps:2 ()) (fun () ->
      Rec.trigger ~reason:Rec.Slo_fire ~now:0. ();
      Rec.trigger ~reason:Rec.Slo_fire ~now:1. () (* cooldown *);
      Rec.trigger ~reason:Rec.Breaker_open ~now:6. ();
      Rec.trigger ~reason:Rec.Slo_fire ~now:20. () (* over the cap *);
      Rec.trigger ~now:21. () (* manual bypasses both *);
      let st = Rec.stats () in
      checki "dumps taken" 3 st.Rec.s_dumps;
      checki "automatic triggers suppressed" 2 st.Rec.s_suppressed;
      let reasons = List.map (fun d -> d.Rec.d_reason) (Rec.dumps ()) in
      checkb "reasons in order" true
        (reasons = [ Rec.Slo_fire; Rec.Breaker_open; Rec.Manual ]))

let test_shed_spike_window () =
  with_recorder
    ~config:(cfg ~shed_spike:3 ~shed_window_s:1.0 ~cooldown_s:0. ())
    (fun () ->
      Rec.observe_shed ~now:0.1;
      Rec.observe_shed ~now:0.2;
      checki "below the spike threshold" 0 (Rec.stats ()).Rec.s_dumps;
      Rec.observe_shed ~now:0.3;
      checki "third shed inside the window fires" 1 (Rec.stats ()).Rec.s_dumps;
      (* The window resets after firing: two sheds don't re-fire... *)
      Rec.observe_shed ~now:0.4;
      Rec.observe_shed ~now:0.5;
      checki "window cleared by the dump" 1 (Rec.stats ()).Rec.s_dumps;
      (* ...and sheds outside the window age out. *)
      Rec.observe_shed ~now:2.0;
      Rec.observe_shed ~now:2.1;
      Rec.observe_shed ~now:2.2;
      checki "fresh spike fires again" 2 (Rec.stats ()).Rec.s_dumps;
      checkb "shed-spike reason" true
        (List.for_all
           (fun d -> d.Rec.d_reason = Rec.Shed_spike)
           (Rec.dumps ())))

(* --- synthetic blame decomposition --- *)

let span ?(parent = -1) ?(attrs = []) ~id ~name ~t0 ~dur () =
  Obs.Span_ev
    {
      Obs.id;
      parent;
      name;
      cat = "test";
      track = Obs.Sim;
      tid = 0;
      t0;
      dur;
      attrs;
    }

let instant ?(attrs = []) ~name ~ts () =
  Obs.Instant_ev { name; track = Obs.Sim; tid = 0; ts; attrs }

let tr t = ("trace", Obs.Int t)

let test_blame_queue_memwait_exec_child () =
  let events =
    [
      instant ~name:"serve.admit"
        ~attrs:[ tr 7; ("id", Obs.Int 1); ("decision", Obs.Str "enqueue") ]
        ~ts:0. ();
      span ~id:10 ~name:"queue" ~t0:0. ~dur:2.
        ~attrs:[ tr 7; ("mem_wait_s", Obs.Float 0.5) ]
        ();
      span ~id:11 ~name:"exec" ~t0:2. ~dur:3.
        ~attrs:[ tr 7; ("ok", Obs.Bool true); ("engine", Obs.Str "volcano") ]
        ();
      (* engine phase under the exec span: parent link only, no trace *)
      span ~id:12 ~parent:11 ~name:"scan" ~t0:2.5 ~dur:1. ();
    ]
  in
  match Cp.requests events with
  | [ r ] ->
    checki "trace id" 7 r.Cp.r_trace;
    check Alcotest.string "engine picked up" "volcano" r.Cp.r_engine;
    checkf "e2e spans the request window" 5. r.Cp.r_e2e;
    checkb "ok from the exec attr" true r.Cp.r_ok;
    let get l = List.assoc l r.Cp.r_blame in
    checkf "queue minus its mem-wait tail" 1.5 (get "queue");
    checkf "mem wait split out" 0.5 (get "mem_wait");
    checkf "exec minus the child phase" 2.0 (get "exec");
    checkf "child phase on the critical path" 1.0 (get "scan");
    checkf "segments sum exactly to e2e" r.Cp.r_e2e (Cp.blame_total r);
    checkb "check agrees" true (Cp.check [ r ] = Ok 1)
  | l -> Alcotest.failf "expected 1 request, got %d" (List.length l)

let test_blame_gap_labels () =
  let events =
    [
      span ~id:20 ~name:"queue" ~t0:0. ~dur:1. ~attrs:[ tr 8 ] ();
      instant ~name:"client.retry"
        ~attrs:[ tr 8; ("reason", Obs.Str "shed:breaker_open") ]
        ~ts:1. ();
      span ~id:21 ~name:"queue" ~t0:3. ~dur:1. ~attrs:[ tr 8 ] ();
      span ~id:22 ~name:"exec" ~t0:4. ~dur:1.
        ~attrs:[ tr 8; ("ok", Obs.Bool true) ]
        ();
    ]
  in
  match Cp.requests events with
  | [ r ] ->
    let get l = List.assoc l r.Cp.r_blame in
    checkf "both queue waits" 2.0 (get "queue");
    checkf "gap after a breaker shed is cooldown" 2.0 (get "breaker_cooldown");
    checkf "exec" 1.0 (get "exec");
    checkf "identity" r.Cp.r_e2e (Cp.blame_total r)
  | l -> Alcotest.failf "expected 1 request, got %d" (List.length l)

let test_blame_expired_queue_wait () =
  (* A queued-then-expired attempt emits no queue span; the wait closes
     from its admit/expire instants, matched by request id. *)
  let events =
    [
      instant ~name:"serve.admit"
        ~attrs:[ tr 9; ("id", Obs.Int 5); ("decision", Obs.Str "enqueue") ]
        ~ts:0. ();
      instant ~name:"serve.expire" ~attrs:[ tr 9; ("id", Obs.Int 5) ] ~ts:2.
        ();
    ]
  in
  match Cp.requests events with
  | [ r ] ->
    checkb "no exec means not ok" false r.Cp.r_ok;
    checkf "whole wait blamed on the queue" 2.0
      (List.assoc "queue" r.Cp.r_blame);
    checkf "identity" r.Cp.r_e2e (Cp.blame_total r)
  | l -> Alcotest.failf "expected 1 request, got %d" (List.length l)

(* --- chrome JSON parser: round-trip and strict rejection --- *)

let contains ~sub s = Astring_contains.contains s sub

let test_chrome_round_trip () =
  let events =
    [
      span ~id:30 ~name:"exec" ~t0:1. ~dur:2.
        ~attrs:[ tr 3; ("ok", Obs.Bool true) ]
        ();
      span ~id:31 ~parent:30 ~name:"phase" ~t0:1.5 ~dur:0.5 ();
      instant ~name:"serve.admit"
        ~attrs:[ tr 3; ("decision", Obs.Str "enqueue") ]
        ~ts:1. ();
    ]
  in
  let serialized = Tx.chrome_json events in
  (match Tx.validate_chrome serialized with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "export fails its own validator: %s" e);
  match Tx.events_of_chrome serialized with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok back -> (
    checki "event count survives" 3 (List.length back);
    let spans =
      List.filter_map
        (function Obs.Span_ev s -> Some s | _ -> None)
        back
    in
    match spans with
    | [ a; b ] ->
      checki "span id preserved" 30 a.Obs.id;
      checki "parent link preserved" a.Obs.id b.Obs.parent;
      checkb "trace attr survives (and span_id/parent are stripped)" true
        (a.Obs.attrs
        |> List.for_all (fun (k, _) -> k <> "span_id" && k <> "parent"));
      checkb "requests parse identically from both forms" true
        (Cp.requests events = Cp.requests back)
    | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l))

let expect_error ~what ~sub s =
  match Tx.events_of_chrome s with
  | Ok _ -> Alcotest.failf "%s: expected rejection" what
  | Error e ->
    checkb
      (Printf.sprintf "%s: error %S mentions %S" what e sub)
      true
      (contains ~sub e)

let test_chrome_parser_rejects () =
  let valid =
    Tx.chrome_json
      [ span ~id:40 ~name:"exec" ~t0:0. ~dur:1. ~attrs:[ tr 1 ] () ]
  in
  expect_error ~what:"truncated"
    ~sub:""
    (String.sub valid 0 (String.length valid / 2));
  expect_error ~what:"not even JSON" ~sub:"" "][";
  expect_error ~what:"missing fields" ~sub:""
    {|{"traceEvents":[{"ph":"X","name":"a"}]}|};
  expect_error ~what:"unknown phase" ~sub:"ph"
    {|{"traceEvents":[{"ph":"B","name":"a","pid":2,"tid":0,"ts":0}]}|};
  expect_error ~what:"unknown pid" ~sub:"pid"
    {|{"traceEvents":[{"ph":"i","name":"a","pid":9,"tid":0,"ts":0}]}|};
  expect_error ~what:"duplicate span ids" ~sub:"duplicate"
    {|{"traceEvents":[
       {"ph":"X","name":"a","pid":2,"tid":0,"ts":0,"dur":5,"args":{"span_id":5}},
       {"ph":"X","name":"b","pid":2,"tid":0,"ts":9,"dur":5,"args":{"span_id":5}}]}|}

(* --- recorder + analyzer over a simulated load run --- *)

let load_run () =
  match Loadgen.find_scenario "overload" with
  | Error e -> failwith e
  | Ok sc ->
    let config =
      { (Loadgen.default_config sc) with Loadgen.duration = 10. }
    in
    ignore (Loadgen.run config)

let dump_digest d =
  ( d.Rec.d_seq,
    Rec.reason_label d.Rec.d_reason,
    d.Rec.d_at,
    d.Rec.d_kept,
    d.Rec.d_sampled,
    List.length d.Rec.d_events )

let test_load_dumps_deterministic_and_valid () =
  let run () =
    Rec.start ~config:(cfg ~tail_latency_s:2.0 ~cooldown_s:2.0 ()) ();
    load_run ();
    Rec.stop ();
    (Rec.dumps (), Rec.stats ())
  in
  let dumps1, stats1 = run () in
  let dumps2, stats2 = run () in
  checkb "at least one dump fires under overload" true (dumps1 <> []);
  checkb "stats bit-identical across runs" true (stats1 = stats2);
  checkb "dump decisions bit-identical across runs" true
    (List.map dump_digest dumps1 = List.map dump_digest dumps2);
  List.iter
    (fun d ->
      let serialized = Rec.chrome_of_dump d in
      (match Tx.validate_chrome serialized with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "dump %d invalid: %s" d.Rec.d_seq e);
      match Cp.of_chrome serialized with
      | Error e -> Alcotest.failf "dump %d unparseable: %s" d.Rec.d_seq e
      | Ok reqs -> (
        checkb
          (Printf.sprintf "dump %d has analyzable requests" d.Rec.d_seq)
          true (reqs <> []);
        match Cp.check reqs with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "dump %d blame identity: %s" d.Rec.d_seq e))
    dumps1

let test_load_blame_identity_full_capture () =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) (fun () ->
      load_run ();
      let reqs = Cp.requests (Obs.events ()) in
      checkb "capture yields requests" true (List.length reqs > 50);
      (match Cp.check reqs with
      | Ok n -> checki "every request checked" (List.length reqs) n
      | Error e -> Alcotest.failf "blame identity on live capture: %s" e);
      List.iter
        (fun r ->
          if not (Cp.blame_total r = r.Cp.r_e2e) then
            Alcotest.failf "trace %d: %.17g <> %.17g" r.Cp.r_trace
              (Cp.blame_total r) r.Cp.r_e2e)
        reqs;
      (* the profile and diff renderers must not choke on real data *)
      checkb "profile renders" true
        (String.length (Cp.render_profile (Cp.profile reqs)) > 0);
      checkb "self-diff reports no movement per label" true
        (List.for_all (fun d -> d.Cp.d_delta = 0.) (Cp.diff reqs reqs)))

(* --- Window churn counters (satellite) --- *)

let test_window_churn_counters () =
  let w = Telemetry.Window.create ~width_s:1.0 ~windows:4 () in
  Telemetry.Window.observe w ~now:0.5 1.0;
  checki "no churn before the clock moves" 0 (Telemetry.Window.advanced w);
  checki "nothing dropped yet" 0 (Telemetry.Window.dropped w);
  Telemetry.Window.observe w ~now:10.2 1.0;
  (* jump of 10 sub-windows recycles at most the ring's 4 slots *)
  checki "recycled slots counted" 4 (Telemetry.Window.advanced w);
  Telemetry.Window.observe w ~now:5.0 1.0;
  checki "stale observation dropped" 1 (Telemetry.Window.dropped w);
  checki "dropped observation not counted" 1
    (Telemetry.Window.count w ~now:10.2 ~horizon_s:4.)

let suite =
  [
    Alcotest.test_case "ring drop-oldest accounting" `Quick
      test_ring_drop_oldest;
    Alcotest.test_case "tail sampling: sticky keeps, deterministic picks"
      `Quick test_tail_sampling_sticky;
    Alcotest.test_case "trigger cooldown, cap, manual bypass" `Quick
      test_trigger_cooldown_cap_manual;
    Alcotest.test_case "shed-spike window" `Quick test_shed_spike_window;
    Alcotest.test_case "blame: queue/mem_wait/exec/child tiling" `Quick
      test_blame_queue_memwait_exec_child;
    Alcotest.test_case "blame: gap labels from retry markers" `Quick
      test_blame_gap_labels;
    Alcotest.test_case "blame: expired queue wait from instants" `Quick
      test_blame_expired_queue_wait;
    Alcotest.test_case "chrome export/parse round trip" `Quick
      test_chrome_round_trip;
    Alcotest.test_case "chrome parser rejects malformed input" `Quick
      test_chrome_parser_rejects;
    Alcotest.test_case "load run: dumps deterministic and valid" `Quick
      test_load_dumps_deterministic_and_valid;
    Alcotest.test_case "load run: blame-sum identity on full capture" `Quick
      test_load_blame_identity_full_capture;
    Alcotest.test_case "window churn counters" `Quick
      test_window_churn_counters;
  ]
