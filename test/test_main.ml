let () =
  Alcotest.run "genbase"
    [
      ("util", Test_util.suite);
      ("ranges", Test_ranges.suite);
      ("linalg", Test_linalg.suite);
      ("linalg-dense", Test_linalg2.suite);
      ("stats", Test_stats.suite);
      ("stats-tests", Test_stats2.suite);
      ("bicluster", Test_bicluster.suite);
      ("clustering", Test_clustering.suite);
      ("datagen", Test_datagen.suite);
      ("seqdata", Test_seqdata.suite);
      ("relational", Test_relational.suite);
      ("relational-access", Test_relational2.suite);
      ("storage", Test_storage.suite);
      ("dataframe", Test_dataframe.suite);
      ("arraydb", Test_arraydb.suite);
      ("array-ops", Test_array_ops.suite);
      ("sparse", Test_sparse.suite);
      ("mapreduce", Test_mapreduce.suite);
      ("cluster", Test_cluster.suite);
      ("fault", Test_fault.suite);
      ("coproc", Test_coproc.suite);
      ("relops", Test_relops.suite);
      ("core", Test_core.suite);
      ("par", Test_par.suite);
      ("serve", Test_serve.suite);
      ("obs", Test_obs.suite);
      ("critpath", Test_critpath.suite);
      ("conformance", Test_conformance.suite);
      ("linalg-prop", Test_linalg_prop.suite);
      ("stream", Test_stream.suite);
      ("scaling", Test_scaling.suite);
    ]
