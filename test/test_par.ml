(* Domain pool: jobs parsing, parallel_for coverage and equivalence to
   the sequential loop, map_reduce determinism, fork-join, exception
   propagation (and pool reuse afterwards), nested regions running
   inline, the par.tasks counter, and the memory-budget gate.

   The container running CI may have a single core; nothing here asserts
   wall-clock speedup — only correctness and determinism contracts. *)

module Pool = Gb_par.Pool
module Budget = Gb_par.Budget

let check = Alcotest.check
let checkb = Alcotest.(check bool)

(* Run [f] with the pool forced to [jobs] lanes, restoring the default
   afterwards even on exception (the pool is process-global state). *)
let with_jobs jobs f =
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.reset_jobs ()) f

(* --- jobs parsing --- *)

let test_parse_jobs () =
  checkb "1 ok" true (Pool.parse_jobs "1" = Ok 1);
  checkb "8 ok" true (Pool.parse_jobs "8" = Ok 8);
  checkb "0 rejected" true (Result.is_error (Pool.parse_jobs "0"));
  checkb "negative rejected" true (Result.is_error (Pool.parse_jobs "-3"));
  checkb "non-numeric rejected" true (Result.is_error (Pool.parse_jobs "abc"));
  checkb "empty rejected" true (Result.is_error (Pool.parse_jobs ""));
  checkb "set_jobs 0 raises" true
    (match Pool.set_jobs 0 with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- parallel_for covers the range exactly once, any domain count --- *)

let test_parallel_for_coverage () =
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let n = 10_007 in
          let hits = Array.make n 0 in
          Pool.parallel_for ~grain:64 ~lo:0 ~hi:n (fun lo hi ->
              for i = lo to hi - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          checkb
            (Printf.sprintf "every index once at %d domains" jobs)
            true
            (Array.for_all (fun h -> h = 1) hits);
          (* Empty and single-element ranges must not call out of range. *)
          Pool.parallel_for ~lo:5 ~hi:5 (fun _ _ -> Alcotest.fail "empty range");
          let one = ref 0 in
          Pool.parallel_for ~lo:3 ~hi:4 (fun lo hi -> one := !one + hi - lo);
          check Alcotest.int "single element" 1 !one))
    [ 1; 2; 4 ]

let test_parallel_for_matches_sequential () =
  (* Disjoint writes partitioned over output slots: identical bits to
     the plain loop at every domain count. *)
  let n = 4096 in
  let reference = Array.init n (fun i -> sin (float_of_int i) *. 1.7) in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let out = Array.make n 0. in
          Pool.parallel_for ~grain:32 ~lo:0 ~hi:n (fun lo hi ->
              for i = lo to hi - 1 do
                out.(i) <- sin (float_of_int i) *. 1.7
              done);
          checkb
            (Printf.sprintf "bitwise at %d domains" jobs)
            true (reference = out)))
    [ 1; 2; 4 ]

(* --- map_reduce: deterministic tree reduction --- *)

let test_map_reduce_sum () =
  (* Integer sum is associative, so every domain count agrees exactly. *)
  let n = 100_000 in
  let expect = n * (n - 1) / 2 in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let total =
            Pool.map_reduce ~grain:1024 ~lo:0 ~hi:n
              ~map:(fun lo hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
              ~combine:( + ) ()
          in
          check Alcotest.int
            (Printf.sprintf "sum at %d domains" jobs)
            expect total))
    [ 1; 2; 4 ]

let test_map_reduce_float_deterministic () =
  (* Floats: the reduction tree is a pure function of (range, grain), so
     repeated runs at the same domain count are bitwise identical even
     though domains race for chunks. *)
  let n = 50_000 in
  let run () =
    Pool.map_reduce ~grain:512 ~lo:0 ~hi:n
      ~map:(fun lo hi ->
        let s = ref 0. in
        for i = lo to hi - 1 do
          s := !s +. (1. /. float_of_int (i + 1))
        done;
        !s)
      ~combine:( +. ) ()
  in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let a = run () and b = run () in
          checkb
            (Printf.sprintf "bitwise repeatable at %d domains" jobs)
            true
            (Int64.bits_of_float a = Int64.bits_of_float b)))
    [ 1; 2; 4 ];
  (* At 1 domain map_reduce collapses to [map lo hi]: bitwise the plain
     sequential accumulation over the whole range. *)
  with_jobs 1 (fun () ->
      let seq = ref 0. in
      for i = 0 to n - 1 do
        seq := !seq +. (1. /. float_of_int (i + 1))
      done;
      checkb "1 domain is the sequential fold" true
        (Int64.bits_of_float !seq = Int64.bits_of_float (run ())))

(* --- fork-join --- *)

let test_par2_and_maps () =
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let a, b = Pool.par2 (fun () -> 6 * 7) (fun () -> "ok") in
          check Alcotest.int "par2 left" 42 a;
          check Alcotest.string "par2 right" "ok" b;
          let arr = Pool.map_array (fun x -> x * x) [| 1; 2; 3; 4; 5 |] in
          checkb "map_array order" true (arr = [| 1; 4; 9; 16; 25 |]);
          let l = Pool.map_list (fun x -> -x) [ 3; 1; 2 ] in
          checkb "map_list order" true (l = [ -3; -1; -2 ])))
    [ 1; 4 ]

exception Kaboom of int

let test_exception_propagates_and_pool_survives () =
  with_jobs 4 (fun () ->
      (match
         Pool.parallel_for ~grain:8 ~lo:0 ~hi:1000 (fun lo _ ->
             if lo >= 504 then raise (Kaboom lo))
       with
      | () -> Alcotest.fail "expected Kaboom"
      | exception Kaboom _ -> ());
      (* The region must have fully quiesced: the pool is immediately
         reusable and subsequent results are intact. *)
      let total =
        Pool.map_reduce ~lo:0 ~hi:100
          ~map:(fun lo hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
          ~combine:( + ) ()
      in
      check Alcotest.int "pool usable after exception" 4950 total)

let test_nested_runs_inline () =
  with_jobs 4 (fun () ->
      checkb "outside a region" false (Pool.in_parallel_region ());
      let saw_nested_region = ref false in
      Pool.parallel_for ~grain:1 ~lo:0 ~hi:8 (fun _ _ ->
          if Pool.in_parallel_region () then begin
            (* A nested parallel_for must run inline on this domain
               rather than deadlock waiting for the busy pool. *)
            let s = ref 0 in
            Pool.parallel_for ~lo:0 ~hi:10 (fun lo hi -> s := !s + hi - lo);
            if !s = 10 then saw_nested_region := true
          end);
      checkb "nested region ran inline" true !saw_nested_region)

let test_tasks_counter () =
  with_jobs 2 (fun () ->
      Gb_obs.Obs.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Gb_obs.Obs.set_enabled false)
        (fun () ->
          let before = Gb_obs.Metric.snapshot () in
          Pool.parallel_for ~grain:10 ~lo:0 ~hi:1000 (fun _ _ -> ());
          let d = Gb_obs.Metric.delta before in
          checkb "par.tasks counts spawned chunks" true
            (match List.assoc_opt "par.tasks" d with
            | Some v -> v > 0.
            | None -> false)))

(* --- Q6: overlap join bitwise identical at 1 vs 4 domains ---

   Same discipline as the GEMM test above: the sweep kernel partitions
   the variant side over pool-size-independent chunks and stitches the
   per-chunk pair lists in chunk order, so the payload fingerprint must
   not depend on the domain count. *)

let test_q6_bitwise_across_domains () =
  let ds =
    Genbase.Dataset.generate ~seed:0xC0FFEEL
      (Gb_datagen.Spec.custom ~genes:120 ~patients:300)
  in
  let digest_at jobs =
    with_jobs jobs (fun () ->
        match
          Genbase.Engine.payload_of
            (Genbase.Engine.run Genbase.Engine_sql.colstore_udf ds
               Genbase.Query.Q6_overlap ~timeout_s:60. ())
        with
        | Some p -> Gb_conformance.Compare.fingerprint p
        | None -> Alcotest.fail "Q6 did not complete")
  in
  let d1 = digest_at 1 in
  check Alcotest.string "colstore Q6 digest identical at 1 vs 4 domains" d1
    (digest_at 4);
  (* And the shared sweep kernel itself, driven directly. *)
  let vivs = Genbase.Qcommon.variant_ivs ds
  and givs = Genbase.Qcommon.gene_ivs ds in
  let sweep_at jobs =
    with_jobs jobs (fun () -> Genbase.Qcommon.overlap_sweep vivs givs)
  in
  let p1 = sweep_at 1 in
  checkb "sweep kernel pair list identical at 1 vs 4 domains" true
    (p1 = sweep_at 4);
  checkb "kernel output non-trivial" true (List.length p1 > 0)

(* --- memory budget --- *)

let test_budget () =
  checkb "non-positive capacity rejected" true
    (match Budget.create ~bytes:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let b = Budget.create ~bytes:1000 in
  check Alcotest.int "capacity" 1000 (Budget.capacity b);
  (* Within budget: runs, and releases so a second reservation fits. *)
  let r = Budget.with_reservation b ~bytes:800 (fun () -> 1) in
  let r2 = Budget.with_reservation b ~bytes:800 (fun () -> 2) in
  check Alcotest.int "sequential reservations" 3 (r + r2);
  (* Oversized requests are admitted when the budget is idle rather
     than deadlocking forever. *)
  check Alcotest.int "oversized admitted when idle" 9
    (Budget.with_reservation b ~bytes:5000 (fun () -> 9));
  (* Release happens on exception too. *)
  (try Budget.with_reservation b ~bytes:900 (fun () -> raise Exit)
   with Exit -> ());
  check Alcotest.int "released after exception" 7
    (Budget.with_reservation b ~bytes:1000 (fun () -> 7));
  (* Two domains serialized by a budget only big enough for one: the
     concurrent in-flight total must never exceed capacity. *)
  let gate = Budget.create ~bytes:100 in
  let in_flight = Atomic.make 0 in
  let max_seen = Atomic.make 0 in
  let worker () =
    for _ = 1 to 50 do
      Budget.with_reservation gate ~bytes:60 (fun () ->
          let now = Atomic.fetch_and_add in_flight 1 + 1 in
          let rec bump () =
            let m = Atomic.get max_seen in
            if now > m && not (Atomic.compare_and_set max_seen m now) then
              bump ()
          in
          bump ();
          Domain.cpu_relax ();
          Atomic.decr in_flight)
    done
  in
  let ds = List.init 2 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  check Alcotest.int "budget admits one 60-byte holder at a time" 1
    (Atomic.get max_seen)

(* Regression: a query raising mid-execution must always release its
   reservation — the bracket is with_reservation's Fun.protect; the
   explicit reserve/release pairs must survive double release and keep
   used/try_reserve consistent for the serving layer's shed decisions. *)
let test_budget_release_on_raise () =
  let b = Budget.create ~bytes:1000 in
  check Alcotest.int "idle" 0 (Budget.used b);
  (* Exceptions at any depth release the bracket. *)
  List.iter
    (fun (exn : exn) ->
      (try
         Budget.with_reservation b ~bytes:900 (fun () ->
             check Alcotest.int "charged inside" 900 (Budget.used b);
             raise exn)
       with _ -> ());
      check Alcotest.int "released after raise" 0 (Budget.used b))
    [ Exit; Failure "engine error"; Out_of_memory; Not_found ];
  (* Explicit pairs: try_reserve accounts, refuses over-commit, and a
     double release cannot drive the ledger negative. *)
  match Budget.try_reserve b ~bytes:700 with
  | None -> Alcotest.fail "700 of 1000 should fit"
  | Some granted ->
    check Alcotest.int "granted what was asked" 700 granted;
    check Alcotest.int "used tracks the grant" 700 (Budget.used b);
    checkb "second reservation refused, not queued" true
      (Budget.try_reserve b ~bytes:400 = None);
    Budget.release b ~bytes:granted;
    check Alcotest.int "released" 0 (Budget.used b);
    Budget.release b ~bytes:granted;
    check Alcotest.int "double release clamps at zero" 0 (Budget.used b);
    checkb "budget still admits after the clamp" true
      (match Budget.try_reserve b ~bytes:1000 with
      | Some 1000 -> Budget.release b ~bytes:1000; true
      | _ -> false)

let suite =
  [
    Alcotest.test_case "jobs parsing" `Quick test_parse_jobs;
    Alcotest.test_case "parallel_for coverage" `Quick
      test_parallel_for_coverage;
    Alcotest.test_case "parallel_for bitwise vs sequential" `Quick
      test_parallel_for_matches_sequential;
    Alcotest.test_case "map_reduce integer sum" `Quick test_map_reduce_sum;
    Alcotest.test_case "map_reduce float determinism" `Quick
      test_map_reduce_float_deterministic;
    Alcotest.test_case "par2 and ordered maps" `Quick test_par2_and_maps;
    Alcotest.test_case "exception propagation + reuse" `Quick
      test_exception_propagates_and_pool_survives;
    Alcotest.test_case "nested regions run inline" `Quick
      test_nested_runs_inline;
    Alcotest.test_case "par.tasks counter" `Quick test_tasks_counter;
    Alcotest.test_case "Q6 bitwise at 1 vs 4 domains" `Quick
      test_q6_bitwise_across_domains;
    Alcotest.test_case "memory budget gate" `Quick test_budget;
    Alcotest.test_case "budget release on raise + explicit pairs" `Quick
      test_budget_release_on_raise;
  ]
