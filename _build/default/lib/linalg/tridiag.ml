let hypot2 a b = Float.hypot a b

(* Classic tql2 (EISPACK) adapted to OCaml: QL with implicit shifts,
   accumulating the rotations into [z] when eigenvectors are wanted. *)
let tql2 d e z =
  let n = Array.length d in
  if n = 0 then ()
  else begin
    let e = Array.append e [| 0. |] in
    for l = 0 to n - 1 do
      let iter = ref 0 in
      let continue_outer = ref true in
      while !continue_outer do
        (* Find a small subdiagonal element. *)
        let m = ref l in
        let found = ref false in
        while (not !found) && !m < n - 1 do
          let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
          if Float.abs e.(!m) <= epsilon_float *. dd then found := true
          else incr m
        done;
        if !m = l then continue_outer := false
        else begin
          incr iter;
          if !iter > 50 then failwith "Tridiag: no convergence";
          let m = !m in
          let g = (d.(l + 1) -. d.(l)) /. (2. *. e.(l)) in
          let r = hypot2 g 1. in
          let g' =
            d.(m) -. d.(l)
            +. (e.(l) /. (g +. (if g >= 0. then Float.abs r else -.Float.abs r)))
          in
          let s = ref 1. and c = ref 1. and p = ref 0. in
          let g = ref g' in
          (try
             for i = m - 1 downto l do
               let f = !s *. e.(i) in
               let b = !c *. e.(i) in
               let r = hypot2 f !g in
               e.(i + 1) <- r;
               if r = 0. then begin
                 d.(i + 1) <- d.(i + 1) -. !p;
                 e.(m) <- 0.;
                 raise Exit
               end;
               s := f /. r;
               c := !g /. r;
               let g2 = d.(i + 1) -. !p in
               let r2 = ((d.(i) -. g2) *. !s) +. (2. *. !c *. b) in
               p := !s *. r2;
               d.(i + 1) <- g2 +. !p;
               g := (!c *. r2) -. b;
               (match z with
               | None -> ()
               | Some z ->
                 let nn = z.Mat.rows in
                 for k = 0 to nn - 1 do
                   let f = Mat.unsafe_get z k (i + 1) in
                   Mat.unsafe_set z k (i + 1)
                     ((!s *. Mat.unsafe_get z k i) +. (!c *. f));
                   Mat.unsafe_set z k i
                     ((!c *. Mat.unsafe_get z k i) -. (!s *. f))
                 done)
             done;
             d.(l) <- d.(l) -. !p;
             e.(l) <- !g;
             e.(m) <- 0.
           with Exit -> ())
        end
      done
    done
  end

let sort_desc d z =
  let n = Array.length d in
  let idx = Gb_util.Order.argsort ~descending:true d in
  let values = Array.map (fun i -> d.(i)) idx in
  let vectors =
    match z with
    | None -> Mat.create 0 0
    | Some z -> Mat.init n n (fun r c -> Mat.get z r idx.(c))
  in
  (values, vectors)

let check diag offdiag =
  if Array.length offdiag <> max 0 (Array.length diag - 1) then
    invalid_arg "Tridiag: offdiag must have length (n-1)"

let eigen diag offdiag =
  check diag offdiag;
  let n = Array.length diag in
  let d = Array.copy diag and e = Array.copy offdiag in
  let z = Mat.identity n in
  tql2 d e (Some z);
  sort_desc d (Some z)

let eigenvalues diag offdiag =
  check diag offdiag;
  let d = Array.copy diag and e = Array.copy offdiag in
  tql2 d e None;
  let values, _ = sort_desc d None in
  values
