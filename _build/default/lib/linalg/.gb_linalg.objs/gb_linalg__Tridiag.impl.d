lib/linalg/tridiag.ml: Array Float Gb_util Mat
