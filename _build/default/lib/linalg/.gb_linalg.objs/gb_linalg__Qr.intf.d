lib/linalg/qr.mli: Mat
