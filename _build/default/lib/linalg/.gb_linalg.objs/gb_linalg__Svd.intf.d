lib/linalg/svd.mli: Gb_util Mat
