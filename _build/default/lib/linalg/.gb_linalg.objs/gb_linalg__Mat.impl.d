lib/linalg/mat.ml: Array Bigarray Float Format Gb_util
