lib/linalg/lu.mli: Mat
