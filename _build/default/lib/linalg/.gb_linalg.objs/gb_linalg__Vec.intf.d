lib/linalg/vec.mli:
