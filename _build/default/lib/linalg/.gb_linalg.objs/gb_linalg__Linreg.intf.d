lib/linalg/linreg.mli: Mat
