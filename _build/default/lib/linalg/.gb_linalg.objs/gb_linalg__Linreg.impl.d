lib/linalg/linreg.ml: Array Blas Mat Qr Solve Vec
