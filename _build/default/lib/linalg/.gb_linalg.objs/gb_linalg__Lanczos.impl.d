lib/linalg/lanczos.ml: Array Blas Gb_util Mat Tridiag Vec
