lib/linalg/svd.ml: Array Blas Float Lanczos Mat Vec
