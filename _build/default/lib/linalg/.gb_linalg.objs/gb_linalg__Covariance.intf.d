lib/linalg/covariance.mli: Mat
