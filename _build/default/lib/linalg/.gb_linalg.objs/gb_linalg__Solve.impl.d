lib/linalg/solve.ml: Array Mat
