lib/linalg/kmeans.mli: Gb_util Mat
