lib/linalg/solve.mli: Mat
