lib/linalg/randomized.ml: Array Blas Covariance Gb_util Mat Qr Svd
