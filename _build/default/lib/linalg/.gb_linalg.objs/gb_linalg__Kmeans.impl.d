lib/linalg/kmeans.ml: Array Float Gb_util Mat Option
