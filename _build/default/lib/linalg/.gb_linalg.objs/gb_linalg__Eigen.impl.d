lib/linalg/eigen.ml: Array Float Gb_util Mat
