lib/linalg/lanczos.mli: Gb_util Mat
