lib/linalg/mat.mli: Bigarray Format Gb_util
