lib/linalg/randomized.mli: Gb_util Mat Svd
