lib/linalg/blas.ml: Array Bigarray Mat
