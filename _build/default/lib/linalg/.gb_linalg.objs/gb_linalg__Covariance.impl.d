lib/linalg/covariance.ml: Blas Float List Mat
