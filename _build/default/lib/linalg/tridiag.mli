(** Symmetric tridiagonal eigensolver (QL with implicit shifts).

    The Lanczos iteration reduces a large symmetric operator to a small
    tridiagonal matrix; this solver finishes the job. *)

val eigen : float array -> float array -> float array * Mat.t
(** [eigen diag offdiag] with [length offdiag = length diag - 1] returns
    [(values, vectors)] where column [k] of [vectors] is the unit
    eigenvector for [values.(k)], sorted by descending eigenvalue.
    Raises [Failure] if the iteration fails to converge. *)

val eigenvalues : float array -> float array -> float array
(** Eigenvalues only, descending. *)
