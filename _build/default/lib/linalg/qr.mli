(** Householder QR factorization and least-squares solving.

    Query 1 of the benchmark specifies that linear regression is solved "by
    a QR decomposition technique"; this module is that path. *)

type t
(** Compact factorization of an [m x n] matrix with [m >= n]. *)

val factorize : Mat.t -> t
(** Householder QR. Raises [Invalid_argument] if [rows < cols]. *)

val r : t -> Mat.t
(** The [n x n] upper-triangular factor. *)

val q : t -> Mat.t
(** The thin [m x n] orthonormal factor, materialized explicitly. *)

val solve : t -> float array -> float array
(** [solve qr b] is the least-squares solution of [A x = b]: applies the
    stored reflectors to [b] and back-substitutes through [R]. Raises
    [Failure "Qr.solve: rank deficient"] when a diagonal of [R] is (near)
    zero. *)

val least_squares : Mat.t -> float array -> float array
(** [least_squares a b] = [solve (factorize a) b]. *)
