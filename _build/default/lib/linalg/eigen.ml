let check_symmetric a =
  let n, m = Mat.dims a in
  if n <> m then invalid_arg "Eigen.symmetric: not square";
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = Float.abs (Mat.get a i j -. Mat.get a j i) in
      let scale = 1. +. Float.abs (Mat.get a i j) in
      if d > 1e-8 *. scale then invalid_arg "Eigen.symmetric: not symmetric"
    done
  done;
  n

let off_diagonal_norm a n =
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let v = Mat.unsafe_get a i j in
      acc := !acc +. (2. *. v *. v)
    done
  done;
  sqrt !acc

(* One cyclic sweep of Jacobi rotations over the strict upper triangle. *)
let sweep a v n =
  for p = 0 to n - 2 do
    for q = p + 1 to n - 1 do
      let apq = Mat.unsafe_get a p q in
      if Float.abs apq > 1e-300 then begin
        let app = Mat.unsafe_get a p p and aqq = Mat.unsafe_get a q q in
        let theta = (aqq -. app) /. (2. *. apq) in
        let t =
          let s = if theta >= 0. then 1. else -1. in
          s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
        in
        let c = 1. /. sqrt ((t *. t) +. 1.) in
        let s = t *. c in
        (* Update rows/columns p and q of A. *)
        for k = 0 to n - 1 do
          let akp = Mat.unsafe_get a k p and akq = Mat.unsafe_get a k q in
          Mat.unsafe_set a k p ((c *. akp) -. (s *. akq));
          Mat.unsafe_set a k q ((s *. akp) +. (c *. akq))
        done;
        for k = 0 to n - 1 do
          let apk = Mat.unsafe_get a p k and aqk = Mat.unsafe_get a q k in
          Mat.unsafe_set a p k ((c *. apk) -. (s *. aqk));
          Mat.unsafe_set a q k ((s *. apk) +. (c *. aqk))
        done;
        (* Accumulate the rotation into the eigenvector matrix. *)
        for k = 0 to n - 1 do
          let vkp = Mat.unsafe_get v k p and vkq = Mat.unsafe_get v k q in
          Mat.unsafe_set v k p ((c *. vkp) -. (s *. vkq));
          Mat.unsafe_set v k q ((s *. vkp) +. (c *. vkq))
        done
      end
    done
  done

let symmetric ?(max_sweeps = 50) ?(tol = 1e-12) src =
  let n = check_symmetric src in
  let a = Mat.copy src in
  let v = Mat.identity n in
  let scale = Float.max 1. (Mat.frobenius src) in
  let converged = ref false in
  let sweeps = ref 0 in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    sweep a v n;
    if off_diagonal_norm a n <= tol *. scale then converged := true
  done;
  if not !converged then failwith "Eigen.symmetric: no convergence";
  let values = Array.init n (fun i -> Mat.get a i i) in
  let order = Gb_util.Order.argsort ~descending:true values in
  let sorted_values = Array.map (fun i -> values.(i)) order in
  let sorted_vectors = Mat.init n n (fun r c -> Mat.get v r order.(c)) in
  (sorted_values, sorted_vectors)

let eigenvalues ?max_sweeps ?tol a = fst (symmetric ?max_sweeps ?tol a)
