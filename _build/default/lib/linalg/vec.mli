(** BLAS level-1 operations on plain [float array] vectors. *)

val dot : float array -> float array -> float
val nrm2 : float array -> float
val scale : float -> float array -> float array
val scale_inplace : float -> float array -> unit

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] computes [y <- a*x + y] in place. *)

val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val mean : float array -> float
val normalize : float array -> float array
(** [x / ||x||]; raises [Invalid_argument] on the zero vector. *)
