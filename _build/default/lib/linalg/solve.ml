let cholesky_factor a =
  let n, n2 = Mat.dims a in
  if n <> n2 then invalid_arg "Solve.cholesky_factor: not square";
  let l = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Mat.get l i k *. Mat.get l j k)
      done;
      if i = j then begin
        if !acc <= 0. then failwith "Solve.cholesky: not positive definite";
        Mat.set l i i (sqrt !acc)
      end
      else Mat.set l i j (!acc /. Mat.get l j j)
    done
  done;
  l

let cholesky a b =
  let n = Array.length b in
  let l = cholesky_factor a in
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Mat.get l i k *. y.(k))
    done;
    y.(i) <- !acc /. Mat.get l i i
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !acc /. Mat.get l i i
  done;
  x
