(** Truncated singular value decomposition via Lanczos (Query 4).

    [M = U S V{^T}]; the top singular values carry the signal in noisy
    microarray data, so only the leading [k] triples are computed. *)

type t = {
  u : Mat.t; (** [m x k] left singular vectors *)
  s : float array; (** [k] singular values, descending *)
  vt : Mat.t; (** [k x n] right singular vectors, transposed *)
}

val top_k : ?rng:Gb_util.Prng.t -> Mat.t -> int -> t
(** [top_k m k] runs Lanczos on the smaller of [M{^T}M] / [M M{^T}]
    (applied implicitly) and recovers the other side's vectors through
    [M]. [k] is clamped to [min rows cols]. *)

val reconstruct : t -> Mat.t
(** [U S V{^T}] — the rank-[k] approximation. *)

val reconstruction_error : Mat.t -> t -> float
(** Frobenius norm of [M - U S V{^T}]. *)
