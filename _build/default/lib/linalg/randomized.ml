let default_rng () = Gb_util.Prng.create 0x4A1C0L

(* Halko-Martinsson-Tropp: Y = (M M^T)^q M Omega spans the dominant range
   of M; QR-orthonormalize it, project, and decompose the small matrix. *)
let svd ?rng ?(oversample = 8) ?(power_iterations = 2) m k =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let rows, cols = Mat.dims m in
  if rows = 0 || cols = 0 then invalid_arg "Randomized.svd: empty matrix";
  let k = max 1 (min k (min rows cols)) in
  let sketch = min (min rows cols) (k + oversample) in
  let omega = Mat.random rng cols sketch in
  let y = ref (Blas.gemm m omega) in
  for _ = 1 to power_iterations do
    (* Re-orthonormalize between multiplications for numerical stability. *)
    let q = Qr.q (Qr.factorize !y) in
    y := Blas.gemm m (Blas.atb m q)
  done;
  let q = Qr.q (Qr.factorize !y) in
  (* B = Q^T M is sketch x cols; its exact SVD gives the approximation. *)
  let b = Blas.atb q m in
  let small = Svd.top_k ~rng b k in
  { Svd.u = Blas.gemm q small.Svd.u; s = small.Svd.s; vt = small.Svd.vt }

let covariance_sample ?rng ~rows m =
  let rng = match rng with Some r -> r | None -> default_rng () in
  let total, _ = Mat.dims m in
  if rows >= total then Covariance.matrix m
  else begin
    let rows = max 2 rows in
    let idx = Gb_util.Prng.sample rng rows total in
    Array.sort compare idx;
    Covariance.matrix (Mat.sub_rows m idx)
  end
