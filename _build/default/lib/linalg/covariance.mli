(** Covariance between matrix columns (benchmark Query 2).

    For a samples-by-genes matrix this yields the genes-by-genes covariance
    the biologists use to find functionally related genes. *)

val matrix : Mat.t -> Mat.t
(** [matrix m] is the sample covariance of the columns of [m]: center each
    column, then [(1/(rows-1)) M{^T}M] via the blocked kernel. Requires at
    least two rows. *)

val matrix_naive : Mat.t -> Mat.t
(** Same result through the untuned triple loop (the no-BLAS engines). *)

val pairs_above : Mat.t -> float -> (int * int * float) list
(** [pairs_above c t] lists the strictly-upper-triangle pairs [(i, j, cov)]
    with [|cov| >= t], descending by absolute covariance. *)

val top_fraction : Mat.t -> float -> (int * int * float) list
(** [top_fraction c q] keeps the top fraction [q] (e.g. [0.1] for the
    paper's "top 10%") of upper-triangle pairs by absolute covariance. *)
