(** Lanczos iteration for the largest eigenpairs of a symmetric positive
    semidefinite operator (the algorithm the benchmark prescribes for
    Query 4).

    The operator is supplied as a function so callers can apply [M{^T}M]
    implicitly without forming it. Full reorthogonalization is used: the
    benchmark asks for 50 accurate extremal eigenvalues and plain Lanczos
    loses orthogonality long before that. *)

type result = {
  eigenvalues : float array; (** descending, length [k] *)
  eigenvectors : Mat.t; (** [n x k], column [i] pairs with value [i] *)
  iterations : int;
}

val symmetric :
  ?rng:Gb_util.Prng.t ->
  ?max_iter:int ->
  ?tol:float ->
  n:int ->
  k:int ->
  (float array -> float array) ->
  result
(** [symmetric ~n ~k apply] finds the [k] largest eigenvalues (and
    eigenvectors) of the symmetric PSD operator [apply] on dimension [n].
    [k] must satisfy [0 < k <= n]. *)

val top_eigen : ?rng:Gb_util.Prng.t -> Mat.t -> int -> result
(** [top_eigen a k] on an explicit symmetric matrix. *)
