let check2 name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: length mismatch" name)

let dot x y =
  check2 "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc :=
      !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

let nrm2 x = sqrt (dot x x)

let scale a x = Array.map (fun v -> a *. v) x

let scale_inplace a x =
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set x i (a *. Array.unsafe_get x i)
  done

let axpy a x y =
  check2 "axpy" x y;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i
      ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let add x y =
  check2 "add" x y;
  Array.mapi (fun i v -> v +. y.(i)) x

let sub x y =
  check2 "sub" x y;
  Array.mapi (fun i v -> v -. y.(i)) x

let mean x =
  if Array.length x = 0 then 0.
  else Array.fold_left ( +. ) 0. x /. float_of_int (Array.length x)

let normalize x =
  let n = nrm2 x in
  if n = 0. then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) x
