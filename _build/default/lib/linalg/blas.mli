(** BLAS level-2/3 kernels.

    [gemm] is the cache-blocked production kernel used by the
    BLAS/LAPACK-class engines (R, SciDB, MADlib-native, pbdR). [gemm_naive]
    is a deliberately untuned triple loop: it is the kernel behind the
    Mahout-style engine, which the paper notes "does not benefit from a
    sophisticated linear algebra package". *)

val gemv : Mat.t -> float array -> float array
(** [gemv a x] is [A x]. *)

val gemv_t : Mat.t -> float array -> float array
(** [gemv_t a x] is [A{^T} x], computed without materializing the
    transpose. *)

val gemm : Mat.t -> Mat.t -> Mat.t
(** [gemm a b] is [A B], blocked for cache reuse. *)

val gemm_naive : Mat.t -> Mat.t -> Mat.t
(** Unblocked i-j-k matrix multiply with bounds checks. *)

val atb : Mat.t -> Mat.t -> Mat.t
(** [atb a b] is [A{^T} B] without materializing [A{^T}]. *)

val ata : Mat.t -> Mat.t
(** [ata a] is the symmetric product [A{^T} A]. *)

val aat : Mat.t -> Mat.t
(** [aat a] is [A A{^T}]. *)
