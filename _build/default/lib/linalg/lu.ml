type t = {
  lu : Mat.t; (* L below the diagonal (unit diag implicit), U on and above *)
  perm : int array; (* row permutation *)
  sign : float; (* determinant sign of the permutation *)
  n : int;
}

let factorize src =
  let n, m = Mat.dims src in
  if n <> m then invalid_arg "Lu.factorize: not square";
  let lu = Mat.copy src in
  let perm = Array.init n Fun.id in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: largest magnitude in column k at or below row k. *)
    let pivot = ref k and best = ref (Float.abs (Mat.unsafe_get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.unsafe_get lu i k) in
      if v > !best then begin
        pivot := i;
        best := v
      end
    done;
    if !best < 1e-300 then failwith "Lu: singular matrix";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = Mat.unsafe_get lu k j in
        Mat.unsafe_set lu k j (Mat.unsafe_get lu !pivot j);
        Mat.unsafe_set lu !pivot j tmp
      done;
      let tmp = perm.(k) in
      perm.(k) <- perm.(!pivot);
      perm.(!pivot) <- tmp;
      sign := -. !sign
    end;
    let pkk = Mat.unsafe_get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.unsafe_get lu i k /. pkk in
      Mat.unsafe_set lu i k factor;
      for j = k + 1 to n - 1 do
        Mat.unsafe_set lu i j
          (Mat.unsafe_get lu i j -. (factor *. Mat.unsafe_get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign; n }

let solve t b =
  if Array.length b <> t.n then invalid_arg "Lu.solve: length";
  let y = Array.init t.n (fun i -> b.(t.perm.(i))) in
  (* Forward substitution with unit lower triangle. *)
  for i = 1 to t.n - 1 do
    let acc = ref y.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.unsafe_get t.lu i j *. y.(j))
    done;
    y.(i) <- !acc
  done;
  (* Back substitution with U. *)
  for i = t.n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to t.n - 1 do
      acc := !acc -. (Mat.unsafe_get t.lu i j *. y.(j))
    done;
    y.(i) <- !acc /. Mat.unsafe_get t.lu i i
  done;
  y

let solve_many t b =
  let rows, cols = Mat.dims b in
  if rows <> t.n then invalid_arg "Lu.solve_many: dimensions";
  let out = Mat.create rows cols in
  for c = 0 to cols - 1 do
    let x = solve t (Mat.col b c) in
    for r = 0 to rows - 1 do
      Mat.unsafe_set out r c x.(r)
    done
  done;
  out

let determinant t =
  let acc = ref t.sign in
  for i = 0 to t.n - 1 do
    acc := !acc *. Mat.unsafe_get t.lu i i
  done;
  !acc

let inverse t = solve_many t (Mat.identity t.n)

let solve_system a b = solve (factorize a) b
