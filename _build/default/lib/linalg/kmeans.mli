(** Lloyd's k-means with k-means++ seeding. *)

type result = {
  assignments : int array; (** cluster id per input row *)
  centroids : Mat.t; (** [k x dims] *)
  inertia : float; (** sum of squared distances to assigned centroids *)
  iterations : int;
}

val fit :
  ?rng:Gb_util.Prng.t ->
  ?max_iter:int ->
  ?restarts:int ->
  k:int ->
  Mat.t ->
  result
(** Cluster the rows of the matrix. [restarts] (default 4) independent
    k-means++ initializations, keeping the lowest-inertia fit. [k] must be
    in [\[1, rows\]]. *)
