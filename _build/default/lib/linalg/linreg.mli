(** Ordinary least-squares linear regression (benchmark Query 1). *)

type model = {
  intercept : float;
  coefficients : float array; (** one per predictor column *)
  r_squared : float;
  residual_norm : float;
}

val fit : Mat.t -> float array -> model
(** [fit x y] regresses [y] on the columns of [x] (an intercept column is
    added internally) via Householder QR. Requires
    [rows x = length y > cols x]. *)

val fit_normal_equations : Mat.t -> float array -> model
(** Same model solved through the normal equations [X{^T}X b = X{^T}y]
    (Cholesky). This is the path used by the streaming MADlib-style engine
    and the MapReduce engine, which cannot hold Householder state. *)

val predict : model -> float array -> float
(** [predict m row] applies the model to one observation. *)
