(** Direct solvers for small symmetric systems. *)

val cholesky : Mat.t -> float array -> float array
(** [cholesky a b] solves [A x = b] for symmetric positive-definite [A].
    Raises [Failure] if [A] is not positive definite. *)

val cholesky_factor : Mat.t -> Mat.t
(** Lower-triangular [L] with [L L{^T} = A]. *)
