(** LU factorization with partial pivoting: general linear solves,
    determinants and inverses for the square systems that fall outside the
    symmetric-positive-definite fast path. *)

type t

val factorize : Mat.t -> t
(** Raises [Failure "Lu: singular matrix"] when a pivot vanishes. *)

val solve : t -> float array -> float array
val solve_many : t -> Mat.t -> Mat.t
(** Solve for every column of the right-hand-side matrix. *)

val determinant : t -> float
val inverse : t -> Mat.t

val solve_system : Mat.t -> float array -> float array
(** One-shot [factorize] + [solve]. *)
