(** Dense row-major float64 matrices backed by [Bigarray].

    This is the array substrate for every analytics kernel in the benchmark
    (the container has no numerical libraries, so BLAS/LAPACK-style code is
    built here from scratch). *)

type t = {
  rows : int;
  cols : int;
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

val create : int -> int -> t
(** Zero-filled [rows x cols] matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val unsafe_get : t -> int -> int -> float
val unsafe_set : t -> int -> int -> float -> unit
val copy : t -> t
val fill : t -> float -> unit
val identity : int -> t
val of_arrays : float array array -> t
val to_arrays : t -> float array array
val row : t -> int -> float array
val col : t -> int -> float array
val set_row : t -> int -> float array -> unit
val transpose : t -> t

val sub_rows : t -> int array -> t
(** [sub_rows m idx] selects rows [idx] in order. *)

val sub_cols : t -> int array -> t

val map : (float -> float) -> t -> t
val iteri : (int -> int -> float -> unit) -> t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val col_means : t -> float array
val center_cols : t -> t
(** Subtract the column mean from every column (returns a new matrix). *)

val frobenius : t -> float
val max_abs_diff : t -> t -> float
val equal : ?eps:float -> t -> t -> bool

val random : Gb_util.Prng.t -> int -> int -> t
(** Entries i.i.d. standard normal. *)

val pp : Format.formatter -> t -> unit
