(** Dense symmetric eigendecomposition (cyclic Jacobi).

    O(n³) per sweep and only suitable for small/medium matrices, but
    unconditionally accurate — the reference the iterative solvers
    (Lanczos, randomized sketching) are validated against. *)

val symmetric : ?max_sweeps:int -> ?tol:float -> Mat.t -> float array * Mat.t
(** [symmetric a] returns [(values, vectors)] with eigenvalues descending
    and the matching unit eigenvectors as columns. [a] must be square and
    symmetric (checked to a loose tolerance). Raises [Failure] if Jacobi
    fails to converge within [max_sweeps] (default 50). *)

val eigenvalues : ?max_sweeps:int -> ?tol:float -> Mat.t -> float array
