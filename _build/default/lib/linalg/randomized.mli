(** Randomized (sketch-based) approximate algorithms.

    The paper's discussion (§6.3) argues that "for many matrix
    factorization and statistical optimization problems, there exist
    efficient approximate algorithms that parallelize well … approximation
    algorithms may have allowed us to scale to the 60K x 70K dataset that
    none of the systems we tested could process". This module implements
    that suggestion: Halko–Martinsson–Tropp randomized range finding for
    truncated SVD, and subsampled covariance. *)

val svd :
  ?rng:Gb_util.Prng.t ->
  ?oversample:int ->
  ?power_iterations:int ->
  Mat.t ->
  int ->
  Svd.t
(** [svd m k] computes an approximate rank-[k] SVD by projecting [m] onto
    a random [k + oversample]-dimensional range (default oversampling 8)
    refined by [power_iterations] (default 2) subspace iterations, then
    decomposing the small projected matrix. Cost is O(mnk) instead of the
    Lanczos iteration count, with far fewer passes over [m]. *)

val covariance_sample :
  ?rng:Gb_util.Prng.t -> rows:int -> Mat.t -> Mat.t
(** [covariance_sample ~rows m] estimates the column covariance from a
    uniform sample of [rows] rows (all rows if [rows >= Mat.rows]). *)
