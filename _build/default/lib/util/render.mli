(** ASCII rendering of benchmark tables and figure series. *)

val table : headers:string list -> rows:string list list -> string
(** Fixed-width bordered table; column widths fit the widest cell. *)

val seconds : float -> string
(** Human-friendly seconds, e.g. ["0.034"], ["12.5"], or ["INF"] for
    infinity. *)

val series_chart :
  title:string ->
  x_labels:string list ->
  series:(string * float option list) list ->
  string
(** A figure rendered as a table: one row per series, one column per x tick;
    [None] cells (unsupported/failed) print as ["-"], [infinity] as ["INF"]. *)
