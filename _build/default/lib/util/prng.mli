(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the benchmark (data generators, masking in
    biclustering, sampling) draws from an explicit [t] so that all runs are
    reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] builds an independent generator. *)

val copy : t -> t
(** [copy g] is a generator with the same state as [g], evolving
    independently afterwards. *)

val split : t -> t
(** [split g] advances [g] and returns a new statistically independent
    generator, as in SplitMix. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val normal : t -> float
(** Standard normal deviate (Box–Muller, cached pair). *)

val gaussian : t -> mu:float -> sigma:float -> float

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> int -> int array
(** [sample g k n] draws [k] distinct indices from [\[0, n)] without
    replacement, in random order. Requires [k <= n]. *)
