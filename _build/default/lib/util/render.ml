let widths headers rows =
  let ncols = List.length headers in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row
  in
  feed headers;
  List.iter feed rows;
  w

let hline w =
  let b = Buffer.create 80 in
  Buffer.add_char b '+';
  Array.iter
    (fun n ->
      Buffer.add_string b (String.make (n + 2) '-');
      Buffer.add_char b '+')
    w;
  Buffer.contents b

let render_row w row =
  let b = Buffer.create 80 in
  Buffer.add_char b '|';
  List.iteri
    (fun i cell ->
      Buffer.add_char b ' ';
      Buffer.add_string b cell;
      Buffer.add_string b (String.make (w.(i) - String.length cell) ' ');
      Buffer.add_string b " |")
    row;
  Buffer.contents b

let table ~headers ~rows =
  let w = widths headers rows in
  let line = hline w in
  let b = Buffer.create 1024 in
  Buffer.add_string b line;
  Buffer.add_char b '\n';
  Buffer.add_string b (render_row w headers);
  Buffer.add_char b '\n';
  Buffer.add_string b line;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b (render_row w r);
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b line;
  Buffer.contents b

let seconds s =
  if s = infinity then "INF"
  else if s >= 100. then Printf.sprintf "%.0f" s
  else if s >= 10. then Printf.sprintf "%.1f" s
  else if s >= 1. then Printf.sprintf "%.2f" s
  else Printf.sprintf "%.3f" s

let series_chart ~title ~x_labels ~series =
  let headers = "System" :: x_labels in
  let rows =
    List.map
      (fun (name, points) ->
        name
        :: List.map (function None -> "-" | Some v -> seconds v) points)
      series
  in
  Printf.sprintf "%s\n%s" title (table ~headers ~rows)
