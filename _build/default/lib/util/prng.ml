type t = { mutable state : int64; mutable cached : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; cached = None }

let copy g = { state = g.state; cached = g.cached }

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next_int64 g in
  create (mix seed)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to OCaml's non-negative int range (Int64.to_int keeps the low 63
     bits, which can come out negative). *)
  let r = Int64.to_int (next_int64 g) land max_int in
  r mod bound

let uniform g =
  (* 53 random bits into [0,1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. 0x1p-53

let float g bound = uniform g *. bound

let normal g =
  match g.cached with
  | Some v ->
    g.cached <- None;
    v
  | None ->
    let rec draw () =
      let u = (2. *. uniform g) -. 1. in
      let v = (2. *. uniform g) -. 1. in
      let s = (u *. u) +. (v *. v) in
      if s >= 1. || s = 0. then draw ()
      else
        let m = sqrt (-2. *. log s /. s) in
        (u *. m, v *. m)
    in
    let x, y = draw () in
    g.cached <- Some y;
    x

let gaussian g ~mu ~sigma = mu +. (sigma *. normal g)

let bool g = Int64.logand (next_int64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample g k n =
  if k > n then invalid_arg "Prng.sample: k > n";
  (* Floyd's algorithm, then shuffle for random order. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let t = int g (j + 1) in
    if Hashtbl.mem chosen t then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen t ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun idx () ->
      out.(!i) <- idx;
      incr i)
    chosen;
  shuffle g out;
  out
