(** Binary heaps and heap-based top-k selection (covariance's "top 10% of
    pairs" without sorting every pair). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Min-heap with respect to [cmp]. *)

val size : 'a t -> int
val push : 'a t -> 'a -> unit
val peek : 'a t -> 'a option
val pop : 'a t -> 'a option
val to_sorted_list : 'a t -> 'a list
(** Ascending; consumes the heap. *)

val top_k : cmp:('a -> 'a -> int) -> int -> 'a Seq.t -> 'a list
(** The [k] largest elements of the sequence under [cmp], descending;
    O(n log k) time, O(k) space. *)
