(** Sorting helpers used across the engines. *)

val argsort : ?descending:bool -> float array -> int array
(** [argsort a] is the permutation of indices that sorts [a] ascending
    (stable on ties). *)

val argsort_by : ('a -> 'a -> int) -> 'a array -> int array
(** Index permutation sorting by a comparison function (stable). *)

val top_k : int -> float array -> int array
(** [top_k k a] are the indices of the [k] largest values of [a], in
    descending value order. [k] is clamped to [Array.length a]. *)

val quantile_threshold : float array -> float -> float
(** [quantile_threshold a q] with [q] in [\[0,1\]] is the value [v] such that
    a fraction [q] of the entries are [>= v]; used for "top 10%" cutoffs.
    [a] must be non-empty. *)
