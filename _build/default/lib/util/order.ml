let argsort ?(descending = false) a =
  let n = Array.length a in
  let idx = Array.init n Fun.id in
  let cmp i j =
    let c = Float.compare a.(i) a.(j) in
    let c = if descending then -c else c in
    if c <> 0 then c else Int.compare i j
  in
  Array.sort cmp idx;
  idx

let argsort_by cmp a =
  let n = Array.length a in
  let idx = Array.init n Fun.id in
  let c i j =
    let r = cmp a.(i) a.(j) in
    if r <> 0 then r else Int.compare i j
  in
  Array.sort c idx;
  idx

let top_k k a =
  let k = min k (Array.length a) in
  let idx = argsort ~descending:true a in
  Array.sub idx 0 k

let quantile_threshold a q =
  if Array.length a = 0 then invalid_arg "quantile_threshold: empty";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let count = int_of_float (ceil (q *. float_of_int n)) in
  let count = max 1 (min n count) in
  sorted.(n - count)
