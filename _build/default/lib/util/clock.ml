module Stopwatch = struct
  type t = float

  let now () = Unix.gettimeofday ()
  let start () = now ()
  let elapsed t = now () -. t

  let time f =
    let t0 = start () in
    let r = f () in
    (r, elapsed t0)
end

module Sim = struct
  type t = { mutable now : float }

  let create () = { now = 0. }
  let now c = c.now

  let advance c dt =
    assert (dt >= 0.);
    c.now <- c.now +. dt

  let run_measured c f =
    let r, dt = Stopwatch.time f in
    advance c dt;
    r

  let run_scaled c ~speedup f =
    assert (speedup > 0.);
    let r, dt = Stopwatch.time f in
    advance c (dt /. speedup);
    r
end
