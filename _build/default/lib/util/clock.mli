(** Wall-clock stopwatches and simulated clocks.

    Single-node engines are timed with real wall-clock stopwatches. The
    cluster and coprocessor models combine genuinely measured compute time
    with modelled communication/transfer time on a {!Sim} clock; reported
    results are simulated seconds. *)

module Stopwatch : sig
  type t

  val start : unit -> t
  val elapsed : t -> float
  (** Seconds since [start]. *)

  val time : (unit -> 'a) -> 'a * float
  (** [time f] runs [f] and returns its result with the elapsed seconds. *)
end

module Sim : sig
  type t

  val create : unit -> t

  val now : t -> float
  (** Current simulated time, seconds. *)

  val advance : t -> float -> unit
  (** [advance c dt] moves the clock forward by [dt] seconds ([dt >= 0]). *)

  val run_measured : t -> (unit -> 'a) -> 'a
  (** [run_measured c f] executes [f], advancing [c] by the real elapsed
      time of [f]. *)

  val run_scaled : t -> speedup:float -> (unit -> 'a) -> 'a
  (** Like {!run_measured} but the measured time is divided by [speedup]
      before being added — used to model faster hardware executing the same
      kernel. *)
end
