lib/util/clock.mli:
