lib/util/order.ml: Array Float Fun Int
