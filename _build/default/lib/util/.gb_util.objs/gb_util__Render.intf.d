lib/util/render.mli:
