lib/util/deadline.ml: Unix
