lib/util/render.ml: Array Buffer List Printf String
