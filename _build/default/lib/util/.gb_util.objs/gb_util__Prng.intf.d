lib/util/prng.mli:
