lib/util/order.mli:
