lib/util/heap.mli: Seq
