lib/util/deadline.mli:
