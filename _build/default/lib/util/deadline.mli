(** Cooperative timeouts — the benchmark's "cut off all computation after
    two hours" rule, scaled down. Long-running phases call [check]
    periodically; the harness treats {!Timeout} (like memory-allocation
    failure) as an "infinite" result. *)

exception Timeout

type t

val start : seconds:float -> t
(** Wall-clock deadline [seconds] from now. *)

val unlimited : unit -> t
val check : t -> unit
(** Raises {!Timeout} once the deadline has passed. *)

val expired : t -> bool
val remaining : t -> float
