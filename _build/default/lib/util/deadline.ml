exception Timeout

type t = float (* absolute wall time *)

let start ~seconds = Unix.gettimeofday () +. seconds
let unlimited () = infinity
let expired t = Unix.gettimeofday () > t
let check t = if expired t then raise Timeout
let remaining t = t -. Unix.gettimeofday ()
