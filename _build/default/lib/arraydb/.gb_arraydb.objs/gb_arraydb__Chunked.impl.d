lib/arraydb/chunked.ml: Array Gb_linalg
