lib/arraydb/sparse.mli: Gb_linalg
