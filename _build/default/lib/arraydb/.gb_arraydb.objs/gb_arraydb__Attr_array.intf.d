lib/arraydb/attr_array.mli:
