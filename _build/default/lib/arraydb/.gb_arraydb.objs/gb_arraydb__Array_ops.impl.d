lib/arraydb/array_ops.ml: Array Chunked
