lib/arraydb/sparse.ml: Array Float Gb_linalg Hashtbl List
