lib/arraydb/chunked.mli: Gb_linalg
