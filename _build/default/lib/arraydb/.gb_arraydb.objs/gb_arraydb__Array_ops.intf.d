lib/arraydb/array_ops.mli: Chunked
