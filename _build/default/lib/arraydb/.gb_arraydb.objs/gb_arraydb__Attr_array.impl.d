lib/arraydb/attr_array.ml: Array List
