module Mat = Gb_linalg.Mat

let chunk_dim = 64

(* Tiles are dense [chunk_dim x chunk_dim] float arrays; edge tiles are
   allocated full-size and padded with zeros, which keeps indexing
   branch-free. *)
type t = {
  rows : int;
  cols : int;
  grid_rows : int;
  grid_cols : int;
  tiles : float array array; (* [grid_rows * grid_cols] tiles *)
}

let tiles_for n = (n + chunk_dim - 1) / chunk_dim

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Chunked.create";
  let grid_rows = max 1 (tiles_for rows) and grid_cols = max 1 (tiles_for cols) in
  {
    rows;
    cols;
    grid_rows;
    grid_cols;
    tiles =
      Array.init (grid_rows * grid_cols) (fun _ ->
          Array.make (chunk_dim * chunk_dim) 0.);
  }

let dims t = (t.rows, t.cols)

let tile t i j = t.tiles.((i / chunk_dim * t.grid_cols) + (j / chunk_dim))

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Chunked.get: out of bounds";
  (tile t i j).((i mod chunk_dim * chunk_dim) + (j mod chunk_dim))

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Chunked.set: out of bounds";
  (tile t i j).((i mod chunk_dim * chunk_dim) + (j mod chunk_dim)) <- v

let unsafe_get t i j =
  Array.unsafe_get (tile t i j) ((i mod chunk_dim * chunk_dim) + (j mod chunk_dim))

let of_matrix m =
  let rows, cols = Mat.dims m in
  let t = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      (tile t i j).((i mod chunk_dim * chunk_dim) + (j mod chunk_dim)) <-
        Mat.unsafe_get m i j
    done
  done;
  t

let to_matrix t =
  let m = Mat.create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      Mat.unsafe_set m i j (unsafe_get t i j)
    done
  done;
  m

let select_rows t idx =
  let out = create (Array.length idx) t.cols in
  Array.iteri
    (fun k i ->
      if i < 0 || i >= t.rows then invalid_arg "Chunked.select_rows: index";
      for j = 0 to t.cols - 1 do
        (tile out k j).((k mod chunk_dim * chunk_dim) + (j mod chunk_dim)) <-
          unsafe_get t i j
      done)
    idx;
  out

let select_cols t idx =
  let out = create t.rows (Array.length idx) in
  Array.iteri
    (fun k j ->
      if j < 0 || j >= t.cols then invalid_arg "Chunked.select_cols: index";
      for i = 0 to t.rows - 1 do
        (tile out i k).((i mod chunk_dim * chunk_dim) + (k mod chunk_dim)) <-
          unsafe_get t i j
      done)
    idx;
  out

let map f t =
  let out = create t.rows t.cols in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      (tile out i j).((i mod chunk_dim * chunk_dim) + (j mod chunk_dim)) <-
        f (unsafe_get t i j)
    done
  done;
  out

let iter_chunks t f =
  for gr = 0 to t.grid_rows - 1 do
    for gc = 0 to t.grid_cols - 1 do
      let row0 = gr * chunk_dim and col0 = gc * chunk_dim in
      if row0 < t.rows && col0 < t.cols then begin
        let h = min chunk_dim (t.rows - row0) in
        let w = min chunk_dim (t.cols - col0) in
        let tile = t.tiles.((gr * t.grid_cols) + gc) in
        let m =
          Mat.init h w (fun i j -> tile.((i * chunk_dim) + j))
        in
        f ~row0 ~col0 m
      end
    done
  done

let chunk_count t = t.grid_rows * t.grid_cols

let byte_size t = 8 * chunk_dim * chunk_dim * chunk_count t
