type agg = Sum | Mean | Min | Max

type acc = { mutable n : int; mutable sum : float; mutable lo : float; mutable hi : float }

let fresh () = { n = 0; sum = 0.; lo = infinity; hi = neg_infinity }

let feed a v =
  a.n <- a.n + 1;
  a.sum <- a.sum +. v;
  if v < a.lo then a.lo <- v;
  if v > a.hi then a.hi <- v

let finish agg a =
  match agg with
  | Sum -> a.sum
  | Mean -> if a.n = 0 then 0. else a.sum /. float_of_int a.n
  | Min -> a.lo
  | Max -> a.hi

let between t ~r0 ~c0 ~r1 ~c1 =
  let rows, cols = Chunked.dims t in
  if r0 < 0 || c0 < 0 || r1 >= rows || c1 >= cols || r0 > r1 || c0 > c1 then
    invalid_arg "Array_ops.between: bounds";
  let out = Chunked.create (r1 - r0 + 1) (c1 - c0 + 1) in
  for i = r0 to r1 do
    for j = c0 to c1 do
      Chunked.set out (i - r0) (j - c0) (Chunked.get t i j)
    done
  done;
  out

let aggregate_rows t agg =
  let rows, cols = Chunked.dims t in
  let accs = Array.init cols (fun _ -> fresh ()) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      feed accs.(j) (Chunked.get t i j)
    done
  done;
  Array.map (finish agg) accs

let aggregate_cols t agg =
  let rows, cols = Chunked.dims t in
  let accs = Array.init rows (fun _ -> fresh ()) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      feed accs.(i) (Chunked.get t i j)
    done
  done;
  Array.map (finish agg) accs

let window t ~rows ~cols agg =
  if rows < 0 || cols < 0 then invalid_arg "Array_ops.window: extents";
  let nr, nc = Chunked.dims t in
  let out = Chunked.create nr nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      let a = fresh () in
      for wi = max 0 (i - rows) to min (nr - 1) (i + rows) do
        for wj = max 0 (j - cols) to min (nc - 1) (j + cols) do
          feed a (Chunked.get t wi wj)
        done
      done;
      Chunked.set out i j (finish agg a)
    done
  done;
  out

let regrid t ~row_factor ~col_factor agg =
  if row_factor <= 0 || col_factor <= 0 then
    invalid_arg "Array_ops.regrid: factors";
  let nr, nc = Chunked.dims t in
  let out_r = (nr + row_factor - 1) / row_factor in
  let out_c = (nc + col_factor - 1) / col_factor in
  let out = Chunked.create out_r out_c in
  for oi = 0 to out_r - 1 do
    for oj = 0 to out_c - 1 do
      let a = fresh () in
      for i = oi * row_factor to min (nr - 1) (((oi + 1) * row_factor) - 1) do
        for j = oj * col_factor to min (nc - 1) (((oj + 1) * col_factor) - 1) do
          feed a (Chunked.get t i j)
        done
      done;
      Chunked.set out oi oj (finish agg a)
    done
  done;
  out

let map2 f a b =
  if Chunked.dims a <> Chunked.dims b then invalid_arg "Array_ops.map2: dims";
  let nr, nc = Chunked.dims a in
  let out = Chunked.create nr nc in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      Chunked.set out i j (f (Chunked.get a i j) (Chunked.get b i j))
    done
  done;
  out
