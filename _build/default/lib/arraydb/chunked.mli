(** SciDB-style chunked 2-D arrays.

    The array is tiled into fixed-size rectangular chunks, each a dense
    float tile. Dimension selections repack surviving rows/columns into a
    new chunked array without any table→array pivot — the structural reason
    the paper's array DBMS wins on this benchmark. *)

type t

val chunk_dim : int
(** Tile side length. *)

val create : int -> int -> t
val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val of_matrix : Gb_linalg.Mat.t -> t
val to_matrix : t -> Gb_linalg.Mat.t
(** Dense bridge used when handing a chunked array to an analytics
    kernel; a straight tile-by-tile copy (no text round-trip). *)

val select_rows : t -> int array -> t
(** Repack the given rows (in order) into a fresh chunked array. *)

val select_cols : t -> int array -> t

val map : (float -> float) -> t -> t

val iter_chunks : t -> (row0:int -> col0:int -> Gb_linalg.Mat.t -> unit) -> unit
(** Visit each tile as a dense matrix with its global origin. *)

val chunk_count : t -> int

val byte_size : t -> int
(** Total payload bytes (8 per cell, including tile padding). *)
