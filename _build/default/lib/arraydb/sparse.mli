(** Compressed sparse row (CSR) 2-D arrays.

    The benchmark's gene-ontology array ("belongs_to[gene_id, go_id]") is
    almost entirely zeros; an array DBMS stores such arrays sparsely. CSR
    keeps one row-pointer array plus parallel column/value arrays, giving
    O(nnz) storage and row-major iteration. *)

type t

val of_triples : rows:int -> cols:int -> (int * int * float) list -> t
(** Duplicate (row, col) entries are summed. *)

val of_dense : ?threshold:float -> Gb_linalg.Mat.t -> t
(** Entries with |value| <= threshold (default 0) are dropped. *)

val to_dense : t -> Gb_linalg.Mat.t
val dims : t -> int * int
val nnz : t -> int
val get : t -> int -> int -> float
(** Zero when absent; binary search within the row. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
val iter : t -> (int -> int -> float -> unit) -> unit

val row_nnz : t -> int -> int
val spmv : t -> float array -> float array
(** Sparse matrix-vector product. *)

val spmv_t : t -> float array -> float array
(** Transposed product [A{^T} x] without materializing the transpose. *)

val transpose : t -> t

val density : t -> float
(** nnz / (rows * cols). *)
