type t = { len : int; cols : (string * float array) list }

let create ~names ~length =
  { len = length; cols = List.map (fun n -> (n, Array.make length 0.)) names }

let of_columns cols =
  match cols with
  | [] -> { len = 0; cols = [] }
  | (_, first) :: _ ->
    let len = Array.length first in
    List.iter
      (fun (n, c) ->
        if Array.length c <> len then
          invalid_arg ("Attr_array.of_columns: ragged column " ^ n))
      cols;
    { len; cols = List.map (fun (n, c) -> (n, Array.copy c)) cols }

let length t = t.len
let attributes t = List.map fst t.cols

let find t name =
  match List.assoc_opt name t.cols with
  | Some c -> c
  | None -> invalid_arg ("Attr_array: no attribute " ^ name)

let get t name i = (find t name).(i)
let set t name i v = (find t name).(i) <- v
let column t name = Array.copy (find t name)

let filter t pred =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    if pred i then out := i :: !out
  done;
  Array.of_list !out

let select t idx =
  {
    len = Array.length idx;
    cols = List.map (fun (n, c) -> (n, Array.map (fun i -> c.(i)) idx)) t.cols;
  }
