module Mat = Gb_linalg.Mat

type t = {
  rows : int;
  cols : int;
  row_ptr : int array; (* length rows + 1 *)
  col_idx : int array; (* length nnz, ascending within each row *)
  values : float array;
}

let dims t = (t.rows, t.cols)
let nnz t = Array.length t.col_idx
let row_nnz t i = t.row_ptr.(i + 1) - t.row_ptr.(i)
let density t =
  if t.rows = 0 || t.cols = 0 then 0.
  else float_of_int (nnz t) /. float_of_int (t.rows * t.cols)

let of_triples ~rows ~cols triples =
  if rows < 0 || cols < 0 then invalid_arg "Sparse.of_triples: dims";
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Sparse.of_triples: entry out of bounds")
    triples;
  (* Sum duplicates, then sort per row. *)
  let tbl = Hashtbl.create (List.length triples) in
  List.iter
    (fun (r, c, v) ->
      let key = (r, c) in
      Hashtbl.replace tbl key
        (v +. try Hashtbl.find tbl key with Not_found -> 0.))
    triples;
  let entries = Hashtbl.fold (fun (r, c) v acc -> (r, c, v) :: acc) tbl [] in
  let entries = List.sort compare entries in
  let n = List.length entries in
  let row_ptr = Array.make (rows + 1) 0 in
  let col_idx = Array.make n 0 in
  let values = Array.make n 0. in
  List.iteri
    (fun k (r, c, v) ->
      row_ptr.(r + 1) <- row_ptr.(r + 1) + 1;
      col_idx.(k) <- c;
      values.(k) <- v)
    entries;
  for r = 0 to rows - 1 do
    row_ptr.(r + 1) <- row_ptr.(r + 1) + row_ptr.(r)
  done;
  { rows; cols; row_ptr; col_idx; values }

let of_dense ?(threshold = 0.) m =
  let rows, cols = Mat.dims m in
  let triples = ref [] in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      let v = Mat.unsafe_get m i j in
      if Float.abs v > threshold then triples := (i, j, v) :: !triples
    done
  done;
  of_triples ~rows ~cols !triples

let to_dense t =
  let m = Mat.create t.rows t.cols in
  for r = 0 to t.rows - 1 do
    for k = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
      Mat.unsafe_set m r t.col_idx.(k) t.values.(k)
    done
  done;
  m

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: out of bounds";
  (* Binary search in the row's column indices. *)
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      found := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done

let iter t f =
  for r = 0 to t.rows - 1 do
    iter_row t r (fun c v -> f r c v)
  done

let spmv t x =
  if Array.length x <> t.cols then invalid_arg "Sparse.spmv: dimension";
  let y = Array.make t.rows 0. in
  for r = 0 to t.rows - 1 do
    let acc = ref 0. in
    for k = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(r) <- !acc
  done;
  y

let spmv_t t x =
  if Array.length x <> t.rows then invalid_arg "Sparse.spmv_t: dimension";
  let y = Array.make t.cols 0. in
  for r = 0 to t.rows - 1 do
    let xr = x.(r) in
    if xr <> 0. then
      for k = t.row_ptr.(r) to t.row_ptr.(r + 1) - 1 do
        y.(t.col_idx.(k)) <- y.(t.col_idx.(k)) +. (t.values.(k) *. xr)
      done
  done;
  y

let transpose t =
  let triples = ref [] in
  iter t (fun r c v -> triples := (c, r, v) :: !triples);
  of_triples ~rows:t.cols ~cols:t.rows !triples
