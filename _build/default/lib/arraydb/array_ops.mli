(** AQL-style array operators over chunked arrays: the operations an array
    DBMS exposes beyond plain selection — subarray, windowed aggregation,
    regridding (the paper's satellite-imagery motivating example is
    exactly a regrid), per-dimension aggregates and cell-wise
    combinators. *)

type agg = Sum | Mean | Min | Max

val between : Chunked.t -> r0:int -> c0:int -> r1:int -> c1:int -> Chunked.t
(** Inclusive rectangular subarray; bounds checked. *)

val aggregate_rows : Chunked.t -> agg -> float array
(** Collapse the row dimension: one value per column. *)

val aggregate_cols : Chunked.t -> agg -> float array

val window : Chunked.t -> rows:int -> cols:int -> agg -> Chunked.t
(** Centered moving-window aggregate with window half-extents [rows] and
    [cols] (so the window is [(2 rows + 1) x (2 cols + 1)], clipped at the
    borders) — SciDB's [window()]. *)

val regrid : Chunked.t -> row_factor:int -> col_factor:int -> agg -> Chunked.t
(** Partition the array into [row_factor x col_factor] tiles and collapse
    each to one cell — SciDB's [regrid()], the coordinate-system
    coarsening of the paper's earth-science example. Edge tiles may be
    partial. *)

val map2 : (float -> float -> float) -> Chunked.t -> Chunked.t -> Chunked.t
(** Cell-wise combination of two same-shape arrays. *)
