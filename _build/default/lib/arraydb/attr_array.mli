(** 1-D attribute arrays along an array dimension — the array-form
    representation of patient and gene metadata
    ("(age, gender, …)[patient_id]"). *)

type t

val create : names:string list -> length:int -> t
(** All attributes initialized to 0. *)

val of_columns : (string * float array) list -> t
(** All columns must share a length. *)

val length : t -> int
val attributes : t -> string list
val get : t -> string -> int -> float
val set : t -> string -> int -> float -> unit
val column : t -> string -> float array

val filter : t -> (int -> bool) -> int array
(** Indices along the dimension satisfying the predicate (by index, so the
    predicate can inspect several attributes via [get]). *)

val select : t -> int array -> t
(** Repack the attribute vectors for the surviving indices. *)
