type t = { latency_s : float; bandwidth_bps : float }

let default = { latency_s = 50e-6; bandwidth_bps = 1e9 }

let transfer_time t ~bytes =
  t.latency_s +. (float_of_int bytes /. t.bandwidth_bps)

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let broadcast_time t ~nodes ~bytes =
  if nodes <= 1 then 0.
  else
    float_of_int (log2i nodes + 1)
    *. (t.latency_s +. (float_of_int bytes /. t.bandwidth_bps))

let allreduce_time t ~nodes ~bytes =
  if nodes <= 1 then 0.
  else begin
    let n = float_of_int nodes in
    let volume = 2. *. (n -. 1.) /. n *. float_of_int bytes in
    (2. *. (n -. 1.) *. t.latency_s) +. (volume /. t.bandwidth_bps)
  end

let shuffle_time t ~nodes ~total_bytes =
  if nodes <= 1 then 0.
  else begin
    let n = float_of_int nodes in
    (* Each node holds total/n and sends the (n-1)/n of it owned
       elsewhere; nodes transmit in parallel. *)
    let per_node_send = float_of_int total_bytes /. n *. ((n -. 1.) /. n) in
    ((n -. 1.) *. t.latency_s) +. (per_node_send /. t.bandwidth_bps)
  end
