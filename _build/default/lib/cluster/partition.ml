module Mat = Gb_linalg.Mat

let block_rows ~rows ~nodes =
  if nodes < 1 then invalid_arg "Partition.block_rows";
  let base = rows / nodes and extra = rows mod nodes in
  let out = Array.make nodes (0, 0) in
  let start = ref 0 in
  for node = 0 to nodes - 1 do
    let len = base + if node < extra then 1 else 0 in
    out.(node) <- (!start, len);
    start := !start + len
  done;
  out

let owner_of_row ~rows ~nodes i =
  let blocks = block_rows ~rows ~nodes in
  let owner = ref (nodes - 1) in
  Array.iteri
    (fun node (start, len) -> if i >= start && i < start + len then owner := node)
    blocks;
  !owner

let split_matrix m ~nodes =
  let rows, cols = Mat.dims m in
  block_rows ~rows ~nodes
  |> Array.map (fun (start, len) ->
         Mat.init len cols (fun i j -> Mat.unsafe_get m (start + i) j))

let split_vector v ~nodes =
  block_rows ~rows:(Array.length v) ~nodes
  |> Array.map (fun (start, len) -> Array.sub v start len)

let concat_rows parts =
  let cols =
    if Array.length parts = 0 then 0 else snd (Mat.dims parts.(0))
  in
  let rows = Array.fold_left (fun acc p -> acc + fst (Mat.dims p)) 0 parts in
  let out = Mat.create rows cols in
  let off = ref 0 in
  Array.iter
    (fun p ->
      let pr, pc = Mat.dims p in
      if pc <> cols then invalid_arg "Partition.concat_rows: ragged";
      for i = 0 to pr - 1 do
        for j = 0 to cols - 1 do
          Mat.unsafe_set out (!off + i) j (Mat.unsafe_get p i j)
        done
      done;
      off := !off + pr)
    parts;
  out
