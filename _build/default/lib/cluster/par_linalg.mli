(** ScaLAPACK/pbdR-style parallel kernels over block-row partitioned
    matrices. Per-node compute really runs (and is timed per node); vector
    and matrix exchanges are charged to the cluster's network model. *)

val ata : Cluster.t -> Gb_linalg.Mat.t array -> Gb_linalg.Mat.t
(** [X{^T}X] from block-row parts: local [ata] per node + allreduce. *)

val col_means : Cluster.t -> Gb_linalg.Mat.t array -> float array
(** Global column means (local sums + allreduce). *)

val covariance : Cluster.t -> Gb_linalg.Mat.t array -> Gb_linalg.Mat.t
(** Column covariance of the distributed matrix. *)

val regression :
  Cluster.t -> Gb_linalg.Mat.t array -> float array array -> float array
(** Least squares of block-partitioned [y] on block-partitioned [X]
    (normal equations assembled in parallel, solved on the head node).
    Returns intercept followed by coefficients. *)

val matvec : Cluster.t -> Gb_linalg.Mat.t array -> float array -> float array
(** Distributed [A v]: broadcast [v], local gemv, gather. *)

val matvec_t : Cluster.t -> Gb_linalg.Mat.t array -> float array -> float array
(** Distributed [A{^T} v]: scatter [v] slices, local gemv_t, allreduce. *)

val lanczos_eigs :
  Cluster.t -> k:int -> Gb_linalg.Mat.t array -> float array
(** Top-[k] eigenvalues of [A{^T}A] with the mat-vecs distributed. *)

val r_squared :
  Cluster.t -> Gb_linalg.Mat.t array -> float array array ->
  beta:float array -> float
(** Distributed coefficient of determination for a fitted model
    ([beta.(0)] is the intercept): local partial sums + allreduce. *)
