(** Interconnect cost model for the simulated cluster.

    Per-node compute is genuinely executed and timed; only message time is
    modelled, from a latency + bandwidth pair (defaults approximating the
    paper's GbE-connected 4-node testbed). *)

type t = { latency_s : float; bandwidth_bps : float }

val default : t
(** 50 µs latency, 1 GB/s per-node bandwidth. *)

val transfer_time : t -> bytes:int -> float
(** One point-to-point message. *)

val broadcast_time : t -> nodes:int -> bytes:int -> float
(** Binomial-tree broadcast. *)

val allreduce_time : t -> nodes:int -> bytes:int -> float
(** Ring allreduce: ~2(n-1)/n of the payload over the wire. *)

val shuffle_time : t -> nodes:int -> total_bytes:int -> float
(** All-to-all repartition of [total_bytes] spread evenly over nodes. *)
