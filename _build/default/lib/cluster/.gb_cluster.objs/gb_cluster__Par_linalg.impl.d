lib/cluster/par_linalg.ml: Array Cluster Gb_linalg
