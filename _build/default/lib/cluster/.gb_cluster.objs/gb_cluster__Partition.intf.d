lib/cluster/partition.mli: Gb_linalg
