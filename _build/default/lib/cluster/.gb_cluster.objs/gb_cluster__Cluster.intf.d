lib/cluster/cluster.mli: Gb_linalg Netmodel
