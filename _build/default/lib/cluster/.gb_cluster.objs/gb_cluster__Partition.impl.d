lib/cluster/partition.ml: Array Gb_linalg
