lib/cluster/cluster.ml: Array Gb_linalg Gb_util Netmodel
