lib/cluster/netmodel.ml:
