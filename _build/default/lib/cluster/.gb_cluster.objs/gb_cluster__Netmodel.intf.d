lib/cluster/netmodel.mli:
