lib/cluster/par_linalg.mli: Cluster Gb_linalg
