(** Data partitioning across simulated nodes. *)

val block_rows : rows:int -> nodes:int -> (int * int) array
(** [(start, len)] of each node's contiguous row block (lengths differ by
    at most one). *)

val owner_of_row : rows:int -> nodes:int -> int -> int

val split_matrix : Gb_linalg.Mat.t -> nodes:int -> Gb_linalg.Mat.t array
(** Block-row split. *)

val split_vector : float array -> nodes:int -> float array array

val concat_rows : Gb_linalg.Mat.t array -> Gb_linalg.Mat.t
(** Inverse of {!split_matrix}. *)
