module Sim = Gb_util.Clock.Sim
module Stopwatch = Gb_util.Clock.Stopwatch

type t = {
  nodes : int;
  net : Netmodel.t;
  clock : Sim.t;
  mutable comm_bytes : int;
  mutable comm_seconds : float;
  mutable deadline : float;
  mutable compute_speedup : float;
}

let create ?(net = Netmodel.default) ~nodes () =
  if nodes < 1 then invalid_arg "Cluster.create: nodes";
  {
    nodes;
    net;
    clock = Sim.create ();
    comm_bytes = 0;
    comm_seconds = 0.;
    deadline = infinity;
    compute_speedup = 1.;
  }

let nodes t = t.nodes
let elapsed t = Sim.now t.clock
let comm_bytes t = t.comm_bytes
let comm_seconds t = t.comm_seconds

let check t =
  if Sim.now t.clock > t.deadline then raise Gb_util.Deadline.Timeout

let set_deadline t d = t.deadline <- d

let superstep_scaled t ~speedup f =
  check t;
  let worst = ref 0. in
  let results =
    Array.init t.nodes (fun node ->
        let r, dt = Stopwatch.time (fun () -> f node) in
        if dt > !worst then worst := dt;
        r)
  in
  Sim.advance t.clock (!worst /. (speedup *. t.compute_speedup));
  results

let superstep t f = superstep_scaled t ~speedup:1. f

let set_compute_speedup t s =
  if s <= 0. then invalid_arg "Cluster.set_compute_speedup";
  t.compute_speedup <- s

let charge_comm t ~bytes ~seconds =
  t.comm_bytes <- t.comm_bytes + bytes;
  t.comm_seconds <- t.comm_seconds +. seconds;
  Sim.advance t.clock seconds;
  check t

let allreduce_sum t parts =
  if Array.length parts <> t.nodes then invalid_arg "Cluster.allreduce_sum";
  let n = Array.length parts.(0) in
  Array.iter
    (fun p ->
      if Array.length p <> n then invalid_arg "Cluster.allreduce_sum: ragged")
    parts;
  let out = Array.make n 0. in
  Array.iter (fun p -> Gb_linalg.Vec.axpy 1. p out) parts;
  let bytes = 8 * n in
  charge_comm t ~bytes
    ~seconds:(Netmodel.allreduce_time t.net ~nodes:t.nodes ~bytes);
  out

let allreduce_mat t parts =
  if Array.length parts <> t.nodes then invalid_arg "Cluster.allreduce_mat";
  let first = parts.(0) in
  let acc = Gb_linalg.Mat.copy first in
  for node = 1 to t.nodes - 1 do
    let p = parts.(node) in
    Gb_linalg.Mat.iteri
      (fun i j v ->
        Gb_linalg.Mat.unsafe_set acc i j (Gb_linalg.Mat.unsafe_get acc i j +. v))
      p
  done;
  let rows, cols = Gb_linalg.Mat.dims first in
  let bytes = 8 * rows * cols in
  charge_comm t ~bytes
    ~seconds:(Netmodel.allreduce_time t.net ~nodes:t.nodes ~bytes);
  acc

let broadcast t ~bytes =
  charge_comm t ~bytes
    ~seconds:(Netmodel.broadcast_time t.net ~nodes:t.nodes ~bytes)

let gather t ~bytes_per_node =
  let bytes = bytes_per_node * (t.nodes - 1) in
  charge_comm t ~bytes
    ~seconds:
      (if t.nodes <= 1 then 0.
       else
         float_of_int (t.nodes - 1) *. Netmodel.transfer_time t.net ~bytes:bytes_per_node)

let shuffle t ~total_bytes =
  charge_comm t ~bytes:total_bytes
    ~seconds:(Netmodel.shuffle_time t.net ~nodes:t.nodes ~total_bytes)

let advance t dt =
  Sim.advance t.clock dt;
  check t
