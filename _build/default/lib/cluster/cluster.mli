(** Simulated multi-node execution.

    Work runs as BSP-style supersteps: the per-node closures are executed
    for real (sequentially, on this machine) and individually timed; the
    simulated clock advances by the *maximum* per-node time, so load
    imbalance shows up exactly as it would on a real cluster. Communication
    primitives charge modelled wire time and account bytes. *)

type t

val create : ?net:Netmodel.t -> nodes:int -> unit -> t
val nodes : t -> int

val elapsed : t -> float
(** Simulated seconds so far. *)

val comm_bytes : t -> int
(** Total bytes charged to the interconnect. *)

val comm_seconds : t -> float

val superstep : t -> (int -> 'a) -> 'a array
(** [superstep c f] runs [f node] for each node; returns per-node results;
    advances the clock by the slowest node. *)

val superstep_scaled : t -> speedup:float -> (int -> 'a) -> 'a array
(** Like {!superstep} with each node's measured time divided by [speedup]
    (models per-node accelerator execution of the same kernel). *)

val set_compute_speedup : t -> float -> unit
(** A multiplier applied to every subsequent superstep's measured time —
    used to model per-node coprocessors without threading a factor through
    the parallel kernels. Reset it to 1.0 after the accelerated phase. *)

val allreduce_sum : t -> float array array -> float array
(** Element-wise sum of per-node vectors, charged as a ring allreduce. *)

val allreduce_mat : t -> Gb_linalg.Mat.t array -> Gb_linalg.Mat.t

val broadcast : t -> bytes:int -> unit
val gather : t -> bytes_per_node:int -> unit
val shuffle : t -> total_bytes:int -> unit
val advance : t -> float -> unit
(** Charge explicit extra simulated time (e.g. a modelled disk spill). *)

val set_deadline : t -> float -> unit
(** Raise [Gb_util.Deadline.Timeout] when simulated time passes this. *)
