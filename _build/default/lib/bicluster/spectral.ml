module Mat = Gb_linalg.Mat

type cocluster = { rows : int array; cols : int array }

let run ?rng ~k m =
  let nr, nc = Mat.dims m in
  if k < 1 || k > min nr nc then invalid_arg "Spectral.run: k";
  let rng = match rng with Some r -> r | None -> Gb_util.Prng.create 0x57ECL in
  (* Shift to non-negative edge weights (bipartite adjacency). *)
  let lo = ref infinity in
  Mat.iteri (fun _ _ v -> if v < !lo then lo := v) m;
  let shift = if !lo < 0. then -. !lo +. 1e-9 else 0. in
  let a = Mat.map (fun v -> v +. shift) m in
  (* Degree normalization: An = D1^{-1/2} A D2^{-1/2}. *)
  let row_deg = Array.make nr 0. and col_deg = Array.make nc 0. in
  Mat.iteri
    (fun i j v ->
      row_deg.(i) <- row_deg.(i) +. v;
      col_deg.(j) <- col_deg.(j) +. v)
    a;
  let r_inv = Array.map (fun d -> 1. /. sqrt (Float.max 1e-12 d)) row_deg in
  let c_inv = Array.map (fun d -> 1. /. sqrt (Float.max 1e-12 d)) col_deg in
  let an = Mat.init nr nc (fun i j -> r_inv.(i) *. Mat.unsafe_get a i j *. c_inv.(j)) in
  (* Leading l = ceil(log2 k) singular vectors after the trivial first. *)
  let l =
    let rec bits acc v = if v <= 1 then max 1 acc else bits (acc + 1) ((v + 1) / 2) in
    bits 0 k
  in
  let svd = Gb_linalg.Svd.top_k ~rng an (l + 1) in
  let avail = Array.length svd.Gb_linalg.Svd.s - 1 in
  let l = max 1 (min l avail) in
  (* Joint embedding Z: rows scaled by D1^{-1/2} U, cols by D2^{-1/2} V. *)
  let z =
    Mat.init (nr + nc) l (fun p d ->
        if p < nr then r_inv.(p) *. Mat.unsafe_get svd.Gb_linalg.Svd.u p (d + 1)
        else c_inv.(p - nr) *. Mat.unsafe_get svd.Gb_linalg.Svd.vt (d + 1) (p - nr))
  in
  let km = Gb_linalg.Kmeans.fit ~rng ~k z in
  let clusters =
    Array.init k (fun c ->
        let rows = ref [] and cols = ref [] in
        Array.iteri
          (fun p label ->
            if label = c then
              if p < nr then rows := p :: !rows else cols := (p - nr) :: !cols)
          km.Gb_linalg.Kmeans.assignments;
        {
          rows = Array.of_list (List.rev !rows);
          cols = Array.of_list (List.rev !cols);
        })
  in
  Array.to_list clusters
