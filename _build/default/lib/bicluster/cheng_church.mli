(** Cheng–Church δ-biclustering (benchmark Query 3).

    Simultaneously clusters rows (patients) and columns (genes) of the
    expression matrix into sub-matrices with coherent values, scored by
    mean squared residue (MSR). The classic algorithm: greedy multiple/
    single node deletion down to MSR ≤ δ, then node addition, then masking
    of the found bicluster with random values before searching for the
    next. *)

type bicluster = {
  rows : int array; (** member row indices, ascending *)
  cols : int array; (** member column indices, ascending *)
  msr : float; (** mean squared residue of the sub-matrix *)
}

val mean_squared_residue : Gb_linalg.Mat.t -> int array -> int array -> float
(** MSR of the sub-matrix selected by the given rows and columns. *)

type config = {
  delta : float; (** target residue threshold *)
  alpha : float; (** multiple-deletion aggressiveness, typically 1.2 *)
  n_clusters : int; (** how many biclusters to extract *)
  min_rows : int;
  min_cols : int;
  seed : int64; (** for masking and any sampling *)
}

val default_config : config

val run : ?config:config -> Gb_linalg.Mat.t -> bicluster list
(** Extract up to [n_clusters] biclusters. The input matrix is not
    modified (masking happens on an internal copy). *)
