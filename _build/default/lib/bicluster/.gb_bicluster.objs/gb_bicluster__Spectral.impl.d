lib/bicluster/spectral.ml: Array Float Gb_linalg Gb_util List
