lib/bicluster/cheng_church.ml: Array Float Gb_linalg Gb_util List
