lib/bicluster/cheng_church.mli: Gb_linalg
