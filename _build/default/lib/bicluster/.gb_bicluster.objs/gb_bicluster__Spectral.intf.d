lib/bicluster/spectral.mli: Gb_linalg Gb_util
