(** Spectral co-clustering (Dhillon 2001) — an alternative biclustering
    algorithm to Cheng–Church, for the paper's Section 6.3 point that the
    *choice* of algorithm dominates performance: normalize the matrix by
    row/column sums, embed rows and columns with the leading singular
    vectors, and k-means the joint embedding; rows and columns that land
    in the same cluster form a co-cluster. *)

type cocluster = {
  rows : int array; (** ascending *)
  cols : int array;
}

val run : ?rng:Gb_util.Prng.t -> k:int -> Gb_linalg.Mat.t -> cocluster list
(** Partition the matrix into [k] co-clusters (some may have empty row or
    column sets). Values are shifted to be non-negative internally, as the
    bipartite-graph formulation requires. [k] must satisfy
    [1 <= k <= min rows cols]. *)
