type table = string list

let fields line = Array.of_list (String.split_on_char ',' line)
let unfields arr = String.concat "," (Array.to_list arr)

let select mr ?(name = "select") pred table =
  Mr.map_only mr ~name
    ~mapper:(fun line -> if pred (fields line) then [ line ] else [])
    table

let project mr ?(name = "project") idx table =
  Mr.map_only mr ~name
    ~mapper:(fun line ->
      let f = fields line in
      [ unfields (Array.of_list (List.map (fun i -> f.(i)) idx)) ])
    table

(* Reduce-side join: tag each record with its source relation, group on the
   join key, emit the cross product within each group. *)
let join mr ?(name = "join") ~left_key ~right_key left right =
  let tagged_left = List.map (fun l -> "L," ^ l) left in
  let tagged_right = List.map (fun l -> "R," ^ l) right in
  Mr.run_job mr ~name
    ~mapper:(fun line ->
      let tag = line.[0] in
      let payload = String.sub line 2 (String.length line - 2) in
      let f = fields payload in
      let key = if tag = 'L' then f.(left_key) else f.(right_key) in
      [ (key, String.make 1 tag ^ "," ^ payload) ])
    ~reducer:(fun _key values ->
      let lefts = ref [] and rights = ref [] in
      List.iter
        (fun v ->
          let payload = String.sub v 2 (String.length v - 2) in
          if v.[0] = 'L' then lefts := payload :: !lefts
          else rights := payload :: !rights)
        values;
      List.concat_map
        (fun l ->
          let lf = fields l in
          List.map
            (fun r ->
              let rf = fields r in
              let rf_nokey =
                Array.of_list
                  (List.filteri (fun i _ -> i <> right_key)
                     (Array.to_list rf))
              in
              unfields (Array.append lf rf_nokey))
            !rights)
        !lefts)
    (tagged_left @ tagged_right)

let aggregate_sum mr ?(name = "agg") ~key ~value table =
  Mr.run_job mr ~name
    ~mapper:(fun line ->
      let f = fields line in
      [ (f.(key), f.(value)) ])
    ~reducer:(fun k values ->
      let sum = List.fold_left (fun acc v -> acc +. float_of_string v) 0. values in
      [ Printf.sprintf "%s,%.12g" k sum ])
    table

let count mr ?(name = "count") table =
  let out =
    Mr.run_job mr ~name
      ~mapper:(fun _ -> [ ("c", "1") ])
      ~reducer:(fun _ values -> [ string_of_int (List.length values) ])
      table
  in
  match out with [] -> 0 | n :: _ -> int_of_string n
