module Mat = Gb_linalg.Mat

type matrix = string list

let of_mat m =
  let nr, nc = Mat.dims m in
  let out = ref [] in
  for i = nr - 1 downto 0 do
    for j = nc - 1 downto 0 do
      out :=
        Printf.sprintf "%d,%d,%.12g" i j (Mat.unsafe_get m i j) :: !out
    done
  done;
  !out

let parse_triple line =
  match String.split_on_char ',' line with
  | [ i; j; v ] -> (int_of_string i, int_of_string j, float_of_string v)
  | _ -> failwith ("Mahout: bad triple " ^ line)

let to_mat ~rows ~cols lines =
  let m = Mat.create rows cols in
  List.iter
    (fun line ->
      let i, j, v = parse_triple line in
      Mat.set m i j v)
    lines;
  m

let transpose mr lines =
  Mr.map_only mr ~name:"transpose"
    ~mapper:(fun line ->
      let i, j, v = parse_triple line in
      [ Printf.sprintf "%d,%d,%.12g" j i v ])
    lines

(* General multiply: reduce-side join on the shared dimension, then a sum
   per output cell. Quadratic record blowup — only sane for small inputs,
   exactly like the naive approach it models. *)
let matmul mr a b =
  let tagged =
    List.map (fun l -> "A," ^ l) a @ List.map (fun l -> "B," ^ l) b
  in
  let products =
    Mr.run_job mr ~name:"matmul-join"
      ~mapper:(fun line ->
        let tag = line.[0] in
        let payload = String.sub line 2 (String.length line - 2) in
        let i, j, v = parse_triple payload in
        if tag = 'A' then [ (string_of_int j, Printf.sprintf "A,%d,%.12g" i v) ]
        else [ (string_of_int i, Printf.sprintf "B,%d,%.12g" j v) ])
      ~reducer:(fun _k values ->
        let az = ref [] and bz = ref [] in
        List.iter
          (fun v ->
            match String.split_on_char ',' v with
            | [ "A"; i; x ] -> az := (i, float_of_string x) :: !az
            | [ "B"; j; x ] -> bz := (j, float_of_string x) :: !bz
            | _ -> failwith "Mahout.matmul: bad record")
          values;
        List.concat_map
          (fun (i, x) ->
            List.map
              (fun (j, y) -> Printf.sprintf "%s,%s,%.12g" i j (x *. y))
              !bz)
          !az)
      tagged
  in
  Mr.run_job mr ~name:"matmul-sum"
    ~mapper:(fun line ->
      let i, j, v = parse_triple line in
      [ (Printf.sprintf "%d,%d" i j, Printf.sprintf "%.12g" v) ])
    ~reducer:(fun key values ->
      let s = List.fold_left (fun acc v -> acc +. float_of_string v) 0. values in
      [ Printf.sprintf "%s,%.12g" key s ])
    products

let col_means mr ~rows lines =
  let sums =
    Mr.run_job mr ~name:"col-means"
      ~mapper:(fun line ->
        let _, j, v = parse_triple line in
        [ (string_of_int j, Printf.sprintf "%.12g" v) ])
      ~reducer:(fun key values ->
        let s =
          List.fold_left (fun acc v -> acc +. float_of_string v) 0. values
        in
        [ Printf.sprintf "%s,%.12g" key (s /. float_of_int rows) ])
      lines
  in
  let out = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match String.split_on_char ',' line with
      | [ j; m ] -> Hashtbl.replace out (int_of_string j) (float_of_string m)
      | _ -> failwith "Mahout.col_means: bad record")
    sums;
  let max_j = Hashtbl.fold (fun j _ acc -> max j acc) out (-1) in
  Array.init (max_j + 1) (fun j -> try Hashtbl.find out j with Not_found -> 0.)

(* A^T A with in-mapper combining (Mahout's DistributedRowMatrix.times
   shape): group the triples into rows, then accumulate each row's outer
   product into a local dense accumulator — naive loops, no BLAS. Records
   may arrive in any order (they come out of a previous job's shuffle). *)
let ata mr ~cols lines =
  Mr.run_combine mr ~name:"ata"
    ~init:(Hashtbl.create 1024 : (int, (int * float) list) Hashtbl.t)
    ~fold:(fun groups line ->
      let i, j, v = parse_triple line in
      let existing = try Hashtbl.find groups i with Not_found -> [] in
      Hashtbl.replace groups i ((j, v) :: existing);
      groups)
    ~emit:(fun groups ->
      let acc = Array.make (cols * cols) 0. in
      let row_buf = Array.make cols 0. in
      Hashtbl.iter
        (fun _i cells ->
          Array.fill row_buf 0 cols 0.;
          List.iter (fun (j, v) -> row_buf.(j) <- v) cells;
          for p = 0 to cols - 1 do
            let vp = row_buf.(p) in
            if vp <> 0. then
              for q = 0 to cols - 1 do
                acc.((p * cols) + q) <-
                  acc.((p * cols) + q) +. (vp *. row_buf.(q))
              done
          done)
        groups;
      let out = ref [] in
      for p = cols - 1 downto 0 do
        for q = cols - 1 downto 0 do
          out := Printf.sprintf "%d,%d,%.12g" p q acc.((p * cols) + q) :: !out
        done
      done;
      !out)
    lines

let covariance mr ~rows ~cols lines =
  let means = col_means mr ~rows lines in
  let means =
    if Array.length means < cols then
      Array.append means (Array.make (cols - Array.length means) 0.)
    else means
  in
  let centered =
    Mr.map_only mr ~name:"center"
      ~mapper:(fun line ->
        let i, j, v = parse_triple line in
        [ Printf.sprintf "%d,%d,%.12g" i j (v -. means.(j)) ])
      lines
  in
  let xtx = ata mr ~cols centered in
  let scale = 1. /. float_of_int (rows - 1) in
  Mr.map_only mr ~name:"scale"
    ~mapper:(fun line ->
      let i, j, v = parse_triple line in
      [ Printf.sprintf "%d,%d,%.12g" i j (v *. scale) ])
    xtx

let regression mr ~rows ~cols lines y =
  if Array.length y <> rows then invalid_arg "Mahout.regression: length";
  (* Augment with the intercept column as dimension 0. *)
  let augmented =
    Mr.map_only mr ~name:"augment"
      ~mapper:(fun line ->
        let i, j, v = parse_triple line in
        let shifted = Printf.sprintf "%d,%d,%.12g" i (j + 1) v in
        if j = 0 then [ Printf.sprintf "%d,0,1" i; shifted ] else [ shifted ])
      lines
  in
  let d = cols + 1 in
  let xtx_lines = ata mr ~cols:d augmented in
  (* X^T y as one aggregation job. *)
  let xty_lines =
    Mr.run_job mr ~name:"xty"
      ~mapper:(fun line ->
        let i, j, v = parse_triple line in
        [ (string_of_int j, Printf.sprintf "%.12g" (v *. y.(i))) ])
      ~reducer:(fun key values ->
        let s =
          List.fold_left (fun acc v -> acc +. float_of_string v) 0. values
        in
        [ Printf.sprintf "%s,%.12g" key s ])
      augmented
  in
  let xtx = to_mat ~rows:d ~cols:d xtx_lines in
  let xty = Array.make d 0. in
  List.iter
    (fun line ->
      match String.split_on_char ',' line with
      | [ j; v ] -> xty.(int_of_string j) <- float_of_string v
      | _ -> failwith "Mahout.regression: bad xty record")
    xty_lines;
  Gb_linalg.Solve.cholesky xtx xty

let matvec mr lines x =
  Mr.run_job mr ~name:"matvec"
    ~mapper:(fun line ->
      let i, j, v = parse_triple line in
      [ (string_of_int i, Printf.sprintf "%.12g" (v *. x.(j))) ])
    ~reducer:(fun key values ->
      let s = List.fold_left (fun acc v -> acc +. float_of_string v) 0. values in
      [ Printf.sprintf "%s,%.12g" key s ])
    lines

let vec_of_lines n lines =
  let out = Array.make n 0. in
  List.iter
    (fun line ->
      match String.split_on_char ',' line with
      | [ i; v ] -> out.(int_of_string i) <- float_of_string v
      | _ -> failwith "Mahout: bad vector record")
    lines;
  out

let lanczos_eigs mr ~rows ~cols ~k lines =
  let transposed = transpose mr lines in
  let apply v =
    let av = vec_of_lines rows (matvec mr lines v) in
    vec_of_lines cols (matvec mr transposed av)
  in
  let res = Gb_linalg.Lanczos.symmetric ~n:cols ~k:(min k cols) apply in
  res.Gb_linalg.Lanczos.eigenvalues
