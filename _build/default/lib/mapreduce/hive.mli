(** Hive-style relational operations compiled to MapReduce jobs.

    Tables are lists of comma-separated text lines (Hive external tables
    over text files). Each operation launches at least one MR job; there
    is no cross-operation optimization — the "rudimentary query
    optimization" the paper blames for Hive's slow data management. *)

type table = string list

val select : Mr.t -> ?name:string -> (string array -> bool) -> table -> table
(** Filter rows by a predicate over the split fields (map-only job). *)

val project : Mr.t -> ?name:string -> int list -> table -> table
(** Keep the given field indices (map-only job). *)

val join :
  Mr.t ->
  ?name:string ->
  left_key:int ->
  right_key:int ->
  table ->
  table ->
  table
(** Reduce-side equi-join: one full MR job; output rows are
    [left fields @ right fields] (the join key appears once, from the
    left). *)

val aggregate_sum :
  Mr.t -> ?name:string -> key:int -> value:int -> table -> table
(** GROUP BY field [key], SUM of field [value]. *)

val count : Mr.t -> ?name:string -> table -> int
