(** Mahout-style distributed matrix operations on MapReduce.

    Matrices travel as triple-format text lines ["i,j,v"]. No BLAS, no
    blocking, no vectorization — every operation is jobs over text records,
    which is precisely why the paper finds Hadoop's analytics "between one
    and two orders of magnitude worse" than the tuned engines. *)

type matrix = string list
(** Triple lines "i,j,v". *)

val of_mat : Gb_linalg.Mat.t -> matrix
val to_mat : rows:int -> cols:int -> matrix -> Gb_linalg.Mat.t

val transpose : Mr.t -> matrix -> matrix

val matmul : Mr.t -> matrix -> matrix -> matrix
(** Two jobs: join on the shared dimension, then sum per output cell. *)

val col_means : Mr.t -> rows:int -> matrix -> float array

val covariance : Mr.t -> rows:int -> cols:int -> matrix -> matrix
(** Center columns, then [A{^T}A / (rows-1)]. *)

val regression :
  Mr.t -> rows:int -> cols:int -> matrix -> float array -> float array
(** Normal equations assembled with MR jobs ([X{^T}X], [X{^T}y]); the
    small dense system is solved on the driver, as Mahout does. Returns
    intercept followed by coefficients. *)

val lanczos_eigs :
  Mr.t -> rows:int -> cols:int -> k:int -> matrix -> float array
(** Top-[k] eigenvalues of [A{^T}A], Lanczos with the mat-vecs run as MR
    jobs (Mahout's DistributedLanczosSolver shape). *)
