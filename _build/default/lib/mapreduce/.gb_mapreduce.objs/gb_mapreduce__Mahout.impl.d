lib/mapreduce/mahout.ml: Array Gb_linalg Hashtbl List Mr Printf String
