lib/mapreduce/mahout.mli: Gb_linalg Mr
