lib/mapreduce/hive.mli: Mr
