lib/mapreduce/hive.ml: Array List Mr Printf String
