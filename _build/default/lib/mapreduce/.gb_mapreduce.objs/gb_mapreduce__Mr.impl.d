lib/mapreduce/mr.ml: Buffer Gb_util Hashtbl List String
