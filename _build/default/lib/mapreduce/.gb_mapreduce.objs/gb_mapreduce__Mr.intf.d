lib/mapreduce/mr.mli:
