lib/core/engine_colstore_mn.mli: Engine
