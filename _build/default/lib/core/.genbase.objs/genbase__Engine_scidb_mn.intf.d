lib/core/engine_scidb_mn.mli: Engine
