lib/core/harness.mli: Dataset Engine Gb_datagen Query
