lib/core/engine_colstore_mn.ml: Array Col_store Dataset Engine Export Expr Float Gb_cluster Gb_datagen Gb_linalg Gb_relational Gb_util Hashtbl List Ops Option Qcommon Query Relops Schema Seq Value
