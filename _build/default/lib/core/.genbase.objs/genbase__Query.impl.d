lib/core/query.ml: Gb_datagen List String
