lib/core/engine.mli: Dataset Format Query
