lib/core/engine_hadoop.ml: Array Dataset Engine Float Gb_datagen Gb_linalg Gb_mapreduce Gb_util Hashtbl List Printf Query String
