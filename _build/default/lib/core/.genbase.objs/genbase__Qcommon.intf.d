lib/core/qcommon.mli: Dataset Engine Gb_linalg
