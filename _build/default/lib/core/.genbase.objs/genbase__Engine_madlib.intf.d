lib/core/engine_madlib.mli: Engine
