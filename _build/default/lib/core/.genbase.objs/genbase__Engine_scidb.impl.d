lib/core/engine_scidb.ml: Array Dataset Engine Fun Gb_arraydb Gb_coproc Gb_datagen Gb_linalg Gb_util List Qcommon Query
