lib/core/engine_r.mli: Engine
