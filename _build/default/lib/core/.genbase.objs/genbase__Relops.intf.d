lib/core/relops.mli: Gb_linalg Gb_relational Ops Plan Query Schema
