lib/core/dataset.ml: Array Col_store Gb_arraydb Gb_datagen Gb_linalg Gb_relational List Printf Row_store Schema Value
