lib/core/engine_sql.ml: Array Col_store Dataset Engine Export Gb_datagen Gb_linalg Gb_relational Gb_util Ops Qcommon Query Relops Row_store
