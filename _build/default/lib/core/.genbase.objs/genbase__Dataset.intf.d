lib/core/dataset.mli: Gb_arraydb Gb_datagen Gb_relational
