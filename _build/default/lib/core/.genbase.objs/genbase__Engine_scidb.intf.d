lib/core/engine_scidb.mli: Dataset Engine Gb_coproc Query
