lib/core/engine_phi.ml: Engine Engine_scidb Gb_coproc
