lib/core/relops.ml: Array Dataset Expr Float Gb_linalg Gb_relational Hashtbl List Ops Pivot Plan Query Schema Seq Value
