lib/core/engine_pbdr.mli: Engine
