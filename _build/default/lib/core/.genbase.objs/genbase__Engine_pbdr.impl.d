lib/core/engine_pbdr.ml: Array Dataset Engine Float Gb_cluster Gb_datagen Gb_linalg Gb_util List Qcommon Query
