lib/core/qcommon.ml: Array Dataset Engine Float Fun Gb_bicluster Gb_datagen Gb_linalg Gb_stats Gb_util Int List
