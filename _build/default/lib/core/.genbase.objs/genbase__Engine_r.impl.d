lib/core/engine_r.ml: Array Dataset Engine Fun Gb_datagen Gb_linalg Gb_rlang Gb_util Qcommon Query
