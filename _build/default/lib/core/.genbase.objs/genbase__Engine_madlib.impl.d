lib/core/engine_madlib.ml: Array Engine Engine_sql Expr Float Fun Gb_datagen Gb_linalg Gb_relational Gb_util Hashtbl List Ops Qcommon Query Relops Schema Seq Sql_linalg Value
