lib/core/engine_scidb_mn.ml: Array Dataset Engine Float Fun Gb_arraydb Gb_cluster Gb_coproc Gb_datagen Gb_linalg Gb_util List Option Qcommon Query
