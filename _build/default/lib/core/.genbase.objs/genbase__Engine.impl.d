lib/core/engine.ml: Dataset Format Gb_mapreduce Gb_util Query
