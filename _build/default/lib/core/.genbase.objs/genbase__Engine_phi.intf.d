lib/core/engine_phi.mli: Engine
