lib/core/engine_hadoop.mli: Engine
