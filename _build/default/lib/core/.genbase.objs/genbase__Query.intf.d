lib/core/query.mli:
