lib/core/engine_sql.mli: Dataset Engine Relops
