type payload =
  | Regression of { intercept : float; coefficients : float array; r2 : float }
  | Cov_pairs of { n_genes : int; top_pairs : (int * int * float) list }
  | Biclusters of { clusters : (int array * int array * float) list }
  | Singular_values of float array
  | Enrichment of (int * float) list

type timing = { dm : float; analytics : float }

let total t = t.dm +. t.analytics

type outcome =
  | Completed of timing * payload
  | Timed_out
  | Out_of_memory
  | Errored of string
  | Unsupported

type t = {
  name : string;
  kind : [ `Single_node | `Multi_node of int ];
  supports : Query.t -> bool;
  load : Dataset.t -> Query.t -> params:Query.params -> timeout_s:float -> outcome;
}

exception Memory_exceeded

let run e ds q ?(params = Query.default_params) ~timeout_s () =
  if not (e.supports q) then Unsupported
  else
    try e.load ds q ~params ~timeout_s with
    | Gb_util.Deadline.Timeout | Gb_mapreduce.Mr.Timeout -> Timed_out
    | Memory_exceeded | Out_of_memory -> Out_of_memory
    | Stack_overflow -> Out_of_memory
    | Invalid_argument msg | Failure msg -> Errored msg

let pp_outcome fmt = function
  | Completed (t, _) ->
    Format.fprintf fmt "ok dm=%.3fs analytics=%.3fs" t.dm t.analytics
  | Timed_out -> Format.pp_print_string fmt "timeout"
  | Out_of_memory -> Format.pp_print_string fmt "out-of-memory"
  | Errored msg -> Format.fprintf fmt "error: %s" msg
  | Unsupported -> Format.pp_print_string fmt "unsupported"
