(** Configuration 6: SciDB (native array DBMS).

    Data lives as chunked arrays with metadata in 1-D attribute arrays, so
    selections are dimension filters and there is no table→array recast
    and no export: "an array DBMS like SciDB is very competitive on this
    benchmark". Analytics run as custom native code over the arrays. *)

val engine : Engine.t

val run_with_clock :
  ?offload:
    (Gb_coproc.Device.t)
    ->
  Dataset.t ->
  Query.t ->
  params:Query.params ->
  timeout_s:float ->
  Engine.outcome
(** Shared implementation: with [offload] set, analytics kernels are
    dispatched through the coprocessor model (configuration of Section 5). *)
