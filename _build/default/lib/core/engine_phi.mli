(** Section 5's configuration: SciDB for data management with the
    analytics offloaded to the (simulated) Intel Xeon Phi coprocessor. *)

val engine : Engine.t
