let engine =
  {
    Engine.name = "SciDB + Xeon Phi";
    kind = `Single_node;
    supports = (fun _ -> true);
    load =
      (fun ds q ~params ~timeout_s ->
        Engine_scidb.run_with_clock ~offload:Gb_coproc.Device.xeon_phi_5110p ds
          q ~params ~timeout_s);
  }
