(** Configuration 2: Postgres + MADlib.

    Analytics stay inside the DBMS. Linear regression runs as a native
    streaming aggregate (MADlib's C++ UDF path) and is fast; covariance
    and SVD are "simulated in SQL and plpython" — joins and aggregates
    over triple-form relations — and are interpreted and slow, often not
    finishing inside the benchmark window, as the paper reports.
    Biclustering is not available in MADlib. *)

val engine : Engine.t
