(** Configurations 3–5: SQL engines with external-R or in-DB-UDF
    analytics.

    [make] builds an engine from a storage backend (row or column store)
    and an analytics boundary:
    - [`Export_to_r]: results cross a CSV serialize/parse boundary before
      analytics (Postgres+R, ColumnStore+R);
    - [`Udf]: analytics run in-process against the pivoted data
      (ColumnStore+UDFs) — cheaper, except for the chatty marshalling the
      biclustering UDF pays, reproducing the pathology the paper observed. *)

type backend = Row_backend | Col_backend

val make : name:string -> backend:backend ->
  boundary:[ `Export_to_r | `Udf ] -> Engine.t

val postgres_r : Engine.t
val colstore_r : Engine.t
val colstore_udf : Engine.t

val make_db :
  backend -> Dataset.t -> check:(unit -> unit) -> Relops.db
(** Exposed for the multi-node engines, which reuse the same scans over
    per-node partitions. *)
