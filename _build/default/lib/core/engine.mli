(** The system-under-test interface.

    An engine loads a data set once (setup, untimed) and then answers
    queries, reporting the data-management and analytics phases separately
    (the split behind Figures 2 and 4). Real-compute engines report wall
    time; cluster/coprocessor/MapReduce engines report simulated seconds
    that combine genuinely measured compute with modelled communication. *)

type payload =
  | Regression of { intercept : float; coefficients : float array; r2 : float }
  | Cov_pairs of { n_genes : int; top_pairs : (int * int * float) list }
  | Biclusters of { clusters : (int array * int array * float) list }
  | Singular_values of float array
  | Enrichment of (int * float) list
      (** significantly enriched (go_id, p-value), ascending p *)

type timing = { dm : float; analytics : float }

val total : timing -> float

type outcome =
  | Completed of timing * payload
  | Timed_out
  | Out_of_memory
  | Errored of string
      (** the engine hit an execution error (e.g. a degenerate selection
          made a kernel's preconditions fail); treated like a failure, not
          a crash *)
  | Unsupported

type t = {
  name : string;
  kind : [ `Single_node | `Multi_node of int ];
  supports : Query.t -> bool;
  load : Dataset.t -> Query.t -> params:Query.params -> timeout_s:float -> outcome;
}

val run : t -> Dataset.t -> Query.t -> ?params:Query.params ->
  timeout_s:float -> unit -> outcome
(** Drives [load], translating [Deadline.Timeout], [Mr.Timeout] and
    memory-budget failures into the corresponding outcomes. *)

val pp_outcome : Format.formatter -> outcome -> unit

exception Memory_exceeded
(** Raised by engines whose modelled memory budget is exhausted (the
    paper's "temporary space allocation failed" result). *)
