(** Configuration 7: Hadoop — Hive for the data management, Mahout for the
    analytics. Runs only the queries Mahout can express (regression,
    covariance, SVD). Every step is MapReduce jobs over text records: job
    launch overhead plus no tuned linear algebra, hence "between one and
    two orders of magnitude worse performance than the best system". *)

val engine : Engine.t

val engine_multinode : nodes:int -> Engine.t
(** The same stack with maps/reduces spread over [nodes] (parallel
    efficiency < 1) and shuffle traffic charged to the interconnect. *)
