(** Configuration 1: Vanilla R.

    Memory-resident dataframes with LAPACK-class kernels (our
    [Gb_linalg]), single-threaded, and subject to R's array cell limit —
    2³¹−1 cells in the paper, scaled by the same 625x factor as the data
    sets. Loading a data set costs two copies (read buffer + frame), which
    is why the large data set fails here, as observed in the paper. *)

val engine : Engine.t

val cell_budget : int
(** The scaled cell limit. *)
