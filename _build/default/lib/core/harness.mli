(** Benchmark harness: runs (engine x query x data set) grids, applies the
    cut-off rule ("we cut off all computation after two hours … we treat
    memory allocation failure and excessive computation length as
    'infinite' results"), and renders each of the paper's figures and
    tables as a text chart. *)

type cell = {
  engine : string;
  nodes : int;
  query : Query.t;
  size : Gb_datagen.Spec.size;
  outcome : Engine.outcome;
}

val run_cell : Engine.t -> Dataset.t -> Query.t -> timeout_s:float -> cell

val total_seconds : cell -> float option
(** [Some total] when completed, [Some infinity] for timeout / memory
    failure, [None] when the engine lacks the functionality. *)

val dm_seconds : cell -> float option
val analytics_seconds : cell -> float option

type config = {
  timeout_s : float; (** the scaled two-hour window *)
  sizes : Gb_datagen.Spec.size list;
  seed : int64;
  progress : (string -> unit) option; (** per-cell progress callback *)
}

val default_config : config
val quick_config : config
(** Small size only and a short timeout, for tests and demos. *)

val single_node_engines : Engine.t list
val multi_node_engines : nodes:int -> Engine.t list

(** {1 Experiment grids} — each runs its engines and returns raw cells. *)

val single_node_cells : config -> cell list
(** Everything Figures 1 and 2 need: 7 engines x 5 queries x sizes. *)

val multi_node_cells : config -> cell list
(** Figures 3/4: 5 multi-node systems x 5 queries x {1,2,4} nodes on the
    largest configured size. *)

val phi_cells : config -> cell list
(** Figure 5: SciDB vs SciDB+Phi x 4 queries x sizes. *)

val phi_mn_cells : config -> cell list
(** Table 1: SciDB vs SciDB+Phi x 4 queries x {1,2,4} nodes, largest
    size. *)

(** {1 Rendering} — turn cells into the paper's figures. *)

val fig1 : cell list -> string list
val fig2 : cell list -> string list
val fig3 : cell list -> string list
val fig4 : cell list -> string list
val fig5 : cell list -> string list
val table1 : cell list -> string

val to_csv : cell list -> string
(** Machine-readable dump of a cell grid: one line per cell with engine,
    nodes, query, size, status and the phase timings. *)
