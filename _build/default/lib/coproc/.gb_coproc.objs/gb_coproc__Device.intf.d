lib/coproc/device.mli: Gb_util
