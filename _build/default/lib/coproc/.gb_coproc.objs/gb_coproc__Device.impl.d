lib/coproc/device.ml: Gb_util
