(** Coprocessor offload model (the paper's Intel Xeon Phi 5110P study).

    The device is characterized by a PCIe link (latency + bandwidth), a
    memory capacity, and a per-kernel-class compute speedup relative to
    the host. [offload] charges transfer-in, runs the kernel for real on
    the host while dividing its measured time by the class speedup, then
    charges transfer-out — exactly the paper's trade: compute-heavy
    kernels win, light kernels (biclustering) don't, and data sets that
    exceed device memory pay extra movement. *)

type kernel_class =
  | Blas3 (** dense matrix-matrix: gemm, covariance, QR panels *)
  | Blas2 (** matrix-vector sweeps: Lanczos iterations *)
  | Stat (** ranking / rank-sum style scans *)
  | Light (** control-heavy, little arithmetic: biclustering *)

type t = {
  name : string;
  pcie_latency_s : float;
  pcie_bandwidth_bps : float;
  memory_bytes : int;
  speedup : kernel_class -> float;
}

val xeon_phi_5110p : t
(** 60 cores / 8 GB; speedups calibrated so the analytics speedups land in
    the paper's 1.2–2.9x band (memory capacity scaled down by the same
    factor as the data sets). *)

val transfer_time : t -> bytes:int -> float
(** Includes the spill penalty when [bytes] exceeds device memory. *)

val offload :
  t ->
  Gb_util.Clock.Sim.t ->
  bytes_in:int ->
  bytes_out:int ->
  kernel_class ->
  (unit -> 'a) ->
  'a

val host_time : Gb_util.Clock.Sim.t -> (unit -> 'a) -> 'a
(** Run on the host, charging measured time unchanged. *)
