lib/rlang/rvec.mli: Gb_util
