lib/rlang/dataframe.ml: Array Gb_linalg Gb_util Hashtbl Int List Printf
