lib/rlang/rvec.ml: Array Float Gb_stats Gb_util
