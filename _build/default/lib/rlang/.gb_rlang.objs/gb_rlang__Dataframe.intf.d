lib/rlang/dataframe.mli: Gb_linalg
