let seq from to_ ~by =
  if by = 0. then invalid_arg "Rvec.seq: by = 0";
  if (to_ -. from) *. by < 0. then invalid_arg "Rvec.seq: wrong direction";
  let n = int_of_float (Float.round (((to_ -. from) /. by) +. 1e-9)) + 1 in
  Array.init n (fun i -> from +. (float_of_int i *. by))

let rep v ~times =
  if times < 0 then invalid_arg "Rvec.rep: times";
  Array.make times v

let cumsum a =
  let acc = ref 0. in
  Array.map
    (fun v ->
      acc := !acc +. v;
      !acc)
    a

let diff a =
  let n = Array.length a in
  if n = 0 then [||] else Array.init (n - 1) (fun i -> a.(i + 1) -. a.(i))

let rev a =
  let n = Array.length a in
  Array.init n (fun i -> a.(n - 1 - i))

let order = Gb_util.Order.argsort ?descending:None

let rank = Gb_stats.Ranking.ranks

let tabulate a ~nbins =
  if nbins < 0 then invalid_arg "Rvec.tabulate: nbins";
  let out = Array.make nbins 0 in
  Array.iter (fun v -> if v >= 0 && v < nbins then out.(v) <- out.(v) + 1) a;
  out

let scale a =
  let mu = Gb_stats.Descriptive.mean a in
  let sd = Gb_stats.Descriptive.std a in
  if sd = 0. then Array.map (fun v -> v -. mu) a
  else Array.map (fun v -> (v -. mu) /. sd) a

let zip name f a b =
  if Array.length a <> Array.length b then
    invalid_arg ("Rvec." ^ name ^ ": length mismatch");
  Array.map2 f a b

let pmax = zip "pmax" Float.max
let pmin = zip "pmin" Float.min

let which_extreme better a =
  if Array.length a = 0 then invalid_arg "Rvec.which_*: empty";
  let best = ref 0 in
  Array.iteri (fun i v -> if better v a.(!best) then best := i) a;
  !best

let which_max a = which_extreme ( > ) a
let which_min a = which_extreme ( < ) a

let sample ?rng a k =
  let rng =
    match rng with Some r -> r | None -> Gb_util.Prng.create 0x5A3D1EL
  in
  let idx = Gb_util.Prng.sample rng k (Array.length a) in
  Array.map (fun i -> a.(i)) idx

let cor = Gb_stats.Descriptive.pearson
let quantile = Gb_stats.Descriptive.quantile
