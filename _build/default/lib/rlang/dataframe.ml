module Mat = Gb_linalg.Mat

type column =
  | Ints of int array
  | Floats of float array
  | Strs of string array

type t = { cols : (string * column) list; nrow : int }

let col_length = function
  | Ints a -> Array.length a
  | Floats a -> Array.length a
  | Strs a -> Array.length a

let of_columns cols =
  match cols with
  | [] -> { cols = []; nrow = 0 }
  | (_, first) :: _ ->
    let nrow = col_length first in
    List.iter
      (fun (n, c) ->
        if col_length c <> nrow then
          invalid_arg ("Dataframe.of_columns: ragged column " ^ n))
      cols;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (n, _) ->
        if Hashtbl.mem seen n then
          invalid_arg ("Dataframe.of_columns: duplicate " ^ n);
        Hashtbl.add seen n ())
      cols;
    { cols; nrow }

let nrow t = t.nrow
let ncol t = List.length t.cols
let names t = List.map fst t.cols

let column t name =
  match List.assoc_opt name t.cols with
  | Some c -> c
  | None -> invalid_arg ("Dataframe: no column " ^ name)

let ints t name =
  match column t name with
  | Ints a -> a
  | _ -> invalid_arg ("Dataframe.ints: " ^ name ^ " is not integer")

let floats t name =
  match column t name with
  | Floats a -> a
  | Ints a -> Array.map float_of_int a
  | Strs _ -> invalid_arg ("Dataframe.floats: " ^ name ^ " is character")

let pick col idx =
  match col with
  | Ints a -> Ints (Array.map (fun i -> a.(i)) idx)
  | Floats a -> Floats (Array.map (fun i -> a.(i)) idx)
  | Strs a -> Strs (Array.map (fun i -> a.(i)) idx)

let subset_rows t idx =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.nrow then invalid_arg "Dataframe.subset_rows: index")
    idx;
  { cols = List.map (fun (n, c) -> (n, pick c idx)) t.cols; nrow = Array.length idx }

let which t pred =
  let out = ref [] in
  for i = t.nrow - 1 downto 0 do
    if pred t i then out := i :: !out
  done;
  Array.of_list !out

let subset t pred = subset_rows t (which t pred)

let merge x y ~by =
  let xk = ints x by and yk = ints y by in
  let index = Hashtbl.create (Array.length yk) in
  Array.iteri
    (fun j k ->
      Hashtbl.replace index k
        (match Hashtbl.find_opt index k with Some l -> j :: l | None -> [ j ]))
    yk;
  let xi = ref [] and yi = ref [] in
  Array.iteri
    (fun i k ->
      match Hashtbl.find_opt index k with
      | Some matches ->
        List.iter
          (fun j ->
            xi := i :: !xi;
            yi := j :: !yi)
          (List.rev matches)
      | None -> ())
    xk;
  let xi = Array.of_list (List.rev !xi) and yi = Array.of_list (List.rev !yi) in
  let x_cols =
    List.map (fun (n, c) -> (n, pick c xi)) x.cols
  in
  let x_names = List.map fst x.cols in
  let y_cols =
    List.filter_map
      (fun (n, c) ->
        if n = by then None
        else
          let n = if List.mem n x_names then n ^ ".y" else n in
          Some (n, pick c yi))
      y.cols
  in
  { cols = x_cols @ y_cols; nrow = Array.length xi }

let order_by t name =
  let key =
    match column t name with
    | Ints a -> Array.map float_of_int a
    | Floats a -> a
    | Strs _ -> invalid_arg "Dataframe.order_by: character column"
  in
  subset_rows t (Gb_util.Order.argsort key)

let aggregate_mean t ~by ~value =
  let keys = ints t by and vals = floats t value in
  let sums = Hashtbl.create 64 in
  Array.iteri
    (fun i k ->
      let s, n = try Hashtbl.find sums k with Not_found -> (0., 0) in
      Hashtbl.replace sums k (s +. vals.(i), n + 1))
    keys;
  let groups = Hashtbl.fold (fun k (s, n) acc -> (k, s /. float_of_int n) :: acc) sums [] in
  let groups = List.sort (fun (a, _) (b, _) -> Int.compare a b) groups in
  of_columns
    [
      (by, Ints (Array.of_list (List.map fst groups)));
      (value, Floats (Array.of_list (List.map snd groups)));
    ]

let to_matrix t ~cols =
  let data = List.map (fun n -> floats t n) cols in
  let arr = Array.of_list data in
  Mat.init t.nrow (Array.length arr) (fun i j -> arr.(j).(i))

let of_matrix ?(prefix = "V") m =
  let rows, cols = Mat.dims m in
  of_columns
    (List.init cols (fun j ->
         (Printf.sprintf "%s%d" prefix j, Floats (Array.init rows (fun i -> Mat.get m i j)))))
