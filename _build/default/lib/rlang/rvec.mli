(** R vector idioms over [float array] — the vocabulary of the analysis
    scripts the Vanilla R configuration stands in for. *)

val seq : float -> float -> by:float -> float array
(** R's [seq(from, to, by)]; inclusive of the endpoint when it lands on
    the grid. [by] must be non-zero and point toward [to]. *)

val rep : float -> times:int -> float array
val cumsum : float array -> float array
val diff : float array -> float array
(** Lagged differences; length n-1. *)

val rev : float array -> float array

val order : float array -> int array
(** R's [order()]: the permutation that sorts ascending (1-based in R,
    0-based here). *)

val rank : float array -> float array
(** Mid-ranks, ties averaged (delegates to [Gb_stats.Ranking]). *)

val tabulate : int array -> nbins:int -> int array
(** Counts of values 0..nbins-1 (out-of-range values ignored, as R does
    for non-positive entries). *)

val scale : float array -> float array
(** Center to mean 0 and scale to sd 1 (sd 0 leaves centered values). *)

val pmax : float array -> float array -> float array
val pmin : float array -> float array -> float array
val which_max : float array -> int
(** First index of the maximum; array must be non-empty. *)

val which_min : float array -> int

val sample : ?rng:Gb_util.Prng.t -> float array -> int -> float array
(** Sample without replacement, as R's [sample(x, k)]. *)

val cor : float array -> float array -> float
(** Pearson correlation (R's [cor]). *)

val quantile : float array -> float -> float
(** Type-7 (R default) quantile. *)
