(** A small R-style data.frame: named, typed, equal-length column vectors
    with the operations the benchmark's R scripts lean on — [subset]
    (filter), [merge] (hash join), [order], [aggregate] and the
    data.frame ⇄ matrix casts. This is the data-management layer of the
    "Vanilla R" configuration. *)

type column =
  | Ints of int array
  | Floats of float array
  | Strs of string array

type t

val of_columns : (string * column) list -> t
(** Columns must share one length; raises [Invalid_argument] otherwise. *)

val nrow : t -> int
val ncol : t -> int
val names : t -> string list
val column : t -> string -> column
val ints : t -> string -> int array
(** Raises if the column is not [Ints]. *)

val floats : t -> string -> float array
(** [Ints] columns are widened. *)

val subset : t -> (t -> int -> bool) -> t
(** R's [df\[pred, \]]: keep rows where the row predicate holds. *)

val subset_rows : t -> int array -> t
val which : t -> (t -> int -> bool) -> int array
(** R's [which()]: indices satisfying the predicate. *)

val merge : t -> t -> by:string -> t
(** R's [merge(x, y, by = key)]: inner equi-join on an [Ints] column; the
    key appears once, then x's other columns, then y's (a clashing name
    from y gets a [".y"] suffix). *)

val order_by : t -> string -> t
(** Ascending by one column (stable). *)

val aggregate_mean : t -> by:string -> value:string -> t
(** R's [aggregate(value ~ by, FUN = mean)]: two columns, [by] (ints,
    ascending) and [value] (float means). *)

val to_matrix : t -> cols:string list -> Gb_linalg.Mat.t
(** [as.matrix(df\[, cols\])]. *)

val of_matrix : ?prefix:string -> Gb_linalg.Mat.t -> t
(** Columns named [prefix0, prefix1, …] (default prefix "V"). *)
