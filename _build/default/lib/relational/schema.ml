type t = { cols : (string * Value.ty) array; by_name : (string, int) Hashtbl.t }

let make cols =
  let arr = Array.of_list cols in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i (n, _) ->
      if Hashtbl.mem by_name n then
        invalid_arg ("Schema.make: duplicate column " ^ n);
      Hashtbl.add by_name n i)
    arr;
  { cols = arr; by_name }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> raise Not_found

let mem t name = Hashtbl.mem t.by_name name
let ty t i = snd t.cols.(i)
let name t i = fst t.cols.(i)

let project t names =
  make (List.map (fun n -> (n, ty t (index t n))) names)

let concat a b =
  let taken = Hashtbl.copy a.by_name in
  let fresh n =
    let rec go n = if Hashtbl.mem taken n then go (n ^ "_r") else n in
    let n' = go n in
    Hashtbl.add taken n' 0;
    n'
  in
  let right =
    Array.to_list b.cols |> List.map (fun (n, ty) -> (fresh n, ty))
  in
  make (Array.to_list a.cols @ right)

let validate_row t row =
  Array.length row = arity t
  && Array.for_all2 (fun (_, ty) v -> Value.type_of v = ty) t.cols row

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (List.map
          (fun (n, ty) -> Printf.sprintf "%s %s" n (Format.asprintf "%a" Value.pp_ty ty))
          (columns t)))
