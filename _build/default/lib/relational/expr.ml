type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t

let col n = Col n
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)
let str s = Const (Value.Str s)
let ( =% ) a b = Cmp (Eq, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Le, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Ge, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)

let columns e =
  let acc = ref [] in
  let rec go = function
    | Col n -> if not (List.mem n !acc) then acc := n :: !acc
    | Const _ -> ()
    | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) ->
      go a;
      go b
    | Not a -> go a
  in
  go e;
  List.rev !acc

let of_bool b = Value.Int (if b then 1 else 0)
let truthy = function Value.Int 0 -> false | _ -> true

let rec compile schema e =
  match e with
  | Col n ->
    let i = Schema.index schema n in
    fun row -> row.(i)
  | Const v -> fun _ -> v
  | Cmp (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    let test =
      match op with
      | Eq -> fun c -> c = 0
      | Ne -> fun c -> c <> 0
      | Lt -> fun c -> c < 0
      | Le -> fun c -> c <= 0
      | Gt -> fun c -> c > 0
      | Ge -> fun c -> c >= 0
    in
    fun row -> of_bool (test (Value.compare (fa row) (fb row)))
  | And (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> of_bool (truthy (fa row) && truthy (fb row))
  | Or (a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun row -> of_bool (truthy (fa row) || truthy (fb row))
  | Not a ->
    let fa = compile schema a in
    fun row -> of_bool (not (truthy (fa row)))
  | Arith (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    let apply va vb =
      match (va, vb) with
      | Value.Int x, Value.Int y -> (
        match op with
        | Add -> Value.Int (x + y)
        | Sub -> Value.Int (x - y)
        | Mul -> Value.Int (x * y)
        | Div -> Value.Int (x / y))
      | _ ->
        let x = Value.to_float va and y = Value.to_float vb in
        Value.Float
          (match op with
          | Add -> x +. y
          | Sub -> x -. y
          | Mul -> x *. y
          | Div -> x /. y)
    in
    fun row -> apply (fa row) (fb row)

let compile_pred schema e =
  let f = compile schema e in
  fun row -> truthy (f row)
