(* Page layout: [0..3] slot count, [4..7] used bytes, then packed rows. *)

let header_bytes = 8
let page_size = Row_store.page_size

type t = {
  schema : Schema.t;
  pool : Buffer_pool.t;
  mutable pages : int list; (* reverse order *)
  mutable current : int; (* page id, -1 if none *)
  mutable count : int;
}

let create ?(pool_frames = 64) schema =
  {
    schema;
    pool = Buffer_pool.create ~frames:pool_frames ~page_bytes:page_size ();
    pages = [];
    current = -1;
    count = 0;
  }

let schema t = t.schema
let row_count t = t.count
let page_count t = List.length t.pages
let pool_stats t = Buffer_pool.stats t.pool
let close t = Buffer_pool.close t.pool

let get_header buf =
  (Int32.to_int (Bytes.get_int32_le buf 0), Int32.to_int (Bytes.get_int32_le buf 4))

let set_header buf nslots used =
  Bytes.set_int32_le buf 0 (Int32.of_int nslots);
  Bytes.set_int32_le buf 4 (Int32.of_int used)

let fresh_page t =
  let id = Buffer_pool.allocate t.pool in
  Buffer_pool.with_page t.pool id (fun buf -> set_header buf 0 header_bytes);
  t.pages <- id :: t.pages;
  t.current <- id;
  id

let insert t row =
  let size = Codec.encoded_size t.schema row in
  if size > page_size - header_bytes then
    invalid_arg "Paged_store.insert: row exceeds page";
  let page =
    if t.current = -1 then fresh_page t
    else begin
      let _, used =
        Buffer_pool.read_page t.pool t.current (fun buf -> get_header buf)
      in
      if used + size > page_size then fresh_page t else t.current
    end
  in
  Buffer_pool.with_page t.pool page (fun buf ->
      let nslots, used = get_header buf in
      let written = Codec.encode t.schema row buf used in
      set_header buf (nslots + 1) (used + written));
  t.count <- t.count + 1

let to_seq t =
  let pages = List.rev t.pages in
  let rec page_seq pages () =
    match pages with
    | [] -> Seq.Nil
    | page :: rest ->
      (* Decode the whole page under one pin; pages are immutable after
         the writer moves on, so copying the rows out is sound. *)
      let rows =
        Buffer_pool.read_page t.pool page (fun buf ->
            let nslots, _ = get_header buf in
            let out = ref [] in
            let pos = ref header_bytes in
            for _ = 1 to nslots do
              let row, consumed = Codec.decode t.schema buf !pos in
              pos := !pos + consumed;
              out := row :: !out
            done;
            List.rev !out)
      in
      Seq.append (List.to_seq rows) (page_seq rest) ()
  in
  page_seq pages

let iter t f = Seq.iter f (to_seq t)

let of_rows ?pool_frames schema rows =
  let t = create ?pool_frames schema in
  List.iter (insert t) rows;
  t
