lib/relational/pivot.mli: Gb_linalg Ops
