lib/relational/column.ml: Array Hashtbl List String Value
