lib/relational/export.mli: Gb_linalg Ops Schema Value
