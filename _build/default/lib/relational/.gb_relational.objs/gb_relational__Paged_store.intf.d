lib/relational/paged_store.mli: Buffer_pool Schema Seq Value
