lib/relational/index.ml: Array Btree Col_store List Ops Row_store Schema Seq Value
