lib/relational/bitmap.mli:
