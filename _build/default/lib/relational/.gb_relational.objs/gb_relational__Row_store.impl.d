lib/relational/row_store.ml: Bytes Codec List Schema Seq
