lib/relational/bitmap.ml: Array List
