lib/relational/pivot.ml: Array Gb_linalg Hashtbl List Ops Schema Seq Value
