lib/relational/sql_linalg.ml: Array Expr Gb_linalg Gb_util List Ops Schema Seq Value
