lib/relational/sql_linalg.mli: Gb_linalg Ops Schema
