lib/relational/buffer_pool.mli: Bytes
