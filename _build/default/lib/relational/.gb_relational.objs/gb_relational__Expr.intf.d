lib/relational/expr.mli: Schema Value
