lib/relational/plan.ml: Buffer Expr List Ops Option Printf Schema String Value
