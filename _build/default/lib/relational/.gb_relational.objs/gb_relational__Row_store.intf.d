lib/relational/row_store.mli: Schema Seq Value
