lib/relational/ops.ml: Array Col_store Expr Hashtbl List Row_store Schema Seq Value
