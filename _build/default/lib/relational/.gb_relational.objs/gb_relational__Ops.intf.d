lib/relational/ops.mli: Col_store Expr Row_store Schema Seq Value
