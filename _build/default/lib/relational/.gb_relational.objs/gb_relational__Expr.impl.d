lib/relational/expr.ml: Array List Schema Value
