lib/relational/col_store.mli: Column Schema Seq Value
