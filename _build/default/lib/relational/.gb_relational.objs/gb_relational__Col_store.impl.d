lib/relational/col_store.ml: Array Column List Schema Seq Value
