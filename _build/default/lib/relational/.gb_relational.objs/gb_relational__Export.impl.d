lib/relational/export.ml: Array Buffer Gb_linalg List Ops Printf Schema Seq String Value
