lib/relational/paged_store.ml: Buffer_pool Bytes Codec Int32 List Row_store Schema Seq
