lib/relational/buffer_pool.ml: Array Bytes Filename Hashtbl Sys Unix
