lib/relational/plan.mli: Expr Ops Schema
