lib/relational/codec.ml: Array Bytes Int32 Int64 Schema String Value
