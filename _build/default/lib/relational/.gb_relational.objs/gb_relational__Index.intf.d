lib/relational/index.mli: Col_store Ops Row_store Schema
