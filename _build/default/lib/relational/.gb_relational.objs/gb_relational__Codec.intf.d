lib/relational/codec.mli: Bytes Schema Value
