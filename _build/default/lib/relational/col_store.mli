(** Columnar table storage with per-column compression and
    late-materialization scans. *)

type t

val of_rows : Schema.t -> Value.t array list -> t
val of_columns : Schema.t -> Value.t array array -> t
(** [of_columns schema cols] where [cols.(i)] holds column [i]'s values. *)

val schema : t -> Schema.t
val row_count : t -> int
val column : t -> int -> Column.t

val iter_cols : t -> string list -> (Value.t array -> unit) -> unit
(** [iter_cols t names f] scans only the named columns; [f] receives the
    values in the order of [names]. *)

val iter : t -> (Value.t array -> unit) -> unit
(** Full-width scan (materializes every column). *)

val to_seq : t -> string list -> Value.t array Seq.t
(** Lazy late-materialization scan over the named columns only. *)

val compression_report : t -> (string * string * int) list
(** [(column, encoding, bytes)] per column. *)

val zone_block : int
(** Rows per zone-map block. *)

val scan_range :
  t -> string list -> on:string -> lo:float -> hi:float ->
  Value.t array Seq.t * int
(** Zone-map-accelerated range scan: returns the rows of the named columns
    whose numeric [on] value lies in [lo, hi], plus the number of
    [zone_block]-row blocks the per-block min/max summaries allowed the
    scan to skip without reading. *)
