(** The system boundary: copying and reformatting data between the DBMS and
    an external analytics package.

    The paper's Postgres+R and ColumnStore+R configurations export query
    results as text and re-parse them on the R side; "the data will have to
    be reformatted and copied between the two systems, which will be
    costly". These functions genuinely serialize to CSV text and parse it
    back, so the measured boundary cost is real work, not a fudge factor. *)

val rel_to_csv : Ops.rel -> string
(** Header plus one line per row (consumes the stream). *)

val csv_to_rows : Schema.t -> string -> Value.t array list
(** Parse back what [rel_to_csv] produced (skipping the header). *)

val matrix_to_csv : Gb_linalg.Mat.t -> string
val csv_to_matrix : string -> Gb_linalg.Mat.t

val roundtrip_rel : Ops.rel -> Ops.rel
(** Serialize + parse, i.e. ship a result set across the boundary. *)

val roundtrip_matrix : Gb_linalg.Mat.t -> Gb_linalg.Mat.t
