let order = 32

(* Leaves hold (key, values) pairs with duplicate keys collapsed into a
   value list; interior nodes hold separator keys with keys.(i) being the
   smallest key reachable under children.(i+1). *)
type 'a node =
  | Leaf of {
      mutable keys : int array;
      mutable vals : 'a list array; (* reversed insertion order *)
      mutable next : 'a node option;
    }
  | Interior of { mutable keys : int array; mutable children : 'a node array }

type 'a t = { mutable root : 'a node; mutable size : int }

let create () =
  { root = Leaf { keys = [||]; vals = [||]; next = None }; size = 0 }

let length t = t.size

(* Index of the child to descend into for key [k]. *)
let child_index keys k =
  let n = Array.length keys in
  let i = ref 0 in
  while !i < n && k >= keys.(!i) do
    incr i
  done;
  !i

(* Position of key [k] in a sorted key array, or the insertion point. *)
let leaf_position keys k =
  let n = Array.length keys in
  let i = ref 0 in
  while !i < n && keys.(!i) < k do
    incr i
  done;
  !i

let array_insert a i x =
  let n = Array.length a in
  Array.init (n + 1) (fun j ->
      if j < i then a.(j) else if j = i then x else a.(j - 1))

(* Insert into a subtree; Some (sep, right) if the node split. *)
let rec insert_node node k v =
  match node with
  | Leaf l ->
    let pos = leaf_position l.keys k in
    if pos < Array.length l.keys && l.keys.(pos) = k then begin
      l.vals.(pos) <- v :: l.vals.(pos);
      None
    end
    else begin
      l.keys <- array_insert l.keys pos k;
      l.vals <- array_insert l.vals pos [ v ];
      if Array.length l.keys < order then None
      else begin
        (* Split the leaf in half; the right sibling's first key is the
           separator. *)
        let mid = Array.length l.keys / 2 in
        let right_keys = Array.sub l.keys mid (Array.length l.keys - mid) in
        let right_vals = Array.sub l.vals mid (Array.length l.vals - mid) in
        let right =
          Leaf { keys = right_keys; vals = right_vals; next = l.next }
        in
        l.keys <- Array.sub l.keys 0 mid;
        l.vals <- Array.sub l.vals 0 mid;
        l.next <- Some right;
        Some (right_keys.(0), right)
      end
    end
  | Interior n -> (
    let ci = child_index n.keys k in
    match insert_node n.children.(ci) k v with
    | None -> None
    | Some (sep, right) ->
      n.keys <- array_insert n.keys ci sep;
      n.children <- array_insert n.children (ci + 1) right;
      if Array.length n.children <= order then None
      else begin
        let midc = Array.length n.children / 2 in
        (* keys has one fewer entry than children; key midc-1 moves up. *)
        let up = n.keys.(midc - 1) in
        let right_node =
          Interior
            {
              keys = Array.sub n.keys midc (Array.length n.keys - midc);
              children =
                Array.sub n.children midc (Array.length n.children - midc);
            }
        in
        n.keys <- Array.sub n.keys 0 (midc - 1);
        n.children <- Array.sub n.children 0 midc;
        Some (up, right_node)
      end)

let insert t k v =
  t.size <- t.size + 1;
  match insert_node t.root k v with
  | None -> ()
  | Some (sep, right) ->
    t.root <- Interior { keys = [| sep |]; children = [| t.root; right |] }

let rec find_leaf node k =
  match node with
  | Leaf _ as l -> l
  | Interior n -> find_leaf n.children.(child_index n.keys k) k

let find t k =
  match find_leaf t.root k with
  | Leaf l ->
    let pos = leaf_position l.keys k in
    if pos < Array.length l.keys && l.keys.(pos) = k then List.rev l.vals.(pos)
    else []
  | Interior _ -> assert false

let mem t k = find t k <> []

let range t ~lo ~hi =
  let out = ref [] in
  let rec walk = function
    | None -> ()
    | Some (Leaf l) ->
      let stop = ref false in
      Array.iteri
        (fun i k ->
          if k > hi then stop := true
          else if k >= lo then
            List.iter (fun v -> out := (k, v) :: !out) (List.rev l.vals.(i)))
        l.keys;
      if not !stop then walk l.next
    | Some (Interior _) -> assert false
  in
  walk (Some (find_leaf t.root lo));
  List.rev !out

let iter t f =
  let rec leftmost = function
    | Leaf _ as l -> l
    | Interior n -> leftmost n.children.(0)
  in
  let rec walk = function
    | None -> ()
    | Some (Leaf l) ->
      Array.iteri
        (fun i k -> List.iter (fun v -> f k v) (List.rev l.vals.(i)))
        l.keys;
      walk l.next
    | Some (Interior _) -> assert false
  in
  walk (Some (leftmost t.root))

let min_key t =
  let rec leftmost = function
    | Leaf l -> if Array.length l.keys = 0 then None else Some l.keys.(0)
    | Interior n -> leftmost n.children.(0)
  in
  leftmost t.root

let max_key t =
  let rec rightmost = function
    | Leaf l ->
      let n = Array.length l.keys in
      if n = 0 then None else Some l.keys.(n - 1)
    | Interior n -> rightmost n.children.(Array.length n.children - 1)
  in
  rightmost t.root

let height t =
  let rec go acc = function
    | Leaf _ -> acc
    | Interior n -> go (acc + 1) n.children.(0)
  in
  go 1 t.root

let of_seq s =
  let t = create () in
  Seq.iter (fun (k, v) -> insert t k v) s;
  t
