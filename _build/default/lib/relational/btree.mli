(** In-memory B+-tree with integer keys.

    The index structure behind {!Index}: values live in the leaves, leaves
    are chained for range scans, and duplicate keys are allowed (inserts
    append). Fanout is fixed at {!order}. *)

type 'a t

val order : int
(** Maximum children per interior node. *)

val create : unit -> 'a t
val insert : 'a t -> int -> 'a -> unit
val length : 'a t -> int

val find : 'a t -> int -> 'a list
(** All values stored under the key (insertion order). *)

val mem : 'a t -> int -> bool

val range : 'a t -> lo:int -> hi:int -> (int * 'a) list
(** Entries with [lo <= key <= hi], ascending by key. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Ascending full traversal. *)

val min_key : 'a t -> int option
val max_key : 'a t -> int option

val height : 'a t -> int
(** Tree height (a 1-leaf tree has height 1). *)

val of_seq : (int * 'a) Seq.t -> 'a t
