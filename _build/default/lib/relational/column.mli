(** Compressed typed column vectors for the column store.

    Encodings: plain unboxed arrays, run-length (ints with long runs),
    frame-of-reference delta (narrow-range ints), and dictionary
    (strings). [compress] picks per-column by inspecting the data. *)

type t =
  | Int_plain of int array
  | Int_rle of { run_values : int array; run_starts : int array; len : int }
      (** [run_starts.(k)] is the row id where run [k] begins. *)
  | Int_for of { base : int; width : int; packed : int array; len : int }
      (** frame-of-reference: values stored as [base + small offset],
          bit-packed [width] bits each into 63-bit words. *)
  | Float_plain of float array
  | Str_dict of { dict : string array; codes : int array }

val compress : Value.ty -> Value.t array -> t
val length : t -> int
val get : t -> int -> Value.t

val iter : (int -> Value.t -> unit) -> t -> unit
(** Sequential decompressing scan; much faster than repeated [get]. *)

val encoding_name : t -> string
val byte_size : t -> int
(** Approximate in-memory footprint, for compression-ratio reporting. *)

val to_values : t -> Value.t array
