(** Volcano-style relational operators over lazy row streams.

    A [rel] pairs a schema with a lazy sequence of rows; operators compose
    pipelines that only do work when the sink forces them — so a timed
    query measures scan, decode, predicate, join and aggregate costs
    end-to-end. *)

type rel = { schema : Schema.t; rows : Value.t array Seq.t }

val of_list : Schema.t -> Value.t array list -> rel
val to_list : rel -> Value.t array list
val count : rel -> int

val scan_row_store : Row_store.t -> rel
val scan_col_store : Col_store.t -> string list -> rel
(** Late-materialization scan: only the named columns are read; the
    output schema is restricted to them (in that order). *)

val filter : Expr.t -> rel -> rel
val project : string list -> rel -> rel
val map_column : string -> Expr.t -> rel -> rel
(** [map_column name e r] appends a computed column. *)

val hash_join : on:(string * string) list -> rel -> rel -> rel
(** [hash_join ~on left right] equi-joins; builds a hash table on [right]
    (choose the smaller input as [right]); output schema is
    [Schema.concat left right]. *)

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

val aggregate : group_by:string list -> aggs:(string * agg) list -> rel -> rel
(** Hash aggregation; output columns are the group keys then the named
    aggregates. *)

val sort : by:(string * [ `Asc | `Desc ]) list -> rel -> rel
val limit : int -> rel -> rel

val column_floats : rel -> string -> float array
(** Materialize one column as floats (consumes the stream). *)

val guard : ?interval:int -> (unit -> unit) -> rel -> rel
(** [guard check r] invokes [check] every [interval] (default 4096) rows
    pulled through — the hook the engines use for cooperative query
    timeouts. *)

val merge_join : on:(string * string) list -> rel -> rel -> rel
(** Sort-merge equi-join: sorts both inputs on the key columns, then
    merges, emitting the cross product of each matching key group. Output
    schema and row multiset match {!hash_join}. *)
