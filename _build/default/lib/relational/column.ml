type t =
  | Int_plain of int array
  | Int_rle of { run_values : int array; run_starts : int array; len : int }
  | Int_for of { base : int; width : int; packed : int array; len : int }
  | Float_plain of float array
  | Str_dict of { dict : string array; codes : int array }

let length = function
  | Int_plain a -> Array.length a
  | Int_rle r -> r.len
  | Int_for f -> f.len
  | Float_plain a -> Array.length a
  | Str_dict d -> Array.length d.codes

(* --- bit packing for frame-of-reference --- *)

let bits_needed range =
  if range <= 0 then 1
  else begin
    let b = ref 0 and v = ref range in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let pack_ints base width values =
  let n = Array.length values in
  let per_word = 63 / width in
  let words = (n + per_word - 1) / per_word in
  let packed = Array.make words 0 in
  Array.iteri
    (fun i v ->
      let off = v - base in
      let w = i / per_word and slot = i mod per_word in
      packed.(w) <- packed.(w) lor (off lsl (slot * width)))
    values;
  packed

let unpack_int ~base ~width packed i =
  let per_word = 63 / width in
  let w = i / per_word and slot = i mod per_word in
  let mask = (1 lsl width) - 1 in
  base + ((packed.(w) lsr (slot * width)) land mask)

(* --- run-length --- *)

let rle_of_ints a =
  let n = Array.length a in
  let values = ref [] and starts = ref [] in
  let i = ref 0 in
  while !i < n do
    let v = a.(!i) in
    values := v :: !values;
    starts := !i :: !starts;
    incr i;
    while !i < n && a.(!i) = v do
      incr i
    done
  done;
  Int_rle
    {
      run_values = Array.of_list (List.rev !values);
      run_starts = Array.of_list (List.rev !starts);
      len = n;
    }

let count_runs a =
  let n = Array.length a in
  let runs = ref 0 in
  for i = 0 to n - 1 do
    if i = 0 || a.(i) <> a.(i - 1) then incr runs
  done;
  !runs

let compress_ints a =
  let n = Array.length a in
  if n = 0 then Int_plain [||]
  else begin
    let runs = count_runs a in
    if runs * 4 <= n then rle_of_ints a
    else begin
      let lo = Array.fold_left min a.(0) a in
      let hi = Array.fold_left max a.(0) a in
      let width = bits_needed (hi - lo) in
      if width <= 32 then
        Int_for { base = lo; width; packed = pack_ints lo width a; len = n }
      else Int_plain (Array.copy a)
    end
  end

let compress ty values =
  match ty with
  | Value.TInt -> compress_ints (Array.map Value.to_int values)
  | Value.TFloat -> Float_plain (Array.map Value.to_float values)
  | Value.TStr ->
    let tbl = Hashtbl.create 64 in
    let dict = ref [] and next = ref 0 in
    let codes =
      Array.map
        (fun v ->
          let s = match v with Value.Str s -> s | _ -> invalid_arg "Column" in
          match Hashtbl.find_opt tbl s with
          | Some c -> c
          | None ->
            let c = !next in
            Hashtbl.add tbl s c;
            dict := s :: !dict;
            incr next;
            c)
        values
    in
    Str_dict { dict = Array.of_list (List.rev !dict); codes }

let rle_find r i =
  (* Largest run index whose start <= i. *)
  let lo = ref 0 and hi = ref (Array.length r - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if r.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo

let get t i =
  if i < 0 || i >= length t then invalid_arg "Column.get: index";
  match t with
  | Int_plain a -> Value.Int a.(i)
  | Int_rle r -> Value.Int r.run_values.(rle_find r.run_starts i)
  | Int_for f -> Value.Int (unpack_int ~base:f.base ~width:f.width f.packed i)
  | Float_plain a -> Value.Float a.(i)
  | Str_dict d -> Value.Str d.dict.(d.codes.(i))

let iter f = function
  | Int_plain a -> Array.iteri (fun i v -> f i (Value.Int v)) a
  | Int_rle r ->
    let nruns = Array.length r.run_values in
    for k = 0 to nruns - 1 do
      let stop = if k + 1 < nruns then r.run_starts.(k + 1) else r.len in
      let v = Value.Int r.run_values.(k) in
      for i = r.run_starts.(k) to stop - 1 do
        f i v
      done
    done
  | Int_for fr ->
    for i = 0 to fr.len - 1 do
      f i (Value.Int (unpack_int ~base:fr.base ~width:fr.width fr.packed i))
    done
  | Float_plain a -> Array.iteri (fun i v -> f i (Value.Float v)) a
  | Str_dict d -> Array.iteri (fun i c -> f i (Value.Str d.dict.(c))) d.codes

let encoding_name = function
  | Int_plain _ -> "int-plain"
  | Int_rle _ -> "int-rle"
  | Int_for _ -> "int-for"
  | Float_plain _ -> "float-plain"
  | Str_dict _ -> "str-dict"

let byte_size = function
  | Int_plain a -> 8 * Array.length a
  | Int_rle r -> 16 * Array.length r.run_values
  | Int_for f -> 8 * Array.length f.packed
  | Float_plain a -> 8 * Array.length a
  | Str_dict d ->
    (4 * Array.length d.codes)
    + Array.fold_left (fun acc s -> acc + String.length s + 8) 0 d.dict

let to_values t =
  let out = Array.make (length t) (Value.Int 0) in
  iter (fun i v -> out.(i) <- v) t;
  out
