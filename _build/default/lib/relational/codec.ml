let encoded_size schema row =
  let n = Array.length row in
  if n <> Schema.arity schema then invalid_arg "Codec: arity";
  let size = ref 0 in
  Array.iter
    (fun v ->
      size :=
        !size
        +
        match v with
        | Value.Int _ | Value.Float _ -> 8
        | Value.Str s -> 4 + String.length s)
    row;
  !size

let encode schema row buf off =
  let pos = ref off in
  Array.iteri
    (fun i v ->
      (match (Schema.ty schema i, v) with
      | Value.TInt, Value.Int x ->
        Bytes.set_int64_le buf !pos (Int64.of_int x);
        pos := !pos + 8
      | Value.TFloat, Value.Float f ->
        Bytes.set_int64_le buf !pos (Int64.bits_of_float f);
        pos := !pos + 8
      | Value.TFloat, Value.Int x ->
        Bytes.set_int64_le buf !pos (Int64.bits_of_float (float_of_int x));
        pos := !pos + 8
      | Value.TStr, Value.Str s ->
        Bytes.set_int32_le buf !pos (Int32.of_int (String.length s));
        Bytes.blit_string s 0 buf (!pos + 4) (String.length s);
        pos := !pos + 4 + String.length s
      | _ -> invalid_arg "Codec.encode: type mismatch"))
    row;
  !pos - off

let decode schema buf off =
  let arity = Schema.arity schema in
  let row = Array.make arity (Value.Int 0) in
  let pos = ref off in
  for i = 0 to arity - 1 do
    match Schema.ty schema i with
    | Value.TInt ->
      row.(i) <- Value.Int (Int64.to_int (Bytes.get_int64_le buf !pos));
      pos := !pos + 8
    | Value.TFloat ->
      row.(i) <- Value.Float (Int64.float_of_bits (Bytes.get_int64_le buf !pos));
      pos := !pos + 8
    | Value.TStr ->
      let len = Int32.to_int (Bytes.get_int32_le buf !pos) in
      row.(i) <- Value.Str (Bytes.sub_string buf (!pos + 4) len);
      pos := !pos + 4 + len
  done;
  (row, !pos - off)
