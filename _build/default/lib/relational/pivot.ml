module Mat = Gb_linalg.Mat

type t = { matrix : Mat.t; row_ids : int array; col_ids : int array }

let of_triples ~row_col ~col_col ~value_col rel =
  let ri = Schema.index rel.Ops.schema row_col in
  let ci = Schema.index rel.Ops.schema col_col in
  let vi = Schema.index rel.Ops.schema value_col in
  (* Two passes would re-run the pipeline; materialize compactly instead. *)
  let triples = ref [] and n = ref 0 in
  Seq.iter
    (fun row ->
      triples :=
        (Value.to_int row.(ri), Value.to_int row.(ci), Value.to_float row.(vi))
        :: !triples;
      incr n)
    rel.Ops.rows;
  let row_set = Hashtbl.create 1024 and col_set = Hashtbl.create 1024 in
  List.iter
    (fun (r, c, _) ->
      if not (Hashtbl.mem row_set r) then Hashtbl.add row_set r ();
      if not (Hashtbl.mem col_set c) then Hashtbl.add col_set c ())
    !triples;
  let sorted_keys tbl =
    let keys = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
    let arr = Array.of_list keys in
    Array.sort compare arr;
    arr
  in
  let row_ids = sorted_keys row_set and col_ids = sorted_keys col_set in
  let row_map = Hashtbl.create (Array.length row_ids) in
  Array.iteri (fun i id -> Hashtbl.add row_map id i) row_ids;
  let col_map = Hashtbl.create (Array.length col_ids) in
  Array.iteri (fun i id -> Hashtbl.add col_map id i) col_ids;
  let matrix = Mat.create (Array.length row_ids) (Array.length col_ids) in
  List.iter
    (fun (r, c, v) ->
      Mat.unsafe_set matrix (Hashtbl.find row_map r) (Hashtbl.find col_map c) v)
    !triples;
  { matrix; row_ids; col_ids }

let to_triples ~row_col ~col_col ~value_col t =
  let schema =
    Schema.make
      [ (row_col, Value.TInt); (col_col, Value.TInt); (value_col, Value.TFloat) ]
  in
  let nr, nc = Mat.dims t.matrix in
  let rec go i j () =
    if i >= nr then Seq.Nil
    else if j >= nc then go (i + 1) 0 ()
    else
      Seq.Cons
        ( [|
            Value.Int t.row_ids.(i);
            Value.Int t.col_ids.(j);
            Value.Float (Mat.unsafe_get t.matrix i j);
          |],
          go i (j + 1) )
  in
  { Ops.schema; rows = go 0 0 }
