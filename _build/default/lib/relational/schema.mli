(** Table schemas: ordered, typed, named columns. *)

type t

val make : (string * Value.ty) list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val columns : t -> (string * Value.ty) list
val arity : t -> int
val index : t -> string -> int
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val ty : t -> int -> Value.ty
val name : t -> int -> string

val project : t -> string list -> t
(** Sub-schema in the given column order. *)

val concat : t -> t -> t
(** Join output schema; a duplicate name from the right side gets a
    ["_r"] suffix (repeatedly, until fresh). *)

val validate_row : t -> Value.t array -> bool
(** Arity and type check. *)

val pp : Format.formatter -> t -> unit
