(** Fixed-length bitmaps with bitwise combinators — the natural physical
    representation of the benchmark's gene-ontology membership matrix
    ("belongs_to[gene_id, go_id]" of 0/1 values) and of selection vectors
    in columnar execution. *)

type t

val create : int -> t
(** All-zeros bitmap of the given length. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool
val cardinality : t -> int

val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
(** Complement within the bitmap's length. *)

val iter_set : t -> (int -> unit) -> unit
(** Visit set-bit positions ascending. *)

val to_list : t -> int list
val of_list : int -> int list -> t
val of_pred : int -> (int -> bool) -> t

val inter_count : t -> t -> int
(** [cardinality (band a b)] without materializing. *)
