type t = { len : int; words : int array }

let bits_per_word = 62 (* stay clear of OCaml's int sign bit *)

let words_for len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitmap.create";
  { len; words = Array.make (max 1 (words_for len)) 0 }

let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitmap: index out of range"

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let get t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinality t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let zip op a b =
  if a.len <> b.len then invalid_arg "Bitmap: length mismatch";
  { len = a.len; words = Array.map2 op a.words b.words }

let band = zip ( land )
let bor = zip ( lor )
let bxor = zip ( lxor )

(* Mask for the valid bits of the final word. *)
let tail_mask t =
  let used = t.len mod bits_per_word in
  if used = 0 then -1 land max_int else (1 lsl used) - 1

let bnot t =
  let words = Array.map (fun w -> lnot w land ((1 lsl bits_per_word) - 1)) t.words in
  let out = { len = t.len; words } in
  if t.len > 0 then begin
    let last = Array.length words - 1 in
    words.(last) <- words.(last) land tail_mask t
  end;
  out

let iter_set t f =
  Array.iteri
    (fun wi word ->
      if word <> 0 then
        for b = 0 to bits_per_word - 1 do
          if word land (1 lsl b) <> 0 then begin
            let i = (wi * bits_per_word) + b in
            if i < t.len then f i
          end
        done)
    t.words

let to_list t =
  let out = ref [] in
  iter_set t (fun i -> out := i :: !out);
  List.rev !out

let of_list len l =
  let t = create len in
  List.iter (set t) l;
  t

let of_pred len pred =
  let t = create len in
  for i = 0 to len - 1 do
    if pred i then set t i
  done;
  t

let inter_count a b =
  if a.len <> b.len then invalid_arg "Bitmap: length mismatch";
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount (w land b.words.(i))) a.words;
  !acc
