(** Scalar expressions and predicates over rows. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t

val col : string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val ( =% ) : t -> t -> t
val ( <% ) : t -> t -> t
val ( <=% ) : t -> t -> t
val ( >% ) : t -> t -> t
val ( >=% ) : t -> t -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t

val columns : t -> string list
(** Distinct referenced column names. *)

val compile : Schema.t -> t -> Value.t array -> Value.t
(** Resolve column references against [schema] once; the returned closure
    evaluates rows. Raises [Not_found] at compile time for unknown
    columns. *)

val compile_pred : Schema.t -> t -> Value.t array -> bool
(** Like {!compile} but expects a boolean result (encoded as [Int 0/1]). *)
