(** Secondary indexes over stored tables: a B+-tree from an integer column
    to row payloads, with index-backed selection and index-nested-loop
    join. *)

type t

val build_row_store : Row_store.t -> on:string -> t
(** Index an int column of a row store (one pass; rows are materialized in
    the leaves). *)

val build_col_store : Col_store.t -> on:string -> cols:string list -> t
(** Index an int column of a column store, materializing only [cols]
    (which must include [on] if callers need it back). *)

val schema : t -> Schema.t
val key_column : t -> string
val entry_count : t -> int

val lookup : t -> int -> Ops.rel
(** Exact-match select via the index. *)

val range_scan : t -> lo:int -> hi:int -> Ops.rel
(** [lo <= key <= hi] select via the leaf chain. *)

val index_join : Ops.rel -> key:string -> t -> Ops.rel
(** Index-nested-loop join: stream the outer relation, probe the index for
    each row; output schema is [outer ++ indexed] (concat-renamed), like
    {!Ops.hash_join}. *)
