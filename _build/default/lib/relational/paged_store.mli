(** A heap file over the {!Buffer_pool}: the row store's layout with
    LRU-managed pages that spill to disk, so tables larger than the frame
    budget still scan correctly (at disk-fault cost). *)

type t

val create : ?pool_frames:int -> Schema.t -> t
(** Fresh table over a fresh (temp-file-backed) pool. *)

val schema : t -> Schema.t
val insert : t -> Value.t array -> unit
val row_count : t -> int
val page_count : t -> int

val to_seq : t -> Value.t array Seq.t
(** Sequential scan; evicted pages fault in from disk. *)

val iter : t -> (Value.t array -> unit) -> unit
val of_rows : ?pool_frames:int -> Schema.t -> Value.t array list -> t
val pool_stats : t -> Buffer_pool.stats
val close : t -> unit
