(** Heap-file row store (the Postgres-style physical layout): rows encoded
    onto fixed-size pages; scans decode every tuple. *)

type t

val page_size : int

val create : Schema.t -> t
val schema : t -> Schema.t
val insert : t -> Value.t array -> unit
val insert_all : t -> Value.t array list -> unit
val row_count : t -> int
val page_count : t -> int

val iter : t -> (Value.t array -> unit) -> unit
(** Full scan in insertion order, decoding each row. *)

val fold : t -> init:'a -> f:('a -> Value.t array -> 'a) -> 'a

val to_seq : t -> Value.t array Seq.t
(** Lazy scan; rows decode as the sequence is consumed. *)

val of_rows : Schema.t -> Value.t array list -> t
