(** A paged buffer pool with LRU eviction and a disk backing file.

    The paper's end-to-end discussion stresses that a competitive platform
    must "scale to problems that are larger than main memory"; this module
    provides that capability for the row store: pages beyond the pool's
    frame budget are spilled to a temporary file and transparently read
    back on access. *)

type t

val create : ?frames:int -> ?path:string -> page_bytes:int -> unit -> t
(** [frames] is the number of in-memory page frames (default 64);
    [path] the backing file (default: a fresh temp file, deleted on
    [close]). *)

val page_bytes : t -> int
val page_count : t -> int
(** Total pages allocated (resident + spilled). *)

val resident_pages : t -> int

val allocate : t -> int
(** New zeroed page; returns its page id. *)

val with_page : t -> int -> (Bytes.t -> 'a) -> 'a
(** Pin page [id], run the function on its frame (reads and writes to the
    bytes are retained), unpin. The page is marked dirty. Faults the page
    in from disk if evicted. *)

val read_page : t -> int -> (Bytes.t -> 'a) -> 'a
(** Like {!with_page} but the page is not marked dirty. *)

type stats = { hits : int; misses : int; evictions : int; writes : int }

val stats : t -> stats
val flush : t -> unit
(** Write every dirty resident page to the backing file. *)

val close : t -> unit
(** Flush and release the backing file (deletes it if it was a temp). *)
