type t = {
  tree : Value.t array Btree.t;
  schema : Schema.t;
  key_column : string;
}

let build_row_store rs ~on =
  let schema = Row_store.schema rs in
  let ki = Schema.index schema on in
  let tree = Btree.create () in
  Row_store.iter rs (fun row -> Btree.insert tree (Value.to_int row.(ki)) row);
  { tree; schema; key_column = on }

let build_col_store cs ~on ~cols =
  let schema = Schema.project (Col_store.schema cs) cols in
  let ki = Schema.index schema on in
  let tree = Btree.create () in
  Col_store.iter_cols cs cols (fun row ->
      Btree.insert tree (Value.to_int row.(ki)) row);
  { tree; schema; key_column = on }

let schema t = t.schema
let key_column t = t.key_column
let entry_count t = Btree.length t.tree

let lookup t k =
  { Ops.schema = t.schema; rows = List.to_seq (Btree.find t.tree k) }

let range_scan t ~lo ~hi =
  {
    Ops.schema = t.schema;
    rows = List.to_seq (List.map snd (Btree.range t.tree ~lo ~hi));
  }

let index_join outer ~key t =
  let ki = Schema.index outer.Ops.schema key in
  let out_schema = Schema.concat outer.Ops.schema t.schema in
  {
    Ops.schema = out_schema;
    rows =
      Seq.concat_map
        (fun orow ->
          Btree.find t.tree (Value.to_int orow.(ki))
          |> List.to_seq
          |> Seq.map (fun irow -> Array.append orow irow))
        outer.Ops.rows;
  }
