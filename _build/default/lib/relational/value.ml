type t = Int of int | Float of float | Str of string
type ty = TInt | TFloat | TStr

let type_of = function Int _ -> TInt | Float _ -> TFloat | Str _ -> TStr

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Int _, Str _ | Float _, Str _ -> -1
  | Str _, Int _ | Str _, Float _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_int = function
  | Int i -> i
  | Float _ | Str _ -> invalid_arg "Value.to_int"

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Str _ -> invalid_arg "Value.to_float"

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.9g" f
  | Str s -> s

let of_string ty s =
  match ty with
  | TInt -> Int (int_of_string s)
  | TFloat -> Float (float_of_string s)
  | TStr -> Str s

let pp fmt v = Format.pp_print_string fmt (to_string v)

let pp_ty fmt = function
  | TInt -> Format.pp_print_string fmt "int"
  | TFloat -> Format.pp_print_string fmt "float"
  | TStr -> Format.pp_print_string fmt "string"
