(** Linear algebra "simulated in SQL" — the MADlib-style path the paper
    calls out: matrix operations expressed as joins and aggregates over
    triple-form relations, executed by the interpreted relational operators
    rather than a native kernel. Deliberately slow; that slowness is a
    measured result of the benchmark, not an accident. *)

val triple_schema : Schema.t
(** (i int, j int, v float). *)

val of_matrix : Gb_linalg.Mat.t -> Ops.rel
val to_matrix : rows:int -> cols:int -> Ops.rel -> Gb_linalg.Mat.t

val transpose : Ops.rel -> Ops.rel

val matmul : ?check:(unit -> unit) -> Ops.rel -> Ops.rel -> Ops.rel
(** SELECT a.i, b.j, SUM(a.v*b.v) FROM a JOIN b ON a.j = b.i GROUP BY … *)

val center_columns : rows:int -> Ops.rel -> Ops.rel
(** Subtract per-column means, as a join against a per-column aggregate. *)

val covariance : ?check:(unit -> unit) -> rows:int -> Ops.rel -> Ops.rel
(** Column covariance of an [rows x n] triple relation. *)

val power_iteration_eigs :
  ?check:(unit -> unit) ->
  rows:int -> cols:int -> k:int -> iters:int -> Ops.rel -> float array
(** Top-[k] eigenvalue estimates of [A{^T}A] by repeated SQL mat-vec with
    deflation — how an SVD ends up implemented when the engine only speaks
    SQL. *)
