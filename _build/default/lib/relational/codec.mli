(** Binary row encoding for the row store's pages.

    Tuples are stored in "highly encoded form on storage blocks" (as the
    paper puts it for tabular row stores): ints and floats as fixed 8-byte
    fields, strings length-prefixed. The decode cost paid on every scan is
    part of what the benchmark measures. *)

val encoded_size : Schema.t -> Value.t array -> int

val encode : Schema.t -> Value.t array -> Bytes.t -> int -> int
(** [encode schema row buf off] writes at [off], returns bytes written. *)

val decode : Schema.t -> Bytes.t -> int -> Value.t array * int
(** [decode schema buf off] returns the row and bytes consumed. *)
