(** Restructuring between relational triple form and dense matrices — the
    "restructure the information as a matrix (if required)" step of the
    benchmark queries, which the relational engines pay for and the array
    engine avoids. *)

type t = {
  matrix : Gb_linalg.Mat.t;
  row_ids : int array; (** matrix row [i] holds entity [row_ids.(i)] *)
  col_ids : int array;
}

val of_triples :
  row_col:string -> col_col:string -> value_col:string -> Ops.rel -> t
(** Consumes a stream of (row id, column id, value) triples; ids are
    discovered from the data and mapped densely in ascending order. Cells
    absent from the stream are 0. *)

val to_triples :
  row_col:string -> col_col:string -> value_col:string -> t -> Ops.rel
