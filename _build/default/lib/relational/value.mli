(** Cell values for the relational engines. *)

type t = Int of int | Float of float | Str of string

type ty = TInt | TFloat | TStr

val type_of : t -> ty
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_int : t -> int
(** Raises [Invalid_argument] on non-integers. *)

val to_float : t -> float
(** Accepts both [Int] (widened) and [Float]. *)

val to_string : t -> string
(** CSV-compatible rendering. *)

val of_string : ty -> string -> t
(** Parse according to the expected type. *)

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
