(** Probability distributions needed by the statistical tests. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26 refinement; |error| < 1.2e-7,
    adequate for p-values). *)

val erfc : float -> float

val normal_cdf : float -> float
(** Standard normal cumulative distribution. *)

val normal_sf : float -> float
(** Survival function [1 - cdf], computed to preserve tail precision. *)

val normal_two_sided_p : float -> float
(** [normal_two_sided_p z] is [2 * sf |z|], the two-sided p-value of a
    z-statistic. *)
