(* Lanczos coefficients (g = 7, n = 9). *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x <= 0. then invalid_arg "Special.log_gamma: x <= 0"
  else if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else begin
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* Series expansion for P(a,x), valid for x < a + 1. *)
let gamma_p_series a x =
  let gln = log_gamma a in
  let ap = ref a and sum = ref (1. /. a) and del = ref (1. /. a) in
  let continue_ = ref true in
  let iters = ref 0 in
  while !continue_ && !iters < 500 do
    incr iters;
    ap := !ap +. 1.;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. 1e-15 then continue_ := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. gln)

(* Continued fraction for Q(a,x), valid for x >= a + 1 (modified Lentz). *)
let gamma_q_cf a x =
  let gln = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue_ = ref true in
  while !continue_ && !i < 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < 1e-15 then continue_ := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p a x =
  if a <= 0. then invalid_arg "Special.gamma_p: a <= 0";
  if x < 0. then invalid_arg "Special.gamma_p: x < 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q a x = 1. -. gamma_p a x

(* Incomplete beta via the standard continued fraction (NR betacf). *)
let betacf a b x =
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue_ = ref true in
  while !continue_ && !m < 300 do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    let aa =
      -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
    in
    d := 1. +. (aa *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (aa /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.) < 1e-14 then continue_ := false;
    incr m
  done;
  !h

let beta_inc a b x =
  if a <= 0. || b <= 0. then invalid_arg "Special.beta_inc: a, b > 0 required";
  if x < 0. || x > 1. then invalid_arg "Special.beta_inc: x in [0,1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    let front =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log (1. -. x)))
    in
    if x < (a +. 1.) /. (a +. b +. 2.) then front *. betacf a b x /. a
    else 1. -. (front *. betacf b a (1. -. x) /. b)
  end
