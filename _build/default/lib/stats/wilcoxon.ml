type result = { u : float; z : float; p_value : float; rank_sum : float }

let compute ~n1 ~n2 ~rank_sum ~tie_term =
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  let n = n1f +. n2f in
  let u = rank_sum -. (n1f *. (n1f +. 1.) /. 2.) in
  let mean_u = n1f *. n2f /. 2. in
  let var_u =
    n1f *. n2f /. 12. *. (n +. 1. -. (tie_term /. (n *. (n -. 1.))))
  in
  let z = if var_u <= 0. then 0. else (u -. mean_u) /. sqrt var_u in
  {
    u;
    z;
    p_value = Distributions.normal_two_sided_p z;
    rank_sum;
  }

let tie_term_of_groups groups =
  List.fold_left
    (fun acc t ->
      let t = float_of_int t in
      acc +. ((t *. t *. t) -. t))
    0. groups

let rank_sum_test xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Wilcoxon.rank_sum_test: empty sample";
  let all = Array.append xs ys in
  let r = Ranking.ranks all in
  let rank_sum = ref 0. in
  for i = 0 to n1 - 1 do
    rank_sum := !rank_sum +. r.(i)
  done;
  let tie_term = tie_term_of_groups (Ranking.tie_groups all) in
  compute ~n1 ~n2 ~rank_sum:!rank_sum ~tie_term

let from_ranks ~ranks ~in_group =
  let n = Array.length ranks in
  if Array.length in_group <> n then invalid_arg "Wilcoxon.from_ranks: length";
  let n1 = Array.fold_left (fun a b -> if b then a + 1 else a) 0 in_group in
  let n2 = n - n1 in
  if n1 = 0 || n2 = 0 then invalid_arg "Wilcoxon.from_ranks: empty class";
  let rank_sum = ref 0. in
  for i = 0 to n - 1 do
    if in_group.(i) then rank_sum := !rank_sum +. ranks.(i)
  done;
  (* Rebuild tie multiplicities from the rank values themselves: a group of
     t tied entries shares one distinct mid-rank value repeated t times. *)
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      let c = try Hashtbl.find counts r with Not_found -> 0 in
      Hashtbl.replace counts r (c + 1))
    ranks;
  let tie_term =
    Hashtbl.fold
      (fun _ t acc ->
        let t = float_of_int t in
        acc +. ((t *. t *. t) -. t))
      counts 0.
  in
  compute ~n1 ~n2 ~rank_sum:!rank_sum ~tie_term
