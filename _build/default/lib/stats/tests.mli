(** Additional hypothesis tests used in microarray analysis pipelines
    alongside the benchmark's Wilcoxon: Student/Welch t-tests and
    chi-squared, plus Benjamini–Hochberg FDR control for the many-GO-terms
    setting of Query 5. *)

type t_result = { t : float; df : float; p_value : float }

val student_t_sf : float -> df:float -> float
(** Upper tail of the Student-t distribution. *)

val t_test : float array -> float array -> t_result
(** Welch's two-sample t-test (unequal variances), two-sided. Both
    samples need at least two observations. *)

val t_test_equal_var : float array -> float array -> t_result
(** Pooled-variance Student t-test, two-sided. *)

type chi2_result = { chi2 : float; df : int; p_value : float }

val chi2_goodness : observed:float array -> expected:float array -> chi2_result
(** Pearson goodness-of-fit; expected counts must be positive. *)

val chi2_independence : float array array -> chi2_result
(** Test of independence on a contingency table (rows x cols >= 2x2). *)

val benjamini_hochberg : (int * float) list -> (int * float) list
(** [benjamini_hochberg results] converts raw p-values to BH-adjusted
    q-values, preserving the ids; output sorted ascending by q. *)
