lib/stats/wilcoxon.ml: Array Distributions Hashtbl List Ranking
