lib/stats/ranking.ml: Array Gb_util List
