lib/stats/special.mli:
