lib/stats/distributions.mli:
