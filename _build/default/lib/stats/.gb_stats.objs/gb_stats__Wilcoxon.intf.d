lib/stats/wilcoxon.mli:
