lib/stats/tests.mli:
