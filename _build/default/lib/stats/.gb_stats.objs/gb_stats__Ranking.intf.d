lib/stats/ranking.mli:
