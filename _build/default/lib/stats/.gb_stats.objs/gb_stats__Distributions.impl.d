lib/stats/distributions.ml: Float
