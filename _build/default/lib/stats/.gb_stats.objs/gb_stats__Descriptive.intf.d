lib/stats/descriptive.mli:
