lib/stats/tests.ml: Array Descriptive Float Special
