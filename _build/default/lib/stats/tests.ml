type t_result = { t : float; df : float; p_value : float }

let student_t_sf t ~df =
  if df <= 0. then invalid_arg "student_t_sf: df <= 0";
  let x = df /. (df +. (t *. t)) in
  let tail = 0.5 *. Special.beta_inc (df /. 2.) 0.5 x in
  if t >= 0. then tail else 1. -. tail

let two_sided_t t ~df = Float.min 1. (2. *. student_t_sf (Float.abs t) ~df)

let check2 xs ys =
  if Array.length xs < 2 || Array.length ys < 2 then
    invalid_arg "t_test: need at least two observations per sample"

let t_test xs ys =
  check2 xs ys;
  let n1 = float_of_int (Array.length xs) in
  let n2 = float_of_int (Array.length ys) in
  let v1 = Descriptive.variance xs /. n1 in
  let v2 = Descriptive.variance ys /. n2 in
  let se = sqrt (v1 +. v2) in
  let t =
    if se = 0. then 0. else (Descriptive.mean xs -. Descriptive.mean ys) /. se
  in
  (* Welch–Satterthwaite degrees of freedom. *)
  let df =
    if v1 +. v2 = 0. then n1 +. n2 -. 2.
    else
      ((v1 +. v2) ** 2.)
      /. ((v1 *. v1 /. (n1 -. 1.)) +. (v2 *. v2 /. (n2 -. 1.)))
  in
  { t; df; p_value = two_sided_t t ~df }

let t_test_equal_var xs ys =
  check2 xs ys;
  let n1 = float_of_int (Array.length xs) in
  let n2 = float_of_int (Array.length ys) in
  let df = n1 +. n2 -. 2. in
  let pooled =
    (((n1 -. 1.) *. Descriptive.variance xs)
    +. ((n2 -. 1.) *. Descriptive.variance ys))
    /. df
  in
  let se = sqrt (pooled *. ((1. /. n1) +. (1. /. n2))) in
  let t =
    if se = 0. then 0. else (Descriptive.mean xs -. Descriptive.mean ys) /. se
  in
  { t; df; p_value = two_sided_t t ~df }

type chi2_result = { chi2 : float; df : int; p_value : float }

let chi2_p chi2 df =
  if df <= 0 then invalid_arg "chi2: df <= 0";
  Special.gamma_q (float_of_int df /. 2.) (chi2 /. 2.)

let chi2_goodness ~observed ~expected =
  let n = Array.length observed in
  if Array.length expected <> n || n < 2 then
    invalid_arg "chi2_goodness: need matching arrays of length >= 2";
  let chi2 = ref 0. in
  for i = 0 to n - 1 do
    if expected.(i) <= 0. then invalid_arg "chi2_goodness: expected <= 0";
    let d = observed.(i) -. expected.(i) in
    chi2 := !chi2 +. (d *. d /. expected.(i))
  done;
  let df = n - 1 in
  { chi2 = !chi2; df; p_value = chi2_p !chi2 df }

let chi2_independence table =
  let rows = Array.length table in
  if rows < 2 then invalid_arg "chi2_independence: need >= 2 rows";
  let cols = Array.length table.(0) in
  if cols < 2 then invalid_arg "chi2_independence: need >= 2 cols";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "chi2_independence: ragged")
    table;
  let row_tot = Array.map (Array.fold_left ( +. ) 0.) table in
  let col_tot = Array.make cols 0. in
  Array.iter (Array.iteri (fun j v -> col_tot.(j) <- col_tot.(j) +. v)) table;
  let total = Array.fold_left ( +. ) 0. row_tot in
  if total <= 0. then invalid_arg "chi2_independence: empty table";
  let chi2 = ref 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let e = row_tot.(i) *. col_tot.(j) /. total in
      if e > 0. then begin
        let d = table.(i).(j) -. e in
        chi2 := !chi2 +. (d *. d /. e)
      end
    done
  done;
  let df = (rows - 1) * (cols - 1) in
  { chi2 = !chi2; df; p_value = chi2_p !chi2 df }

let benjamini_hochberg results =
  let arr = Array.of_list results in
  let m = Array.length arr in
  if m = 0 then []
  else begin
    Array.sort (fun (_, p1) (_, p2) -> Float.compare p1 p2) arr;
    (* q_i = min over j >= i of p_j * m / j (enforcing monotonicity). *)
    let q = Array.make m 0. in
    let running = ref 1. in
    for i = m - 1 downto 0 do
      let _, p = arr.(i) in
      let candidate = p *. float_of_int m /. float_of_int (i + 1) in
      running := Float.min !running candidate;
      q.(i) <- !running
    done;
    Array.to_list (Array.mapi (fun i (id, _) -> (id, q.(i))) arr)
  end
