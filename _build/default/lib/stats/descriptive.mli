(** Descriptive statistics. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for fewer than two
    observations. *)

val std : float array -> float
val median : float array -> float
val quantile : float array -> float -> float
(** Linear-interpolation quantile, [q] in [\[0,1\]]. Array must be
    non-empty. *)

val covariance : float array -> float array -> float
(** Sample covariance of two equal-length series. *)

val pearson : float array -> float array -> float
