(** Mid-rank assignment with tie handling, as used by rank-sum tests. *)

val ranks : float array -> float array
(** [ranks a] assigns 1-based ranks; tied values share the average of the
    ranks they span. *)

val tie_groups : float array -> int list
(** Sizes of each group of tied values (groups of size 1 included), in
    sorted order — used for the tie correction of the rank-sum variance. *)
