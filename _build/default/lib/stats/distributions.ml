(* erfc via the Numerical-Recipes rational Chebyshev approximation:
   relative error below 1.2e-7 everywhere, which is ample for test
   p-values. *)
let erfc_nr x =
  let z = Float.abs x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. (t
       *. (1.00002368
          +. (t
             *. (0.37409196
                +. (t
                   *. (0.09678418
                      +. (t
                         *. (-0.18628806
                            +. (t
                               *. (0.27886807
                                  +. (t
                                     *. (-1.13520398
                                        +. (t
                                           *. (1.48851587
                                              +. (t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0. then ans else 2. -. ans

let erfc = erfc_nr
let erf x = 1. -. erfc x

let sqrt2 = sqrt 2.

let normal_cdf z = 0.5 *. erfc (-.z /. sqrt2)
let normal_sf z = 0.5 *. erfc (z /. sqrt2)
let normal_two_sided_p z = Float.min 1. (2. *. normal_sf (Float.abs z))
