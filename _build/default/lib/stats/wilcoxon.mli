(** Wilcoxon rank-sum (Mann–Whitney) test — the statistical test the
    benchmark's enrichment query (Query 5) prescribes for deciding whether
    a gene set sits at the top or bottom of an expression ranking. *)

type result = {
  u : float; (** Mann–Whitney U for the first sample *)
  z : float; (** tie-corrected normal approximation z-statistic *)
  p_value : float; (** two-sided *)
  rank_sum : float; (** rank sum of the first sample *)
}

val rank_sum_test : float array -> float array -> result
(** [rank_sum_test xs ys] tests whether [xs] and [ys] come from the same
    distribution. Both samples must be non-empty. *)

val from_ranks : ranks:float array -> in_group:bool array -> result
(** Variant for the enrichment workflow: the full population has already
    been ranked; [in_group] flags the members of the gene set. Tie
    correction is derived from the rank multiplicities. Requires at least
    one member in each class. *)
