let ranks a =
  let n = Array.length a in
  let idx = Gb_util.Order.argsort a in
  let out = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && a.(idx.(!j + 1)) = a.(idx.(!i)) do
      incr j
    done;
    (* positions !i..!j (0-based) are tied; average 1-based rank *)
    let avg = float_of_int (!i + !j + 2) /. 2. in
    for k = !i to !j do
      out.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  out

let tie_groups a =
  let n = Array.length a in
  let idx = Gb_util.Order.argsort a in
  let groups = ref [] in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && a.(idx.(!j + 1)) = a.(idx.(!i)) do
      incr j
    done;
    groups := (!j - !i + 1) :: !groups;
    i := !j + 1
  done;
  List.rev !groups
