(** Special functions backing the test distributions: log-gamma,
    regularized incomplete gamma (chi-squared tails) and regularized
    incomplete beta (Student-t tails). *)

val log_gamma : float -> float
(** Lanczos approximation, x > 0. *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma P(a, x),
    for [a > 0], [x >= 0]. *)

val gamma_q : float -> float -> float
(** Upper tail, [1 - gamma_p]. *)

val beta_inc : float -> float -> float -> float
(** [beta_inc a b x] is the regularized incomplete beta I_x(a, b) for
    [a, b > 0] and [x] in [\[0, 1\]] (continued-fraction evaluation). *)
