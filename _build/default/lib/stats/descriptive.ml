let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      a;
    !acc /. float_of_int (n - 1)
  end

let std a = sqrt (variance a)

let quantile a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Descriptive.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q";
  let s = Array.copy a in
  Array.sort Float.compare s;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. float_of_int lo in
  (s.(lo) *. (1. -. frac)) +. (s.(hi) *. frac)

let median a = quantile a 0.5

let covariance x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Descriptive.covariance: length";
  if n < 2 then 0.
  else begin
    let mx = mean x and my = mean y in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let pearson x y =
  let c = covariance x y in
  let sx = std x and sy = std y in
  if sx = 0. || sy = 0. then 0. else c /. (sx *. sy)
