lib/datagen/generate.ml: Array Gb_linalg Gb_util Hashtbl List Spec
