lib/datagen/seqdata.ml: Array Filename Float Fun Gb_linalg Gb_util Generate Printf Sys
