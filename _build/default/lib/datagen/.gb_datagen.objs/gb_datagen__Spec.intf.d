lib/datagen/spec.mli: Format
