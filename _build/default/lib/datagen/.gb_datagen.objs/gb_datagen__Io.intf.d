lib/datagen/io.mli: Generate
