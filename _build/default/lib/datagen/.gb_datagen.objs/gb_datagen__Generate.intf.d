lib/datagen/generate.mli: Gb_linalg Spec
