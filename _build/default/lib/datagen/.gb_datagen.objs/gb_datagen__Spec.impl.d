lib/datagen/spec.ml: Format
