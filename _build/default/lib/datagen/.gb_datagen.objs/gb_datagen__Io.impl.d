lib/datagen/io.ml: Array Filename Fun Gb_linalg Generate List Printf Spec String Sys
