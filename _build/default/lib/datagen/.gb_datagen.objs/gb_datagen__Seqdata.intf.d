lib/datagen/seqdata.mli: Gb_linalg Generate
