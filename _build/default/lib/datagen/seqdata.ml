module Mat = Gb_linalg.Mat
module Prng = Gb_util.Prng

type t = {
  counts : int array array;
  library_sizes : int array;
  dispersion : float;
}

(* Marsaglia–Tsang gamma sampler (shape >= 1 via boost for shape < 1). *)
let rec gamma_sample rng ~shape =
  if shape < 1. then begin
    let u = Prng.uniform rng in
    gamma_sample rng ~shape:(shape +. 1.) *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec draw () =
      let x = Prng.normal rng in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then draw ()
      else begin
        let u = Prng.uniform rng in
        let x2 = x *. x in
        if u < 1. -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1. -. v +. log v)) then d *. v
        else draw ()
      end
    in
    draw ()
  end

(* Poisson: Knuth's product method for small means, normal approximation
   (rounded, clamped) for large ones. *)
let poisson_sample rng ~mean =
  if mean <= 0. then 0
  else if mean < 30. then begin
    let l = exp (-.mean) in
    let k = ref 0 and p = ref 1. in
    let continue_ = ref true in
    while !continue_ do
      incr k;
      p := !p *. Prng.uniform rng;
      if !p <= l then continue_ := false
    done;
    !k - 1
  end
  else
    let v = mean +. (sqrt mean *. Prng.normal rng) in
    max 0 (int_of_float (Float.round v))

(* Negative binomial as a gamma-Poisson mixture. *)
let nb_sample rng ~mean ~dispersion =
  if mean <= 0. then 0
  else begin
    let shape = 1. /. dispersion in
    let g = gamma_sample rng ~shape in
    poisson_sample rng ~mean:(g *. dispersion *. mean)
  end

let of_expression ?(seed = 0x5E9L) ?(dispersion = 0.3)
    ?(mean_depth = 20.) (ds : Generate.t) =
  let rng = Prng.create seed in
  let p, g = Mat.dims ds.expression in
  (* Per-patient library-size factor (sequencing depth varies by lane). *)
  let lib_factor = Array.init p (fun _ -> 0.5 +. Prng.float rng 1.0) in
  let counts =
    Array.init p (fun i ->
        Array.init g (fun j ->
            let mean =
              mean_depth *. lib_factor.(i)
              *. exp (Mat.unsafe_get ds.expression i j /. 2.)
            in
            nb_sample rng ~mean ~dispersion))
  in
  let library_sizes =
    Array.map (fun row -> Array.fold_left ( + ) 0 row) counts
  in
  { counts; library_sizes; dispersion }

let counts_per_million t =
  let p = Array.length t.counts in
  let g = if p = 0 then 0 else Array.length t.counts.(0) in
  Mat.init p g (fun i j ->
      let lib = float_of_int (max 1 t.library_sizes.(i)) in
      float_of_int t.counts.(i).(j) *. 1e6 /. lib)

let log_cpm t =
  Mat.map (fun x -> log (x +. 1.) /. log 2.) (counts_per_million t)

let write_csv ~dir t =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (Filename.concat dir "counts.csv") in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "gene_id,patient_id,count\n";
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j c -> Printf.fprintf oc "%d,%d,%d\n" j i c)
            row)
        t.counts)
