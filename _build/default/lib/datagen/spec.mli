(** Benchmark dataset size presets.

    The paper's microarray sizes are 5Kx5K (small), 15Kx20K (medium),
    30Kx40K (large) and 60Kx70K (extra large; no tested system could run
    it). This reproduction scales every dimension down by [scale_divisor]
    (25) so the full suite runs on one machine while preserving the ratios
    between sizes, which is what the figures sweep. *)

type size = Small | Medium | Large | XLarge

type t = {
  size : size;
  genes : int;
  patients : int;
  go_terms : int;
  diseases : int;
}

val scale_divisor : int

val paper_dims : size -> int * int
(** [(genes, patients)] as published. *)

val of_size : size -> t
(** Scaled-down preset. *)

val custom : genes:int -> patients:int -> t
(** Arbitrary dimensions (classified as the nearest [size]); used by tests
    and examples. *)

val label : size -> string
(** e.g. ["5k x 5k"] — the paper's axis labels. *)

val all_tested : size list
(** The three sizes the paper reports results for. *)

val pp : Format.formatter -> t -> unit
