(** Sequencing-style count data.

    The paper notes its "data representations and operations … can be
    extended to include other types of genomic data such as sequencing
    data". This module derives RNA-seq-like read counts from a generated
    microarray data set: counts per (patient, gene) follow a negative
    binomial whose mean tracks the expression value — the standard model
    for over-dispersed sequencing counts — plus per-patient library-size
    variation. *)

type t = {
  counts : int array array; (** [patients x genes] read counts *)
  library_sizes : int array; (** total reads per patient *)
  dispersion : float;
}

val of_expression :
  ?seed:int64 -> ?dispersion:float -> ?mean_depth:float -> Generate.t -> t
(** [of_expression ds] samples counts with per-cell mean
    [mean_depth * exp(expression / 2)] (default depth 20) and negative
    binomial dispersion (default 0.3). Deterministic for a seed. *)

val counts_per_million : t -> Gb_linalg.Mat.t
(** Library-size normalization: counts scaled to reads-per-million, the
    form the benchmark's analytics run on. *)

val log_cpm : t -> Gb_linalg.Mat.t
(** [log2(cpm + 1)] — the usual variance-stabilized form. *)

val write_csv : dir:string -> t -> unit
(** Writes [counts.csv] as (gene_id, patient_id, count) triples. *)
