type size = Small | Medium | Large | XLarge

type t = {
  size : size;
  genes : int;
  patients : int;
  go_terms : int;
  diseases : int;
}

let scale_divisor = 25

let paper_dims = function
  | Small -> (5_000, 5_000)
  | Medium -> (15_000, 20_000)
  | Large -> (30_000, 40_000)
  | XLarge -> (60_000, 70_000)

let go_terms_for genes = max 10 (genes / 10)

let of_size size =
  let g, p = paper_dims size in
  let genes = g / scale_divisor and patients = p / scale_divisor in
  { size; genes; patients; go_terms = go_terms_for genes; diseases = 21 }

let classify genes patients =
  let cells = genes * patients in
  if cells <= 200 * 200 then Small
  else if cells <= 600 * 800 then Medium
  else if cells <= 1200 * 1600 then Large
  else XLarge

let custom ~genes ~patients =
  if genes <= 0 || patients <= 0 then invalid_arg "Spec.custom: dimensions";
  {
    size = classify genes patients;
    genes;
    patients;
    go_terms = go_terms_for genes;
    diseases = 21;
  }

let label = function
  | Small -> "5k x 5k"
  | Medium -> "15k x 20k"
  | Large -> "30k x 40k"
  | XLarge -> "60k x 70k"

let all_tested = [ Small; Medium; Large ]

let pp fmt t =
  Format.fprintf fmt "%s (scaled: %d genes x %d patients, %d GO terms)"
    (label t.size) t.genes t.patients t.go_terms
