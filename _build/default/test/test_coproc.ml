open Gb_coproc
module Sim = Gb_util.Clock.Sim

let dev = Device.xeon_phi_5110p

let test_transfer_time_monotone () =
  Alcotest.(check bool) "more bytes, more time"
    (Device.transfer_time dev ~bytes:1_000_000
    < Device.transfer_time dev ~bytes:10_000_000)
    true

let test_transfer_spill_penalty () =
  let fits = Device.transfer_time dev ~bytes:dev.Device.memory_bytes in
  let spills = Device.transfer_time dev ~bytes:(2 * dev.Device.memory_bytes) in
  (* The spilling transfer must cost more than twice the fitting one
     (proportional cost would be exactly 2x minus latency). *)
  Alcotest.(check bool) "spill penalty" (spills > 2. *. fits) true

let test_speedups_ordered () =
  Alcotest.(check bool) "blas2 fastest"
    (dev.Device.speedup Device.Blas2 > dev.Device.speedup Device.Stat)
    true;
  Alcotest.(check bool) "light near 1"
    (dev.Device.speedup Device.Light < 1.5)
    true

let test_offload_beats_host_on_heavy_kernel () =
  let work () = Unix.sleepf 0.05 in
  let host = Sim.create () in
  Device.host_time host work;
  let phi = Sim.create () in
  Device.offload dev phi ~bytes_in:1_000_000 ~bytes_out:1_000 Device.Blas3 work;
  Alcotest.(check bool) "offload faster" (Sim.now phi < Sim.now host) true

let test_offload_loses_on_light_kernel_with_big_transfer () =
  let work () = Unix.sleepf 0.002 in
  let host = Sim.create () in
  Device.host_time host work;
  let phi = Sim.create () in
  Device.offload dev phi ~bytes_in:(8 * dev.Device.memory_bytes)
    ~bytes_out:1_000 Device.Light work;
  Alcotest.(check bool) "transfer dominates" (Sim.now phi > Sim.now host) true

let test_offload_returns_result () =
  let clock = Sim.create () in
  let v =
    Device.offload dev clock ~bytes_in:8 ~bytes_out:8 Device.Stat (fun () -> 42)
  in
  Alcotest.(check int) "result" 42 v

let suite =
  [
    ("transfer monotone", `Quick, test_transfer_time_monotone);
    ("transfer spill penalty", `Quick, test_transfer_spill_penalty);
    ("speedups ordered", `Quick, test_speedups_ordered);
    ("offload beats host (heavy)", `Quick, test_offload_beats_host_on_heavy_kernel);
    ("offload loses (light + transfer)", `Quick, test_offload_loses_on_light_kernel_with_big_transfer);
    ("offload returns result", `Quick, test_offload_returns_result);
  ]
