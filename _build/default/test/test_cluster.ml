open Gb_cluster
module Mat = Gb_linalg.Mat

let test_netmodel () =
  let net = Netmodel.default in
  Alcotest.(check bool) "latency floor"
    (Netmodel.transfer_time net ~bytes:0 = net.Netmodel.latency_s)
    true;
  Alcotest.(check bool) "bandwidth term"
    (Netmodel.transfer_time net ~bytes:1_000_000_000 > 0.9)
    true;
  Alcotest.(check (float 0.)) "single node free" 0.
    (Netmodel.allreduce_time net ~nodes:1 ~bytes:1_000_000);
  Alcotest.(check bool) "allreduce grows with nodes"
    (Netmodel.allreduce_time net ~nodes:4 ~bytes:1_000_000
    > Netmodel.allreduce_time net ~nodes:2 ~bytes:1_000_000)
    true;
  Alcotest.(check (float 0.)) "no shuffle on 1 node" 0.
    (Netmodel.shuffle_time net ~nodes:1 ~total_bytes:1_000_000)

let test_block_rows () =
  let blocks = Partition.block_rows ~rows:10 ~nodes:3 in
  Alcotest.(check (array (pair int int))) "blocks"
    [| (0, 4); (4, 3); (7, 3) |] blocks;
  Alcotest.(check int) "owner" 1 (Partition.owner_of_row ~rows:10 ~nodes:3 5)

let test_split_concat () =
  let m = Mat.random (Gb_util.Prng.create 1L) 11 4 in
  let parts = Partition.split_matrix m ~nodes:3 in
  Alcotest.(check int) "parts" 3 (Array.length parts);
  Alcotest.(check bool) "roundtrip"
    (Mat.equal m (Partition.concat_rows parts))
    true

let test_superstep_max_semantics () =
  let c = Cluster.create ~nodes:3 () in
  let _ =
    Cluster.superstep c (fun node -> if node = 1 then Unix.sleepf 0.03)
  in
  Alcotest.(check bool) "max not sum"
    (Cluster.elapsed c >= 0.03 && Cluster.elapsed c < 0.09)
    true

let test_allreduce_sum () =
  let c = Cluster.create ~nodes:2 () in
  let out = Cluster.allreduce_sum c [| [| 1.; 2. |]; [| 10.; 20. |] |] in
  Alcotest.(check (array (float 0.))) "sum" [| 11.; 22. |] out;
  Alcotest.(check bool) "comm charged" (Cluster.comm_seconds c > 0.) true;
  Alcotest.(check int) "bytes" 16 (Cluster.comm_bytes c)

let test_allreduce_mat () =
  let c = Cluster.create ~nodes:3 () in
  let parts = Array.init 3 (fun k -> Mat.init 2 2 (fun _ _ -> float_of_int k)) in
  let out = Cluster.allreduce_mat c parts in
  Alcotest.(check (float 0.)) "summed" 3. (Mat.get out 0 0)

let test_deadline () =
  let c = Cluster.create ~nodes:1 () in
  Cluster.set_deadline c 0.5;
  Cluster.advance c 0.4;
  Alcotest.check_raises "trips" Gb_util.Deadline.Timeout (fun () ->
      Cluster.advance c 0.2)

let test_compute_speedup () =
  let work () = Unix.sleepf 0.02 in
  let c1 = Cluster.create ~nodes:1 () in
  ignore (Cluster.superstep c1 (fun _ -> work ()));
  let c2 = Cluster.create ~nodes:1 () in
  Cluster.set_compute_speedup c2 4.;
  ignore (Cluster.superstep c2 (fun _ -> work ()));
  Alcotest.(check bool) "scaled down"
    (Cluster.elapsed c2 < Cluster.elapsed c1 /. 2.)
    true

let parts_of m nodes = Partition.split_matrix m ~nodes

let test_par_ata () =
  let m = Mat.random (Gb_util.Prng.create 2L) 20 6 in
  let c = Cluster.create ~nodes:4 () in
  let out = Par_linalg.ata c (parts_of m 4) in
  Alcotest.(check bool) "matches serial"
    (Mat.max_abs_diff out (Gb_linalg.Blas.ata m) < 1e-9)
    true

let test_par_col_means () =
  let m = Mat.random (Gb_util.Prng.create 3L) 15 5 in
  let c = Cluster.create ~nodes:3 () in
  let out = Par_linalg.col_means c (parts_of m 3) in
  let expect = Mat.col_means m in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) "mean" expect.(i) v)
    out

let test_par_covariance () =
  let m = Mat.random (Gb_util.Prng.create 4L) 25 7 in
  let c = Cluster.create ~nodes:4 () in
  let out = Par_linalg.covariance c (parts_of m 4) in
  Alcotest.(check bool) "matches serial"
    (Mat.max_abs_diff out (Gb_linalg.Covariance.matrix m) < 1e-9)
    true

let test_par_covariance_with_empty_part () =
  let m = Mat.random (Gb_util.Prng.create 41L) 8 5 in
  let c = Cluster.create ~nodes:3 () in
  let parts = [| m; Mat.create 0 5; Mat.create 0 5 |] in
  let out = Par_linalg.covariance c parts in
  Alcotest.(check bool) "empty parts ok"
    (Mat.max_abs_diff out (Gb_linalg.Covariance.matrix m) < 1e-9)
    true

let test_par_regression () =
  let g = Gb_util.Prng.create 5L in
  let m = Mat.random g 60 4 in
  let y =
    Array.init 60 (fun i -> 1. +. (2. *. Mat.get m i 0) -. (3. *. Mat.get m i 3))
  in
  let c = Cluster.create ~nodes:3 () in
  let beta =
    Par_linalg.regression c (parts_of m 3) (Partition.split_vector y ~nodes:3)
  in
  Alcotest.(check (float 1e-8)) "intercept" 1. beta.(0);
  Alcotest.(check (float 1e-8)) "b0" 2. beta.(1);
  Alcotest.(check (float 1e-8)) "b3" (-3.) beta.(4);
  let r2 =
    Par_linalg.r_squared c (parts_of m 3)
      (Partition.split_vector y ~nodes:3)
      ~beta
  in
  Alcotest.(check (float 1e-9)) "r2" 1. r2

let test_par_matvec () =
  let g = Gb_util.Prng.create 6L in
  let m = Mat.random g 12 5 in
  let x = Array.init 5 (fun _ -> Gb_util.Prng.normal g) in
  let c = Cluster.create ~nodes:3 () in
  let out = Par_linalg.matvec c (parts_of m 3) x in
  let expect = Gb_linalg.Blas.gemv m x in
  Array.iteri (fun i v -> Alcotest.(check (float 1e-9)) "Av" expect.(i) v) out;
  let y = Array.init 12 (fun _ -> Gb_util.Prng.normal g) in
  let outt = Par_linalg.matvec_t c (parts_of m 3) y in
  let expectt = Gb_linalg.Blas.gemv_t m y in
  Array.iteri (fun i v -> Alcotest.(check (float 1e-9)) "Atv" expectt.(i) v) outt

let test_par_lanczos () =
  let g = Gb_util.Prng.create 7L in
  let m = Mat.random g 30 8 in
  let c = Cluster.create ~nodes:2 () in
  let eigs = Par_linalg.lanczos_eigs c ~k:3 (parts_of m 2) in
  let exact = Gb_linalg.Lanczos.top_eigen ~rng:g (Gb_linalg.Blas.ata m) 3 in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "close"
        (Float.abs (e -. exact.Gb_linalg.Lanczos.eigenvalues.(i)) < 1e-6)
        true)
    eigs

let suite =
  [
    ("netmodel", `Quick, test_netmodel);
    ("block rows", `Quick, test_block_rows);
    ("split/concat", `Quick, test_split_concat);
    ("superstep max semantics", `Quick, test_superstep_max_semantics);
    ("allreduce sum", `Quick, test_allreduce_sum);
    ("allreduce mat", `Quick, test_allreduce_mat);
    ("deadline", `Quick, test_deadline);
    ("compute speedup", `Quick, test_compute_speedup);
    ("par ata", `Quick, test_par_ata);
    ("par col means", `Quick, test_par_col_means);
    ("par covariance", `Quick, test_par_covariance);
    ("par covariance empty part", `Quick, test_par_covariance_with_empty_part);
    ("par regression + r2", `Quick, test_par_regression);
    ("par matvec", `Quick, test_par_matvec);
    ("par lanczos", `Quick, test_par_lanczos);
  ]
