open Gb_bicluster
module Mat = Gb_linalg.Mat

let test_msr_constant_zero () =
  let m = Mat.init 10 10 (fun _ _ -> 3.7) in
  Alcotest.(check (float 1e-12)) "constant block" 0.
    (Cheng_church.mean_squared_residue m
       (Array.init 10 Fun.id) (Array.init 10 Fun.id))

let test_msr_additive_zero () =
  (* a_ij = r_i + c_j has zero residue by construction. *)
  let m = Mat.init 8 6 (fun i j -> float_of_int i +. (2. *. float_of_int j)) in
  Alcotest.(check (float 1e-12)) "additive block" 0.
    (Cheng_church.mean_squared_residue m
       (Array.init 8 Fun.id) (Array.init 6 Fun.id))

let test_msr_random_positive () =
  let m = Mat.random (Gb_util.Prng.create 5L) 10 10 in
  Alcotest.(check bool) "noisy block has residue"
    (Cheng_church.mean_squared_residue m
       (Array.init 10 Fun.id) (Array.init 10 Fun.id)
    > 0.1)
    true

let test_msr_submatrix () =
  let m = Mat.random (Gb_util.Prng.create 6L) 10 10 in
  (* Plant a constant 3x3 block. *)
  List.iter
    (fun (i, j) -> Mat.set m i j 9.)
    [ (1,2); (1,5); (1,7); (4,2); (4,5); (4,7); (8,2); (8,5); (8,7) ];
  Alcotest.(check (float 1e-12)) "planted submatrix" 0.
    (Cheng_church.mean_squared_residue m [| 1; 4; 8 |] [| 2; 5; 7 |])

(* A dominant additive block: the greedy Cheng-Church deletion recovers a
   planted bicluster reliably when it spans a majority of the matrix (for
   small planted blocks the greedy path may settle on another low-residue
   region, which is a known property of the algorithm). *)
let planted_matrix () =
  let g = Gb_util.Prng.create 77L in
  let m = Mat.random g 60 50 in
  let rows = Array.init 40 Fun.id in
  let cols = Array.init 30 Fun.id in
  let reff = Array.map (fun _ -> Gb_util.Prng.normal g) rows in
  let ceff = Array.map (fun _ -> Gb_util.Prng.normal g) cols in
  Array.iteri
    (fun ri i ->
      Array.iteri
        (fun ci j -> Mat.set m i j (2. +. reff.(ri) +. ceff.(ci)))
        cols)
    rows;
  (m, rows, cols)

let test_finds_planted_bicluster () =
  let m, rows, cols = planted_matrix () in
  let config =
    { Cheng_church.default_config with delta = 0.01; n_clusters = 1 }
  in
  match Cheng_church.run ~config m with
  | [] -> Alcotest.fail "no bicluster found"
  | b :: _ ->
    Alcotest.(check bool) "low residue" (b.Cheng_church.msr <= 0.01) true;
    let overlap planted found =
      let f = Array.to_list found in
      List.length (List.filter (fun r -> List.mem r f) (Array.to_list planted))
    in
    (* Most of the planted rows/cols should be recovered. *)
    Alcotest.(check bool) "row recall"
      (overlap rows b.Cheng_church.rows >= 35)
      true;
    Alcotest.(check bool) "col recall"
      (overlap cols b.Cheng_church.cols >= 27)
      true

let test_respects_minimums () =
  let m = Mat.random (Gb_util.Prng.create 12L) 30 30 in
  let config =
    { Cheng_church.default_config with delta = 0.001; n_clusters = 2 }
  in
  List.iter
    (fun b ->
      Alcotest.(check bool) "min rows"
        (Array.length b.Cheng_church.rows >= config.Cheng_church.min_rows)
        true;
      Alcotest.(check bool) "min cols"
        (Array.length b.Cheng_church.cols >= config.Cheng_church.min_cols)
        true)
    (Cheng_church.run ~config m)

let test_input_not_modified () =
  let m, _, _ = planted_matrix () in
  let before = Mat.copy m in
  ignore (Cheng_church.run m);
  Alcotest.(check bool) "unchanged" (Mat.equal before m) true

let test_deterministic () =
  let m, _, _ = planted_matrix () in
  let a = Cheng_church.run m and b = Cheng_church.run m in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun (x : Cheng_church.bicluster) (y : Cheng_church.bicluster) ->
      Alcotest.(check (array int)) "same rows" x.rows y.rows;
      Alcotest.(check (array int)) "same cols" x.cols y.cols)
    a b

let test_too_small_input () =
  let m = Mat.create 1 1 in
  Alcotest.(check int) "empty result" 0 (List.length (Cheng_church.run m))

let test_msr_decreases_with_deletion () =
  (* The returned bicluster's MSR must not exceed delta when any cluster is
     returned with the default config. *)
  let m, _, _ = planted_matrix () in
  let config = { Cheng_church.default_config with delta = 0.05 } in
  List.iter
    (fun b ->
      Alcotest.(check bool) "msr <= delta" (b.Cheng_church.msr <= 0.05) true)
    (Cheng_church.run ~config m)

let suite =
  [
    ("msr constant zero", `Quick, test_msr_constant_zero);
    ("msr additive zero", `Quick, test_msr_additive_zero);
    ("msr random positive", `Quick, test_msr_random_positive);
    ("msr submatrix", `Quick, test_msr_submatrix);
    ("finds planted bicluster", `Quick, test_finds_planted_bicluster);
    ("respects minimums", `Quick, test_respects_minimums);
    ("input not modified", `Quick, test_input_not_modified);
    ("deterministic", `Quick, test_deterministic);
    ("too small input", `Quick, test_too_small_input);
    ("msr below delta", `Quick, test_msr_decreases_with_deletion);
  ]
