open Gb_linalg

let check_float = Alcotest.(check (float 1e-8))
let rng () = Gb_util.Prng.create 0xFEEDL

(* --- Mat --- *)

let test_mat_basics () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((i * 10) + j)) in
  Alcotest.(check (pair int int)) "dims" (3, 4) (Mat.dims m);
  check_float "get" 12. (Mat.get m 1 2);
  Mat.set m 1 2 99.;
  check_float "set" 99. (Mat.get m 1 2);
  Alcotest.check_raises "oob" (Invalid_argument "Mat.get: out of bounds")
    (fun () -> ignore (Mat.get m 3 0))

let test_mat_transpose () =
  let m = Mat.random (rng ()) 5 3 in
  let t = Mat.transpose m in
  Alcotest.(check (pair int int)) "dims" (3, 5) (Mat.dims t);
  Alcotest.(check bool) "involutive" (Mat.equal m (Mat.transpose t)) true

let test_mat_sub_rows_cols () =
  let m = Mat.init 4 4 (fun i j -> float_of_int ((i * 4) + j)) in
  let r = Mat.sub_rows m [| 2; 0 |] in
  check_float "row pick" 8. (Mat.get r 0 0);
  check_float "row pick2" 0. (Mat.get r 1 0);
  let c = Mat.sub_cols m [| 3; 1 |] in
  check_float "col pick" 3. (Mat.get c 0 0);
  check_float "col pick2" 1. (Mat.get c 0 1)

let test_mat_center_cols () =
  let m = Mat.of_arrays [| [| 1.; 10. |]; [| 3.; 20. |] |] in
  let c = Mat.center_cols m in
  check_float "centered" (-1.) (Mat.get c 0 0);
  check_float "centered2" 5. (Mat.get c 1 1);
  let means = Mat.col_means c in
  check_float "zero mean" 0. means.(0);
  check_float "zero mean2" 0. means.(1)

let test_mat_arith () =
  let a = Mat.of_arrays [| [| 1.; 2. |] |] in
  let b = Mat.of_arrays [| [| 3.; 4. |] |] in
  check_float "add" 6. (Mat.get (Mat.add a b) 0 1);
  check_float "sub" (-2.) (Mat.get (Mat.sub a b) 0 0);
  check_float "scale" 4. (Mat.get (Mat.scale 2. a) 0 1);
  check_float "frobenius" (sqrt 5.) (Mat.frobenius a)

(* --- Vec / Blas --- *)

let test_vec_ops () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  check_float "dot" 32. (Vec.dot x y);
  check_float "nrm2" (sqrt 14.) (Vec.nrm2 x);
  let y2 = Array.copy y in
  Vec.axpy 2. x y2;
  check_float "axpy" 6. y2.(0);
  check_float "normalize" 1. (Vec.nrm2 (Vec.normalize x))

let test_gemv () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let y = Blas.gemv a [| 1.; 1. |] in
  check_float "gemv0" 3. y.(0);
  check_float "gemv1" 7. y.(1);
  let yt = Blas.gemv_t a [| 1.; 1. |] in
  check_float "gemv_t0" 4. yt.(0);
  check_float "gemv_t1" 6. yt.(1)

let test_gemm_matches_naive () =
  let g = rng () in
  let a = Mat.random g 33 47 and b = Mat.random g 47 29 in
  Alcotest.(check bool) "blocked == naive"
    (Mat.max_abs_diff (Blas.gemm a b) (Blas.gemm_naive a b) < 1e-10)
    true

let test_atb_ata_aat () =
  let g = rng () in
  let a = Mat.random g 20 11 and b = Mat.random g 20 7 in
  let expect = Blas.gemm (Mat.transpose a) b in
  Alcotest.(check bool) "atb" (Mat.max_abs_diff (Blas.atb a b) expect < 1e-10) true;
  let ata = Blas.ata a in
  Alcotest.(check bool) "ata symmetric"
    (Mat.max_abs_diff ata (Mat.transpose ata) < 1e-12)
    true;
  let aat = Blas.aat a in
  let expect2 = Blas.gemm a (Mat.transpose a) in
  Alcotest.(check bool) "aat" (Mat.max_abs_diff aat expect2 < 1e-10) true

(* --- QR --- *)

let test_qr_reconstruction () =
  let g = rng () in
  let a = Mat.random g 30 12 in
  let qr = Qr.factorize a in
  let q = Qr.q qr and r = Qr.r qr in
  Alcotest.(check bool) "QR = A" (Mat.max_abs_diff a (Blas.gemm q r) < 1e-10) true;
  Alcotest.(check bool) "Q orthonormal"
    (Mat.max_abs_diff (Blas.ata q) (Mat.identity 12) < 1e-10)
    true;
  (* R upper triangular *)
  let ok = ref true in
  for i = 1 to 11 do
    for j = 0 to i - 1 do
      if Float.abs (Mat.get r i j) > 1e-12 then ok := false
    done
  done;
  Alcotest.(check bool) "R upper triangular" !ok true

let test_qr_solve_exact () =
  let a = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 4. |]; [| 0.; 0. |] |] in
  let x = Qr.solve (Qr.factorize a) [| 2.; 8.; 0. |] in
  check_float "x0" 1. x.(0);
  check_float "x1" 2. x.(1)

let test_qr_rank_deficient () =
  let a = Mat.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |]; [| 1.; 1. |] |] in
  Alcotest.check_raises "rank deficient" (Failure "Qr.solve: rank deficient")
    (fun () -> ignore (Qr.least_squares a [| 1.; 2.; 3. |]))

(* --- Linreg --- *)

let planted_fit fit =
  let g = rng () in
  let x = Mat.random g 300 6 in
  let coef = [| 1.5; -2.; 0.7; 3.; -0.1; 2.2 |] in
  let y = Array.init 300 (fun i -> 5. +. Vec.dot coef (Mat.row x i)) in
  let m = fit x y in
  Alcotest.(check (float 1e-6)) "intercept" 5. m.Linreg.intercept;
  Array.iteri
    (fun j c -> Alcotest.(check (float 1e-6)) "coef" c m.Linreg.coefficients.(j))
    coef;
  Alcotest.(check (float 1e-6)) "r2" 1. m.Linreg.r_squared

let test_linreg_qr () = planted_fit Linreg.fit
let test_linreg_normal () = planted_fit Linreg.fit_normal_equations

let test_linreg_agreement_with_noise () =
  let g = rng () in
  let x = Mat.random g 200 4 in
  let y =
    Array.init 200 (fun i ->
        (2. *. Mat.get x i 0) -. Mat.get x i 3 +. Gb_util.Prng.normal g)
  in
  let a = Linreg.fit x y and b = Linreg.fit_normal_equations x y in
  Array.iteri
    (fun j c ->
      Alcotest.(check (float 1e-6)) "both solvers agree" c
        b.Linreg.coefficients.(j))
    a.Linreg.coefficients

let test_linreg_predict () =
  let x = Mat.of_arrays [| [| 0. |]; [| 1. |]; [| 2. |]; [| 3. |] |] in
  let y = [| 1.; 3.; 5.; 7. |] in
  let m = Linreg.fit x y in
  check_float "predict" 9. (Linreg.predict m [| 4. |])

(* --- Solve --- *)

let test_cholesky () =
  let a = Mat.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let x = Solve.cholesky a [| 8.; 7. |] in
  check_float "x0" 1.25 x.(0);
  check_float "x1" 1.5 x.(1);
  let l = Solve.cholesky_factor a in
  Alcotest.(check bool) "LL^T = A"
    (Mat.max_abs_diff (Blas.gemm l (Mat.transpose l)) a < 1e-12)
    true

let test_cholesky_not_pd () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not pd" (Failure "Solve.cholesky: not positive definite")
    (fun () -> ignore (Solve.cholesky a [| 1.; 1. |]))

(* --- Tridiag --- *)

let test_tridiag_known () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let values, vectors = Tridiag.eigen [| 2.; 2. |] [| 1. |] in
  check_float "lambda1" 3. values.(0);
  check_float "lambda2" 1. values.(1);
  let v0 = Mat.col vectors 0 in
  check_float "unit" 1. (Vec.nrm2 v0)

let test_tridiag_vs_dense_trace () =
  let diag = [| 5.; 3.; 1.; 4.; 2. |] and off = [| 1.; 0.5; 0.2; 0.9 |] in
  let values = Tridiag.eigenvalues diag off in
  let trace = Array.fold_left ( +. ) 0. diag in
  let sum = Array.fold_left ( +. ) 0. values in
  Alcotest.(check (float 1e-8)) "trace preserved" trace sum;
  (* descending *)
  for i = 1 to 4 do
    Alcotest.(check bool) "sorted" (values.(i) <= values.(i - 1)) true
  done

(* --- Lanczos / SVD --- *)

let test_lanczos_vs_tridiag () =
  let g = rng () in
  let b = Mat.random g 12 12 in
  let a = Blas.ata b (* SPD *) in
  let res = Lanczos.top_eigen ~rng:g a 4 in
  (* Compare against dense eigenvalues of a via Jacobi-like check:
     verify A v = lambda v for each returned pair instead. *)
  Array.iteri
    (fun k lambda ->
      let v = Mat.col res.Lanczos.eigenvectors k in
      let av = Blas.gemv a v in
      let diff = Vec.nrm2 (Vec.sub av (Vec.scale lambda v)) in
      Alcotest.(check bool) "eigenpair residual" (diff < 1e-6) true)
    res.Lanczos.eigenvalues

let test_svd_low_rank () =
  let g = rng () in
  let u0 = Mat.random g 40 3 and v0 = Mat.random g 3 25 in
  let m = Blas.gemm u0 v0 in
  let svd = Svd.top_k ~rng:g m 5 in
  Alcotest.(check bool) "rank-3 recovery"
    (Svd.reconstruction_error m svd < 1e-8)
    true;
  (* Lanczos may stop early once the rank-3 subspace is exhausted, so at
     most [k] values come back, the trailing ones ~0. *)
  Alcotest.(check bool) "at least rank many" (Array.length svd.Svd.s >= 4) true;
  Alcotest.(check bool) "s4 ~ 0" (svd.Svd.s.(3) < 1e-6) true;
  for i = 1 to Array.length svd.Svd.s - 1 do
    Alcotest.(check bool) "descending" (svd.Svd.s.(i) <= svd.Svd.s.(i - 1)) true
  done

let test_svd_wide_matrix () =
  let g = rng () in
  let m = Mat.random g 10 30 in
  let svd = Svd.top_k ~rng:g m 10 in
  (* Full rank: reconstruction with k = min dim should be exact. *)
  Alcotest.(check bool) "full-k exact"
    (Svd.reconstruction_error m svd < 1e-7)
    true

let test_svd_singular_values_invariant () =
  let g = rng () in
  let m = Mat.random g 25 15 in
  let s1 = (Svd.top_k ~rng:(Gb_util.Prng.create 1L) m 5).Svd.s in
  let s2 = (Svd.top_k ~rng:(Gb_util.Prng.create 99L) m 5).Svd.s in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-6)) "start-vector independent" v s2.(i))
    s1

(* --- Covariance --- *)

let test_covariance_known () =
  let m = Mat.of_arrays [| [| 1.; 2. |]; [| 3.; 6. |] |] in
  let c = Covariance.matrix m in
  check_float "var x" 2. (Mat.get c 0 0);
  check_float "cov xy" 4. (Mat.get c 0 1);
  check_float "var y" 8. (Mat.get c 1 1)

let test_covariance_naive_matches () =
  let g = rng () in
  let m = Mat.random g 30 8 in
  Alcotest.(check bool) "naive == blocked"
    (Mat.max_abs_diff (Covariance.matrix m) (Covariance.matrix_naive m) < 1e-10)
    true

let test_covariance_psd () =
  let g = rng () in
  let m = Mat.random g 50 10 in
  let c = Covariance.matrix m in
  (* PSD: all eigenvalues >= 0 (check via Lanczos on -C giving none > 0). *)
  let res = Lanczos.top_eigen ~rng:g (Mat.scale (-1.) c) 3 in
  Array.iter
    (fun lambda -> Alcotest.(check bool) "psd" (lambda < 1e-8) true)
    res.Lanczos.eigenvalues

let test_covariance_top_fraction () =
  let g = rng () in
  let c = Covariance.matrix (Mat.random g 40 10) in
  let pairs = Covariance.top_fraction c 0.1 in
  Alcotest.(check int) "10% of 45 pairs" 5 (List.length pairs);
  let abs3 = List.map (fun (_, _, v) -> Float.abs v) pairs in
  let rec desc = function
    | a :: b :: tl -> a >= b && desc (b :: tl)
    | _ -> true
  in
  Alcotest.(check bool) "descending |cov|" (desc abs3) true

(* --- QCheck properties --- *)

let mat_gen =
  QCheck.Gen.(
    let* rows = int_range 2 12 in
    let* cols = int_range 2 12 in
    let* seed = int_range 1 1_000_000 in
    return (rows, cols, seed))

let arb_mat = QCheck.make mat_gen

let mk (rows, cols, seed) =
  Mat.random (Gb_util.Prng.create (Int64.of_int seed)) rows cols

let prop_qr_reconstructs =
  QCheck.Test.make ~name:"qr reconstructs A" ~count:50 arb_mat (fun (r, c, s) ->
      let r = max r c and c = min r c in
      let a = mk (r, c, s) in
      let qr = Qr.factorize a in
      Mat.max_abs_diff a (Blas.gemm (Qr.q qr) (Qr.r qr)) < 1e-8)

let prop_gemm_assoc_with_vector =
  QCheck.Test.make ~name:"(AB)x = A(Bx)" ~count:50 arb_mat (fun (r, c, s) ->
      let g = Gb_util.Prng.create (Int64.of_int s) in
      let a = Mat.random g r c and b = Mat.random g c r in
      let x = Array.init r (fun _ -> Gb_util.Prng.normal g) in
      let lhs = Blas.gemv (Blas.gemm a b) x in
      let rhs = Blas.gemv a (Blas.gemv b x) in
      Vec.nrm2 (Vec.sub lhs rhs) < 1e-8 *. (1. +. Vec.nrm2 lhs))

let prop_covariance_symmetric =
  QCheck.Test.make ~name:"covariance symmetric" ~count:50 arb_mat
    (fun (r, c, s) ->
      let m = mk (max 2 r, c, s) in
      let cov = Covariance.matrix m in
      Mat.max_abs_diff cov (Mat.transpose cov) < 1e-12)

let prop_transpose_involutive =
  QCheck.Test.make ~name:"transpose involutive" ~count:50 arb_mat
    (fun (r, c, s) ->
      let m = mk (r, c, s) in
      Mat.equal m (Mat.transpose (Mat.transpose m)))

(* --- Randomized (sketch) algorithms --- *)

let test_randomized_svd_low_rank () =
  let g = rng () in
  let u0 = Mat.random g 60 4 and v0 = Mat.random g 4 40 in
  let m = Blas.gemm u0 v0 in
  let approx = Randomized.svd ~rng:g m 6 in
  Alcotest.(check bool) "captures the rank-4 structure"
    (Svd.reconstruction_error m approx < 1e-6 *. Mat.frobenius m)
    true

let test_randomized_svd_close_to_exact () =
  let g = rng () in
  let m = Mat.random g 80 50 in
  let exact = Svd.top_k ~rng:g m 5 in
  let approx = Randomized.svd ~rng:g ~power_iterations:3 m 5 in
  Array.iteri
    (fun i s ->
      Alcotest.(check bool) "singular value within 2%"
        (Float.abs (s -. approx.Svd.s.(i)) < 0.02 *. s)
        true)
    exact.Svd.s

let test_covariance_sample_unbiased_shape () =
  let g = rng () in
  let m = Mat.random g 400 6 in
  let full = Covariance.matrix m in
  let sampled = Randomized.covariance_sample ~rng:g ~rows:200 m in
  Alcotest.(check (pair int int)) "dims" (Mat.dims full) (Mat.dims sampled);
  (* A half sample of 400 standard-normal rows estimates covariance within
     a loose tolerance. *)
  Alcotest.(check bool) "roughly matches"
    (Mat.max_abs_diff full sampled < 0.5)
    true;
  let all = Randomized.covariance_sample ~rng:g ~rows:1_000 m in
  Alcotest.(check bool) "full sample exact" (Mat.equal full all) true

let suite =
  [
    ("mat basics", `Quick, test_mat_basics);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat sub rows/cols", `Quick, test_mat_sub_rows_cols);
    ("mat center cols", `Quick, test_mat_center_cols);
    ("mat arithmetic", `Quick, test_mat_arith);
    ("vec ops", `Quick, test_vec_ops);
    ("gemv", `Quick, test_gemv);
    ("gemm matches naive", `Quick, test_gemm_matches_naive);
    ("atb/ata/aat", `Quick, test_atb_ata_aat);
    ("qr reconstruction", `Quick, test_qr_reconstruction);
    ("qr solve exact", `Quick, test_qr_solve_exact);
    ("qr rank deficient", `Quick, test_qr_rank_deficient);
    ("linreg qr planted", `Quick, test_linreg_qr);
    ("linreg normal planted", `Quick, test_linreg_normal);
    ("linreg solvers agree", `Quick, test_linreg_agreement_with_noise);
    ("linreg predict", `Quick, test_linreg_predict);
    ("cholesky", `Quick, test_cholesky);
    ("cholesky not pd", `Quick, test_cholesky_not_pd);
    ("tridiag known", `Quick, test_tridiag_known);
    ("tridiag trace", `Quick, test_tridiag_vs_dense_trace);
    ("lanczos eigenpairs", `Quick, test_lanczos_vs_tridiag);
    ("svd low rank", `Quick, test_svd_low_rank);
    ("svd wide matrix", `Quick, test_svd_wide_matrix);
    ("svd deterministic values", `Quick, test_svd_singular_values_invariant);
    ("covariance known", `Quick, test_covariance_known);
    ("covariance naive matches", `Quick, test_covariance_naive_matches);
    ("covariance psd", `Quick, test_covariance_psd);
    ("covariance top fraction", `Quick, test_covariance_top_fraction);
    ("randomized svd low rank", `Quick, test_randomized_svd_low_rank);
    ("randomized svd close to exact", `Quick, test_randomized_svd_close_to_exact);
    ("covariance sampling", `Quick, test_covariance_sample_unbiased_shape);
    QCheck_alcotest.to_alcotest prop_qr_reconstructs;
    QCheck_alcotest.to_alcotest prop_gemm_assoc_with_vector;
    QCheck_alcotest.to_alcotest prop_covariance_symmetric;
    QCheck_alcotest.to_alcotest prop_transpose_involutive;
  ]

