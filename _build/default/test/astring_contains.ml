(* Tiny substring helper shared by the test suites. *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0
