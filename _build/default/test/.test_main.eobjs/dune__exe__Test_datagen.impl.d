test/test_datagen.ml: Alcotest Array Filename Float Gb_bicluster Gb_datagen Gb_linalg Generate Io Spec Sys
