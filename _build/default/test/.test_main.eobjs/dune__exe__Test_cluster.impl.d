test/test_cluster.ml: Alcotest Array Cluster Float Gb_cluster Gb_linalg Gb_util Netmodel Par_linalg Partition Unix
