test/test_storage.ml: Alcotest Array Bitmap Buffer_pool Bytes Fun Gb_datagen Gb_relational Gb_util Genbase Int Int32 List Paged_store Printf QCheck QCheck_alcotest Row_store Schema String Value
