test/test_coproc.ml: Alcotest Device Gb_coproc Gb_util Unix
