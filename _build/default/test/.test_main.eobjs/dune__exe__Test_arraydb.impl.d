test/test_arraydb.ml: Alcotest Array Attr_array Chunked Fun Gb_arraydb Gb_linalg Gb_util
