test/test_relational2.ml: Alcotest Array Astring_contains Btree Col_store Expr Format Fun Gb_relational Gb_util Index List Ops Plan QCheck QCheck_alcotest Row_store Schema Value
