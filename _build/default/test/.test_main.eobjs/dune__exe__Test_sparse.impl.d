test/test_sparse.ml: Alcotest Array Gb_arraydb Gb_datagen Gb_linalg Gb_util Genbase Sparse
