test/test_array_ops.ml: Alcotest Array_ops Chunked Gb_arraydb Gb_linalg
