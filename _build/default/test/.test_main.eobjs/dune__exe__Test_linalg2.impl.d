test/test_linalg2.ml: Alcotest Array Blas Eigen Float Gb_linalg Gb_util Int64 Lanczos Lu Mat QCheck QCheck_alcotest Tridiag
