test/test_seqdata.ml: Alcotest Array Filename Float Gb_datagen Gb_linalg Generate List Seqdata Spec Sys
