test/test_util.ml: Alcotest Array Clock Deadline Float Fun Gb_util Order Prng Render String Unix
