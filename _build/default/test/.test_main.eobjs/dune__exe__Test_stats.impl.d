test/test_stats.ml: Alcotest Array Descriptive Distributions Gb_stats Gb_util List QCheck QCheck_alcotest Ranking Wilcoxon
