test/test_stats2.ml: Alcotest Array Float Gb_stats Gb_util List QCheck QCheck_alcotest Special Tests
