test/test_scaling.ml: Alcotest Dataset Engine Engine_hadoop Engine_pbdr Engine_phi Engine_scidb Engine_scidb_mn Float Format Gb_datagen Genbase Lazy Printf Query
