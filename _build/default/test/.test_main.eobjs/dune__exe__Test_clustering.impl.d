test/test_clustering.ml: Alcotest Array Gb_bicluster Gb_linalg Gb_util List
