test/test_dataframe.ml: Alcotest Array Dataframe Gb_linalg Gb_rlang Gb_stats Gb_util Rvec
