test/test_relops.ml: Alcotest Array Dataset Engine_sql Gb_datagen Gb_linalg Gb_util Genbase Qcommon Query Relops
