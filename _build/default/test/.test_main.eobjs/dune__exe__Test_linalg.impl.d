test/test_linalg.ml: Alcotest Array Blas Covariance Float Gb_linalg Gb_util Int64 Lanczos Linreg List Mat QCheck QCheck_alcotest Qr Randomized Solve Svd Tridiag Vec
