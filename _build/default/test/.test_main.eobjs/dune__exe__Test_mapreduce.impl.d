test/test_mapreduce.ml: Alcotest Array Float Gb_linalg Gb_mapreduce Gb_util Hive List Mahout Mr Printf String
