test/test_bicluster.ml: Alcotest Array Cheng_church Fun Gb_bicluster Gb_linalg Gb_util List
