(* Dense eigensolver and LU tests, including cross-validation of the
   iterative solvers against the Jacobi reference. *)

open Gb_linalg

let rng () = Gb_util.Prng.create 0xACE5L

let test_eigen_known () =
  let a = Mat.of_arrays [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let values, vectors = Eigen.symmetric a in
  Alcotest.(check (float 1e-10)) "lambda1" 3. values.(0);
  Alcotest.(check (float 1e-10)) "lambda2" 1. values.(1);
  (* Eigenvector of 3 is (1,1)/sqrt2 up to sign. *)
  let v = Mat.col vectors 0 in
  Alcotest.(check (float 1e-10)) "components equal" (Float.abs v.(0))
    (Float.abs v.(1))

let test_eigen_reconstructs () =
  let g = rng () in
  let b = Mat.random g 15 15 in
  let a = Blas.ata b in
  let values, vectors = Eigen.symmetric a in
  (* A = V diag(values) V^T *)
  let vd =
    Mat.init 15 15 (fun i j -> Mat.get vectors i j *. values.(j))
  in
  let recon = Blas.gemm vd (Mat.transpose vectors) in
  Alcotest.(check bool) "reconstructs" (Mat.max_abs_diff a recon < 1e-8) true;
  (* V orthonormal *)
  Alcotest.(check bool) "orthonormal"
    (Mat.max_abs_diff (Blas.ata vectors) (Mat.identity 15) < 1e-10)
    true

let test_eigen_validates_lanczos () =
  let g = rng () in
  let b = Mat.random g 20 20 in
  let a = Blas.ata b in
  let dense = Eigen.eigenvalues a in
  let lanczos = Lanczos.top_eigen ~rng:g a 5 in
  Array.iteri
    (fun i lambda ->
      Alcotest.(check (float 1e-6)) "lanczos matches jacobi" dense.(i) lambda)
    lanczos.Lanczos.eigenvalues

let test_eigen_validates_tridiag () =
  let diag = [| 4.; 2.; 7.; 1. |] and off = [| 1.; 0.5; 2. |] in
  let dense =
    Eigen.eigenvalues
      (Mat.init 4 4 (fun i j ->
           if i = j then diag.(i)
           else if abs (i - j) = 1 then off.(min i j)
           else 0.))
  in
  let ql = Tridiag.eigenvalues diag off in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) "ql matches jacobi" dense.(i) v)
    ql

let test_eigen_rejects_asymmetric () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 0.; 1. |] |] in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Eigen.symmetric: not symmetric") (fun () ->
      ignore (Eigen.symmetric a))

let test_lu_solve () =
  let a = Mat.of_arrays [| [| 0.; 2. |]; [| 3.; 1. |] |] in
  (* Needs pivoting (zero leading pivot). *)
  let x = Lu.solve_system a [| 4.; 5. |] in
  Alcotest.(check (float 1e-12)) "x0" 1. x.(0);
  Alcotest.(check (float 1e-12)) "x1" 2. x.(1)

let test_lu_random_solve () =
  let g = rng () in
  let a = Mat.random g 12 12 in
  let x_true = Array.init 12 (fun _ -> Gb_util.Prng.normal g) in
  let b = Blas.gemv a x_true in
  let x = Lu.solve_system a b in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-8)) "solution" x_true.(i) v)
    x

let test_lu_determinant () =
  let a = Mat.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  Alcotest.(check (float 1e-12)) "diag det" 6.
    (Lu.determinant (Lu.factorize a));
  let swapped = Mat.of_arrays [| [| 0.; 3. |]; [| 2.; 0. |] |] in
  Alcotest.(check (float 1e-12)) "swap flips sign" (-6.)
    (Lu.determinant (Lu.factorize swapped))

let test_lu_inverse () =
  let g = rng () in
  let a = Mat.random g 8 8 in
  let inv = Lu.inverse (Lu.factorize a) in
  Alcotest.(check bool) "A A^-1 = I"
    (Mat.max_abs_diff (Blas.gemm a inv) (Mat.identity 8) < 1e-9)
    true

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Failure "Lu: singular matrix") (fun () ->
      ignore (Lu.factorize a))

let prop_lu_det_matches_eigen_product =
  QCheck.Test.make ~name:"det(A^T A) = prod eigenvalues" ~count:30
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let g = Gb_util.Prng.create (Int64.of_int seed) in
      let b = Mat.random g 6 6 in
      let a = Blas.ata b in
      let det = Lu.determinant (Lu.factorize a) in
      let prod = Array.fold_left ( *. ) 1. (Eigen.eigenvalues a) in
      Float.abs (det -. prod) < 1e-6 *. (1. +. Float.abs det))

let suite =
  [
    ("eigen known 2x2", `Quick, test_eigen_known);
    ("eigen reconstructs", `Quick, test_eigen_reconstructs);
    ("eigen validates lanczos", `Quick, test_eigen_validates_lanczos);
    ("eigen validates tridiag", `Quick, test_eigen_validates_tridiag);
    ("eigen rejects asymmetric", `Quick, test_eigen_rejects_asymmetric);
    ("lu pivoted solve", `Quick, test_lu_solve);
    ("lu random solve", `Quick, test_lu_random_solve);
    ("lu determinant", `Quick, test_lu_determinant);
    ("lu inverse", `Quick, test_lu_inverse);
    ("lu singular", `Quick, test_lu_singular);
    QCheck_alcotest.to_alcotest prop_lu_det_matches_eigen_product;
  ]
