open Gb_datagen
module Mat = Gb_linalg.Mat

let ds = Generate.generate (Spec.custom ~genes:40 ~patients:60)

let test_shapes () =
  let s = Seqdata.of_expression ds in
  Alcotest.(check int) "patients" 60 (Array.length s.Seqdata.counts);
  Alcotest.(check int) "genes" 40 (Array.length s.Seqdata.counts.(0));
  Alcotest.(check int) "library sizes" 60 (Array.length s.Seqdata.library_sizes)

let test_deterministic () =
  let a = Seqdata.of_expression ~seed:3L ds in
  let b = Seqdata.of_expression ~seed:3L ds in
  Alcotest.(check bool) "same counts" (a.Seqdata.counts = b.Seqdata.counts) true;
  let c = Seqdata.of_expression ~seed:4L ds in
  Alcotest.(check bool) "seed matters"
    (a.Seqdata.counts <> c.Seqdata.counts)
    true

let test_counts_nonnegative () =
  let s = Seqdata.of_expression ds in
  Array.iter
    (fun row ->
      Array.iter
        (fun c -> Alcotest.(check bool) "nonnegative" (c >= 0) true)
        row)
    s.Seqdata.counts

let test_library_sizes_consistent () =
  let s = Seqdata.of_expression ds in
  Array.iteri
    (fun i row ->
      Alcotest.(check int) "sum matches"
        (Array.fold_left ( + ) 0 row)
        s.Seqdata.library_sizes.(i))
    s.Seqdata.counts

let test_counts_track_expression () =
  (* Higher expression must produce higher counts on average: compare the
     mean count of the top-expression decile of cells against the
     bottom decile. *)
  let s = Seqdata.of_expression ~mean_depth:50. ds in
  let cells = ref [] in
  Mat.iteri
    (fun i j v -> cells := (v, s.Seqdata.counts.(i).(j)) :: !cells)
    ds.Generate.expression;
  let sorted = List.sort compare !cells in
  let n = List.length sorted in
  let decile = n / 10 in
  let avg l =
    List.fold_left (fun acc (_, c) -> acc +. float_of_int c) 0. l
    /. float_of_int (List.length l)
  in
  let low = avg (List.filteri (fun i _ -> i < decile) sorted) in
  let high = avg (List.filteri (fun i _ -> i >= n - decile) sorted) in
  Alcotest.(check bool) "monotone in expression" (high > 2. *. low) true

let test_cpm_normalizes () =
  let s = Seqdata.of_expression ds in
  let cpm = Seqdata.counts_per_million s in
  (* Every row of CPM sums to one million (up to integer count rounding). *)
  for i = 0 to 59 do
    let total = Array.fold_left ( +. ) 0. (Mat.row cpm i) in
    Alcotest.(check (float 1.)) "row sums to 1e6" 1e6 total
  done

let test_log_cpm_range () =
  let s = Seqdata.of_expression ds in
  let l = Seqdata.log_cpm s in
  Mat.iteri
    (fun _ _ v -> Alcotest.(check bool) "finite nonneg" (v >= 0. && Float.is_finite v) true)
    l

let test_write_csv () =
  let s = Seqdata.of_expression ds in
  let dir = Filename.temp_file "seq" "" in
  Sys.remove dir;
  Seqdata.write_csv ~dir s;
  let ic = open_in (Filename.concat dir "counts.csv") in
  let header = input_line ic in
  let count = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr count
     done
   with End_of_file -> ());
  close_in ic;
  Alcotest.(check string) "header" "gene_id,patient_id,count" header;
  Alcotest.(check int) "one line per cell" (60 * 40) !count

let suite =
  [
    ("shapes", `Quick, test_shapes);
    ("deterministic", `Quick, test_deterministic);
    ("counts nonnegative", `Quick, test_counts_nonnegative);
    ("library sizes consistent", `Quick, test_library_sizes_consistent);
    ("counts track expression", `Quick, test_counts_track_expression);
    ("cpm normalizes", `Quick, test_cpm_normalizes);
    ("log cpm sane", `Quick, test_log_cpm_range);
    ("csv output", `Quick, test_write_csv);
  ]
