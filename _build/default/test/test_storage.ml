(* Buffer pool, disk-spilling paged store, bitmaps, and the heap/top-k
   utility. *)

open Gb_relational

let test_pool_roundtrip () =
  let pool = Buffer_pool.create ~frames:4 ~page_bytes:128 () in
  let ids = List.init 16 (fun _ -> Buffer_pool.allocate pool) in
  List.iteri
    (fun i id ->
      Buffer_pool.with_page pool id (fun buf ->
          Bytes.set_int32_le buf 0 (Int32.of_int (i * 7))))
    ids;
  (* 16 pages through 4 frames: most must have been evicted and written. *)
  Alcotest.(check bool) "evictions happened"
    ((Buffer_pool.stats pool).Buffer_pool.evictions > 0)
    true;
  List.iteri
    (fun i id ->
      Buffer_pool.read_page pool id (fun buf ->
          Alcotest.(check int32) "value survives eviction"
            (Int32.of_int (i * 7))
            (Bytes.get_int32_le buf 0)))
    ids;
  Alcotest.(check int) "resident bounded" 4 (Buffer_pool.resident_pages pool);
  Buffer_pool.close pool

let test_pool_hit_tracking () =
  let pool = Buffer_pool.create ~frames:2 ~page_bytes:64 () in
  let a = Buffer_pool.allocate pool in
  Buffer_pool.read_page pool a (fun _ -> ());
  Buffer_pool.read_page pool a (fun _ -> ());
  let s = Buffer_pool.stats pool in
  Alcotest.(check bool) "hits recorded" (s.Buffer_pool.hits >= 2) true;
  Buffer_pool.close pool

let test_pool_closed () =
  let pool = Buffer_pool.create ~page_bytes:64 () in
  let id = Buffer_pool.allocate pool in
  Buffer_pool.close pool;
  Alcotest.check_raises "closed" (Invalid_argument "Buffer_pool: closed")
    (fun () -> Buffer_pool.read_page pool id (fun _ -> ()))

let people_schema =
  Schema.make [ ("id", Value.TInt); ("name", Value.TStr); ("v", Value.TFloat) ]

let mk_rows n =
  List.init n (fun i ->
      [| Value.Int i; Value.Str (Printf.sprintf "row%d" i); Value.Float (float_of_int i *. 0.5) |])

let test_paged_store_scan () =
  let rows = mk_rows 5_000 in
  (* 4 frames x 64 KB but ~5000 x ~30B rows: a few pages, no spill. *)
  let ps = Paged_store.of_rows ~pool_frames:4 people_schema rows in
  Alcotest.(check int) "count" 5_000 (Paged_store.row_count ps);
  let back = List.of_seq (Paged_store.to_seq ps) in
  Alcotest.(check int) "all rows" 5_000 (List.length back);
  List.iteri
    (fun i row ->
      Alcotest.(check int) "order" i (Value.to_int row.(0)))
    back;
  Paged_store.close ps

let test_paged_store_spills () =
  (* 2 frames of 64 KB and a large string payload: the table must spill to
     disk and still scan back exactly. *)
  let big = String.make 4_000 'z' in
  let rows =
    List.init 200 (fun i ->
        [| Value.Int i; Value.Str big; Value.Float (float_of_int i) |])
  in
  let ps = Paged_store.of_rows ~pool_frames:2 people_schema rows in
  Alcotest.(check bool) "many pages" (Paged_store.page_count ps > 4) true;
  let stats = Paged_store.pool_stats ps in
  Alcotest.(check bool) "spilled" (stats.Buffer_pool.evictions > 0) true;
  let back = List.of_seq (Paged_store.to_seq ps) in
  Alcotest.(check int) "all rows" 200 (List.length back);
  List.iteri
    (fun i row ->
      Alcotest.(check int) "id" i (Value.to_int row.(0));
      Alcotest.(check bool) "payload intact"
        (match row.(1) with Value.Str s -> s = big | _ -> false)
        true)
    back;
  Paged_store.close ps

let test_paged_matches_row_store () =
  let rows = mk_rows 777 in
  let rs = Row_store.of_rows people_schema rows in
  let ps = Paged_store.of_rows ~pool_frames:2 people_schema rows in
  let a = List.of_seq (Row_store.to_seq rs) in
  let b = List.of_seq (Paged_store.to_seq ps) in
  Alcotest.(check bool) "identical scans"
    (List.for_all2 (fun x y -> Array.for_all2 Value.equal x y) a b)
    true;
  Paged_store.close ps

(* --- bitmaps --- *)

let test_bitmap_basics () =
  let b = Bitmap.create 200 in
  Bitmap.set b 0;
  Bitmap.set b 63;
  Bitmap.set b 199;
  Alcotest.(check int) "cardinality" 3 (Bitmap.cardinality b);
  Alcotest.(check bool) "get" (Bitmap.get b 63) true;
  Bitmap.clear b 63;
  Alcotest.(check bool) "cleared" (not (Bitmap.get b 63)) true;
  Alcotest.(check (list int)) "to_list" [ 0; 199 ] (Bitmap.to_list b);
  Alcotest.check_raises "bounds" (Invalid_argument "Bitmap: index out of range")
    (fun () -> Bitmap.set b 200)

let test_bitmap_ops () =
  let a = Bitmap.of_list 100 [ 1; 5; 50; 99 ] in
  let b = Bitmap.of_list 100 [ 5; 50; 80 ] in
  Alcotest.(check (list int)) "and" [ 5; 50 ] (Bitmap.to_list (Bitmap.band a b));
  Alcotest.(check (list int)) "or" [ 1; 5; 50; 80; 99 ]
    (Bitmap.to_list (Bitmap.bor a b));
  Alcotest.(check (list int)) "xor" [ 1; 80; 99 ]
    (Bitmap.to_list (Bitmap.bxor a b));
  Alcotest.(check int) "inter count" 2 (Bitmap.inter_count a b);
  let n = Bitmap.bnot a in
  Alcotest.(check int) "not cardinality" 96 (Bitmap.cardinality n);
  Alcotest.(check bool) "not flips" (Bitmap.get n 0) true

let test_bitmap_go_membership () =
  (* The GO matrix use case: genes per term as bitmaps; intersecting two
     terms counts co-annotated genes. *)
  let ds = Genbase.Dataset.generate (Gb_datagen.Spec.custom ~genes:80 ~patients:30) in
  let terms = ds.Gb_datagen.Generate.spec.Gb_datagen.Spec.go_terms in
  let maps = Array.init terms (fun _ -> Bitmap.create 80) in
  Array.iter
    (fun (g, t) -> Bitmap.set maps.(t) g)
    ds.Gb_datagen.Generate.go;
  let total =
    Array.fold_left (fun acc m -> acc + Bitmap.cardinality m) 0 maps
  in
  Alcotest.(check int) "pairs preserved"
    (Array.length ds.Gb_datagen.Generate.go)
    total

let prop_bitmap_demorgan =
  QCheck.Test.make ~name:"de morgan on bitmaps" ~count:50
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 99))
              (list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 99)))
    (fun (xs, ys) ->
      let a = Bitmap.of_list 100 xs and b = Bitmap.of_list 100 ys in
      Bitmap.to_list (Bitmap.bnot (Bitmap.band a b))
      = Bitmap.to_list (Bitmap.bor (Bitmap.bnot a) (Bitmap.bnot b)))

(* --- heap --- *)

let test_heap_sorts () =
  let h = Gb_util.Heap.create ~cmp:Int.compare in
  List.iter (Gb_util.Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check (list int)) "ascending" [ 1; 1; 2; 4; 5; 5; 6; 9 ]
    (Gb_util.Heap.to_sorted_list h)

let test_heap_top_k () =
  let xs = List.init 1000 (fun i -> (i * 37) mod 1000) in
  let top = Gb_util.Heap.top_k ~cmp:Int.compare 5 (List.to_seq xs) in
  Alcotest.(check (list int)) "five largest" [ 999; 998; 997; 996; 995 ] top;
  Alcotest.(check (list int)) "k > n" [ 2; 1 ]
    (Gb_util.Heap.top_k ~cmp:Int.compare 5 (List.to_seq [ 1; 2 ]));
  Alcotest.(check (list int)) "k = 0" []
    (Gb_util.Heap.top_k ~cmp:Int.compare 0 (List.to_seq [ 1; 2 ]))

let prop_top_k_matches_sort =
  QCheck.Test.make ~name:"top_k = take k of sort" ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size (QCheck.Gen.int_range 0 200) int))
    (fun (k, xs) ->
      let expected =
        List.filteri (fun i _ -> i < k) (List.sort (Fun.flip Int.compare) xs)
      in
      Gb_util.Heap.top_k ~cmp:Int.compare k (List.to_seq xs) = expected)

let suite =
  [
    ("pool roundtrip with eviction", `Quick, test_pool_roundtrip);
    ("pool hit tracking", `Quick, test_pool_hit_tracking);
    ("pool closed", `Quick, test_pool_closed);
    ("paged store scan", `Quick, test_paged_store_scan);
    ("paged store spills to disk", `Quick, test_paged_store_spills);
    ("paged store = row store", `Quick, test_paged_matches_row_store);
    ("bitmap basics", `Quick, test_bitmap_basics);
    ("bitmap ops", `Quick, test_bitmap_ops);
    ("bitmap GO membership", `Quick, test_bitmap_go_membership);
    QCheck_alcotest.to_alcotest prop_bitmap_demorgan;
    ("heap sorts", `Quick, test_heap_sorts);
    ("heap top-k", `Quick, test_heap_top_k);
    QCheck_alcotest.to_alcotest prop_top_k_matches_sort;
  ]
