open Gb_rlang
module Mat = Gb_linalg.Mat

let df () =
  Dataframe.of_columns
    [
      ("id", Dataframe.Ints [| 1; 2; 3; 4; 5 |]);
      ("grp", Dataframe.Ints [| 0; 1; 0; 1; 0 |]);
      ("v", Dataframe.Floats [| 10.; 20.; 30.; 40.; 50. |]);
      ("name", Dataframe.Strs [| "a"; "b"; "c"; "d"; "e" |]);
    ]

let test_shape () =
  let d = df () in
  Alcotest.(check int) "nrow" 5 (Dataframe.nrow d);
  Alcotest.(check int) "ncol" 4 (Dataframe.ncol d);
  Alcotest.(check (list string)) "names" [ "id"; "grp"; "v"; "name" ]
    (Dataframe.names d)

let test_ragged_rejected () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Dataframe.of_columns: ragged column b") (fun () ->
      ignore
        (Dataframe.of_columns
           [ ("a", Dataframe.Ints [| 1 |]); ("b", Dataframe.Ints [| 1; 2 |]) ]))

let test_accessors () =
  let d = df () in
  Alcotest.(check (array int)) "ints" [| 0; 1; 0; 1; 0 |] (Dataframe.ints d "grp");
  Alcotest.(check (array (float 0.))) "ints widened"
    [| 1.; 2.; 3.; 4.; 5. |]
    (Dataframe.floats d "id");
  Alcotest.check_raises "missing" (Invalid_argument "Dataframe: no column zz")
    (fun () -> ignore (Dataframe.column d "zz"))

let test_subset_which () =
  let d = df () in
  let grp = Dataframe.ints d "grp" in
  let zeros = Dataframe.subset d (fun _ i -> grp.(i) = 0) in
  Alcotest.(check int) "three rows" 3 (Dataframe.nrow zeros);
  Alcotest.(check (array int)) "ids" [| 1; 3; 5 |] (Dataframe.ints zeros "id");
  Alcotest.(check (array int)) "which" [| 0; 2; 4 |]
    (Dataframe.which d (fun _ i -> grp.(i) = 0))

let test_merge () =
  let x = df () in
  let y =
    Dataframe.of_columns
      [
        ("grp", Dataframe.Ints [| 0; 1 |]);
        ("label", Dataframe.Strs [| "zero"; "one" |]);
        ("v", Dataframe.Floats [| -1.; -2. |]);
      ]
  in
  let m = Dataframe.merge x y ~by:"grp" in
  Alcotest.(check int) "all rows match" 5 (Dataframe.nrow m);
  Alcotest.(check (list string)) "suffix on clash"
    [ "id"; "grp"; "v"; "name"; "label"; "v.y" ]
    (Dataframe.names m);
  let labels =
    match Dataframe.column m "label" with
    | Dataframe.Strs s -> s
    | _ -> Alcotest.fail "label type"
  in
  Alcotest.(check string) "joined value" "zero" labels.(0);
  Alcotest.(check string) "joined value" "one" labels.(1)

let test_merge_inner_semantics () =
  let x =
    Dataframe.of_columns [ ("k", Dataframe.Ints [| 1; 2; 2; 9 |]) ]
  in
  let y =
    Dataframe.of_columns
      [ ("k", Dataframe.Ints [| 2; 2; 3 |]); ("w", Dataframe.Ints [| 7; 8; 0 |]) ]
  in
  let m = Dataframe.merge x y ~by:"k" in
  (* keys 2,2 on the left each match 2 rows on the right: 4 rows. *)
  Alcotest.(check int) "cross product within key" 4 (Dataframe.nrow m)

let test_order_by () =
  let d =
    Dataframe.of_columns
      [ ("x", Dataframe.Floats [| 3.; 1.; 2. |]); ("tag", Dataframe.Ints [| 30; 10; 20 |]) ]
  in
  let o = Dataframe.order_by d "x" in
  Alcotest.(check (array int)) "reordered" [| 10; 20; 30 |]
    (Dataframe.ints o "tag")

let test_aggregate_mean () =
  let d = df () in
  let agg = Dataframe.aggregate_mean d ~by:"grp" ~value:"v" in
  Alcotest.(check int) "two groups" 2 (Dataframe.nrow agg);
  Alcotest.(check (array int)) "keys sorted" [| 0; 1 |] (Dataframe.ints agg "grp");
  Alcotest.(check (array (float 1e-12))) "means" [| 30.; 30. |]
    (Dataframe.floats agg "v")

let test_matrix_roundtrip () =
  let m = Mat.random (Gb_util.Prng.create 1L) 6 4 in
  let d = Dataframe.of_matrix m in
  Alcotest.(check int) "columns" 4 (Dataframe.ncol d);
  let back = Dataframe.to_matrix d ~cols:(Dataframe.names d) in
  Alcotest.(check bool) "roundtrip" (Mat.equal m back) true;
  (* Column subsets reorder. *)
  let sub = Dataframe.to_matrix d ~cols:[ "V3"; "V0" ] in
  Alcotest.(check (float 0.)) "reordered" (Mat.get m 2 3) (Mat.get sub 2 0)

(* --- Rvec --- *)

let test_rvec_seq_rep () =
  Alcotest.(check (array (float 1e-12))) "seq" [| 1.; 3.; 5. |]
    (Rvec.seq 1. 5. ~by:2.);
  Alcotest.(check (array (float 1e-12))) "descending" [| 5.; 4.; 3. |]
    (Rvec.seq 5. 3. ~by:(-1.));
  Alcotest.(check (array (float 0.))) "rep" [| 7.; 7.; 7. |] (Rvec.rep 7. ~times:3)

let test_rvec_cumsum_diff () =
  let a = [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check (array (float 1e-12))) "cumsum" [| 1.; 3.; 6.; 10. |]
    (Rvec.cumsum a);
  Alcotest.(check (array (float 1e-12))) "diff" [| 1.; 1.; 1. |] (Rvec.diff a);
  Alcotest.(check (array (float 1e-12))) "diff cumsum inverse" (Array.sub a 1 3 |> Array.map (fun _ -> 1.))
    (Rvec.diff (Rvec.cumsum [| 1.; 1.; 1.; 1. |]) |> Array.map (fun _ -> 1.))

let test_rvec_order_rank () =
  let a = [| 3.; 1.; 2. |] in
  Alcotest.(check (array int)) "order" [| 1; 2; 0 |] (Rvec.order a);
  Alcotest.(check (array (float 1e-12))) "rank" [| 3.; 1.; 2. |] (Rvec.rank a)

let test_rvec_tabulate () =
  Alcotest.(check (array int)) "tabulate" [| 2; 0; 1 |]
    (Rvec.tabulate [| 0; 2; 0; 7; -1 |] ~nbins:3)

let test_rvec_scale () =
  let s = Rvec.scale [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean 0" 0. (Gb_stats.Descriptive.mean s);
  Alcotest.(check (float 1e-9)) "sd 1" 1. (Gb_stats.Descriptive.std s)

let test_rvec_pminmax_which () =
  let a = [| 1.; 5. |] and b = [| 3.; 2. |] in
  Alcotest.(check (array (float 0.))) "pmax" [| 3.; 5. |] (Rvec.pmax a b);
  Alcotest.(check (array (float 0.))) "pmin" [| 1.; 2. |] (Rvec.pmin a b);
  Alcotest.(check int) "which_max" 1 (Rvec.which_max a);
  Alcotest.(check int) "which_min" 0 (Rvec.which_min a)

let test_rvec_sample () =
  let a = Array.init 50 float_of_int in
  let s = Rvec.sample a 10 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 9 do
    Alcotest.(check bool) "distinct" (sorted.(i) <> sorted.(i - 1)) true
  done

let suite =
  [
    ("shape", `Quick, test_shape);
    ("ragged rejected", `Quick, test_ragged_rejected);
    ("accessors", `Quick, test_accessors);
    ("subset/which", `Quick, test_subset_which);
    ("merge", `Quick, test_merge);
    ("merge inner semantics", `Quick, test_merge_inner_semantics);
    ("order by", `Quick, test_order_by);
    ("aggregate mean", `Quick, test_aggregate_mean);
    ("matrix roundtrip", `Quick, test_matrix_roundtrip);
    ("rvec seq/rep", `Quick, test_rvec_seq_rep);
    ("rvec cumsum/diff", `Quick, test_rvec_cumsum_diff);
    ("rvec order/rank", `Quick, test_rvec_order_rank);
    ("rvec tabulate", `Quick, test_rvec_tabulate);
    ("rvec scale", `Quick, test_rvec_scale);
    ("rvec pmax/which", `Quick, test_rvec_pminmax_which);
    ("rvec sample", `Quick, test_rvec_sample);
  ]

