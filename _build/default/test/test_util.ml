open Gb_util

let check_float = Alcotest.(check (float 1e-9))

let test_prng_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let g = Prng.create 7L in
  let a = Prng.split g in
  let b = Prng.split g in
  Alcotest.(check bool) "different streams"
    (Prng.next_int64 a <> Prng.next_int64 b)
    true

let test_prng_int_bounds () =
  let g = Prng.create 42L in
  for _ = 1 to 10_000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in range" (v >= 0 && v < 17) true
  done

let test_prng_uniform_range () =
  let g = Prng.create 9L in
  for _ = 1 to 10_000 do
    let u = Prng.uniform g in
    Alcotest.(check bool) "in [0,1)" (u >= 0. && u < 1.) true
  done

let test_prng_normal_moments () =
  let g = Prng.create 3L in
  let n = 50_000 in
  let sum = ref 0. and sum2 = ref 0. in
  for _ = 1 to n do
    let x = Prng.normal g in
    sum := !sum +. x;
    sum2 := !sum2 +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 0" (Float.abs mean < 0.02) true;
  Alcotest.(check bool) "var near 1" (Float.abs (var -. 1.) < 0.05) true

let test_prng_sample_distinct () =
  let g = Prng.create 11L in
  let s = Prng.sample g 50 100 in
  Alcotest.(check int) "size" 50 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  for i = 1 to 49 do
    Alcotest.(check bool) "distinct" (sorted.(i) <> sorted.(i - 1)) true
  done;
  Array.iter (fun v -> Alcotest.(check bool) "in range" (v >= 0 && v < 100) true) s

let test_prng_shuffle_permutation () =
  let g = Prng.create 5L in
  let a = Array.init 100 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_argsort () =
  let a = [| 3.; 1.; 2. |] in
  Alcotest.(check (array int)) "ascending" [| 1; 2; 0 |] (Order.argsort a);
  Alcotest.(check (array int)) "descending" [| 0; 2; 1 |]
    (Order.argsort ~descending:true a)

let test_argsort_stable_on_ties () =
  let a = [| 1.; 1.; 0. |] in
  Alcotest.(check (array int)) "ties keep index order" [| 2; 0; 1 |]
    (Order.argsort a)

let test_top_k () =
  let a = [| 5.; 9.; 1.; 7. |] in
  Alcotest.(check (array int)) "top2" [| 1; 3 |] (Order.top_k 2 a);
  Alcotest.(check int) "clamped" 4 (Array.length (Order.top_k 10 a))

let test_quantile_threshold () =
  let a = Array.init 100 (fun i -> float_of_int i) in
  check_float "top 10%" 90. (Order.quantile_threshold a 0.1);
  check_float "all" 0. (Order.quantile_threshold a 1.)

let test_sim_clock () =
  let c = Clock.Sim.create () in
  Clock.Sim.advance c 1.5;
  Clock.Sim.advance c 0.5;
  check_float "advances" 2.0 (Clock.Sim.now c)

let test_sim_run_scaled () =
  let c = Clock.Sim.create () in
  let () = Clock.Sim.run_scaled c ~speedup:2.0 (fun () -> Unix.sleepf 0.02) in
  let t = Clock.Sim.now c in
  Alcotest.(check bool) "scaled below real" (t < 0.02) true;
  Alcotest.(check bool) "positive" (t > 0.) true

let test_deadline () =
  let d = Deadline.start ~seconds:0.01 in
  Alcotest.(check bool) "not yet" (not (Deadline.expired d)) true;
  Unix.sleepf 0.02;
  Alcotest.check_raises "raises" Deadline.Timeout (fun () -> Deadline.check d)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_render_table () =
  let s = Render.table ~headers:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ] ] in
  Alcotest.(check bool) "has border" (String.length s > 0 && s.[0] = '+') true;
  Alcotest.(check bool) "mentions header" (contains s "bb") true

let test_render_seconds () =
  Alcotest.(check string) "inf" "INF" (Render.seconds infinity);
  Alcotest.(check string) "ms" "0.034" (Render.seconds 0.034);
  Alcotest.(check string) "hundreds" "123" (Render.seconds 123.4)

let suite =
  [
    ("prng deterministic", `Quick, test_prng_deterministic);
    ("prng split independent", `Quick, test_prng_split_independent);
    ("prng int bounds", `Quick, test_prng_int_bounds);
    ("prng uniform range", `Quick, test_prng_uniform_range);
    ("prng normal moments", `Quick, test_prng_normal_moments);
    ("prng sample distinct", `Quick, test_prng_sample_distinct);
    ("prng shuffle permutation", `Quick, test_prng_shuffle_permutation);
    ("argsort", `Quick, test_argsort);
    ("argsort stable", `Quick, test_argsort_stable_on_ties);
    ("top_k", `Quick, test_top_k);
    ("quantile threshold", `Quick, test_quantile_threshold);
    ("sim clock", `Quick, test_sim_clock);
    ("sim run_scaled", `Quick, test_sim_run_scaled);
    ("deadline", `Quick, test_deadline);
    ("render table", `Quick, test_render_table);
    ("render seconds", `Quick, test_render_seconds);
  ]
