(* k-means and spectral co-clustering. *)

module Mat = Gb_linalg.Mat
module Kmeans = Gb_linalg.Kmeans

let rng () = Gb_util.Prng.create 0xC1A55L

let blobs () =
  (* Three well-separated Gaussian blobs of 30 points each in 2-D. *)
  let g = rng () in
  let centers = [| (0., 0.); (20., 0.); (0., 20.) |] in
  let m =
    Mat.init 90 2 (fun i d ->
        let cx, cy = centers.(i / 30) in
        let base = if d = 0 then cx else cy in
        base +. Gb_util.Prng.normal g)
  in
  m

let test_kmeans_separated_blobs () =
  let m = blobs () in
  let res = Kmeans.fit ~rng:(rng ()) ~k:3 m in
  (* Points within a blob share a label; blobs have distinct labels. *)
  for b = 0 to 2 do
    let label = res.Kmeans.assignments.(b * 30) in
    for i = b * 30 to (b * 30) + 29 do
      Alcotest.(check int) "blob homogeneous" label res.Kmeans.assignments.(i)
    done
  done;
  let l0 = res.Kmeans.assignments.(0)
  and l1 = res.Kmeans.assignments.(30)
  and l2 = res.Kmeans.assignments.(60) in
  Alcotest.(check bool) "distinct labels"
    (l0 <> l1 && l1 <> l2 && l0 <> l2)
    true

let test_kmeans_inertia_decreases_with_k () =
  let m = blobs () in
  let i1 = (Kmeans.fit ~rng:(rng ()) ~k:1 m).Kmeans.inertia in
  let i3 = (Kmeans.fit ~rng:(rng ()) ~k:3 m).Kmeans.inertia in
  Alcotest.(check bool) "k=3 much tighter" (i3 < i1 /. 10.) true

let test_kmeans_k_equals_n () =
  let m = Mat.random (rng ()) 5 2 in
  let res = Kmeans.fit ~rng:(rng ()) ~k:5 m in
  Alcotest.(check (float 1e-9)) "zero inertia" 0. res.Kmeans.inertia

let test_kmeans_bad_k () =
  let m = Mat.random (rng ()) 5 2 in
  Alcotest.check_raises "k too big" (Invalid_argument "Kmeans.fit: k")
    (fun () -> ignore (Kmeans.fit ~k:6 m))

(* Block-structured matrix: rows 0-19 high on cols 0-14, rows 20-39 high on
   cols 15-29. *)
let block_matrix () =
  let g = rng () in
  Mat.init 40 30 (fun i j ->
      let same_block = (i < 20 && j < 15) || (i >= 20 && j >= 15) in
      (if same_block then 10. else 0.1) +. (0.05 *. Gb_util.Prng.normal g))

let test_spectral_recovers_blocks () =
  let m = block_matrix () in
  let clusters = Gb_bicluster.Spectral.run ~rng:(rng ()) ~k:2 m in
  Alcotest.(check int) "two coclusters" 2 (List.length clusters);
  List.iter
    (fun (c : Gb_bicluster.Spectral.cocluster) ->
      let rows_low = Array.for_all (fun r -> r < 20) c.rows in
      let rows_high = Array.for_all (fun r -> r >= 20) c.rows in
      let cols_low = Array.for_all (fun j -> j < 15) c.cols in
      let cols_high = Array.for_all (fun j -> j >= 15) c.cols in
      Alcotest.(check bool) "rows pure" (rows_low || rows_high) true;
      Alcotest.(check bool) "cols pure" (cols_low || cols_high) true;
      (* Rows and cols of a cocluster belong to the same planted block. *)
      Alcotest.(check bool) "aligned"
        ((rows_low && cols_low) || (rows_high && cols_high))
        true)
    clusters;
  (* Every row and column lands somewhere. *)
  let total_rows =
    List.fold_left
      (fun acc (c : Gb_bicluster.Spectral.cocluster) -> acc + Array.length c.rows)
      0 clusters
  in
  Alcotest.(check int) "rows partitioned" 40 total_rows

let test_spectral_handles_negative_values () =
  let g = rng () in
  let m = Mat.random g 20 15 in
  let clusters = Gb_bicluster.Spectral.run ~rng:g ~k:3 m in
  Alcotest.(check int) "k coclusters" 3 (List.length clusters)

let test_spectral_bad_k () =
  let m = Mat.random (rng ()) 4 4 in
  Alcotest.check_raises "k" (Invalid_argument "Spectral.run: k") (fun () ->
      ignore (Gb_bicluster.Spectral.run ~k:5 m))

let suite =
  [
    ("kmeans separated blobs", `Quick, test_kmeans_separated_blobs);
    ("kmeans inertia vs k", `Quick, test_kmeans_inertia_decreases_with_k);
    ("kmeans k = n", `Quick, test_kmeans_k_equals_n);
    ("kmeans bad k", `Quick, test_kmeans_bad_k);
    ("spectral recovers blocks", `Quick, test_spectral_recovers_blocks);
    ("spectral negative values", `Quick, test_spectral_handles_negative_values);
    ("spectral bad k", `Quick, test_spectral_bad_k);
  ]
