open Gb_arraydb
module Mat = Gb_linalg.Mat

let test_chunked_roundtrip () =
  let m = Mat.random (Gb_util.Prng.create 1L) 130 70 in
  let c = Chunked.of_matrix m in
  Alcotest.(check (pair int int)) "dims" (130, 70) (Chunked.dims c);
  Alcotest.(check bool) "to_matrix" (Mat.equal m (Chunked.to_matrix c)) true

let test_chunked_get_set () =
  let c = Chunked.create 100 100 in
  Chunked.set c 99 99 5.;
  Chunked.set c 0 0 1.;
  Chunked.set c 63 64 2. (* chunk boundary *);
  Alcotest.(check (float 0.)) "corner" 5. (Chunked.get c 99 99);
  Alcotest.(check (float 0.)) "origin" 1. (Chunked.get c 0 0);
  Alcotest.(check (float 0.)) "boundary" 2. (Chunked.get c 63 64);
  Alcotest.check_raises "oob" (Invalid_argument "Chunked.get: out of bounds")
    (fun () -> ignore (Chunked.get c 100 0))

let test_chunked_select_rows () =
  let m = Mat.init 100 40 (fun i j -> float_of_int ((i * 100) + j)) in
  let c = Chunked.of_matrix m in
  let sel = Chunked.select_rows c [| 99; 0; 50 |] in
  Alcotest.(check (pair int int)) "dims" (3, 40) (Chunked.dims sel);
  Alcotest.(check (float 0.)) "row order" 9900. (Chunked.get sel 0 0);
  Alcotest.(check (float 0.)) "second" 0. (Chunked.get sel 1 0);
  Alcotest.(check (float 0.)) "third" 5039. (Chunked.get sel 2 39)

let test_chunked_select_cols () =
  let m = Mat.init 70 130 (fun i j -> float_of_int ((i * 1000) + j)) in
  let c = Chunked.of_matrix m in
  let sel = Chunked.select_cols c [| 128; 1 |] in
  Alcotest.(check (pair int int)) "dims" (70, 2) (Chunked.dims sel);
  Alcotest.(check (float 0.)) "pick" 128. (Chunked.get sel 0 0);
  Alcotest.(check (float 0.)) "pick2" 69001. (Chunked.get sel 69 1)

let test_chunked_map () =
  let m = Mat.init 10 10 (fun i j -> float_of_int (i + j)) in
  let c = Chunked.map (fun v -> v *. 2.) (Chunked.of_matrix m) in
  Alcotest.(check (float 0.)) "mapped" 36. (Chunked.get c 9 9)

let test_iter_chunks_covers () =
  let m = Mat.init 130 70 (fun i j -> float_of_int ((i * 70) + j)) in
  let c = Chunked.of_matrix m in
  let seen = Array.make_matrix 130 70 false in
  Chunked.iter_chunks c (fun ~row0 ~col0 tile ->
      let h, w = Mat.dims tile in
      for i = 0 to h - 1 do
        for j = 0 to w - 1 do
          Alcotest.(check (float 0.)) "tile value"
            (Mat.get m (row0 + i) (col0 + j))
            (Mat.get tile i j);
          seen.(row0 + i).(col0 + j) <- true
        done
      done);
  Alcotest.(check bool) "full coverage"
    (Array.for_all (Array.for_all Fun.id) seen)
    true

let test_chunk_count () =
  let c = Chunked.create 130 70 in
  (* ceil(130/64) * ceil(70/64) = 3 * 2 *)
  Alcotest.(check int) "grid" 6 (Chunked.chunk_count c)

let test_attr_array () =
  let a =
    Attr_array.of_columns
      [ ("age", [| 30.; 50.; 20. |]); ("gender", [| 0.; 1.; 1. |]) ]
  in
  Alcotest.(check int) "length" 3 (Attr_array.length a);
  Alcotest.(check (list string)) "attributes" [ "age"; "gender" ]
    (Attr_array.attributes a);
  Alcotest.(check (float 0.)) "get" 50. (Attr_array.get a "age" 1);
  Attr_array.set a "age" 1 55.;
  Alcotest.(check (float 0.)) "set" 55. (Attr_array.get a "age" 1)

let test_attr_filter_select () =
  let a =
    Attr_array.of_columns
      [ ("age", [| 30.; 50.; 20.; 45. |]); ("gender", [| 0.; 1.; 1.; 1. |]) ]
  in
  let young_male =
    Attr_array.filter a (fun i ->
        Attr_array.get a "age" i < 46. && Attr_array.get a "gender" i = 1.)
  in
  Alcotest.(check (array int)) "indices" [| 2; 3 |] young_male;
  let sel = Attr_array.select a young_male in
  Alcotest.(check int) "selected" 2 (Attr_array.length sel);
  Alcotest.(check (float 0.)) "values follow" 45. (Attr_array.get sel "age" 1)

let test_attr_unknown () =
  let a = Attr_array.create ~names:[ "x" ] ~length:2 in
  Alcotest.check_raises "unknown" (Invalid_argument "Attr_array: no attribute y")
    (fun () -> ignore (Attr_array.get a "y" 0))

let suite =
  [
    ("chunked roundtrip", `Quick, test_chunked_roundtrip);
    ("chunked get/set", `Quick, test_chunked_get_set);
    ("chunked select rows", `Quick, test_chunked_select_rows);
    ("chunked select cols", `Quick, test_chunked_select_cols);
    ("chunked map", `Quick, test_chunked_map);
    ("iter chunks covers", `Quick, test_iter_chunks_covers);
    ("chunk count", `Quick, test_chunk_count);
    ("attr array", `Quick, test_attr_array);
    ("attr filter/select", `Quick, test_attr_filter_select);
    ("attr unknown", `Quick, test_attr_unknown);
  ]
