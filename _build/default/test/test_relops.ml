(* The relational DM plans must produce exactly the selections the direct
   (array-based) reference computes. *)

open Genbase
module Mat = Gb_linalg.Mat
module G = Gb_datagen.Generate

let ds = Dataset.generate (Gb_datagen.Spec.custom ~genes:50 ~patients:90)
let params = Query.default_params

let db () = Engine_sql.make_db Engine_sql.Col_backend ds ~check:(fun () -> ())
let db_row () = Engine_sql.make_db Engine_sql.Row_backend ds ~check:(fun () -> ())

let test_q1_dm_matches_reference () =
  let x, y, gene_ids = Relops.q1_dm (db ()) params in
  let expected_genes = Qcommon.genes_with_func_below ds params.func_threshold in
  Alcotest.(check (array int)) "selected genes" expected_genes gene_ids;
  let expected_x = Mat.sub_cols ds.G.expression expected_genes in
  Alcotest.(check bool) "matrix" (Mat.equal expected_x x) true;
  Array.iteri
    (fun i (p : G.patient) ->
      Alcotest.(check (float 1e-12)) "response aligned" p.drug_response y.(i))
    ds.G.patients

let test_q1_row_and_col_agree () =
  let x1, y1, g1 = Relops.q1_dm (db ()) params in
  let x2, y2, g2 = Relops.q1_dm (db_row ()) params in
  Alcotest.(check bool) "matrices equal" (Mat.equal x1 x2) true;
  Alcotest.(check (array int)) "genes equal" g1 g2;
  Alcotest.(check bool) "responses equal" (y1 = y2) true

let test_q2_dm_matches_reference () =
  (* Pick a disease that certainly has patients in this tiny cohort. *)
  let disease = ds.G.patients.(0).G.disease_id in
  let params = { params with Query.disease_id = disease } in
  let m, gene_ids = Relops.q2_dm (db ()) params in
  let pat = Qcommon.patients_with_disease ds disease in
  Alcotest.(check int) "rows = cohort" (Array.length pat) (fst (Mat.dims m));
  Alcotest.(check int) "all genes" 50 (Array.length gene_ids);
  let expected = Mat.sub_rows ds.G.expression pat in
  Alcotest.(check bool) "matrix" (Mat.equal expected m) true

let test_q3_dm_matches_reference () =
  let m = Relops.q3_dm (db ()) params in
  let pat =
    Qcommon.patients_by_age_gender ds ~max_age:params.max_age
      ~gender:params.gender
  in
  let expected = Mat.sub_rows ds.G.expression pat in
  Alcotest.(check bool) "matrix" (Mat.equal expected m) true

let test_q4_dm_matches_reference () =
  let x, gene_ids = Relops.q4_dm (db ()) params in
  let expected_genes = Qcommon.genes_with_func_below ds params.func_threshold in
  Alcotest.(check (array int)) "genes" expected_genes gene_ids;
  Alcotest.(check bool) "matrix"
    (Mat.equal (Mat.sub_cols ds.G.expression expected_genes) x)
    true

let test_q5_dm_matches_reference () =
  let scores, go_pairs =
    Relops.q5_dm (db ()) params ~n_patients:(Array.length ds.G.patients)
  in
  let sample = Qcommon.sampled_patients ds params.sample_fraction in
  let expected =
    Qcommon.enrichment_scores (Mat.sub_rows ds.G.expression sample)
  in
  Alcotest.(check int) "score per gene" 50 (Array.length scores);
  Array.iteri
    (fun g s -> Alcotest.(check (float 1e-9)) "score" expected.(g) s)
    scores;
  Alcotest.(check int) "go pairs" (Array.length ds.G.go) (Array.length go_pairs)

let test_q2_join_metadata_count () =
  let n =
    Relops.q2_join_metadata (db ()) [ (0, 1, 0.5); (2, 3, -0.5); (4, 0, 1.0) ]
  in
  Alcotest.(check int) "every pair joins its gene row" 3 n

let test_q5_guard_timeout () =
  let check () = raise Gb_util.Deadline.Timeout in
  let db = Engine_sql.make_db Engine_sql.Col_backend ds ~check in
  Alcotest.check_raises "guard propagates" Gb_util.Deadline.Timeout (fun () ->
      ignore (Relops.q1_dm db params))

let suite =
  [
    ("q1 dm matches reference", `Quick, test_q1_dm_matches_reference);
    ("q1 row/col stores agree", `Quick, test_q1_row_and_col_agree);
    ("q2 dm matches reference", `Quick, test_q2_dm_matches_reference);
    ("q3 dm matches reference", `Quick, test_q3_dm_matches_reference);
    ("q4 dm matches reference", `Quick, test_q4_dm_matches_reference);
    ("q5 dm matches reference", `Quick, test_q5_dm_matches_reference);
    ("q2 metadata join count", `Quick, test_q2_join_metadata_count);
    ("guard propagates timeout", `Quick, test_q5_guard_timeout);
  ]
