open Gb_mapreduce
module Mat = Gb_linalg.Mat

let test_wordcount () =
  let mr = Mr.create ~job_overhead_s:0.01 () in
  let out =
    Mr.run_job mr ~name:"wordcount"
      ~mapper:(fun line ->
        String.split_on_char ' ' line |> List.map (fun w -> (w, "1")))
      ~reducer:(fun w counts -> [ Printf.sprintf "%s=%d" w (List.length counts) ])
      [ "a b a"; "b c" ]
  in
  Alcotest.(check (list string)) "counts" [ "a=2"; "b=2"; "c=1" ] out;
  Alcotest.(check int) "one job" 1 (Mr.jobs_run mr);
  Alcotest.(check bool) "overhead charged" (Mr.elapsed mr >= 0.01) true

let test_map_only () =
  let mr = Mr.create ~job_overhead_s:0.01 () in
  let out =
    Mr.map_only mr ~name:"upper"
      ~mapper:(fun l -> [ String.uppercase_ascii l ])
      [ "x"; "y" ]
  in
  Alcotest.(check (list string)) "mapped" [ "X"; "Y" ] out

let test_run_combine () =
  let mr = Mr.create ~job_overhead_s:0.01 () in
  let out =
    Mr.run_combine mr ~name:"sum" ~init:0
      ~fold:(fun acc line -> acc + int_of_string line)
      ~emit:(fun acc -> [ string_of_int acc ])
      [ "1"; "2"; "3" ]
  in
  Alcotest.(check (list string)) "combined" [ "6" ] out

let test_deadline () =
  let mr = Mr.create ~job_overhead_s:10. () in
  Mr.set_deadline mr 5.;
  ignore (Mr.map_only mr ~name:"first" ~mapper:(fun l -> [ l ]) [ "x" ]);
  Alcotest.check_raises "second job times out" Mr.Timeout (fun () ->
      ignore (Mr.map_only mr ~name:"second" ~mapper:(fun l -> [ l ]) [ "x" ]))

let test_multinode_faster_compute () =
  let work input =
    List.concat_map
      (fun l -> List.init 200 (fun i -> Printf.sprintf "%s-%d" l i))
      input
  in
  let inputs = List.init 2000 string_of_int in
  let mr1 = Mr.create ~job_overhead_s:0. ~nodes:1 () in
  ignore (Mr.map_only mr1 ~name:"w" ~mapper:(fun l -> work [ l ]) inputs);
  let mr4 = Mr.create ~job_overhead_s:0. ~nodes:4 () in
  ignore (Mr.map_only mr4 ~name:"w" ~mapper:(fun l -> work [ l ]) inputs);
  Alcotest.(check bool) "4 nodes faster but not 4x"
    (Mr.elapsed mr4 < Mr.elapsed mr1)
    true

let test_hive_select_project () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let t = [ "1,a,10"; "2,b,20"; "3,c,30" ] in
  let sel = Hive.select mr (fun f -> int_of_string f.(2) > 10) t in
  Alcotest.(check (list string)) "select" [ "2,b,20"; "3,c,30" ] sel;
  let proj = Hive.project mr [ 1 ] sel in
  Alcotest.(check (list string)) "project" [ "b"; "c" ] proj

let test_hive_join () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let left = [ "1,x"; "2,y"; "1,z" ] in
  let right = [ "1,AA"; "3,CC" ] in
  let out =
    Hive.join mr ~left_key:0 ~right_key:0 left right
    |> List.sort compare
  in
  Alcotest.(check (list string)) "join" [ "1,x,AA"; "1,z,AA" ] out

let test_hive_aggregate_count () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let t = [ "a,1"; "a,2"; "b,5" ] in
  let sums = Hive.aggregate_sum mr ~key:0 ~value:1 t |> List.sort compare in
  Alcotest.(check (list string)) "sums" [ "a,3"; "b,5" ] sums;
  Alcotest.(check int) "count" 3 (Hive.count mr t)

let test_mahout_roundtrip () =
  let m = Mat.random (Gb_util.Prng.create 2L) 5 4 in
  let back = Mahout.to_mat ~rows:5 ~cols:4 (Mahout.of_mat m) in
  Alcotest.(check bool) "roundtrip" (Mat.max_abs_diff m back < 1e-9) true

let test_mahout_transpose () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let m = Mat.random (Gb_util.Prng.create 3L) 4 6 in
  let t = Mahout.to_mat ~rows:6 ~cols:4 (Mahout.transpose mr (Mahout.of_mat m)) in
  Alcotest.(check bool) "transpose" (Mat.equal t (Mat.transpose m)) true

let test_mahout_matmul () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let g = Gb_util.Prng.create 4L in
  let a = Mat.random g 5 3 and b = Mat.random g 3 4 in
  let out =
    Mahout.to_mat ~rows:5 ~cols:4
      (Mahout.matmul mr (Mahout.of_mat a) (Mahout.of_mat b))
  in
  Alcotest.(check bool) "matmul"
    (Mat.max_abs_diff out (Gb_linalg.Blas.gemm a b) < 1e-9)
    true

let test_mahout_covariance () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let m = Mat.random (Gb_util.Prng.create 5L) 15 6 in
  let cov =
    Mahout.to_mat ~rows:6 ~cols:6
      (Mahout.covariance mr ~rows:15 ~cols:6 (Mahout.of_mat m))
  in
  Alcotest.(check bool) "covariance"
    (Mat.max_abs_diff cov (Gb_linalg.Covariance.matrix m) < 1e-8)
    true

let test_mahout_regression () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let g = Gb_util.Prng.create 6L in
  let x = Mat.random g 100 3 in
  let y =
    Array.init 100 (fun i ->
        2. +. (3. *. Mat.get x i 0) -. (1.5 *. Mat.get x i 2))
  in
  let beta = Mahout.regression mr ~rows:100 ~cols:3 (Mahout.of_mat x) y in
  Alcotest.(check (float 1e-6)) "intercept" 2. beta.(0);
  Alcotest.(check (float 1e-6)) "b1" 3. beta.(1);
  Alcotest.(check (float 1e-6)) "b2" 0. beta.(2);
  Alcotest.(check (float 1e-6)) "b3" (-1.5) beta.(3)

let test_mahout_lanczos () =
  let mr = Mr.create ~job_overhead_s:0. () in
  let g = Gb_util.Prng.create 7L in
  let m = Mat.random g 20 8 in
  let eigs = Mahout.lanczos_eigs mr ~rows:20 ~cols:8 ~k:3 (Mahout.of_mat m) in
  let exact = Gb_linalg.Lanczos.top_eigen ~rng:g (Gb_linalg.Blas.ata m) 3 in
  Array.iteri
    (fun i e ->
      Alcotest.(check bool) "close"
        (Float.abs (e -. exact.Gb_linalg.Lanczos.eigenvalues.(i)) < 1e-5)
        true)
    eigs

let test_combiner_preserves_result () =
  let sum_reducer _k vs =
    [ string_of_float (List.fold_left (fun a v -> a +. float_of_string v) 0. vs) ]
  in
  let inputs = List.init 500 (fun i -> Printf.sprintf "%d,%d" (i mod 7) i) in
  let mapper line =
    match String.split_on_char ',' line with
    | [ k; v ] -> [ (k, v) ]
    | _ -> []
  in
  let mr1 = Mr.create ~job_overhead_s:0. () in
  let plain = Mr.run_job mr1 ~name:"sum" ~mapper ~reducer:sum_reducer inputs in
  let mr2 = Mr.create ~job_overhead_s:0. () in
  let combined =
    Mr.run_job mr2 ~name:"sum" ~combiner:sum_reducer ~mapper
      ~reducer:sum_reducer inputs
  in
  Alcotest.(check (list string)) "same sums" (List.sort compare plain)
    (List.sort compare combined)

let suite =
  [
    ("wordcount", `Quick, test_wordcount);
    ("combiner preserves result", `Quick, test_combiner_preserves_result);
    ("map only", `Quick, test_map_only);
    ("run combine", `Quick, test_run_combine);
    ("deadline", `Quick, test_deadline);
    ("multinode compute", `Quick, test_multinode_faster_compute);
    ("hive select/project", `Quick, test_hive_select_project);
    ("hive join", `Quick, test_hive_join);
    ("hive aggregate/count", `Quick, test_hive_aggregate_count);
    ("mahout roundtrip", `Quick, test_mahout_roundtrip);
    ("mahout transpose", `Quick, test_mahout_transpose);
    ("mahout matmul", `Quick, test_mahout_matmul);
    ("mahout covariance", `Quick, test_mahout_covariance);
    ("mahout regression", `Quick, test_mahout_regression);
    ("mahout lanczos", `Quick, test_mahout_lanczos);
  ]

