(* Cross-engine scaling behaviors the paper reports, asserted as
   inequalities (robust to machine speed). *)

open Genbase
module Spec = Gb_datagen.Spec

let large = lazy (Dataset.of_size Spec.Large)
let medium = lazy (Dataset.of_size Spec.Medium)

let total e ds q =
  match Engine.run e ds q ~timeout_s:300. () with
  | Engine.Completed (t, _) -> Engine.total t
  | o ->
    Alcotest.failf "%s failed: %s" e.Engine.name
      (Format.asprintf "%a" Engine.pp_outcome o)

let analytics e ds q =
  match Engine.run e ds q ~timeout_s:300. () with
  | Engine.Completed (t, _) -> t.Engine.analytics
  | _ -> Alcotest.fail "run failed"

let test_scidb_two_node_regression_penalty () =
  (* "SciDB often has worse performance on two nodes than on one" — the
     chunk redistribution penalty. *)
  let ds = Lazy.force large in
  let one = total (Engine_scidb_mn.engine ~nodes:1) ds Query.Q1_regression in
  let two = total (Engine_scidb_mn.engine ~nodes:2) ds Query.Q1_regression in
  Alcotest.(check bool) "2 nodes slower than 1" (two > one) true

let test_pbdr_scales () =
  let ds = Lazy.force large in
  let one = total (Engine_pbdr.engine ~nodes:1) ds Query.Q1_regression in
  let four = total (Engine_pbdr.engine ~nodes:4) ds Query.Q1_regression in
  Alcotest.(check bool) "speedup" (four < one) true;
  Alcotest.(check bool) "sub-linear-ish sane" (four > one /. 16.) true

let test_hadoop_multinode_faster () =
  let ds = Lazy.force medium in
  let one = total (Engine_hadoop.engine_multinode ~nodes:1) ds Query.Q2_covariance in
  let four = total (Engine_hadoop.engine_multinode ~nodes:4) ds Query.Q2_covariance in
  Alcotest.(check bool) "multi-node helps" (four < one) true;
  (* Job overhead does not parallelize, so far from 4x. *)
  Alcotest.(check bool) "not linear" (four > one /. 4.) true

let test_phi_speedup_on_covariance () =
  let ds = Lazy.force large in
  let host = analytics Engine_scidb.engine ds Query.Q2_covariance in
  let phi = analytics Engine_phi.engine ds Query.Q2_covariance in
  let speedup = host /. phi in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f in band" speedup)
    (speedup > 1.3 && speedup < 4.5)
    true

let test_phi_no_gain_on_biclustering () =
  let ds = Lazy.force large in
  let host = analytics Engine_scidb.engine ds Query.Q3_biclustering in
  let phi = analytics Engine_phi.engine ds Query.Q3_biclustering in
  let speedup = host /. phi in
  Alcotest.(check bool)
    (Printf.sprintf "speedup %.2f modest" speedup)
    (speedup < 1.8)
    true

let test_analytics_fraction_grows () =
  (* "as the problem size gets larger, the fraction of time spent on
     analytics increases" — checked on the SciDB engine, covariance. *)
  let frac ds =
    match Engine.run Engine_scidb.engine ds Query.Q2_covariance ~timeout_s:300. () with
    | Engine.Completed (t, _) ->
      t.Engine.analytics /. Float.max 1e-9 (Engine.total t)
    | _ -> Alcotest.fail "run failed"
  in
  let small = frac (Dataset.of_size Spec.Small) in
  let big = frac (Lazy.force large) in
  Alcotest.(check bool)
    (Printf.sprintf "fraction grows (%.2f -> %.2f)" small big)
    (big >= small || big > 0.9)
    true

let suite =
  [
    ("scidb 2-node penalty", `Slow, test_scidb_two_node_regression_penalty);
    ("pbdr scales", `Slow, test_pbdr_scales);
    ("hadoop multi-node", `Slow, test_hadoop_multinode_faster);
    ("phi covariance speedup", `Slow, test_phi_speedup_on_covariance);
    ("phi biclustering flat", `Slow, test_phi_no_gain_on_biclustering);
    ("analytics fraction grows", `Slow, test_analytics_fraction_grows);
  ]
