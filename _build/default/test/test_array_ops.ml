open Gb_arraydb
module Mat = Gb_linalg.Mat

let grid rows cols f = Chunked.of_matrix (Mat.init rows cols f)

let test_between () =
  let t = grid 10 10 (fun i j -> float_of_int ((i * 10) + j)) in
  let sub = Array_ops.between t ~r0:2 ~c0:3 ~r1:4 ~c1:5 in
  Alcotest.(check (pair int int)) "dims" (3, 3) (Chunked.dims sub);
  Alcotest.(check (float 0.)) "corner" 23. (Chunked.get sub 0 0);
  Alcotest.(check (float 0.)) "far corner" 45. (Chunked.get sub 2 2);
  Alcotest.check_raises "bounds" (Invalid_argument "Array_ops.between: bounds")
    (fun () -> ignore (Array_ops.between t ~r0:0 ~c0:0 ~r1:10 ~c1:0))

let test_aggregate_dims () =
  let t = grid 4 3 (fun i j -> float_of_int (i + j)) in
  let col_sums = Array_ops.aggregate_rows t Array_ops.Sum in
  Alcotest.(check (array (float 1e-12))) "column sums" [| 6.; 10.; 14. |]
    col_sums;
  let row_means = Array_ops.aggregate_cols t Array_ops.Mean in
  Alcotest.(check (array (float 1e-12))) "row means" [| 1.; 2.; 3.; 4. |]
    row_means;
  let col_max = Array_ops.aggregate_rows t Array_ops.Max in
  Alcotest.(check (array (float 0.))) "column max" [| 3.; 4.; 5. |] col_max

let test_window_constant () =
  let t = grid 6 6 (fun _ _ -> 2.5) in
  let w = Array_ops.window t ~rows:1 ~cols:1 Array_ops.Mean in
  Chunked.iter_chunks w (fun ~row0:_ ~col0:_ tile ->
      Mat.iteri
        (fun _ _ v -> Alcotest.(check (float 1e-12)) "constant" 2.5 v)
        tile)

let test_window_center () =
  let t = grid 3 3 (fun i j -> float_of_int ((i * 3) + j)) in
  let w = Array_ops.window t ~rows:1 ~cols:1 Array_ops.Sum in
  (* Center cell sums the whole 3x3 = 36; corner (0,0) sums its 2x2. *)
  Alcotest.(check (float 1e-12)) "center" 36. (Chunked.get w 1 1);
  Alcotest.(check (float 1e-12)) "corner" 8. (Chunked.get w 0 0)

let test_regrid () =
  let t = grid 4 4 (fun i j -> float_of_int ((i * 4) + j)) in
  let r = Array_ops.regrid t ~row_factor:2 ~col_factor:2 Array_ops.Mean in
  Alcotest.(check (pair int int)) "dims" (2, 2) (Chunked.dims r);
  (* Top-left 2x2 block: 0,1,4,5 -> mean 2.5 *)
  Alcotest.(check (float 1e-12)) "block mean" 2.5 (Chunked.get r 0 0);
  Alcotest.(check (float 1e-12)) "last block" 12.5 (Chunked.get r 1 1)

let test_regrid_partial_edges () =
  let t = grid 5 5 (fun _ _ -> 1.) in
  let r = Array_ops.regrid t ~row_factor:2 ~col_factor:2 Array_ops.Sum in
  Alcotest.(check (pair int int)) "ceil dims" (3, 3) (Chunked.dims r);
  Alcotest.(check (float 1e-12)) "full tile" 4. (Chunked.get r 0 0);
  Alcotest.(check (float 1e-12)) "edge tile" 2. (Chunked.get r 0 2);
  Alcotest.(check (float 1e-12)) "corner tile" 1. (Chunked.get r 2 2)

let test_map2 () =
  let a = grid 3 3 (fun i _ -> float_of_int i) in
  let b = grid 3 3 (fun _ j -> float_of_int j) in
  let s = Array_ops.map2 ( +. ) a b in
  Alcotest.(check (float 1e-12)) "sum" 3. (Chunked.get s 1 2);
  Alcotest.check_raises "dims" (Invalid_argument "Array_ops.map2: dims")
    (fun () -> ignore (Array_ops.map2 ( +. ) a (grid 2 2 (fun _ _ -> 0.))))

let test_regrid_satellite_scenario () =
  (* The paper's intro example: coarsen a fine sensor grid to a derived
     cell structure; values are a smooth field, so the regridded means
     should track the field. *)
  let fine = grid 64 64 (fun i j -> float_of_int i +. (0.5 *. float_of_int j)) in
  let coarse = Array_ops.regrid fine ~row_factor:8 ~col_factor:8 Array_ops.Mean in
  Alcotest.(check (pair int int)) "8x8 grid" (8, 8) (Chunked.dims coarse);
  (* Mean of block (bi,bj) = (8 bi + 3.5) + 0.5 (8 bj + 3.5). *)
  for bi = 0 to 7 do
    for bj = 0 to 7 do
      let expected =
        (8. *. float_of_int bi) +. 3.5 +. (0.5 *. ((8. *. float_of_int bj) +. 3.5))
      in
      Alcotest.(check (float 1e-9)) "block mean" expected (Chunked.get coarse bi bj)
    done
  done

let suite =
  [
    ("between", `Quick, test_between);
    ("aggregate dims", `Quick, test_aggregate_dims);
    ("window constant", `Quick, test_window_constant);
    ("window sums", `Quick, test_window_center);
    ("regrid", `Quick, test_regrid);
    ("regrid partial edges", `Quick, test_regrid_partial_edges);
    ("map2", `Quick, test_map2);
    ("regrid satellite scenario", `Quick, test_regrid_satellite_scenario);
  ]
