(* Special functions and the additional hypothesis tests. *)

open Gb_stats

let close = Alcotest.(check (float 1e-6))

let test_log_gamma () =
  close "gamma(1)" 0. (Special.log_gamma 1.);
  close "gamma(2)" 0. (Special.log_gamma 2.);
  close "gamma(5) = log 24" (log 24.) (Special.log_gamma 5.);
  close "gamma(0.5) = log sqrt(pi)"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  (* Recurrence Gamma(x+1) = x Gamma(x). *)
  List.iter
    (fun x ->
      close "recurrence"
        (Special.log_gamma x +. log x)
        (Special.log_gamma (x +. 1.)))
    [ 0.3; 1.7; 4.2; 10.5 ]

let test_gamma_p () =
  close "P(a,0)" 0. (Special.gamma_p 2. 0.);
  (* P(1, x) = 1 - exp(-x). *)
  List.iter
    (fun x -> close "exponential case" (1. -. exp (-.x)) (Special.gamma_p 1. x))
    [ 0.1; 1.; 3.; 10. ];
  List.iter
    (fun (a, x) ->
      close "P + Q = 1" 1. (Special.gamma_p a x +. Special.gamma_q a x))
    [ (0.5, 0.2); (2., 5.); (10., 3.) ]

let test_beta_inc () =
  close "I_0" 0. (Special.beta_inc 2. 3. 0.);
  close "I_1" 1. (Special.beta_inc 2. 3. 1.);
  (* I_x(1,1) = x. *)
  List.iter (fun x -> close "uniform case" x (Special.beta_inc 1. 1. x))
    [ 0.25; 0.5; 0.9 ];
  (* Symmetry I_x(a,b) = 1 - I_{1-x}(b,a). *)
  close "symmetry"
    (1. -. Special.beta_inc 3. 2. 0.7)
    (Special.beta_inc 2. 3. 0.3)

let test_student_t_sf () =
  (* t = 0 is the median. *)
  close "median" 0.5 (Tests.student_t_sf 0. ~df:7.);
  (* Large df approaches the normal tail. *)
  Alcotest.(check (float 1e-3)) "normal limit" 0.025
    (Tests.student_t_sf 1.96 ~df:100000.);
  (* Known quantile: t_{0.975, 10} = 2.228. *)
  Alcotest.(check (float 1e-3)) "df=10 quantile" 0.025
    (Tests.student_t_sf 2.228 ~df:10.)

let test_t_test_separated () =
  let xs = Array.init 20 (fun i -> 10. +. float_of_int (i mod 3)) in
  let ys = Array.init 20 (fun i -> float_of_int (i mod 3)) in
  let r = Tests.t_test xs ys in
  Alcotest.(check bool) "tiny p" (r.Tests.p_value < 1e-10) true;
  Alcotest.(check bool) "t positive" (r.Tests.t > 0.) true

let test_t_test_same_sample () =
  let g = Gb_util.Prng.create 8L in
  let xs = Array.init 40 (fun _ -> Gb_util.Prng.normal g) in
  let ys = Array.init 40 (fun _ -> Gb_util.Prng.normal g) in
  let r = Tests.t_test xs ys in
  Alcotest.(check bool) "not significant" (r.Tests.p_value > 0.01) true;
  (* Welch and pooled agree when sample sizes and variances match. *)
  let pooled = Tests.t_test_equal_var xs ys in
  Alcotest.(check (float 1e-9)) "same t" r.Tests.t pooled.Tests.t

let test_chi2_goodness () =
  (* Fair die, observed close to expected. *)
  let r =
    Tests.chi2_goodness
      ~observed:[| 9.; 11.; 10.; 8.; 12.; 10. |]
      ~expected:[| 10.; 10.; 10.; 10.; 10.; 10. |]
  in
  Alcotest.(check int) "df" 5 r.Tests.df;
  Alcotest.(check (float 1e-9)) "chi2" 1.0 r.Tests.chi2;
  Alcotest.(check bool) "not significant" (r.Tests.p_value > 0.9) true

let test_chi2_independence () =
  (* Strongly dependent table. *)
  let r = Tests.chi2_independence [| [| 50.; 5. |]; [| 5.; 50. |] |] in
  Alcotest.(check int) "df" 1 r.Tests.df;
  Alcotest.(check bool) "significant" (r.Tests.p_value < 1e-6) true;
  (* Independent table: rows proportional. *)
  let r2 = Tests.chi2_independence [| [| 20.; 40. |]; [| 10.; 20. |] |] in
  Alcotest.(check (float 1e-9)) "zero chi2" 0. r2.Tests.chi2

let test_bh_fdr () =
  let adjusted =
    Tests.benjamini_hochberg [ (1, 0.01); (2, 0.02); (3, 0.03); (4, 0.04) ]
  in
  (* q_i = p_i * m / i with monotonic enforcement: all equal 0.04 here. *)
  List.iter
    (fun (_, q) -> Alcotest.(check (float 1e-9)) "uniform case" 0.04 q)
    adjusted;
  let mixed = Tests.benjamini_hochberg [ (1, 0.001); (2, 0.8); (3, 0.02) ] in
  (match mixed with
  | (id1, q1) :: (_, q2) :: (_, q3) :: [] ->
    Alcotest.(check int) "smallest first" 1 id1;
    Alcotest.(check (float 1e-9)) "q1" 0.003 q1;
    Alcotest.(check (float 1e-9)) "q2" 0.03 q2;
    Alcotest.(check (float 1e-9)) "q3" 0.8 q3
  | _ -> Alcotest.fail "shape");
  Alcotest.(check (list (pair int (float 0.)))) "empty" []
    (Tests.benjamini_hochberg [])

let prop_bh_q_at_least_p =
  QCheck.Test.make ~name:"BH q >= p and <= 1" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_range 1e-6 1.))
    (fun ps ->
      let results = List.mapi (fun i p -> (i, p)) ps in
      let adjusted = Tests.benjamini_hochberg results in
      List.for_all
        (fun (id, q) ->
          let p = List.assoc id results in
          q >= p -. 1e-12 && q <= 1. +. 1e-12)
        adjusted)

let suite =
  [
    ("log gamma", `Quick, test_log_gamma);
    ("incomplete gamma", `Quick, test_gamma_p);
    ("incomplete beta", `Quick, test_beta_inc);
    ("student t tail", `Quick, test_student_t_sf);
    ("t-test separated", `Quick, test_t_test_separated);
    ("t-test same distribution", `Quick, test_t_test_same_sample);
    ("chi2 goodness of fit", `Quick, test_chi2_goodness);
    ("chi2 independence", `Quick, test_chi2_independence);
    ("benjamini-hochberg", `Quick, test_bh_fdr);
    QCheck_alcotest.to_alcotest prop_bh_q_at_least_p;
  ]
