open Gb_datagen
module Mat = Gb_linalg.Mat

let small = Spec.custom ~genes:60 ~patients:80

let test_spec_presets () =
  let s = Spec.of_size Spec.Small in
  Alcotest.(check int) "small genes" 200 s.Spec.genes;
  Alcotest.(check int) "small patients" 200 s.Spec.patients;
  let l = Spec.of_size Spec.Large in
  Alcotest.(check int) "large genes" 1200 l.Spec.genes;
  Alcotest.(check int) "large patients" 1600 l.Spec.patients;
  Alcotest.(check int) "diseases" 21 l.Spec.diseases;
  Alcotest.(check string) "label" "30k x 40k" (Spec.label Spec.Large)

let test_spec_paper_dims () =
  Alcotest.(check (pair int int)) "xl" (60_000, 70_000)
    (Spec.paper_dims Spec.XLarge)

let test_generate_shapes () =
  let t = Generate.generate small in
  Alcotest.(check (pair int int)) "matrix" (80, 60) (Mat.dims t.expression);
  Alcotest.(check int) "patients" 80 (Array.length t.patients);
  Alcotest.(check int) "genes" 60 (Array.length t.genes);
  Alcotest.(check bool) "go nonempty" (Array.length t.go > 0) true

let test_generate_deterministic () =
  let a = Generate.generate ~seed:5L small in
  let b = Generate.generate ~seed:5L small in
  Alcotest.(check bool) "same expression" (Mat.equal a.expression b.expression)
    true;
  Alcotest.(check bool) "same patients" (a.patients = b.patients) true;
  Alcotest.(check bool) "same go" (a.go = b.go) true

let test_generate_seed_sensitive () =
  let a = Generate.generate ~seed:1L small in
  let b = Generate.generate ~seed:2L small in
  Alcotest.(check bool) "different data"
    (not (Mat.equal a.expression b.expression))
    true

let test_patient_fields_valid () =
  let t = Generate.generate small in
  Array.iter
    (fun (p : Generate.patient) ->
      Alcotest.(check bool) "age" (p.age >= 18 && p.age <= 95) true;
      Alcotest.(check bool) "gender" (p.gender = 0 || p.gender = 1) true;
      Alcotest.(check bool) "disease"
        (p.disease_id >= 1 && p.disease_id <= 21)
        true;
      Alcotest.(check bool) "zip" (p.zipcode >= 10_000 && p.zipcode <= 99_999)
        true)
    t.patients

let test_gene_fields_valid () =
  let t = Generate.generate small in
  let last_pos = ref (-1) in
  Array.iter
    (fun (g : Generate.gene) ->
      Alcotest.(check bool) "func" (g.func >= 0 && g.func < 1000) true;
      Alcotest.(check bool) "target in range"
        (g.target >= 0 && g.target < 60)
        true;
      Alcotest.(check bool) "positions increase" (g.position > !last_pos) true;
      last_pos := g.position)
    t.genes

let test_planted_regression_recoverable () =
  let t = Generate.generate small in
  let p = t.planted in
  Alcotest.(check bool) "signal genes exist"
    (Array.length p.signal_genes > 0)
    true;
  (* Signal genes must pass the Q1 filter. *)
  Array.iter
    (fun gid ->
      Alcotest.(check bool) "func below threshold"
        (t.genes.(gid).Generate.func < Generate.func_threshold)
        true)
    p.signal_genes;
  (* Fitting on exactly the signal genes recovers the coefficients. *)
  let x = Mat.sub_cols t.expression p.signal_genes in
  let y = Array.map (fun (pt : Generate.patient) -> pt.drug_response) t.patients in
  let m = Gb_linalg.Linreg.fit x y in
  Alcotest.(check bool) "r2 high" (m.Gb_linalg.Linreg.r_squared > 0.9) true;
  Array.iteri
    (fun k c ->
      Alcotest.(check bool) "coef close"
        (Float.abs (c -. m.Gb_linalg.Linreg.coefficients.(k)) < 0.2)
        true)
    p.signal_coefs

let test_planted_bicluster_coherent () =
  let t = Generate.generate small in
  let p = t.planted in
  Alcotest.(check bool) "rows planted" (Array.length p.bicluster_rows >= 2) true;
  let msr =
    Gb_bicluster.Cheng_church.mean_squared_residue t.expression
      p.bicluster_rows p.bicluster_cols
  in
  Alcotest.(check bool) "planted block coherent" (msr < 0.05) true;
  (* Planted rows are young males, so Q3's selection sees them. *)
  Array.iter
    (fun pid ->
      let pt = t.patients.(pid) in
      Alcotest.(check bool) "young male"
        (pt.Generate.gender = 1 && pt.Generate.age < 40)
        true)
    p.bicluster_rows

let test_planted_enrichment_detectable () =
  let t = Generate.generate small in
  let terms = t.planted.enriched_terms in
  Alcotest.(check bool) "enriched terms exist" (Array.length terms > 0) true;
  (* The enriched terms' member genes should have elevated mean
     expression. *)
  let membership = Generate.go_membership_matrix t in
  let global_mean =
    let acc = ref 0. in
    Mat.iteri (fun _ _ v -> acc := !acc +. v) t.expression;
    !acc /. float_of_int (80 * 60)
  in
  Array.iter
    (fun term ->
      let member_mean = ref 0. and count = ref 0 in
      Array.iteri
        (fun g row ->
          if row.(term) then begin
            for i = 0 to 79 do
              member_mean := !member_mean +. Mat.get t.expression i g
            done;
            incr count
          end)
        membership;
      if !count > 0 then begin
        let mm = !member_mean /. float_of_int (!count * 80) in
        Alcotest.(check bool) "elevated" (mm > global_mean +. 1.) true
      end)
    terms

let test_go_membership_matrix () =
  let t = Generate.generate small in
  let m = Generate.go_membership_matrix t in
  let pairs_count =
    Array.fold_left
      (fun acc row ->
        acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 row)
      0 m
  in
  Alcotest.(check int) "pairs match" (Array.length t.go) pairs_count

let test_io_roundtrip () =
  let t = Generate.generate (Spec.custom ~genes:10 ~patients:12) in
  let dir = Filename.temp_file "genbase" "" in
  Sys.remove dir;
  Io.write ~dir t;
  let back = Io.read ~dir in
  Alcotest.(check bool) "expression survives"
    (Mat.max_abs_diff t.expression back.expression = 0.)
    true;
  Alcotest.(check int) "patients" 12 (Array.length back.patients);
  Alcotest.(check bool) "patient rows equal" (t.patients = back.patients) true;
  Alcotest.(check bool) "genes equal" (t.genes = back.genes) true;
  Alcotest.(check bool) "go equal" (t.go = back.go) true

let test_custom_spec_validation () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Spec.custom: dimensions")
    (fun () -> ignore (Spec.custom ~genes:0 ~patients:5))

let suite =
  [
    ("spec presets", `Quick, test_spec_presets);
    ("spec paper dims", `Quick, test_spec_paper_dims);
    ("generate shapes", `Quick, test_generate_shapes);
    ("generate deterministic", `Quick, test_generate_deterministic);
    ("generate seed sensitive", `Quick, test_generate_seed_sensitive);
    ("patient fields valid", `Quick, test_patient_fields_valid);
    ("gene fields valid", `Quick, test_gene_fields_valid);
    ("planted regression recoverable", `Quick, test_planted_regression_recoverable);
    ("planted bicluster coherent", `Quick, test_planted_bicluster_coherent);
    ("planted enrichment detectable", `Quick, test_planted_enrichment_detectable);
    ("go membership matrix", `Quick, test_go_membership_matrix);
    ("io roundtrip", `Quick, test_io_roundtrip);
    ("custom spec validation", `Quick, test_custom_spec_validation);
  ]
