open Gb_arraydb
module Mat = Gb_linalg.Mat

let sample () =
  Sparse.of_triples ~rows:4 ~cols:5
    [ (0, 1, 2.); (0, 4, -1.); (2, 0, 3.); (3, 3, 7.); (3, 4, 1.) ]

let test_basics () =
  let s = sample () in
  Alcotest.(check (pair int int)) "dims" (4, 5) (Sparse.dims s);
  Alcotest.(check int) "nnz" 5 (Sparse.nnz s);
  Alcotest.(check (float 0.)) "present" 2. (Sparse.get s 0 1);
  Alcotest.(check (float 0.)) "absent" 0. (Sparse.get s 1 1);
  Alcotest.(check int) "row nnz" 2 (Sparse.row_nnz s 3);
  Alcotest.(check int) "empty row" 0 (Sparse.row_nnz s 1);
  Alcotest.(check (float 1e-9)) "density" 0.25 (Sparse.density s)

let test_duplicates_summed () =
  let s = Sparse.of_triples ~rows:2 ~cols:2 [ (0, 0, 1.); (0, 0, 2.5) ] in
  Alcotest.(check (float 0.)) "summed" 3.5 (Sparse.get s 0 0);
  Alcotest.(check int) "single entry" 1 (Sparse.nnz s)

let test_dense_roundtrip () =
  let g = Gb_util.Prng.create 9L in
  let m =
    Mat.init 20 15 (fun _ _ ->
        if Gb_util.Prng.uniform g < 0.2 then Gb_util.Prng.normal g else 0.)
  in
  let s = Sparse.of_dense m in
  Alcotest.(check bool) "roundtrip" (Mat.equal m (Sparse.to_dense s)) true

let test_spmv_matches_dense () =
  let g = Gb_util.Prng.create 10L in
  let m =
    Mat.init 12 9 (fun _ _ ->
        if Gb_util.Prng.uniform g < 0.3 then Gb_util.Prng.normal g else 0.)
  in
  let s = Sparse.of_dense m in
  let x = Array.init 9 (fun _ -> Gb_util.Prng.normal g) in
  let expect = Gb_linalg.Blas.gemv m x in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-10)) "spmv" expect.(i) v)
    (Sparse.spmv s x);
  let y = Array.init 12 (fun _ -> Gb_util.Prng.normal g) in
  let expect_t = Gb_linalg.Blas.gemv_t m y in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-10)) "spmv_t" expect_t.(i) v)
    (Sparse.spmv_t s y)

let test_transpose () =
  let s = sample () in
  let t = Sparse.transpose s in
  Alcotest.(check (pair int int)) "dims" (5, 4) (Sparse.dims t);
  Alcotest.(check (float 0.)) "moved" 2. (Sparse.get t 1 0);
  Alcotest.(check bool) "involutive"
    (Mat.equal (Sparse.to_dense s) (Sparse.to_dense (Sparse.transpose t)))
    true

let test_go_matrix () =
  let ds = Genbase.Dataset.generate (Gb_datagen.Spec.custom ~genes:100 ~patients:20) in
  let terms = ds.Gb_datagen.Generate.spec.Gb_datagen.Spec.go_terms in
  let s =
    Sparse.of_triples ~rows:100 ~cols:terms
      (Array.to_list (Array.map (fun (g, t) -> (g, t, 1.)) ds.Gb_datagen.Generate.go))
  in
  Alcotest.(check int) "nnz = membership pairs"
    (Array.length ds.Gb_datagen.Generate.go)
    (Sparse.nnz s);
  Alcotest.(check bool) "sparse indeed" (Sparse.density s < 0.5) true;
  (* Per-term membership counts via spmv_t of the all-ones vector. *)
  let counts = Sparse.spmv_t s (Array.make 100 1.) in
  let total = Array.fold_left ( +. ) 0. counts in
  Alcotest.(check (float 1e-9)) "counts sum to nnz"
    (float_of_int (Sparse.nnz s))
    total

let test_bounds () =
  Alcotest.check_raises "oob entry"
    (Invalid_argument "Sparse.of_triples: entry out of bounds") (fun () ->
      ignore (Sparse.of_triples ~rows:2 ~cols:2 [ (2, 0, 1.) ]))

let suite =
  [
    ("basics", `Quick, test_basics);
    ("duplicates summed", `Quick, test_duplicates_summed);
    ("dense roundtrip", `Quick, test_dense_roundtrip);
    ("spmv matches dense", `Quick, test_spmv_matches_dense);
    ("transpose", `Quick, test_transpose);
    ("go membership", `Quick, test_go_matrix);
    ("bounds", `Quick, test_bounds);
  ]
