(* Gene-set enrichment (the paper's Query 5 use case): rank all genes by
   expression in a patient sample, then use the Wilcoxon rank-sum test to
   ask, for each GO category, whether its member genes cluster at the top
   or bottom of the ranking.

   dune exec examples/enrichment_analysis.exe *)

module G = Gb_datagen.Generate

let () =
  let ds = Genbase.Dataset.of_size Gb_datagen.Spec.Small in
  let go_terms = ds.G.spec.Gb_datagen.Spec.go_terms in
  Printf.printf "%d GO terms over %d genes (%d membership pairs)\n" go_terms
    (Array.length ds.G.genes) (Array.length ds.G.go);
  Printf.printf "generator planted enrichment in terms:";
  Array.iter (Printf.printf " %d") ds.G.planted.G.enriched_terms;
  Printf.printf "\n\n";

  (* Step 1-2: sample patients, score genes by mean expression. *)
  let sample = Genbase.Qcommon.sampled_patients ds 0.05 in
  let scores =
    Genbase.Qcommon.enrichment_scores
      (Gb_linalg.Mat.sub_rows ds.G.expression sample)
  in
  Printf.printf "sampled %d patients\n" (Array.length sample);

  (* Step 3-4: Wilcoxon per GO term. *)
  (match
     Genbase.Qcommon.enrichment_of
       ~n_genes:(Array.length ds.G.genes)
       ~go_pairs:ds.G.go ~go_terms ~p_threshold:0.05 ~scores
   with
  | Genbase.Engine.Enrichment found ->
    Printf.printf "%d terms significant at p < 0.05:\n" (List.length found);
    List.iteri
      (fun i (term, p) ->
        if i < 10 then
          let planted =
            Array.exists (fun t -> t = term) ds.G.planted.G.enriched_terms
          in
          Printf.printf "  GO %4d  p = %.3e%s\n" term p
            (if planted then "   <- planted" else ""))
      found;
    let planted_found =
      Array.for_all
        (fun t -> List.mem_assoc t found)
        ds.G.planted.G.enriched_terms
    in
    Printf.printf "\nall planted terms recovered: %b\n" planted_found
  | _ -> assert false);

  (* The same analysis through the full benchmark query on two engines. *)
  print_newline ();
  List.iter
    (fun e ->
      match
        Genbase.Engine.run e ds Genbase.Query.Q5_statistics ~timeout_s:60. ()
      with
      | Genbase.Engine.Completed (t, Genbase.Engine.Enrichment found) ->
        Printf.printf "%-22s total %.4fs, %d enriched terms\n"
          e.Genbase.Engine.name (Genbase.Engine.total t) (List.length found)
      | o ->
        Printf.printf "%-22s %s\n" e.Genbase.Engine.name
          (Format.asprintf "%a" Genbase.Engine.pp_outcome o))
    [ Genbase.Engine_scidb.engine; Genbase.Engine_sql.postgres_r ]
