(* Finding functionally related genes (the paper's Query 2 use case):
   covariance of expression across a disease cohort flags co-regulated
   gene pairs, which are then joined back to the gene metadata; the same
   cohort is biclustered to find coherent patient/gene groups (Query 3).

   dune exec examples/pathway_covariance.exe *)

module G = Gb_datagen.Generate
module Mat = Gb_linalg.Mat

let () =
  let ds = Genbase.Dataset.of_size Gb_datagen.Spec.Small in
  let disease = 1 in
  let cohort = Genbase.Qcommon.patients_with_disease ds disease in
  Printf.printf "disease %d cohort: %d patients\n" disease (Array.length cohort);

  (* Covariance across the cohort, as the array engine computes it. *)
  let m = Mat.sub_rows ds.G.expression cohort in
  let cov = Gb_linalg.Covariance.matrix m in
  let pairs = Gb_linalg.Covariance.top_fraction cov 0.001 in
  Printf.printf "top co-expressed pairs (of %d genes):\n" (snd (Mat.dims cov));
  List.iteri
    (fun i (g1, g2, v) ->
      if i < 8 then begin
        let f1 = ds.G.genes.(g1).G.func and f2 = ds.G.genes.(g2).G.func in
        Printf.printf
          "  gene %4d (func %3d) ~ gene %4d (func %3d): cov %+7.3f\n" g1 f1 g2
          f2 v
      end)
    pairs;

  (* Gene pairs sharing a latent factor were planted by the generator, so
     strong pairs should recur: verify the top pair's correlation. *)
  (match pairs with
  | (g1, g2, _) :: _ ->
    let c1 = Mat.col ds.G.expression g1 and c2 = Mat.col ds.G.expression g2 in
    Printf.printf "\ntop pair Pearson correlation across all patients: %.3f\n"
      (Gb_stats.Descriptive.pearson c1 c2)
  | [] -> ());

  (* Bicluster young male patients (Query 3's selection). *)
  let rows = Genbase.Qcommon.patients_by_age_gender ds ~max_age:40 ~gender:1 in
  let sub = Mat.sub_rows ds.G.expression rows in
  Printf.printf "\nbiclustering %d young male patients x %d genes:\n"
    (fst (Mat.dims sub)) (snd (Mat.dims sub));
  List.iter
    (fun (b : Gb_bicluster.Cheng_church.bicluster) ->
      Printf.printf "  bicluster %d patients x %d genes, MSR %.5f\n"
        (Array.length b.rows) (Array.length b.cols) b.msr)
    (Gb_bicluster.Cheng_church.run sub)
