(* Multi-node scaling (the paper's Section 4.4): run the regression query
   on the simulated cluster engines at 1, 2 and 4 nodes and print the
   speedups — sub-linear everywhere, with pbdR scaling best, as in the
   paper.

   dune exec examples/cluster_scaling.exe *)

let () =
  let ds = Genbase.Dataset.of_size Gb_datagen.Spec.Large in
  let node_counts = [ 1; 2; 4 ] in
  let engines nodes =
    [
      Genbase.Engine_pbdr.engine ~nodes;
      Genbase.Engine_scidb_mn.engine ~nodes;
      Genbase.Engine_colstore_mn.pbdr ~nodes;
    ]
  in
  Printf.printf "%-22s %8s %8s %8s %s\n" "engine" "1 node" "2 nodes" "4 nodes"
    "speedup(4)";
  List.iter
    (fun idx ->
      let name = ref "" in
      let times =
        List.map
          (fun nodes ->
            let e = List.nth (engines nodes) idx in
            name := e.Genbase.Engine.name;
            match
              Genbase.Engine.run e ds Genbase.Query.Q1_regression
                ~timeout_s:120. ()
            with
            | Genbase.Engine.Completed (t, _) -> Genbase.Engine.total t
            | _ -> nan)
          node_counts
      in
      match times with
      | [ t1; t2; t4 ] ->
        Printf.printf "%-22s %7.3fs %7.3fs %7.3fs %9.2fx\n" !name t1 t2 t4
          (t1 /. t4)
      | _ -> ())
    [ 0; 1; 2 ]
