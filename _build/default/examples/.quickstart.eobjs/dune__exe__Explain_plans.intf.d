examples/explain_plans.mli:
