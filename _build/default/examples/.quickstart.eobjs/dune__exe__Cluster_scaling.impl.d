examples/cluster_scaling.ml: Gb_datagen Genbase List Printf
