examples/rnaseq_extension.ml: Array Gb_datagen Gb_linalg Gb_stats Genbase List Printf
