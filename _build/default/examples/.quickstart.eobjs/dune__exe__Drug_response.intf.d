examples/drug_response.mli:
