examples/explain_plans.ml: Col_store Expr Gb_datagen Gb_relational Genbase Ops Plan Printf
