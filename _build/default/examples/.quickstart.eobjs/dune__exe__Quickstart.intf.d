examples/quickstart.mli:
