examples/drug_response.ml: Array Float Gb_datagen Genbase List Printf
