examples/cluster_scaling.mli:
