examples/pathway_covariance.ml: Array Gb_bicluster Gb_datagen Gb_linalg Gb_stats Genbase List Printf
