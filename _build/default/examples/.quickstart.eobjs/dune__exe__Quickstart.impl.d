examples/quickstart.ml: Array Format Gb_datagen Genbase List Printf
