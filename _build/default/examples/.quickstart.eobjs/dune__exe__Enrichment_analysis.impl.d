examples/enrichment_analysis.ml: Array Format Gb_datagen Gb_linalg Genbase List Printf
