examples/rnaseq_extension.mli:
