examples/enrichment_analysis.mli:
