examples/pathway_covariance.mli:
