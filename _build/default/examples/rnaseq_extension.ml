(* Sequencing-data extension: the paper notes the benchmark "can be
   extended to include other types of genomic data such as sequencing
   data". Derive RNA-seq-like negative-binomial read counts from the
   microarray data set, normalize to log-CPM, and run the enrichment
   analysis on the counts instead of the raw intensities — the planted GO
   terms survive the change of data type.

   dune exec examples/rnaseq_extension.exe *)

module G = Gb_datagen.Generate

let () =
  let ds = Genbase.Dataset.generate (Gb_datagen.Spec.custom ~genes:150 ~patients:200) in
  let seq = Gb_datagen.Seqdata.of_expression ~mean_depth:40. ds in
  let p = Array.length seq.Gb_datagen.Seqdata.counts in
  Printf.printf "simulated %d libraries; depth range %d..%d reads\n" p
    (Array.fold_left min max_int seq.Gb_datagen.Seqdata.library_sizes)
    (Array.fold_left max 0 seq.Gb_datagen.Seqdata.library_sizes);

  let logcpm = Gb_datagen.Seqdata.log_cpm seq in
  let sample = Genbase.Qcommon.sampled_patients ds 0.05 in
  let scores =
    Genbase.Qcommon.enrichment_scores
      (Gb_linalg.Mat.sub_rows logcpm sample)
  in
  match
    Genbase.Qcommon.enrichment_of ~n_genes:150 ~go_pairs:ds.G.go
      ~go_terms:ds.G.spec.Gb_datagen.Spec.go_terms ~p_threshold:0.05 ~scores
  with
  | Genbase.Engine.Enrichment found ->
    Printf.printf "%d GO terms enriched on the count data:\n"
      (List.length found);
    List.iter
      (fun (term, pv) ->
        let planted =
          Array.exists (fun t -> t = term) ds.G.planted.G.enriched_terms
        in
        Printf.printf "  GO %3d p=%.2e%s\n" term pv
          (if planted then "  <- planted in the microarray data" else ""))
      found;
    (* FDR control across the many tested terms (Benjamini-Hochberg). *)
    let adjusted = Gb_stats.Tests.benjamini_hochberg found in
    Printf.printf "\nafter BH correction, %d terms at q < 0.05\n"
      (List.length (List.filter (fun (_, q) -> q < 0.05) adjusted))
  | _ -> assert false
