(* Query planning: express the benchmark's data-management phases as
   logical plans and show what the optimizer does to them — predicate
   pushdown below the join, column pruning into the (columnar) scans, and
   hash-join build-side selection.

   dune exec examples/explain_plans.exe *)

open Gb_relational

let () =
  let ds = Genbase.Dataset.generate (Gb_datagen.Spec.custom ~genes:150 ~patients:300) in
  let db = Genbase.Dataset.load_col_stores ds in
  let table = function
    | "microarray" -> db.Genbase.Dataset.microarray_c
    | "patients" -> db.Genbase.Dataset.patients_c
    | "genes" -> db.Genbase.Dataset.genes_c
    | "go" -> db.Genbase.Dataset.go_c
    | t -> invalid_arg t
  in
  let cat =
    {
      Plan.scan = (fun t cols -> Ops.scan_col_store (table t) cols);
      schema_of = (fun t -> Col_store.schema (table t));
      row_count = (fun t -> Col_store.row_count (table t));
    }
  in
  let q1_dm =
    (* Q1's data management: genes filtered by function joined with the
       microarray, projected for the pivot. *)
    Plan.Project
      ( [ "patient_id"; "gene_id"; "value" ],
        Plan.Filter
          ( Expr.(col "func" <% int 250),
            Plan.Join
              {
                left = Plan.Scan ("microarray", []);
                right = Plan.Scan ("genes", []);
                on = [ ("gene_id", "gene_id") ];
              } ) )
  in
  print_endline "=== Q1 data management, unoptimized shape ===";
  print_endline "Project <- Filter(func<250) <- Join(microarray, genes)";
  print_endline "\n=== After optimization ===";
  print_string (Plan.explain cat q1_dm);

  let q2_dm =
    Plan.Project
      ( [ "patient_id"; "gene_id"; "value" ],
        Plan.Filter
          ( Expr.(col "disease_id" =% int 1),
            Plan.Join
              {
                left = Plan.Scan ("microarray", []);
                right = Plan.Scan ("patients", []);
                on = [ ("patient_id", "patient_id") ];
              } ) )
  in
  print_endline "\n=== Q2 data management, after optimization ===";
  print_string (Plan.explain cat q2_dm);

  (* And the plans actually run: *)
  let n1 = Ops.count (Plan.execute cat q1_dm) in
  let n2 = Ops.count (Plan.execute cat q2_dm) in
  Printf.printf "\nQ1 DM result: %d triples; Q2 DM result: %d triples\n" n1 n2
