(* Drug-response prediction (the paper's Query 1 use case): select genes by
   function code, regress patient drug response on their expression, and
   check the fitted model against the generator's planted signal.

   dune exec examples/drug_response.exe *)

module G = Gb_datagen.Generate

let () =
  let ds = Genbase.Dataset.of_size Gb_datagen.Spec.Small in
  let planted = ds.G.planted in
  Printf.printf
    "cohort: %d patients, %d genes; %d genes carry planted signal\n\n"
    (Array.length ds.G.patients) (Array.length ds.G.genes)
    (Array.length planted.G.signal_genes);

  (* Run the full benchmark query on a few engines and compare the fits. *)
  let engines =
    [
      Genbase.Engine_r.engine;
      Genbase.Engine_sql.postgres_r;
      Genbase.Engine_scidb.engine;
    ]
  in
  let fits =
    List.filter_map
      (fun e ->
        match
          Genbase.Engine.run e ds Genbase.Query.Q1_regression ~timeout_s:60. ()
        with
        | Genbase.Engine.Completed (t, Genbase.Engine.Regression r) ->
          Printf.printf "%-22s total %.3fs  R^2 = %.4f\n" e.Genbase.Engine.name
            (Genbase.Engine.total t) r.r2;
          Some r.coefficients
        | _ -> None)
      engines
  in
  (* All engines must agree on the model. *)
  (match fits with
  | first :: rest ->
    let agree =
      List.for_all
        (fun c ->
          Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) first c)
        rest
    in
    Printf.printf "\nengines agree on coefficients: %b\n" agree
  | [] -> ());

  (* Compare the fitted coefficients with the planted truth. The model was
     fitted over *all* function<threshold genes; planted signal genes are a
     subset, the rest should come out near zero. *)
  let gene_ids =
    Genbase.Qcommon.genes_with_func_below ds G.func_threshold
  in
  match fits with
  | coefs :: _ ->
    Printf.printf "\nplanted vs fitted coefficients:\n";
    Array.iteri
      (fun k gid ->
        let fitted_idx = ref (-1) in
        Array.iteri (fun i g -> if g = gid then fitted_idx := i) gene_ids;
        Printf.printf "  gene %4d: planted %+6.3f   fitted %+6.3f\n" gid
          planted.G.signal_coefs.(k)
          (if !fitted_idx >= 0 then coefs.(!fitted_idx) else nan))
      planted.G.signal_genes
  | [] -> print_endline "no engine completed the query"
