bench/main.ml: Ablations Array Crossover Genbase List Microbench Printf String Sys Unix Weak_scaling
