bench/ablations.ml: Array Buffer_pool Col_store Export Float Gb_bicluster Gb_datagen Gb_linalg Gb_relational Gb_util Genbase List Ops Option Paged_store Printf Row_store Sql_linalg
