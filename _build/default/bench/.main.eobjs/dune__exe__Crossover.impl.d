bench/crossover.ml: Gb_datagen Gb_util Genbase List Printf
