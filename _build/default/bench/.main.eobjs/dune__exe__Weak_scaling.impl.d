bench/weak_scaling.ml: Gb_datagen Gb_util Genbase List Printf
