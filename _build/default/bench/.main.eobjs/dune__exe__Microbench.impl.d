bench/microbench.ml: Analyze Array Bechamel Benchmark Gb_arraydb Gb_datagen Gb_linalg Gb_relational Gb_stats Gb_util Genbase Hashtbl Instance Lazy List Measure Printf Staged Test Time Toolkit
