bench/main.mli:
