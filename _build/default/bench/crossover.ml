(* The end-to-end asymptotics argument of Section 6.1: data management is
   O(N)–O(N log N) while the analytics are O(N^{3/2}), so DM dominates at
   small scale and analytics dominate at large scale. Measured here as the
   analytics share of total time per query on the array engine across the
   four data set sizes (including the XLarge configuration none of the
   paper's systems completed). *)

let analytics_fraction ds q =
  match
    Genbase.Engine.run Genbase.Engine_scidb.engine ds q ~timeout_s:600. ()
  with
  | Genbase.Engine.Completed (t, _) ->
    let total = Genbase.Engine.total t in
    if total <= 0. then None
    else Some (t.Genbase.Engine.analytics /. total)
  | _ -> None

let run () =
  print_endline
    "Crossover: analytics share of total query time on SciDB (Section 6.1 \
     predicts the share grows with N)";
  let sizes =
    [ Gb_datagen.Spec.Small; Gb_datagen.Spec.Medium; Gb_datagen.Spec.Large;
      Gb_datagen.Spec.XLarge ]
  in
  let datasets = List.map (fun s -> (s, Genbase.Dataset.of_size s)) sizes in
  let rows =
    List.map
      (fun q ->
        Genbase.Query.title q
        :: List.map
             (fun (_, ds) ->
               match analytics_fraction ds q with
               | Some f -> Printf.sprintf "%.0f%%" (100. *. f)
               | None -> "-")
             datasets)
      Genbase.Query.all
  in
  print_endline
    (Gb_util.Render.table
       ~headers:("Query" :: List.map (fun s -> Gb_datagen.Spec.label s) sizes)
       ~rows)
