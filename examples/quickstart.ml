(* Quickstart: generate a small synthetic microarray data set and run all
   six benchmark queries on the array engine.

   dune exec examples/quickstart.exe *)

let () =
  (* A data set smaller than the benchmark presets, for a fast demo. *)
  let spec = Gb_datagen.Spec.custom ~genes:100 ~patients:400 in
  let ds = Genbase.Dataset.generate spec in
  Printf.printf "generated %d patients x %d genes\n\n"
    spec.Gb_datagen.Spec.patients spec.Gb_datagen.Spec.genes;
  let engine = Genbase.Engine_scidb.engine in
  List.iter
    (fun q ->
      match Genbase.Engine.run engine ds q ~timeout_s:60. () with
      | Genbase.Engine.Completed (t, payload) ->
        Printf.printf "%-14s dm=%.4fs analytics=%.4fs -> "
          (Genbase.Query.name q) t.Genbase.Engine.dm t.Genbase.Engine.analytics;
        (match payload with
        | Genbase.Engine.Regression r ->
          Printf.printf "R^2 = %.3f over %d genes\n" r.r2
            (Array.length r.coefficients)
        | Genbase.Engine.Cov_pairs p ->
          Printf.printf "%d strongly covarying gene pairs\n"
            (List.length p.top_pairs)
        | Genbase.Engine.Biclusters b ->
          Printf.printf "%d biclusters\n" (List.length b.clusters)
        | Genbase.Engine.Singular_values s ->
          Printf.printf "top singular value %.2f\n" s.(0)
        | Genbase.Engine.Enrichment terms ->
          Printf.printf "%d enriched GO terms\n" (List.length terms)
        | Genbase.Engine.Overlaps o ->
          Printf.printf "%d variant/gene overlap pairs\n"
            (List.length o.pairs))
      | o ->
        Printf.printf "%-14s %s\n" (Genbase.Query.name q)
          (Format.asprintf "%a" Genbase.Engine.pp_outcome o))
    Genbase.Query.all
