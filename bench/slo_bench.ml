(* SLO burn-rate benchmark section: run the overload and chaos scenarios
   through the instrumented load generator and record, per objective,
   the alert fire count, first-fire instant and resolve count.

   The monitor is driven by the simulated clock and the instrumentation
   consumes no PRNG draws, so every number here is a pure function of
   (scenario, seed): the committed BENCH_slo.json baseline matches
   bit-for-bit and the bench-diff gate is exact rather than
   noise-bounded. *)

module Loadgen = Gb_serve.Loadgen
module Slo = Gb_obs.Slo

let run ~quick =
  List.concat_map
    (fun name ->
      match Loadgen.find_scenario name with
      | Error e -> failwith e
      | Ok sc ->
        let cfg =
          {
            (Loadgen.default_config sc) with
            Loadgen.duration = (if quick then 30. else 60.);
          }
        in
        let i = Loadgen.run_instrumented cfg in
        Format.printf "%a@." Loadgen.pp_summary i.Loadgen.i_summary;
        List.iter
          (fun (name, burn_long, burn_short, events, firing) ->
            Format.printf
              "slo %-28s burn_long %6.2f  burn_short %6.2f  events %6d  %s@."
              name burn_long burn_short events
              (if firing then "FIRING" else "ok"))
          (Slo.summary i.Loadgen.i_monitor);
        let alerts = Slo.alerts i.Loadgen.i_monitor in
        Format.printf "slo alerts: %d (%d fires)@.@." (List.length alerts)
          (List.length (List.filter (fun a -> a.Slo.a_firing) alerts));
        Loadgen.slo_records i)
    [ "overload"; "chaos" ]
