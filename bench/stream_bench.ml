(* Refresh-vs-recompute: the streaming executor applies the same total
   event volume at several batch granularities and, after every batch,
   refreshes each query family incrementally; the recompute side pays
   an eager system's one-shot path — the column store + UDF engine's
   full DM + analytics run over the final state, re-executed per batch.
   (The R reference cannot hold the Large class at all — its modeled
   2^31-cell budget trips — so the strongest single-node engine stands
   in; a fresh-maintainer rebuild is the fallback for anything it
   cannot run.) The committed BENCH_stream.json baseline keeps
   both the latencies and the invariant counters (events applied,
   staleness, speedup) under the bench-diff gate.

   Record keys carry the batch size in [name] ("refresh-b4", ...) so the
   diff compares like against like; per-query speedup and the aggregate
   refresh-total vs recompute-total ratio ride along as counters. *)

module Spec = Gb_datagen.Spec
module Query = Genbase.Query
module Live = Gb_stream.Live
module Ingest = Gb_stream.Ingest
module Maintain = Gb_stream.Maintain
module Exec = Gb_stream.Exec

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let pct xs p =
  let a = Array.of_list (List.sort compare xs) in
  let n = Array.length a in
  a.(min (n - 1) (int_of_float (Float.of_int (n - 1) *. p +. 0.5)))

(* Total event volume, split into batches of [b] appends (plus updates
   and variants in the default 2:1 / 4:1 ratios). All batch sizes apply
   the same totals, so only the refresh cadence varies. *)
let total_appends = 128

let profile_for b =
  Ingest.profile ~batches:(total_appends / b) ~appends:b ~updates:(b / 2)
    ~variants:(max 1 (b / 4)) ()

let run ~quick =
  let samples = if quick then 2 else 4 in
  (* The scaled Large class (ISSUE acceptance: >= 5x at the smallest
     batch on the large size class). *)
  let spec = Spec.of_size Spec.Large in
  let ds = Genbase.Dataset.generate ~seed:0x6E0BA5EL spec in
  let size = Spec.label spec.Spec.size in
  let queries = Query.all in
  let batch_sizes = [ 4; 32; 128 ] in
  Printf.printf "%-6s %-14s %10s %10s %10s %10s %8s\n" "batch" "query"
    "refresh-p50" "refresh-p99" "recompute" "speedup" "stale";
  List.concat_map
    (fun b ->
      let log = Ingest.generate ~profile:(profile_for b) ds in
      let exec = Exec.create ~queries ds log in
      (* Per-batch: apply, then refresh every family; the apply cost is
         its own record. *)
      let apply_s = ref [] in
      let refresh_s = Hashtbl.create 8 in
      let push q dt =
        Hashtbl.replace refresh_s q
          (dt :: (try Hashtbl.find refresh_s q with Not_found -> []))
      in
      while Exec.lag exec > 0 do
        let dt, () = time (fun () -> Exec.step exec) in
        apply_s := dt :: !apply_s;
        List.iter
          (fun q ->
            let dt, _ = time (fun () -> Exec.refresh exec q) in
            push q dt)
          queries
      done;
      let c = Exec.counters exec in
      let final = Exec.snapshot exec in
      let live = Live.of_dataset final in
      let recompute_once q =
        match
          Genbase.Engine.run Genbase.Engine_sql.colstore_udf final q
            ~timeout_s:600.0 ()
        with
        | Genbase.Engine.Completed (t, _) -> Genbase.Engine.total t
        | _ ->
          fst
            (time (fun () ->
                 let m = Maintain.create ~queries:[ q ] live in
                 ignore (Sys.opaque_identity (Maintain.refresh m live q))))
      in
      let per_query =
        List.map
          (fun q ->
            let rs = Hashtbl.find refresh_s q in
            let recompute = List.init samples (fun _ -> recompute_once q) in
            let r50 = pct rs 0.5 and r99 = pct rs 0.99 in
            let c50 = pct recompute 0.5 in
            let speedup = c50 /. Float.max 1e-9 r50 in
            let stale = float_of_int (Exec.staleness exec q) in
            Printf.printf "%-6d %-14s %9.2gms %9.2gms %9.2gms %9.1fx %8.0f\n" b
              (Query.name q) (1e3 *. r50) (1e3 *. r99) (1e3 *. c50) speedup
              stale;
            (q, rs, recompute, r50, c50, speedup, stale))
          queries
      in
      let refresh_total =
        List.fold_left
          (fun acc (_, rs, _, _, _, _, _) -> acc +. List.fold_left ( +. ) 0. rs)
          0. per_query
      in
      let batches = float_of_int (Array.length log.Ingest.batches) in
      let recompute_total =
        List.fold_left (fun acc (_, _, _, _, c50, _, _) -> acc +. (c50 *. batches))
          0. per_query
      in
      let agg = recompute_total /. Float.max 1e-9 refresh_total in
      Printf.printf
        "%-6d %-14s refresh-total %.3fs vs recompute-total %.3fs (%.1fx)\n" b
        "ALL" refresh_total recompute_total agg;
      let query_records =
        List.concat_map
          (fun (q, rs, recompute, r50, c50, speedup, stale) ->
            ignore r50;
            ignore c50;
            List.filter_map Fun.id
              [
                Gb_obs.Bench_json.make
                  ~name:(Printf.sprintf "refresh-b%d" b)
                  ~engine:"Streaming IVM" ~query:(Query.name q) ~size
                  ~unit_:"s"
                  ~counters:
                    [
                      ("p99_s", pct rs 0.99);
                      ("speedup", speedup);
                      ("staleness_rows", stale);
                    ]
                  rs;
                Gb_obs.Bench_json.make
                  ~name:(Printf.sprintf "recompute-b%d" b)
                  ~engine:"Streaming IVM" ~query:(Query.name q) ~size
                  ~unit_:"s" recompute;
              ])
          per_query
      in
      let ingest_record =
        Gb_obs.Bench_json.make
          ~name:(Printf.sprintf "ingest-b%d" b)
          ~engine:"Streaming IVM" ~size ~unit_:"s"
          ~counters:
            [
              ("rows_appended", float_of_int c.Exec.rows_appended);
              ("cells_updated", float_of_int c.Exec.cells_updated);
              ("variants_appended", float_of_int c.Exec.variants_appended);
              ("checkpoints", float_of_int c.Exec.checkpoints);
            ]
          !apply_s
      in
      let total_record =
        Gb_obs.Bench_json.make
          ~name:(Printf.sprintf "total-b%d" b)
          ~engine:"Streaming IVM" ~size ~unit_:"s"
          ~counters:[ ("recompute_total_s", recompute_total); ("speedup", agg) ]
          [ refresh_total ]
      in
      query_records @ List.filter_map Fun.id [ ingest_record; total_record ])
    batch_sizes
