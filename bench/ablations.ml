(* Ablation experiments for the design points the paper's discussion
   (Section 6) calls out:

   - 6.2 "Analytics": storage format matters — row-store tuple decode vs
     columnar late materialization; and the O(N) format-conversion cost of
     shipping data to an external package, measured against data size.
   - 6.2/6.3 "Algorithms": kernel implementation matters — blocked BLAS vs
     a naive triple loop vs linear algebra simulated in SQL, on the same
     multiply.
   - 6.3: approximate algorithms (randomized SVD, sampled covariance)
     against their exact counterparts — the paper's suggestion for scaling
     past the sizes none of the tested systems could handle. *)

module Mat = Gb_linalg.Mat
module Stopwatch = Gb_util.Clock.Stopwatch
open Gb_relational

let time f = snd (Stopwatch.time f)
let fmt = Gb_util.Render.seconds

(* One structured record per timed measurement, so ablation timings land
   in BENCH_ablation.json alongside the printed tables. *)
let rec_ ~name ?size t =
  Option.to_list (Gb_obs.Bench_json.make ~name ?size ~unit_:"s" [ t ])

let storage_formats () =
  print_endline "Ablation: storage format (microarray table scans)";
  let measured =
    List.map
      (fun size ->
        let ds = Genbase.Dataset.of_size size in
        let rel_rows = Genbase.Dataset.microarray_rows ds in
        let rs = Row_store.of_rows Genbase.Dataset.microarray_schema rel_rows in
        let cs = Col_store.of_rows Genbase.Dataset.microarray_schema rel_rows in
        let t_row =
          time (fun () -> ignore (Ops.count (Ops.scan_row_store rs)))
        in
        let t_col_all =
          time (fun () ->
              ignore
                (Ops.count
                   (Ops.scan_col_store cs [ "gene_id"; "patient_id"; "value" ])))
        in
        let t_col_one =
          time (fun () -> ignore (Ops.count (Ops.scan_col_store cs [ "value" ])))
        in
        let compressed =
          List.fold_left (fun acc (_, _, b) -> acc + b) 0
            (Col_store.compression_report cs)
        in
        let raw = Row_store.page_count rs * Row_store.page_size in
        let label = Gb_datagen.Spec.label size in
        ( [
            label;
            string_of_int (Row_store.row_count rs);
            fmt t_row;
            fmt t_col_all;
            fmt t_col_one;
            Printf.sprintf "%.2fx" (float_of_int raw /. float_of_int compressed);
          ],
          rec_ ~name:"row scan" ~size:label t_row
          @ rec_ ~name:"col scan (3 cols)" ~size:label t_col_all
          @ rec_ ~name:"col scan (1 col)" ~size:label t_col_one ))
      [ Gb_datagen.Spec.Small; Gb_datagen.Spec.Medium ]
  in
  print_endline
    (Gb_util.Render.table
       ~headers:
         [ "size"; "tuples"; "row scan"; "col scan (3 cols)";
           "col scan (1 col)"; "compression" ]
       ~rows:(List.map fst measured));
  List.concat_map snd measured

let export_boundary () =
  print_endline
    "Ablation: external-package boundary (CSV round-trip, Section 6.2's O(N) \
     conversion)";
  let g = Gb_util.Prng.create 9L in
  let measured =
    List.map
      (fun n ->
        let m = Mat.random g n n in
        let t = time (fun () -> ignore (Export.roundtrip_matrix m)) in
        let label = Printf.sprintf "%dx%d" n n in
        ( [
            label;
            fmt t;
            Printf.sprintf "%.1f MB/s"
              (float_of_int (8 * n * n) /. t /. 1e6);
          ],
          rec_ ~name:"csv round-trip" ~size:label t ))
      [ 100; 200; 400; 800 ]
  in
  print_endline
    (Gb_util.Render.table
       ~headers:[ "matrix"; "round-trip"; "throughput" ]
       ~rows:(List.map fst measured));
  List.concat_map snd measured

let kernel_implementations () =
  print_endline
    "Ablation: the same multiply, three implementations (blocked BLAS-style \
     / naive loops / simulated in SQL)";
  let g = Gb_util.Prng.create 10L in
  let measured =
    List.map
      (fun n ->
        let a = Mat.random g n n and b = Mat.random g n n in
        let t_blocked = time (fun () -> ignore (Gb_linalg.Blas.gemm a b)) in
        let t_naive = time (fun () -> ignore (Gb_linalg.Blas.gemm_naive a b)) in
        let t_sql =
          if n > 128 then None
          else
            Some
              (time (fun () ->
                   ignore
                     (Sql_linalg.to_matrix ~rows:n ~cols:n
                        (Sql_linalg.matmul (Sql_linalg.of_matrix a)
                           (Sql_linalg.of_matrix b)))))
        in
        let label = Printf.sprintf "%dx%d" n n in
        ( [
            label;
            fmt t_blocked;
            fmt t_naive;
            (match t_sql with Some t -> fmt t | None -> "(skipped)");
          ],
          rec_ ~name:"gemm blocked" ~size:label t_blocked
          @ rec_ ~name:"gemm naive" ~size:label t_naive
          @
          match t_sql with
          | Some t -> rec_ ~name:"gemm sql-simulated" ~size:label t
          | None -> [] ))
      [ 64; 128; 256 ]
  in
  print_endline
    (Gb_util.Render.table
       ~headers:[ "matrix"; "blocked"; "naive"; "SQL-simulated" ]
       ~rows:(List.map fst measured));
  List.concat_map snd measured

let approximate_algorithms () =
  print_endline
    "Ablation: exact vs approximate analytics (Section 6.3's suggestion for \
     scaling past the largest data set)";
  let measured =
    List.map
      (fun size ->
        let ds = Genbase.Dataset.of_size size in
        let gene_ids =
          Genbase.Qcommon.genes_with_func_below ds
            Gb_datagen.Generate.func_threshold
        in
        let x = Mat.sub_cols ds.Gb_datagen.Generate.expression gene_ids in
        let k = 50 in
        let rng () = Gb_util.Prng.create 3L in
        let exact = ref None in
        let t_exact =
          time (fun () -> exact := Some (Gb_linalg.Svd.top_k ~rng:(rng ()) x k))
        in
        let approx = ref None in
        let t_approx =
          time (fun () ->
              approx :=
                Some
                  (Gb_linalg.Randomized.svd ~rng:(rng ()) ~power_iterations:1
                     x k))
        in
        let exact = Option.get !exact and approx = Option.get !approx in
        let rel_err =
          let n = min (Array.length exact.Gb_linalg.Svd.s) 10 in
          let acc = ref 0. in
          for i = 0 to n - 1 do
            acc :=
              Float.max !acc
                (Float.abs
                   (exact.Gb_linalg.Svd.s.(i) -. approx.Gb_linalg.Svd.s.(i))
                /. exact.Gb_linalg.Svd.s.(i))
          done;
          !acc
        in
        let m_all = ds.Gb_datagen.Generate.expression in
        let cov_exact = ref None in
        let t_cov =
          time (fun () -> cov_exact := Some (Gb_linalg.Covariance.matrix m_all))
        in
        let sample_rows = max 10 (fst (Mat.dims m_all) / 10) in
        let cov_approx = ref None in
        let t_cov_s =
          time (fun () ->
              cov_approx :=
                Some
                  (Gb_linalg.Randomized.covariance_sample ~rng:(rng ())
                     ~rows:sample_rows m_all))
        in
        let cov_err =
          Mat.max_abs_diff (Option.get !cov_exact) (Option.get !cov_approx)
          /. Float.max 1e-9 (Mat.frobenius (Option.get !cov_exact))
        in
        let label = Gb_datagen.Spec.label size in
        ( [
            [
              label ^ " svd";
              fmt t_exact;
              fmt t_approx;
              Printf.sprintf "%.2fx" (t_exact /. t_approx);
              Printf.sprintf "%.4f%%" (100. *. rel_err);
            ];
            [
              label ^ " covariance";
              fmt t_cov;
              fmt t_cov_s;
              Printf.sprintf "%.2fx" (t_cov /. t_cov_s);
              Printf.sprintf "%.4f%%" (100. *. cov_err);
            ];
          ],
          rec_ ~name:"svd exact" ~size:label t_exact
          @ rec_ ~name:"svd randomized" ~size:label t_approx
          @ rec_ ~name:"covariance exact" ~size:label t_cov
          @ rec_ ~name:"covariance sampled" ~size:label t_cov_s ))
      [ Gb_datagen.Spec.Medium; Gb_datagen.Spec.Large; Gb_datagen.Spec.XLarge ]
  in
  print_endline
    (Gb_util.Render.table
       ~headers:
         [ "workload"; "exact"; "approximate"; "speedup";
           "rel. error" ]
       ~rows:(List.concat_map fst measured));
  List.concat_map snd measured

let larger_than_memory () =
  print_endline
    "Ablation: tables larger than the buffer pool (scan cost of disk \
     faulting vs memory-resident)";
  let ds = Genbase.Dataset.of_size Gb_datagen.Spec.Small in
  let rel_rows = Genbase.Dataset.microarray_rows ds in
  let rs = Row_store.of_rows Genbase.Dataset.microarray_schema rel_rows in
  let t_ram = time (fun () -> Row_store.iter rs (fun _ -> ())) in
  let measured =
    List.map
      (fun frames ->
        let ps =
          Paged_store.of_rows ~pool_frames:frames
            Genbase.Dataset.microarray_schema rel_rows
        in
        let t = time (fun () -> Paged_store.iter ps (fun _ -> ())) in
        let stats = Paged_store.pool_stats ps in
        let total_pages = Paged_store.page_count ps in
        Paged_store.close ps;
        ( [
            Printf.sprintf "%d frames / %d pages" frames total_pages;
            fmt t;
            Printf.sprintf "%.1fx" (t /. t_ram);
            string_of_int stats.Buffer_pool.evictions;
          ],
          rec_ ~name:"paged scan"
            ~size:(Printf.sprintf "%d frames" frames)
            t ))
      [ 64; 8; 2 ]
  in
  print_endline
    (Gb_util.Render.table
       ~headers:
         [ "buffer pool"; "full scan"; "vs in-memory"; "evictions" ]
       ~rows:
         ([ [ "in-memory row store"; fmt t_ram; "1.0x"; "-" ] ]
         @ List.map fst measured));
  rec_ ~name:"in-memory row scan" t_ram @ List.concat_map snd measured

let biclustering_algorithms () =
  print_endline
    "Ablation: biclustering algorithm choice (Cheng-Church greedy deletion \
     vs Dhillon spectral co-clustering) on the Q3 selection";
  let measured =
    List.map
      (fun size ->
        let ds = Genbase.Dataset.of_size size in
        let sel =
          Genbase.Qcommon.patients_by_age_gender ds ~max_age:40 ~gender:1
        in
        let m = Mat.sub_rows ds.Gb_datagen.Generate.expression sel in
        let cc = ref [] in
        let t_cc = time (fun () -> cc := Gb_bicluster.Cheng_church.run m) in
        let sp = ref [] in
        let t_sp =
          time (fun () ->
              sp :=
                Gb_bicluster.Spectral.run
                  ~rng:(Gb_util.Prng.create 1L)
                  ~k:4 m)
        in
        let cc_msr =
          match !cc with
          | b :: _ -> Printf.sprintf "%.4f" b.Gb_bicluster.Cheng_church.msr
          | [] -> "-"
        in
        let sp_msr =
          match
            List.filter
              (fun (c : Gb_bicluster.Spectral.cocluster) ->
                Array.length c.rows >= 2 && Array.length c.cols >= 2)
              !sp
          with
          | c :: _ ->
            Printf.sprintf "%.4f"
              (Gb_bicluster.Cheng_church.mean_squared_residue m c.rows c.cols)
          | [] -> "-"
        in
        let label = Gb_datagen.Spec.label size in
        ( [ label; fmt t_cc; cc_msr; fmt t_sp; sp_msr ],
          rec_ ~name:"cheng-church" ~size:label t_cc
          @ rec_ ~name:"spectral cocluster" ~size:label t_sp ))
      [ Gb_datagen.Spec.Small; Gb_datagen.Spec.Medium ]
  in
  print_endline
    (Gb_util.Render.table
       ~headers:
         [ "size"; "cheng-church"; "msr"; "spectral"; "msr (1st cocluster)" ]
       ~rows:(List.map fst measured));
  List.concat_map snd measured

let run () =
  let r1 = storage_formats () in
  print_newline ();
  let r2 = larger_than_memory () in
  print_newline ();
  let r3 = export_boundary () in
  print_newline ();
  let r4 = kernel_implementations () in
  print_newline ();
  let r5 = biclustering_algorithms () in
  print_newline ();
  let r6 = approximate_algorithms () in
  r1 @ r2 @ r3 @ r4 @ r5 @ r6
