(* Chaos scenario: the multi-node grid of Figures 3/4 rerun under the
   default deterministic fault plan, summarized as per-engine availability
   and recovery work. Fault placements derive from the chaos seed, not the
   data seed, so the same data is measured with and without faults. *)

module H = Genbase.Harness

let run config =
  let cells = H.chaos_cells config in
  print_endline (H.availability cells);
  H.bench_records cells @ H.availability_records cells
