(* Chaos scenario: the multi-node grid of Figures 3/4 rerun under the
   default deterministic fault plan, summarized as per-engine availability
   and recovery work. Fault placements derive from the chaos seed, not the
   data seed, so the same data is measured with and without faults. *)

module H = Genbase.Harness

(* The streaming executor joins the availability table as a single-node
   row: its fault plan crashes the ingest loop mid-stream, so the cells
   exercise checkpoint restore + batch replay rather than BSP recovery.
   Same chaos seed discipline as the grid engines. *)
let stream_cells config =
  let sizes = config.H.sizes in
  let size = List.nth sizes (List.length sizes - 1) in
  let ds =
    Genbase.Dataset.generate ~seed:config.H.seed
      (Gb_datagen.Spec.of_size size)
  in
  let fault = H.chaos_plan H.default_chaos ~engine:"Streaming IVM" ~nodes:1 in
  (* 64 batches spans the plan's full superstep range, so the configured
     crash probability actually lands mid-stream. *)
  let profile = Gb_stream.Ingest.profile ~batches:64 () in
  let engine = Gb_stream.Exec.engine ~fault ~profile () in
  List.map
    (fun q -> H.run_cell engine ds q ~timeout_s:config.H.timeout_s)
    Genbase.Query.all

let run config =
  let cells = H.chaos_cells config @ stream_cells config in
  print_endline (H.availability cells);
  H.bench_records cells @ H.availability_records cells
