(* Weak scaling: the experiment the paper announces at the end of Section 5
   ("in reality, the genomics data should scale in size with the number of
   nodes in the cluster ('weak scaling') … we expect benchmark performance
   to scale on such runs").

   The patient dimension grows with the node count, so per-node data stays
   constant; a system that scales well should hold its query time roughly
   flat as nodes are added. *)

let base_patients = 400
let genes = 600

let run_query engine_of ds nodes q =
  match
    Genbase.Engine.run (engine_of nodes) ds q ~timeout_s:300. ()
  with
  | Genbase.Engine.Completed (t, _) -> Some (Genbase.Engine.total t)
  | _ -> None

let run () =
  print_endline
    "Weak scaling: per-node data held constant (patients = 400 x nodes)";
  let node_counts = [ 1; 2; 4 ] in
  let datasets =
    List.map
      (fun n ->
        ( n,
          Genbase.Dataset.generate
            (Gb_datagen.Spec.custom ~genes ~patients:(base_patients * n)) ))
      node_counts
  in
  let systems =
    [
      ("pbdR", fun nodes -> Genbase.Engine_pbdr.engine ~nodes);
      ("SciDB", fun nodes -> Genbase.Engine_scidb_mn.engine ~nodes);
      ( "Column store + pbdR",
        fun nodes -> Genbase.Engine_colstore_mn.pbdr ~nodes );
    ]
  in
  List.concat_map
    (fun q ->
      let measured =
        List.map
          (fun (name, engine_of) ->
            let cells =
              List.map
                (fun (nodes, ds) -> (nodes, run_query engine_of ds nodes q))
                datasets
            in
            let row =
              name
              :: List.map
                   (fun (_, t) ->
                     match t with
                     | Some t -> Gb_util.Render.seconds t
                     | None -> "-")
                   cells
            in
            let recs =
              List.filter_map
                (fun (nodes, t) ->
                  Option.bind t (fun t ->
                      Gb_obs.Bench_json.make
                        ~name:(Printf.sprintf "weak-n%d" nodes)
                        ~engine:name
                        ~query:(Genbase.Query.name q)
                        ~unit_:"s" [ t ]))
                cells
            in
            (row, recs))
          systems
      in
      Printf.printf "Weak scaling, %s query\n" (Genbase.Query.title q);
      print_endline
        (Gb_util.Render.table
           ~headers:
             ("System"
             :: List.map
                  (fun n ->
                    Printf.sprintf "%d node%s (%d patients)" n
                      (if n = 1 then "" else "s")
                      (base_patients * n))
                  node_counts)
           ~rows:(List.map fst measured));
      List.concat_map snd measured)
    [ Genbase.Query.Q1_regression; Genbase.Query.Q2_covariance;
      Genbase.Query.Q4_svd ]
