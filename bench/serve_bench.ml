(* Serving-layer benchmark section: run every load-generator scenario
   against the simulated server and report tail latencies, goodput and
   the shed/timeout/breaker breakdown as schema-v1 records.

   The simulation is deterministic (one seed fixes arrivals, mix, faults
   and retries), so the committed baseline matches bit-for-bit and the
   bench-diff gate for this section is exact rather than noise-bounded. *)

module Loadgen = Gb_serve.Loadgen

let run ~quick =
  List.concat_map
    (fun (sc : Loadgen.scenario) ->
      let cfg =
        {
          (Loadgen.default_config sc) with
          Loadgen.duration = (if quick then 30. else 60.);
        }
      in
      let _, _, summary = Loadgen.run cfg in
      Format.printf "%a@.@." Loadgen.pp_summary summary;
      Loadgen.bench_records summary)
    Loadgen.scenarios
