(* Q6 overlap-join benchmarks: the parallel sort-merge sweep kernel, the
   quadratic nested-loop oracle it is checked against, and the
   end-to-end interval-join plan through the column store (scan +
   planner + sweep + canonical sort).

   Every record carries the pair count as a counter, so the committed
   BENCH_q6.json baseline guards both the runtime and the answer size:
   a kernel change that alters the join result shows up in the diff
   even if it happens to run at the same speed. *)

module Ranges = Gb_util.Ranges
module Pool = Gb_par.Pool

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let median xs =
  let s = List.sort compare xs in
  List.nth s (List.length s / 2)

let measure ~samples f =
  ignore (Sys.opaque_identity (f ()));
  List.init samples (fun _ ->
      let dt, r = time f in
      ignore (Sys.opaque_identity r);
      dt)

let run ~quick =
  let samples = if quick then 3 else 5 in
  let genes = if quick then 300 else 1000 in
  let patients = if quick then 600 else 2000 in
  let spec = Gb_datagen.Spec.custom ~genes ~patients in
  let ds = Genbase.Dataset.generate ~seed:0xC0FFEEL spec in
  let vivs = Genbase.Qcommon.variant_ivs ds in
  let givs = Genbase.Qcommon.gene_ivs ds in
  let shape =
    Printf.sprintf "%dx%d" (Array.length vivs) (Array.length givs)
  in
  let db =
    Genbase.Engine_sql.make_db Genbase.Engine_sql.Col_backend ds
      ~check:(fun () -> ())
  in
  let params = Genbase.Query.default_params in
  let pairs = ref 0 in
  let kernels =
    [
      ( "overlap-sweep",
        fun () ->
          pairs := List.length (Genbase.Qcommon.overlap_sweep vivs givs) );
      ( "nested-loop-oracle",
        fun () ->
          pairs := List.length (Ranges.nested_loop_join vivs givs) );
      ( "interval-join-plan",
        fun () ->
          pairs := List.length (Genbase.Relops.q6_dm db params) );
    ]
  in
  let results =
    List.map
      (fun (name, f) ->
        let meds = measure ~samples f in
        (name, median meds, float_of_int !pairs))
      kernels
  in
  Pool.shutdown ();
  Printf.printf "%-20s %-12s %10s %10s\n" "kernel" "shape" "median" "pairs";
  List.iter
    (fun (name, med, n) ->
      Printf.printf "%-20s %-12s %9.4fs %10.0f\n" name shape med n)
    results;
  List.filter_map
    (fun (name, med, n) ->
      Gb_obs.Bench_json.make ~name ~query:"overlap" ~size:shape ~unit_:"s"
        ~counters:[ ("pairs", n) ]
        [ med ])
    results
