(* Domain-pool scaling: the same kernel at 1, 2 and 4 domains.

   Three kernels cover the three wired-up subsystems — blocked GEMM
   (lib/linalg), the covariance pipeline (center + syrk), and the
   partitioned hash join (lib/relational). Each (kernel, domains) cell
   reports the median of several wall-clock samples after a warmup run,
   plus its speedup over the 1-domain median as a counter, so the
   committed BENCH_par.json baseline guards the 1-domain cost and the
   scaling trend is visible in the same file.

   Honesty note: speedups here are whatever the host delivers. On a
   single-core container the 2- and 4-domain cells measure pure pool
   overhead (expect <= 1x); on real multicore hardware the row-band
   kernels scale near-linearly. The numbers are measured, never
   synthesized. *)

module Mat = Gb_linalg.Mat
module Pool = Gb_par.Pool
open Gb_relational

let domain_counts = [ 1; 2; 4 ]

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let median xs =
  let s = List.sort compare xs in
  List.nth s (List.length s / 2)

(* One kernel at one domain count: warmup, then [samples] timed runs.
   The pool is resized per cell and the result of every run is kept
   live so the compiler cannot drop the work. *)
let measure ~samples ~jobs f =
  Pool.set_jobs jobs;
  ignore (Sys.opaque_identity (f ()));
  List.init samples (fun _ ->
      let dt, r = time f in
      ignore (Sys.opaque_identity r);
      dt)

let join_input ~build_rows ~probe_rows =
  let left_schema =
    Schema.make [ ("gene_id", Value.TInt); ("value", Value.TFloat) ]
  in
  let right_schema =
    Schema.make [ ("gene_id", Value.TInt); ("target", Value.TInt) ]
  in
  let left =
    List.init probe_rows (fun i ->
        [| Value.Int (i mod build_rows); Value.Float (float_of_int i) |])
  in
  let right =
    List.init build_rows (fun i -> [| Value.Int i; Value.Int (i * 7) |])
  in
  ( Ops.of_list left_schema left,
    Ops.of_list right_schema right,
    [ ("gene_id", "gene_id") ] )

let run ~quick =
  let samples = if quick then 3 else 5 in
  let g = Gb_util.Prng.create 0x9A12L in
  let n = if quick then 192 else 384 in
  let a = Mat.random g n n and b = Mat.random g n n in
  let cov_rows = if quick then 1024 else 4096 in
  let cov_cols = if quick then 64 else 128 in
  let tall = Mat.random g cov_rows cov_cols in
  let build_rows = if quick then 2_000 else 8_000 in
  let probe_rows = if quick then 15_000 else 60_000 in
  let jl, jr, on = join_input ~build_rows ~probe_rows in
  let kernels =
    [
      ( "gemm",
        Printf.sprintf "%dx%d" n n,
        fun () -> ignore (Gb_linalg.Blas.gemm a b) );
      ( "covariance",
        Printf.sprintf "%dx%d" cov_rows cov_cols,
        fun () -> ignore (Gb_linalg.Covariance.matrix tall) );
      ( "hash-join",
        Printf.sprintf "%dx%d" probe_rows build_rows,
        fun () -> ignore (Ops.count (Ops.hash_join ~on jl jr)) );
    ]
  in
  let results =
    List.map
      (fun (name, shape, f) ->
        let per_jobs =
          List.map
            (fun jobs -> (jobs, median (measure ~samples ~jobs f)))
            domain_counts
        in
        (name, shape, per_jobs))
      kernels
  in
  Pool.reset_jobs ();
  Pool.shutdown ();
  Printf.printf "%-12s %-12s %10s %10s %10s %18s\n" "kernel" "shape" "d=1"
    "d=2" "d=4" "speedup d4/d1";
  List.iter
    (fun (name, shape, per_jobs) ->
      let t d = List.assoc d per_jobs in
      Printf.printf "%-12s %-12s %9.4fs %9.4fs %9.4fs %17.2fx\n" name shape
        (t 1) (t 2) (t 4)
        (t 1 /. t 4))
    results;
  List.concat_map
    (fun (name, _, per_jobs) ->
      let t1 = List.assoc 1 per_jobs in
      List.filter_map
        (fun (jobs, med) ->
          let counters =
            if jobs = 1 then []
            else [ ("speedup_vs_d1", t1 /. med) ]
          in
          Gb_obs.Bench_json.make ~name
            ~size:(Printf.sprintf "d%d" jobs)
            ~unit_:"s" ~counters [ med ])
        per_jobs)
    results
