(* GenBase benchmark driver: regenerates every table and figure from the
   paper's evaluation (Figures 1-5 and Table 1) plus the ablation, weak
   scaling, crossover, chaos and observability sections, and Bechamel
   microbenchmarks of the core kernels.

   The section list below is the single source of truth: the usage
   string and argument parsing both derive from it, so adding a section
   cannot leave a stale usage message behind. With no selection,
   everything runs. Every section additionally writes its measurements
   as structured records to BENCH_<section>.json in the working
   directory (see Gb_obs.Bench_json; compare runs with
   `genbase bench-diff`). *)

module H = Genbase.Harness

let sections =
  [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "table1"; "micro"; "ablation";
    "weak"; "crossover"; "chaos"; "obs"; "par"; "serve"; "slo"; "q6";
    "critpath"; "stream" ]

let usage () =
  Printf.sprintf "usage: main.exe [%s] [--quick] [--timeout SECONDS]"
    (String.concat "|" sections)

let parse_args () =
  let selected = ref [] in
  let quick = ref false in
  let timeout = ref None in
  let rec go = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      go rest
    | "--timeout" :: v :: rest ->
      timeout := Some (float_of_string v);
      go rest
    | arg :: rest when List.mem arg sections ->
      selected := arg :: !selected;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %s\n%s\n" arg (usage ());
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv));
  let selected = if !selected = [] then sections else List.rev !selected in
  (selected, !quick, !timeout)

let () =
  let selected, quick, timeout = parse_args () in
  let t0 = Unix.gettimeofday () in
  let progress s =
    Printf.eprintf "[%7.1fs] %s\n%!" (Unix.gettimeofday () -. t0) s
  in
  let config =
    let base = if quick then H.quick_config else H.default_config in
    let base =
      match timeout with None -> base | Some t -> { base with H.timeout_s = t }
    in
    { base with H.progress = Some progress }
  in
  let want s = List.mem s selected in
  let banner s =
    print_newline ();
    print_endline (String.make 72 '=');
    print_endline s;
    print_endline (String.make 72 '=')
  in
  let emit section records =
    let path = Gb_obs.Bench_json.write ~section ~quick records in
    progress
      (Printf.sprintf "wrote %s (%d records)" path (List.length records))
  in

  if want "fig1" || want "fig2" then begin
    banner "Single-node results (Figures 1 and 2)";
    let cells = H.single_node_cells config in
    let records = H.bench_records cells in
    if want "fig1" then begin
      List.iter print_endline (H.fig1 cells);
      emit "fig1" records
    end;
    if want "fig2" then begin
      List.iter print_endline (H.fig2 cells);
      emit "fig2" records
    end
  end;

  if want "fig3" || want "fig4" then begin
    banner "Multi-node results (Figures 3 and 4)";
    let cells = H.multi_node_cells config in
    let records = H.bench_records cells in
    if want "fig3" then begin
      List.iter print_endline (H.fig3 cells);
      emit "fig3" records
    end;
    if want "fig4" then begin
      List.iter print_endline (H.fig4 cells);
      emit "fig4" records
    end
  end;

  if want "fig5" then begin
    banner "Coprocessor results (Figure 5)";
    let cells = H.phi_cells config in
    List.iter print_endline (H.fig5 cells);
    emit "fig5" (H.bench_records cells)
  end;

  if want "table1" then begin
    banner "Coprocessor analytics speedup (Table 1)";
    let cells = H.phi_mn_cells config in
    print_endline (H.table1 cells);
    emit "table1" (H.bench_records cells)
  end;

  if want "ablation" then begin
    banner "Design ablations (Section 6 discussion points)";
    emit "ablation" (Ablations.run ())
  end;

  if want "weak" then begin
    banner "Weak scaling (the experiment Section 5 announces)";
    emit "weak" (Weak_scaling.run ())
  end;

  if want "crossover" then begin
    banner "DM/analytics crossover (Section 6.1)";
    emit "crossover" (Crossover.run ())
  end;

  if want "chaos" then begin
    banner "Availability under fault injection (chaos scenario)";
    emit "chaos" (Chaos.run config)
  end;

  if want "micro" then begin
    banner "Kernel microbenchmarks (Bechamel)";
    emit "micro" (Microbench.run ~quick)
  end;

  if want "obs" then begin
    banner "Observability hook overhead (Bechamel)";
    emit "obs" (Obsbench.run ())
  end;

  if want "par" then begin
    banner "Domain-pool scaling (GEMM, covariance, hash join at 1/2/4 domains)";
    emit "par" (Par_scaling.run ~quick)
  end;

  if want "serve" then begin
    banner "Overload-safe serving (tail latency, goodput, shedding)";
    emit "serve" (Serve_bench.run ~quick)
  end;

  if want "slo" then begin
    banner "SLO burn-rate alerting (deterministic fire/resolve instants)";
    emit "slo" (Slo_bench.run ~quick)
  end;

  if want "critpath" then begin
    banner "Critical-path blame (flight recorder, deterministic dumps)";
    emit "critpath" (Critpath_bench.run ~quick)
  end;

  if want "stream" then begin
    banner "Streaming ingest: refresh vs recompute per batch size";
    emit "stream" (Stream_bench.run ~quick)
  end;

  if want "q6" then begin
    banner "Q6 overlap join (sweep kernel, nested-loop oracle, planner path)";
    emit "q6" (Q6_bench.run ~quick)
  end;

  Printf.eprintf "[%7.1fs] done\n%!" (Unix.gettimeofday () -. t0)
