(* Microbenchmarks of the observability hooks themselves: the disabled
   hooks must compile to near-nothing (a load and a branch), and the
   enabled per-row tracing cost bounds the harness's <5% overhead
   contract. Reported as ns/run alongside an end-to-end enabled-vs-
   disabled comparison of a full Q1 cell. *)

open Bechamel
open Toolkit
module Obs = Gb_obs.Obs
module Metric = Gb_obs.Metric

let c = Metric.counter ~unit_:"op" "bench.obs_ops"

let scan_rel () =
  let ds =
    Gb_datagen.Generate.generate ~seed:0xBE7CL
      (Gb_datagen.Spec.custom ~genes:100 ~patients:100)
  in
  let db = Genbase.Dataset.load_col_stores ds in
  fun () ->
    Gb_relational.Ops.scan_col_store db.Genbase.Dataset.microarray_c []

let tests ~enabled =
  Obs.set_enabled enabled;
  let scan = scan_rel () in
  let tag = if enabled then "on" else "off" in
  [
    Test.make
      ~name:(Printf.sprintf "span with_ (%s)" tag)
      (Staged.stage (fun () ->
           Obs.Span.with_ ~name:"bench" (fun () -> Sys.opaque_identity 42)));
    Test.make
      ~name:(Printf.sprintf "counter add (%s)" tag)
      (Staged.stage (fun () -> Metric.add c 1));
    Test.make
      ~name:(Printf.sprintf "traced scan 10k rows (%s)" tag)
      (Staged.stage (fun () ->
           Obs.reset ();
           ignore
             (Gb_relational.Ops.count
                (Gb_relational.Ops.traced ~name:"bench" (scan ())))));
  ]

let estimate test =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let name = Test.Elt.name (List.hd (Test.elements test)) in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let est =
    Hashtbl.fold
      (fun _ v acc ->
        match Analyze.OLS.estimates v with Some (t :: _) -> Some t | _ -> acc)
      analyzed None
  in
  (name, est)

(* Interleaved enabled/disabled measurement of one full cell, mirroring
   `genbase trace --overhead-check`: median ratio over several
   best-of-n interleaved rounds, so one noisy round cannot dominate. *)
let cell_overhead () =
  let ds =
    Gb_datagen.Generate.generate ~seed:0x6E0BA5EL
      (Gb_datagen.Spec.of_size Gb_datagen.Spec.Small)
  in
  let e = Genbase.Engine_sql.colstore_udf in
  let one enabled =
    Obs.set_enabled enabled;
    Obs.reset ();
    Metric.reset ();
    match
      Genbase.Engine.run e ds Genbase.Query.Q1_regression ~timeout_s:60. ()
    with
    | Genbase.Engine.Completed (t, _) -> Genbase.Engine.total t
    | _ -> infinity
  in
  let round () =
    let off = ref infinity and on_ = ref infinity in
    for _ = 1 to 6 do
      off := Float.min !off (one false);
      on_ := Float.min !on_ (one true)
    done;
    100. *. ((!on_ /. !off) -. 1.)
  in
  let pcts = List.sort compare (List.init 5 (fun _ -> round ())) in
  Obs.set_enabled false;
  List.nth pcts (List.length pcts / 2)

let run () =
  let results =
    List.map estimate (tests ~enabled:false)
    @ List.map estimate (tests ~enabled:true)
  in
  Obs.set_enabled false;
  let rows =
    List.map
      (fun (name, est) ->
        [
          name;
          (match est with
          | Some ns when ns >= 1e6 -> Printf.sprintf "%.2f ms" (ns /. 1e6)
          | Some ns when ns >= 1e3 -> Printf.sprintf "%.2f us" (ns /. 1e3)
          | Some ns -> Printf.sprintf "%.1f ns" ns
          | None -> "n/a");
        ])
      results
  in
  print_endline (Gb_util.Render.table ~headers:[ "hook"; "time/run" ] ~rows);
  let overhead = cell_overhead () in
  Printf.printf
    "Q1 small (colstore-udf), median of 5 interleaved best-of-6 rounds: \
     overhead %+.2f%%\n"
    overhead;
  List.filter_map
    (fun (name, est) ->
      Option.bind est (fun ns ->
          Gb_obs.Bench_json.make ~name ~unit_:"ns" [ ns ]))
    results
  @ Option.to_list
      (Gb_obs.Bench_json.make ~name:"cell overhead (Q1 small)" ~unit_:"pct"
         [ overhead ])
