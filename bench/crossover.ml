(* The end-to-end asymptotics argument of Section 6.1: data management is
   O(N)–O(N log N) while the analytics are O(N^{3/2}), so DM dominates at
   small scale and analytics dominate at large scale. Measured here as the
   analytics share of total time per query on the array engine across the
   four data set sizes (including the XLarge configuration none of the
   paper's systems completed). *)

let analytics_fraction ds q =
  match
    Genbase.Engine.run Genbase.Engine_scidb.engine ds q ~timeout_s:600. ()
  with
  | Genbase.Engine.Completed (t, _) ->
    let total = Genbase.Engine.total t in
    if total <= 0. then None
    else Some (t.Genbase.Engine.analytics /. total)
  | _ -> None

let run () =
  print_endline
    "Crossover: analytics share of total query time on SciDB (Section 6.1 \
     predicts the share grows with N)";
  let sizes =
    [ Gb_datagen.Spec.Small; Gb_datagen.Spec.Medium; Gb_datagen.Spec.Large;
      Gb_datagen.Spec.XLarge ]
  in
  let datasets = List.map (fun s -> (s, Genbase.Dataset.of_size s)) sizes in
  let measured =
    List.map
      (fun q ->
        let fracs =
          List.map (fun (s, ds) -> (s, analytics_fraction ds q)) datasets
        in
        let row =
          Genbase.Query.title q
          :: List.map
               (fun (_, f) ->
                 match f with
                 | Some f -> Printf.sprintf "%.0f%%" (100. *. f)
                 | None -> "-")
               fracs
        in
        let recs =
          List.filter_map
            (fun (s, f) ->
              Option.bind f (fun f ->
                  Gb_obs.Bench_json.make ~name:"analytics share"
                    ~query:(Genbase.Query.name q)
                    ~size:(Gb_datagen.Spec.label s) ~unit_:"pct"
                    [ 100. *. f ]))
            fracs
        in
        (row, recs))
      Genbase.Query.all
  in
  print_endline
    (Gb_util.Render.table
       ~headers:("Query" :: List.map (fun s -> Gb_datagen.Spec.label s) sizes)
       ~rows:(List.map fst measured));
  List.concat_map snd measured
