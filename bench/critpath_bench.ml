(* Critical-path blame benchmark section: run the overload and chaos
   scenarios with the flight recorder armed and the in-memory collector
   on, then decompose every request's end-to-end latency into blame
   segments with Gb_obs.Critpath.

   Recorder decisions (kept traces, dump instants) and the blame
   decomposition are driven entirely by the simulated clock in event
   order and consume no PRNG draws, so every record here is a pure
   function of (scenario, seed): the committed BENCH_critpath.json
   baseline matches bit-for-bit and the bench-diff gate is exact. The
   blame-sum identity (segments sum exactly to e2e) is asserted on
   every request; a violation fails the section. *)

module Loadgen = Gb_serve.Loadgen
module Obs = Gb_obs.Obs
module Rec = Gb_obs.Recorder
module Cp = Gb_obs.Critpath
module B = Gb_obs.Bench_json

let record ~name ~size ?(unit_ = "count") ?(counters = []) v =
  match B.make ~name ~size ~unit_ ~better:B.Lower ~counters [ v ] with
  | Some r -> r
  | None -> failwith ("critpath bench: unrecordable sample for " ^ name)

let scenario_records ~quick name =
  match Loadgen.find_scenario name with
  | Error e -> failwith e
  | Ok sc ->
    let cfg =
      {
        (Loadgen.default_config sc) with
        Loadgen.duration = (if quick then 30. else 60.);
      }
    in
    (* Collector for the full capture Critpath analyzes; recorder for
       the tail-sampled dump counters. Reset both so records depend only
       on (scenario, seed). *)
    Obs.set_enabled true;
    Obs.reset ();
    Rec.start ();
    let i = Loadgen.run_instrumented cfg in
    Rec.stop ();
    let events = Obs.events () in
    Obs.set_enabled false;
    let dumps = Rec.dumps () in
    let st = Rec.stats () in
    let requests = Cp.requests events in
    let checked =
      match Cp.check requests with
      | Ok n -> n
      | Error e -> failwith ("critpath bench: blame-sum identity broken: " ^ e)
    in
    let s = i.Loadgen.i_summary in
    let size = s.Loadgen.scenario ^ "/" ^ s.Loadgen.size in
    Format.printf "%a@." Loadgen.pp_summary s;
    Format.printf
      "critpath %-9s requests %5d (identity checked)  dumps %d (%d \
       suppressed)  kept %d tail + %d failed + %d sampled@."
      name checked st.Rec.s_dumps st.Rec.s_suppressed st.Rec.s_tail_kept
      st.Rec.s_fail_kept st.Rec.s_fast_sampled;
    let profile = Cp.profile requests in
    print_string (Cp.render_profile profile);
    Format.printf "@.";
    let ok_requests = List.length (List.filter (fun r -> r.Cp.r_ok) requests) in
    let first_dump_s =
      match dumps with [] -> 0. | d :: _ -> d.Rec.d_at
    in
    let req_rec =
      record
        ~name:("critpath_" ^ name ^ "_requests")
        ~size
        ~counters:
          [ ("ok", float_of_int ok_requests);
            ("attempts", float_of_int s.Loadgen.attempts);
          ]
        (float_of_int checked)
    in
    let dump_rec =
      record
        ~name:("critpath_" ^ name ^ "_dumps")
        ~size
        ~counters:
          [ ("suppressed", float_of_int st.Rec.s_suppressed);
            ("tail_kept", float_of_int st.Rec.s_tail_kept);
            ("fail_kept", float_of_int st.Rec.s_fail_kept);
            ("fast_sampled", float_of_int st.Rec.s_fast_sampled);
            ("ring_dropped", float_of_int st.Rec.s_ring_dropped);
            ("first_dump_s", first_dump_s);
          ]
        (float_of_int st.Rec.s_dumps)
    in
    let blame_recs =
      List.map
        (fun (p : Cp.profile_entry) ->
          record
            ~name:("critpath_" ^ name ^ "_blame_" ^ p.Cp.p_label)
            ~size ~unit_:"s"
            ~counters:
              [ ("requests", float_of_int p.Cp.p_requests);
                ("mean_share", p.Cp.p_mean_share);
                ("p99_share", p.Cp.p_p99_share);
              ]
            p.Cp.p_total)
        profile
    in
    req_rec :: dump_rec :: blame_recs

let run ~quick =
  List.concat_map (scenario_records ~quick) [ "overload"; "chaos" ]
