(* Bechamel microbenchmarks of the kernels every engine is built from: one
   Test.make per kernel, reported as ns/run from the OLS fit against the
   monotonic clock. *)

open Bechamel
open Toolkit
module Mat = Gb_linalg.Mat

let rng () = Gb_util.Prng.create 0xBE7CL

let dataset = lazy (Gb_datagen.Generate.generate (Gb_datagen.Spec.custom ~genes:120 ~patients:160))

let tests () =
  let g = rng () in
  let a = Mat.random g 96 96 and b = Mat.random g 96 96 in
  let tall = Mat.random g 256 32 in
  let y = Array.init 256 (fun _ -> Gb_util.Prng.normal g) in
  let sym = Gb_linalg.Blas.ata tall in
  let scores = Array.init 2_000 (fun _ -> Gb_util.Prng.normal g) in
  let xs = Array.sub scores 0 200 and ys = Array.sub scores 200 800 in
  let ds = Lazy.force dataset in
  let micro_rows = Genbase.Dataset.microarray_rows ds in
  let row_store =
    Gb_relational.Row_store.of_rows Genbase.Dataset.microarray_schema micro_rows
  in
  let col_store =
    Gb_relational.Col_store.of_rows Genbase.Dataset.microarray_schema micro_rows
  in
  let chunked = Gb_arraydb.Chunked.of_matrix ds.Gb_datagen.Generate.expression in
  let some_rows = Array.init 40 (fun i -> i * 2) in
  let export_target = Mat.random g 64 64 in
  [
    Test.make ~name:"gemm 96x96 (blocked)"
      (Staged.stage (fun () -> ignore (Gb_linalg.Blas.gemm a b)));
    Test.make ~name:"gemm 96x96 (naive, Mahout-class)"
      (Staged.stage (fun () -> ignore (Gb_linalg.Blas.gemm_naive a b)));
    Test.make ~name:"qr 256x32"
      (Staged.stage (fun () -> ignore (Gb_linalg.Qr.factorize tall)));
    Test.make ~name:"linreg 256x32"
      (Staged.stage (fun () -> ignore (Gb_linalg.Linreg.fit tall y)));
    Test.make ~name:"covariance 256x32"
      (Staged.stage (fun () -> ignore (Gb_linalg.Covariance.matrix tall)));
    Test.make ~name:"lanczos top-8 of 32x32"
      (Staged.stage (fun () ->
           ignore (Gb_linalg.Lanczos.top_eigen ~rng:(rng ()) sym 8)));
    Test.make ~name:"wilcoxon 200 vs 800"
      (Staged.stage (fun () -> ignore (Gb_stats.Wilcoxon.rank_sum_test xs ys)));
    Test.make ~name:"ranks n=2000"
      (Staged.stage (fun () -> ignore (Gb_stats.Ranking.ranks scores)));
    Test.make ~name:"row store scan 19200 tuples"
      (Staged.stage (fun () ->
           ignore
             (Gb_relational.Ops.count
                (Gb_relational.Ops.scan_row_store row_store))));
    Test.make ~name:"col store scan (1 column)"
      (Staged.stage (fun () ->
           ignore
             (Gb_relational.Ops.count
                (Gb_relational.Ops.scan_col_store col_store [ "value" ]))));
    Test.make ~name:"chunked select 40 rows"
      (Staged.stage (fun () ->
           ignore (Gb_arraydb.Chunked.select_rows chunked some_rows)));
    Test.make ~name:"csv export roundtrip 64x64"
      (Staged.stage (fun () ->
           ignore (Gb_relational.Export.roundtrip_matrix export_target)));
  ]

let run ~quick =
  let quota = if quick then Time.second 0.25 else Time.second 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:true () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let results =
    List.map
      (fun test ->
        let name = Test.Elt.name (List.hd (Test.elements test)) in
        let raw = Benchmark.all cfg instances test in
        let analyzed = Analyze.all ols Instance.monotonic_clock raw in
        let est =
          Hashtbl.fold
            (fun _ v acc ->
              match Analyze.OLS.estimates v with
              | Some (t :: _) -> Some t
              | _ -> acc)
            analyzed None
        in
        (name, est))
      (tests ())
  in
  let rows =
    List.map
      (fun (name, est) ->
        [
          name;
          (match est with
          | Some ns when ns >= 1e6 -> Printf.sprintf "%.2f ms" (ns /. 1e6)
          | Some ns when ns >= 1e3 -> Printf.sprintf "%.2f us" (ns /. 1e3)
          | Some ns -> Printf.sprintf "%.0f ns" ns
          | None -> "n/a");
        ])
      results
  in
  print_endline
    (Gb_util.Render.table ~headers:[ "kernel"; "time/run" ] ~rows);
  (* The OLS estimate is already a per-run statistic over Bechamel's many
     samples; it becomes the record's single "sample". *)
  List.filter_map
    (fun (name, est) ->
      Option.bind est (fun ns ->
          Gb_obs.Bench_json.make ~name ~unit_:"ns" [ ns ]))
    results
