(* Client-side retry discipline for shed responses: capped exponential
   backoff with deterministic (key-hashed) jitter, raised to the
   server's retry-after hint when one was returned, cut off by the
   request's remaining deadline budget. Pure decision logic — the
   simulated load generator turns delays into re-arrival events and the
   live client turns them into sleeps. *)

module Retry = Gb_fault.Retry

type policy = {
  backoff : Retry.policy;
  honor_retry_after : bool;
}

let default_policy =
  {
    backoff =
      {
        Retry.max_attempts = 3;
        base_delay_s = 0.2;
        multiplier = 2.;
        max_delay_s = 4.;
        jitter = 0.25;
      };
    honor_retry_after = true;
  }

(* Only sheds are worth resubmitting: a served answer is final, a
   deadline expiry means the client's budget is gone, and a failure
   already consumed a full execution. *)
let retryable (r : Outcome.response) =
  match r.disposition with Outcome.Shed _ -> true | _ -> false

let next_delay policy ~key ~attempt ~retry_after ~remaining_s =
  if attempt >= policy.backoff.Retry.max_attempts then None
  else
    let d = Retry.delay_for_det policy.backoff ~key ~attempt in
    let d =
      match retry_after with
      | Some ra when policy.honor_retry_after -> Float.max d ra
      | _ -> d
    in
    (* Total-deadline cutoff, same rule as Fault.Retry: when the wait
       alone exhausts what is left of the client's budget, the retry
       could only ever time out. *)
    if d >= remaining_s then None else Some d

let call ?(policy = default_policy) ~key ~budget_s ~sleep ~submit () =
  let t0 = ref 0. in
  let rec go attempt elapsed =
    let r : Outcome.response = submit ~attempt in
    if attempt = 1 then t0 := r.Outcome.submitted_s;
    if not (retryable r) then { r with Outcome.attempt }
    else
      let elapsed = elapsed +. Outcome.latency_s r in
      match
        next_delay policy ~key ~attempt ~retry_after:r.Outcome.retry_after_s
          ~remaining_s:(budget_s -. elapsed)
      with
      | None -> { r with Outcome.attempt }
      | Some d ->
        (* The retry decision is part of the request's story: one
           instant per backoff, linked by the response's trace id. *)
        if Gb_obs.Obs.active () then
          Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Wall
            ~attrs:
              [
                ("trace", Gb_obs.Obs.Int r.Outcome.trace);
                ("attempt", Gb_obs.Obs.Int attempt);
                ("delay_s", Gb_obs.Obs.Float d);
                ("reason", Gb_obs.Obs.Str (Outcome.label r));
              ]
            ~name:"client.retry" ();
        sleep d;
        go (attempt + 1) (elapsed +. d)
  in
  go 1 0.
