type shed_reason = Queue_full | Memory | Breaker_open

type served_class = Ok_ | Degraded_ | Failed_

type disposition =
  | Served of served_class
  | Shed of shed_reason
  | Deadline_exceeded of [ `Queued | `Running ]

type response = {
  id : int;
  key : int;
  trace : int;
  attempt : int;
  engine : string;
  query : Genbase.Query.t;
  submitted_s : float;
  finished_s : float;
  queue_wait_s : float;
  exec_s : float;
  disposition : disposition;
  retry_after_s : float option;
  engine_outcome : Genbase.Engine.outcome option;
}

let latency_s r = r.finished_s -. r.submitted_s

let goodput r = match r.disposition with Served (Ok_ | Degraded_) -> true | _ -> false

let shed_reason_label = function
  | Queue_full -> "queue_full"
  | Memory -> "memory"
  | Breaker_open -> "breaker_open"

let label r =
  match r.disposition with
  | Served Ok_ -> "ok"
  | Served Degraded_ -> "degraded"
  | Served Failed_ -> "failed"
  | Shed reason -> "shed:" ^ shed_reason_label reason
  | Deadline_exceeded `Queued -> "deadline:queued"
  | Deadline_exceeded `Running -> "deadline:running"

let pp fmt r =
  Format.fprintf fmt "#%d %s/%s %s latency=%.4fs wait=%.4fs exec=%.4fs" r.id
    r.engine
    (Genbase.Query.name r.query)
    (label r) (latency_s r) r.queue_wait_s r.exec_s;
  match r.retry_after_s with
  | Some ra -> Format.fprintf fmt " retry-after=%.3fs" ra
  | None -> ()
