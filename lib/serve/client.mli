(** Retrying client for shed responses: capped exponential backoff with
    deterministic, request-keyed jitter ({!Gb_fault.Retry.delay_for_det}),
    raised to the server's retry-after hint, and cut off once the
    client's remaining budget can no longer fit the wait. *)

type policy = {
  backoff : Gb_fault.Retry.policy;
  honor_retry_after : bool;
      (** raise each backoff to the server's hint when one came back *)
}

val default_policy : policy
(** 3 attempts, 200 ms base doubling to a 4 s cap, 25% jitter,
    retry-after honored. *)

val retryable : Outcome.response -> bool
(** Only [Shed] responses are retryable: served answers are final,
    expired deadlines have no budget left, and failures already consumed
    an execution. *)

val next_delay :
  policy ->
  key:int ->
  attempt:int ->
  retry_after:float option ->
  remaining_s:float ->
  float option
(** Delay before resubmitting after the [attempt]-th try was shed, or
    [None] to give up (attempts exhausted, or the wait would not fit in
    [remaining_s]). Pure: the schedule for a given [key] replays
    identically. The simulated load generator feeds this into re-arrival
    events. *)

val call :
  ?policy:policy ->
  key:int ->
  budget_s:float ->
  sleep:(float -> unit) ->
  submit:(attempt:int -> Outcome.response) ->
  unit ->
  Outcome.response
(** Live driver: submit, and while the response is a retryable shed and
    the schedule allows, sleep and resubmit. Returns the final response
    with its [attempt] field set to the attempt that produced it. *)
