(** Overload-safe query server as a deterministic discrete-event
    simulation.

    Every submitted request ends in exactly one {!Outcome.response}:
    served, shed at admission (queue full, working set too large, or
    circuit breaker open), or deadline-exceeded (in the queue or
    mid-execution). Offered load may exceed capacity by any factor;
    queue length and reserved memory stay bounded by construction.

    The simulation is pure: the same config and request list replay to
    bit-identical responses and stats. Time is the sim clock, memory is
    a {!Gb_par.Budget}, per-engine health is a {!Breaker}. When tracing
    is enabled the run emits [serve]-category sim-track spans (queue
    wait on track 0, execution on track [lane+1]), [serve.admit] /
    [serve.expire] / [serve.cancel] instants carrying the request's
    trace id and admission decision, and [serve.*] counters. When
    telemetry is enabled it additionally feeds the labeled
    [genbase_serve_*] families: request/response counters and latency
    histograms keyed by [engine]/[query] (+ [disposition]), queue-wait
    histograms, and queue-depth / reserved-memory gauges. *)

type policy =
  | Fifo  (** strict arrival order *)
  | Sjf
      (** shortest job first by {!Estimate} service time; equal
          estimates fall back to arrival order, so SJF never reorders
          identical work *)

val policies : (string * policy) list
(** Name/value pairs, the single source for CLI parsing and usage. *)

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result

type config = {
  lanes : int;  (** concurrent executions, the sim analogue of pool jobs *)
  queue_depth : int;  (** admission queue bound; 0 sheds every arrival *)
  policy : policy;
  mem_bytes : int;  (** working-set budget across all running queries *)
  breaker : Breaker.config;
}

val default_config : config
(** 4 lanes, depth-16 FIFO queue, 4 GiB budget, default breaker. *)

type request = {
  id : int;  (** unique; responses are returned sorted by it *)
  key : int;  (** client identity, the jitter seed for retries *)
  trace : int;
      (** trace id linking every attempt and span of one logical
          request; retries carry the first attempt's trace forward *)
  attempt : int;  (** 1-based submission attempt, echoed in the response *)
  engine : string;  (** breaker scope *)
  query : Genbase.Query.t;
  arrival_s : float;  (** submission instant on the sim clock *)
  deadline_s : float;  (** budget relative to arrival *)
  service_s : float;  (** true execution cost (e.g. {!Estimate.service_s}) *)
  bytes : int;  (** working set charged to the memory budget *)
  fail : bool;  (** injected fault: execution completes but errors *)
}

type stats = {
  max_queue_len : int;  (** never exceeds [config.queue_depth] *)
  max_mem_used : int;  (** never exceeds [config.mem_bytes] *)
  breaker_trips : (string * int) list;  (** per engine, sorted by name *)
}

val run :
  ?config:config ->
  ?on_response:(Outcome.response -> request list) ->
  request list ->
  Outcome.response list * stats
(** Simulate to quiescence. [on_response] is the feedback channel for
    closed-loop clients and retries: each returned request is scheduled
    as a fresh arrival no earlier than the response's finish instant.
    Responses come back sorted by [id].

    Deadline semantics mirror the live path's cooperative checkpoints:
    a query finishing strictly after its deadline is cancelled at the
    deadline instant ([Deadline_exceeded `Running]); one finishing
    exactly on it is served — {!Gb_util.Deadline.expired} is a strict
    comparison. Raises [Invalid_argument] on a non-positive lane count
    or negative queue depth. *)

val latency_family : Gb_obs.Telemetry.hist_family
(** The [genbase_serve_latency_seconds] family — exposed so callers can
    compare its interpolated quantiles against exact post-hoc
    percentiles. *)
