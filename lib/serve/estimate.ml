(* Explain-style cost model: the same selectivity estimates the
   relational planner prints for the DM phases (func < 250 keeps 25% of
   genes, one disease of 21, Q3's age/gender cut, Q5's 5% sample),
   composed with per-query kernel flop counts. Everything is a pure
   function of the dimensions, so a shortest-job-first scheduler ranks
   identically across runs and the simulated server's service times
   replay bit-for-bit. *)

(* Fractions of the generator's attribute distributions selected by the
   default parameters (Generate: func ~ U[0,1000), 21 diseases,
   age ~ 18+U[0,78), gender ~ U{0,1}). *)
let sel_func = float_of_int Gb_datagen.Generate.func_threshold /. 1000.
let sel_disease = 1. /. 21.
let sel_q3 = 0.5 *. (float_of_int (40 - 18) /. 78.)
let sel_sample = 0.05

(* Q6 reads both interval tables whole (no attribute predicate); the
   planner's output estimate (~3/2 pairs per input interval) shows up in
   the flop and byte models below instead. *)
let selectivity = function
  | Genbase.Query.Q1_regression | Genbase.Query.Q4_svd -> sel_func
  | Genbase.Query.Q2_covariance -> sel_disease
  | Genbase.Query.Q3_biclustering -> sel_q3
  | Genbase.Query.Q5_statistics -> sel_sample
  | Genbase.Query.Q6_overlap -> 1.0

(* Modelled throughputs: dense kernel flops and DM cell scans per
   second. Absolute calibration matters less than the ratios between
   queries and sizes — the scheduler and the simulation only compare
   estimates against each other. *)
let flop_rate = 2e9
let cell_rate = 5e8

let analytics_flops ~genes ~patients q =
  let p = float_of_int patients and g = float_of_int genes in
  match q with
  | Genbase.Query.Q1_regression ->
    (* QR least squares on the func-selected columns. *)
    let gs = g *. sel_func in
    2. *. p *. gs *. gs
  | Genbase.Query.Q2_covariance ->
    (* A^T A over the disease cohort plus the pair scan. *)
    let ps = Float.max 2. (p *. sel_disease) in
    (2. *. ps *. g *. g) +. (g *. g)
  | Genbase.Query.Q3_biclustering ->
    (* Iterative residue sweeps over the age/gender cohort. *)
    let ps = Float.max 2. (p *. sel_q3) in
    60. *. 8. *. ps *. g
  | Genbase.Query.Q4_svd ->
    (* Lanczos sweeps: ~3k matvecs plus reorthogonalization. *)
    let gs = g *. sel_func in
    let iters = 150. in
    iters *. ((2. *. p *. gs) +. (iters *. gs))
  | Genbase.Query.Q5_statistics ->
    (* Sampled mean scores plus the per-term rank statistics. *)
    let ps = Float.max 1. (p *. sel_sample) in
    (ps *. g) +. (30. *. g)
  | Genbase.Query.Q6_overlap ->
    (* Sort-merge interval sweep: the generator emits 4 variants per
       gene, the planner expects ~3/2 output pairs per left interval. *)
    let nv = 4. *. g and ng = g in
    let n = Float.max 2. (nv +. ng) in
    (n *. Float.log2 n) +. (4. *. 1.5 *. nv)

let dm_cells ~genes ~patients q =
  match q with
  | Genbase.Query.Q6_overlap ->
    (* Only the two narrow interval tables are scanned: (4g + g) rows of
       3 integer columns each — the microarray never moves. *)
    15. *. float_of_int genes
  | _ -> float_of_int patients *. float_of_int genes

(* Engines differ by a coarse speed class (the shape Figure 1 sweeps);
   unknown engines serve at the reference rate. *)
let engine_factor = function
  | "Vanilla R" -> 1.0
  | "Postgres + R" -> 1.6
  | "Postgres + MADlib" -> 1.3
  | "Column store + R" -> 0.9
  | "Column store + UDFs" -> 0.7
  | "SciDB" -> 0.8
  | "SciDB + Xeon Phi" -> 0.5
  | "Hadoop" -> 2.5
  | _ -> 1.0

let service_s ?(engine = "") ~genes ~patients q =
  let flops = analytics_flops ~genes ~patients q in
  let cells = dm_cells ~genes ~patients q in
  engine_factor engine *. ((flops /. flop_rate) +. (cells /. cell_rate))

(* Peak working set: the selected sub-matrix is copied/centered/
   factorized a handful of times, plus a fixed overhead for derived
   stores — the same shape as the harness's per-cell reservation. *)
let bytes ~genes ~patients q =
  let sel = selectivity q in
  let cells =
    match q with
    | Genbase.Query.Q1_regression | Genbase.Query.Q4_svd ->
      float_of_int patients *. (float_of_int genes *. sel)
    | Genbase.Query.Q2_covariance ->
      (float_of_int patients *. sel *. float_of_int genes)
      +. (float_of_int genes *. float_of_int genes)
    | Genbase.Query.Q3_biclustering | Genbase.Query.Q5_statistics ->
      float_of_int patients *. sel *. float_of_int genes
    | Genbase.Query.Q6_overlap ->
      (* Interval arrays (4g variants + g genes) plus ~6g output pairs;
         the patient-by-gene matrix is never touched. *)
      11. *. float_of_int genes
  in
  (int_of_float (8. *. 4. *. cells)) + (16 * 1024 * 1024)
