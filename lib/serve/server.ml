(* The overload-safe query server, as a deterministic discrete-event
   simulation on the sim clock.

   Pipeline for every request: arrival-time admission (working-set cap,
   bounded queue, per-engine circuit breaker) -> queue (FIFO or
   shortest-job-first on the Estimate cost model) -> memory reservation
   against a Par.Budget -> execution on one of [lanes] lanes, truncated
   at the request's deadline (the sim analogue of the kernels'
   cooperative checkpoints). Every path ends in exactly one
   Outcome.response, so offered load can exceed capacity by any factor
   while queue depth and reserved memory stay bounded.

   Determinism: events are ordered by (time, insertion seq); service
   times, breaker transitions and retry-driven re-arrivals are all pure
   functions of the inputs, so a run replays bit-for-bit. *)

module Sim = Gb_util.Clock.Sim

type policy = Fifo | Sjf

let policies = [ ("fifo", Fifo); ("sjf", Sjf) ]

let policy_to_string = function Fifo -> "fifo" | Sjf -> "sjf"

let policy_of_string s =
  match List.assoc_opt (String.lowercase_ascii (String.trim s)) policies with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown queue policy %S (expected %s)" s
         (String.concat " or " (List.map fst policies)))

type config = {
  lanes : int;
  queue_depth : int;
  policy : policy;
  mem_bytes : int;
  breaker : Breaker.config;
}

let default_config =
  {
    lanes = 4;
    queue_depth = 16;
    policy = Fifo;
    mem_bytes = 4096 * 1024 * 1024;
    breaker = Breaker.default_config;
  }

type request = {
  id : int;
  key : int;
  trace : int;
  attempt : int;
  engine : string;
  query : Genbase.Query.t;
  arrival_s : float;
  deadline_s : float;
  service_s : float;
  bytes : int;
  fail : bool;
}

type stats = {
  max_queue_len : int;
  max_mem_used : int;
  breaker_trips : (string * int) list;
}

(* --- internal state --- *)

type queued = {
  req : request;
  seq : int;
  deadline_at : float;
  mutable mem_blocked_at : float option;
      (** first dispatch attempt that failed memory reservation — the
          start of the queue wait's memory-budget tail *)
}

type running = {
  r_req : request;
  started_s : float;
  reserved : int;
  cancelled : bool;  (** finish event is the deadline, not completion *)
}

type ev = Arrive of request | Finish of int  (** lane *)

type event = { at : float; eseq : int; ev : ev }

let c_requests = Gb_obs.Metric.counter "serve.requests"
let c_served = Gb_obs.Metric.counter "serve.served"
let c_failed = Gb_obs.Metric.counter "serve.failed"
let c_shed = Gb_obs.Metric.counter "serve.shed"
let c_deadline = Gb_obs.Metric.counter "serve.deadline_exceeded"
let h_queue_wait = Gb_obs.Metric.histogram ~unit_:"s" "serve.queue_wait"

(* Labeled live families (telemetry flag, independent of the span flag).
   Latency is observed for every [Served _] response — the same set
   Loadgen's exact post-hoc percentiles cover, which is what makes the
   interpolated p99 comparable to the summary's p99 within one bucket
   width. *)
module Tele = Gb_obs.Telemetry

let f_requests =
  Tele.counter_family ~help:"Requests arriving at the server"
    "genbase_serve_requests_total"

let f_responses =
  Tele.counter_family ~help:"Responses by final disposition"
    "genbase_serve_responses_total"

let f_latency =
  Tele.hist_family ~help:"End-to-end latency of served requests (seconds)"
    "genbase_serve_latency_seconds"

let f_queue_wait =
  Tele.hist_family ~help:"Queue wait before execution (seconds)"
    "genbase_serve_queue_wait_seconds"

let g_queue_depth =
  Tele.gauge_family ~help:"Admission-queue depth" "genbase_serve_queue_depth"

let g_mem =
  Tele.gauge_family ~help:"Reserved working-set bytes"
    "genbase_serve_mem_reserved_bytes"

let latency_family = f_latency

let run ?(config = default_config) ?(on_response = fun _ -> []) requests =
  if config.lanes < 1 then invalid_arg "Server.run: lanes";
  if config.queue_depth < 0 then invalid_arg "Server.run: queue_depth";
  let clock = Sim.create () in
  let now () = Sim.now clock in
  let budget = Gb_par.Budget.create ~bytes:(max 1 config.mem_bytes) in
  let breakers : (string, Breaker.t) Hashtbl.t = Hashtbl.create 8 in
  let breaker engine =
    match Hashtbl.find_opt breakers engine with
    | Some b -> b
    | None ->
      let b = Breaker.create ~config:config.breaker ~now engine in
      Hashtbl.add breakers engine b;
      b
  in
  let events = Gb_util.Heap.create ~cmp:(fun a b ->
      match Float.compare a.at b.at with 0 -> compare a.eseq b.eseq | c -> c)
  in
  let eseq = ref 0 in
  let push_event at ev =
    incr eseq;
    Gb_util.Heap.push events { at; eseq = !eseq; ev }
  in
  let queue : queued list ref = ref [] in
  let qseq = ref 0 in
  let lanes : running option array = Array.make config.lanes None in
  let responses = ref [] in
  let max_queue_len = ref 0 and max_mem_used = ref 0 in
  let respond (resp : Outcome.response) =
    responses := resp :: !responses;
    (* Flight-recorder taps: per-response tail-sampling decision, shed
       spike detection. One atomic load each while not recording. *)
    (match resp.Outcome.disposition with
    | Outcome.Shed _ -> Gb_obs.Recorder.observe_shed ~now:resp.Outcome.finished_s
    | _ -> ());
    Gb_obs.Recorder.observe_response ~trace:resp.Outcome.trace
      ~latency_s:(Outcome.latency_s resp)
      ~ok:
        (match resp.Outcome.disposition with
        | Outcome.Served (Outcome.Ok_ | Outcome.Degraded_) -> true
        | _ -> false)
      ~now:resp.Outcome.finished_s;
    (match resp.Outcome.disposition with
    | Outcome.Served (Outcome.Ok_ | Outcome.Degraded_) ->
      Gb_obs.Metric.add c_served 1
    | Outcome.Served Outcome.Failed_ -> Gb_obs.Metric.add c_failed 1
    | Outcome.Shed _ -> Gb_obs.Metric.add c_shed 1
    | Outcome.Deadline_exceeded _ -> Gb_obs.Metric.add c_deadline 1);
    if Tele.enabled () then begin
      let labels =
        [
          ("engine", resp.Outcome.engine);
          ("query", Genbase.Query.name resp.Outcome.query);
        ]
      in
      Tele.incr f_responses (("disposition", Outcome.label resp) :: labels);
      match resp.Outcome.disposition with
      | Outcome.Served _ ->
        Tele.observe f_latency labels (Outcome.latency_s resp)
      | Outcome.Shed _ | Outcome.Deadline_exceeded _ -> ()
    end;
    List.iter
      (fun (r : request) ->
        push_event (Float.max r.arrival_s resp.Outcome.finished_s) (Arrive r))
      (on_response resp)
  in
  let base_response ?(retry_after = None) ?(finished = now ()) ?(wait = 0.)
      ?(exec = 0.) (r : request) disposition =
    {
      Outcome.id = r.id;
      key = r.key;
      trace = r.trace;
      attempt = r.attempt;
      engine = r.engine;
      query = r.query;
      submitted_s = r.arrival_s;
      finished_s = finished;
      queue_wait_s = wait;
      exec_s = exec;
      disposition;
      retry_after_s = retry_after;
      engine_outcome = None;
    }
  in
  (* Hint accompanying a queue-full shed: roughly one drain of the
     current backlog across the lanes. *)
  let drain_estimate () =
    let backlog =
      List.fold_left (fun acc q -> acc +. q.req.service_s) 0. !queue
    in
    Float.max 0.05 (backlog /. float_of_int config.lanes)
  in
  let free_lane () =
    let rec go i =
      if i >= Array.length lanes then None
      else if lanes.(i) = None then Some i
      else go (i + 1)
    in
    go 0
  in
  (* Expire queued entries whose deadline passed before they reached a
     lane. Judged lazily at dispatch points; the response is stamped at
     the deadline instant the entry actually died. *)
  let sweep_expired () =
    let t = now () in
    let expired, live =
      List.partition (fun q -> q.deadline_at < t) !queue
    in
    queue := live;
    List.iter
      (fun q ->
        Breaker.abandon (breaker q.req.engine);
        if Gb_obs.Obs.active () then
          Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Sim ~ts:q.deadline_at
            ~attrs:
              [
                ("trace", Gb_obs.Obs.Int q.req.trace);
                ("id", Gb_obs.Obs.Int q.req.id);
                ("engine", Gb_obs.Obs.Str q.req.engine);
              ]
            ~name:"serve.expire" ();
        respond
          (base_response q.req
             ~finished:q.deadline_at
             ~wait:(q.deadline_at -. q.req.arrival_s)
             (Outcome.Deadline_exceeded `Queued)))
      expired;
    if Tele.enabled () then
      Tele.set g_queue_depth [] (float_of_int (List.length !queue))
  in
  (* Queue discipline: FIFO takes the oldest entry; SJF the cheapest
     cost estimate (ties to the oldest, so equal-cost work keeps arrival
     order and no request starves behind an equal peer). *)
  let pick_next () =
    match !queue with
    | [] -> None
    | first :: rest ->
      let better a b =
        match config.policy with
        | Fifo -> if b.seq < a.seq then b else a
        | Sjf ->
          let c = Float.compare b.req.service_s a.req.service_s in
          if c < 0 || (c = 0 && b.seq < a.seq) then b else a
      in
      Some (List.fold_left better first rest)
  in
  let dispatch () =
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      sweep_expired ();
      match free_lane () with
      | None -> ()
      | Some lane -> (
        match pick_next () with
        | None -> ()
        | Some q -> (
          (* Memory admission: the pipeline's Par.Budget stage. A
             reservation that does not fit right now keeps its place in
             the queue — execution, not queueing, is what the budget
             bounds — and the next Finish retries the dispatch. *)
          match Gb_par.Budget.try_reserve budget ~bytes:q.req.bytes with
          | None -> if q.mem_blocked_at = None then q.mem_blocked_at <- Some (now ())
          | Some reserved ->
            queue := List.filter (fun q' -> q'.seq <> q.seq) !queue;
            max_mem_used := max !max_mem_used (Gb_par.Budget.used budget);
            if Tele.enabled () then begin
              Tele.set g_queue_depth [] (float_of_int (List.length !queue));
              Tele.set g_mem [] (float_of_int (Gb_par.Budget.used budget));
              Tele.observe f_queue_wait
                [
                  ("engine", q.req.engine);
                  ("query", Genbase.Query.name q.req.query);
                ]
                (now () -. q.req.arrival_s)
            end;
            let t = now () in
            let completes_at = t +. q.req.service_s in
            (* Cooperative cancellation, sim form: finishing strictly
               after the deadline means the checkpoint fires at the
               deadline instant; finishing exactly on it is a served
               query (Deadline.expired is a strict comparison). *)
            let cancelled = completes_at > q.deadline_at in
            let finish_at = if cancelled then q.deadline_at else completes_at in
            lanes.(lane) <-
              Some { r_req = q.req; started_s = t; reserved; cancelled };
            if Gb_obs.Obs.active () then begin
              Gb_obs.Metric.observe h_queue_wait (t -. q.req.arrival_s);
              (* The tail of the wait spent blocked on the memory budget
                 rides along so the critical-path analyzer can split
                 queue wait from memory wait. *)
              let mem_attr =
                match q.mem_blocked_at with
                | Some b when t > b -> [ ("mem_wait_s", Gb_obs.Obs.Float (t -. b)) ]
                | _ -> []
              in
              Gb_obs.Obs.Span.emit ~cat:"serve" ~name:"queue"
                ~attrs:
                  ([
                     ("trace", Gb_obs.Obs.Int q.req.trace);
                     ("id", Gb_obs.Obs.Int q.req.id);
                     ("attempt", Gb_obs.Obs.Int q.req.attempt);
                     ("engine", Gb_obs.Obs.Str q.req.engine);
                   ]
                  @ mem_attr)
                ~tid:0 ~t0:q.req.arrival_s ~t1:t ()
            end;
            push_event finish_at (Finish lane);
            continue_ := true))
    done
  in
  let arrive (r : request) =
    Gb_obs.Metric.add c_requests 1;
    if Tele.enabled () then
      Tele.incr f_requests
        [ ("engine", r.engine); ("query", Genbase.Query.name r.query) ];
    (* One instant per arrival carrying the admission decision, linked
       to the rest of the request's spans by the trace attribute. *)
    let admit_instant decision =
      if Gb_obs.Obs.active () then
        Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Sim ~ts:(now ())
          ~attrs:
            [
              ("trace", Gb_obs.Obs.Int r.trace);
              ("id", Gb_obs.Obs.Int r.id);
              ("attempt", Gb_obs.Obs.Int r.attempt);
              ("engine", Gb_obs.Obs.Str r.engine);
              ("decision", Gb_obs.Obs.Str decision);
            ]
          ~name:"serve.admit" ()
    in
    let t = now () in
    if r.bytes > config.mem_bytes then begin
      (* Could never run next to anything; a batch harness runs such a
         query alone, a server refuses to stall the fleet for it. *)
      admit_instant "shed:memory";
      respond (base_response r (Outcome.Shed Outcome.Memory))
    end
    else if List.length !queue >= config.queue_depth then begin
      admit_instant "shed:queue_full";
      respond
        (base_response r
           ~retry_after:(Some (drain_estimate ()))
           (Outcome.Shed Outcome.Queue_full))
    end
    else
      match Breaker.admit (breaker r.engine) with
      | `Fast_fail retry_after ->
        admit_instant "shed:breaker_open";
        respond
          (base_response r ~retry_after:(Some retry_after)
             (Outcome.Shed Outcome.Breaker_open))
      | `Admit ->
        admit_instant "admitted";
        incr qseq;
        queue :=
          {
            req = r;
            seq = !qseq;
            deadline_at = t +. r.deadline_s;
            mem_blocked_at = None;
          }
          :: !queue;
        max_queue_len := max !max_queue_len (List.length !queue);
        if Tele.enabled () then
          Tele.set g_queue_depth [] (float_of_int (List.length !queue));
        dispatch ()
  in
  let finish lane =
    match lanes.(lane) with
    | None -> assert false
    | Some run ->
      lanes.(lane) <- None;
      Gb_par.Budget.release budget ~bytes:run.reserved;
      let t = now () in
      let r = run.r_req in
      let ok = (not run.cancelled) && not r.fail in
      Breaker.record (breaker r.engine) ~ok;
      if Tele.enabled () then
        Tele.set g_mem [] (float_of_int (Gb_par.Budget.used budget));
      if Gb_obs.Obs.active () then begin
        Gb_obs.Obs.Span.emit ~cat:"serve" ~name:"exec"
          ~attrs:
            [
              ("trace", Gb_obs.Obs.Int r.trace);
              ("id", Gb_obs.Obs.Int r.id);
              ("attempt", Gb_obs.Obs.Int r.attempt);
              ("engine", Gb_obs.Obs.Str r.engine);
              ("ok", Gb_obs.Obs.Bool ok);
            ]
          ~tid:(lane + 1) ~t0:run.started_s ~t1:t ();
        if run.cancelled then
          Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Sim ~ts:t
            ~attrs:
              [
                ("trace", Gb_obs.Obs.Int r.trace);
                ("id", Gb_obs.Obs.Int r.id);
                ("engine", Gb_obs.Obs.Str r.engine);
              ]
            ~name:"serve.cancel" ()
      end;
      let disposition =
        if run.cancelled then Outcome.Deadline_exceeded `Running
        else if r.fail then Outcome.Served Outcome.Failed_
        else Outcome.Served Outcome.Ok_
      in
      respond
        (base_response r ~finished:t
           ~wait:(run.started_s -. r.arrival_s)
           ~exec:(t -. run.started_s) disposition);
      dispatch ()
  in
  List.iter (fun r -> push_event r.arrival_s (Arrive r)) requests;
  let rec loop () =
    match Gb_util.Heap.pop events with
    | None -> ()
    | Some { at; ev; _ } ->
      Sim.advance clock (Float.max 0. (at -. Sim.now clock));
      (match ev with Arrive r -> arrive r | Finish lane -> finish lane);
      loop ()
  in
  loop ();
  (* Anything still queued when the arrival stream dries up gets
     dispatched by the Finish cascade above; a non-empty queue here
     would mean a lost wakeup. *)
  assert (!queue = []);
  let stats =
    {
      max_queue_len = !max_queue_len;
      max_mem_used = !max_mem_used;
      breaker_trips =
        Hashtbl.fold (fun name b acc -> (name, Breaker.trips b) :: acc)
          breakers []
        |> List.sort compare;
    }
  in
  (List.sort (fun a b -> compare a.Outcome.id b.Outcome.id) !responses, stats)
