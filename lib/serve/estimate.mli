(** Explain-style query cost estimates: planner selectivities composed
    with per-query kernel flop models, as pure functions of the dataset
    dimensions. The shortest-job-first scheduler ranks queued queries by
    {!service_s}, the admission controller sizes reservations by
    {!bytes}, and the simulated server uses {!service_s} as the
    deterministic execution time. *)

val selectivity : Genbase.Query.t -> float
(** Estimated fraction of the expression matrix the query's DM phase
    selects under the default parameters. *)

val analytics_flops : genes:int -> patients:int -> Genbase.Query.t -> float

val engine_factor : string -> float
(** Coarse relative speed of an engine (reference = 1.0; unknown names
    serve at the reference rate). *)

val service_s : ?engine:string -> genes:int -> patients:int -> Genbase.Query.t -> float
(** Estimated end-to-end service seconds (DM + analytics). *)

val bytes : genes:int -> patients:int -> Genbase.Query.t -> int
(** Estimated peak working set for memory admission. *)
