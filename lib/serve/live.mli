(** Wall-clock serving: the simulated server's admission pipeline
    (bounded FIFO/SJF queue, per-engine circuit breakers, memory budget,
    deadlines) around real engine executions on a pool of worker
    domains.

    Deadlines are enforced cooperatively: the remaining budget is passed
    to {!Genbase.Engine.run}, which arms {!Gb_util.Deadline.Ambient} so
    kernel checkpoints abort overrunning queries as [Timed_out] →
    [Deadline_exceeded `Running]. Memory admission shares
    {!Genbase.Harness.memory_budget} with batch grids by default. *)

type config = {
  lanes : int;  (** worker domains executing queries *)
  queue_depth : int;
  policy : Server.policy;
  breaker : Breaker.config;
  budget : Gb_par.Budget.t;
}

val default_config : unit -> config
(** 2 lanes, depth-8 FIFO queue, the harness memory budget. *)

type t

val create : ?config:config -> unit -> t
(** Spawns the worker domains. Raises [Invalid_argument] on a
    non-positive lane count or negative queue depth. *)

type handle
(** A pending submission; redeem with {!await} (blocking, any thread). *)

val submit :
  t ->
  engine:Genbase.Engine.t ->
  ds:Genbase.Dataset.t ->
  ?params:Genbase.Query.params ->
  ?trace:int ->
  deadline_s:float ->
  Genbase.Query.t ->
  handle
(** Admission happens synchronously: a full queue, an open breaker or an
    over-capacity working set resolve the handle immediately with the
    corresponding [Shed] (retry-after hints included); otherwise the
    query queues for a lane. Raises [Invalid_argument] after
    {!shutdown}.

    [?trace] links this submission to an existing trace (a client
    resubmitting a shed request passes the first attempt's trace id);
    defaults to a fresh id. With tracing enabled every submission emits
    a wall-track [serve.admit] instant carrying the decision, and
    executions attach the trace id to their [serve.exec] span; with
    telemetry enabled the labeled [genbase_serve_*] families are fed the
    same way as the simulated server's. *)

val await : handle -> Outcome.response
(** Block until the submission resolves. [engine_outcome] carries the
    raw engine verdict for served and timed-out executions. *)

val run :
  t ->
  engine:Genbase.Engine.t ->
  ds:Genbase.Dataset.t ->
  ?params:Genbase.Query.params ->
  deadline_s:float ->
  Genbase.Query.t ->
  Outcome.response
(** [await (submit ...)]. *)

val shutdown : t -> unit
(** Drain the queue (queued work still executes), stop accepting new
    submissions, and join the workers. *)
