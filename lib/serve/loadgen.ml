(* Deterministic load generator: synthetic client populations driving
   the simulated server through named overload scenarios.

   Open-loop traffic is a (possibly time-modulated) Poisson process —
   arrivals do not slow down when the server degrades, which is exactly
   what makes overload dangerous. Closed-loop clients submit, wait for
   the response, think, and submit again, so their offered load is
   self-limiting. Both kinds retry shed responses through the
   {!Client} backoff schedule, re-entering the server as fresh arrival
   events. Everything draws from SplitMix64 streams derived from one
   seed, so a scenario replays bit-for-bit: same seed, same sheds, same
   percentiles. *)

module Spec = Gb_datagen.Spec
module Prng = Gb_util.Prng
module Query = Genbase.Query
module Descriptive = Gb_stats.Descriptive

type shape =
  | Steady of float
  | Bursty of { on_load : float; off_load : float; period : float; duty : float }

type scenario = {
  sc_name : string;
  descr : string;
  shape : shape;
  closed_loop : int;
  fail_p : float;
}

(* Single source of truth for scenario names: the CLI derives both its
   usage text and its argument validation from this list. *)
let scenarios =
  [
    {
      sc_name = "steady";
      descr = "open-loop Poisson at 0.6x capacity, fault-free";
      shape = Steady 0.6;
      closed_loop = 0;
      fail_p = 0.;
    };
    {
      sc_name = "closed";
      descr = "32 closed-loop clients with think time, fault-free";
      shape = Steady 0.;
      closed_loop = 32;
      fail_p = 0.;
    };
    {
      sc_name = "burst";
      descr = "on/off bursts: 4x capacity for 30% of each period, 0.25x between";
      shape = Bursty { on_load = 4.; off_load = 0.25; period = 20.; duty = 0.3 };
      closed_loop = 0;
      fail_p = 0.;
    };
    {
      sc_name = "overload";
      descr = "sustained open-loop overload at 4x capacity";
      shape = Steady 4.;
      closed_loop = 0;
      fail_p = 0.;
    };
    {
      sc_name = "chaos";
      descr = "4x bursts composed with a fault plan failing ~35% of executions";
      shape = Bursty { on_load = 4.; off_load = 0.5; period = 16.; duty = 0.4 };
      closed_loop = 0;
      fail_p = 0.35;
    };
  ]

let find_scenario name =
  match
    List.find_opt
      (fun s -> s.sc_name = String.lowercase_ascii (String.trim name))
      scenarios
  with
  | Some s -> Ok s
  | None ->
    Error
      (Printf.sprintf "unknown scenario %S (expected one of: %s)" name
         (String.concat ", " (List.map (fun s -> s.sc_name) scenarios)))

type config = {
  scenario : scenario;
  seed : int64;
  duration : float;  (** arrival horizon, in units of the mean service time *)
  size : Spec.size;
  engines : string list;
  lanes : int;
  queue_depth : int;
  policy : Server.policy;
  mem_bytes : int option;  (** [None]: lanes x the largest working set *)
  deadline_factor : float;  (** deadline = factor x mean service time *)
  retry_budget_factor : float;  (** client budget = factor x deadline *)
  client : Client.policy;
  breaker : Breaker.config;
}

let default_engines = [ "Column store + UDFs"; "SciDB"; "Vanilla R" ]

let default_config scenario =
  {
    scenario;
    seed = 42L;
    duration = 60.;
    size = Spec.Small;
    engines = default_engines;
    lanes = 4;
    queue_depth = 16;
    policy = Server.Fifo;
    mem_bytes = None;
    deadline_factor = 8.;
    retry_budget_factor = 3.;
    client = Client.default_policy;
    breaker = Breaker.default_config;
  }

(* The workload mix: every (query, engine) pair at the configured
   dataset size, with its cost-model service time and working set. *)
type job = { j_query : Query.t; j_engine : string; j_service : float; j_bytes : int }

let jobs_of cfg =
  let genes, patients = Spec.paper_dims cfg.size in
  List.concat_map
    (fun q ->
      List.map
        (fun engine ->
          {
            j_query = q;
            j_engine = engine;
            j_service = Estimate.service_s ~engine ~genes ~patients q;
            j_bytes = Estimate.bytes ~genes ~patients q;
          })
        cfg.engines)
    Query.all

let mean_service jobs =
  List.fold_left (fun a j -> a +. j.j_service) 0. jobs
  /. float_of_int (List.length jobs)

let server_config cfg jobs =
  let max_bytes = List.fold_left (fun a j -> max a j.j_bytes) 1 jobs in
  {
    Server.lanes = cfg.lanes;
    queue_depth = cfg.queue_depth;
    policy = cfg.policy;
    mem_bytes = Option.value cfg.mem_bytes ~default:(cfg.lanes * max_bytes);
    breaker = cfg.breaker;
  }

type summary = {
  scenario : string;
  size : string;
  offered : int;  (** logical queries (first attempts) *)
  attempts : int;  (** submissions including retries *)
  served_ok : int;
  served_failed : int;
  shed_queue : int;
  shed_mem : int;
  shed_breaker : int;
  expired_queued : int;
  expired_running : int;
  retries : int;
  horizon_s : float;  (** last finish instant on the sim clock *)
  goodput_qps : float;  (** served-ok completions per sim second *)
  p50_s : float;  (** latency percentiles over served responses *)
  p99_s : float;
  p999_s : float;
  max_queue_len : int;
  max_mem_used : int;
  breaker_trips : int;
}

let quantiles (xs : float list) =
  match xs with
  | [] -> (0., 0., 0.)
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    ( Descriptive.quantile a 0.5,
      Descriptive.quantile a 0.99,
      Descriptive.quantile a 0.999 )

let summarize (cfg : config) ~retries (responses : Outcome.response list)
    (stats : Server.stats) =
  let count p = List.length (List.filter p responses) in
  let is d (r : Outcome.response) = r.Outcome.disposition = d in
  let served =
    List.filter
      (fun (r : Outcome.response) ->
        match r.Outcome.disposition with Outcome.Served _ -> true | _ -> false)
      responses
  in
  let p50, p99, p999 = quantiles (List.map Outcome.latency_s served) in
  let horizon =
    List.fold_left
      (fun a (r : Outcome.response) -> Float.max a r.Outcome.finished_s)
      0. responses
  in
  let served_ok = count (fun r -> Outcome.goodput r) in
  ({
    scenario = cfg.scenario.sc_name;
    size = Spec.label cfg.size;
    offered = count (fun (r : Outcome.response) -> r.Outcome.attempt = 1);
    attempts = List.length responses;
    served_ok;
    served_failed = count (is (Outcome.Served Outcome.Failed_));
    shed_queue = count (is (Outcome.Shed Outcome.Queue_full));
    shed_mem = count (is (Outcome.Shed Outcome.Memory));
    shed_breaker = count (is (Outcome.Shed Outcome.Breaker_open));
    expired_queued = count (is (Outcome.Deadline_exceeded `Queued));
    expired_running = count (is (Outcome.Deadline_exceeded `Running));
    retries;
    horizon_s = horizon;
    goodput_qps = (if horizon > 0. then float_of_int served_ok /. horizon else 0.);
    p50_s = p50;
    p99_s = p99;
    p999_s = p999;
    max_queue_len = stats.Server.max_queue_len;
    max_mem_used = stats.Server.max_mem_used;
    breaker_trips =
      List.fold_left (fun a (_, n) -> a + n) 0 stats.Server.breaker_trips;
  }
    : summary)

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "@[<v>scenario %s (%s): offered %d (attempts %d, retries %d)@,\
     served ok %d, failed %d | shed queue %d mem %d breaker %d | expired \
     queued %d running %d@,\
     goodput %.3f q/s, latency p50 %.3fs p99 %.3fs p999 %.3fs@,\
     max queue %d, max mem %d B, breaker trips %d@]"
    s.scenario s.size s.offered s.attempts s.retries s.served_ok
    s.served_failed s.shed_queue s.shed_mem s.shed_breaker s.expired_queued
    s.expired_running s.goodput_qps s.p50_s s.p99_s s.p999_s s.max_queue_len
    s.max_mem_used s.breaker_trips

let run_with ?(observe = fun (_ : Outcome.response) -> ()) cfg =
  let jobs = jobs_of cfg in
  let mean = mean_service jobs in
  let sconfig = server_config cfg jobs in
  let capacity_qps = float_of_int cfg.lanes /. mean in
  let duration_s = cfg.duration *. mean in
  let deadline_s = cfg.deadline_factor *. mean in
  let retry_budget_s = cfg.retry_budget_factor *. deadline_s in
  let arr_prng = Prng.create cfg.seed in
  let mix_prng = Prng.split arr_prng in
  let job_table = Array.of_list jobs in
  (* Fault composition: executions fail according to a PR-1 fault plan
     scattered over one job slot per request id. *)
  let plan =
    if cfg.scenario.fail_p <= 0. then Gb_fault.Fault.empty
    else
      Gb_fault.Fault.scatter ~seed:cfg.seed ~nodes:1 ~supersteps:1
        ~jobs:
          (max 64
             (int_of_float (duration_s *. capacity_qps *. 8.)))
        ~task_fail_p:cfg.scenario.fail_p ()
  in
  let next_id = ref 0 in
  let fresh_id () = incr next_id; !next_id in
  let make ~key ~attempt ~arrival =
    let id = fresh_id () in
    let j = job_table.(Prng.int mix_prng (Array.length job_table)) in
    {
      Server.id;
      key;
      (* A first attempt opens its own trace; retries (remake) carry the
         original trace forward, which is what links every span of one
         logical request in the Chrome export. *)
      trace = id;
      attempt;
      engine = j.j_engine;
      query = j.j_query;
      arrival_s = arrival;
      deadline_s;
      service_s = j.j_service;
      bytes = j.j_bytes;
      fail = Gb_fault.Fault.task_failures plan ~job:id > 0;
    }
  in
  (* Retries resubmit the same logical job, so they reuse the original
     request's cost rather than re-rolling the mix. *)
  let remake (r : Outcome.response) ~arrival =
    let id = fresh_id () in
    {
      Server.id;
      key = r.Outcome.key;
      trace = r.Outcome.trace;
      attempt = r.Outcome.attempt + 1;
      engine = r.Outcome.engine;
      query = r.Outcome.query;
      arrival_s = arrival;
      deadline_s;
      service_s =
        (let genes, patients = Spec.paper_dims cfg.size in
         Estimate.service_s ~engine:r.Outcome.engine ~genes ~patients
           r.Outcome.query);
      bytes =
        (let genes, patients = Spec.paper_dims cfg.size in
         Estimate.bytes ~genes ~patients r.Outcome.query);
      fail = Gb_fault.Fault.task_failures plan ~job:id > 0;
    }
  in
  (* Open-loop arrivals: inhomogeneous Poisson via per-interval rates. *)
  let rate_at t =
    let load =
      match cfg.scenario.shape with
      | Steady l -> l
      | Bursty { on_load; off_load; period; duty } ->
        let period_s = period *. mean in
        let phase = Float.rem t period_s /. period_s in
        if phase < duty then on_load else off_load
    in
    load *. capacity_qps
  in
  let open_arrivals =
    let rec go t acc =
      let rate = rate_at t in
      if rate <= 0. then acc
      else
        let u = Prng.uniform arr_prng in
        let t = t +. (-.log (1. -. u) /. rate) in
        if t >= duration_s then acc
        else go t (make ~key:(1000 + List.length acc) ~attempt:1 ~arrival:t :: acc)
    in
    (match cfg.scenario.shape with
    | Steady l when l <= 0. -> []
    | _ -> List.rev (go 0. []))
  in
  (* Closed-loop clients: staggered first submissions; follow-ups are
     generated from the response feedback channel below. *)
  let client_prngs = Hashtbl.create 16 in
  let client_prng key =
    match Hashtbl.find_opt client_prngs key with
    | Some g -> g
    | None ->
      let g =
        Prng.create (Int64.add cfg.seed (Int64.of_int ((key * 2) + 1)))
      in
      Hashtbl.add client_prngs key g;
      g
  in
  let closed_arrivals =
    List.init cfg.scenario.closed_loop (fun key ->
        make ~key ~attempt:1
          ~arrival:(Prng.float (client_prng key) (0.5 *. mean)))
  in
  let first_submit : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let retries = ref 0 in
  let think_next (r : Outcome.response) =
    if r.Outcome.key < cfg.scenario.closed_loop then begin
      let g = client_prng r.Outcome.key in
      let think = -.log (1. -. Prng.uniform g) *. (2. *. mean) in
      let arrival = r.Outcome.finished_s +. think in
      if arrival < duration_s then
        [ make ~key:r.Outcome.key ~attempt:1 ~arrival ]
      else []
    end
    else []
  in
  let on_response (r : Outcome.response) =
    (* Responses arrive here in deterministic event order — the hook
       point where instrumented runs feed sliding windows and the SLO
       monitor without touching the server or the PRNG draws. *)
    observe r;
    let first =
      Option.value
        (Hashtbl.find_opt first_submit r.Outcome.id)
        ~default:r.Outcome.submitted_s
    in
    Hashtbl.remove first_submit r.Outcome.id;
    if Client.retryable r then
      match
        Client.next_delay cfg.client ~key:r.Outcome.key
          ~attempt:r.Outcome.attempt ~retry_after:r.Outcome.retry_after_s
          ~remaining_s:(retry_budget_s -. (r.Outcome.finished_s -. first))
      with
      | Some d ->
        incr retries;
        if Gb_obs.Obs.active () then
          Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Sim
            ~ts:r.Outcome.finished_s
            ~attrs:
              [
                ("trace", Gb_obs.Obs.Int r.Outcome.trace);
                ("attempt", Gb_obs.Obs.Int r.Outcome.attempt);
                ("delay_s", Gb_obs.Obs.Float d);
                ("reason", Gb_obs.Obs.Str (Outcome.label r));
              ]
            ~name:"client.retry" ();
        let req = remake r ~arrival:(r.Outcome.finished_s +. d) in
        Hashtbl.replace first_submit req.Server.id first;
        [ req ]
      | None -> think_next r
    else think_next r
  in
  let responses, stats =
    Server.run ~config:sconfig ~on_response (open_arrivals @ closed_arrivals)
  in
  (responses, stats, summarize cfg ~retries:!retries responses stats)

let run cfg = run_with cfg

(* --- instrumented runs: live windows + SLO monitor --- *)

type instrumented = {
  i_responses : Outcome.response list;
  i_stats : Server.stats;
  i_summary : summary;
  i_window : Gb_obs.Telemetry.Window.t;  (** served latencies *)
  i_monitor : Gb_obs.Slo.t;
  i_mean_service_s : float;
  i_objectives : Gb_obs.Slo.objective list;
}

let run_instrumented ?objectives cfg =
  let mean = mean_service (jobs_of cfg) in
  let objectives =
    match objectives with
    | Some o -> o
    | None -> Gb_obs.Slo.defaults ~scale_s:mean
  in
  let window =
    Gb_obs.Telemetry.Window.create ~width_s:mean ~windows:64 ()
  in
  (* A firing burn-rate alert is the flight recorder's highest-signal
     trigger: dump while the ring still holds the offending window. *)
  let on_alert (a : Gb_obs.Slo.alert) =
    if a.Gb_obs.Slo.a_firing then
      Gb_obs.Recorder.trigger ~reason:Gb_obs.Recorder.Slo_fire
        ~now:a.Gb_obs.Slo.a_at ()
  in
  let monitor = Gb_obs.Slo.create ~on_alert ~objectives () in
  let observe (r : Outcome.response) =
    let now = r.Outcome.finished_s in
    (match r.Outcome.disposition with
    | Outcome.Served _ ->
      Gb_obs.Telemetry.Window.observe window ~now (Outcome.latency_s r)
    | Outcome.Shed _ | Outcome.Deadline_exceeded _ -> ());
    Gb_obs.Slo.observe monitor ~now ~ok:(Outcome.goodput r)
      ~latency_s:(Outcome.latency_s r)
  in
  let responses, stats, summary = run_with ~observe cfg in
  {
    i_responses = responses;
    i_stats = stats;
    i_summary = summary;
    i_window = window;
    i_monitor = monitor;
    i_mean_service_s = mean;
    i_objectives = objectives;
  }

(* Interpolated-vs-exact p99 agreement over the aggregated labeled
   latency family. The telemetry histogram covers exactly the responses
   the summary's exact quantiles cover (every [Served _]), so the two
   must agree within the resolution of the buckets involved. *)
let p99_agreement (s : summary) =
  match Gb_obs.Telemetry.quantile_agg Server.latency_family 0.99 with
  | None -> None
  | Some interp ->
    let width v = Gb_obs.Telemetry.bucket_width Server.latency_family v in
    let tolerance = Float.max (width interp) (width s.p99_s) in
    Some (interp, s.p99_s, tolerance)

(* Mid-run tail latency from the sliding window — what a dashboard would
   show at instant [now], as opposed to the summary's post-hoc exact
   quantiles. *)
let live_quantiles (i : instrumented) ~now ~horizon_s =
  let q p =
    Gb_obs.Telemetry.Window.quantile i.i_window ~now ~horizon_s p
  in
  (q 0.5, q 0.99, q 0.999)

(* Schema-v1 records for the BENCH_slo section: alert counts and
   instants are pure functions of (scenario, seed), so the committed
   baseline diffs exactly. *)
let slo_records (i : instrumented) =
  let open Gb_obs.Bench_json in
  let s = i.i_summary in
  let all = Gb_obs.Slo.alerts i.i_monitor in
  List.filter_map
    (fun (o : Gb_obs.Slo.objective) ->
      let mine =
        List.filter (fun (a : Gb_obs.Slo.alert) -> a.a_slo = o.o_name) all
      in
      let fires = List.filter (fun (a : Gb_obs.Slo.alert) -> a.a_firing) mine in
      let first_fire =
        match fires with [] -> 0. | a :: _ -> a.Gb_obs.Slo.a_at
      in
      make
        ~name:("slo_" ^ o.o_name ^ "_fires")
        ~engine:"" ~query:""
        ~size:(s.scenario ^ "/" ^ s.size)
        ~unit_:"count" ~better:Lower
        ~counters:
          [
            ("first_fire_s", first_fire);
            ("resolves",
             float_of_int (List.length mine - List.length fires));
          ]
        [ float_of_int (List.length fires) ])
    i.i_objectives

(* --- artifacts --- *)

let csv_header =
  "id,key,attempt,engine,query,disposition,submitted_s,finished_s,queue_wait_s,exec_s,latency_s,retry_after_s"

let csv_of_responses (responses : Outcome.response list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun (r : Outcome.response) ->
      Printf.bprintf b "%d,%d,%d,%s,%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%s\n" r.Outcome.id
        r.Outcome.key r.Outcome.attempt
        (String.map (fun c -> if c = ',' then ';' else c) r.Outcome.engine)
        (Query.name r.Outcome.query)
        (Outcome.label r)
        r.Outcome.submitted_s r.Outcome.finished_s r.Outcome.queue_wait_s
        r.Outcome.exec_s (Outcome.latency_s r)
        (match r.Outcome.retry_after_s with
        | None -> ""
        | Some ra -> Printf.sprintf "%.6f" ra))
    responses;
  Buffer.contents b

(* Schema-v1 bench records. The simulation is deterministic, so the
   medians are exact and the bench-diff gate can be strict. *)
let bench_records (s : summary) =
  let open Gb_obs.Bench_json in
  let mk ?(better = Lower) ?counters ~unit_ name v =
    make ~name ~engine:"" ~query:"" ~size:(s.scenario ^ "/" ^ s.size) ~unit_
      ~better ?counters [ v ]
  in
  List.filter_map Fun.id
    [
      mk ~unit_:"s" "latency_p50" s.p50_s;
      mk ~unit_:"s" "latency_p99" s.p99_s;
      mk ~unit_:"s" "latency_p999" s.p999_s;
      mk ~unit_:"qps" ~better:Higher "goodput"
        ~counters:
          [
            ("offered", float_of_int s.offered);
            ("attempts", float_of_int s.attempts);
            ("served_ok", float_of_int s.served_ok);
            ("served_failed", float_of_int s.served_failed);
            ("shed_queue", float_of_int s.shed_queue);
            ("shed_mem", float_of_int s.shed_mem);
            ("shed_breaker", float_of_int s.shed_breaker);
            ("expired_queued", float_of_int s.expired_queued);
            ("expired_running", float_of_int s.expired_running);
            ("retries", float_of_int s.retries);
            ("breaker_trips", float_of_int s.breaker_trips);
            ("max_queue_len", float_of_int s.max_queue_len);
          ]
        s.goodput_qps;
      mk ~unit_:"count" "shed_total"
        (float_of_int (s.shed_queue + s.shed_mem + s.shed_breaker));
      mk ~unit_:"count" "deadline_exceeded"
        (float_of_int (s.expired_queued + s.expired_running));
    ]
