(* Per-engine circuit breaker: closed -> open on a high error rate over
   a sliding outcome window, open -> half-open after a cooldown,
   half-open -> closed after enough successful probes (or straight back
   to open on any probe failure). All transitions are judged against a
   caller-supplied clock so the state machine runs identically on the
   simulated and the wall clock. *)

type state = Closed | Open | Half_open

type config = {
  window : int;
  min_samples : int;
  failure_threshold : float;
  cooldown_s : float;
  half_open_probes : int;
}

let default_config =
  {
    window = 16;
    min_samples = 8;
    failure_threshold = 0.5;
    cooldown_s = 5.;
    half_open_probes = 2;
  }

type t = {
  name : string;
  config : config;
  now : unit -> float;
  on_transition : state -> state -> unit;
  m : Mutex.t;
  (* Ring buffer of the last [window] outcomes (true = failure). *)
  ring : bool array;
  mutable filled : int;
  mutable head : int;
  mutable failures : int;
  mutable state : state;
  mutable opened_at : float;
  mutable probes_in_flight : int;
  mutable probe_successes : int;
  mutable trips : int;
}

let trip_counter = Gb_obs.Metric.counter "serve.breaker_trips"

(* Labeled live gauge: 0 = closed, 1 = open, 2 = half-open per engine. *)
let g_state =
  Gb_obs.Telemetry.gauge_family
    ~help:"Circuit-breaker state (0=closed, 1=open, 2=half-open)"
    "genbase_serve_breaker_state"

let state_code = function Closed -> 0. | Open -> 1. | Half_open -> 2.
let state_label = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

let create ?(config = default_config) ?(on_transition = fun _ _ -> ()) ~now
    name =
  if config.window <= 0 then invalid_arg "Breaker.create: window";
  if config.failure_threshold <= 0. || config.failure_threshold > 1. then
    invalid_arg "Breaker.create: failure_threshold";
  {
    name;
    config;
    now;
    on_transition;
    m = Mutex.create ();
    ring = Array.make config.window false;
    filled = 0;
    head = 0;
    failures = 0;
    state = Closed;
    opened_at = neg_infinity;
    probes_in_flight = 0;
    probe_successes = 0;
    trips = 0;
  }

let name t = t.name
let config t = t.config

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Every state change funnels through here (under [t.m]): set the state,
   mirror it on the labeled gauge, drop a sim-track instant at the
   breaker's own clock so transitions interleave with server spans in
   the Chrome export, and invoke the observer callback (still holding
   the mutex — observers must not call back into the breaker). *)
let transition t next =
  let prev = t.state in
  if prev <> next then begin
    t.state <- next;
    Gb_obs.Telemetry.set g_state [ ("engine", t.name) ] (state_code next);
    Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Sim ~ts:(t.now ())
      ~attrs:
        [
          ("engine", Gb_obs.Obs.Str t.name);
          ("from", Gb_obs.Obs.Str (state_label prev));
          ("to", Gb_obs.Obs.Str (state_label next));
        ]
      ~name:"breaker.transition" ();
    (* An opening breaker is an anomaly worth a flight-recorder dump:
       the ring still holds the requests that tripped it. *)
    if next = Open then
      Gb_obs.Recorder.trigger ~reason:Gb_obs.Recorder.Breaker_open
        ~now:(t.now ()) ();
    t.on_transition prev next
  end

let reset_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.filled <- 0;
  t.head <- 0;
  t.failures <- 0

let trip t =
  transition t Open;
  t.opened_at <- t.now ();
  t.trips <- t.trips + 1;
  t.probes_in_flight <- 0;
  t.probe_successes <- 0;
  reset_window t;
  Gb_obs.Metric.add trip_counter 1

(* Open -> half-open is judged lazily, on the next admit/state query
   after the cooldown elapses. *)
let refresh t =
  if t.state = Open && t.now () -. t.opened_at >= t.config.cooldown_s then begin
    transition t Half_open;
    t.probes_in_flight <- 0;
    t.probe_successes <- 0
  end

let state t = locked t (fun () -> refresh t; t.state)
let trips t = locked t (fun () -> t.trips)

let retry_after t = Float.max 0. (t.opened_at +. t.config.cooldown_s -. t.now ())

let admit t =
  locked t (fun () ->
      refresh t;
      match t.state with
      | Closed -> `Admit
      | Open -> `Fast_fail (retry_after t)
      | Half_open ->
        if t.probes_in_flight < t.config.half_open_probes then begin
          t.probes_in_flight <- t.probes_in_flight + 1;
          `Admit
        end
        else
          (* Enough probes are already in flight to decide the engine's
             fate; tell the rest to come back after roughly the time a
             probe needs to finish. *)
          `Fast_fail (t.config.cooldown_s /. 4.))

(* An admitted request that never executed (e.g. its deadline expired in
   the queue) has no verdict to report, but in half-open it holds a probe
   slot that must come back or probing wedges. *)
let abandon t =
  locked t (fun () ->
      match t.state with
      | Half_open -> t.probes_in_flight <- max 0 (t.probes_in_flight - 1)
      | Closed | Open -> ())

let record t ~ok =
  locked t (fun () ->
      refresh t;
      match t.state with
      | Open ->
        (* A straggler admitted before the trip finished after it; its
           verdict no longer changes anything. *)
        ()
      | Half_open ->
        t.probes_in_flight <- max 0 (t.probes_in_flight - 1);
        if not ok then trip t
        else begin
          t.probe_successes <- t.probe_successes + 1;
          if t.probe_successes >= t.config.half_open_probes then begin
            transition t Closed;
            reset_window t
          end
        end
      | Closed ->
        let failed = not ok in
        if t.filled = Array.length t.ring then begin
          if t.ring.(t.head) then t.failures <- t.failures - 1
        end
        else t.filled <- t.filled + 1;
        t.ring.(t.head) <- failed;
        t.head <- (t.head + 1) mod Array.length t.ring;
        if failed then t.failures <- t.failures + 1;
        if
          t.filled >= t.config.min_samples
          && float_of_int t.failures /. float_of_int t.filled
             >= t.config.failure_threshold
        then trip t)
