(** The serving layer's outcome taxonomy: every request ends in exactly
    one bounded, observable disposition — there is no "still queued
    forever" state. [Served] wraps what the engine produced; the other
    arms are the overload-control outcomes the server manufactured
    {e instead of} running (or finishing) the query. *)

type shed_reason =
  | Queue_full  (** admission queue at capacity on arrival *)
  | Memory
      (** the request's working-set estimate exceeds the whole memory
          budget — the batch harness would run such a query alone, but a
          server refuses to stall the fleet for one whale *)
  | Breaker_open  (** the engine's circuit breaker is fast-failing *)

type served_class =
  | Ok_
  | Degraded_  (** completed through the fault-tolerance machinery *)
  | Failed_  (** engine error/OOM; counts against the circuit breaker *)

type disposition =
  | Served of served_class
  | Shed of shed_reason  (** rejected before execution *)
  | Deadline_exceeded of [ `Queued | `Running ]
      (** expired while still queued, or cancelled mid-execution at a
          cooperative checkpoint *)

type response = {
  id : int;  (** unique per submission (retries get fresh ids) *)
  key : int;  (** logical request identity, stable across retries *)
  trace : int;
      (** trace id shared by every span and retry of one logical
          request — the thread that links admit/queue/exec/retry in the
          Chrome export *)
  attempt : int;  (** 1-based client attempt that produced this *)
  engine : string;
  query : Genbase.Query.t;
  submitted_s : float;
  finished_s : float;
  queue_wait_s : float;
  exec_s : float;
  disposition : disposition;
  retry_after_s : float option;  (** server hint accompanying a [Shed] *)
  engine_outcome : Genbase.Engine.outcome option;
      (** live executions carry the real engine outcome; simulations
          carry [None] *)
}

val latency_s : response -> float
(** [finished_s - submitted_s]: queue wait plus execution (zero wait for
    an arrival-time shed). *)

val goodput : response -> bool
(** True for answers a client can use: [Served Ok_] or
    [Served Degraded_]. *)

val shed_reason_label : shed_reason -> string

val label : response -> string
(** Stable short form, e.g. ["shed:queue_full"] — CSV and log lines. *)

val pp : Format.formatter -> response -> unit
