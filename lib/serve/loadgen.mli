(** Deterministic load generator over the simulated server.

    Named scenarios drive open-loop (Poisson, optionally bursty) and
    closed-loop (think-time) client populations against {!Server.run},
    with shed responses retried through the {!Client} backoff schedule
    and optional fault-plan-injected execution failures. One seed fixes
    the entire run — arrivals, mix, faults, retries — so percentiles and
    shed counts replay exactly. *)

type shape =
  | Steady of float  (** offered load as a multiple of fleet capacity *)
  | Bursty of {
      on_load : float;
      off_load : float;
      period : float;  (** in units of the mean service time *)
      duty : float;  (** fraction of each period spent at [on_load] *)
    }

type scenario = {
  sc_name : string;
  descr : string;
  shape : shape;
  closed_loop : int;  (** closed-loop client count (keys [0..n-1]) *)
  fail_p : float;  (** per-execution injected failure probability *)
}

val scenarios : scenario list
(** Single source of truth: steady, closed, burst, overload, chaos. The
    CLI derives its usage text and validation from this list. *)

val find_scenario : string -> (scenario, string) result

type config = {
  scenario : scenario;
  seed : int64;
  duration : float;  (** arrival horizon, in units of the mean service time *)
  size : Gb_datagen.Spec.size;
  engines : string list;
  lanes : int;
  queue_depth : int;
  policy : Server.policy;
  mem_bytes : int option;  (** [None]: lanes x the largest working set *)
  deadline_factor : float;  (** per-query deadline = factor x mean service *)
  retry_budget_factor : float;  (** client retry budget = factor x deadline *)
  client : Client.policy;
  breaker : Breaker.config;
}

val default_engines : string list

val default_config : scenario -> config
(** Small paper dims, seed 42, 60 mean-service-times of arrivals, 4
    lanes, depth-16 FIFO queue. *)

type summary = {
  scenario : string;
  size : string;
  offered : int;  (** logical queries (first attempts) *)
  attempts : int;  (** submissions including retries *)
  served_ok : int;
  served_failed : int;
  shed_queue : int;
  shed_mem : int;
  shed_breaker : int;
  expired_queued : int;
  expired_running : int;
  retries : int;
  horizon_s : float;  (** last finish instant on the sim clock *)
  goodput_qps : float;  (** served-ok completions per sim second *)
  p50_s : float;  (** latency percentiles over served responses *)
  p99_s : float;
  p999_s : float;
  max_queue_len : int;
  max_mem_used : int;
  breaker_trips : int;
}

val run : config -> Outcome.response list * Server.stats * summary
(** Generate the scenario's traffic and simulate to quiescence. *)

val pp_summary : Format.formatter -> summary -> unit

val csv_of_responses : Outcome.response list -> string
(** Per-response latency table (one row per attempt), CSV with header. *)

val bench_records : summary -> Gb_obs.Bench_json.record list
(** Schema-v1 records: latency p50/p99/p999, goodput (with the full
    shed/expiry breakdown as counters), shed and deadline totals. The
    simulation is deterministic, so medians are exact and the bench-diff
    gate can be strict. *)
