(** Deterministic load generator over the simulated server.

    Named scenarios drive open-loop (Poisson, optionally bursty) and
    closed-loop (think-time) client populations against {!Server.run},
    with shed responses retried through the {!Client} backoff schedule
    and optional fault-plan-injected execution failures. One seed fixes
    the entire run — arrivals, mix, faults, retries — so percentiles and
    shed counts replay exactly. *)

type shape =
  | Steady of float  (** offered load as a multiple of fleet capacity *)
  | Bursty of {
      on_load : float;
      off_load : float;
      period : float;  (** in units of the mean service time *)
      duty : float;  (** fraction of each period spent at [on_load] *)
    }

type scenario = {
  sc_name : string;
  descr : string;
  shape : shape;
  closed_loop : int;  (** closed-loop client count (keys [0..n-1]) *)
  fail_p : float;  (** per-execution injected failure probability *)
}

val scenarios : scenario list
(** Single source of truth: steady, closed, burst, overload, chaos. The
    CLI derives its usage text and validation from this list. *)

val find_scenario : string -> (scenario, string) result

type config = {
  scenario : scenario;
  seed : int64;
  duration : float;  (** arrival horizon, in units of the mean service time *)
  size : Gb_datagen.Spec.size;
  engines : string list;
  lanes : int;
  queue_depth : int;
  policy : Server.policy;
  mem_bytes : int option;  (** [None]: lanes x the largest working set *)
  deadline_factor : float;  (** per-query deadline = factor x mean service *)
  retry_budget_factor : float;  (** client retry budget = factor x deadline *)
  client : Client.policy;
  breaker : Breaker.config;
}

val default_engines : string list

val default_config : scenario -> config
(** Small paper dims, seed 42, 60 mean-service-times of arrivals, 4
    lanes, depth-16 FIFO queue. *)

type summary = {
  scenario : string;
  size : string;
  offered : int;  (** logical queries (first attempts) *)
  attempts : int;  (** submissions including retries *)
  served_ok : int;
  served_failed : int;
  shed_queue : int;
  shed_mem : int;
  shed_breaker : int;
  expired_queued : int;
  expired_running : int;
  retries : int;
  horizon_s : float;  (** last finish instant on the sim clock *)
  goodput_qps : float;  (** served-ok completions per sim second *)
  p50_s : float;  (** latency percentiles over served responses *)
  p99_s : float;
  p999_s : float;
  max_queue_len : int;
  max_mem_used : int;
  breaker_trips : int;
}

val run : config -> Outcome.response list * Server.stats * summary
(** Generate the scenario's traffic and simulate to quiescence. With
    tracing enabled, retries additionally emit [client.retry] sim-track
    instants linked to the original request by trace id; trace ids are
    assigned per logical request (retries inherit the first attempt's),
    so every admit/queue/exec/retry span of one request shares one
    [trace] attribute. *)

(** {1 Instrumented runs} — the same simulation with a sliding latency
    window and an SLO burn-rate monitor fed from the response stream.
    The instrumentation observes responses in deterministic event order
    and consumes no PRNG draws, so summaries, sheds and percentiles are
    bit-identical to {!run}'s. *)

type instrumented = {
  i_responses : Outcome.response list;
  i_stats : Server.stats;
  i_summary : summary;
  i_window : Gb_obs.Telemetry.Window.t;
      (** served-response latencies, sub-window width = mean service *)
  i_monitor : Gb_obs.Slo.t;
  i_mean_service_s : float;
  i_objectives : Gb_obs.Slo.objective list;
}

val run_instrumented : ?objectives:Gb_obs.Slo.objective list -> config -> instrumented
(** [?objectives] defaults to {!Gb_obs.Slo.defaults} scaled by the
    workload's mean service time: availability 99% and latency-under-4x
    95%, both windows quick-scenario-sized. *)

val live_quantiles :
  instrumented ->
  now:float ->
  horizon_s:float ->
  float option * float option * float option
(** Mid-run (p50, p99, p999) over the trailing [horizon_s] seconds of
    the sliding window, interpolated — what a dashboard would show at
    [now]. *)

val p99_agreement : summary -> (float * float * float) option
(** [(interpolated, exact, tolerance)]: the aggregated
    [genbase_serve_latency_seconds] p99 versus the summary's exact
    post-hoc p99, with tolerance = the wider of the two buckets
    involved. Both cover exactly the [Served _] responses. [None] when
    telemetry was disabled (empty family). *)

val slo_records : instrumented -> Gb_obs.Bench_json.record list
(** One record per objective: fire count, first-fire instant and resolve
    count — pure functions of (scenario, seed), so the committed
    [BENCH_slo.json] baseline diffs exactly. *)

val pp_summary : Format.formatter -> summary -> unit

val csv_of_responses : Outcome.response list -> string
(** Per-response latency table (one row per attempt), CSV with header. *)

val bench_records : summary -> Gb_obs.Bench_json.record list
(** Schema-v1 records: latency p50/p99/p999, goodput (with the full
    shed/expiry breakdown as counters), shed and deadline totals. The
    simulation is deterministic, so medians are exact and the bench-diff
    gate can be strict. *)
