(** Per-engine circuit breaker.

    Closed: outcomes feed a sliding window; once the window holds at
    least [min_samples] outcomes and the failure rate reaches
    [failure_threshold], the breaker trips open. Open: every admission
    fast-fails with a retry-after hint until [cooldown_s] elapses.
    Half-open: up to [half_open_probes] requests are admitted as probes;
    [half_open_probes] successes close the breaker, any probe failure
    re-opens it (and restarts the cooldown).

    Time comes from a caller-supplied [now], so the same machine drives
    the simulated server (deterministic transition tests) and the live
    one. All operations are mutex-protected for the live path's
    concurrent lanes. *)

type state = Closed | Open | Half_open

type config = {
  window : int;  (** sliding-window length, in outcomes *)
  min_samples : int;  (** outcomes required before the rate can trip *)
  failure_threshold : float;  (** failure rate in (0, 1] that trips *)
  cooldown_s : float;  (** open duration before probing *)
  half_open_probes : int;  (** concurrent probes / successes to close *)
}

val default_config : config
(** 16-outcome window, 8 minimum samples, 50% threshold, 5 s cooldown,
    2 probes. *)

type t

val create :
  ?config:config ->
  ?on_transition:(state -> state -> unit) ->
  now:(unit -> float) ->
  string ->
  t
(** [create ~now engine_name]. Raises [Invalid_argument] on a
    non-positive window or an out-of-range threshold.

    [on_transition prev next] fires on every state change, under the
    breaker's mutex — observers must not call back into the breaker.
    Independent of the callback, each transition updates the
    [genbase_serve_breaker_state] labeled gauge (0 = closed, 1 = open,
    2 = half-open; telemetry flag) and emits a [breaker.transition]
    sim-track instant with [engine]/[from]/[to] attributes (tracing
    flag). *)

val name : t -> string
val config : t -> config

val state : t -> state
(** Current state; an elapsed cooldown is applied lazily, so reading the
    state can transition open -> half-open. *)

val admit : t -> [ `Admit | `Fast_fail of float ]
(** Admission decision for one request. [`Fast_fail retry_after_s] is
    the degraded fast path: the caller sheds the request with the hint
    instead of queueing it. In half-open, [`Admit] reserves one probe
    slot that the matching {!record} releases. *)

val abandon : t -> unit
(** Release an admission that will never produce an outcome (the request
    expired in the queue): returns the half-open probe slot {!admit}
    reserved without recording a verdict. No-op in other states. *)

val record : t -> ok:bool -> unit
(** Report the outcome of an admitted request. [ok = false] covers
    engine errors, memory failures and timeouts. *)

val trips : t -> int
(** Closed/half-open -> open transitions so far (also mirrored on the
    [serve.breaker_trips] counter when tracing is enabled). *)
