(* Wall-clock serving path: the same admission pipeline as the
   simulated server (bounded queue, FIFO/SJF, circuit breakers, memory
   budget, deadlines) wrapped around real engine executions on a small
   pool of worker domains.

   Each lane is one domain; kernels inside an engine still use the
   shared [Gb_par.Pool] for their own data parallelism, so this trades
   kernel-level for query-level parallelism exactly like the harness's
   concurrent grid cells. Deadlines ride the ambient mechanism:
   [Engine.run] arms [Deadline.Ambient] with the remaining budget and
   the kernels' cooperative checkpoints turn an overrun into
   [Timed_out]. *)

module Engine = Genbase.Engine
module Query = Genbase.Query

type config = {
  lanes : int;
  queue_depth : int;
  policy : Server.policy;
  breaker : Breaker.config;
  budget : Gb_par.Budget.t;
}

let default_config () =
  {
    lanes = 2;
    queue_depth = 8;
    policy = Server.Fifo;
    breaker = Breaker.default_config;
    budget = Genbase.Harness.memory_budget ();
  }

type ticket = {
  t_m : Mutex.t;
  t_cv : Condition.t;
  mutable t_resp : Outcome.response option;
}

module Tele = Gb_obs.Telemetry

(* Same families as the simulated server (find-or-register by name), so
   one exposition covers both paths. *)
let f_requests = Tele.counter_family "genbase_serve_requests_total"
let f_responses = Tele.counter_family "genbase_serve_responses_total"
let f_latency = Tele.hist_family "genbase_serve_latency_seconds"

type item = {
  i_id : int;
  i_trace : int;
  i_engine : Engine.t;
  i_ds : Genbase.Dataset.t;
  i_query : Query.t;
  i_params : Query.params;
  i_submitted : float;
  i_deadline_at : float;
  i_service : float;  (** SJF rank, from the {!Estimate} cost model *)
  i_bytes : int;
  i_ticket : ticket;
}

type t = {
  cfg : config;
  epoch : float;
  m : Mutex.t;
  cv : Condition.t;
  mutable queue : item list;
  mutable stopping : bool;
  mutable next_id : int;
  breakers : (string, Breaker.t) Hashtbl.t;
  mutable workers : unit Domain.t list;
}

let now t = Unix.gettimeofday () -. t.epoch

let breaker t name =
  (* called under t.m *)
  match Hashtbl.find_opt t.breakers name with
  | Some b -> b
  | None ->
    let b = Breaker.create ~config:t.cfg.breaker ~now:(fun () -> now t) name in
    Hashtbl.add t.breakers name b;
    b

let deliver (tk : ticket) (resp : Outcome.response) =
  (* Same flight-recorder taps as the simulated server, on wall time. *)
  (match resp.Outcome.disposition with
  | Outcome.Shed _ -> Gb_obs.Recorder.observe_shed ~now:resp.Outcome.finished_s
  | _ -> ());
  Gb_obs.Recorder.observe_response ~trace:resp.Outcome.trace
    ~latency_s:(Outcome.latency_s resp)
    ~ok:
      (match resp.Outcome.disposition with
      | Outcome.Served (Outcome.Ok_ | Outcome.Degraded_) -> true
      | _ -> false)
    ~now:resp.Outcome.finished_s;
  if Tele.enabled () then begin
    let labels =
      [
        ("engine", resp.Outcome.engine);
        ("query", Query.name resp.Outcome.query);
      ]
    in
    Tele.incr f_responses (("disposition", Outcome.label resp) :: labels);
    match resp.Outcome.disposition with
    | Outcome.Served _ -> Tele.observe f_latency labels (Outcome.latency_s resp)
    | Outcome.Shed _ | Outcome.Deadline_exceeded _ -> ()
  end;
  Mutex.lock tk.t_m;
  tk.t_resp <- Some resp;
  Condition.broadcast tk.t_cv;
  Mutex.unlock tk.t_m

let response t (it : item) ~finished ~wait ~exec ?(retry_after = None)
    ?(engine_outcome = None) disposition =
  ignore t;
  {
    Outcome.id = it.i_id;
    key = it.i_id;
    trace = it.i_trace;
    attempt = 1;
    engine = it.i_engine.Engine.name;
    query = it.i_query;
    submitted_s = it.i_submitted;
    finished_s = finished;
    queue_wait_s = wait;
    exec_s = exec;
    disposition;
    retry_after_s = retry_after;
    engine_outcome;
  }

(* Same head-selection rules as the simulated server. *)
let pick_locked t =
  match t.queue with
  | [] -> None
  | first :: rest ->
    let better a b =
      match t.cfg.policy with
      | Server.Fifo -> if b.i_id < a.i_id then b else a
      | Server.Sjf ->
        let c = Float.compare b.i_service a.i_service in
        if c < 0 || (c = 0 && b.i_id < a.i_id) then b else a
    in
    let q = List.fold_left better first rest in
    t.queue <- List.filter (fun it -> it.i_id <> q.i_id) t.queue;
    Some q

let sweep_locked t =
  let tnow = now t in
  let expired, live =
    List.partition (fun it -> it.i_deadline_at < tnow) t.queue
  in
  t.queue <- live;
  List.iter
    (fun it ->
      Breaker.abandon (breaker t it.i_engine.Engine.name);
      deliver it.i_ticket
        (response t it ~finished:tnow ~wait:(tnow -. it.i_submitted) ~exec:0.
           (Outcome.Deadline_exceeded `Queued)))
    expired

let classify = function
  | Engine.Completed _ -> Outcome.Served Outcome.Ok_
  | Engine.Degraded _ -> Outcome.Served Outcome.Degraded_
  | Engine.Timed_out -> Outcome.Deadline_exceeded `Running
  | Engine.Out_of_memory | Engine.Errored _ | Engine.Unsupported ->
    Outcome.Served Outcome.Failed_

(* Breaker health: completions (possibly degraded) are successes;
   [Unsupported] is a static capability gap, not an engine fault, so it
   neither helps nor hurts — counting it as failure would trip breakers
   on engines that simply skip a query. *)
let breaker_ok = function
  | Engine.Completed _ | Engine.Degraded _ | Engine.Unsupported -> true
  | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _ -> false

let execute t (it : item) =
  let started = now t in
  let granted = Gb_par.Budget.reserve t.cfg.budget ~bytes:it.i_bytes in
  Fun.protect
    ~finally:(fun () -> Gb_par.Budget.release t.cfg.budget ~bytes:granted)
    (fun () ->
      let remaining = it.i_deadline_at -. now t in
      if remaining <= 0. then begin
        (* Expired while waiting for memory: never executed. *)
        Mutex.lock t.m;
        Breaker.abandon (breaker t it.i_engine.Engine.name);
        Mutex.unlock t.m;
        deliver it.i_ticket
          (response t it ~finished:(now t)
             ~wait:(now t -. it.i_submitted)
             ~exec:0.
             (Outcome.Deadline_exceeded `Queued))
      end
      else begin
        let outcome =
          Gb_obs.Obs.Span.with_ ~cat:"serve" ~name:"serve.exec"
            ~attrs:
              [
                ("trace", Gb_obs.Obs.Int it.i_trace);
                ("id", Gb_obs.Obs.Int it.i_id);
                ("engine", Gb_obs.Obs.Str it.i_engine.Engine.name);
                ("query", Gb_obs.Obs.Str (Query.name it.i_query));
                ("queue_wait_s", Gb_obs.Obs.Float (started -. it.i_submitted));
              ]
            (fun () ->
              Engine.run it.i_engine it.i_ds it.i_query ~params:it.i_params
                ~timeout_s:remaining ())
        in
        let finished = now t in
        Mutex.lock t.m;
        Breaker.record
          (breaker t it.i_engine.Engine.name)
          ~ok:(breaker_ok outcome);
        Mutex.unlock t.m;
        deliver it.i_ticket
          (response t it ~finished
             ~wait:(started -. it.i_submitted)
             ~exec:(finished -. started)
             ~engine_outcome:(Some outcome) (classify outcome))
      end)

let worker t =
  Gb_obs.Obs.set_domain_tid (128 + (Domain.self () :> int));
  let rec loop () =
    Mutex.lock t.m;
    sweep_locked t;
    match pick_locked t with
    | Some it ->
      Mutex.unlock t.m;
      execute t it;
      loop ()
    | None ->
      if t.stopping then (Mutex.unlock t.m)
      else begin
        Condition.wait t.cv t.m;
        Mutex.unlock t.m;
        loop ()
      end
  in
  loop ()

let create ?config () =
  let cfg = match config with Some c -> c | None -> default_config () in
  if cfg.lanes < 1 then invalid_arg "Live.create: lanes";
  if cfg.queue_depth < 0 then invalid_arg "Live.create: queue_depth";
  let t =
    {
      cfg;
      epoch = Unix.gettimeofday ();
      m = Mutex.create ();
      cv = Condition.create ();
      queue = [];
      stopping = false;
      next_id = 0;
      breakers = Hashtbl.create 8;
      workers = [];
    }
  in
  t.workers <- List.init cfg.lanes (fun _ -> Domain.spawn (fun () -> worker t));
  t

type handle = ticket

let await (tk : handle) =
  Mutex.lock tk.t_m;
  let rec wait () =
    match tk.t_resp with
    | Some r -> Mutex.unlock tk.t_m; r
    | None -> Condition.wait tk.t_cv tk.t_m; wait ()
  in
  wait ()

let submit t ~engine ~ds ?(params = Query.default_params) ?trace ~deadline_s
    query =
  let ticket =
    { t_m = Mutex.create (); t_cv = Condition.create (); t_resp = None }
  in
  let spec = ds.Gb_datagen.Generate.spec in
  let genes = spec.Gb_datagen.Spec.genes
  and patients = spec.Gb_datagen.Spec.patients in
  if Tele.enabled () then
    Tele.incr f_requests
      [ ("engine", engine.Engine.name); ("query", Query.name query) ];
  Mutex.lock t.m;
  if t.stopping then begin
    Mutex.unlock t.m;
    invalid_arg "Live.submit: server is shut down"
  end;
  t.next_id <- t.next_id + 1;
  let it =
    {
      i_id = t.next_id;
      i_trace = Option.value trace ~default:t.next_id;
      i_engine = engine;
      i_ds = ds;
      i_query = query;
      i_params = params;
      i_submitted = now t;
      i_deadline_at = now t +. deadline_s;
      i_service =
        Estimate.service_s ~engine:engine.Engine.name ~genes ~patients query;
      i_bytes = Genbase.Harness.cell_bytes ds;
      i_ticket = ticket;
    }
  in
  let admit_instant decision =
    if Gb_obs.Obs.active () then
      Gb_obs.Obs.Span.instant ~track:Gb_obs.Obs.Wall
        ~attrs:
          [
            ("trace", Gb_obs.Obs.Int it.i_trace);
            ("id", Gb_obs.Obs.Int it.i_id);
            ("engine", Gb_obs.Obs.Str engine.Engine.name);
            ("decision", Gb_obs.Obs.Str decision);
          ]
        ~name:"serve.admit" ()
  in
  let reject decision disposition retry_after =
    admit_instant decision;
    Mutex.unlock t.m;
    deliver ticket
      (response t it ~finished:it.i_submitted ~wait:0. ~exec:0.
         ~retry_after disposition);
    ticket
  in
  if it.i_bytes > Gb_par.Budget.capacity t.cfg.budget then
    reject "shed:memory" (Outcome.Shed Outcome.Memory) None
  else if List.length t.queue >= t.cfg.queue_depth then begin
    let backlog =
      List.fold_left (fun a q -> a +. q.i_service) 0. t.queue
    in
    reject "shed:queue_full"
      (Outcome.Shed Outcome.Queue_full)
      (Some (Float.max 0.05 (backlog /. float_of_int t.cfg.lanes)))
  end
  else
    match Breaker.admit (breaker t engine.Engine.name) with
    | `Fast_fail retry_after ->
      reject "shed:breaker_open" (Outcome.Shed Outcome.Breaker_open)
        (Some retry_after)
    | `Admit ->
      admit_instant "admitted";
      t.queue <- it :: t.queue;
      Condition.signal t.cv;
      Mutex.unlock t.m;
      ticket

let run t ~engine ~ds ?params ~deadline_s query =
  await (submit t ~engine ~ds ?params ~deadline_s query)

let shutdown t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []
