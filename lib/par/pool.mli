(** Fixed-size Domain pool shared by every wall-clock engine.

    The pool is spawned lazily on the first parallel operation and
    reused across queries. Its size comes from {!set_jobs} (the CLI's
    [--jobs]) or the [GENBASE_DOMAINS] environment variable, defaulting
    to 1 — at which point every operation runs inline on the caller and
    reproduces the sequential kernels bitwise, with no domain spawned.

    Determinism: chunk boundaries are a pure function of (range, grain,
    domain count) and {!map_reduce} combines over a fixed binary tree,
    so a given domain count always produces the same floats. Operations
    issued from inside a running task execute inline (no nested
    regions, no deadlock). *)

val env_var : string
(** ["GENBASE_DOMAINS"]. *)

val parse_jobs : string -> (int, string) result
(** Validate a domain-count string: integers [>= 1] are [Ok]; zero,
    negatives and non-numeric input yield [Error msg]. *)

val jobs : unit -> int
(** Current pool size: the {!set_jobs} override if any, else a valid
    [GENBASE_DOMAINS], else 1. *)

val set_jobs : int -> unit
(** Override the pool size for this process. Raises [Invalid_argument]
    on [n < 1]. A live pool of a different size is shut down and
    respawned on next use. *)

val reset_jobs : unit -> unit
(** Drop the {!set_jobs} override, reverting to env/default sizing. *)

val shutdown : unit -> unit
(** Join all worker domains. The pool respawns on next use; callers
    normally never need this. *)

val in_parallel_region : unit -> bool
(** True while the calling domain is executing inside a pool task (such
    code must not submit new regions; the operations below detect this
    themselves and run inline). *)

val parallel_for : ?grain:int -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for ~grain ~lo ~hi body] runs [body a b] over disjoint
    subranges covering [\[lo, hi)], each at least [grain] wide (except
    possibly the last). With one lane the single call [body lo hi] is
    made on the caller. [body] must only perform writes that are
    disjoint across subranges. *)

val map_reduce :
  ?grain:int ->
  lo:int ->
  hi:int ->
  map:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  unit ->
  'a
(** [map_reduce ~lo ~hi ~map ~combine ()] maps disjoint subranges and
    folds the per-chunk results with [combine] over a fixed binary tree
    on chunk index — deterministic for a given domain count. With one
    lane, returns [map lo hi] directly. Raises [Invalid_argument] on an
    empty range. *)

val par2 : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Fork–join pair; sequential ([f] then [g]) with one lane. *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map; one task per element. *)

val map_list : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map; one task per element. *)

val ranges : grain:int -> lo:int -> hi:int -> (int * int) list
(** Pure fixed-grain chunking of [\[lo, hi)] — independent of the
    domain count, for callers that need partitioning stable across pool
    sizes (e.g. the hash join's chunk-ordered stitching). *)
