(* A fixed-size Domain pool under the wall-clock engines.

   One pool per process, spawned lazily on the first parallel operation
   and reused across queries: [jobs ()] lanes, lane 0 being whichever
   domain submits work (it participates in every region) and lanes
   1..jobs-1 being dedicated worker domains parked on a condition
   variable between regions. Each lane owns a work-stealing {!Deque};
   a region pushes its chunk tasks round-robin across the deques, wakes
   the workers, and every lane then pops locally and steals when dry.

   Determinism contract:
   - [jobs () = 1] runs every operation inline on the caller over the
     whole index range — bitwise identical to the pre-pool sequential
     kernels, with no domain ever spawned.
   - For [jobs () = n], chunk boundaries are a pure function of the
     range, the grain and [n], and {!map_reduce} combines chunk results
     over a fixed binary tree on the chunk index — so a given domain
     count always produces the same floats, regardless of which lane ran
     which chunk or in what order.

   Nesting: a parallel operation issued from inside a running task (a
   kernel inside a harness cell, say) executes inline and sequentially
   on that lane — task parallelism at the outer level and data
   parallelism at the kernel level share one pool without deadlock.

   Observability: every executed task bumps the ["par.tasks"] counter
   and every cross-lane steal bumps ["par.steals"] (both gated on
   {!Gb_obs.Obs.enabled}, like every other counter); worker domains
   register a per-domain tid with {!Gb_obs.Obs.set_domain_tid} so wall
   spans they emit land on their own track in trace exports. *)

module Metric = Gb_obs.Metric

let tasks_c = Metric.counter ~unit_:"task" "par.tasks"
let steals_c = Metric.counter ~unit_:"steal" "par.steals"

type task = unit -> unit

type pool = {
  lanes : int;
  deques : task Deque.t array;  (** length [lanes]; index 0 = submitter *)
  m : Mutex.t;
  cv : Condition.t;
  mutable job_seq : int;  (** bumped when a region publishes tasks *)
  mutable stop : bool;
  pending : int Atomic.t;  (** tasks of the current region not yet finished *)
  error : exn option Atomic.t;  (** first task exception of the region *)
  mutable domains : unit Domain.t list;
}

(* --- sizing --- *)

let env_var = "GENBASE_DOMAINS"

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "domain count must be >= 1, got %d" n)
  | None -> Error (Printf.sprintf "domain count %S is not an integer" s)

let env_warned = ref false

let jobs_from_env () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
    match parse_jobs s with
    | Ok n -> n
    | Error msg ->
      (* Library fallback only: the CLI validates the variable up front
         and turns this into a usage error. *)
      if not !env_warned then begin
        env_warned := true;
        Printf.eprintf "warning: ignoring %s: %s\n%!" env_var msg
      end;
      1)

let override : int option ref = ref None

let jobs () = match !override with Some n -> n | None -> jobs_from_env ()

(* --- per-domain state --- *)

(* Lane id of a pool worker domain; -1 on every other domain. *)
let lane_key = Domain.DLS.new_key (fun () -> -1)

(* True while this domain is executing inside a region (either a worker
   running a task, or the submitter helping): parallel operations seeing
   it run inline. *)
let in_region_key = Domain.DLS.new_key (fun () -> false)

(* --- the worker protocol --- *)

let run_task p t =
  let saved = Domain.DLS.get in_region_key in
  Domain.DLS.set in_region_key true;
  (try t ()
   with e ->
     (* Keep the first failure; the submitter re-raises after the join.
        The CAS only fails if another task already recorded one. *)
     ignore (Atomic.compare_and_set p.error None (Some e)));
  Domain.DLS.set in_region_key saved;
  Metric.add tasks_c 1;
  Atomic.decr p.pending

(* Pop locally, then sweep the other lanes for a steal. *)
let find_task p lane =
  match Deque.pop p.deques.(lane) with
  | Some t -> Some (t, false)
  | None ->
    let n = p.lanes in
    let rec sweep k =
      if k >= n - 1 then None
      else
        let v = (lane + 1 + k) mod n in
        match Deque.steal p.deques.(v) with
        | Some t -> Some (t, true)
        | None -> sweep (k + 1)
    in
    sweep 0

let rec drain p lane =
  match find_task p lane with
  | Some (t, stolen) ->
    if stolen then Metric.add steals_c 1;
    run_task p t;
    drain p lane
  | None -> ()

let worker p lane () =
  Domain.DLS.set lane_key lane;
  (* Wall-clock spans emitted from this domain carry its lane as tid,
     mirroring the 1-based per-node tid convention of the simulated
     engines. *)
  Gb_obs.Obs.set_domain_tid lane;
  let seen = ref 0 in
  let rec loop () =
    drain p lane;
    if Atomic.get p.pending > 0 then begin
      (* Tasks exist but are all claimed: their owners are computing.
         Spin politely — regions are short-lived. *)
      Domain.cpu_relax ();
      loop ()
    end
    else begin
      Mutex.lock p.m;
      while (not p.stop) && p.job_seq = !seen do
        Condition.wait p.cv p.m
      done;
      seen := p.job_seq;
      let stop = p.stop in
      Mutex.unlock p.m;
      if not stop then loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

let current : pool option ref = ref None

(* Serializes regions: one parallel operation in flight at a time.
   Nested operations never reach this lock (they run inline), so it
   cannot self-deadlock. *)
let region_m = Mutex.create ()

let spawn lanes =
  let p =
    {
      lanes;
      deques = Array.init lanes (fun _ -> Deque.create ());
      m = Mutex.create ();
      cv = Condition.create ();
      job_seq = 0;
      stop = false;
      pending = Atomic.make 0;
      error = Atomic.make None;
      domains = [];
    }
  in
  p.domains <- List.init (lanes - 1) (fun i -> Domain.spawn (worker p (i + 1)));
  p

let shutdown_pool p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.cv;
  Mutex.unlock p.m;
  List.iter Domain.join p.domains;
  p.domains <- []

let shutdown () =
  match !current with
  | None -> ()
  | Some p ->
    current := None;
    shutdown_pool p

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: domain count must be >= 1";
  override := Some n;
  match !current with
  | Some p when p.lanes <> n -> shutdown ()
  | _ -> ()

let reset_jobs () =
  override := None;
  match !current with
  | Some p when p.lanes <> jobs_from_env () -> shutdown ()
  | _ -> ()

let ensure () =
  let n = jobs () in
  match !current with
  | Some p when p.lanes = n -> p
  | Some _ ->
    shutdown ();
    let p = spawn n in
    current := Some p;
    p
  | None ->
    let p = spawn n in
    current := Some p;
    p

(* --- regions --- *)

(* Publish [tasks] round-robin across the lanes, wake the workers, help
   until every task finished, then re-raise the first task exception.
   Caller must hold [region_m] and must not already be in a region. *)
let region p tasks =
  let n = Array.length tasks in
  Atomic.set p.error None;
  Atomic.set p.pending n;
  Array.iteri (fun k t -> Deque.push p.deques.(k mod p.lanes) t) tasks;
  Mutex.lock p.m;
  p.job_seq <- p.job_seq + 1;
  Condition.broadcast p.cv;
  Mutex.unlock p.m;
  let saved = Domain.DLS.get in_region_key in
  Domain.DLS.set in_region_key true;
  let rec help () =
    drain p 0;
    if Atomic.get p.pending > 0 then begin
      Domain.cpu_relax ();
      help ()
    end
  in
  help ();
  Domain.DLS.set in_region_key saved;
  match Atomic.get p.error with Some e -> raise e | None -> ()

let in_parallel_region () = Domain.DLS.get in_region_key

(* Submit an array of thunks as one region, or run them inline when the
   pool cannot help (single lane, or already inside a region). *)
let run_tasks tasks =
  if Array.length tasks = 0 then ()
  else if jobs () = 1 || in_parallel_region () || Array.length tasks = 1 then
    Array.iter (fun t -> t ()) tasks
  else begin
    let p = ensure () in
    Mutex.lock region_m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock region_m)
      (fun () -> region p tasks)
  end

(* --- range chunking ---

   Boundaries depend only on (lo, hi, grain, lanes): an even split into
   ~4 chunks per lane, never smaller than [grain], so stealing can
   rebalance while a fixed domain count keeps a fixed decomposition. *)
let chunk_ranges ~grain ~lanes ~lo ~hi =
  let n = hi - lo in
  let target = lanes * 4 in
  let size = max (max 1 grain) ((n + target - 1) / target) in
  let nchunks = (n + size - 1) / size in
  Array.init nchunks (fun c ->
      (lo + (c * size), min hi (lo + ((c + 1) * size))))

let ranges ~grain ~lo ~hi =
  let n = hi - lo in
  if n <= 0 then []
  else begin
    let size = max 1 grain in
    let nchunks = (n + size - 1) / size in
    List.init nchunks (fun c ->
        (lo + (c * size), min hi (lo + ((c + 1) * size))))
  end

(* --- operations --- *)

let parallel_for ?(grain = 1) ~lo ~hi body =
  if hi - lo <= 0 then ()
  else begin
    let lanes = jobs () in
    if lanes = 1 || in_parallel_region () || hi - lo <= grain then body lo hi
    else begin
      let rs = chunk_ranges ~grain ~lanes ~lo ~hi in
      if Array.length rs <= 1 then body lo hi
      else run_tasks (Array.map (fun (a, b) () -> body a b) rs)
    end
  end

let map_reduce ?(grain = 1) ~lo ~hi ~map ~combine () =
  if hi - lo <= 0 then invalid_arg "Pool.map_reduce: empty range";
  let lanes = jobs () in
  if lanes = 1 || in_parallel_region () || hi - lo <= grain then map lo hi
  else begin
    let rs = chunk_ranges ~grain ~lanes ~lo ~hi in
    let n = Array.length rs in
    if n = 1 then map lo hi
    else begin
      let slots = Array.make n None in
      run_tasks
        (Array.mapi
           (fun i (a, b) () -> slots.(i) <- Some (map a b))
           rs);
      (* Fixed binary tree over the chunk index: the combine order for a
         given (range, grain, domain count) never varies, so floats come
         out the same on every run. *)
      let rec reduce a b =
        if b - a = 1 then Option.get slots.(a)
        else
          let mid = a + ((b - a) / 2) in
          combine (reduce a mid) (reduce mid b)
      in
      reduce 0 n
    end
  end

let par2 f g =
  if jobs () = 1 || in_parallel_region () then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    let ra = ref None and rb = ref None in
    run_tasks
      [| (fun () -> ra := Some (f ())); (fun () -> rb := Some (g ())) |];
    (Option.get !ra, Option.get !rb)
  end

let map_array f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if jobs () = 1 || in_parallel_region () || n = 1 then Array.map f xs
  else begin
    let slots = Array.make n None in
    run_tasks (Array.mapi (fun i x () -> slots.(i) <- Some (f x)) xs);
    Array.map Option.get slots
  end

let map_list f xs = Array.to_list (map_array f (Array.of_list xs))
