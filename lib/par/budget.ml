(* Global memory budget for concurrent harness cells.

   Cells estimate their peak working set before running; a reservation
   blocks until the estimate fits under the budget alongside whatever is
   already running. An estimate larger than the whole budget is admitted
   when nothing else is running — the budget throttles concurrency, it
   never rejects work a sequential run could do. *)

type t = {
  capacity : int;  (** bytes *)
  m : Mutex.t;
  cv : Condition.t;
  mutable used : int;  (** bytes reserved by in-flight work *)
}

let create ~bytes =
  if bytes <= 0 then invalid_arg "Budget.create: capacity must be positive";
  { capacity = bytes; m = Mutex.create (); cv = Condition.create (); used = 0 }

let capacity t = t.capacity

let with_reservation t ~bytes f =
  let bytes = max 0 bytes in
  Mutex.lock t.m;
  while t.used > 0 && t.used + bytes > t.capacity do
    Condition.wait t.cv t.m
  done;
  t.used <- t.used + bytes;
  Mutex.unlock t.m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.used <- t.used - bytes;
      Condition.broadcast t.cv;
      Mutex.unlock t.m)
    f
