(* Global memory budget for concurrent harness cells.

   Cells estimate their peak working set before running; a reservation
   blocks until the estimate fits under the budget alongside whatever is
   already running. An estimate larger than the whole budget is admitted
   when nothing else is running — the budget throttles concurrency, it
   never rejects work a sequential run could do. *)

type t = {
  capacity : int;  (** bytes *)
  m : Mutex.t;
  cv : Condition.t;
  mutable used : int;  (** bytes reserved by in-flight work *)
}

let create ~bytes =
  if bytes <= 0 then invalid_arg "Budget.create: capacity must be positive";
  { capacity = bytes; m = Mutex.create (); cv = Condition.create (); used = 0 }

let capacity t = t.capacity

let used t =
  Mutex.lock t.m;
  let u = t.used in
  Mutex.unlock t.m;
  u

let fits t bytes = t.used = 0 || t.used + bytes <= t.capacity

let reserve t ~bytes =
  let bytes = max 0 bytes in
  Mutex.lock t.m;
  while not (fits t bytes) do
    Condition.wait t.cv t.m
  done;
  t.used <- t.used + bytes;
  Mutex.unlock t.m;
  bytes

let try_reserve t ~bytes =
  let bytes = max 0 bytes in
  Mutex.lock t.m;
  let ok = fits t bytes in
  if ok then t.used <- t.used + bytes;
  Mutex.unlock t.m;
  if ok then Some bytes else None

let release t ~bytes =
  Mutex.lock t.m;
  t.used <- t.used - bytes;
  if t.used < 0 then begin
    (* A double release would otherwise let the budget admit more than
       its capacity forever after; clamp and keep going. *)
    t.used <- 0
  end;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

(* The bracket is the only safe way to hold a reservation across user
   code: [f] raising mid-execution (deadline expiry, injected fault, OOM)
   must release its bytes or every later reservation of overlapping size
   deadlocks against memory that no longer exists. *)
let with_reservation t ~bytes f =
  let bytes = reserve t ~bytes in
  Fun.protect ~finally:(fun () -> release t ~bytes) f
