(* Per-worker double-ended task queue for the Domain pool.

   The owner pushes and pops at the bottom (LIFO, so the hottest chunk
   stays cache-resident); thieves steal from the top (FIFO, so a steal
   takes the oldest — and for a split range, the largest-distance —
   chunk). Operations are serialized by a per-deque mutex: at the pool's
   scale (one deque per domain, chunk-granularity tasks) a lock-free
   Chase–Lev structure would save nanoseconds per operation against
   tasks that run for micro- to milliseconds, and the mutex keeps every
   interleaving trivially correct. *)

type 'a t = {
  mutable buf : 'a option array;  (** slot [i land (capacity - 1)] *)
  mutable top : int;  (** index of the oldest element (steal end) *)
  mutable bottom : int;  (** one past the newest element (owner end) *)
  lock : Mutex.t;
}

let create () =
  { buf = Array.make 16 None; top = 0; bottom = 0; lock = Mutex.create () }

let slot d i = i land (Array.length d.buf - 1)

(* Capacity is always a power of two; double it preserving positions. *)
let grow d =
  let old = d.buf in
  let n = Array.length old in
  let buf = Array.make (2 * n) None in
  for i = d.top to d.bottom - 1 do
    buf.(i land ((2 * n) - 1)) <- old.(i land (n - 1))
  done;
  d.buf <- buf

let push d x =
  Mutex.lock d.lock;
  if d.bottom - d.top = Array.length d.buf then grow d;
  d.buf.(slot d d.bottom) <- Some x;
  d.bottom <- d.bottom + 1;
  Mutex.unlock d.lock

let pop d =
  Mutex.lock d.lock;
  let r =
    if d.bottom = d.top then None
    else begin
      d.bottom <- d.bottom - 1;
      let i = slot d d.bottom in
      let x = d.buf.(i) in
      d.buf.(i) <- None;
      x
    end
  in
  Mutex.unlock d.lock;
  r

let steal d =
  Mutex.lock d.lock;
  let r =
    if d.bottom = d.top then None
    else begin
      let i = slot d d.top in
      let x = d.buf.(i) in
      d.buf.(i) <- None;
      d.top <- d.top + 1;
      x
    end
  in
  Mutex.unlock d.lock;
  r

let is_empty d =
  Mutex.lock d.lock;
  let r = d.bottom = d.top in
  Mutex.unlock d.lock;
  r
