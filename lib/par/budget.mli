(** Byte-denominated admission control for concurrent work.

    A reservation waits until its estimate fits under the budget next to
    in-flight reservations. Oversized requests are admitted when the
    budget is otherwise idle, so any workload a sequential run could
    execute still runs — the budget caps concurrency, not feasibility. *)

type t

val create : bytes:int -> t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val capacity : t -> int

val used : t -> int
(** Bytes currently reserved by in-flight work. *)

val with_reservation : t -> bytes:int -> (unit -> 'a) -> 'a
(** Blocks until [bytes] fits, runs the thunk, releases on any exit —
    including an exception raised mid-execution; a reservation can never
    leak. *)

val try_reserve : t -> bytes:int -> int option
(** Non-blocking admission: [Some granted] if the reservation fits right
    now (the serving layer's shed-instead-of-queue path), [None] if it
    would have to wait. A granted reservation must be paired with
    {!release} of the same byte count, normally via [Fun.protect]. *)

val reserve : t -> bytes:int -> int
(** Blocking admission; returns the granted byte count to pass to
    {!release}. Prefer {!with_reservation} — explicit pairs exist for
    callers whose acquire and release sites live in different events
    (the discrete-event server). *)

val release : t -> bytes:int -> unit
(** Release a prior {!reserve}/{!try_reserve}. Clamps at zero so a
    double release cannot inflate the budget's capacity. *)
