(** Byte-denominated admission control for concurrent work.

    A reservation waits until its estimate fits under the budget next to
    in-flight reservations. Oversized requests are admitted when the
    budget is otherwise idle, so any workload a sequential run could
    execute still runs — the budget caps concurrency, not feasibility. *)

type t

val create : bytes:int -> t
(** Raises [Invalid_argument] on a non-positive capacity. *)

val capacity : t -> int

val with_reservation : t -> bytes:int -> (unit -> 'a) -> 'a
(** Blocks until [bytes] fits, runs the thunk, releases on any exit. *)
