(** Work-stealing deque: the owner pushes/pops at the bottom (LIFO),
    thieves steal from the top (FIFO). Mutex-serialized — correct under
    any interleaving; the pool's tasks are chunk-sized, so lock cost is
    noise. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner: add at the bottom. *)

val pop : 'a t -> 'a option
(** Owner: take the most recently pushed element. *)

val steal : 'a t -> 'a option
(** Thief: take the oldest element. *)

val is_empty : 'a t -> bool
