module Engine = Genbase.Engine
module Query = Genbase.Query

type classification =
  | Match of { divergence : float }
  | Degraded_match of { divergence : float; recovery : Engine.recovery }
  | Mismatch of { divergence : float; detail : string }
  | Unsupported_cell
  | Engine_failed of string
  | Reference_failed of string
  | Both_failed of string

let reference = Genbase.Engine_r.engine

let tolerance_for ~engine (q : Query.t) =
  match (engine, q) with
  (* MADlib's SVD is an 8-step power iteration: only the head of the
     spectrum is resolved, to ~5%. *)
  | "Postgres + Madlib", Query.Q4_svd -> Compare.approximate
  (* Normal-equations regression (MADlib's streaming aggregate, Mahout's
     X'X assembly) squares the conditioning; agreement is ~1e-5, not
     bit-level. *)
  | "Postgres + Madlib", Query.Q1_regression -> Compare.numeric
  | "Hadoop", Query.Q1_regression -> Compare.numeric
  (* SQL / MapReduce covariance re-sums in a different order and its own
     Lanczos runs mat-vecs through simulated jobs. *)
  | "Postgres + Madlib", Query.Q2_covariance -> Compare.numeric
  | "Hadoop", (Query.Q2_covariance | Query.Q4_svd) -> Compare.numeric
  | "Postgres + Madlib", Query.Q5_statistics -> Compare.numeric
  (* Cluster engines partition rows across nodes and reduce partial sums
     in tree order; their distributed Lanczos matches to ~1e-5. *)
  | ("pbdR" | "SciDB + Xeon Phi" | "Column store + pbdR"), _ -> Compare.numeric
  | "Column store + UDFs", _ -> Compare.numeric
  | "SciDB", Query.Q4_svd -> Compare.numeric
  | _ -> Compare.strict

let whitelisted_unsupported ~engine (q : Query.t) =
  match (engine, q) with
  | "Postgres + Madlib", Query.Q3_biclustering -> true
  | "Hadoop", (Query.Q3_biclustering | Query.Q5_statistics) -> true
  | _ -> false

let outcome_text o = Format.asprintf "%a" Engine.pp_outcome o

let classify ?(tol = Compare.strict) ?p_threshold ~reference:ref_outcome
    outcome =
  match outcome with
  | Engine.Unsupported -> Unsupported_cell
  | _ -> (
    match (Engine.payload_of ref_outcome, Engine.payload_of outcome) with
    | None, None ->
      Both_failed
        (Printf.sprintf "reference: %s / engine: %s" (outcome_text ref_outcome)
           (outcome_text outcome))
    | None, Some _ -> Reference_failed (outcome_text ref_outcome)
    | Some _, None -> Engine_failed (outcome_text outcome)
    | Some ref_payload, Some payload -> (
      let verdict =
        Compare.compare_payload ~tol ?p_threshold ~reference:ref_payload
          payload
      in
      match (verdict, Engine.recovery_of outcome) with
      | Compare.Equivalent d, None -> Match { divergence = d }
      | Compare.Equivalent d, Some recovery ->
        Degraded_match { divergence = d; recovery }
      | Compare.Divergent { divergence; detail }, _ ->
        Mismatch { divergence; detail }
      | Compare.Incomparable detail, _ ->
        Mismatch { divergence = infinity; detail }))

let is_mismatch = function Mismatch _ -> true | _ -> false

let short_div d = if d = 0. then "0" else Printf.sprintf "%.0e" d

let label = function
  | Match { divergence } -> "ok " ^ short_div divergence
  | Degraded_match { divergence; _ } -> "dg " ^ short_div divergence
  | Mismatch _ -> "MISMATCH"
  | Unsupported_cell -> "n/s"
  | Engine_failed _ -> "fail"
  | Reference_failed _ -> "ref?"
  | Both_failed _ -> "--"

let describe = function
  | Match { divergence } ->
    Printf.sprintf "match (max divergence %.3e)" divergence
  | Degraded_match { divergence; recovery } ->
    Printf.sprintf
      "degraded but equal (max divergence %.3e; retries=%d recovered=%d \
       speculative=%d wasted=%.3fs)"
      divergence recovery.Engine.retries recovery.Engine.recovered_nodes
      recovery.Engine.speculative recovery.Engine.wasted_s
  | Mismatch { divergence; detail } ->
    Printf.sprintf "MISMATCH (divergence %.3e): %s" divergence detail
  | Unsupported_cell -> "unsupported"
  | Engine_failed s -> "engine failed: " ^ s
  | Reference_failed s -> "reference failed: " ^ s
  | Both_failed s -> "both failed: " ^ s
