(** The differential-testing oracle.

    Vanilla R is the golden reference: it is the most direct transcription
    of the benchmark's mathematical definitions (every phase runs through
    the shared {!Genbase.Qcommon} kernels on dense in-memory data, with no
    storage or communication layer in between). Every other engine's
    payload is checked against it under an (engine, query)-specific
    tolerance profile, and each grid cell is classified. *)

type classification =
  | Match of { divergence : float }
  | Degraded_match of { divergence : float; recovery : Genbase.Engine.recovery }
      (** the fault-tolerance machinery absorbed injected failures and the
          answer still agrees with the fault-free reference — the chaos
          grid's correctness requirement *)
  | Mismatch of { divergence : float; detail : string }
  | Unsupported_cell
      (** the engine reported [Unsupported]; legitimate only where the
          paper's support matrix says so (see {!whitelisted_unsupported}) *)
  | Engine_failed of string
      (** timeout / out-of-memory / error on the candidate side: not a
          conformance violation, but nothing was verified. [Errored]
          cells land here, matching their "infinite" classification in
          {!Genbase.Harness.total_seconds}. *)
  | Reference_failed of string
      (** the reference itself did not complete; the cell is vacuous *)
  | Both_failed of string
      (** both sides failed — e.g. a fuzzed parameter set produced a
          degenerate selection everywhere, or a doomed fault plan *)

val reference : Genbase.Engine.t
(** {!Genbase.Engine_r.engine}. *)

val tolerance_for : engine:string -> Genbase.Query.t -> Compare.tol
(** The comparison profile for one grid cell. Engines that reuse the
    reference kernels get {!Compare.strict}; engines recomputing through
    different kernels (normal equations, MapReduce summations) get
    {!Compare.numeric}; MADlib's power-iteration SVD gets
    {!Compare.approximate}. *)

val whitelisted_unsupported : engine:string -> Genbase.Query.t -> bool
(** The paper's support matrix: MADlib has no biclustering, Hadoop has
    neither biclustering nor the statistics query. An [Unsupported] from
    any other cell is a conformance failure. *)

val classify :
  ?tol:Compare.tol ->
  ?p_threshold:float ->
  reference:Genbase.Engine.outcome ->
  Genbase.Engine.outcome ->
  classification

val is_mismatch : classification -> bool
val label : classification -> string
(** Short fixed-width cell text for the conformance matrix, e.g.
    ["ok 3e-12"], ["dg 0"], ["MISMATCH"], ["n/s"]. *)

val describe : classification -> string
(** One-line diagnostic, including the mismatch detail. *)
