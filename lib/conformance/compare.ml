module Engine = Genbase.Engine

type tol = {
  rel_eps : float;
  cov_eps : float;
  spectral_eps : float;
  spectral_top : int;
  overlap_min : float;
  p_eps : float;
}

let strict =
  {
    rel_eps = 1e-8;
    cov_eps = 1e-8;
    spectral_eps = 1e-8;
    spectral_top = 0;
    overlap_min = 0.999;
    p_eps = 1e-8;
  }

let numeric =
  {
    rel_eps = 1e-5;
    cov_eps = 1e-5;
    spectral_eps = 1e-5;
    spectral_top = 0;
    overlap_min = 0.95;
    p_eps = 1e-6;
  }

let approximate = { numeric with spectral_eps = 0.05; spectral_top = 1 }

type verdict =
  | Equivalent of float
  | Divergent of { divergence : float; detail : string }
  | Incomparable of string

let equivalent = function Equivalent _ -> true | _ -> false

let divergence = function
  | Equivalent d -> d
  | Divergent { divergence; _ } -> divergence
  | Incomparable _ -> infinity

(* A verdict accumulator: collect the max divergence seen so far, flip to
   Divergent on the first check that exceeds its budget. *)
type acc = { mutable max_d : float; mutable failed : (float * string) option }

let fresh () = { max_d = 0.; failed = None }

let record acc d ~limit detail =
  acc.max_d <- Float.max acc.max_d d;
  if (not (d <= limit)) && acc.failed = None then
    (* [not (<=)] also trips on NaN divergence. *)
    acc.failed <- Some (d, detail ())

let fail acc detail = record acc infinity ~limit:0. detail

let close acc =
  match acc.failed with
  | None -> Equivalent acc.max_d
  | Some (d, detail) ->
    Divergent { divergence = Float.max d acc.max_d; detail }

let rel_diff a b =
  if Float.is_nan a || Float.is_nan b then
    if Float.is_nan a && Float.is_nan b then 0. else infinity
  else Float.abs (a -. b) /. Float.max 1. (Float.abs a)

(* --- regression --- *)

let compare_regression tol (a : Engine.payload) (b : Engine.payload) =
  match (a, b) with
  | ( Engine.Regression ra,
      Engine.Regression rb ) ->
    let acc = fresh () in
    if Array.length ra.coefficients <> Array.length rb.coefficients then
      fail acc (fun () ->
          Printf.sprintf "coefficient count %d vs %d"
            (Array.length ra.coefficients)
            (Array.length rb.coefficients))
    else begin
      record acc
        (rel_diff ra.intercept rb.intercept)
        ~limit:tol.rel_eps
        (fun () ->
          Printf.sprintf "intercept %.9g vs %.9g" ra.intercept rb.intercept);
      Array.iteri
        (fun i c ->
          record acc
            (rel_diff c rb.coefficients.(i))
            ~limit:tol.rel_eps
            (fun () ->
              Printf.sprintf "coefficient %d: %.9g vs %.9g" i c
                rb.coefficients.(i)))
        ra.coefficients;
      (* Some engines (Mahout) legitimately do not report R²; skip the
         check when either side is NaN. *)
      if not (Float.is_nan ra.r2 || Float.is_nan rb.r2) then
        record acc (rel_diff ra.r2 rb.r2) ~limit:tol.rel_eps (fun () ->
            Printf.sprintf "R² %.9g vs %.9g" ra.r2 rb.r2)
    end;
    close acc
  | _ -> assert false

(* --- covariance top pairs --- *)

let pair_key (a, b, _) = if a <= b then (a, b) else (b, a)

let compare_cov tol a b =
  match (a, b) with
  | Engine.Cov_pairs ca, Engine.Cov_pairs cb ->
    let acc = fresh () in
    if ca.n_genes <> cb.n_genes then
      fail acc (fun () ->
          Printf.sprintf "gene universe %d vs %d" ca.n_genes cb.n_genes)
    else begin
      let index pairs =
        let t = Hashtbl.create (List.length pairs) in
        List.iter (fun p -> Hashtbl.replace t (pair_key p) p) pairs;
        t
      in
      let ta = index ca.top_pairs and tb = index cb.top_pairs in
      let min_abs pairs =
        List.fold_left
          (fun m (_, _, v) -> Float.min m (Float.abs v))
          infinity pairs
      in
      (* A pair present on one side only is forgiven when its score sits
         within the tolerance of the other side's selection cutoff: the
         top-fraction boundary can legitimately flip on near-ties. *)
      let orphan key (_, _, v) other_cutoff =
        let d = rel_diff (Float.abs v) other_cutoff in
        record acc d ~limit:tol.cov_eps (fun () ->
            Printf.sprintf
              "pair (%d,%d) score %.9g on one side only (cutoff %.9g)"
              (fst key) (snd key) v other_cutoff)
      in
      let cutoff_a = min_abs ca.top_pairs and cutoff_b = min_abs cb.top_pairs in
      Hashtbl.iter
        (fun key p ->
          match Hashtbl.find_opt tb key with
          | None -> orphan key p cutoff_b
          | Some (_, _, vb) ->
            let _, _, va = p in
            record acc (rel_diff va vb) ~limit:tol.cov_eps (fun () ->
                Printf.sprintf "pair (%d,%d) score %.9g vs %.9g" (fst key)
                  (snd key) va vb))
        ta;
      Hashtbl.iter
        (fun key p ->
          if not (Hashtbl.mem ta key) then orphan key p cutoff_a)
        tb
    end;
    close acc
  | _ -> assert false

(* --- singular values --- *)

let compare_spectrum tol a b =
  match (a, b) with
  | Engine.Singular_values sa, Engine.Singular_values sb ->
    let acc = fresh () in
    let la = Array.length sa and lb = Array.length sb in
    let n =
      if tol.spectral_top > 0 then min tol.spectral_top (min la lb)
      else if la <> lb then begin
        fail acc (fun () -> Printf.sprintf "spectrum length %d vs %d" la lb);
        0
      end
      else la
    in
    let scale = if la > 0 then Float.max 1e-12 (Float.abs sa.(0)) else 1. in
    for i = 0 to n - 1 do
      let d = Float.abs (sa.(i) -. sb.(i)) /. scale in
      record acc d ~limit:tol.spectral_eps (fun () ->
          Printf.sprintf "singular value %d: %.9g vs %.9g" i sa.(i) sb.(i))
    done;
    close acc
  | _ -> assert false

(* --- biclusters --- *)

let jaccard a b =
  let sa = Hashtbl.create (Array.length a) in
  Array.iter (fun x -> Hashtbl.replace sa x ()) a;
  let inter = ref 0 in
  let sb = Hashtbl.create (Array.length b) in
  Array.iter
    (fun x ->
      if not (Hashtbl.mem sb x) then begin
        Hashtbl.replace sb x ();
        if Hashtbl.mem sa x then incr inter
      end)
    b;
  let union = Hashtbl.length sa + Hashtbl.length sb - !inter in
  if union = 0 then 1. else float_of_int !inter /. float_of_int union

let cluster_overlap (r1, c1, _) (r2, c2, _) =
  0.5 *. (jaccard r1 r2 +. jaccard c1 c2)

let compare_biclusters tol a b =
  match (a, b) with
  | Engine.Biclusters ba, Engine.Biclusters bb ->
    let acc = fresh () in
    let na = List.length ba.clusters and nb = List.length bb.clusters in
    if na <> nb then
      fail acc (fun () -> Printf.sprintf "cluster count %d vs %d" na nb)
    else begin
      (* Greedy best assignment: clusters may come out in a different
         order, so each reference cluster claims its best unmatched
         counterpart by row/column overlap. *)
      let remaining = ref bb.clusters in
      List.iteri
        (fun i ca ->
          match
            List.fold_left
              (fun best cb ->
                let o = cluster_overlap ca cb in
                match best with
                | Some (bo, _) when bo >= o -> best
                | _ -> Some (o, cb))
              None !remaining
          with
          | None -> ()
          | Some (o, cb) ->
            remaining := List.filter (fun c -> c != cb) !remaining;
            record acc (1. -. o)
              ~limit:(1. -. tol.overlap_min)
              (fun () ->
                Printf.sprintf "cluster %d best overlap %.3f < %.3f" i o
                  tol.overlap_min);
            let _, _, ma = ca and _, _, mb = cb in
            record acc (rel_diff ma mb) ~limit:tol.rel_eps (fun () ->
                Printf.sprintf "cluster %d MSR %.9g vs %.9g" i ma mb))
        ba.clusters
    end;
    close acc
  | _ -> assert false

(* --- enrichment --- *)

let compare_enrichment tol p_threshold a b =
  match (a, b) with
  | Engine.Enrichment ea, Engine.Enrichment eb ->
    let acc = fresh () in
    let index l =
      let t = Hashtbl.create (List.length l) in
      List.iter (fun (go, p) -> Hashtbl.replace t go p) l;
      t
    in
    let ta = index ea and tb = index eb in
    (* A term one side deems significant and the other does not is
       forgiven only when its p-value sits within the tolerance of the
       cutoff (a near-threshold flip). *)
    let orphan go p =
      let d =
        match p_threshold with
        | Some thr -> Float.abs (p -. thr)
        | None -> infinity
      in
      record acc d ~limit:tol.p_eps (fun () ->
          Printf.sprintf "GO %d (p=%.3e) significant on one side only" go p)
    in
    Hashtbl.iter
      (fun go pa ->
        match Hashtbl.find_opt tb go with
        | None -> orphan go pa
        | Some pb ->
          record acc (Float.abs (pa -. pb)) ~limit:tol.p_eps (fun () ->
              Printf.sprintf "GO %d p %.9e vs %.9e" go pa pb))
      ta;
    Hashtbl.iter (fun go pb -> if not (Hashtbl.mem ta go) then orphan go pb) tb;
    close acc
  | _ -> assert false

(* --- overlap pairs --- *)

(* Q6 is integer-exact: every engine's physical plan must reproduce the
   oracle's pair list bitwise, in the canonical (variant_id, gene_id)
   order. No tolerance applies — any difference is a divergence. *)
let compare_overlaps a b =
  match (a, b) with
  | Engine.Overlaps oa, Engine.Overlaps ob ->
    let acc = fresh () in
    if oa.n_variants <> ob.n_variants || oa.n_genes <> ob.n_genes then
      fail acc (fun () ->
          Printf.sprintf "interval universe %dx%d vs %dx%d" oa.n_variants
            oa.n_genes ob.n_variants ob.n_genes)
    else if List.length oa.pairs <> List.length ob.pairs then
      fail acc (fun () ->
          Printf.sprintf "pair count %d vs %d" (List.length oa.pairs)
            (List.length ob.pairs))
    else
      List.iteri
        (fun i ((v1, g1, l1), (v2, g2, l2)) ->
          if v1 <> v2 || g1 <> g2 || l1 <> l2 then
            fail acc (fun () ->
                Printf.sprintf "pair %d: (%d,%d,%d) vs (%d,%d,%d)" i v1 g1 l1
                  v2 g2 l2))
        (List.combine oa.pairs ob.pairs);
    close acc
  | _ -> assert false

let compare_payload ?(tol = strict) ?p_threshold ~reference candidate =
  match (reference, candidate) with
  | Engine.Regression _, Engine.Regression _ ->
    compare_regression tol reference candidate
  | Engine.Cov_pairs _, Engine.Cov_pairs _ -> compare_cov tol reference candidate
  | Engine.Singular_values _, Engine.Singular_values _ ->
    compare_spectrum tol reference candidate
  | Engine.Biclusters _, Engine.Biclusters _ ->
    compare_biclusters tol reference candidate
  | Engine.Enrichment _, Engine.Enrichment _ ->
    compare_enrichment tol p_threshold reference candidate
  | Engine.Overlaps _, Engine.Overlaps _ ->
    compare_overlaps reference candidate
  | _ ->
    Incomparable
      (Printf.sprintf "payload kind %s vs %s"
         (Engine.payload_kind reference)
         (Engine.payload_kind candidate))

(* --- canonical fingerprint --- *)

let fingerprint payload =
  let buf = Buffer.create 512 in
  let f x = Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float x)) in
  let i x =
    Buffer.add_string buf (string_of_int x);
    Buffer.add_char buf ';'
  in
  (match payload with
  | Engine.Regression r ->
    Buffer.add_string buf "regression:";
    f r.intercept;
    Array.iter f r.coefficients;
    f r.r2
  | Engine.Cov_pairs c ->
    Buffer.add_string buf "cov_pairs:";
    i c.n_genes;
    List.iter
      (fun (a, b, v) ->
        i a;
        i b;
        f v)
      c.top_pairs
  | Engine.Biclusters b ->
    Buffer.add_string buf "biclusters:";
    List.iter
      (fun (rows, cols, msr) ->
        Array.iter i rows;
        Buffer.add_char buf '|';
        Array.iter i cols;
        Buffer.add_char buf '|';
        f msr)
      b.clusters
  | Engine.Singular_values s ->
    Buffer.add_string buf "singular_values:";
    Array.iter f s
  | Engine.Enrichment e ->
    Buffer.add_string buf "enrichment:";
    List.iter
      (fun (go, p) ->
        i go;
        f p)
      e
  | Engine.Overlaps o ->
    Buffer.add_string buf "overlaps:";
    i o.n_variants;
    i o.n_genes;
    List.iter
      (fun (v, g, len) ->
        i v;
        i g;
        i len)
      o.pairs);
  Digest.to_hex (Digest.string (Buffer.contents buf))
