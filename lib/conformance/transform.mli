(** Semantics-preserving data-set transforms for metamorphic testing.

    These need no oracle at all: the benchmark queries are defined over
    the *set* of patients, so relabeling patient ids (and permuting the
    expression rows to match) must leave every answer unchanged up to
    floating-point reassociation. A query whose answer moves under a
    patient permutation has a bug, whichever engine ran it. *)

val permute_patients : perm:int array -> Genbase.Dataset.t -> Genbase.Dataset.t
(** [permute_patients ~perm ds] relabels patient [p] as [perm.(p)]: the
    expression row, the patient record (with its [patient_id] rewritten)
    and the planted bicluster membership all move together, so the
    transformed data set describes the same cohort under new ids. [perm]
    must be a permutation of [0 .. patients-1] ([Invalid_argument]
    otherwise). *)

val shuffle_patients :
  ?fixed_prefix:int -> seed:int64 -> Genbase.Dataset.t -> Genbase.Dataset.t
(** A seeded random {!permute_patients}. [fixed_prefix] (default [0])
    keeps the first [k] patients within the first [k] positions — the Q5
    sampling rule deterministically takes the id prefix, so shuffling
    within the sample and within the remainder separately preserves the
    sample *set* while still exercising row order. *)

val dataset_fingerprint : Genbase.Dataset.t -> string
(** Canonical hex digest of everything the generator produced, bit-exact
    on floats. Equal fingerprints mean bit-identical data sets; guards
    the PRNG and generator against accidental nondeterminism across
    process runs. *)
