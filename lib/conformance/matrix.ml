module Engine = Genbase.Engine
module Query = Genbase.Query
module Harness = Genbase.Harness
module Dataset = Genbase.Dataset
module Spec = Gb_datagen.Spec
module Prng = Gb_util.Prng
module Render = Gb_util.Render

type cell = {
  engine : string;
  nodes : int;
  query : Query.t;
  seed : int64;
  fuzzed : bool;
  payload : string;  (* Engine.payload_kind of the tested outcome, or "" *)
  classification : Oracle.classification;
}

type config = {
  spec : Spec.t;
  seeds : int64 list;
  timeout_s : float;
  fuzz : bool;
  progress : (string -> unit) option;
}

(* The payload kind of the engine-under-test's outcome, for the CSV. *)
let payload_of = function
  | Engine.Completed (_, p) | Engine.Degraded (_, _, p) ->
    Engine.payload_kind p
  | Engine.Timed_out | Engine.Out_of_memory | Engine.Errored _
  | Engine.Unsupported ->
    ""

let seeds_from ~base n =
  let g = Prng.create base in
  base
  :: List.init (max 0 (n - 1)) (fun _ ->
         Int64.logand (Prng.next_int64 g) 0x7FFF_FFFF_FFFF_FFFFL)

let default_config =
  {
    spec = Spec.of_size Spec.Small;
    seeds = seeds_from ~base:0x6E0BA5EL 3;
    timeout_s = 60.;
    fuzz = true;
    progress = None;
  }

let quick_config = { default_config with timeout_s = 30. }

let note config fmt =
  Printf.ksprintf
    (fun s -> match config.progress with None -> () | Some f -> f s)
    fmt

(* Each seed's run: the base (first) seed keeps the paper's default
   parameters; later seeds fuzz them, so the grid sweeps parameter space
   as well as data. *)
let seed_runs config =
  List.mapi
    (fun i seed ->
      let fuzzed = config.fuzz && i > 0 in
      let params =
        if fuzzed then Genqc.params_of_seed seed else Query.default_params
      in
      let ds = Dataset.generate ~seed config.spec in
      (seed, fuzzed, params, ds))
    config.seeds

let default_engines =
  List.filter
    (fun e -> e.Engine.name <> Oracle.reference.Engine.name)
    Harness.single_node_engines
  @ [ Genbase.Engine_phi.engine ]

(* Unsupported is only conforming where the paper's support matrix says
   so; anywhere else it means the engine silently dropped a query. *)
let police_unsupported ~engine ~query = function
  | Oracle.Unsupported_cell when not (Oracle.whitelisted_unsupported ~engine query)
    ->
    Oracle.Mismatch
      { divergence = infinity; detail = "unexpected Unsupported outcome" }
  | c -> c

let differential ?(engines = default_engines) config =
  List.concat_map
    (fun (seed, fuzzed, params, ds) ->
      let reference_outcomes =
        List.map
          (fun q ->
            ( q,
              Engine.run Oracle.reference ds q ~params
                ~timeout_s:config.timeout_s () ))
          Query.all
      in
      List.concat_map
        (fun e ->
          List.map
            (fun query ->
              let outcome =
                Engine.run e ds query ~params ~timeout_s:config.timeout_s ()
              in
              let tol = Oracle.tolerance_for ~engine:e.Engine.name query in
              let classification =
                Oracle.classify ~tol ~p_threshold:params.Query.p_threshold
                  ~reference:(List.assoc query reference_outcomes)
                  outcome
                |> police_unsupported ~engine:e.Engine.name ~query
              in
              note config "seed %Ld | %s | %s: %s" seed (Query.name query)
                e.Engine.name
                (Oracle.describe classification);
              {
                engine = e.Engine.name;
                nodes = 1;
                query;
                seed;
                fuzzed;
                payload = payload_of outcome;
                classification;
              })
            Query.all)
        engines)
    (seed_runs config)

let chaos_conformance ?(chaos = Harness.default_chaos) ?(node_counts = [ 2; 4 ])
    config =
  List.concat_map
    (fun (seed, fuzzed, params, ds) ->
      List.concat_map
        (fun nodes ->
          let clean = Harness.multi_node_engines ~nodes in
          let armed = Harness.chaos_engines chaos ~nodes in
          List.concat_map
            (fun (e_clean, e_armed) ->
              assert (e_clean.Engine.name = e_armed.Engine.name);
              List.map
                (fun query ->
                  let reference =
                    Engine.run e_clean ds query ~params
                      ~timeout_s:config.timeout_s ()
                  in
                  let outcome =
                    Engine.run e_armed ds query ~params
                      ~timeout_s:config.timeout_s ()
                  in
                  let tol =
                    Oracle.tolerance_for ~engine:e_clean.Engine.name query
                  in
                  let classification =
                    Oracle.classify ~tol
                      ~p_threshold:params.Query.p_threshold ~reference outcome
                    |> police_unsupported ~engine:e_clean.Engine.name ~query
                  in
                  note config "seed %Ld | n=%d | %s | %s: %s" seed nodes
                    (Query.name query) e_clean.Engine.name
                    (Oracle.describe classification);
                  {
                    engine = e_clean.Engine.name;
                    nodes;
                    query;
                    seed;
                    fuzzed;
                    payload = payload_of outcome;
                    classification;
                  })
                Query.all)
            (List.combine clean armed))
        node_counts)
    (seed_runs config)

(* --- rendering --- *)

let groups cells =
  List.fold_left
    (fun acc c ->
      let key = (c.seed, c.nodes) in
      if List.mem key acc then acc else acc @ [ key ])
    [] cells

let engines_of cells =
  List.fold_left
    (fun acc c -> if List.mem c.engine acc then acc else acc @ [ c.engine ])
    [] cells

let render cells =
  groups cells
  |> List.map (fun (seed, nodes) ->
         let group =
           List.filter (fun c -> c.seed = seed && c.nodes = nodes) cells
         in
         let fuzzed = List.exists (fun c -> c.fuzzed) group in
         let rows =
           List.map
             (fun engine ->
               engine
               :: List.map
                    (fun q ->
                      match
                        List.find_opt
                          (fun c -> c.engine = engine && c.query = q)
                          group
                      with
                      | None -> "-"
                      | Some c -> Oracle.label c.classification)
                    Query.all)
             (engines_of group)
         in
         Printf.sprintf "Conformance matrix (seed %Ld%s%s)\n%s" seed
           (if nodes > 1 then Printf.sprintf ", %d nodes" nodes else "")
           (if fuzzed then ", fuzzed params" else "")
           (Render.table
              ~headers:("Engine" :: List.map Query.name Query.all)
              ~rows))
  |> String.concat "\n"

let status_name = function
  | Oracle.Match _ -> "match"
  | Oracle.Degraded_match _ -> "degraded-match"
  | Oracle.Mismatch _ -> "mismatch"
  | Oracle.Unsupported_cell -> "unsupported"
  | Oracle.Engine_failed _ -> "engine-failed"
  | Oracle.Reference_failed _ -> "reference-failed"
  | Oracle.Both_failed _ -> "both-failed"

let mismatches cells =
  List.filter (fun c -> Oracle.is_mismatch c.classification) cells

let conforming cells = mismatches cells = []

let summary cells =
  let count name =
    List.length
      (List.filter (fun c -> status_name c.classification = name) cells)
  in
  let max_div =
    List.fold_left
      (fun m c ->
        match c.classification with
        | Oracle.Match { divergence } | Oracle.Degraded_match { divergence; _ }
          ->
          Float.max m divergence
        | _ -> m)
      0. cells
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "%d cells: %d match, %d degraded-match, %d mismatch, %d unsupported, \
        %d engine-failed, %d reference-failed, %d both-failed\n\
        max divergence among matches: %.3e\n"
       (List.length cells) (count "match")
       (count "degraded-match")
       (count "mismatch") (count "unsupported") (count "engine-failed")
       (count "reference-failed") (count "both-failed") max_div);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  MISMATCH %s / %s / seed %Ld%s: %s\n" c.engine
           (Query.name c.query) c.seed
           (if c.nodes > 1 then Printf.sprintf " / %d nodes" c.nodes else "")
           (Oracle.describe c.classification)))
    (mismatches cells);
  Buffer.contents buf

let csv_escape s =
  String.map (function ',' -> ';' | '\n' -> ' ' | c -> c) s

let to_csv cells =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "engine,nodes,query,seed,fuzzed,payload,status,divergence,detail\n";
  List.iter
    (fun c ->
      let divergence, detail =
        match c.classification with
        | Oracle.Match { divergence } -> (Printf.sprintf "%.9e" divergence, "")
        | Oracle.Degraded_match { divergence; _ } ->
          (Printf.sprintf "%.9e" divergence, Oracle.describe c.classification)
        | Oracle.Mismatch { divergence; detail } ->
          (Printf.sprintf "%.9e" divergence, detail)
        | Oracle.Unsupported_cell -> ("", "")
        | Oracle.Engine_failed s | Oracle.Reference_failed s
        | Oracle.Both_failed s ->
          ("", s)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%s,%Ld,%b,%s,%s,%s,%s\n" (csv_escape c.engine)
           c.nodes (Query.name c.query) c.seed c.fuzzed c.payload
           (status_name c.classification)
           divergence (csv_escape detail)))
    cells;
  Buffer.contents buf
