module G = Gb_datagen.Generate
module Mat = Gb_linalg.Mat
module Prng = Gb_util.Prng

let check_perm perm n =
  if Array.length perm <> n then
    invalid_arg "Transform.permute_patients: length";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Transform.permute_patients: not a permutation";
      seen.(p) <- true)
    perm

let permute_patients ~perm (ds : Genbase.Dataset.t) =
  let n = Array.length ds.G.patients in
  check_perm perm n;
  (* [perm] maps old id -> new id; build the inverse so row [j] of the new
     expression matrix is the old row of the patient now labeled [j]. *)
  let old_of = Array.make n 0 in
  Array.iteri (fun old_id new_id -> old_of.(new_id) <- old_id) perm;
  let expression = Mat.sub_rows ds.G.expression old_of in
  let patients =
    Array.init n (fun j -> { ds.G.patients.(old_of.(j)) with G.patient_id = j })
  in
  let bicluster_rows =
    Array.map (fun p -> perm.(p)) ds.G.planted.G.bicluster_rows
  in
  Array.sort compare bicluster_rows;
  { ds with G.expression; patients; planted = { ds.G.planted with G.bicluster_rows } }

let shuffle_patients ?(fixed_prefix = 0) ~seed (ds : Genbase.Dataset.t) =
  let n = Array.length ds.G.patients in
  let k = max 0 (min fixed_prefix n) in
  let rng = Prng.create seed in
  let perm = Array.init n Fun.id in
  (* Shuffle the prefix and the remainder independently so the first [k]
     ids remain the first [k] ids (in some order). *)
  let head = Array.sub perm 0 k and tail = Array.sub perm k (n - k) in
  Prng.shuffle rng head;
  Prng.shuffle rng tail;
  Array.blit head 0 perm 0 k;
  Array.blit tail 0 perm k (n - k);
  permute_patients ~perm ds

let dataset_fingerprint (ds : Genbase.Dataset.t) =
  let buf = Buffer.create 4096 in
  let f x = Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float x)) in
  let i x =
    Buffer.add_string buf (string_of_int x);
    Buffer.add_char buf ';'
  in
  let spec = ds.G.spec in
  i spec.Gb_datagen.Spec.genes;
  i spec.Gb_datagen.Spec.patients;
  i spec.Gb_datagen.Spec.go_terms;
  i spec.Gb_datagen.Spec.diseases;
  let rows, cols = Mat.dims ds.G.expression in
  i rows;
  i cols;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      f (Mat.get ds.G.expression r c)
    done
  done;
  Array.iter
    (fun (p : G.patient) ->
      i p.patient_id;
      i p.age;
      i p.gender;
      i p.zipcode;
      i p.disease_id;
      f p.drug_response)
    ds.G.patients;
  Array.iter
    (fun (g : G.gene) ->
      i g.gene_id;
      i g.target;
      i g.position;
      i g.length;
      i g.func)
    ds.G.genes;
  Array.iter
    (fun (v : G.variant) ->
      i v.variant_id;
      i v.vstart;
      i v.vlen)
    ds.G.variants;
  Array.iter
    (fun (gene, term) ->
      i gene;
      i term)
    ds.G.go;
  Array.iter i ds.G.planted.G.signal_genes;
  Array.iter f ds.G.planted.G.signal_coefs;
  f ds.G.planted.G.signal_intercept;
  Array.iter i ds.G.planted.G.bicluster_rows;
  Array.iter i ds.G.planted.G.bicluster_cols;
  Array.iter i ds.G.planted.G.enriched_terms;
  Digest.to_hex (Digest.string (Buffer.contents buf))
