(** Seeded qcheck generators for benchmark inputs.

    The conformance grid and the metamorphic property tests fuzz the data
    set shape ({!Gb_datagen.Spec}) and the query parameters rather than
    pinning the paper's defaults. Ranges are constrained so every draw is
    well-posed on small data: selections stay non-empty, regression
    systems stay overdetermined, and thresholds stay inside the ranges
    the generator actually plants signal in. *)

val spec_gen : Gb_datagen.Spec.t QCheck.Gen.t
(** Tiny custom specs (tens of genes, a few hundred patients) with
    [patients >= 2 * genes] so every derived least-squares system has
    more rows than columns. *)

val params_gen : Genbase.Query.params QCheck.Gen.t
(** Fuzzes [func_threshold], [disease_id], [max_age], [cov_top_fraction],
    [svd_k], [sample_fraction] and [p_threshold] inside safe ranges;
    [gender] stays at the default (the planted bicluster's cohort). *)

val seed_gen : int64 QCheck.Gen.t
(** Positive generator seeds. *)

val arb_spec : Gb_datagen.Spec.t QCheck.arbitrary
val arb_params : Genbase.Query.params QCheck.arbitrary
val arb_seed : int64 QCheck.arbitrary

val params_of_seed : int64 -> Genbase.Query.params
(** Deterministic draw from {!params_gen}: the conformance grid derives
    each non-base seed's parameter set this way, so a grid is a pure
    function of its seed list. *)

val print_params : Genbase.Query.params -> string
