(** Tolerance-aware comparators over {!Genbase.Engine.payload}.

    The benchmark's premise is that every system configuration answers the
    same five queries; the timing figures are only meaningful if the
    answers agree. Floating-point answers computed through different
    storage layouts, summation orders and kernels can never be compared
    bit-for-bit, so each payload kind gets its own notion of equivalence:

    - regression: intercept, coefficients and R² within a relative epsilon
      (an unreported R² — NaN, as Hadoop's Mahout path returns — is
      skipped on either side);
    - covariance top-pairs: order-insensitive set of gene pairs, scores
      within epsilon, with pairs sitting within epsilon of the selection
      cutoff forgiven on either side (near-ties at the top-fraction
      boundary legitimately flip);
    - singular values: within a spectral epsilon relative to the leading
      singular value (optionally only the first [spectral_top] values, for
      power-iteration engines that only resolve the head of the spectrum);
    - biclusters: matched by greedy best assignment on mean row/column
      Jaccard overlap, mean squared residue within the relative epsilon;
    - enrichment: order-insensitive on (go_id, p) with a p-value epsilon;
      terms within epsilon of the significance threshold are forgiven. *)

type tol = {
  rel_eps : float;  (** regression intercept/coefficients/R², relative *)
  cov_eps : float;  (** covariance scores and cutoff slack, relative *)
  spectral_eps : float;  (** singular values, relative to the leading one *)
  spectral_top : int;
      (** compare only the first [n] singular values; [0] compares all and
          requires equal lengths *)
  overlap_min : float;  (** minimum mean Jaccard overlap per bicluster *)
  p_eps : float;  (** enrichment p-values, absolute *)
}

val strict : tol
(** For engines sharing the reference kernels: agreement to ~1e-8. *)

val numeric : tol
(** For engines recomputing the same answer through different kernels
    (normal equations, MapReduce summation orders): agreement to ~1e-5. *)

val approximate : tol
(** For genuinely approximate algorithms (MADlib's 8-step power
    iteration): 5% on the leading singular value only. *)

type verdict =
  | Equivalent of float  (** max divergence observed, within tolerance *)
  | Divergent of { divergence : float; detail : string }
  | Incomparable of string  (** payload kinds differ *)

val equivalent : verdict -> bool
val divergence : verdict -> float
(** [infinity] for [Incomparable]. *)

val compare_payload :
  ?tol:tol ->
  ?p_threshold:float ->
  reference:Genbase.Engine.payload ->
  Genbase.Engine.payload ->
  verdict
(** [compare_payload ~reference candidate] under [tol] (default
    {!strict}). [p_threshold] is the enrichment significance cutoff the
    query ran with; when given, terms whose p-value sits within [p_eps] of
    it may appear on one side only without divergence. *)

val fingerprint : Genbase.Engine.payload -> string
(** Canonical hex digest of a payload, bit-exact on floats (via
    {!Int64.bits_of_float}); two payloads fingerprint equally iff they are
    structurally identical. Guards seed-stability across process runs. *)
