module Spec = Gb_datagen.Spec
module Query = Genbase.Query
module Gen = QCheck.Gen

let spec_gen =
  Gen.(
    int_range 24 60 >>= fun genes ->
    int_range (2 * genes) 220 >|= fun patients -> Spec.custom ~genes ~patients)

(* Ranges chosen so every draw selects enough rows/columns on the tiny
   specs above: func_threshold keeps 15–40% of genes (and so fewer
   columns than patients), disease ids stay in the dense low range, the
   age cutoff keeps a workable young cohort for biclustering. *)
let params_gen =
  Gen.(
    int_range 150 400 >>= fun func_threshold ->
    int_range 1 2 >>= fun disease_id ->
    int_range 38 60 >>= fun max_age ->
    float_range 0.05 0.20 >>= fun cov_top_fraction ->
    int_range 5 40 >>= fun svd_k ->
    float_range 0.05 0.25 >>= fun sample_fraction ->
    float_range 0.01 0.10 >|= fun p_threshold ->
    {
      Query.default_params with
      Query.func_threshold;
      disease_id;
      max_age;
      cov_top_fraction;
      svd_k;
      sample_fraction;
      p_threshold;
    })

let seed_gen = Gen.(int_range 1 0x3FFFFFFF >|= Int64.of_int)

let print_params (p : Query.params) =
  Printf.sprintf
    "{func<%d; disease=%d; age<%d; gender=%d; top=%.3f; k=%d; sample=%.3f; \
     p<%.3f}"
    p.Query.func_threshold p.Query.disease_id p.Query.max_age p.Query.gender
    p.Query.cov_top_fraction p.Query.svd_k p.Query.sample_fraction
    p.Query.p_threshold

let print_spec s =
  Printf.sprintf "%d genes x %d patients" s.Spec.genes s.Spec.patients

let arb_spec = QCheck.make ~print:print_spec spec_gen
let arb_params = QCheck.make ~print:print_params params_gen
let arb_seed = QCheck.make ~print:Int64.to_string seed_gen

let params_of_seed seed =
  (* Fold the seed into a Random.State so a grid cell's fuzzed parameters
     are a pure function of its seed. *)
  let lo = Int64.to_int (Int64.logand seed 0x3FFFFFFFL) in
  let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical seed 30) 0x3FFFFFFFL) in
  let st = Random.State.make [| lo; hi; 0x9E3779B9 |] in
  Gen.generate1 ~rand:st params_gen
