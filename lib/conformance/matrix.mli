(** Conformance grids: engines x queries x seeds, each cell classified
    against the oracle and rendered as a matrix / CSV for CI.

    Two grids are provided. {!differential} checks every single-node
    engine against the Vanilla R reference on freshly generated data sets
    (one per seed; non-base seeds also fuzz the query parameters through
    {!Genqc}). {!chaos_conformance} re-runs the multi-node engines under
    the harness's deterministic fault plans and checks each (possibly
    degraded) answer against the same engine's fault-free run — turning
    the chaos grid from an availability report into a correctness check. *)

type cell = {
  engine : string;
  nodes : int;
  query : Genbase.Query.t;
  seed : int64;
  fuzzed : bool;  (** parameters drawn from {!Genqc.params_of_seed} *)
  payload : string;
      (** {!Genbase.Engine.payload_kind} of the tested outcome, [""] when
          the engine produced no payload *)
  classification : Oracle.classification;
}

type config = {
  spec : Gb_datagen.Spec.t;
  seeds : int64 list;
  timeout_s : float;
  fuzz : bool;
      (** fuzz query parameters on every seed after the first; the first
          seed always runs the paper's default parameters *)
  progress : (string -> unit) option;
}

val default_config : config
val quick_config : config
(** Small spec, 3 seeds, short timeout — what [genbase conformance
    --quick] and CI run. *)

val seeds_from : base:int64 -> int -> int64 list
(** [base] followed by [n-1] SplitMix-derived seeds. *)

val differential : ?engines:Genbase.Engine.t list -> config -> cell list
(** Engines default to every single-node engine except the reference,
    plus the Xeon Phi configuration. An [Unsupported] outcome outside
    {!Oracle.whitelisted_unsupported} is converted to a mismatch. *)

val chaos_conformance :
  ?chaos:Genbase.Harness.chaos -> ?node_counts:int list -> config -> cell list
(** For each node count (default [[2; 4]]), runs every multi-node engine
    clean and under its {!Genbase.Harness.chaos_plan}, and classifies the
    faulty run against the clean one. Degraded-but-equal cells classify
    as {!Oracle.Degraded_match}. *)

val render : cell list -> string
(** One table per (seed, node count): engines x queries with per-cell
    classification and max divergence. *)

val summary : cell list -> string
(** Totals per classification plus one line per mismatch. *)

val to_csv : cell list -> string
(** [engine,nodes,query,seed,fuzzed,status,divergence,detail] — the CI
    artifact. *)

val mismatches : cell list -> cell list
val conforming : cell list -> bool
(** No mismatch cells (whitelisted [Unsupported] and failed-but-isolated
    cells do not count against conformance). *)
