module Sim = Gb_util.Clock.Sim

type kernel_class = Blas3 | Blas2 | Stat | Light

type t = {
  name : string;
  pcie_latency_s : float;
  pcie_bandwidth_bps : float;
  memory_bytes : int;
  speedup : kernel_class -> float;
}

(* Device memory is scaled by the same factor as the data sets (the paper's
   8 GB / the 625x cell scale-down, rounded so the large set still fits, as
   observed in the paper). *)
let xeon_phi_5110p =
  {
    name = "Intel Xeon Phi 5110P (simulated)";
    pcie_latency_s = 20e-6;
    pcie_bandwidth_bps = 6e9;
    memory_bytes = 16 * 1024 * 1024;
    speedup =
      (function Blas3 -> 2.8 | Blas2 -> 3.1 | Stat -> 1.45 | Light -> 1.2);
  }

let transfer_time t ~bytes =
  let base = t.pcie_latency_s +. (float_of_int bytes /. t.pcie_bandwidth_bps) in
  if bytes <= t.memory_bytes then base
  else begin
    (* Working set exceeds device memory: excess pages stream back and
       forth during the computation. *)
    let excess = bytes - t.memory_bytes in
    base +. (3. *. float_of_int excess /. t.pcie_bandwidth_bps)
  end

let c_pcie_bytes = Gb_obs.Metric.counter ~unit_:"byte" "device.pcie_bytes"

let offload t clock ~bytes_in ~bytes_out cls f =
  Gb_obs.Metric.add c_pcie_bytes (bytes_in + bytes_out);
  let t_in = Sim.now clock in
  Sim.advance clock (transfer_time t ~bytes:bytes_in);
  let t_kernel = Sim.now clock in
  let result = Sim.run_scaled clock ~speedup:(t.speedup cls) f in
  let t_out = Sim.now clock in
  Sim.advance clock (transfer_time t ~bytes:bytes_out);
  Gb_obs.Obs.Span.emit ~cat:"device" ~name:"pcie:in"
    ~attrs:[ ("bytes", Gb_obs.Obs.Int bytes_in) ]
    ~t0:t_in ~t1:t_kernel ();
  Gb_obs.Obs.Span.emit ~cat:"device" ~name:"device:kernel"
    ~attrs:[ ("speedup", Gb_obs.Obs.Float (t.speedup cls)) ]
    ~t0:t_kernel ~t1:t_out ();
  Gb_obs.Obs.Span.emit ~cat:"device" ~name:"pcie:out"
    ~attrs:[ ("bytes", Gb_obs.Obs.Int bytes_out) ]
    ~t0:t_out ~t1:(Sim.now clock) ();
  result

let host_time clock f = Sim.run_measured clock f
