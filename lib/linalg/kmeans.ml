type result = {
  assignments : int array;
  centroids : Mat.t;
  inertia : float;
  iterations : int;
}

let sq_dist m i (c : Mat.t) j =
  let acc = ref 0. in
  for d = 0 to m.Mat.cols - 1 do
    let diff = Mat.unsafe_get m i d -. Mat.unsafe_get c j d in
    acc := !acc +. (diff *. diff)
  done;
  !acc

(* k-means++ seeding: each next center drawn with probability proportional
   to squared distance from the nearest chosen center. *)
let seed rng ~k m =
  let n = m.Mat.rows in
  let centers = Mat.create k m.Mat.cols in
  let first = Gb_util.Prng.int rng n in
  for d = 0 to m.Mat.cols - 1 do
    Mat.unsafe_set centers 0 d (Mat.unsafe_get m first d)
  done;
  let dist = Array.init n (fun i -> sq_dist m i centers 0) in
  for c = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0. dist in
    let chosen =
      if total <= 0. then Gb_util.Prng.int rng n
      else begin
        let target = Gb_util.Prng.float rng total in
        let acc = ref 0. and pick = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if !acc >= target then begin
                 pick := i;
                 raise Exit
               end)
             dist
         with Exit -> ());
        !pick
      end
    in
    for d = 0 to m.Mat.cols - 1 do
      Mat.unsafe_set centers c d (Mat.unsafe_get m chosen d)
    done;
    Array.iteri
      (fun i old -> dist.(i) <- Float.min old (sq_dist m i centers c))
      dist
  done;
  centers

let lloyd ?(max_iter = 100) ~k m centers =
  let n = m.Mat.rows and dims = m.Mat.cols in
  let assignments = Array.make n 0 in
  let iterations = ref 0 in
  let changed = ref true in
  while !changed && !iterations < max_iter do
    Gb_util.Deadline.Ambient.checkpoint ();
    incr iterations;
    changed := false;
    (* Assignment step. *)
    for i = 0 to n - 1 do
      let best = ref 0 and best_d = ref (sq_dist m i centers 0) in
      for c = 1 to k - 1 do
        let d = sq_dist m i centers c in
        if d < !best_d then begin
          best := c;
          best_d := d
        end
      done;
      if assignments.(i) <> !best then begin
        assignments.(i) <- !best;
        changed := true
      end
    done;
    (* Update step (empty clusters keep their previous centroid). *)
    let counts = Array.make k 0 in
    let sums = Mat.create k dims in
    for i = 0 to n - 1 do
      let c = assignments.(i) in
      counts.(c) <- counts.(c) + 1;
      for d = 0 to dims - 1 do
        Mat.unsafe_set sums c d (Mat.unsafe_get sums c d +. Mat.unsafe_get m i d)
      done
    done;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        for d = 0 to dims - 1 do
          Mat.unsafe_set centers c d
            (Mat.unsafe_get sums c d /. float_of_int counts.(c))
        done
    done
  done;
  let inertia = ref 0. in
  for i = 0 to n - 1 do
    inertia := !inertia +. sq_dist m i centers assignments.(i)
  done;
  (assignments, !inertia, !iterations)

let fit ?rng ?max_iter ?(restarts = 4) ~k m =
  if k < 1 || k > m.Mat.rows then invalid_arg "Kmeans.fit: k";
  let rng =
    match rng with Some r -> r | None -> Gb_util.Prng.create 0x63A25L
  in
  let best = ref None in
  for _ = 1 to max 1 restarts do
    let centers = seed rng ~k m in
    let assignments, inertia, iterations = lloyd ?max_iter ~k m centers in
    match !best with
    | Some b when b.inertia <= inertia -> ()
    | _ -> best := Some { assignments; centroids = centers; inertia; iterations }
  done;
  Option.get !best
