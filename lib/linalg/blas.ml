module A = Bigarray.Array1
module Pool = Gb_par.Pool

let flops = Gb_obs.Metric.counter ~unit_:"flop" "linalg.flops"
let fi = float_of_int

(* Parallelism notes. Every kernel below runs on the shared Domain pool
   via [Pool.parallel_for] / [Pool.map_reduce]; with one domain (the
   default) those calls collapse to a single inline invocation of the
   body over the whole range — the exact sequential loops this file has
   always had, bitwise.

   Every kernel here partitions over its *output* elements (rows of C
   for gemv/gemm/aat, output rows for atb/ata, output columns for
   gemv_t), keeping each element's accumulation order fixed regardless
   of the partition — so results are bitwise identical to sequential at
   ANY domain count, and the golden digests never move. True
   tree-reductions (Pool.map_reduce) are deterministic per domain count
   but reassociate float sums, so the analytics kernels avoid them. *)

let gemv (m : Mat.t) x =
  if Array.length x <> m.cols then invalid_arg "Blas.gemv: dimension";
  Gb_obs.Metric.addf flops (2. *. fi m.rows *. fi m.cols);
  let y = Array.make m.rows 0. in
  let data = m.data in
  Pool.parallel_for ~grain:64 ~lo:0 ~hi:m.rows (fun r_lo r_hi ->
      for i = r_lo to r_hi - 1 do
        let base = i * m.cols in
        let acc = ref 0. in
        for j = 0 to m.cols - 1 do
          acc := !acc +. (A.unsafe_get data (base + j) *. Array.unsafe_get x j)
        done;
        y.(i) <- !acc
      done);
  y

(* y <- A^T x. Sequentially this is a sum of scaled rows; splitting the
   row loop would reassociate each y[j]'s sum. Instead each lane owns a
   band of output columns and runs the row loop itself — every y[j]
   still accumulates its terms in i-ascending order, so the result is
   bitwise independent of the domain count, and one lane over the whole
   column range is the original kernel. *)
let gemv_t (m : Mat.t) x =
  if Array.length x <> m.rows then invalid_arg "Blas.gemv_t: dimension";
  Gb_obs.Metric.addf flops (2. *. fi m.rows *. fi m.cols);
  let y = Array.make m.cols 0. in
  let data = m.data in
  Pool.parallel_for ~grain:16 ~lo:0 ~hi:m.cols (fun j_lo j_hi ->
      for i = 0 to m.rows - 1 do
        let base = i * m.cols in
        let xi = Array.unsafe_get x i in
        if xi <> 0. then
          for j = j_lo to j_hi - 1 do
            Array.unsafe_set y j
              (Array.unsafe_get y j +. (xi *. A.unsafe_get data (base + j)))
          done
      done);
  y

let block = 64

(* C <- A B, i-k-j loop order blocked on all three dimensions: the inner j
   loop is a contiguous axpy over rows of B and C, which keeps the memory
   access pattern sequential for the row-major layout. Parallelized over
   row bands of C: each band owns its rows of C outright, and a fixed
   row's accumulation order (kk blocks ascending, p ascending within) is
   independent of which band it lands in, so any partition — including
   one band covering everything — produces the same bits. *)
let gemm (a : Mat.t) (b : Mat.t) =
  if a.cols <> b.rows then invalid_arg "Blas.gemm: dimension";
  let m = a.rows and k = a.cols and n = b.cols in
  Gb_obs.Metric.addf flops (2. *. fi m *. fi k *. fi n);
  let c = Mat.create m n in
  let ad = a.data and bd = b.data and cd = c.data in
  Pool.parallel_for ~grain:block ~lo:0 ~hi:m (fun r_lo r_hi ->
      let ii = ref r_lo in
      while !ii < r_hi do
        Gb_util.Deadline.Ambient.checkpoint ();
        let i_hi = min r_hi (!ii + block) in
        let kk = ref 0 in
        while !kk < k do
          let k_hi = min k (!kk + block) in
          let jj = ref 0 in
          while !jj < n do
            let j_hi = min n (!jj + block) in
            for i = !ii to i_hi - 1 do
              let a_base = i * k and c_base = i * n in
              for p = !kk to k_hi - 1 do
                let aip = A.unsafe_get ad (a_base + p) in
                if aip <> 0. then begin
                  let b_base = p * n in
                  for j = !jj to j_hi - 1 do
                    A.unsafe_set cd (c_base + j)
                      (A.unsafe_get cd (c_base + j)
                      +. (aip *. A.unsafe_get bd (b_base + j)))
                  done
                end
              done
            done;
            jj := j_hi
          done;
          kk := k_hi
        done;
        ii := i_hi
      done);
  c

let gemm_naive (a : Mat.t) (b : Mat.t) =
  if a.cols <> b.rows then invalid_arg "Blas.gemm_naive: dimension";
  Gb_obs.Metric.addf flops (2. *. fi a.rows *. fi a.cols *. fi b.cols);
  let c = Mat.create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.cols - 1 do
      let acc = ref 0. in
      for p = 0 to a.cols - 1 do
        acc := !acc +. (Mat.get a i p *. Mat.get b p j)
      done;
      Mat.set c i j !acc
    done
  done;
  c

(* C <- A^T B. Sequentially this accumulates row i of A's outer product
   A[i,:]^T B[i,:] for i ascending. Parallelized over *output* rows p
   (each lane owns C rows [p_lo, p_hi)) with i kept as the outer loop
   inside the lane: every C[p,j] still accumulates its k terms in
   i-ascending order, so the result is bitwise independent of the
   partition, and one lane covering [0, m) is the original loop nest. *)
let atb (a : Mat.t) (b : Mat.t) =
  if a.rows <> b.rows then invalid_arg "Blas.atb: dimension";
  let k = a.rows and m = a.cols and n = b.cols in
  Gb_obs.Metric.addf flops (2. *. fi k *. fi m *. fi n);
  let c = Mat.create m n in
  let ad = a.data and bd = b.data and cd = c.data in
  Pool.parallel_for ~grain:8 ~lo:0 ~hi:m (fun p_lo p_hi ->
      for i = 0 to k - 1 do
        if i land 255 = 0 then Gb_util.Deadline.Ambient.checkpoint ();
        let a_base = i * m and b_base = i * n in
        for p = p_lo to p_hi - 1 do
          let aip = A.unsafe_get ad (a_base + p) in
          if aip <> 0. then begin
            let c_base = p * n in
            for j = 0 to n - 1 do
              A.unsafe_set cd (c_base + j)
                (A.unsafe_get cd (c_base + j)
                +. (aip *. A.unsafe_get bd (b_base + j)))
            done
          end
        done
      done);
  c

let ata a = atb a a

(* Each (i, j >= i) dot product writes exactly C[i,j] and C[j,i], and no
   other (i', j') pair touches either — partitioning over i is safe even
   though the mirrored writes land outside the lane's own row band. *)
let aat (a : Mat.t) =
  let m = a.rows and k = a.cols in
  Gb_obs.Metric.addf flops (fi m *. fi m *. fi k);
  let c = Mat.create m m in
  let ad = a.data in
  Pool.parallel_for ~grain:8 ~lo:0 ~hi:m (fun r_lo r_hi ->
      for i = r_lo to r_hi - 1 do
        let bi = i * k in
        for j = i to m - 1 do
          let bj = j * k in
          let acc = ref 0. in
          for p = 0 to k - 1 do
            acc := !acc +. (A.unsafe_get ad (bi + p) *. A.unsafe_get ad (bj + p))
          done;
          Mat.unsafe_set c i j !acc;
          Mat.unsafe_set c j i !acc
        done
      done);
  c
