(** Mergeable second-moment sketches (Welford / Chan et al.).

    A sketch over [d]-dimensional observations carries the count, the
    running column means and the centered co-moment matrix
    [M2 = sum (x - mean)(x - mean)^T]. Rows can be added one at a time
    (rank-1 Welford update), removed (downdate, for in-place cell
    updates), and two sketches over disjoint row sets can be merged —
    the algebra behind the streaming maintainers for the covariance and
    regression queries: covariance is [M2 / (n - 1)] regardless of the
    order rows arrived in or how they were batched. *)

type t

val create : int -> t
(** Empty sketch over [d]-dimensional rows. *)

val of_matrix : Mat.t -> t
(** Sketch equivalent to adding every row of [m] in order, computed by
    the blocked two-pass kernels ([Mat.col_means] + [Blas.ata] of the
    centered matrix) — the fast path for initializing a maintainer from
    a large base table. *)

val copy : t -> t
(** Deep copy (checkpointing maintainer state). *)

val dim : t -> int
val count : t -> int

val add_row : t -> float array -> unit
(** Rank-1 Welford update with one observation. *)

val remove_row : t -> float array -> unit
(** Downdate: removes one previously-added observation. The sketch must
    contain at least one row. Numerically this is the inverse of
    {!add_row}; removing a row that was never added leaves the sketch
    describing whatever multiset remains algebraically. *)

val merge : t -> t -> t
(** Pairwise merge of sketches over disjoint row sets (Chan's parallel
    update). Dimensions must agree. Neither argument is mutated. *)

val means : t -> float array
(** Copy of the current column means (zeros when empty). *)

val m2 : t -> Mat.t
(** Copy of the centered co-moment matrix [sum (x-mean)(x-mean)^T]. *)

val covariance : t -> Mat.t
(** Sample covariance [M2 / (n - 1)]. Requires [count >= 2]. *)

type regression = {
  intercept : float;
  coefficients : float array;
  r_squared : float;
}

val regression : t -> regression
(** Treat the last column as the response and the first [d - 1] columns
    as predictors; solve the centered normal equations
    [M2_xx b = M2_xy] by Cholesky. Requires [count > dim]. *)
