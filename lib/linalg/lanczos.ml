type result = {
  eigenvalues : float array;
  eigenvectors : Mat.t;
  iterations : int;
}

(* One full-reorthogonalization Lanczos sweep building at most [max_iter]
   basis vectors, then a Ritz extraction from the tridiagonal matrix. *)
let iters = Gb_obs.Metric.counter ~unit_:"iteration" "linalg.lanczos_iters"

let symmetric ?rng ?max_iter ?(tol = 1e-10) ~n ~k apply =
  if k <= 0 || k > n then invalid_arg "Lanczos.symmetric: bad k";
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"lanczos.symmetric"
    ~attrs:[ ("n", Gb_obs.Obs.Int n); ("k", Gb_obs.Obs.Int k) ]
  @@ fun () ->
  let rng =
    match rng with Some r -> r | None -> Gb_util.Prng.create 0x1a2c05L
  in
  let max_iter =
    match max_iter with Some m -> min m n | None -> min n (max (3 * k) (k + 20))
  in
  let basis = Array.make max_iter [||] in
  let alphas = Array.make max_iter 0. in
  let betas = Array.make max_iter 0. in
  let v = Array.init n (fun _ -> Gb_util.Prng.normal rng) in
  let v = Vec.normalize v in
  basis.(0) <- v;
  let m = ref 0 in
  (try
     for j = 0 to max_iter - 1 do
       (* Raises Timeout, not Exit, so it escapes the early-exit
          handler below and cancels the whole sweep. *)
       Gb_util.Deadline.Ambient.checkpoint ();
       m := j + 1;
       let w = apply basis.(j) in
       if Array.length w <> n then invalid_arg "Lanczos: operator dimension";
       let alpha = Vec.dot w basis.(j) in
       alphas.(j) <- alpha;
       Vec.axpy (-.alpha) basis.(j) w;
       if j > 0 then Vec.axpy (-.betas.(j - 1)) basis.(j - 1) w;
       (* Full reorthogonalization against all previous basis vectors. *)
       for i = 0 to j do
         let c = Vec.dot w basis.(i) in
         Vec.axpy (-.c) basis.(i) w
       done;
       let beta = Vec.nrm2 w in
       if j + 1 < max_iter then begin
         if beta < tol then raise Exit;
         betas.(j) <- beta;
         basis.(j + 1) <- Vec.scale (1. /. beta) w
       end
     done
   with Exit -> ());
  let m = !m in
  Gb_obs.Metric.add iters m;
  let diag = Array.sub alphas 0 m in
  let off = Array.sub betas 0 (max 0 (m - 1)) in
  let values, vectors = Tridiag.eigen diag off in
  let k = min k m in
  let eigenvalues = Array.sub values 0 k in
  (* Ritz vectors: columns of V * S for the top-k columns of S. *)
  let eigenvectors =
    Mat.init n k (fun row col ->
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (basis.(i).(row) *. Mat.unsafe_get vectors i col)
        done;
        !acc)
  in
  { eigenvalues; eigenvectors; iterations = m }

let top_eigen ?rng a k =
  let n, n2 = Mat.dims a in
  if n <> n2 then invalid_arg "Lanczos.top_eigen: not square";
  symmetric ?rng ~n ~k (fun v -> Blas.gemv a v)
