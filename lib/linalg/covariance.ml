let scale_factor rows =
  if rows < 2 then invalid_arg "Covariance: need at least two rows";
  1. /. float_of_int (rows - 1)

let matrix m =
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"covariance.matrix"
    ~attrs:[ ("rows", Gb_obs.Obs.Int m.Mat.rows); ("cols", Gb_obs.Obs.Int m.Mat.cols) ]
  @@ fun () ->
  let centered = Mat.center_cols m in
  Mat.scale (scale_factor m.Mat.rows) (Blas.ata centered)

let matrix_naive m =
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"covariance.matrix_naive"
    ~attrs:[ ("rows", Gb_obs.Obs.Int m.Mat.rows); ("cols", Gb_obs.Obs.Int m.Mat.cols) ]
  @@ fun () ->
  let centered = Mat.center_cols m in
  let t = Mat.transpose centered in
  Mat.scale (scale_factor m.Mat.rows) (Blas.gemm_naive t centered)

let upper_pairs c =
  let n = c.Mat.cols in
  let out = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out := (i, j, Mat.unsafe_get c i j) :: !out
    done
  done;
  !out

let by_abs_desc (_, _, a) (_, _, b) = Float.compare (Float.abs b) (Float.abs a)

let pairs_above c t =
  upper_pairs c
  |> List.filter (fun (_, _, v) -> Float.abs v >= t)
  |> List.sort by_abs_desc

let top_fraction c q =
  let all = List.sort by_abs_desc (upper_pairs c) in
  let n = List.length all in
  let keep = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.filteri (fun i _ -> i < keep) all
