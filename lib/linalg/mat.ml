module A = Bigarray.Array1

type t = {
  rows : int;
  cols : int;
  data : (float, Bigarray.float64_elt, Bigarray.c_layout) A.t;
}

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  let data = A.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  A.fill data 0.;
  { rows; cols; data }

let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.get: out of bounds";
  A.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg "Mat.set: out of bounds";
  A.unsafe_set m.data ((i * m.cols) + j) v

let unsafe_get m i j = A.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j v = A.unsafe_set m.data ((i * m.cols) + j) v

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      unsafe_set m i j (f i j)
    done
  done;
  m

let copy m =
  let c = create m.rows m.cols in
  A.blit m.data c.data;
  c

let fill m v = A.fill m.data v

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let rows = Array.length a in
  let cols = if rows = 0 then 0 else Array.length a.(0) in
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged")
    a;
  init rows cols (fun i j -> a.(i).(j))

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> unsafe_get m i j))

let row m i = Array.init m.cols (fun j -> get m i j)
let col m j = Array.init m.rows (fun i -> get m i j)

let set_row m i r =
  if Array.length r <> m.cols then invalid_arg "Mat.set_row: length";
  for j = 0 to m.cols - 1 do
    set m i j r.(j)
  done

let transpose m = init m.cols m.rows (fun i j -> unsafe_get m j i)

let sub_rows m idx =
  let out = create (Array.length idx) m.cols in
  Array.iteri
    (fun k i ->
      if i < 0 || i >= m.rows then invalid_arg "Mat.sub_rows: index";
      for j = 0 to m.cols - 1 do
        unsafe_set out k j (unsafe_get m i j)
      done)
    idx;
  out

let sub_cols m idx =
  let out = create m.rows (Array.length idx) in
  Array.iteri
    (fun k j ->
      if j < 0 || j >= m.cols then invalid_arg "Mat.sub_cols: index";
      for i = 0 to m.rows - 1 do
        unsafe_set out i k (unsafe_get m i j)
      done)
    idx;
  out

let map f m =
  let out = create m.rows m.cols in
  let n = m.rows * m.cols in
  for k = 0 to n - 1 do
    A.unsafe_set out.data k (f (A.unsafe_get m.data k))
  done;
  out

let iteri f m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      f i j (unsafe_get m i j)
    done
  done

let lift2 op a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat: dimension mismatch";
  let out = create a.rows a.cols in
  let n = a.rows * a.cols in
  for k = 0 to n - 1 do
    A.unsafe_set out.data k (op (A.unsafe_get a.data k) (A.unsafe_get b.data k))
  done;
  out

let add = lift2 ( +. )
let sub = lift2 ( -. )
let scale s m = map (fun x -> s *. x) m

let col_means m =
  let means = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      means.(j) <- means.(j) +. unsafe_get m i j
    done
  done;
  let n = float_of_int (max 1 m.rows) in
  Array.map (fun s -> s /. n) means

(* Row bands write disjoint output and read only [means], so the
   centered matrix is bitwise independent of the domain count. *)
let center_cols m =
  let means = col_means m in
  let out = create m.rows m.cols in
  Gb_par.Pool.parallel_for ~grain:64 ~lo:0 ~hi:m.rows (fun r_lo r_hi ->
      for i = r_lo to r_hi - 1 do
        for j = 0 to m.cols - 1 do
          unsafe_set out i j (unsafe_get m i j -. means.(j))
        done
      done);
  out

let frobenius m =
  let acc = ref 0. in
  let n = m.rows * m.cols in
  for k = 0 to n - 1 do
    let v = A.unsafe_get m.data k in
    acc := !acc +. (v *. v)
  done;
  sqrt !acc

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.max_abs_diff: dimension mismatch";
  let worst = ref 0. in
  let n = a.rows * a.cols in
  for k = 0 to n - 1 do
    let d = Float.abs (A.unsafe_get a.data k -. A.unsafe_get b.data k) in
    if d > !worst then worst := d
  done;
  !worst

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= eps

let random rng rows cols = init rows cols (fun _ _ -> Gb_util.Prng.normal rng)

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to min 7 (m.rows - 1) do
    Format.fprintf fmt "@[<h>";
    for j = 0 to min 7 (m.cols - 1) do
      Format.fprintf fmt "%10.4f " (unsafe_get m i j)
    done;
    if m.cols > 8 then Format.fprintf fmt "...";
    Format.fprintf fmt "@]@,"
  done;
  if m.rows > 8 then Format.fprintf fmt "...@,";
  Format.fprintf fmt "(%dx%d)@]" m.rows m.cols
