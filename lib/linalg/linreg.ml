type model = {
  intercept : float;
  coefficients : float array;
  r_squared : float;
  residual_norm : float;
}

let with_intercept x =
  let m, n = Mat.dims x in
  Mat.init m (n + 1) (fun i j -> if j = 0 then 1. else Mat.unsafe_get x i (j - 1))

let assess x y intercept coef =
  let m, _ = Mat.dims x in
  let mean_y = Vec.mean y in
  let ss_tot = ref 0. and ss_res = ref 0. in
  for i = 0 to m - 1 do
    let pred = ref intercept in
    for j = 0 to Array.length coef - 1 do
      pred := !pred +. (coef.(j) *. Mat.unsafe_get x i j)
    done;
    let r = y.(i) -. !pred in
    ss_res := !ss_res +. (r *. r);
    let d = y.(i) -. mean_y in
    ss_tot := !ss_tot +. (d *. d)
  done;
  let r2 = if !ss_tot = 0. then 1. else 1. -. (!ss_res /. !ss_tot) in
  (r2, sqrt !ss_res)

let fit x y =
  let m, n = Mat.dims x in
  if Array.length y <> m then invalid_arg "Linreg.fit: length";
  if m <= n then invalid_arg "Linreg.fit: underdetermined";
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"linreg.fit"
    ~attrs:[ ("rows", Gb_obs.Obs.Int m); ("cols", Gb_obs.Obs.Int n) ]
  @@ fun () ->
  let xa = with_intercept x in
  let beta = Qr.least_squares xa y in
  let intercept = beta.(0) in
  let coefficients = Array.sub beta 1 n in
  let r_squared, residual_norm = assess x y intercept coefficients in
  { intercept; coefficients; r_squared; residual_norm }


let fit_normal_equations x y =
  let m, n = Mat.dims x in
  if Array.length y <> m then invalid_arg "Linreg.fit_normal_equations: length";
  if m <= n then invalid_arg "Linreg.fit_normal_equations: underdetermined";
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"linreg.normal_equations"
    ~attrs:[ ("rows", Gb_obs.Obs.Int m); ("cols", Gb_obs.Obs.Int n) ]
  @@ fun () ->
  let xa = with_intercept x in
  let xtx = Blas.ata xa in
  let xty = Blas.gemv_t xa y in
  let beta = Solve.cholesky xtx xty in
  let intercept = beta.(0) in
  let coefficients = Array.sub beta 1 n in
  let r_squared, residual_norm = assess x y intercept coefficients in
  { intercept; coefficients; r_squared; residual_norm }

let predict m row =
  if Array.length row <> Array.length m.coefficients then
    invalid_arg "Linreg.predict: length";
  m.intercept +. Vec.dot m.coefficients row
