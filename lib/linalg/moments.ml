(* Mergeable second-moment sketches.

   Invariant: [mean] holds the column means of every row added so far
   and [m2] the centered co-moments [sum (x - mean)(x - mean)^T], both
   exact up to float rounding. Welford's rank-1 form keeps the update
   numerically stable (no catastrophic cancellation of raw sums), and
   Chan's pairwise rule makes sketches over disjoint row sets merge into
   exactly the sketch of the union — the property the streaming
   maintainers and the qcheck batching laws lean on. *)

type t = {
  d : int;
  mutable n : int;
  mean : float array;
  mutable m2 : Mat.t; (* d x d, symmetric *)
}

let create d = { d; n = 0; mean = Array.make d 0.0; m2 = Mat.create d d }

let dim t = t.d
let count t = t.n

let copy t =
  { d = t.d; n = t.n; mean = Array.copy t.mean; m2 = Mat.copy t.m2 }

let check_dim t row =
  if Array.length row <> t.d then
    invalid_arg
      (Printf.sprintf "Moments: row has %d columns, sketch has %d"
         (Array.length row) t.d)

(* Scratch-free rank-1 update: mean' = mean + delta/n', and
   M2 += (x - mean) (x - mean')^T using the pre- and post-update
   deviations (the asymmetric form is exact, not an approximation). *)
let add_row t row =
  check_dim t row;
  let d = t.d in
  let n' = t.n + 1 in
  let delta = Array.make d 0.0 in
  for j = 0 to d - 1 do
    delta.(j) <- row.(j) -. t.mean.(j);
    t.mean.(j) <- t.mean.(j) +. (delta.(j) /. float_of_int n')
  done;
  let m2 = t.m2 in
  for i = 0 to d - 1 do
    let di = delta.(i) in
    for j = 0 to d - 1 do
      Mat.unsafe_set m2 i j
        (Mat.unsafe_get m2 i j +. (di *. (row.(j) -. t.mean.(j))))
    done
  done;
  t.n <- n'

(* Exact inverse of [add_row]: recover the pre-update mean, then
   subtract the same asymmetric outer product. *)
let remove_row t row =
  check_dim t row;
  if t.n < 1 then invalid_arg "Moments.remove_row: empty sketch";
  let d = t.d in
  let n' = t.n - 1 in
  if n' = 0 then begin
    Array.fill t.mean 0 d 0.0;
    Mat.fill t.m2 0.0;
    t.n <- 0
  end
  else begin
    let delta = Array.make d 0.0 in
    let post = Array.make d 0.0 in
    (* post = x - mean_n (deviation from the current mean);
       mean_old = (n * mean - x) / (n - 1); delta = x - mean_old.
       The added product was (x - mean_old)(x - mean_n)^T — subtract
       exactly that, not delta delta^T (which overshoots by n/(n-1)). *)
    for j = 0 to d - 1 do
      post.(j) <- row.(j) -. t.mean.(j);
      let mean_old =
        ((float_of_int t.n *. t.mean.(j)) -. row.(j)) /. float_of_int n'
      in
      delta.(j) <- row.(j) -. mean_old;
      t.mean.(j) <- mean_old
    done;
    let m2 = t.m2 in
    for i = 0 to d - 1 do
      let di = delta.(i) in
      for j = 0 to d - 1 do
        Mat.unsafe_set m2 i j (Mat.unsafe_get m2 i j -. (di *. post.(j)))
      done
    done;
    t.n <- n'
  end

let merge a b =
  if a.d <> b.d then invalid_arg "Moments.merge: dimension mismatch";
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let d = a.d in
    let na = float_of_int a.n and nb = float_of_int b.n in
    let nab = na +. nb in
    let out = create d in
    out.n <- a.n + b.n;
    let delta = Array.make d 0.0 in
    for j = 0 to d - 1 do
      delta.(j) <- b.mean.(j) -. a.mean.(j);
      out.mean.(j) <- a.mean.(j) +. (delta.(j) *. nb /. nab)
    done;
    let w = na *. nb /. nab in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        Mat.unsafe_set out.m2 i j
          (Mat.unsafe_get a.m2 i j
          +. Mat.unsafe_get b.m2 i j
          +. (w *. delta.(i) *. delta.(j)))
      done
    done;
    out
  end

let of_matrix m =
  let rows, d = Mat.dims m in
  let t = create d in
  if rows > 0 then begin
    let mean = Mat.col_means m in
    Array.blit mean 0 t.mean 0 d;
    t.m2 <- Blas.ata (Mat.center_cols m);
    t.n <- rows
  end;
  t

let means t = Array.copy t.mean
let m2 t = Mat.copy t.m2

let covariance t =
  if t.n < 2 then invalid_arg "Moments.covariance: need at least two rows";
  Mat.scale (1.0 /. float_of_int (t.n - 1)) t.m2

type regression = {
  intercept : float;
  coefficients : float array;
  r_squared : float;
}

(* Centered normal equations: with y the last column,
   M2_xx b = M2_xy, intercept = mean_y - b . mean_x,
   ss_res = M2_yy - b . M2_xy, R^2 = 1 - ss_res / M2_yy.
   The 1/(n-1) scale cancels, so we solve on M2 directly. *)
let regression t =
  let d = t.d - 1 in
  if d < 1 then invalid_arg "Moments.regression: need a predictor column";
  if t.n <= t.d then
    invalid_arg "Moments.regression: need more rows than columns";
  let m2xx = Mat.init d d (fun i j -> Mat.get t.m2 i j) in
  let m2xy = Array.init d (fun i -> Mat.get t.m2 i d) in
  let beta = Solve.cholesky m2xx m2xy in
  let intercept = ref t.mean.(d) in
  for j = 0 to d - 1 do
    intercept := !intercept -. (beta.(j) *. t.mean.(j))
  done;
  let ss_tot = Mat.get t.m2 d d in
  let ss_res =
    let s = ref ss_tot in
    for j = 0 to d - 1 do
      s := !s -. (beta.(j) *. m2xy.(j))
    done;
    !s
  in
  let r_squared = if ss_tot <= 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { intercept = !intercept; coefficients = beta; r_squared }
