type t = {
  a : Mat.t; (* R in the upper triangle, reflector tails below it *)
  betas : float array; (* per-column Householder scaling factors *)
  m : int;
  n : int;
}

(* Column j of [a] below the diagonal stores v_j (with v_j[j] implicitly 1);
   H_j = I - beta_j v_j v_j^T. *)
let factorize src =
  let m, n = Mat.dims src in
  if m < n then invalid_arg "Qr.factorize: rows < cols";
  let fm = float_of_int m and fn = float_of_int n in
  Gb_obs.Metric.addf
    (Gb_obs.Metric.counter ~unit_:"flop" "linalg.flops")
    ((2. *. fm *. fn *. fn) -. (2. /. 3. *. fn *. fn *. fn));
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"qr.factorize"
    ~attrs:[ ("rows", Gb_obs.Obs.Int m); ("cols", Gb_obs.Obs.Int n) ]
  @@ fun () ->
  let a = Mat.copy src in
  let betas = Array.make n 0. in
  for j = 0 to n - 1 do
    Gb_util.Deadline.Ambient.checkpoint ();
    (* Norm of the trailing part of column j. *)
    let sigma = ref 0. in
    for i = j to m - 1 do
      let v = Mat.unsafe_get a i j in
      sigma := !sigma +. (v *. v)
    done;
    let norm = sqrt !sigma in
    if norm > 0. then begin
      let ajj = Mat.unsafe_get a j j in
      let alpha = if ajj >= 0. then -.norm else norm in
      let v0 = ajj -. alpha in
      (* With the tail scaled by 1/v0 so v[j] = 1, the reflector scaling is
         beta = 2/(v'v') = -v0/alpha. *)
      betas.(j) <- -.v0 /. alpha;
      (* Scale the tail so v[j] = 1 is implicit. *)
      for i = j + 1 to m - 1 do
        Mat.unsafe_set a i j (Mat.unsafe_get a i j /. v0)
      done;
      Mat.unsafe_set a j j alpha;
      (* Apply H_j to the remaining columns. Each trailing column k only
         reads the (frozen) reflector column j and writes itself, so the
         panel update partitions over k; per-column arithmetic is
         unchanged by the partition, keeping the factorization bitwise
         identical at any domain count. *)
      Gb_par.Pool.parallel_for ~grain:8 ~lo:(j + 1) ~hi:n (fun k_lo k_hi ->
          for k = k_lo to k_hi - 1 do
            let dot = ref (Mat.unsafe_get a j k) in
            for i = j + 1 to m - 1 do
              dot := !dot +. (Mat.unsafe_get a i j *. Mat.unsafe_get a i k)
            done;
            let s = betas.(j) *. !dot in
            Mat.unsafe_set a j k (Mat.unsafe_get a j k -. s);
            for i = j + 1 to m - 1 do
              Mat.unsafe_set a i k
                (Mat.unsafe_get a i k -. (s *. Mat.unsafe_get a i j))
            done
          done)
    end
  done;
  { a; betas; m; n }

let r t =
  Mat.init t.n t.n (fun i j -> if j >= i then Mat.get t.a i j else 0.)

(* Apply Q^T (the product of reflectors) to a length-m vector in place. *)
let apply_qt t b =
  for j = 0 to t.n - 1 do
    if t.betas.(j) <> 0. then begin
      let dot = ref b.(j) in
      for i = j + 1 to t.m - 1 do
        dot := !dot +. (Mat.unsafe_get t.a i j *. b.(i))
      done;
      let s = t.betas.(j) *. !dot in
      b.(j) <- b.(j) -. s;
      for i = j + 1 to t.m - 1 do
        b.(i) <- b.(i) -. (s *. Mat.unsafe_get t.a i j)
      done
    end
  done

(* Apply Q to a length-m vector in place (reflectors in reverse order). *)
let apply_q t b =
  for j = t.n - 1 downto 0 do
    if t.betas.(j) <> 0. then begin
      let dot = ref b.(j) in
      for i = j + 1 to t.m - 1 do
        dot := !dot +. (Mat.unsafe_get t.a i j *. b.(i))
      done;
      let s = t.betas.(j) *. !dot in
      b.(j) <- b.(j) -. s;
      for i = j + 1 to t.m - 1 do
        b.(i) <- b.(i) -. (s *. Mat.unsafe_get t.a i j)
      done
    end
  done

(* Columns of Q are independent applications of the reflectors to basis
   vectors; each lane keeps a private scratch vector and owns its output
   columns. *)
let q t =
  let out = Mat.create t.m t.n in
  Gb_par.Pool.parallel_for ~grain:8 ~lo:0 ~hi:t.n (fun k_lo k_hi ->
      let e = Array.make t.m 0. in
      for k = k_lo to k_hi - 1 do
        Array.fill e 0 t.m 0.;
        e.(k) <- 1.;
        apply_q t e;
        for i = 0 to t.m - 1 do
          Mat.unsafe_set out i k e.(i)
        done
      done);
  out

let solve t b =
  if Array.length b <> t.m then invalid_arg "Qr.solve: length";
  let y = Array.copy b in
  apply_qt t y;
  let x = Array.make t.n 0. in
  for i = t.n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to t.n - 1 do
      acc := !acc -. (Mat.unsafe_get t.a i j *. x.(j))
    done;
    let d = Mat.unsafe_get t.a i i in
    if Float.abs d < 1e-12 then failwith "Qr.solve: rank deficient";
    x.(i) <- !acc /. d
  done;
  x

let least_squares a b = solve (factorize a) b
