type t = { u : Mat.t; s : float array; vt : Mat.t }

let top_k ?rng m k =
  let rows, cols = Mat.dims m in
  if rows = 0 || cols = 0 then invalid_arg "Svd.top_k: empty matrix";
  let k = max 1 (min k (min rows cols)) in
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"svd.top_k"
    ~attrs:
      [
        ("rows", Gb_obs.Obs.Int rows);
        ("cols", Gb_obs.Obs.Int cols);
        ("k", Gb_obs.Obs.Int k);
      ]
  @@ fun () ->
  if cols <= rows then begin
    (* Lanczos on M^T M (cols x cols), applied implicitly. *)
    let apply v = Blas.gemv_t m (Blas.gemv m v) in
    let res = Lanczos.symmetric ?rng ~n:cols ~k apply in
    let s = Array.map (fun ev -> sqrt (Float.max 0. ev)) res.Lanczos.eigenvalues in
    let k = Array.length s in
    let v = res.Lanczos.eigenvectors in
    (* u_i = M v_i / s_i *)
    let u = Mat.create rows k in
    for i = 0 to k - 1 do
      let vi = Mat.col v i in
      let mv = Blas.gemv m vi in
      let si = s.(i) in
      let ui = if si > 1e-12 then Vec.scale (1. /. si) mv else mv in
      for r = 0 to rows - 1 do
        Mat.unsafe_set u r i ui.(r)
      done
    done;
    { u; s; vt = Mat.transpose v }
  end
  else begin
    (* Lanczos on M M^T (rows x rows). *)
    let apply v = Blas.gemv m (Blas.gemv_t m v) in
    let res = Lanczos.symmetric ?rng ~n:rows ~k apply in
    let s = Array.map (fun ev -> sqrt (Float.max 0. ev)) res.Lanczos.eigenvalues in
    let k = Array.length s in
    let u = res.Lanczos.eigenvectors in
    let vt = Mat.create k cols in
    for i = 0 to k - 1 do
      let ui = Mat.col u i in
      let mtu = Blas.gemv_t m ui in
      let si = s.(i) in
      let vi = if si > 1e-12 then Vec.scale (1. /. si) mtu else mtu in
      for c = 0 to cols - 1 do
        Mat.unsafe_set vt i c vi.(c)
      done
    done;
    { u; s; vt }
  end

let reconstruct t =
  let k = Array.length t.s in
  let us =
    Mat.init t.u.Mat.rows k (fun i j -> Mat.unsafe_get t.u i j *. t.s.(j))
  in
  Blas.gemm us t.vt

let reconstruction_error m t = Mat.frobenius (Mat.sub m (reconstruct t))
