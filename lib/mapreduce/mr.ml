module Sim = Gb_util.Clock.Sim
module Stopwatch = Gb_util.Clock.Stopwatch
module Fault = Gb_fault.Fault
module Obs = Gb_obs.Obs
module Metric = Gb_obs.Metric

let c_jobs = Metric.counter ~unit_:"job" "mr.jobs"
let c_shuffle_bytes = Metric.counter ~unit_:"byte" "mr.shuffle_bytes"
let c_retries = Metric.counter ~unit_:"retry" "fault.retries"
let c_wasted_s = Metric.counter ~unit_:"s" "fault.wasted_s"

type t = {
  clock : Sim.t;
  job_overhead_s : float;
  nodes : int;
  parallel_efficiency : float;
  shuffle_bps : float;
  mutable jobs : int;
  mutable deadline : float;
  mutable plan : Fault.plan;
  mutable max_task_attempts : int;
  mutable task_retries : int;
  mutable wasted_seconds : float;
}

exception Timeout
exception Job_failed of string

let create ?(job_overhead_s = 0.15) ?(nodes = 1) ?(parallel_efficiency = 0.75)
    ?(shuffle_bps = 1e9) ?(max_task_attempts = 4) () =
  {
    clock = Sim.create ();
    job_overhead_s;
    nodes;
    parallel_efficiency;
    shuffle_bps;
    jobs = 0;
    deadline = infinity;
    plan = Fault.empty;
    max_task_attempts;
    task_retries = 0;
    wasted_seconds = 0.;
  }

let compute_speedup t =
  if t.nodes <= 1 then 1.
  else float_of_int t.nodes *. t.parallel_efficiency

let check_deadline t = if Sim.now t.clock > t.deadline then raise Timeout

let elapsed t = Sim.now t.clock
let jobs_run t = t.jobs
let set_fault_plan t plan = t.plan <- plan
let task_retries t = t.task_retries
let wasted_seconds t = t.wasted_seconds

(* Hadoop-style task retry: a failed attempt throws its work away and is
   rescheduled (paying the launch overhead again); past
   [max_task_attempts] failures the whole job aborts, as the JobTracker
   would. [dt] is the job's simulated compute time for one attempt. *)
let charge_task_faults t ~job ~name ~dt =
  let failures = Fault.task_failures t.plan ~job in
  if failures > 0 then begin
    if failures >= t.max_task_attempts then
      raise
        (Job_failed
           (Printf.sprintf "%s: task failed %d times (max attempts %d)" name
              failures t.max_task_attempts));
    let redone = float_of_int failures *. (dt +. t.job_overhead_s) in
    t.task_retries <- t.task_retries + failures;
    t.wasted_seconds <- t.wasted_seconds +. redone;
    Metric.add c_retries failures;
    Metric.addf c_wasted_s redone;
    let t0 = Sim.now t.clock in
    Sim.advance t.clock redone;
    Obs.Span.emit ~cat:"recovery" ~name:("retry:" ^ name)
      ~attrs:[ ("job", Obs.Int job); ("failures", Obs.Int failures) ]
      ~t0 ~t1:(Sim.now t.clock) ()
  end

(* The shuffle writes the intermediate key/value stream out as tab-
   separated text and reads it back, exactly as data hits HDFS between the
   map and reduce phases. *)
let shuffle pairs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\t';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    pairs;
  let text = Buffer.contents buf in
  let shuffled_bytes = String.length text in
  let groups = Hashtbl.create 1024 in
  let order = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" then begin
           match String.index_opt line '\t' with
           | None -> failwith "Mr.shuffle: malformed record"
           | Some i ->
             let k = String.sub line 0 i in
             let v = String.sub line (i + 1) (String.length line - i - 1) in
             (match Hashtbl.find_opt groups k with
             | Some vs -> Hashtbl.replace groups k (v :: vs)
             | None ->
               order := k :: !order;
               Hashtbl.add groups k [ v ])
         end);
  let keys = List.rev !order in
  let keys = List.sort String.compare keys in
  (List.map (fun k -> (k, List.rev (Hashtbl.find groups k))) keys, shuffled_bytes)

let run_job t ~name ?combiner ~mapper ~reducer inputs =
  check_deadline t;
  let job = t.jobs in
  t.jobs <- job + 1;
  Metric.add c_jobs 1;
  let job_t0 = Sim.now t.clock in
  Sim.advance t.clock t.job_overhead_s;
  let (out, shuffled_bytes), dt =
    Stopwatch.time (fun () ->
        let pairs = List.concat_map mapper inputs in
        (* Map-side combine: pre-group in memory and collapse each key's
           values before anything is materialized for the shuffle. *)
        let pairs =
          match combiner with
          | None -> pairs
          | Some combine ->
            let groups = Hashtbl.create 256 in
            let order = ref [] in
            List.iter
              (fun (k, v) ->
                match Hashtbl.find_opt groups k with
                | Some vs -> Hashtbl.replace groups k (v :: vs)
                | None ->
                  order := k :: !order;
                  Hashtbl.add groups k [ v ])
              pairs;
            List.concat_map
              (fun k ->
                List.map
                  (fun v -> (k, v))
                  (combine k (List.rev (Hashtbl.find groups k))))
              (List.rev !order)
        in
        let grouped, bytes = shuffle pairs in
        (List.concat_map (fun (k, vs) -> reducer k vs) grouped, bytes))
  in
  let dt = dt /. compute_speedup t in
  Sim.advance t.clock dt;
  charge_task_faults t ~job ~name ~dt;
  if t.nodes > 1 then begin
    (* Cross-node fraction of the shuffle goes over the wire. *)
    let n = float_of_int t.nodes in
    let wire = float_of_int shuffled_bytes *. ((n -. 1.) /. n) in
    Sim.advance t.clock (wire /. (t.shuffle_bps *. n))
  end;
  Metric.add c_shuffle_bytes shuffled_bytes;
  Obs.Span.emit ~cat:"mr" ~name:("mr:" ^ name)
    ~attrs:
      [ ("job", Obs.Int job); ("shuffle_bytes", Obs.Int shuffled_bytes) ]
    ~t0:job_t0 ~t1:(Sim.now t.clock) ();
  out

let text_job t ~name f inputs =
  check_deadline t;
  let job = t.jobs in
  t.jobs <- job + 1;
  Metric.add c_jobs 1;
  let job_t0 = Sim.now t.clock in
  Sim.advance t.clock t.job_overhead_s;
  let out, dt =
    Stopwatch.time (fun () ->
        let out = f inputs in
        (* Materialize as text, as the job's output would be written. *)
        let buf = Buffer.create 4096 in
        List.iter
          (fun line ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n')
          out;
        String.split_on_char '\n' (Buffer.contents buf)
        |> List.filter (fun l -> l <> ""))
  in
  let dt = dt /. compute_speedup t in
  Sim.advance t.clock dt;
  charge_task_faults t ~job ~name ~dt;
  Obs.Span.emit ~cat:"mr" ~name:("mr:" ^ name)
    ~attrs:[ ("job", Obs.Int job) ]
    ~t0:job_t0 ~t1:(Sim.now t.clock) ();
  out

let map_only t ~name ~mapper inputs =
  text_job t ~name (fun inputs -> List.concat_map mapper inputs) inputs

let set_deadline t d = t.deadline <- d

let run_combine t ~name ~init ~fold ~emit inputs =
  text_job t ~name
    (fun inputs -> emit (List.fold_left fold init inputs))
    inputs
