(** A MapReduce runtime modelling Hadoop streaming.

    Records cross every job boundary as text lines (as in Hadoop
    streaming), so each job genuinely pays serialization, parsing and a
    full shuffle materialization. Per-job launch overhead — the fixed JVM/
    scheduling cost that dominates small Hadoop jobs — is charged to a
    simulated clock; map/shuffle/reduce compute is measured for real and
    charged to the same clock. *)

type t

val create :
  ?job_overhead_s:float ->
  ?nodes:int ->
  ?parallel_efficiency:float ->
  ?shuffle_bps:float ->
  ?max_task_attempts:int ->
  unit ->
  t
(** Default overhead 0.15 s per job (scaled to this reproduction's
    dataset scale-down, standing in for tens of seconds of real Hadoop
    job latency). With [nodes > 1], measured map/reduce compute is divided
    by [nodes * parallel_efficiency] (default 0.75 — Hadoop never scales
    linearly) and the cross-node share of each job's shuffle is charged at
    [shuffle_bps] per node. [max_task_attempts] (default 4, Hadoop's
    [mapreduce.map.maxattempts]) bounds injected task retries. *)

val elapsed : t -> float
(** Simulated seconds consumed so far (overhead + measured compute). *)

val jobs_run : t -> int

val run_job :
  t ->
  name:string ->
  ?combiner:(string -> string list -> string list) ->
  mapper:(string -> (string * string) list) ->
  reducer:(string -> string list -> string list) ->
  string list ->
  string list
(** One MapReduce job: map every input line to key/value pairs, shuffle
    (group and sort by key, materializing the intermediate data as text),
    reduce each group to output lines. An optional [combiner] runs on the
    map side before the shuffle, shrinking the materialized intermediate
    data (it must emit values the reducer accepts). *)

val map_only :
  t -> name:string -> mapper:(string -> string list) -> string list -> string list
(** A map-only job (still pays job overhead and text materialization). *)

val run_combine :
  t ->
  name:string ->
  init:'acc ->
  fold:('acc -> string -> 'acc) ->
  emit:('acc -> string list) ->
  string list ->
  string list
(** A map-only job with in-mapper combining (the pattern Mahout's
    [DistributedRowMatrix.times] uses for [A{^T}A]): fold over the input
    records accumulating state, then emit the combined output once. *)

exception Timeout

val set_deadline : t -> float -> unit
(** Abort (raise {!Timeout}) when a job starts after the simulated clock
    passes this many seconds — the benchmark's cut-off for runaway
    computations. Simulated-clock semantics, like [Cluster.set_deadline]
    (and unlike the wall-clock [Gb_util.Deadline]): charged overheads and
    retries count against the window even when no wall time passes. *)

(** {1 Fault injection} *)

exception Job_failed of string
(** A job whose injected task failures outlast [max_task_attempts] — the
    JobTracker gives up on the job. *)

val set_fault_plan : t -> Gb_fault.Fault.plan -> unit
(** Arm a deterministic fault plan; [Task_fail] events are consulted by
    job index. A failed task attempt re-runs the job's compute (plus the
    launch overhead) on the simulated clock — Hadoop-style task retry —
    and is reported through {!task_retries} / {!wasted_seconds}. *)

val task_retries : t -> int
val wasted_seconds : t -> float
(** Simulated seconds consumed by re-executed task attempts. *)
