module Mat = Gb_linalg.Mat
module Prng = Gb_util.Prng

type patient = {
  patient_id : int;
  age : int;
  gender : int;
  zipcode : int;
  disease_id : int;
  drug_response : float;
}

type gene = {
  gene_id : int;
  target : int;
  position : int;
  length : int;
  func : int;
}

type variant = { variant_id : int; vstart : int; vlen : int }

type t = {
  spec : Spec.t;
  expression : Mat.t;
  patients : patient array;
  genes : gene array;
  go : (int * int) array;
  variants : variant array;
  planted : planted;
  stream_seed : int64;
}

and planted = {
  signal_genes : int array;
  signal_coefs : float array;
  signal_intercept : float;
  bicluster_rows : int array;
  bicluster_cols : int array;
  enriched_terms : int array;
}

let func_threshold = 250

let gen_genes rng g =
  let pos = ref 0 in
  Array.init g (fun gene_id ->
      let length = 100 + Prng.int rng 9_900 in
      let position = !pos in
      pos := !pos + length + Prng.int rng 5_000;
      {
        gene_id;
        target = Prng.int rng g;
        position;
        length;
        func = Prng.int rng 1_000;
      })

(* Variant call intervals on the same linear coordinate axis the genes
   occupy.  Mostly short indel-sized events with a tail of structural
   variants, so overlap joins see empty, point-like, nested and
   spanning cases.  [span] is the end of the last gene, so variants and
   genes genuinely interleave. *)
let gen_variants rng ~genes ~span =
  let n = 4 * genes in
  let span = max 1 span in
  Array.init n (fun variant_id ->
      let vstart = Prng.int rng span in
      let vlen =
        if Prng.int rng 10 < 7 then 1 + Prng.int rng 50
        else 100 + Prng.int rng 9_900
      in
      { variant_id; vstart; vlen })

let gen_patients rng spec =
  Array.init spec.Spec.patients (fun patient_id ->
      {
        patient_id;
        age = 18 + Prng.int rng 78;
        gender = Prng.int rng 2;
        zipcode = 10_000 + Prng.int rng 89_999;
        disease_id = 1 + Prng.int rng spec.Spec.diseases;
        drug_response = 0. (* filled once expression is final *);
      })

(* Latent-factor expression: each gene loads on one of a few shared factors,
   giving both the covariance block structure (Q2) and the low-rank signal
   SVD should extract (Q4). *)
let gen_expression rng spec =
  let g = spec.Spec.genes and p = spec.Spec.patients in
  let nfactors = max 5 (g / 50) in
  let group = Array.init g (fun _ -> Prng.int rng nfactors) in
  let loading = Array.init g (fun _ -> 0.8 +. Prng.float rng 0.4) in
  let factors = Mat.random rng p nfactors in
  let expr = Mat.create p g in
  for i = 0 to p - 1 do
    for j = 0 to g - 1 do
      let v =
        (loading.(j) *. Mat.unsafe_get factors i group.(j))
        +. (0.5 *. Prng.normal rng)
      in
      Mat.unsafe_set expr i j v
    done
  done;
  expr

let gen_go rng spec =
  let g = spec.Spec.genes and terms = spec.Spec.go_terms in
  let pairs = ref [] in
  for gene_id = 0 to g - 1 do
    let k = 1 + Prng.int rng 4 in
    let seen = Hashtbl.create 8 in
    for _ = 1 to k do
      let t = Prng.int rng terms in
      if not (Hashtbl.mem seen t) then begin
        Hashtbl.add seen t ();
        pairs := (gene_id, t) :: !pairs
      end
    done
  done;
  Array.of_list (List.rev !pairs)

let plant_enrichment rng expr go terms =
  let n_enriched = min 3 terms in
  let enriched =
    Array.init n_enriched (fun i -> (i * terms / (max 1 n_enriched)) mod terms)
  in
  let is_enriched t = Array.exists (fun e -> e = t) enriched in
  let p = expr.Mat.rows in
  Array.iter
    (fun (gene_id, go_id) ->
      if is_enriched go_id then
        for i = 0 to p - 1 do
          Mat.unsafe_set expr i gene_id (Mat.unsafe_get expr i gene_id +. 2.)
        done)
    go;
  (* Make sure the planted shift pulls members upward in the ranking even
     under per-sample noise. *)
  ignore rng;
  enriched

let plant_bicluster rng expr patients =
  let p, g = Mat.dims expr in
  let young_male =
    patients
    |> Array.to_list
    |> List.filter (fun pt -> pt.gender = 1 && pt.age < 40)
    |> List.map (fun pt -> pt.patient_id)
    |> Array.of_list
  in
  let n_rows = max 2 (Array.length young_male * 3 / 5) in
  let rows = Array.sub young_male 0 (min n_rows (Array.length young_male)) in
  let n_cols = max 2 (g / 12) in
  let cols = Prng.sample rng n_cols g in
  Array.sort compare cols;
  let row_eff = Array.map (fun _ -> Prng.gaussian rng ~mu:0. ~sigma:0.7) rows in
  let col_eff = Array.map (fun _ -> Prng.gaussian rng ~mu:0. ~sigma:0.7) cols in
  Array.iteri
    (fun ri i ->
      Array.iteri
        (fun ci j ->
          Mat.unsafe_set expr i j
            (3. +. row_eff.(ri) +. col_eff.(ci)
            +. Prng.gaussian rng ~mu:0. ~sigma:0.05))
        cols)
    rows;
  ignore p;
  (rows, cols)

let plant_regression rng expr genes patients =
  let candidates =
    genes
    |> Array.to_list
    |> List.filter (fun gn -> gn.func < func_threshold)
    |> List.map (fun gn -> gn.gene_id)
    |> Array.of_list
  in
  let k = min 10 (Array.length candidates) in
  let pick = Prng.sample rng k (Array.length candidates) in
  let signal = Array.map (fun i -> candidates.(i)) pick in
  Array.sort compare signal;
  let coefs =
    Array.map
      (fun _ ->
        let mag = 0.5 +. Prng.float rng 1.5 in
        if Prng.bool rng then mag else -.mag)
      signal
  in
  let intercept = 4. in
  let with_response =
    Array.map
      (fun pt ->
        let acc = ref intercept in
        Array.iteri
          (fun idx gid ->
            acc := !acc +. (coefs.(idx) *. Mat.unsafe_get expr pt.patient_id gid))
          signal;
        { pt with drug_response = !acc +. (0.25 *. Prng.normal rng) })
      patients
  in
  (with_response, signal, coefs, intercept)

let generate ?(seed = 0x6E0BA5EL) spec =
  let root = Prng.create seed in
  let r_genes = Prng.split root in
  let r_patients = Prng.split root in
  let r_expr = Prng.split root in
  let r_go = Prng.split root in
  let r_enrich = Prng.split root in
  let r_biclust = Prng.split root in
  let r_reg = Prng.split root in
  (* New streams split AFTER every pre-existing one so older tables stay
     bit-identical for a given seed. *)
  let r_var = Prng.split root in
  let r_stream = Prng.split root in
  let genes = gen_genes r_genes spec.Spec.genes in
  let patients = gen_patients r_patients spec in
  let expression = gen_expression r_expr spec in
  let go = gen_go r_go spec in
  let enriched_terms =
    plant_enrichment r_enrich expression go spec.Spec.go_terms
  in
  let bicluster_rows, bicluster_cols =
    plant_bicluster r_biclust expression patients
  in
  let patients, signal_genes, signal_coefs, signal_intercept =
    plant_regression r_reg expression genes patients
  in
  let span =
    let last = genes.(Array.length genes - 1) in
    last.position + last.length
  in
  let variants = gen_variants r_var ~genes:spec.Spec.genes ~span in
  (* Seed for the streaming ingest log (lib/stream). Drawn from the last
     split of the root, so it perturbs no pre-existing table: the root is
     never read after the splits above, and nothing downstream consumes
     [r_stream] but this one draw. *)
  let stream_seed = Prng.next_int64 r_stream in
  {
    spec;
    expression;
    patients;
    genes;
    go;
    variants;
    stream_seed;
    planted =
      {
        signal_genes;
        signal_coefs;
        signal_intercept;
        bicluster_rows;
        bicluster_cols;
        enriched_terms;
      };
  }

let go_membership_matrix t =
  let m =
    Array.make_matrix t.spec.Spec.genes t.spec.Spec.go_terms false
  in
  Array.iter (fun (g, term) -> m.(g).(term) <- true) t.go;
  m
