(** Synthetic genomics data generator.

    Mirrors the GenBase generator: four linked data sets modeled on real
    microarray and patient data, with planted structure so that every
    benchmark query has genuine signal to find:

    - a subset of low-function-code genes drives drug response linearly
      (Query 1 recovers the coefficients);
    - groups of genes share latent factors, producing strong pairwise
      covariance (Query 2);
    - a coherent bicluster is planted across young male patients (Query 3);
    - expression has low-rank structure plus noise (Query 4);
    - a few GO terms are enriched near the top of the expression
      ranking (Query 5);
    - variant call intervals interleave with the gene coordinate ranges
      (Query 6 overlap joins). *)

type patient = {
  patient_id : int;
  age : int;
  gender : int; (** 0 = female, 1 = male *)
  zipcode : int;
  disease_id : int; (** 1..21 *)
  drug_response : float;
}

type gene = {
  gene_id : int;
  target : int; (** gene id targeted by this gene's protein *)
  position : int;
  length : int;
  func : int; (** function code, 0..999 *)
}

type variant = {
  variant_id : int;
  vstart : int; (** start coordinate on the gene axis *)
  vlen : int; (** length in bases; interval is half-open [vstart, vstart+vlen) *)
}

type t = {
  spec : Spec.t;
  expression : Gb_linalg.Mat.t; (** patients x genes *)
  patients : patient array;
  genes : gene array;
  go : (int * int) array; (** (gene_id, go_id) membership pairs *)
  variants : variant array; (** genomic intervals for Query 6 overlap joins *)
  planted : planted;
  stream_seed : int64;
      (** root seed for the streaming ingest log ([lib/stream]); drawn
          from a PRNG split appended after every pre-existing stream, so
          all other tables are bit-identical to earlier versions of the
          generator for a given seed *)
}

and planted = {
  signal_genes : int array; (** gene ids with nonzero regression weight *)
  signal_coefs : float array;
  signal_intercept : float;
  bicluster_rows : int array; (** patient ids of the planted bicluster *)
  bicluster_cols : int array; (** gene ids of the planted bicluster *)
  enriched_terms : int array; (** GO ids planted as enriched *)
}

val func_threshold : int
(** The function-code cutoff Queries 1 and 4 filter on (the paper's
    "function < 250"). *)

val generate : ?seed:int64 -> Spec.t -> t
(** Deterministic for a given seed and spec. *)

val go_membership_matrix : t -> bool array array
(** Dense [genes x go_terms] view of the membership pairs. *)
