module Mat = Gb_linalg.Mat

let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write ~dir (t : Generate.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let p, g = Mat.dims t.expression in
  with_out (Filename.concat dir "microarray.csv") (fun oc ->
      output_string oc "gene_id,patient_id,value\n";
      for j = 0 to g - 1 do
        for i = 0 to p - 1 do
          Printf.fprintf oc "%d,%d,%.17g\n" j i (Mat.unsafe_get t.expression i j)
        done
      done);
  with_out (Filename.concat dir "patients.csv") (fun oc ->
      output_string oc
        "patient_id,age,gender,zipcode,disease_id,drug_response\n";
      Array.iter
        (fun (pt : Generate.patient) ->
          Printf.fprintf oc "%d,%d,%d,%d,%d,%.17g\n" pt.patient_id pt.age
            pt.gender pt.zipcode pt.disease_id pt.drug_response)
        t.patients);
  with_out (Filename.concat dir "genes.csv") (fun oc ->
      output_string oc "gene_id,target,position,length,function\n";
      Array.iter
        (fun (gn : Generate.gene) ->
          Printf.fprintf oc "%d,%d,%d,%d,%d\n" gn.gene_id gn.target gn.position
            gn.length gn.func)
        t.genes);
  with_out (Filename.concat dir "go.csv") (fun oc ->
      output_string oc "gene_id,go_id\n";
      Array.iter (fun (g, term) -> Printf.fprintf oc "%d,%d\n" g term) t.go);
  with_out (Filename.concat dir "variants.csv") (fun oc ->
      output_string oc "variant_id,vstart,vlen\n";
      Array.iter
        (fun (v : Generate.variant) ->
          Printf.fprintf oc "%d,%d,%d\n" v.variant_id v.vstart v.vlen)
        t.variants)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      match go [] with
      | [] -> failwith (path ^ ": empty file")
      | _header :: rows -> rows)

let split_ints line = String.split_on_char ',' line |> List.map int_of_string

let read ~dir : Generate.t =
  let patients =
    read_lines (Filename.concat dir "patients.csv")
    |> List.map (fun line ->
           match String.split_on_char ',' line with
           | [ pid; age; gender; zip; dis; resp ] ->
             {
               Generate.patient_id = int_of_string pid;
               age = int_of_string age;
               gender = int_of_string gender;
               zipcode = int_of_string zip;
               disease_id = int_of_string dis;
               drug_response = float_of_string resp;
             }
           | _ -> failwith "patients.csv: bad row")
    |> Array.of_list
  in
  let genes =
    read_lines (Filename.concat dir "genes.csv")
    |> List.map (fun line ->
           match split_ints line with
           | [ gene_id; target; position; length; func ] ->
             { Generate.gene_id; target; position; length; func }
           | _ -> failwith "genes.csv: bad row")
    |> Array.of_list
  in
  let go =
    read_lines (Filename.concat dir "go.csv")
    |> List.map (fun line ->
           match split_ints line with
           | [ g; t ] -> (g, t)
           | _ -> failwith "go.csv: bad row")
    |> Array.of_list
  in
  let variants =
    (* Optional: data sets written before Q6 existed have no variants
       file; an empty table keeps them loadable. *)
    let path = Filename.concat dir "variants.csv" in
    if not (Sys.file_exists path) then [||]
    else
      read_lines path
      |> List.map (fun line ->
             match split_ints line with
             | [ variant_id; vstart; vlen ] ->
               { Generate.variant_id; vstart; vlen }
             | _ -> failwith "variants.csv: bad row")
      |> Array.of_list
  in
  let n_patients = Array.length patients and n_genes = Array.length genes in
  let expression = Mat.create n_patients n_genes in
  List.iter
    (fun line ->
      match String.split_on_char ',' line with
      | [ g; p; v ] ->
        Mat.set expression (int_of_string p) (int_of_string g)
          (float_of_string v)
      | _ -> failwith "microarray.csv: bad row")
    (read_lines (Filename.concat dir "microarray.csv"));
  let spec = Spec.custom ~genes:n_genes ~patients:n_patients in
  {
    spec;
    expression;
    patients;
    genes;
    go;
    variants;
    planted =
      {
        signal_genes = [||];
        signal_coefs = [||];
        signal_intercept = 0.;
        bicluster_rows = [||];
        bicluster_cols = [||];
        enriched_terms = [||];
      };
    (* CSV round-trips carry no stream seed; Stream.Ingest.generate takes
       an explicit [?seed] for datasets loaded from disk. *)
    stream_seed = 0L;
  }
