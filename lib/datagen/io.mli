(** CSV serialization of generated data sets, mirroring the files the
    GenBase website distributes (microarray, patient metadata, gene
    metadata, gene ontology). *)

val write : dir:string -> Generate.t -> unit
(** Writes [microarray.csv] (gene_id, patient_id, value — the relational
    triple form), [patients.csv], [genes.csv], [go.csv], [variants.csv].
    Creates [dir] if needed. *)

val read : dir:string -> Generate.t
(** Reads the files back ([variants.csv] is optional — pre-Q6 data sets
    load with an empty variant table). Planted-structure metadata is not
    stored in the CSVs, so [planted] fields come back empty. *)
