type t =
  | Scan of string * string list
  | Filter of Expr.t * t
  | Project of string list * t
  | Join of { left : t; right : t; on : (string * string) list }
  | Interval_join of {
      left : t;
      right : t;
      left_span : string * string;
      right_span : string * string;
      min_overlap : int;
    }
  | Aggregate of {
      group_by : string list;
      aggs : (string * Ops.agg) list;
      input : t;
    }
  | Sort of (string * [ `Asc | `Desc ]) list * t
  | Limit of int * t

type catalog = {
  scan : string -> string list -> Ops.rel;
  schema_of : string -> Schema.t;
  row_count : string -> int;
}

let agg_schema input_schema group_by aggs =
  Schema.make
    (List.map
       (fun k -> (k, Schema.ty input_schema (Schema.index input_schema k)))
       group_by
    @ List.map
        (fun (name, a) ->
          let ty =
            match a with Ops.Count -> Value.TInt | _ -> Value.TFloat
          in
          (name, ty))
        aggs)

let rec schema cat = function
  | Scan (table, []) -> cat.schema_of table
  | Scan (table, cols) -> Schema.project (cat.schema_of table) cols
  | Filter (_, p) -> schema cat p
  | Project (cols, p) -> Schema.project (schema cat p) cols
  | Join { left; right; _ } ->
    Schema.concat (schema cat left) (schema cat right)
  | Interval_join { left; right; _ } ->
    Schema.concat
      (Schema.concat (schema cat left) (schema cat right))
      (Schema.make [ ("overlap_len", Value.TInt) ])
  | Aggregate { group_by; aggs; input } ->
    agg_schema (schema cat input) group_by aggs
  | Sort (_, p) -> schema cat p
  | Limit (_, p) -> schema cat p

let rec estimate_rows cat = function
  | Scan (table, _) -> cat.row_count table
  | Filter (_, p) -> max 1 (estimate_rows cat p / 3)
  | Project (_, p) | Sort (_, p) -> estimate_rows cat p
  | Join { left; right; _ } ->
    (* Equi-join on a key of the smaller side: about the larger input. *)
    max (min (estimate_rows cat left) (estimate_rows cat right))
      (max (estimate_rows cat left) (estimate_rows cat right) / 2)
  | Interval_join { left; right; _ } ->
    (* Interval containment over a shared axis: expect a handful of
       matches per left interval, more when the right side is dense. *)
    max 1 (max (estimate_rows cat left) (estimate_rows cat right) * 3 / 2)
  | Aggregate { input; _ } -> max 1 (estimate_rows cat input / 4)
  | Limit (n, p) -> min n (estimate_rows cat p)

let names cat p = List.map fst (Schema.columns (schema cat p))

(* Which side does a joined-output column come from? Mirrors
   Schema.concat's renaming: the first |left| columns are left's, the rest
   are right's columns under possibly-fresh names. *)
let split_required cat left right required =
  let ls = schema cat left and rs = schema cat right in
  let joined = Schema.concat ls rs in
  let la = Schema.arity ls in
  List.fold_left
    (fun (lreq, rreq) name ->
      match Schema.index joined name with
      | idx when idx < la -> (name :: lreq, rreq)
      | idx -> (lreq, Schema.name rs (idx - la) :: rreq)
      | exception Not_found -> (lreq, rreq))
    ([], [])
    required

(* Rewrite an expression's column references from joined-output names to
   the right input's original names; returns None if any column is not a
   pure right-side reference. *)
let rebase_to_right cat left right e =
  let ls = schema cat left and rs = schema cat right in
  let joined = Schema.concat ls rs in
  let la = Schema.arity ls in
  let rec go = function
    | Expr.Col name -> (
      match Schema.index joined name with
      | idx when idx >= la -> Some (Expr.Col (Schema.name rs (idx - la)))
      | _ -> None
      | exception Not_found -> None)
    | Expr.Const _ as c -> Some c
    | Expr.Cmp (op, a, b) ->
      Option.bind (go a) (fun a -> Option.map (fun b -> Expr.Cmp (op, a, b)) (go b))
    | Expr.And (a, b) ->
      Option.bind (go a) (fun a -> Option.map (fun b -> Expr.And (a, b)) (go b))
    | Expr.Or (a, b) ->
      Option.bind (go a) (fun a -> Option.map (fun b -> Expr.Or (a, b)) (go b))
    | Expr.Not a -> Option.map (fun a -> Expr.Not a) (go a)
    | Expr.Arith (op, a, b) ->
      Option.bind (go a) (fun a ->
          Option.map (fun b -> Expr.Arith (op, a, b)) (go b))
  in
  go e

let conjuncts e =
  let rec go acc = function
    | Expr.And (a, b) -> go (go acc a) b
    | e -> e :: acc
  in
  List.rev (go [] e)

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> Expr.And (acc, c)) e rest)

(* --- predicate pushdown --- *)

let rec pushdown cat plan =
  match plan with
  | Filter (e, Filter (e2, p)) -> pushdown cat (Filter (Expr.And (e2, e), p))
  | Filter (e, Project (cols, p)) ->
    (* Projection only narrows columns; if the predicate survives on the
       narrowed schema it also evaluates below it. *)
    let below = names cat p in
    if List.for_all (fun c -> List.mem c below) (Expr.columns e) then
      Project (cols, pushdown cat (Filter (e, p)))
    else Project (cols, pushdown cat p) |> fun inner -> Filter (e, inner)
  | Filter (e, Interval_join ({ left; right; _ } as ij)) ->
    (* Same side-routing as the equi-join below; conjuncts touching the
       computed [overlap_len] column route to neither side and stay. *)
    let lnames = names cat left in
    let stays = ref [] and to_left = ref [] and to_right = ref [] in
    List.iter
      (fun c ->
        let cols = Expr.columns c in
        if List.for_all (fun n -> List.mem n lnames) cols then
          to_left := c :: !to_left
        else
          match rebase_to_right cat left right c with
          | Some c' -> to_right := c' :: !to_right
          | None -> stays := c :: !stays)
      (conjuncts e);
    let left =
      match conjoin (List.rev !to_left) with
      | Some f -> Filter (f, left)
      | None -> left
    in
    let right =
      match conjoin (List.rev !to_right) with
      | Some f -> Filter (f, right)
      | None -> right
    in
    let joined =
      Interval_join
        { ij with left = pushdown cat left; right = pushdown cat right }
    in
    (match conjoin (List.rev !stays) with
    | Some f -> Filter (f, joined)
    | None -> joined)
  | Filter (e, Join { left; right; on }) ->
    let lnames = names cat left in
    let stays = ref [] and to_left = ref [] and to_right = ref [] in
    List.iter
      (fun c ->
        let cols = Expr.columns c in
        if List.for_all (fun n -> List.mem n lnames) cols then
          to_left := c :: !to_left
        else
          match rebase_to_right cat left right c with
          | Some c' -> to_right := c' :: !to_right
          | None -> stays := c :: !stays)
      (conjuncts e);
    let left =
      match conjoin (List.rev !to_left) with
      | Some f -> Filter (f, left)
      | None -> left
    in
    let right =
      match conjoin (List.rev !to_right) with
      | Some f -> Filter (f, right)
      | None -> right
    in
    let joined =
      Join { left = pushdown cat left; right = pushdown cat right; on }
    in
    (match conjoin (List.rev !stays) with
    | Some f -> Filter (f, joined)
    | None -> joined)
  | Filter (e, p) -> Filter (e, pushdown cat p)
  | Project (cols, p) -> Project (cols, pushdown cat p)
  | Join { left; right; on } ->
    Join { left = pushdown cat left; right = pushdown cat right; on }
  | Interval_join ij ->
    Interval_join
      { ij with left = pushdown cat ij.left; right = pushdown cat ij.right }
  | Aggregate a -> Aggregate { a with input = pushdown cat a.input }
  | Sort (by, p) -> Sort (by, pushdown cat p)
  | Limit (n, p) -> Limit (n, pushdown cat p)
  | Scan _ as s -> s

(* --- column pruning --- *)

let union a b = List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) a b

let rec prune cat required plan =
  match plan with
  | Scan (table, _) ->
    let all = List.map fst (Schema.columns (cat.schema_of table)) in
    let wanted = List.filter (fun c -> List.mem c required) all in
    Scan (table, (if wanted = [] then all else wanted))
  | Filter (e, p) -> Filter (e, prune cat (union required (Expr.columns e)) p)
  | Project (cols, p) -> Project (cols, prune cat cols p)
  | Join { left; right; on } ->
    let lreq, rreq = split_required cat left right required in
    let lreq = union lreq (List.map fst on) in
    let rreq = union rreq (List.map snd on) in
    Join { left = prune cat lreq left; right = prune cat rreq right; on }
  | Interval_join ({ left; right; left_span; right_span; _ } as ij) ->
    let lreq, rreq = split_required cat left right required in
    let lreq = union lreq [ fst left_span; snd left_span ] in
    let rreq = union rreq [ fst right_span; snd right_span ] in
    Interval_join
      { ij with left = prune cat lreq left; right = prune cat rreq right }
  | Aggregate { group_by; aggs; input } ->
    let agg_cols =
      List.filter_map
        (fun (_, a) ->
          match a with
          | Ops.Count -> None
          | Ops.Sum c | Ops.Avg c | Ops.Min c | Ops.Max c -> Some c)
        aggs
    in
    Aggregate { group_by; aggs; input = prune cat (union group_by agg_cols) input }
  | Sort (by, p) -> Sort (by, prune cat (union required (List.map fst by)) p)
  | Limit (n, p) -> Limit (n, prune cat required p)

(* --- build-side selection --- *)

let rec choose_builds cat plan =
  match plan with
  | Join { left; right; on } ->
    let left = choose_builds cat left and right = choose_builds cat right in
    (* Ops.hash_join builds on the right input; make the smaller side the
       build side, restoring the original column order with a projection
       when the swap is rename-safe. *)
    if estimate_rows cat left < estimate_rows cat right then begin
      let original = names cat (Join { left; right; on }) in
      let swapped =
        Join { left = right; right = left; on = List.map (fun (a, b) -> (b, a)) on }
      in
      let snames = names cat swapped in
      if List.for_all (fun n -> List.mem n snames) original then
        Project (original, swapped)
      else Join { left; right; on }
    end
    else Join { left; right; on }
  | Interval_join ij ->
    (* The sweep is symmetric in cost but not in output order; sides are
       never swapped so the canonical (left, right) ordering holds. *)
    Interval_join
      {
        ij with
        left = choose_builds cat ij.left;
        right = choose_builds cat ij.right;
      }
  | Filter (e, p) -> Filter (e, choose_builds cat p)
  | Project (cols, p) -> Project (cols, choose_builds cat p)
  | Aggregate a -> Aggregate { a with input = choose_builds cat a.input }
  | Sort (by, p) -> Sort (by, choose_builds cat p)
  | Limit (n, p) -> Limit (n, choose_builds cat p)
  | Scan _ as s -> s

(* Run each rewrite separately and record which ones changed the plan —
   the plan ADT is pure data, so structural inequality is exactly "the
   rewrite fired". EXPLAIN prints the list so a reader can tell an
   already-optimal plan from one the optimizer reshaped. *)
let optimize_steps cat plan =
  let p1 = pushdown cat plan in
  let top = names cat p1 in
  let p2 = prune cat top p1 in
  let p3 = choose_builds cat p2 in
  let fired =
    List.filter_map
      (fun (name, changed) -> if changed then Some name else None)
      [
        ("predicate pushdown", p1 <> plan);
        ("column pruning", p2 <> p1);
        ("join build-side swap", p3 <> p2);
      ]
  in
  (p3, fired)

let optimize cat plan = fst (optimize_steps cat plan)

(* Each plan node carries a tracing span, so an enabled trace shows one
   span per operator bracketing the work it forced (lazy pulls nest the
   spans by time containment). Filter, project and join fuse the span
   into their own loop via [?trace]; aggregate/sort/limit wrap their
   output in [Ops.traced]. Scan spans are the catalog's job — its [scan]
   should fuse one via [Ops.guard ~trace] or wrap with [Ops.traced] — so
   hot scans need not pay for an extra per-row layer here. With tracing
   disabled every hook is the identity. *)
let rec run cat = function
  | Scan (table, []) ->
    cat.scan table (List.map fst (Schema.columns (cat.schema_of table)))
  | Scan (table, cols) -> cat.scan table cols
  | Filter (e, p) -> Ops.filter ~trace:"filter" e (run cat p)
  | Project (cols, p) -> Ops.project ~trace:"project" cols (run cat p)
  | Join { left; right; on } ->
    Ops.hash_join ~trace:"hash_join" ~on (run cat left) (run cat right)
  | Interval_join { left; right; left_span; right_span; min_overlap } ->
    Ops.interval_join ~trace:"interval_join" ~min_overlap ~left_span
      ~right_span (run cat left) (run cat right)
  | Aggregate { group_by; aggs; input } ->
    Ops.traced ~name:"aggregate" (Ops.aggregate ~group_by ~aggs (run cat input))
  | Sort (by, p) -> Ops.traced ~name:"sort" (Ops.sort ~by (run cat p))
  | Limit (n, p) -> Ops.traced ~name:"limit" (Ops.limit n (run cat p))

let execute ?(optimize_first = true) cat plan =
  let plan = if optimize_first then optimize cat plan else plan in
  run cat plan

let describe = function
  | Scan (t, cols) -> Printf.sprintf "Scan %s [%s]" t (String.concat ", " cols)
  | Filter (e, _) ->
    Printf.sprintf "Filter on [%s]" (String.concat ", " (Expr.columns e))
  | Project (cols, _) -> Printf.sprintf "Project [%s]" (String.concat ", " cols)
  | Join { on; _ } ->
    Printf.sprintf "HashJoin on [%s]"
      (String.concat ", " (List.map (fun (a, b) -> a ^ "=" ^ b) on))
  | Interval_join { left_span = ll, lv; right_span = rl, rv; min_overlap; _ }
    ->
    Printf.sprintf "IntervalJoin [%s+%s overlaps %s+%s, >=%dbp]" ll lv rl rv
      min_overlap
  | Aggregate { group_by; aggs; _ } ->
    Printf.sprintf "Aggregate group by [%s] -> [%s]"
      (String.concat ", " group_by)
      (String.concat ", " (List.map fst aggs))
  | Sort (by, _) ->
    Printf.sprintf "Sort [%s]" (String.concat ", " (List.map fst by))
  | Limit (n, _) -> Printf.sprintf "Limit %d" n

let children = function
  | Scan _ -> []
  | Filter (_, p) | Project (_, p) | Sort (_, p) | Limit (_, p) -> [ p ]
  | Join { left; right; _ } | Interval_join { left; right; _ } ->
    [ left; right ]
  | Aggregate { input; _ } -> [ input ]

let optimizer_note fired =
  match fired with
  | [] -> "-- optimizer: plan unchanged\n"
  | l -> Printf.sprintf "-- optimizer: %s\n" (String.concat ", " l)

let explain cat plan =
  let plan, fired = optimize_steps cat plan in
  let buf = Buffer.create 256 in
  let rec go indent p =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  (~%d rows)\n" (String.make indent ' ')
         (describe p) (estimate_rows cat p));
    List.iter (go (indent + 2)) (children p)
  in
  go 0 plan;
  Buffer.add_string buf (optimizer_note fired);
  Buffer.contents buf

(* --- EXPLAIN ANALYZE ---

   Execute the optimized plan with a per-node row counter spliced in,
   drain it, then print the same tree with estimated vs actual
   cardinalities. Join nodes additionally report the hash table's build
   and probe sizes, which are exactly the right and left child's actual
   counts: the build phase consumes the right input through its counter
   before the first output row, and every probed row passes the left
   counter. The counting layer is one closure per row per node — fine
   for a diagnostic run, which is not a timed benchmark. *)

type annotated = { node : t; actual : int ref; kids : annotated list }

let rec instrument cat p =
  let counted rel =
    let c = ref 0 in
    ( c,
      {
        rel with
        Ops.rows =
          Seq.map
            (fun row ->
              incr c;
              row)
            rel.Ops.rows;
      } )
  in
  let rel, kids =
    match p with
    | Scan (table, cols) ->
      let cols =
        if cols = [] then List.map fst (Schema.columns (cat.schema_of table))
        else cols
      in
      (cat.scan table cols, [])
    | Filter (e, inner) ->
      let irel, ia = instrument cat inner in
      (Ops.filter e irel, [ ia ])
    | Project (cols, inner) ->
      let irel, ia = instrument cat inner in
      (Ops.project cols irel, [ ia ])
    | Join { left; right; on } ->
      let lrel, la = instrument cat left in
      let rrel, ra = instrument cat right in
      (Ops.hash_join ~on lrel rrel, [ la; ra ])
    | Interval_join { left; right; left_span; right_span; min_overlap } ->
      let lrel, la = instrument cat left in
      let rrel, ra = instrument cat right in
      (Ops.interval_join ~min_overlap ~left_span ~right_span lrel rrel,
       [ la; ra ])
    | Aggregate { group_by; aggs; input } ->
      let irel, ia = instrument cat input in
      (Ops.aggregate ~group_by ~aggs irel, [ ia ])
    | Sort (by, inner) ->
      let irel, ia = instrument cat inner in
      (Ops.sort ~by irel, [ ia ])
    | Limit (n, inner) ->
      let irel, ia = instrument cat inner in
      (Ops.limit n irel, [ ia ])
  in
  let c, rel = counted rel in
  (rel, { node = p; actual = c; kids })

let explain_analyze cat plan =
  let plan, fired = optimize_steps cat plan in
  let rel, ann = instrument cat plan in
  Seq.iter ignore rel.Ops.rows;
  let buf = Buffer.create 256 in
  let rec go indent a =
    let extra =
      match (a.node, a.kids) with
      | Join _, [ la; ra ] ->
        Printf.sprintf "; build %d, probe %d" !(ra.actual) !(la.actual)
      | Interval_join _, [ la; ra ] ->
        (* The node's own est|actual above IS the overlap-pair count;
           this footnote sizes the sweep's two interval inputs. *)
        Printf.sprintf "; swept %d x %d intervals" !(la.actual) !(ra.actual)
      | _ -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  (est %d | actual %d rows%s)\n"
         (String.make indent ' ')
         (describe a.node)
         (estimate_rows cat a.node)
         !(a.actual) extra);
    List.iter (go (indent + 2)) a.kids
  in
  go 0 ann;
  Buffer.add_string buf (optimizer_note fired);
  Buffer.contents buf
