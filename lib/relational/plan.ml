type t =
  | Scan of string * string list
  | Filter of Expr.t * t
  | Project of string list * t
  | Join of { left : t; right : t; on : (string * string) list }
  | Aggregate of {
      group_by : string list;
      aggs : (string * Ops.agg) list;
      input : t;
    }
  | Sort of (string * [ `Asc | `Desc ]) list * t
  | Limit of int * t

type catalog = {
  scan : string -> string list -> Ops.rel;
  schema_of : string -> Schema.t;
  row_count : string -> int;
}

let agg_schema input_schema group_by aggs =
  Schema.make
    (List.map
       (fun k -> (k, Schema.ty input_schema (Schema.index input_schema k)))
       group_by
    @ List.map
        (fun (name, a) ->
          let ty =
            match a with Ops.Count -> Value.TInt | _ -> Value.TFloat
          in
          (name, ty))
        aggs)

let rec schema cat = function
  | Scan (table, []) -> cat.schema_of table
  | Scan (table, cols) -> Schema.project (cat.schema_of table) cols
  | Filter (_, p) -> schema cat p
  | Project (cols, p) -> Schema.project (schema cat p) cols
  | Join { left; right; _ } ->
    Schema.concat (schema cat left) (schema cat right)
  | Aggregate { group_by; aggs; input } ->
    agg_schema (schema cat input) group_by aggs
  | Sort (_, p) -> schema cat p
  | Limit (_, p) -> schema cat p

let rec estimate_rows cat = function
  | Scan (table, _) -> cat.row_count table
  | Filter (_, p) -> max 1 (estimate_rows cat p / 3)
  | Project (_, p) | Sort (_, p) -> estimate_rows cat p
  | Join { left; right; _ } ->
    (* Equi-join on a key of the smaller side: about the larger input. *)
    max (min (estimate_rows cat left) (estimate_rows cat right))
      (max (estimate_rows cat left) (estimate_rows cat right) / 2)
  | Aggregate { input; _ } -> max 1 (estimate_rows cat input / 4)
  | Limit (n, p) -> min n (estimate_rows cat p)

let names cat p = List.map fst (Schema.columns (schema cat p))

(* Which side does a joined-output column come from? Mirrors
   Schema.concat's renaming: the first |left| columns are left's, the rest
   are right's columns under possibly-fresh names. *)
let split_required cat left right required =
  let ls = schema cat left and rs = schema cat right in
  let joined = Schema.concat ls rs in
  let la = Schema.arity ls in
  List.fold_left
    (fun (lreq, rreq) name ->
      match Schema.index joined name with
      | idx when idx < la -> (name :: lreq, rreq)
      | idx -> (lreq, Schema.name rs (idx - la) :: rreq)
      | exception Not_found -> (lreq, rreq))
    ([], [])
    required

(* Rewrite an expression's column references from joined-output names to
   the right input's original names; returns None if any column is not a
   pure right-side reference. *)
let rebase_to_right cat left right e =
  let ls = schema cat left and rs = schema cat right in
  let joined = Schema.concat ls rs in
  let la = Schema.arity ls in
  let rec go = function
    | Expr.Col name -> (
      match Schema.index joined name with
      | idx when idx >= la -> Some (Expr.Col (Schema.name rs (idx - la)))
      | _ -> None
      | exception Not_found -> None)
    | Expr.Const _ as c -> Some c
    | Expr.Cmp (op, a, b) ->
      Option.bind (go a) (fun a -> Option.map (fun b -> Expr.Cmp (op, a, b)) (go b))
    | Expr.And (a, b) ->
      Option.bind (go a) (fun a -> Option.map (fun b -> Expr.And (a, b)) (go b))
    | Expr.Or (a, b) ->
      Option.bind (go a) (fun a -> Option.map (fun b -> Expr.Or (a, b)) (go b))
    | Expr.Not a -> Option.map (fun a -> Expr.Not a) (go a)
    | Expr.Arith (op, a, b) ->
      Option.bind (go a) (fun a ->
          Option.map (fun b -> Expr.Arith (op, a, b)) (go b))
  in
  go e

let conjuncts e =
  let rec go acc = function
    | Expr.And (a, b) -> go (go acc a) b
    | e -> e :: acc
  in
  List.rev (go [] e)

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc c -> Expr.And (acc, c)) e rest)

(* --- predicate pushdown --- *)

let rec pushdown cat plan =
  match plan with
  | Filter (e, Filter (e2, p)) -> pushdown cat (Filter (Expr.And (e2, e), p))
  | Filter (e, Project (cols, p)) ->
    (* Projection only narrows columns; if the predicate survives on the
       narrowed schema it also evaluates below it. *)
    let below = names cat p in
    if List.for_all (fun c -> List.mem c below) (Expr.columns e) then
      Project (cols, pushdown cat (Filter (e, p)))
    else Project (cols, pushdown cat p) |> fun inner -> Filter (e, inner)
  | Filter (e, Join { left; right; on }) ->
    let lnames = names cat left in
    let stays = ref [] and to_left = ref [] and to_right = ref [] in
    List.iter
      (fun c ->
        let cols = Expr.columns c in
        if List.for_all (fun n -> List.mem n lnames) cols then
          to_left := c :: !to_left
        else
          match rebase_to_right cat left right c with
          | Some c' -> to_right := c' :: !to_right
          | None -> stays := c :: !stays)
      (conjuncts e);
    let left =
      match conjoin (List.rev !to_left) with
      | Some f -> Filter (f, left)
      | None -> left
    in
    let right =
      match conjoin (List.rev !to_right) with
      | Some f -> Filter (f, right)
      | None -> right
    in
    let joined =
      Join { left = pushdown cat left; right = pushdown cat right; on }
    in
    (match conjoin (List.rev !stays) with
    | Some f -> Filter (f, joined)
    | None -> joined)
  | Filter (e, p) -> Filter (e, pushdown cat p)
  | Project (cols, p) -> Project (cols, pushdown cat p)
  | Join { left; right; on } ->
    Join { left = pushdown cat left; right = pushdown cat right; on }
  | Aggregate a -> Aggregate { a with input = pushdown cat a.input }
  | Sort (by, p) -> Sort (by, pushdown cat p)
  | Limit (n, p) -> Limit (n, pushdown cat p)
  | Scan _ as s -> s

(* --- column pruning --- *)

let union a b = List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) a b

let rec prune cat required plan =
  match plan with
  | Scan (table, _) ->
    let all = List.map fst (Schema.columns (cat.schema_of table)) in
    let wanted = List.filter (fun c -> List.mem c required) all in
    Scan (table, (if wanted = [] then all else wanted))
  | Filter (e, p) -> Filter (e, prune cat (union required (Expr.columns e)) p)
  | Project (cols, p) -> Project (cols, prune cat cols p)
  | Join { left; right; on } ->
    let lreq, rreq = split_required cat left right required in
    let lreq = union lreq (List.map fst on) in
    let rreq = union rreq (List.map snd on) in
    Join { left = prune cat lreq left; right = prune cat rreq right; on }
  | Aggregate { group_by; aggs; input } ->
    let agg_cols =
      List.filter_map
        (fun (_, a) ->
          match a with
          | Ops.Count -> None
          | Ops.Sum c | Ops.Avg c | Ops.Min c | Ops.Max c -> Some c)
        aggs
    in
    Aggregate { group_by; aggs; input = prune cat (union group_by agg_cols) input }
  | Sort (by, p) -> Sort (by, prune cat (union required (List.map fst by)) p)
  | Limit (n, p) -> Limit (n, prune cat required p)

(* --- build-side selection --- *)

let rec choose_builds cat plan =
  match plan with
  | Join { left; right; on } ->
    let left = choose_builds cat left and right = choose_builds cat right in
    (* Ops.hash_join builds on the right input; make the smaller side the
       build side, restoring the original column order with a projection
       when the swap is rename-safe. *)
    if estimate_rows cat left < estimate_rows cat right then begin
      let original = names cat (Join { left; right; on }) in
      let swapped =
        Join { left = right; right = left; on = List.map (fun (a, b) -> (b, a)) on }
      in
      let snames = names cat swapped in
      if List.for_all (fun n -> List.mem n snames) original then
        Project (original, swapped)
      else Join { left; right; on }
    end
    else Join { left; right; on }
  | Filter (e, p) -> Filter (e, choose_builds cat p)
  | Project (cols, p) -> Project (cols, choose_builds cat p)
  | Aggregate a -> Aggregate { a with input = choose_builds cat a.input }
  | Sort (by, p) -> Sort (by, choose_builds cat p)
  | Limit (n, p) -> Limit (n, choose_builds cat p)
  | Scan _ as s -> s

let optimize cat plan =
  let plan = pushdown cat plan in
  let top = names cat plan in
  let plan = prune cat top plan in
  choose_builds cat plan

(* Each plan node carries a tracing span, so an enabled trace shows one
   span per operator bracketing the work it forced (lazy pulls nest the
   spans by time containment). Filter, project and join fuse the span
   into their own loop via [?trace]; aggregate/sort/limit wrap their
   output in [Ops.traced]. Scan spans are the catalog's job — its [scan]
   should fuse one via [Ops.guard ~trace] or wrap with [Ops.traced] — so
   hot scans need not pay for an extra per-row layer here. With tracing
   disabled every hook is the identity. *)
let rec run cat = function
  | Scan (table, []) ->
    cat.scan table (List.map fst (Schema.columns (cat.schema_of table)))
  | Scan (table, cols) -> cat.scan table cols
  | Filter (e, p) -> Ops.filter ~trace:"filter" e (run cat p)
  | Project (cols, p) -> Ops.project ~trace:"project" cols (run cat p)
  | Join { left; right; on } ->
    Ops.hash_join ~trace:"hash_join" ~on (run cat left) (run cat right)
  | Aggregate { group_by; aggs; input } ->
    Ops.traced ~name:"aggregate" (Ops.aggregate ~group_by ~aggs (run cat input))
  | Sort (by, p) -> Ops.traced ~name:"sort" (Ops.sort ~by (run cat p))
  | Limit (n, p) -> Ops.traced ~name:"limit" (Ops.limit n (run cat p))

let execute ?(optimize_first = true) cat plan =
  let plan = if optimize_first then optimize cat plan else plan in
  run cat plan

let explain cat plan =
  let plan = optimize cat plan in
  let buf = Buffer.create 256 in
  let rec go indent p =
    let pad = String.make indent ' ' in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s  (~%d rows)\n" pad s (estimate_rows cat p)))
        fmt
    in
    match p with
    | Scan (t, cols) -> line "Scan %s [%s]" t (String.concat ", " cols)
    | Filter (e, inner) ->
      line "Filter on [%s]" (String.concat ", " (Expr.columns e));
      go (indent + 2) inner
    | Project (cols, inner) ->
      line "Project [%s]" (String.concat ", " cols);
      go (indent + 2) inner
    | Join { left; right; on } ->
      line "HashJoin on [%s]"
        (String.concat ", " (List.map (fun (a, b) -> a ^ "=" ^ b) on));
      go (indent + 2) left;
      go (indent + 2) right
    | Aggregate { group_by; aggs; input } ->
      line "Aggregate group by [%s] -> [%s]"
        (String.concat ", " group_by)
        (String.concat ", " (List.map fst aggs));
      go (indent + 2) input
    | Sort (by, inner) ->
      line "Sort [%s]" (String.concat ", " (List.map fst by));
      go (indent + 2) inner
    | Limit (n, inner) ->
      line "Limit %d" n;
      go (indent + 2) inner
  in
  go 0 plan;
  Buffer.contents buf
