(** Logical query plans with a rule-based optimizer.

    The engines' hand-written pipelines compose {!Ops} directly; this
    module provides the declarative layer on top: build a logical plan,
    let the optimizer push predicates below joins, prune unused columns
    into the scans (which matters for the column store) and choose hash
    join build sides by estimated cardinality, then execute — or render an
    EXPLAIN tree. *)

type t =
  | Scan of string * string list
      (** table name; columns to read ([[]] = all, the optimizer prunes) *)
  | Filter of Expr.t * t
  | Project of string list * t
  | Join of { left : t; right : t; on : (string * string) list }
  | Interval_join of {
      left : t;
      right : t;
      left_span : string * string;  (** (start, length) columns *)
      right_span : string * string;
      min_overlap : int;
    }
      (** Genomic overlap join via {!Ops.interval_join}: output is
          [left ++ right ++ overlap_len], canonical (left, right) row
          order; sides are never swapped by the optimizer. *)
  | Aggregate of {
      group_by : string list;
      aggs : (string * Ops.agg) list;
      input : t;
    }
  | Sort of (string * [ `Asc | `Desc ]) list * t
  | Limit of int * t

type catalog = {
  scan : string -> string list -> Ops.rel;
      (** Also owns the scan's tracing span: fuse one with
          [Ops.guard ~trace:("scan:" ^ table)] (or wrap with
          {!Ops.traced}) so executed plans show per-operator spans.
          Interior operators get theirs from {!execute} itself. *)
  schema_of : string -> Schema.t;
  row_count : string -> int;
}

val schema : catalog -> t -> Schema.t
(** Output schema of a plan. Raises on unknown tables/columns. *)

val estimate_rows : catalog -> t -> int
(** Heuristic cardinality estimate (used for build-side selection). *)

val optimize : catalog -> t -> t
(** Predicate pushdown, column pruning, join build-side selection. *)

val optimize_steps : catalog -> t -> t * string list
(** {!optimize} plus the names of the rewrites that actually changed the
    plan (in application order) — empty when the plan came back
    structurally identical. *)

val execute : ?optimize_first:bool -> catalog -> t -> Ops.rel
(** Execute ([optimize_first] defaults to [true]). *)

val explain : catalog -> t -> string
(** Indented plan tree with row estimates, after optimization, followed
    by a one-line note naming the optimizer rewrites that fired (or that
    the plan was unchanged). *)

val explain_analyze : catalog -> t -> string
(** EXPLAIN ANALYZE: execute the optimized plan with a per-node row
    counter spliced in, drain it, and render the tree with
    [est vs actual] cardinalities per node. Join nodes also report hash
    build/probe input sizes (the right and left child's actual counts);
    interval-join nodes report the swept input sizes, their own
    [est | actual] line being the estimated-vs-actual overlap count.
    Runs the query to completion — a diagnostic, not a timed
    benchmark. *)
