let page_size = 64 * 1024

type page = { data : Bytes.t; mutable used : int; mutable nslots : int }

type t = {
  schema : Schema.t;
  mutable pages : page list; (* reverse order *)
  mutable current : page;
  mutable count : int;
}

let new_page () = { data = Bytes.create page_size; used = 0; nslots = 0 }

let create schema =
  let p = new_page () in
  { schema; pages = [ p ]; current = p; count = 0 }

let schema t = t.schema

let insert t row =
  let size = Codec.encoded_size t.schema row in
  if size > page_size then invalid_arg "Row_store.insert: row exceeds page";
  if t.current.used + size > page_size then begin
    let p = new_page () in
    t.pages <- p :: t.pages;
    t.current <- p
  end;
  let written = Codec.encode t.schema row t.current.data t.current.used in
  t.current.used <- t.current.used + written;
  t.current.nslots <- t.current.nslots + 1;
  t.count <- t.count + 1

let insert_all t rows = List.iter (insert t) rows
let row_count t = t.count
let page_count t = List.length t.pages

let tuples_decoded = Gb_obs.Metric.counter ~unit_:"tuple" "storage.tuples_decoded"
let pages_read = Gb_obs.Metric.counter ~unit_:"page" "storage.pages_read"

let iter t f =
  List.iter
    (fun page ->
      Gb_obs.Metric.add pages_read 1;
      Gb_obs.Metric.add tuples_decoded page.nslots;
      let pos = ref 0 in
      for _ = 1 to page.nslots do
        let row, consumed = Codec.decode t.schema page.data !pos in
        pos := !pos + consumed;
        f row
      done)
    (List.rev t.pages)

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun row -> acc := f !acc row);
  !acc

let to_seq t =
  let pages = List.rev t.pages in
  let rec page_seq pages () =
    match pages with
    | [] -> Seq.Nil
    | page :: rest ->
      Gb_obs.Metric.add pages_read 1;
      slots_seq page rest 0 0 ()
  and slots_seq page rest slot pos () =
    if slot >= page.nslots then page_seq rest ()
    else begin
      Gb_obs.Metric.add tuples_decoded 1;
      let row, consumed = Codec.decode t.schema page.data pos in
      Seq.Cons (row, slots_seq page rest (slot + 1) (pos + consumed))
    end
  in
  page_seq pages

let of_rows schema rows =
  let t = create schema in
  insert_all t rows;
  t
