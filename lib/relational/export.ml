module Mat = Gb_linalg.Mat

let rel_to_csv (r : Ops.rel) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (String.concat "," (List.map fst (Schema.columns r.schema)));
  Buffer.add_char buf '\n';
  Seq.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Value.to_string v))
        row;
      Buffer.add_char buf '\n')
    r.rows;
  Buffer.contents buf

let lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let csv_to_rows schema csv =
  match lines csv with
  | [] -> []
  | _header :: rows ->
    List.map
      (fun line ->
        let cells = String.split_on_char ',' line in
        let arr = Array.of_list cells in
        if Array.length arr <> Schema.arity schema then
          failwith "Export.csv_to_rows: arity mismatch";
        Array.mapi (fun i cell -> Value.of_string (Schema.ty schema i) cell) arr)
      rows

let matrix_to_csv m =
  let nr, nc = Mat.dims m in
  let buf = Buffer.create (nr * nc * 8) in
  for i = 0 to nr - 1 do
    for j = 0 to nc - 1 do
      if j > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.12g" (Mat.unsafe_get m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let csv_to_matrix csv =
  let rows = lines csv in
  let parsed =
    List.map
      (fun line ->
        String.split_on_char ',' line |> List.map float_of_string
        |> Array.of_list)
      rows
  in
  Mat.of_arrays (Array.of_list parsed)

let boundary_bytes = Gb_obs.Metric.counter ~unit_:"byte" "boundary.csv_bytes"

let roundtrip_rel r =
  Gb_obs.Profile.with_ ~cat:"boundary" ~name:"export.roundtrip_rel"
  @@ fun () ->
  let csv = rel_to_csv r in
  Gb_obs.Metric.add boundary_bytes (String.length csv);
  Ops.of_list r.Ops.schema (csv_to_rows r.Ops.schema csv)

let roundtrip_matrix m =
  Gb_obs.Profile.with_ ~cat:"boundary" ~name:"export.roundtrip_matrix"
  @@ fun () ->
  let csv = matrix_to_csv m in
  Gb_obs.Metric.add boundary_bytes (String.length csv);
  csv_to_matrix csv
