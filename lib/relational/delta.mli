(** Delta catalogs: incremental view maintenance for linear plans.

    For a plan that is {e linear} in one base table — built from scans,
    filters, projections and joins where that table appears exactly once
    and every other input is unchanged — the classic IVM rule is

    [delta Q(D) = Q(D with the changed table replaced by its delta)]

    because filter/project distribute over union and join distributes
    over union in each argument. This module builds the substituted
    catalog: scans of the changed table serve only the delta rows, every
    other table scans the base catalog as usual. Running the {e same}
    plan against it yields exactly the new output rows for an
    insert-only delta — the delta-filter/delta-join path the streaming
    maintainers use for the regression and enrichment views.

    Aggregates and interval joins are not linear in this sense; callers
    maintain those with mergeable moments and delta sweeps instead. *)

val delta_catalog :
  base:Plan.catalog -> table:string -> delta:Ops.rel -> Plan.catalog
(** Catalog where [scan table cols] serves (a projection of) [delta] and
    every other table is answered by [base]. The delta's schema must
    cover any column list the plan requests from [table]. Row counts for
    [table] report the delta's size, keeping the optimizer's build-side
    choices sensible for small deltas. *)

val delta_rows :
  base:Plan.catalog -> table:string -> delta:Ops.rel -> Plan.t -> Ops.rel
(** [delta_rows ~base ~table ~delta plan] executes [plan] against the
    substituted catalog: the rows the view gains from inserting [delta]
    into [table], provided the plan is linear in [table]. *)
