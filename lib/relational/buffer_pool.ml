type frame = {
  mutable page_id : int; (* -1 = free *)
  buf : Bytes.t;
  mutable dirty : bool;
  mutable last_used : int; (* LRU clock *)
}

type stats = { hits : int; misses : int; evictions : int; writes : int }

type t = {
  page_bytes : int;
  frames : frame array;
  page_table : (int, int) Hashtbl.t; (* page id -> frame index *)
  fd : Unix.file_descr;
  path : string;
  owns_file : bool;
  mutable next_page : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writes : int;
  mutable closed : bool;
}

let create ?(frames = 64) ?path ~page_bytes () =
  if frames < 1 || page_bytes < 1 then invalid_arg "Buffer_pool.create";
  let path, owns_file =
    match path with
    | Some p -> (p, false)
    | None -> (Filename.temp_file "genbase_pool" ".pages", true)
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o600 in
  {
    page_bytes;
    frames =
      Array.init frames (fun _ ->
          { page_id = -1; buf = Bytes.create page_bytes; dirty = false; last_used = 0 });
    page_table = Hashtbl.create 256;
    fd;
    path;
    owns_file;
    next_page = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writes = 0;
    closed = false;
  }

let page_bytes t = t.page_bytes
let page_count t = t.next_page
let resident_pages t = Hashtbl.length t.page_table
let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; writes = t.writes }

let write_out t frame =
  let off = frame.page_id * t.page_bytes in
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec write pos =
    if pos < t.page_bytes then begin
      let n = Unix.write t.fd frame.buf pos (t.page_bytes - pos) in
      write (pos + n)
    end
  in
  write 0;
  t.writes <- t.writes + 1;
  frame.dirty <- false

let read_in t frame page_id =
  let off = page_id * t.page_bytes in
  ignore (Unix.lseek t.fd off Unix.SEEK_SET);
  let rec read pos =
    if pos < t.page_bytes then
      match Unix.read t.fd frame.buf pos (t.page_bytes - pos) with
      | 0 ->
        (* Short file: the page was allocated but never spilled; zeros. *)
        Bytes.fill frame.buf pos (t.page_bytes - pos) '\000'
      | n -> read (pos + n)
  in
  read 0

(* Pick a victim frame: free if any, otherwise least recently used. *)
let victim t =
  let best = ref 0 in
  (try
     Array.iteri
       (fun i f ->
         if f.page_id = -1 then begin
           best := i;
           raise Exit
         end
         else if f.last_used < t.frames.(!best).last_used then best := i)
       t.frames
   with Exit -> ());
  !best

let pool_faults = Gb_obs.Metric.counter ~unit_:"page" "storage.pool_page_faults"

let frame_for t page_id =
  if t.closed then invalid_arg "Buffer_pool: closed";
  if page_id < 0 || page_id >= t.next_page then
    invalid_arg "Buffer_pool: unknown page";
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.page_table page_id with
  | Some fi ->
    t.hits <- t.hits + 1;
    let f = t.frames.(fi) in
    f.last_used <- t.tick;
    f
  | None ->
    t.misses <- t.misses + 1;
    Gb_obs.Metric.add pool_faults 1;
    let fi = victim t in
    let f = t.frames.(fi) in
    if f.page_id >= 0 then begin
      if f.dirty then write_out t f;
      Hashtbl.remove t.page_table f.page_id;
      t.evictions <- t.evictions + 1
    end;
    read_in t f page_id;
    f.page_id <- page_id;
    f.dirty <- false;
    f.last_used <- t.tick;
    Hashtbl.replace t.page_table page_id fi;
    f

let allocate t =
  if t.closed then invalid_arg "Buffer_pool: closed";
  let id = t.next_page in
  t.next_page <- t.next_page + 1;
  (* Materialize the zeroed page in a frame right away. *)
  t.tick <- t.tick + 1;
  let fi = victim t in
  let f = t.frames.(fi) in
  if f.page_id >= 0 then begin
    if f.dirty then write_out t f;
    Hashtbl.remove t.page_table f.page_id;
    t.evictions <- t.evictions + 1
  end;
  Bytes.fill f.buf 0 t.page_bytes '\000';
  f.page_id <- id;
  f.dirty <- true;
  f.last_used <- t.tick;
  Hashtbl.replace t.page_table id fi;
  id

let with_page t id fn =
  let f = frame_for t id in
  f.dirty <- true;
  fn f.buf

let read_page t id fn =
  let f = frame_for t id in
  fn f.buf

let flush t =
  Array.iter (fun f -> if f.page_id >= 0 && f.dirty then write_out t f) t.frames

let close t =
  if not t.closed then begin
    flush t;
    t.closed <- true;
    Unix.close t.fd;
    if t.owns_file then try Sys.remove t.path with Sys_error _ -> ()
  end
