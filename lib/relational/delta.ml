(* Delta catalogs for linear-plan IVM.

   The delta relation is materialized once up front: plan execution may
   scan a table several times (and the optimizer asks for row counts
   before any scan runs), so the substituted scan must be re-traversable
   regardless of how the caller built the incoming stream. *)

let delta_catalog ~base ~table ~delta =
  let rows = Ops.to_list delta in
  let schema = delta.Ops.schema in
  let n = List.length rows in
  {
    Plan.scan =
      (fun name cols ->
        if String.equal name table then
          let r = Ops.of_list schema rows in
          match cols with [] -> r | _ -> Ops.project cols r
        else base.Plan.scan name cols);
    schema_of =
      (fun name ->
        if String.equal name table then schema else base.Plan.schema_of name);
    row_count =
      (fun name ->
        if String.equal name table then n else base.Plan.row_count name);
  }

let delta_rows ~base ~table ~delta plan =
  Plan.execute (delta_catalog ~base ~table ~delta) plan
