type t = { schema : Schema.t; columns : Column.t array; nrows : int }

let of_columns schema cols =
  if Array.length cols <> Schema.arity schema then
    invalid_arg "Col_store.of_columns: arity";
  let nrows = if Array.length cols = 0 then 0 else Array.length cols.(0) in
  Array.iter
    (fun c ->
      if Array.length c <> nrows then invalid_arg "Col_store: ragged columns")
    cols;
  (* Columns compress independently — one task per column. *)
  let columns =
    Gb_par.Pool.map_array
      (fun i -> Column.compress (Schema.ty schema i) cols.(i))
      (Array.init (Array.length cols) Fun.id)
  in
  { schema; columns; nrows }

let of_rows schema rows =
  let nrows = List.length rows in
  let arity = Schema.arity schema in
  let cols = Array.init arity (fun _ -> Array.make nrows (Value.Int 0)) in
  List.iteri
    (fun r row ->
      if Array.length row <> arity then invalid_arg "Col_store.of_rows: arity";
      for c = 0 to arity - 1 do
        cols.(c).(r) <- row.(c)
      done)
    rows;
  of_columns schema cols

let schema t = t.schema
let row_count t = t.nrows
let column t i = t.columns.(i)

let iter_cols t names f =
  let idx = List.map (Schema.index t.schema) names in
  let mats = List.map (fun i -> Column.to_values t.columns.(i)) idx in
  let mats = Array.of_list mats in
  let width = Array.length mats in
  for r = 0 to t.nrows - 1 do
    let row = Array.make width (Value.Int 0) in
    for c = 0 to width - 1 do
      row.(c) <- mats.(c).(r)
    done;
    f row
  done

let iter t f =
  iter_cols t (List.map fst (Schema.columns t.schema)) f

let rows_scanned = Gb_obs.Metric.counter ~unit_:"row" "storage.rows_scanned"
let values_decoded = Gb_obs.Metric.counter ~unit_:"value" "storage.values_decoded"

let to_seq t names =
  let idx = List.map (Schema.index t.schema) names in
  Gb_obs.Metric.add rows_scanned t.nrows;
  Gb_obs.Metric.add values_decoded (t.nrows * List.length idx);
  (* Decoding is per-column independent — one task per column. *)
  let mats =
    Array.of_list
      (Gb_par.Pool.map_list (fun i -> Column.to_values t.columns.(i)) idx)
  in
  let width = Array.length mats in
  let rec go r () =
    if r >= t.nrows then Seq.Nil
    else begin
      let row = Array.init width (fun c -> mats.(c).(r)) in
      Seq.Cons (row, go (r + 1))
    end
  in
  go 0

let compression_report t =
  List.mapi
    (fun i (name, _) ->
      (name, Column.encoding_name t.columns.(i), Column.byte_size t.columns.(i)))
    (Schema.columns t.schema)

let zone_block = 4096

(* Per-block (min, max) of a numeric column — computed on demand and not
   cached: the store is immutable and scans dominate, so the single pass
   here is cheap relative to what skipping saves. *)
let zone_map t col_idx =
  let c = t.columns.(col_idx) in
  let nblocks = (t.nrows + zone_block - 1) / zone_block in
  let lo = Array.make nblocks infinity in
  let hi = Array.make nblocks neg_infinity in
  Column.iter
    (fun i v ->
      let b = i / zone_block in
      let f = Value.to_float v in
      if f < lo.(b) then lo.(b) <- f;
      if f > hi.(b) then hi.(b) <- f)
    c;
  (lo, hi)

let scan_range t names ~on ~lo ~hi =
  let oi = Schema.index t.schema on in
  let zlo, zhi = zone_map t oi in
  let live =
    Array.init (Array.length zlo) (fun b -> not (zhi.(b) < lo || zlo.(b) > hi))
  in
  let skipped =
    Array.fold_left (fun acc alive -> if alive then acc else acc + 1) 0 live
  in
  let idx = List.map (Schema.index t.schema) names in
  Gb_obs.Metric.add rows_scanned (t.nrows - (skipped * zone_block));
  Gb_obs.Metric.add values_decoded (t.nrows * (1 + List.length idx));
  let mats =
    Array.of_list
      (Gb_par.Pool.map_list (fun i -> Column.to_values t.columns.(i)) idx)
  in
  let on_vals = Column.to_values t.columns.(oi) in
  let width = Array.length mats in
  let lanes = Gb_par.Pool.jobs () in
  if lanes > 1 && not (Gb_par.Pool.in_parallel_region ()) then begin
    (* Block-parallel filter, deferred to first pull so the operator
       stays lazy at construction. Zone blocks partition the row space;
       each task selects its surviving row indices, and block results
       concatenate in ascending order — the same row sequence the
       sequential scan below yields. *)
    let rows () =
      let nblocks = Array.length live in
      let selected =
        Gb_par.Pool.map_list
          (fun b ->
            if not live.(b) then []
            else begin
              let r_hi = min t.nrows ((b + 1) * zone_block) in
              let acc = ref [] in
              for r = r_hi - 1 downto b * zone_block do
                let v = Value.to_float on_vals.(r) in
                if v >= lo && v <= hi then acc := r :: !acc
              done;
              !acc
            end)
          (List.init nblocks Fun.id)
      in
      let rec emit = function
        | [] -> Seq.Nil
        | r :: rest ->
          Seq.Cons (Array.init width (fun c -> mats.(c).(r)), fun () -> emit rest)
      in
      emit (List.concat selected)
    in
    (rows, skipped)
  end
  else begin
    let rec go r () =
      if r >= t.nrows then Seq.Nil
      else if not live.(r / zone_block) then
        (* Jump to the next block boundary. *)
        go (((r / zone_block) + 1) * zone_block) ()
      else begin
        let v = Value.to_float on_vals.(r) in
        if v >= lo && v <= hi then
          Seq.Cons (Array.init width (fun c -> mats.(c).(r)), go (r + 1))
        else go (r + 1) ()
      end
    in
    (go 0, skipped)
  end
