type rel = { schema : Schema.t; rows : Value.t array Seq.t }

let of_list schema rows = { schema; rows = List.to_seq rows }
let to_list r = List.of_seq r.rows

let count r = Seq.fold_left (fun n _ -> n + 1) 0 r.rows

let scan_row_store rs =
  { schema = Row_store.schema rs; rows = Row_store.to_seq rs }

let scan_col_store cs names =
  {
    schema = Schema.project (Col_store.schema cs) names;
    rows = Col_store.to_seq cs names;
  }

let rows_out = Gb_obs.Metric.counter ~unit_:"row" "relops.rows"

(* [gc] is the Profile snapshot taken when the loop first pulled; its
   delta rides the span as attributes only — fused loops can be
   abandoned mid-stream, so they never feed the gc.* counters (that is
   {!Gb_obs.Profile.with_}'s job, which is exception-safe). *)
let emit_op_span ~name ~t0 ~gc n =
  Gb_obs.Metric.add rows_out n;
  Gb_obs.Obs.Span.emit ~track:Gb_obs.Obs.Wall ~cat:"op"
    ~attrs:(("rows", Gb_obs.Obs.Int n) :: Gb_obs.Profile.delta_attrs gc)
    ~name ~t0
    ~t1:(Gb_obs.Obs.now ())
    ()

(* [?trace] fuses the operator's span into its own streaming loop: the
   row count and first-pull-to-exhaustion timing cost an int increment
   on top of the work the operator does anyway, instead of the extra
   Seq layer a generic [traced] wrap would add. *)
let filter ?trace e r =
  let pred = Expr.compile_pred r.schema e in
  match trace with
  | Some name when Gb_obs.Obs.enabled () ->
    let rows () =
      let t0 = Gb_obs.Obs.now () in
      let gc = Gb_obs.Profile.start () in
      let n = ref 0 in
      let rec next s () =
        match s () with
        | Seq.Nil ->
          emit_op_span ~name ~t0 ~gc !n;
          Seq.Nil
        | Seq.Cons (x, rest) ->
          if pred x then begin
            incr n;
            Seq.Cons (x, next rest)
          end
          else next rest ()
      in
      next r.rows ()
    in
    { r with rows }
  | _ -> { r with rows = Seq.filter pred r.rows }

let project ?trace names r =
  let idx = Array.of_list (List.map (Schema.index r.schema) names) in
  let schema = Schema.project r.schema names in
  let f row = Array.map (fun i -> row.(i)) idx in
  match trace with
  | Some name when Gb_obs.Obs.enabled () ->
    let rows () =
      let t0 = Gb_obs.Obs.now () in
      let gc = Gb_obs.Profile.start () in
      let n = ref 0 in
      let rec next s () =
        match s () with
        | Seq.Nil ->
          emit_op_span ~name ~t0 ~gc !n;
          Seq.Nil
        | Seq.Cons (x, rest) ->
          incr n;
          Seq.Cons (f x, next rest)
      in
      next r.rows ()
    in
    { schema; rows }
  | _ -> { schema; rows = Seq.map f r.rows }

let map_column name e r =
  let f = Expr.compile r.schema e in
  (* Evaluate on a sample row lazily is not possible; type the new column
     from the expression's shape: constants and comparisons are ints,
     otherwise fall back to float for arithmetic over float columns. *)
  let rec ty_of = function
    | Expr.Const v -> Value.type_of v
    | Expr.Col n -> Schema.ty r.schema (Schema.index r.schema n)
    | Expr.Cmp _ | Expr.And _ | Expr.Or _ | Expr.Not _ -> Value.TInt
    | Expr.Arith (_, a, b) -> (
      match (ty_of a, ty_of b) with
      | Value.TInt, Value.TInt -> Value.TInt
      | _ -> Value.TFloat)
  in
  {
    schema = Schema.concat r.schema (Schema.make [ (name, ty_of e) ]);
    rows = Seq.map (fun row -> Array.append row [| f row |]) r.rows;
  }

(* Partitioned parallel build+probe, used when the Domain pool has more
   than one lane. The output row sequence is byte-identical to the
   sequential loop's:

   - the build side is split into fixed-grain chunks, each chunk scatters
     its rows into per-partition lists (partition = generic hash of the
     join key), and the per-chunk lists are stitched in chunk order — so
     every partition sees its rows in original right-side order;
   - each partition's hash table is then built exactly as the sequential
     build would over that row subset ([replace k (row :: existing)], so
     matches come back in right order after the [List.rev]);
   - probe chunks each emit their output rows in left order, and chunk
     outputs concatenate in order.

   All rows with equal keys share a partition, so per-left-row match
   lists — and hence the whole output — match the sequential join. The
   price is materialization at first pull; the 1-lane path below keeps
   the original fully streaming loop. *)
let hash_join_par ~lanes ~lkey ~rkey left_rows right_rows =
  let module Pool = Gb_par.Pool in
  let rarr = Array.of_seq right_rows in
  let larr = Array.of_seq left_rows in
  let rec pow2 n = if n >= 4 * lanes || n >= 64 then n else pow2 (2 * n) in
  let nparts = pow2 8 in
  let part_of k = Hashtbl.hash k land (nparts - 1) in
  let grain = 8192 in
  let chunk_ranges = Pool.ranges ~grain ~lo:0 ~hi:(Array.length rarr) in
  let scattered =
    Pool.map_list
      (fun (a, b) ->
        let buckets = Array.make nparts [] in
        for i = b - 1 downto a do
          let row = rarr.(i) in
          let p = part_of (rkey row) in
          buckets.(p) <- row :: buckets.(p)
        done;
        buckets)
      chunk_ranges
  in
  let tables =
    Pool.map_array
      (fun p ->
        let table = Hashtbl.create 1024 in
        List.iter
          (fun buckets ->
            List.iter
              (fun row ->
                let k = rkey row in
                let existing = try Hashtbl.find table k with Not_found -> [] in
                Hashtbl.replace table k (row :: existing))
              buckets.(p))
          scattered;
        table)
      (Array.init nparts Fun.id)
  in
  let probe_ranges = Pool.ranges ~grain ~lo:0 ~hi:(Array.length larr) in
  let outs =
    Pool.map_list
      (fun (a, b) ->
        let acc = ref [] in
        for i = a to b - 1 do
          let lrow = larr.(i) in
          let k = lkey lrow in
          match Hashtbl.find_opt tables.(part_of k) k with
          | None -> ()
          | Some matches ->
            List.iter
              (fun rrow -> acc := Array.append lrow rrow :: !acc)
              (List.rev matches)
        done;
        List.rev !acc)
      probe_ranges
  in
  List.concat outs

let hash_join ?trace ~on left right =
  let lidx = List.map (fun (l, _) -> Schema.index left.schema l) on in
  let ridx = List.map (fun (_, r) -> Schema.index right.schema r) on in
  let key idx row = List.map (fun i -> row.(i)) idx in
  let out_schema = Schema.concat left.schema right.schema in
  let build () =
    let table = Hashtbl.create 1024 in
    Seq.iter
      (fun row ->
        let k = key ridx row in
        let existing = try Hashtbl.find table k with Not_found -> [] in
        Hashtbl.replace table k (row :: existing))
      right.rows;
    table
  in
  (* Direct probe loop (cheaper than [Seq.concat_map] over per-match
     sub-sequences). [?trace] adds an int increment per output row and a
     span at exhaustion; it costs nothing when tracing is disabled. *)
  let rows () =
    let tr =
      match trace with
      | Some name when Gb_obs.Obs.enabled () ->
        Some (name, Gb_obs.Obs.now (), Gb_obs.Profile.start ())
      | _ -> None
    in
    let lanes = Gb_par.Pool.jobs () in
    if lanes > 1 && not (Gb_par.Pool.in_parallel_region ()) then begin
      let out =
        hash_join_par ~lanes ~lkey:(key lidx) ~rkey:(key ridx) left.rows
          right.rows
      in
      (match tr with
      | Some (name, t0, gc) -> emit_op_span ~name ~t0 ~gc (List.length out)
      | None -> ());
      List.to_seq out ()
    end
    else begin
      let table = build () in
      let n = ref 0 in
      let rec outer l () =
        match l () with
        | Seq.Nil ->
          (match tr with
          | Some (name, t0, gc) -> emit_op_span ~name ~t0 ~gc !n
          | None -> ());
          Seq.Nil
        | Seq.Cons (lrow, lrest) -> (
          match Hashtbl.find_opt table (key lidx lrow) with
          | None -> outer lrest ()
          | Some matches -> inner lrow (List.rev matches) lrest ())
      and inner lrow ms lrest () =
        match ms with
        | [] -> outer lrest ()
        | rrow :: tl ->
          incr n;
          Seq.Cons (Array.append lrow rrow, inner lrow tl lrest)
      in
      outer left.rows ()
    end
  in
  { schema = out_schema; rows }

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

type acc = {
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let aggregate ~group_by ~aggs r =
  let kidx = List.map (Schema.index r.schema) group_by in
  let agg_col = function
    | Count -> None
    | Sum c | Avg c | Min c | Max c -> Some (Schema.index r.schema c)
  in
  let specs = List.map (fun (name, a) -> (name, a, agg_col a)) aggs in
  let out_schema =
    Schema.make
      (List.map (fun k -> (k, Schema.ty r.schema (Schema.index r.schema k))) group_by
      @ List.map
          (fun (name, a, _) ->
            let ty = match a with Count -> Value.TInt | _ -> Value.TFloat in
            (name, ty))
          specs)
  in
  let rows () =
    let table = Hashtbl.create 256 in
    Seq.iter
      (fun row ->
        let k = List.map (fun i -> row.(i)) kidx in
        let accs =
          match Hashtbl.find_opt table k with
          | Some a -> a
          | None ->
            let a =
              List.map
                (fun _ -> { n = 0; sum = 0.; mn = infinity; mx = neg_infinity })
                specs
            in
            Hashtbl.add table k a;
            a
        in
        List.iter2
          (fun acc (_, _, col) ->
            acc.n <- acc.n + 1;
            match col with
            | None -> ()
            | Some i ->
              let v = Value.to_float row.(i) in
              acc.sum <- acc.sum +. v;
              if v < acc.mn then acc.mn <- v;
              if v > acc.mx then acc.mx <- v)
          accs specs)
      r.rows;
    let out = ref [] in
    Hashtbl.iter
      (fun k accs ->
        let agg_vals =
          List.map2
            (fun acc (_, a, _) ->
              match a with
              | Count -> Value.Int acc.n
              | Sum _ -> Value.Float acc.sum
              | Avg _ -> Value.Float (acc.sum /. float_of_int (max 1 acc.n))
              | Min _ -> Value.Float acc.mn
              | Max _ -> Value.Float acc.mx)
            accs specs
        in
        out := Array.of_list (k @ agg_vals) :: !out)
      table;
    List.to_seq !out ()
  in
  { schema = out_schema; rows }

let sort ~by r =
  let keys = List.map (fun (n, dir) -> (Schema.index r.schema n, dir)) by in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
        let c = Value.compare a.(i) b.(i) in
        let c = match dir with `Asc -> c | `Desc -> -c in
        if c <> 0 then c else go rest
    in
    go keys
  in
  let rows () =
    let arr = Array.of_seq r.rows in
    Array.sort cmp arr;
    Array.to_seq arr ()
  in
  { r with rows }

let limit n r = { r with rows = Seq.take n r.rows }

let column_floats r name =
  let i = Schema.index r.schema name in
  let out = ref [] in
  Seq.iter (fun row -> out := Value.to_float row.(i) :: !out) r.rows;
  Array.of_list (List.rev !out)

let guard ?(interval = 4096) ?trace check r =
  match trace with
  | Some name when Gb_obs.Obs.enabled () ->
    (* Fused: the guard already touches every row, so the scan span's
       count and timing ride its loop instead of adding a layer. *)
    let rows () =
      let t0 = Gb_obs.Obs.now () in
      let gc = Gb_obs.Profile.start () in
      let n = ref 0 in
      let rec next s () =
        match s () with
        | Seq.Nil ->
          emit_op_span ~name ~t0 ~gc !n;
          Seq.Nil
        | Seq.Cons (row, rest) ->
          incr n;
          if !n mod interval = 0 then check ();
          Seq.Cons (row, next rest)
      in
      next r.rows ()
    in
    { r with rows }
  | _ ->
    let n = ref 0 in
    {
      r with
      rows =
        Seq.map
          (fun row ->
            incr n;
            if !n mod interval = 0 then check ();
            row)
          r.rows;
    }

(* Wrap a relation so that one full consumption emits a wall-clock span
   covering first pull to exhaustion, carrying the row count. Volcano
   operators are lazy, so construction time is meaningless; the span
   brackets the work the operator actually forced. Per-element cost when
   tracing is an int increment plus one extra Seq node — operators with
   a streaming loop of their own should prefer their fused [?trace]
   argument, which avoids the extra layer entirely. Disabled tracing
   returns the relation untouched. *)
let traced ?(cat = "op") ?(attrs = []) ~name r =
  if not (Gb_obs.Obs.enabled ()) then r
  else
    let rows () =
      let t0 = Gb_obs.Obs.now () in
      let gc = Gb_obs.Profile.start () in
      let n = ref 0 in
      let rec wrap s () =
        match s () with
        | Seq.Nil ->
          Gb_obs.Metric.add rows_out !n;
          Gb_obs.Obs.Span.emit ~track:Gb_obs.Obs.Wall ~cat
            ~attrs:
              (("rows", Gb_obs.Obs.Int !n)
              :: (Gb_obs.Profile.delta_attrs gc @ attrs))
            ~name ~t0 ~t1:(Gb_obs.Obs.now ()) ();
          Seq.Nil
        | Seq.Cons (x, rest) ->
          incr n;
          Seq.Cons (x, wrap rest)
      in
      wrap r.rows ()
    in
    { r with rows }

let overlap_out = Gb_obs.Metric.counter ~unit_:"pair" "relops.overlap_pairs"

(* Sort-merge interval sweep join: left and right each carry a half-open
   genomic interval as (start, length) columns.  Output rows are
   [lrow ++ rrow ++ [overlap_len]] for every pair sharing at least
   [min_overlap] bases, in ascending (left row index, right row index)
   order — so id-ordered inputs give the canonical Q6 ordering.

   The sweep is partitioned over OUTPUT ranges — fixed-grain chunks of
   the left side via [Pool.ranges], pool-size-independent — and chunk
   results are stitched in chunk order, so the output is bitwise
   identical at any domain count (the per-pair payload is integer-only,
   so even "identical" is exact, not just ULP-close). *)
let interval_join ?trace ?(min_overlap = 1) ~left_span:(llo, llen)
    ~right_span:(rlo, rlen) left right =
  let module Ranges = Gb_util.Ranges in
  let module Pool = Gb_par.Pool in
  let li_lo = Schema.index left.schema llo
  and li_len = Schema.index left.schema llen
  and ri_lo = Schema.index right.schema rlo
  and ri_len = Schema.index right.schema rlen in
  let out_schema =
    Schema.concat
      (Schema.concat left.schema right.schema)
      (Schema.make [ ("overlap_len", Value.TInt) ])
  in
  let rows () =
    let tr =
      match trace with
      | Some name when Gb_obs.Obs.enabled () ->
        Some (name, Gb_obs.Obs.now (), Gb_obs.Profile.start ())
      | _ -> None
    in
    let larr = Array.of_seq left.rows and rarr = Array.of_seq right.rows in
    let iv_of arr ilo ilen i =
      let row = arr.(i) in
      Ranges.of_start_len ~id:i
        ~start:(Value.to_int row.(ilo))
        ~len:(Value.to_int row.(ilen))
    in
    let livs = Array.init (Array.length larr) (iv_of larr li_lo li_len) in
    let rivs = Array.init (Array.length rarr) (iv_of rarr ri_lo ri_len) in
    let chunks = Pool.ranges ~grain:2048 ~lo:0 ~hi:(Array.length larr) in
    let outs =
      Pool.map_list
        (fun (a, b) ->
          Ranges.sweep_join ~min_overlap (Array.sub livs a (b - a)) rivs
          |> List.map (fun (li, ri, len) ->
                 Array.append
                   (Array.append larr.(li) rarr.(ri))
                   [| Value.Int len |]))
        chunks
    in
    let out = List.concat outs in
    Gb_obs.Metric.add overlap_out (List.length out);
    (match tr with
    | Some (name, t0, gc) -> emit_op_span ~name ~t0 ~gc (List.length out)
    | None -> ());
    List.to_seq out ()
  in
  { schema = out_schema; rows }

let merge_join ~on left right =
  let lidx = List.map (fun (l, _) -> Schema.index left.schema l) on in
  let ridx = List.map (fun (_, r) -> Schema.index right.schema r) on in
  let key idx row = List.map (fun i -> row.(i)) idx in
  let cmp_keys a b =
    let rec go = function
      | [], [] -> 0
      | x :: xs, y :: ys ->
        let c = Value.compare x y in
        if c <> 0 then c else go (xs, ys)
      | _ -> invalid_arg "merge_join: key arity"
    in
    go (a, b)
  in
  let out_schema = Schema.concat left.schema right.schema in
  let rows () =
    let larr = Array.of_seq left.rows and rarr = Array.of_seq right.rows in
    let by idx a b = cmp_keys (key idx a) (key idx b) in
    Array.sort (by lidx) larr;
    Array.sort (by ridx) rarr;
    let out = ref [] in
    let i = ref 0 and j = ref 0 in
    let nl = Array.length larr and nr = Array.length rarr in
    while !i < nl && !j < nr do
      let lk = key lidx larr.(!i) and rk = key ridx rarr.(!j) in
      let c = cmp_keys lk rk in
      if c < 0 then incr i
      else if c > 0 then incr j
      else begin
        (* Find the extent of the matching group on each side. *)
        let i1 = ref !i in
        while !i1 < nl && cmp_keys (key lidx larr.(!i1)) lk = 0 do
          incr i1
        done;
        let j1 = ref !j in
        while !j1 < nr && cmp_keys (key ridx rarr.(!j1)) rk = 0 do
          incr j1
        done;
        for a = !i to !i1 - 1 do
          for b = !j to !j1 - 1 do
            out := Array.append larr.(a) rarr.(b) :: !out
          done
        done;
        i := !i1;
        j := !j1
      end
    done;
    List.to_seq (List.rev !out) ()
  in
  { schema = out_schema; rows }
