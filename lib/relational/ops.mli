(** Volcano-style relational operators over lazy row streams.

    A [rel] pairs a schema with a lazy sequence of rows; operators compose
    pipelines that only do work when the sink forces them — so a timed
    query measures scan, decode, predicate, join and aggregate costs
    end-to-end. *)

type rel = { schema : Schema.t; rows : Value.t array Seq.t }

val of_list : Schema.t -> Value.t array list -> rel
val to_list : rel -> Value.t array list
val count : rel -> int

val scan_row_store : Row_store.t -> rel
val scan_col_store : Col_store.t -> string list -> rel
(** Late-materialization scan: only the named columns are read; the
    output schema is restricted to them (in that order). *)

val filter : ?trace:string -> Expr.t -> rel -> rel
(** [?trace] names a tracing span fused into the operator's own
    streaming loop (first pull to exhaustion, row count attached) —
    cheaper than wrapping the output in {!traced} because it adds no
    extra [Seq] layer. When GC profiling is on ({!Gb_obs.Profile}) the
    span also carries the loop's allocation delta as attributes. No-op
    while tracing is disabled. *)

val project : ?trace:string -> string list -> rel -> rel
(** [?trace] as in {!filter}. *)

val map_column : string -> Expr.t -> rel -> rel
(** [map_column name e r] appends a computed column. *)

val hash_join : ?trace:string -> on:(string * string) list -> rel -> rel -> rel
(** [hash_join ~on left right] equi-joins; builds a hash table on [right]
    (choose the smaller input as [right]); output schema is
    [Schema.concat left right]. [?trace] as in {!filter}, fused into the
    probe loop. *)

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

val aggregate : group_by:string list -> aggs:(string * agg) list -> rel -> rel
(** Hash aggregation; output columns are the group keys then the named
    aggregates. *)

val sort : by:(string * [ `Asc | `Desc ]) list -> rel -> rel
val limit : int -> rel -> rel

val column_floats : rel -> string -> float array
(** Materialize one column as floats (consumes the stream). *)

val guard : ?interval:int -> ?trace:string -> (unit -> unit) -> rel -> rel
(** [guard check r] invokes [check] every [interval] (default 4096) rows
    pulled through — the hook the engines use for cooperative query
    timeouts. [?trace] as in {!filter}: since the guard already touches
    every row, a scan span fused here costs no extra [Seq] layer. *)

val traced : ?cat:string -> ?attrs:Gb_obs.Obs.attrs -> name:string -> rel -> rel
(** Wrap a relation so that one full consumption emits a wall-clock
    tracing span (first pull to exhaustion) carrying the row count, and
    bumps the ["relops.rows"] counter. The per-element cost while
    tracing is one int increment plus one extra [Seq] node; with tracing
    disabled this is the identity. {!Plan.run} applies it to plan nodes
    that lack a fused [?trace] equivalent. *)

val interval_join :
  ?trace:string ->
  ?min_overlap:int ->
  left_span:string * string ->
  right_span:string * string ->
  rel ->
  rel ->
  rel
(** Sort-merge interval sweep join. [left_span]/[right_span] name each
    side's (start, length) columns describing a half-open genomic
    interval; the output is [left ++ right ++ overlap_len] for every
    pair sharing at least [min_overlap] bases (default 1), ordered by
    ascending (left row index, right row index) — canonical for
    id-ordered inputs. The sweep is partitioned over pool-independent
    left-side chunks and stitched in order, so output is bitwise
    identical at any domain count. Bumps ["relops.overlap_pairs"];
    [?trace] as in {!filter}. *)

val merge_join : on:(string * string) list -> rel -> rel -> rel
(** Sort-merge equi-join: sorts both inputs on the key columns, then
    merges, emitting the cross product of each matching key group. Output
    schema and row multiset match {!hash_join}. *)
