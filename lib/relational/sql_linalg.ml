module Mat = Gb_linalg.Mat

let triple_schema =
  Schema.make [ ("i", Value.TInt); ("j", Value.TInt); ("v", Value.TFloat) ]

let of_matrix m =
  let nr, nc = Mat.dims m in
  let rec go i j () =
    if i >= nr then Seq.Nil
    else if j >= nc then go (i + 1) 0 ()
    else
      Seq.Cons
        ( [| Value.Int i; Value.Int j; Value.Float (Mat.unsafe_get m i j) |],
          go i (j + 1) )
  in
  { Ops.schema = triple_schema; rows = go 0 0 }

let to_matrix ~rows ~cols rel =
  let m = Mat.create rows cols in
  let ii = Schema.index rel.Ops.schema "i" in
  let jj = Schema.index rel.Ops.schema "j" in
  let vv = Schema.index rel.Ops.schema "v" in
  Seq.iter
    (fun row ->
      Mat.set m (Value.to_int row.(ii)) (Value.to_int row.(jj))
        (Value.to_float row.(vv)))
    rel.Ops.rows;
  m

let rename rel = Ops.project [ "i"; "j"; "v" ] rel

let transpose rel =
  let r = rename rel in
  {
    Ops.schema = triple_schema;
    rows = Seq.map (fun row -> [| row.(1); row.(0); row.(2) |]) r.Ops.rows;
  }

let matmul ?(check = fun () -> ()) a b =
  let a = rename a and b = rename b in
  let joined = Ops.hash_join ~on:[ ("j", "i") ] a b in
  (* joined schema: i j v i_r j_r v_r *)
  let prod =
    Ops.map_column "prod"
      Expr.(Arith (Mul, col "v", col "v_r"))
      joined
  in
  let prod = Ops.guard ~interval:65536 check prod in
  let grouped =
    Ops.aggregate ~group_by:[ "i"; "j_r" ] ~aggs:[ ("v", Ops.Sum "prod") ] prod
  in
  {
    Ops.schema = triple_schema;
    rows =
      (Ops.project [ "i"; "j_r"; "v" ] grouped).Ops.rows;
  }

let center_columns ~rows rel =
  let r = rename rel in
  let means =
    Ops.aggregate ~group_by:[ "j" ] ~aggs:[ ("colsum", Ops.Sum "v") ] r
  in
  let means =
    Ops.map_column "colmean"
      Expr.(Arith (Div, col "colsum", float (float_of_int rows)))
      means
  in
  let rel2 = rename rel in
  let joined = Ops.hash_join ~on:[ ("j", "j") ] rel2 means in
  let centered =
    Ops.map_column "cv" Expr.(Arith (Sub, col "v", col "colmean")) joined
  in
  let out = Ops.project [ "i"; "j"; "cv" ] centered in
  { Ops.schema = triple_schema; rows = out.Ops.rows }

let covariance ?check ~rows rel =
  let centered = center_columns ~rows rel in
  (* Materialize: the product consumes the centered relation twice. *)
  let cached =
    Gb_obs.Profile.with_ ~cat:"op" ~name:"sql.center_columns" (fun () ->
        Ops.of_list triple_schema (Ops.to_list centered))
  in
  let prod = matmul ?check (transpose cached) cached in
  let scale = 1. /. float_of_int (rows - 1) in
  let scaled =
    Ops.map_column "sv" Expr.(Arith (Mul, col "v", float scale)) prod
  in
  let out = Ops.project [ "i"; "j"; "sv" ] scaled in
  Ops.traced ~name:"sql.covariance"
    { Ops.schema = triple_schema; rows = out.Ops.rows }

(* Mat-vec in SQL: join the matrix triples against a vector relation
   (j, x) and sum per row. *)
let vec_schema = Schema.make [ ("j", Value.TInt); ("x", Value.TFloat) ]

let of_vec v =
  Ops.of_list vec_schema
    (Array.to_list (Array.mapi (fun j x -> [| Value.Int j; Value.Float x |]) v))

let matvec rel v_rel =
  let r = rename rel in
  let joined = Ops.hash_join ~on:[ ("j", "j") ] r v_rel in
  let prod = Ops.map_column "p" Expr.(Arith (Mul, col "v", col "x")) joined in
  Ops.aggregate ~group_by:[ "i" ] ~aggs:[ ("y", Ops.Sum "p") ] prod

let vec_of_rel ~n rel =
  let out = Array.make n 0. in
  let ii = Schema.index rel.Ops.schema "i" in
  let yy = Schema.index rel.Ops.schema "y" in
  Seq.iter
    (fun row -> out.(Value.to_int row.(ii)) <- Value.to_float row.(yy))
    rel.Ops.rows;
  out

let power_iteration_eigs ?(check = fun () -> ()) ~rows ~cols ~k ~iters rel =
  Gb_obs.Profile.with_ ~cat:"kernel" ~name:"sql.power_iteration"
    ~attrs:
      [
        ("rows", Gb_obs.Obs.Int rows);
        ("cols", Gb_obs.Obs.Int cols);
        ("k", Gb_obs.Obs.Int k);
        ("iters", Gb_obs.Obs.Int iters);
      ]
  @@ fun () ->
  let a = Ops.of_list triple_schema (Ops.to_list (rename rel)) in
  let at = Ops.of_list triple_schema (Ops.to_list (transpose a)) in
  let rng = Gb_util.Prng.create 0x5AD5AD5AL in
  let deflated : (float * float array) list ref = ref [] in
  let eigs = Array.make k 0. in
  for e = 0 to k - 1 do
    let v = ref (Array.init cols (fun _ -> Gb_util.Prng.normal rng)) in
    let lambda = ref 0. in
    for _ = 1 to iters do
      check ();
      (* w = A^T (A v), via two SQL mat-vecs. *)
      let av_arr = vec_of_rel ~n:rows (matvec a (of_vec !v)) in
      let w = vec_of_rel ~n:cols (matvec at (of_vec av_arr)) in
      (* Deflate previously found directions. *)
      List.iter
        (fun (lam, u) ->
          let c = Gb_linalg.Vec.dot u !v in
          Gb_linalg.Vec.axpy (-.lam *. c) u w)
        !deflated;
      let n = Gb_linalg.Vec.nrm2 w in
      if n > 0. then begin
        lambda := n;
        v := Gb_linalg.Vec.scale (1. /. n) w
      end
    done;
    eigs.(e) <- !lambda;
    deflated := (!lambda, !v) :: !deflated
  done;
  eigs
