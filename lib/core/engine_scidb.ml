module Sim = Gb_util.Clock.Sim
module Mat = Gb_linalg.Mat
module Chunked = Gb_arraydb.Chunked
module Attr = Gb_arraydb.Attr_array
module Device = Gb_coproc.Device

let mat_bytes m =
  let r, c = Mat.dims m in
  8 * r * c

let run_with_clock ?offload ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:timeout_s in
  let clock = Sim.create () in
  let adb = Dataset.load_array_db ds in
  let phase name f =
    let t0 = Sim.now clock in
    let gc = Gb_obs.Profile.start () in
    let r = Sim.run_measured clock f in
    Gb_util.Deadline.check dl;
    let t1 = Sim.now clock in
    Gb_obs.Obs.Span.emit ~cat:"phase"
      ~attrs:(Gb_obs.Profile.delta_attrs gc)
      ~name ~t0 ~t1 ();
    (r, t1 -. t0)
  in
  (* Analytics dispatch: host custom code, or offload to the coprocessor
     (charging PCIe transfers and dividing measured kernel time by the
     device speedup for that kernel class). *)
  let analytics_phase ~bytes_in ~bytes_out cls f =
    let t0 = Sim.now clock in
    let r =
      match offload with
      | None -> Device.host_time clock f
      | Some dev -> Device.offload dev clock ~bytes_in ~bytes_out cls f
    in
    Gb_util.Deadline.check dl;
    let t1 = Sim.now clock in
    Gb_obs.Obs.Span.emit ~cat:"phase" ~name:"analytics" ~t0 ~t1 ();
    (r, t1 -. t0)
  in
  let go_terms = ds.Gb_datagen.Generate.spec.Gb_datagen.Spec.go_terms in
  match query with
  | Query.Q1_regression ->
    let (x, y), dm =
      phase "dm" (fun () ->
          let gene_ids =
            Attr.filter adb.Dataset.gene_attrs (fun i ->
                Attr.get adb.Dataset.gene_attrs "func" i
                < float_of_int params.func_threshold)
          in
          let sel = Chunked.select_cols adb.Dataset.expression gene_ids in
          let y = Attr.column adb.Dataset.patient_attrs "drug_response" in
          (Chunked.to_matrix sel, y))
    in
    let payload, analytics =
      analytics_phase
        ~bytes_in:(mat_bytes x + (8 * Array.length y))
        ~bytes_out:(8 * (snd (Mat.dims x) + 1))
        Device.Blas3
        (fun () -> Qcommon.regression_of x y)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q2_covariance ->
    let (m, gene_ids), dm0 =
      phase "dm" (fun () ->
          let pat_ids =
            Attr.filter adb.Dataset.patient_attrs (fun i ->
                Attr.get adb.Dataset.patient_attrs "disease_id" i
                = float_of_int params.disease_id)
          in
          let sel = Chunked.select_rows adb.Dataset.expression pat_ids in
          let _, g = Chunked.dims adb.Dataset.expression in
          (Chunked.to_matrix sel, Array.init g Fun.id))
    in
    let payload, analytics =
      analytics_phase ~bytes_in:(mat_bytes m)
        ~bytes_out:(8 * Array.length gene_ids * Array.length gene_ids)
        Device.Blas3
        (fun () ->
          Qcommon.covariance_of ~gene_ids
            ~top_fraction:params.cov_top_fraction m)
    in
    (* Step 4: pair gene ids look up the metadata attribute arrays — a
       native array cross-lookup, no recast. *)
    let pairs =
      match payload with Engine.Cov_pairs p -> p.top_pairs | _ -> []
    in
    let _meta, dm1 =
      phase "dm:metadata" (fun () ->
          List.rev_map
            (fun (g1, _, _) ->
              Attr.get adb.Dataset.gene_attrs "func" g1)
            pairs)
    in
    Engine.Completed ({ dm = dm0 +. dm1; analytics }, payload)
  | Query.Q3_biclustering ->
    let m, dm =
      phase "dm" (fun () ->
          let pat_ids =
            Attr.filter adb.Dataset.patient_attrs (fun i ->
                Attr.get adb.Dataset.patient_attrs "age" i
                < float_of_int params.max_age
                && Attr.get adb.Dataset.patient_attrs "gender" i
                   = float_of_int params.gender)
          in
          Chunked.to_matrix (Chunked.select_rows adb.Dataset.expression pat_ids))
    in
    let payload, analytics =
      analytics_phase ~bytes_in:(mat_bytes m) ~bytes_out:4096 Device.Light
        (fun () -> Qcommon.biclusters_of m)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q4_svd ->
    let x, dm =
      phase "dm" (fun () ->
          let gene_ids =
            Attr.filter adb.Dataset.gene_attrs (fun i ->
                Attr.get adb.Dataset.gene_attrs "func" i
                < float_of_int params.func_threshold)
          in
          Chunked.to_matrix (Chunked.select_cols adb.Dataset.expression gene_ids))
    in
    let payload, analytics =
      analytics_phase ~bytes_in:(mat_bytes x)
        ~bytes_out:(8 * params.svd_k * (fst (Mat.dims x) + snd (Mat.dims x)))
        Device.Blas2
        (fun () -> Qcommon.svd_of ~k:params.svd_k x)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q5_statistics ->
    let scores, dm =
      phase "dm" (fun () ->
          let sample =
            Qcommon.sampled_patients ds params.sample_fraction
          in
          Qcommon.enrichment_scores
            (Chunked.to_matrix
               (Chunked.select_rows adb.Dataset.expression sample)))
    in
    let payload, analytics =
      analytics_phase
        ~bytes_in:((8 * Array.length scores) + (16 * Array.length adb.Dataset.go_pairs))
        ~bytes_out:(16 * go_terms) Device.Stat
        (fun () ->
          Qcommon.enrichment_of ~n_genes:(Array.length scores)
            ~go_pairs:adb.Dataset.go_pairs ~go_terms
            ~p_threshold:params.p_threshold ~scores)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q6_overlap ->
    (* Chunk-aligned range intersection: the coordinate axis is divided
       into fixed-width chunks (the array store's natural layout); each
       interval is replicated into every chunk it touches during dm, and
       analytics intersects within each chunk independently.  A pair is
       counted only by the chunk owning max(starts), so replication never
       double-counts.  Chunks are processed via the pool over a
       pool-size-independent list, and the final canonical sort makes
       the payload identical to every other plan. *)
    let module Ranges = Gb_util.Ranges in
    let bin_width = Ranges.default_bin_width in
    let (vbins, gbins, nbins), dm =
      phase "dm" (fun () ->
          let vivs =
            Array.mapi
              (fun id (vstart, vlen) ->
                Ranges.of_start_len ~id ~start:vstart ~len:vlen)
              adb.Dataset.variant_ranges
          in
          let givs = Qcommon.gene_ivs ds in
          let max_hi =
            let m = ref 0 in
            Array.iter (fun (iv : Ranges.iv) -> m := max !m iv.hi) vivs;
            Array.iter (fun (iv : Ranges.iv) -> m := max !m iv.hi) givs;
            !m
          in
          let nbins = 1 + Ranges.bin_of ~bin_width (max 0 (max_hi - 1)) in
          let scatter ivs =
            let bins = Array.make nbins [] in
            for i = Array.length ivs - 1 downto 0 do
              List.iter
                (fun b ->
                  if b >= 0 && b < nbins then bins.(b) <- ivs.(i) :: bins.(b))
                (Ranges.bins_of ~bin_width ivs.(i))
            done;
            Array.map Array.of_list bins
          in
          (scatter vivs, scatter givs, nbins))
    in
    let n_variants = Array.length adb.Dataset.variant_ranges in
    let n_genes = Array.length ds.Gb_datagen.Generate.genes in
    let payload, analytics =
      analytics_phase
        ~bytes_in:(16 * (n_variants + n_genes))
        ~bytes_out:(24 * n_variants) Device.Stat
        (fun () ->
          let per_bin =
            Gb_par.Pool.map_list
              (fun bin ->
                Ranges.sweep_join ~min_overlap:params.min_overlap_bp
                  vbins.(bin) gbins.(bin)
                |> List.filter (fun (v, g, _) ->
                       Ranges.owns_pair ~bin_width ~bin
                         (Ranges.of_start_len ~id:v
                            ~start:
                              (fst adb.Dataset.variant_ranges.(v))
                            ~len:(snd adb.Dataset.variant_ranges.(v)))
                         (let gn = ds.Gb_datagen.Generate.genes.(g) in
                          Ranges.of_start_len ~id:g ~start:gn.position
                            ~len:gn.length)))
              (List.init nbins Fun.id)
          in
          Qcommon.overlaps_of ~n_variants ~n_genes (List.concat per_bin))
    in
    Engine.Completed ({ dm; analytics }, payload)

let engine =
  {
    Engine.name = "SciDB";
    kind = `Single_node;
    supports = (fun _ -> true);
    load = (fun ds q ~params ~timeout_s -> run_with_clock ds q ~params ~timeout_s);
  }
