open Gb_relational
module Mat = Gb_linalg.Mat
module G = Gb_datagen.Generate
module Cluster = Gb_cluster.Cluster
module Partition = Gb_cluster.Partition
module Par = Gb_cluster.Par_linalg

type node_db = { db : Relops.db; block_start : int; block_len : int }

(* Partition the microarray table by patient block; replicate the small
   dimension tables on every node. *)
let partition (ds : Dataset.t) nodes ~check =
  let p, _ = Mat.dims ds.expression in
  let patients_rows = Dataset.patients_rows ds in
  let genes_rows = Dataset.genes_rows ds in
  let go_rows = Dataset.go_rows ds in
  let variants_rows = Dataset.variants_rows ds in
  Partition.block_rows ~rows:p ~nodes
  |> Array.map (fun (start, len) ->
         let micro_rows =
           Dataset.microarray_rows ds
           |> List.filter (fun row ->
                  let pid = Value.to_int row.(1) in
                  pid >= start && pid < start + len)
         in
         let micro =
           Col_store.of_rows Dataset.microarray_schema micro_rows
         in
         let pats = Col_store.of_rows Dataset.patients_schema patients_rows in
         let genes = Col_store.of_rows Dataset.genes_schema genes_rows in
         let go = Col_store.of_rows Dataset.go_schema go_rows in
         let vars = Col_store.of_rows Dataset.variants_schema variants_rows in
         let store = function
           | "microarray" -> micro
           | "patients" -> pats
           | "genes" -> genes
           | "go" -> go
           | "variants" -> vars
           | table -> invalid_arg ("unknown table " ^ table)
         in
         let scan table cols = Ops.scan_col_store (store table) cols in
         let row_count table = Col_store.row_count (store table) in
         {
           db = { Relops.scan; row_count; check };
           block_start = start;
           block_len = len;
         })

let mat_bytes m =
  let r, c = Mat.dims m in
  8 * r * c

let pad_empty m n_cols =
  if snd (Mat.dims m) = n_cols then m else Mat.create 0 n_cols

(* pbdR boundary: each node exports its partition through text before the
   parallel kernels see it. *)
let cross m = function
  | `Export_to_pbdr ->
    if fst (Mat.dims m) = 0 || snd (Mat.dims m) = 0 then m
    else Export.roundtrip_matrix m
  | `Udf -> m

let run ~boundary ?fault ~nodes ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:(2. *. timeout_s) in
  let cluster = Cluster.create ~nodes () in
  Cluster.set_deadline cluster timeout_s;
  Qcommon.arm_cluster cluster fault;
  let check () = Gb_util.Deadline.check dl in
  let data = partition ds nodes ~check in
  let phase name f =
    let t0 = Cluster.elapsed cluster in
    let gc = Gb_obs.Profile.start () in
    let r = f () in
    check ();
    let t1 = Cluster.elapsed cluster in
    Gb_obs.Obs.Span.emit ~cat:"phase"
      ~attrs:(Gb_obs.Profile.delta_attrs gc)
      ~name ~t0 ~t1 ();
    (r, t1 -. t0)
  in
  let n_genes = Array.length ds.G.genes in
  let go_terms = ds.G.spec.Gb_datagen.Spec.go_terms in
  let head_only f =
    let out = ref None in
    let _ =
      Cluster.superstep cluster (fun node ->
          if node = 0 then out := Some (f ()))
    in
    Option.get !out
  in
  match query with
  | Query.Q1_regression ->
    let (parts, ys), dm =
      phase "dm" (fun () ->
          let locals =
            Cluster.superstep cluster (fun node ->
                let x, y, _ = Relops.q1_dm data.(node).db params in
                (cross x boundary, y))
          in
          (Array.map fst locals, Array.map snd locals))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let beta = Par.regression cluster parts ys in
          let r2 = Par.r_squared cluster parts ys ~beta in
          Engine.Regression
            {
              intercept = beta.(0);
              coefficients = Array.sub beta 1 (Array.length beta - 1);
              r2;
            })
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q2_covariance ->
    let parts, dm0 =
      phase "dm" (fun () ->
          Cluster.superstep cluster (fun node ->
              let m, _ = Relops.q2_dm data.(node).db params in
              cross (pad_empty m n_genes) boundary))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let c = Par.covariance cluster parts in
          let pairs =
            head_only (fun () ->
                Gb_linalg.Covariance.top_fraction c params.cov_top_fraction)
          in
          Engine.Cov_pairs { n_genes; top_pairs = pairs })
    in
    let pairs =
      match payload with Engine.Cov_pairs p -> p.top_pairs | _ -> []
    in
    let _n, dm1 =
      phase "dm:join_metadata" (fun () ->
          head_only (fun () -> Relops.q2_join_metadata data.(0).db pairs))
    in
    Engine.completed { dm = dm0 +. dm1; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q3_biclustering ->
    let head_matrix, dm =
      phase "dm" (fun () ->
          let parts =
            Cluster.superstep cluster (fun node ->
                let m = Relops.q3_dm data.(node).db params in
                cross (pad_empty m n_genes) boundary)
          in
          let total_bytes =
            Array.fold_left (fun acc p -> acc + mat_bytes p) 0 parts
          in
          Cluster.gather cluster ~bytes_per_node:(total_bytes / nodes);
          Partition.concat_rows parts)
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          head_only (fun () ->
              (match boundary with
              | `Udf ->
                for _ = 1 to 3 do
                  ignore (Export.roundtrip_matrix head_matrix)
                done
              | `Export_to_pbdr -> ());
              Qcommon.biclusters_of head_matrix))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q4_svd ->
    let parts, dm =
      phase "dm" (fun () ->
          Cluster.superstep cluster (fun node ->
              let x, _ = Relops.q4_dm data.(node).db params in
              cross x boundary))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let eigs = Par.lanczos_eigs cluster ~k:params.svd_k parts in
          Engine.Singular_values
            (Array.map (fun e -> sqrt (Float.max 0. e)) eigs))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q5_statistics ->
    let scores, dm =
      phase "dm" (fun () ->
          let sample = Qcommon.sampled_patients ds params.sample_fraction in
          let k = Array.length sample in
          let partials =
            Cluster.superstep cluster (fun node ->
                let d = data.(node) in
                let micro =
                  Ops.guard check
                    (d.db.Relops.scan "microarray"
                       [ "gene_id"; "patient_id"; "value" ])
                in
                let sel =
                  Ops.filter Expr.(col "patient_id" <% int k) micro
                in
                let sums = Array.make (n_genes + 1) 0. in
                let counted = Hashtbl.create 16 in
                let s = sel.Ops.schema in
                let gi = Schema.index s "gene_id" in
                let pi = Schema.index s "patient_id" in
                let vi = Schema.index s "value" in
                Seq.iter
                  (fun row ->
                    let g = Value.to_int row.(gi) in
                    sums.(g) <- sums.(g) +. Value.to_float row.(vi);
                    Hashtbl.replace counted (Value.to_int row.(pi)) ())
                  sel.Ops.rows;
                sums.(n_genes) <- float_of_int (Hashtbl.length counted);
                sums)
          in
          let t = Cluster.allreduce_sum cluster partials in
          let count = Float.max 1. t.(n_genes) in
          Array.init n_genes (fun j -> t.(j) /. count))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          head_only (fun () ->
              Qcommon.enrichment_of ~n_genes ~go_pairs:ds.G.go ~go_terms
                ~p_threshold:params.p_threshold ~scores))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload
  | Query.Q6_overlap ->
    (* Shuffle-by-genomic-bin: the interval tables are replicated column
       stores, so each node scans them locally, sweeps its bin-aligned
       genome slice, and the head gathers the per-node pair lists. Only
       integer tuples would cross the pbdR export boundary, so the
       boundary makes no difference to this query. *)
    let module Ranges = Gb_util.Ranges in
    let ivs_of db table cols =
      let rel = Ops.guard check (db.Relops.scan table cols) in
      let s = rel.Ops.schema in
      let id_i = Schema.index s (List.nth cols 0) in
      let lo_i = Schema.index s (List.nth cols 1) in
      let len_i = Schema.index s (List.nth cols 2) in
      Seq.fold_left
        (fun acc row ->
          Ranges.of_start_len
            ~id:(Value.to_int row.(id_i))
            ~start:(Value.to_int row.(lo_i))
            ~len:(Value.to_int row.(len_i))
          :: acc)
        [] rel.Ops.rows
      |> List.rev |> Array.of_list
    in
    let (vivs, givs, spans), dm =
      phase "dm" (fun () ->
          let locals =
            Cluster.superstep cluster (fun node ->
                let db = data.(node).db in
                ( ivs_of db "variants" [ "variant_id"; "vstart"; "vlen" ],
                  ivs_of db "genes" [ "gene_id"; "position"; "length" ] ))
          in
          let vivs, givs = locals.(0) in
          let spans =
            Qcommon.overlap_node_spans ~bin_width:Ranges.default_bin_width
              ~nodes
              ~axis_end:(Qcommon.overlap_axis_end vivs givs)
          in
          Cluster.shuffle cluster
            ~total_bytes:(24 * (Array.length vivs + Array.length givs));
          (vivs, givs, spans))
    in
    let payload, analytics =
      phase "analytics" (fun () ->
          let per_node =
            Cluster.superstep cluster (fun node ->
                Qcommon.overlap_pairs_in_span
                  ~min_overlap:params.min_overlap_bp ~span:spans.(node) vivs
                  givs)
          in
          let total =
            Array.fold_left (fun acc l -> acc + List.length l) 0 per_node
          in
          Cluster.gather cluster ~bytes_per_node:(24 * total / nodes);
          Qcommon.overlaps_of ~n_variants:(Array.length vivs)
            ~n_genes:(Array.length givs)
            (List.concat (Array.to_list per_node)))
    in
    Engine.completed { dm; analytics }
      ~recovery:(Qcommon.cluster_recovery cluster) payload

let make ~name ~boundary ~fault ~nodes =
  {
    Engine.name = name;
    kind = `Multi_node nodes;
    supports = (fun _ -> true);
    load =
      (fun ds q ~params ~timeout_s ->
        run ~boundary ?fault ~nodes ds q ~params ~timeout_s);
  }

let pbdr ~nodes =
  make ~name:"Column store + pbdR" ~boundary:`Export_to_pbdr ~fault:None ~nodes

let udf ~nodes =
  make ~name:"Column store + UDFs" ~boundary:`Udf ~fault:None ~nodes

let pbdr_faulty ~fault ~nodes =
  make ~name:"Column store + pbdR" ~boundary:`Export_to_pbdr
    ~fault:(Some fault) ~nodes

let udf_faulty ~fault ~nodes =
  make ~name:"Column store + UDFs" ~boundary:`Udf ~fault:(Some fault) ~nodes
