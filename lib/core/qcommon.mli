(** Shared reference implementations of the analytics phases and of the
    benchmark's selection predicates. Engines differ in *where the data
    lives and what the data management costs*; the mathematical definition
    of each query's answer is common, so cross-engine results must agree. *)

val genes_with_func_below : Dataset.t -> int -> int array
val patients_with_disease : Dataset.t -> int -> int array
val patients_by_age_gender : Dataset.t -> max_age:int -> gender:int -> int array
val sampled_patients : Dataset.t -> float -> int array
(** Deterministic sample: the first [max 2 (frac * patients)] patient ids
    (a plain range predicate, so every engine selects identically). *)

val regression_of : Gb_linalg.Mat.t -> float array -> Engine.payload
val covariance_of :
  gene_ids:int array -> top_fraction:float -> Gb_linalg.Mat.t -> Engine.payload
val biclusters_of : ?seed:int64 -> Gb_linalg.Mat.t -> Engine.payload
val svd_of : k:int -> Gb_linalg.Mat.t -> Engine.payload

val enrichment_scores : Gb_linalg.Mat.t -> float array
(** Per-gene mean expression over the (already selected) sample rows. *)

val enrichment_of :
  n_genes:int ->
  go_pairs:(int * int) array ->
  go_terms:int ->
  p_threshold:float ->
  scores:float array ->
  Engine.payload
(** Rank [scores], Wilcoxon rank-sum per GO term, keep significant terms
    ascending by p-value. *)

val cluster_recovery : Gb_cluster.Cluster.t -> Engine.recovery
(** The cluster's absorbed faults as degraded-completion metadata
    ({!Engine.no_recovery} when the run was clean). *)

val mr_recovery : Gb_mapreduce.Mr.t -> Engine.recovery
(** Likewise for the MapReduce runtime's task retries. *)

val arm_cluster : Gb_cluster.Cluster.t -> Gb_fault.Fault.plan option -> unit
(** Arm an optional fault plan on a freshly created cluster, enabling
    periodic superstep checkpointing alongside it (every 4 supersteps,
    64 KiB per node) so injected crashes exercise restore-from-checkpoint
    rather than full re-execution. No-op on [None]. *)
