(** Shared reference implementations of the analytics phases and of the
    benchmark's selection predicates. Engines differ in *where the data
    lives and what the data management costs*; the mathematical definition
    of each query's answer is common, so cross-engine results must agree. *)

val genes_with_func_below : Dataset.t -> int -> int array
val patients_with_disease : Dataset.t -> int -> int array
val patients_by_age_gender : Dataset.t -> max_age:int -> gender:int -> int array
val sampled_patients : Dataset.t -> float -> int array
(** Deterministic sample: the first [max 2 (frac * patients)] patient ids
    (a plain range predicate, so every engine selects identically). *)

val regression_of : Gb_linalg.Mat.t -> float array -> Engine.payload
val covariance_of :
  gene_ids:int array -> top_fraction:float -> Gb_linalg.Mat.t -> Engine.payload
val biclusters_of : ?seed:int64 -> Gb_linalg.Mat.t -> Engine.payload
val svd_of : k:int -> Gb_linalg.Mat.t -> Engine.payload

val enrichment_scores : Gb_linalg.Mat.t -> float array
(** Per-gene mean expression over the (already selected) sample rows. *)

val enrichment_of :
  n_genes:int ->
  go_pairs:(int * int) array ->
  go_terms:int ->
  p_threshold:float ->
  scores:float array ->
  Engine.payload
(** Rank [scores], Wilcoxon rank-sum per GO term, keep significant terms
    ascending by p-value. *)

val variant_ivs : Dataset.t -> Gb_util.Ranges.iv array
(** Variant intervals in id order ([iv.id] = [variant_id]). *)

val gene_ivs : Dataset.t -> Gb_util.Ranges.iv array
(** Gene intervals in id order ([iv.id] = [gene_id]). *)

val overlaps_of :
  n_variants:int -> n_genes:int -> (int * int * int) list -> Engine.payload
(** Sort pairs into the canonical ascending (variant_id, gene_id) order
    and wrap as {!Engine.Overlaps} — every Q6 physical plan finishes
    through this, so payload digests are bitwise comparable. *)

val overlap_sweep :
  ?min_overlap:int ->
  Gb_util.Ranges.iv array ->
  Gb_util.Ranges.iv array ->
  (int * int * int) list
(** Parallel sort-merge interval sweep over pool-size-independent chunks
    of the (id-ordered) left side, stitched in chunk order: output is
    already canonical and identical at any domain count. Profiled as the
    ["overlap_sweep"] kernel span; bumps ["q6.overlap_pairs"]. *)

val overlap_axis_end : Gb_util.Ranges.iv array -> Gb_util.Ranges.iv array -> int
(** One past the largest coordinate either interval set touches. *)

val overlap_node_spans :
  bin_width:int -> nodes:int -> axis_end:int -> (int * int) array
(** Block-partition the axis's fixed-width bins across nodes; each node
    gets one bin-aligned, contiguous [lo, hi) genome slice. *)

val overlap_pairs_in_span :
  ?min_overlap:int ->
  span:int * int ->
  Gb_util.Ranges.iv array ->
  Gb_util.Ranges.iv array ->
  (int * int * int) list
(** One node's share of the Q6 join: sweep the intervals touching [span],
    keeping only pairs whose max(starts) lies inside it — boundary
    intervals replicated to two spans are counted exactly once across
    the cluster. Interval ids must index the given arrays. *)

val cluster_recovery : Gb_cluster.Cluster.t -> Engine.recovery
(** The cluster's absorbed faults as degraded-completion metadata
    ({!Engine.no_recovery} when the run was clean). *)

val mr_recovery : Gb_mapreduce.Mr.t -> Engine.recovery
(** Likewise for the MapReduce runtime's task retries. *)

val arm_cluster : Gb_cluster.Cluster.t -> Gb_fault.Fault.plan option -> unit
(** Arm an optional fault plan on a freshly created cluster, enabling
    periodic superstep checkpointing alongside it (every 4 supersteps,
    64 KiB per node) so injected crashes exercise restore-from-checkpoint
    rather than full re-execution. No-op on [None]. *)
