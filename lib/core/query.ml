type t =
  | Q1_regression
  | Q2_covariance
  | Q3_biclustering
  | Q4_svd
  | Q5_statistics
  | Q6_overlap

type params = {
  func_threshold : int;
  disease_id : int;
  max_age : int;
  gender : int;
  cov_top_fraction : float;
  svd_k : int;
  sample_fraction : float;
  p_threshold : float;
  min_overlap_bp : int;
}

let default_params =
  {
    func_threshold = Gb_datagen.Generate.func_threshold;
    disease_id = 1;
    max_age = 40;
    gender = 1;
    cov_top_fraction = 0.10;
    svd_k = 50;
    sample_fraction = 0.05;
    p_threshold = 0.05;
    min_overlap_bp = 1;
  }

let all =
  [
    Q1_regression;
    Q2_covariance;
    Q3_biclustering;
    Q4_svd;
    Q5_statistics;
    Q6_overlap;
  ]

let name = function
  | Q1_regression -> "regression"
  | Q2_covariance -> "covariance"
  | Q3_biclustering -> "biclustering"
  | Q4_svd -> "svd"
  | Q5_statistics -> "statistics"
  | Q6_overlap -> "overlap"

let title = function
  | Q1_regression -> "Linear Regression"
  | Q2_covariance -> "Covariance"
  | Q3_biclustering -> "Biclustering"
  | Q4_svd -> "SVD"
  | Q5_statistics -> "Statistics"
  | Q6_overlap -> "Overlap Join"

let of_name s =
  List.find_opt (fun q -> name q = String.lowercase_ascii s) all
