module Mat = Gb_linalg.Mat
module G = Gb_datagen.Generate
module Df = Gb_rlang.Dataframe
module Stopwatch = Gb_util.Clock.Stopwatch

(* 2^31 - 1 cells, divided by the benchmark's 25x25 cell scale-down. *)
let cell_budget =
  0x7FFFFFFF / (Gb_datagen.Spec.scale_divisor * Gb_datagen.Spec.scale_divisor)

let cells (ds : Dataset.t) =
  let p, g = Mat.dims ds.expression in
  p * g

(* R working-set model, in cells: the frame itself plus the read buffer
   (R materializes both while loading), then per-query temporaries. *)
let charge used extra =
  if used + extra > cell_budget then raise Engine.Memory_exceeded

let patients_frame (ds : Dataset.t) =
  Df.of_columns
    [
      ("patient_id", Df.Ints (Array.map (fun (p : G.patient) -> p.patient_id) ds.patients));
      ("age", Df.Ints (Array.map (fun (p : G.patient) -> p.age) ds.patients));
      ("gender", Df.Ints (Array.map (fun (p : G.patient) -> p.gender) ds.patients));
      ("disease_id", Df.Ints (Array.map (fun (p : G.patient) -> p.disease_id) ds.patients));
      ( "drug_response",
        Df.Floats (Array.map (fun (p : G.patient) -> p.drug_response) ds.patients) );
    ]

let genes_frame (ds : Dataset.t) =
  Df.of_columns
    [
      ("gene_id", Df.Ints (Array.map (fun (g : G.gene) -> g.gene_id) ds.genes));
      ("func", Df.Ints (Array.map (fun (g : G.gene) -> g.func) ds.genes));
    ]

let variants_frame (ds : Dataset.t) =
  Df.of_columns
    [
      ( "variant_id",
        Df.Ints (Array.map (fun (v : G.variant) -> v.variant_id) ds.variants) );
      ("vstart", Df.Ints (Array.map (fun (v : G.variant) -> v.vstart) ds.variants));
      ("vlen", Df.Ints (Array.map (fun (v : G.variant) -> v.vlen) ds.variants));
    ]

let coords_frame (ds : Dataset.t) =
  Df.of_columns
    [
      ("gene_id", Df.Ints (Array.map (fun (g : G.gene) -> g.gene_id) ds.genes));
      ("position", Df.Ints (Array.map (fun (g : G.gene) -> g.position) ds.genes));
      ("length", Df.Ints (Array.map (fun (g : G.gene) -> g.length) ds.genes));
    ]

let run ds query ~(params : Query.params) ~timeout_s =
  let dl = Gb_util.Deadline.start ~seconds:timeout_s in
  let base = 2 * cells ds in
  charge 0 base;
  let time name f =
    Gb_obs.Profile.with_ ~cat:"phase" ~name
      ~dur_of:(fun (_, t) -> Some t)
      (fun () ->
        let r, t = Stopwatch.time f in
        Gb_util.Deadline.check dl;
        (r, t))
  in
  match query with
  | Query.Q1_regression ->
    let (x, y), dm =
      time "dm" (fun () ->
          (* subset(genes, func < t); then slice the expression matrix on
             the selected gene columns. *)
          let genes = genes_frame ds in
          let funcs = Df.ints genes "func" in
          let sel =
            Df.subset genes (fun _ i -> funcs.(i) < params.func_threshold)
          in
          let gene_ids = Df.ints sel "gene_id" in
          let sel_cells = Array.length gene_ids * Array.length ds.G.patients in
          charge base (3 * sel_cells);
          let x = Mat.sub_cols ds.G.expression gene_ids in
          let y = Df.floats (patients_frame ds) "drug_response" in
          (x, y))
    in
    let payload, analytics = time "analytics" (fun () -> Qcommon.regression_of x y) in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q2_covariance ->
    let (m, gene_ids), dm =
      time "dm" (fun () ->
          let patients = patients_frame ds in
          let disease = Df.ints patients "disease_id" in
          let pat_ids =
            Df.ints
              (Df.subset patients (fun _ i -> disease.(i) = params.disease_id))
              "patient_id"
          in
          let g = Array.length ds.G.genes in
          charge base ((2 * Array.length pat_ids * g) + (2 * g * g));
          (Mat.sub_rows ds.G.expression pat_ids, Array.init g Fun.id))
    in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.covariance_of ~gene_ids ~top_fraction:params.cov_top_fraction
            m)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q3_biclustering ->
    let m, dm =
      time "dm" (fun () ->
          let patients = patients_frame ds in
          let age = Df.ints patients "age" in
          let gender = Df.ints patients "gender" in
          let pat_ids =
            Df.ints
              (Df.subset patients (fun _ i ->
                   age.(i) < params.max_age && gender.(i) = params.gender))
              "patient_id"
          in
          charge base (2 * Array.length pat_ids * Array.length ds.G.genes);
          Mat.sub_rows ds.G.expression pat_ids)
    in
    let payload, analytics = time "analytics" (fun () -> Qcommon.biclusters_of m) in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q4_svd ->
    let x, dm =
      time "dm" (fun () ->
          let genes = genes_frame ds in
          let funcs = Df.ints genes "func" in
          let gene_ids =
            Df.ints
              (Df.subset genes (fun _ i -> funcs.(i) < params.func_threshold))
              "gene_id"
          in
          charge base (3 * Array.length gene_ids * Array.length ds.G.patients);
          Mat.sub_cols ds.G.expression gene_ids)
    in
    let payload, analytics =
      time "analytics" (fun () -> Qcommon.svd_of ~k:params.svd_k x)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q5_statistics ->
    let scores, dm =
      time "dm" (fun () ->
          let sample = Qcommon.sampled_patients ds params.sample_fraction in
          charge base (2 * Array.length sample * Array.length ds.G.genes);
          Qcommon.enrichment_scores (Mat.sub_rows ds.G.expression sample))
    in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.enrichment_of
            ~n_genes:(Array.length ds.G.genes)
            ~go_pairs:ds.G.go
            ~go_terms:ds.G.spec.Gb_datagen.Spec.go_terms
            ~p_threshold:params.p_threshold ~scores)
    in
    Engine.Completed ({ dm; analytics }, payload)
  | Query.Q6_overlap ->
    (* The oracle plan: two data frames and a quadratic double loop —
       exactly what naive R code over GRanges-less data frames does.
       Every other engine's Q6 answer is checked against this. *)
    let (vs, gs), dm =
      time "dm" (fun () ->
          let vf = variants_frame ds and gf = coords_frame ds in
          let iv_of ids los lens i =
            Gb_util.Ranges.of_start_len ~id:ids.(i) ~start:los.(i)
              ~len:lens.(i)
          in
          let vs =
            let ids = Df.ints vf "variant_id"
            and los = Df.ints vf "vstart"
            and lens = Df.ints vf "vlen" in
            Array.init (Array.length ids) (iv_of ids los lens)
          in
          let gs =
            let ids = Df.ints gf "gene_id"
            and los = Df.ints gf "position"
            and lens = Df.ints gf "length" in
            Array.init (Array.length ids) (iv_of ids los lens)
          in
          charge base (3 * (Array.length vs + Array.length gs));
          (vs, gs))
    in
    let payload, analytics =
      time "analytics" (fun () ->
          Qcommon.overlaps_of ~n_variants:(Array.length vs)
            ~n_genes:(Array.length gs)
            (Gb_util.Ranges.nested_loop_join ~min_overlap:params.min_overlap_bp
               vs gs))
    in
    Engine.Completed ({ dm; analytics }, payload)

let engine =
  {
    Engine.name = "Vanilla R";
    kind = `Single_node;
    supports = (fun _ -> true);
    load = run;
  }
